// Resilient lower bound: the "randomization does not help" half of the
// paper's headline (Corollary 1). The f-resilient relaxation of
// 3-coloring tolerates a FIXED number f of conflicted nodes. On a cycle
// with consecutive identities, every order-invariant constant-round
// algorithm sees the same view almost everywhere and mono-colors
// n−(2t−1) nodes — so its violations grow linearly and blow through any
// f. Constant-round randomized algorithms leave Θ(n) expected violations
// too; only the Θ(log* n)-round Cole–Vishkin reaches zero.
package main

import (
	"fmt"
	"log"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/relax"
)

func main() {
	const f = 4
	l := lang.ProperColoring(3)
	lf := &relax.FResilient{L: l, F: f}
	space := localrand.NewTapeSpace(5)

	fmt.Printf("f-resilient 3-coloring with f = %d on consecutive-identity cycles\n\n", f)
	fmt.Println("algorithm              | rounds  | n     | violations | within f")
	for _, n := range []int{128, 512, 2048} {
		g := graph.Cycle(n)
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.Consecutive(n))
		if err != nil {
			log.Fatal(err)
		}
		// Order-invariant deterministic algorithm (radius 1).
		oi := construct.RankColor{Q: 3, T: 1}
		y := local.RunView(in, oi, nil)
		report("oi-rank-color", "1", n, lf, in, y)

		// Constant-round randomized.
		draw := space.Draw(uint64(n))
		y2, err := (construct.RetryColoring{Q: 3, T: 4}).Run(in, &draw)
		if err != nil {
			log.Fatal(err)
		}
		report("retry-coloring(T=4)", "5", n, lf, in, y2)

		// Cole–Vishkin: not constant-round, and that is the point.
		res, err := local.RunMessage(in, construct.ColeVishkin{MaxIDBits: 63}, nil, local.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		report("cole-vishkin", fmt.Sprint(res.Stats.Rounds), n, lf, in, res.Y)
	}
	fmt.Println("\nno constant-round algorithm — deterministic or randomized — stays within f:")
	fmt.Println("that is Corollary 1, via the derandomization theorem (Theorem 1) for BPLD.")
}

func report(name, rounds string, n int, lf *relax.FResilient, in *lang.Instance, y [][]byte) {
	cfg := &lang.Config{G: in.G, X: in.X, Y: y}
	bad := lf.Violations(cfg)
	ok, _ := lf.Contains(cfg)
	fmt.Printf("%-22s | %-7s | %-5d | %-10d | %v\n", name, rounds, n, bad, ok)
}
