// Slack coloring: the "randomization helps" half of the paper's headline
// (§1.1/§1.2). For the ε-slack relaxation of 3-coloring — at most ⌊εn⌋
// conflicted nodes tolerated — a zero-round random coloring already
// suffices for ε > 5/9, and a handful of retry rounds reaches any fixed ε,
// with a round count independent of the ring size. Deterministic
// algorithms provably cannot do this in O(1) rounds (Linial's bound).
package main

import (
	"fmt"
	"log"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
	"rlnc/internal/relax"
)

func main() {
	l := lang.ProperColoring(3)
	space := localrand.NewTapeSpace(99)

	fmt.Println("ring size n | retry rounds T | violations | ε=0.25 budget | within budget")
	for _, n := range []int{600, 2400} {
		g := graph.Cycle(n)
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.Consecutive(n))
		if err != nil {
			log.Fatal(err)
		}
		slack := &relax.EpsSlack{L: l, Eps: 0.25}
		for _, T := range []int{0, 2, 4, 6} {
			algo := construct.RetryColoring{Q: 3, T: T}
			draw := space.Draw(uint64(n*100 + T))
			y, err := algo.Run(in, &draw)
			if err != nil {
				log.Fatal(err)
			}
			cfg := &lang.Config{G: g, X: in.X, Y: y}
			bad := slack.Violations(cfg)
			ok, _ := slack.Contains(cfg)
			fmt.Printf("%11d | %14d | %10d | %13d | %v\n",
				n, T, bad, slack.Budget(n), ok)
		}
	}
	fmt.Println("\nthe rounds needed to fit the budget do not grow with n — that is the ε-slack story")
}
