// Gluing: the surgical construction from the proof of Theorem 1. Hard
// instances H_1, ..., H_ν′ are combined into one connected graph without
// raising the degree past k: one edge per block is subdivided twice and
// the inserted nodes are ring-connected. The example builds the glued
// instance, verifies the structural invariants the proof relies on, and
// shows the boosting parameters µ, D, ν, ν′.
package main

import (
	"fmt"
	"log"

	"rlnc/internal/glue"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

func main() {
	// Parameters as in the proof: decider guarantee p, construction
	// success r, failure floor β.
	p, r, beta := 0.75, 0.5, 0.25
	tC, tD := 1, 1

	mu, err := glue.Mu(p)
	if err != nil {
		log.Fatal(err)
	}
	d := glue.D(mu, tC, tD)
	nu, err := glue.NuDisjoint(r, p, beta)
	if err != nil {
		log.Fatal(err)
	}
	nuPrime, err := glue.NuPrimeSearch(r, p, beta, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boosting parameters: µ=%d, D=2µ(t+t')=%d, ν=%d (Eq. 3), ν'=%d\n\n", mu, d, nu, nuPrime)

	// Build ν′ blocks with disjoint, increasing identity ranges.
	blockLen := 4 * d
	parts := make([]*lang.Instance, nuPrime)
	start := int64(1)
	for i := range parts {
		in, err := lang.NewInstance(graph.Cycle(blockLen),
			lang.EmptyInputs(blockLen), ids.ConsecutiveFrom(blockLen, start))
		if err != nil {
			log.Fatal(err)
		}
		parts[i] = in
		start += int64(blockLen) + 1
	}

	// Scattered anchor candidates: µ nodes pairwise ≥ 2(t+t') apart.
	anchors, err := glue.ScatteredAnchors(parts, mu, tC, tD, nil)
	if err != nil {
		log.Fatal(err)
	}
	glued, err := glue.BuildGlued(parts, anchors)
	if err != nil {
		log.Fatal(err)
	}
	g := glued.Instance.G
	fmt.Printf("blocks: %d × C_%d\n", nuPrime, blockLen)
	fmt.Printf("glued graph: %s\n", g)
	fmt.Printf("connected: %v (the whole point of gluing over a disjoint union)\n", g.Connected())
	fmt.Printf("max degree: %d (stays ≤ k = 3; the paper requires k > 2)\n", g.MaxDegree())
	for i := range parts {
		fmt.Printf("block %d: u=%d v=%d w=%d — deg(v)=%d deg(w)=%d deg(u)=%d\n",
			i, glued.U[i], glued.V[i], glued.W[i],
			g.Degree(glued.V[i]), g.Degree(glued.W[i]), g.Degree(glued.U[i]))
	}
	if err := glued.Instance.ID.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("identity assignment valid: blocks keep disjoint, increasing ranges")
}
