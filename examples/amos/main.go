// AMOS: the paper's flagship witness that randomized local decision is
// strictly stronger than deterministic (§2.3.1). The language amos — "at
// most one selected" — cannot be decided deterministically in D/2 − 1
// rounds, but a zero-round randomized decider succeeds with guarantee
// (√5−1)/2 ≈ 0.618. This example measures the decider's acceptance
// probabilities and then runs the fooling argument against a natural
// deterministic decider.
package main

import (
	"fmt"
	"log"

	"rlnc/internal/decide"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

func main() {
	const n = 40
	g := graph.Path(n)
	decider := decide.NewAMOSDecider()
	space := localrand.NewTapeSpace(7)

	fmt.Printf("zero-round randomized decider, p = %.4f (guarantee %.4f)\n\n",
		decider.P, decider.Guarantee())
	fmt.Println("selected  Pr[all accept]   (20000 trials)")
	for _, s := range []int{0, 1, 2, 3} {
		sel := make([]int, s)
		for i := range sel {
			sel[i] = i * (n / 4)
		}
		di := selInstance(g, sel...)
		est := decide.AcceptProbability(di, decider, space, 20000)
		fmt.Printf("%8d  %.4f\n", s, est.P())
	}

	fmt.Println("\nfooling a deterministic decider (radius 2) on a path:")
	rep, err := decide.AMOSFooling(naiveDecider{t: 2}, 2*2+4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  accepts left-selected:  %v (legal)\n", rep.AcceptsLeft)
	fmt.Printf("  accepts right-selected: %v (legal)\n", rep.AcceptsRight)
	fmt.Printf("  accepts BOTH selected:  %v (ILLEGAL)\n", rep.AcceptsBoth)
	fmt.Printf("  defeated: %v — %s\n", rep.Fails, rep.Reason)
}

// selInstance marks nodes as selected on g with consecutive identities.
func selInstance(g *graph.Graph, selected ...int) *lang.DecisionInstance {
	y := make([][]byte, g.N())
	for v := range y {
		y[v] = lang.EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = lang.EncodeSelected(true)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
}

// naiveDecider rejects iff it sees two selections in its radius-t view.
type naiveDecider struct{ t int }

func (d naiveDecider) Name() string { return "naive" }
func (d naiveDecider) Radius() int  { return d.t }
func (d naiveDecider) Verdict(v *local.View) bool {
	count := 0
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			count++
		}
	}
	return count <= 1
}
