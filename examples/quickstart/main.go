// Quickstart: build a ring network, 3-color it with the deterministic
// Cole–Vishkin algorithm in Θ(log* n) rounds, and check the output both
// by evaluating the language and by running the canonical local decider —
// the construction/decision pairing at the heart of the paper (§2.2).
package main

import (
	"fmt"
	"log"

	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
)

func main() {
	const n = 64
	// A LOCAL-model instance: a connected simple graph plus pairwise
	// distinct positive identities (paper §2.1.1).
	g := graph.Cycle(n)
	id := ids.RandomPerm(n, 42)
	in, err := lang.NewInstance(g, lang.EmptyInputs(n), id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s, diameter %d\n", g, g.Diameter())

	// Construction task: proper 3-coloring via Cole–Vishkin.
	algo := construct.ColeVishkin{MaxIDBits: 63}
	res, err := local.RunMessage(in, algo, nil, local.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algorithm: %s finished in %d rounds (%d messages)\n",
		algo.Name(), res.Stats.Rounds, res.Stats.Messages)

	// Language membership: identity-free evaluation of (G, (x, y)).
	language := lang.ProperColoring(3)
	cfg := &lang.Config{G: g, X: in.X, Y: res.Y}
	ok, err := language.Contains(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proper 3-coloring: %v\n", ok)

	// Decision task: every node inspects its radius-1 ball and votes; the
	// configuration is accepted iff all nodes vote true (§2.2.1).
	di, err := in.WithOutput(res.Y)
	if err != nil {
		log.Fatal(err)
	}
	decider := &decide.LCLDecider{L: language}
	fmt.Printf("local decider accepts: %v\n", decide.Accepts(di, decider, nil))

	// Show a few node outputs.
	fmt.Print("first colors: ")
	for v := 0; v < 10; v++ {
		c, _ := lang.DecodeColor(res.Y[v])
		fmt.Printf("%d ", c)
	}
	fmt.Println("...")
}
