// Certification: the NLD frontier of the paper's open problems (§5).
// amos cannot be DECIDED deterministically in O(1) rounds (see
// examples/amos), but it can be VERIFIED in one round when nodes carry
// certificates — here, the identity of the claimed selected node. The
// example certifies legal configurations, then shows that no certificate
// assignment (prover-crafted or adversarial) convinces the verifier on an
// illegal one; the same is done for spanning trees, whose pointer cycles
// are invisible to certificate-free local checking.
package main

import (
	"fmt"
	"log"

	"rlnc/internal/certify"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

func main() {
	// --- amos ∈ NLD -----------------------------------------------------
	g := graph.Path(20)
	mk := func(selected ...int) *lang.DecisionInstance {
		y := make([][]byte, g.N())
		for v := range y {
			y[v] = lang.EncodeSelected(false)
		}
		for _, v := range selected {
			y[v] = lang.EncodeSelected(true)
		}
		return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
	}

	one := mk(7)
	ok, err := certify.Completeness(one, certify.AMOSScheme{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amos, one selected:  certified = %v (leader certificates, radius 1)\n", ok)

	two := mk(0, 19)
	fooling, err := certify.SoundnessSearch(two, certify.AMOSScheme{}, 5000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amos, two selected:  fooled by %d random certificate assignments = %v\n",
		5000, fooling != nil)

	// --- spanning trees -------------------------------------------------
	torus := graph.Torus(4, 4)
	in := &lang.Instance{G: torus, X: lang.EmptyInputs(16), ID: ids.RandomPerm(16, 3)}
	y, err := certify.BuildBFSTreeOutputs(in, 5)
	if err != nil {
		log.Fatal(err)
	}
	di := &lang.DecisionInstance{G: torus, X: in.X, Y: y, ID: in.ID}
	ok, err = certify.Completeness(di, certify.SpanningTreeScheme{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspanning tree on 4x4 torus: certified = %v ((rootID, depth) certificates)\n", ok)

	// Corrupt the tree with a second root and attack.
	y[12] = certify.RootMark
	bad := &lang.DecisionInstance{G: torus, X: in.X, Y: y, ID: in.ID}
	inLang, _ := (certify.SpanningTree{}).Contains(bad.Config())
	fooling, err = certify.SoundnessSearch(bad, certify.SpanningTreeScheme{}, 5000, 14, 43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-root corruption:        in language = %v, verifier fooled = %v\n",
		inLang, fooling != nil)

	fmt.Println("\ncertificates carry global data (a leader id, a root id and depth);")
	fmt.Println("§5 of the paper observes that gluing instances — the engine of Theorem 1 —")
	fmt.Println("invalidates exactly this kind of information, which is why extending the")
	fmt.Println("derandomization theorem to NLD/BPNLD remains open.")
}
