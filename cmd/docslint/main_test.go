package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSlug(t *testing.T) {
	for heading, want := range map[string]string{
		"Quick start":             "quick-start",
		"The `rlnc serve` daemon": "the-rlnc-serve-daemon",
		"E1–E17 in one line":      "e1e17-in-one-line",
		"HTTP API":                "http-api",
	} {
		if got := slug(heading); got != want {
			t.Errorf("slug(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	writeDoc(t, dir, "other.md", "# Other Title\n\nbody\n")
	doc := writeDoc(t, dir, "doc.md", strings.Join([]string{
		"# Title",
		"",
		"Good: [other](other.md), [sec](other.md#other-title),",
		"[self](#title), [web](https://example.com/x).",
		"",
		"```",
		"[not a link](missing-in-fence.md)",
		"```",
		"",
		"Bad: [gone](missing.md), [noanchor](#nope),",
		"[badfrag](other.md#absent).",
		"",
	}, "\n"))
	problems, err := checkFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("found %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	for i, want := range []string{"missing.md", "#nope", "#absent"} {
		if !strings.Contains(problems[i], want) {
			t.Errorf("problem %d %q does not mention %q", i, problems[i], want)
		}
	}
}
