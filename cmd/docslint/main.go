// Command docslint is a dependency-free markdown link checker for the
// repository's documentation set. For every file named on the command
// line it verifies that
//
//   - relative link targets ([text](path) and [text](path#anchor))
//     exist on disk, resolved against the linking file's directory, and
//   - same-file anchors ([text](#anchor)) match a heading in that file,
//     using GitHub's anchor slug convention (lowercase, spaces to
//     dashes, punctuation dropped).
//
// http(s) and mailto links are skipped — CI must not depend on the
// network — and fenced code blocks are ignored so example snippets
// containing bracket syntax cannot produce false positives. Exit status
// 1 reports one or more broken links, with file:line positions.
//
// CI runs it over README.md and docs/ on every pull request:
//
//	go run ./cmd/docslint README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images
// ![alt](target) match too via the optional bang — they are checked the
// same way.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slug converts a heading to its GitHub anchor: lowercase, spaces and
// runs of dashes to single dashes at each gap, everything but letters,
// digits, dashes, and underscores dropped.
func slug(heading string) string {
	// Inline code and links render as their text before slugging.
	heading = strings.NewReplacer("`", "").Replace(heading)
	if m := linkRe.FindStringSubmatchIndex(heading); m != nil {
		heading = linkRe.ReplaceAllStringFunc(heading, func(s string) string {
			open := strings.IndexByte(s, '[')
			close := strings.IndexByte(s, ']')
			return s[open+1 : close]
		})
	}
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf collects the heading anchors of one markdown file,
// de-duplicating repeats the way GitHub does (-1, -2 suffixes).
func anchorsOf(lines []string) map[string]bool {
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := slug(m[1])
		name := base
		for i := 1; anchors[name]; i++ {
			name = fmt.Sprintf("%s-%d", base, i)
		}
		anchors[name] = true
	}
	return anchors
}

// checkFile lints one markdown file and returns its broken links as
// "file:line: message" strings.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	anchors := anchorsOf(lines)
	var problems []string
	report := func(lineNo int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", path, lineNo, fmt.Sprintf(format, args...)))
	}
	inFence := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					report(i+1, "no heading for anchor %s", target)
				}
				continue
			}
			file, frag, hasFrag := strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				report(i+1, "broken link %s (resolved %s)", target, resolved)
				continue
			}
			if hasFrag && strings.HasSuffix(file, ".md") {
				data, err := os.ReadFile(resolved)
				if err != nil {
					report(i+1, "unreadable link target %s: %v", target, err)
					continue
				}
				if !anchorsOf(strings.Split(string(data), "\n"))[frag] {
					report(i+1, "no heading for anchor #%s in %s", frag, file)
				}
			}
		}
	}
	return problems, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		problems, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		broken += len(problems)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}
