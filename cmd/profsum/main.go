// Command profsum summarizes a pprof CPU profile as a top-N table of
// cumulative function cost, for CI artifact summaries:
//
//	profsum -top 20 trial32.pprof wire32.pprof
//	profsum -pair scalar.pprof vec.pprof
//
// For each profile it prints the functions ranked by cumulative time —
// the time spent in a function or anything it called, the number that
// says where a round-trip actually goes — alongside flat time (samples
// with the function on top of the stack). With -pair it takes exactly
// two profiles (say the scalar and vec stepping paths of the same
// trial) and renders them side by side, matched by function, ranked by
// whichever side's cumulative share is larger — so a function hot on
// either side makes the table and the other side's cost sits next to
// it. The parser reads the gzipped profile.proto stream directly with
// no dependencies, so CI can render summaries without a `go tool
// pprof` invocation per artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	top := flag.Int("top", 20, "number of functions to print per profile")
	pair := flag.Bool("pair", false, "render exactly two profiles side by side, matched by function")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: profsum [-top N] profile.pprof [profile.pprof ...]\n"+
			"       profsum -pair [-top N] left.pprof right.pprof\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *pair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "profsum: -pair takes exactly two profiles")
			os.Exit(2)
		}
		if err := summarizePair(os.Stdout, flag.Arg(0), flag.Arg(1), *top); err != nil {
			fmt.Fprintf(os.Stderr, "profsum: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		if err := summarize(os.Stdout, path, *top); err != nil {
			fmt.Fprintf(os.Stderr, "profsum: %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

// summarize renders one profile's top-N table.
func summarize(w io.Writer, path string, top int) error {
	prof, err := loadProfile(path)
	if err != nil {
		return err
	}
	rows, total, unit := prof.byFunction()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		return rows[i].name < rows[j].name
	})
	if top < len(rows) {
		rows = rows[:top]
	}
	fmt.Fprintf(w, "%s: %s total across %d samples, %d functions\n",
		path, quantity(total, unit), len(prof.samples), len(prof.functions))
	fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "cum", "cum%", "flat", "flat%", "function")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %6.1f%% %12s %6.1f%%  %s\n",
			quantity(r.cum, unit), pct(r.cum, total),
			quantity(r.flat, unit), pct(r.flat, total), r.name)
	}
	return nil
}

// loadProfile reads and parses one profile file.
func loadProfile(path string) (*profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prof, err := parseProfile(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prof, nil
}

// pairRow is one function's cost on both sides of a -pair table; a side
// the function never appeared on stays absent (rendered as dashes, not
// zeros — sampling absence is not measured zero).
type pairRow struct {
	name                  string
	leftCum, rightCum     int64
	leftPct, rightPct     float64
	leftShown, rightShown bool
}

// summarizePair renders two profiles side by side, matched by function
// name, ranked by the larger of the two cumulative shares.
func summarizePair(w io.Writer, leftPath, rightPath string, top int) error {
	lp, err := loadProfile(leftPath)
	if err != nil {
		return err
	}
	rp, err := loadProfile(rightPath)
	if err != nil {
		return err
	}
	lrows, ltotal, lunit := lp.byFunction()
	rrows, rtotal, runit := rp.byFunction()
	merged := make(map[string]*pairRow, len(lrows)+len(rrows))
	for _, r := range lrows {
		merged[r.name] = &pairRow{name: r.name, leftCum: r.cum,
			leftPct: pct(r.cum, ltotal), leftShown: true}
	}
	for _, r := range rrows {
		m := merged[r.name]
		if m == nil {
			m = &pairRow{name: r.name}
			merged[r.name] = m
		}
		m.rightCum, m.rightPct, m.rightShown = r.cum, pct(r.cum, rtotal), true
	}
	rows := make([]*pairRow, 0, len(merged))
	for _, m := range merged {
		rows = append(rows, m)
	}
	sort.Slice(rows, func(i, j int) bool {
		mi := max(rows[i].leftPct, rows[i].rightPct)
		mj := max(rows[j].leftPct, rows[j].rightPct)
		if mi != mj {
			return mi > mj
		}
		return rows[i].name < rows[j].name
	})
	if top < len(rows) {
		rows = rows[:top]
	}
	fmt.Fprintf(w, "left : %s — %s total across %d samples\n",
		leftPath, quantity(ltotal, lunit), len(lp.samples))
	fmt.Fprintf(w, "right: %s — %s total across %d samples\n",
		rightPath, quantity(rtotal, runit), len(rp.samples))
	fmt.Fprintf(w, "%12s %7s | %12s %7s  %s\n",
		"left cum", "cum%", "right cum", "cum%", "function")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %7s | %12s %7s  %s\n",
			sideQuantity(r.leftCum, lunit, r.leftShown), sidePct(r.leftPct, r.leftShown),
			sideQuantity(r.rightCum, runit, r.rightShown), sidePct(r.rightPct, r.rightShown),
			r.name)
	}
	return nil
}

// sideQuantity and sidePct render one side's cell, or a dash when the
// function never sampled on that side.
func sideQuantity(v int64, unit string, shown bool) string {
	if !shown {
		return "-"
	}
	return quantity(v, unit)
}

func sidePct(p float64, shown bool) string {
	if !shown {
		return "-"
	}
	return fmt.Sprintf("%6.1f%%", p)
}

// pct guards the zero-total edge (an empty profile).
func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// quantity renders a sample value in its unit; nanoseconds — the CPU
// profile's value unit — become seconds, anything else prints raw.
func quantity(v int64, unit string) string {
	if unit == "nanoseconds" {
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	}
	return fmt.Sprintf("%d %s", v, unit)
}
