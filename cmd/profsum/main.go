// Command profsum summarizes a pprof CPU profile as a top-N table of
// cumulative function cost, for CI artifact summaries:
//
//	profsum -top 20 trial32.pprof wire32.pprof
//
// For each profile it prints the functions ranked by cumulative time —
// the time spent in a function or anything it called, the number that
// says where a round-trip actually goes — alongside flat time (samples
// with the function on top of the stack). The parser reads the gzipped
// profile.proto stream directly with no dependencies, so CI can render
// summaries without a `go tool pprof` invocation per artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	top := flag.Int("top", 20, "number of functions to print per profile")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: profsum [-top N] profile.pprof [profile.pprof ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		if err := summarize(os.Stdout, path, *top); err != nil {
			fmt.Fprintf(os.Stderr, "profsum: %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

// summarize renders one profile's top-N table.
func summarize(w *os.File, path string, top int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prof, err := parseProfile(raw)
	if err != nil {
		return err
	}
	rows, total, unit := prof.byFunction()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		return rows[i].name < rows[j].name
	})
	if top < len(rows) {
		rows = rows[:top]
	}
	fmt.Fprintf(w, "%s: %s total across %d samples, %d functions\n",
		path, quantity(total, unit), len(prof.samples), len(prof.functions))
	fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "cum", "cum%", "flat", "flat%", "function")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %6.1f%% %12s %6.1f%%  %s\n",
			quantity(r.cum, unit), pct(r.cum, total),
			quantity(r.flat, unit), pct(r.flat, total), r.name)
	}
	return nil
}

// pct guards the zero-total edge (an empty profile).
func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// quantity renders a sample value in its unit; nanoseconds — the CPU
// profile's value unit — become seconds, anything else prints raw.
func quantity(v int64, unit string) string {
	if unit == "nanoseconds" {
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	}
	return fmt.Sprintf("%d %s", v, unit)
}
