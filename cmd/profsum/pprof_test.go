package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"runtime/pprof"
	"testing"
)

// enc is a minimal protobuf writer for building test profiles: just
// enough to exercise the reader against a known-good byte layout.
type enc struct{ buf bytes.Buffer }

func (e *enc) varint(x uint64) {
	for x >= 0x80 {
		e.buf.WriteByte(byte(x) | 0x80)
		x >>= 7
	}
	e.buf.WriteByte(byte(x))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *enc) uintField(field int, v uint64) {
	e.tag(field, 0)
	e.varint(v)
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(b)))
	e.buf.Write(b)
}

func (e *enc) msgField(field int, fill func(*enc)) {
	var inner enc
	fill(&inner)
	e.bytesField(field, inner.buf.Bytes())
}

func (e *enc) packedField(field int, vals ...uint64) {
	var inner enc
	for _, v := range vals {
		inner.varint(v)
	}
	e.bytesField(field, inner.buf.Bytes())
}

// testProfile builds a two-sample CPU profile by hand:
//
//	sample 1: stack leaf→root [inner, outer], 100ns
//	sample 2: stack [outer], 50ns
//
// so outer has cum 150 / flat 50 and inner cum 100 / flat 100.
func testProfile() []byte {
	var e enc
	// string_table: index 0 must be "".
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "outer", "inner"} {
		e.bytesField(6, []byte(s))
	}
	// sample_type: (samples, count), (cpu, nanoseconds).
	e.msgField(1, func(m *enc) { m.uintField(1, 1); m.uintField(2, 2) })
	e.msgField(1, func(m *enc) { m.uintField(1, 3); m.uintField(2, 4) })
	// functions: 1 = outer, 2 = inner.
	e.msgField(5, func(m *enc) { m.uintField(1, 1); m.uintField(2, 5) })
	e.msgField(5, func(m *enc) { m.uintField(1, 2); m.uintField(2, 6) })
	// locations: 1 → outer, 2 → inner.
	e.msgField(4, func(m *enc) {
		m.uintField(1, 1)
		m.msgField(4, func(l *enc) { l.uintField(1, 1) })
	})
	e.msgField(4, func(m *enc) {
		m.uintField(1, 2)
		m.msgField(4, func(l *enc) { l.uintField(1, 2) })
	})
	// samples, packed location ids leaf-first and packed values.
	e.msgField(2, func(m *enc) {
		m.packedField(1, 2, 1)
		m.packedField(2, 1, 100)
	})
	e.msgField(2, func(m *enc) {
		m.packedField(1, 1)
		m.packedField(2, 1, 50)
	})
	return e.buf.Bytes()
}

func TestParseSyntheticProfile(t *testing.T) {
	p, err := parseProfile(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.valueIndex(); got != 1 {
		t.Fatalf("valueIndex = %d, want 1 (cpu/nanoseconds)", got)
	}
	rows, total, unit := p.byFunction()
	if total != 150 || unit != "nanoseconds" {
		t.Fatalf("total = %d %s, want 150 nanoseconds", total, unit)
	}
	want := map[string]row{
		"outer": {name: "outer", cum: 150, flat: 50},
		"inner": {name: "inner", cum: 100, flat: 100},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for _, r := range rows {
		if r != want[r.name] {
			t.Errorf("row %q = %+v, want %+v", r.name, r, want[r.name])
		}
	}
}

// TestParseGzippedProfile pins transparent gzip handling — the format
// `go test -cpuprofile` writes.
func TestParseGzippedProfile(t *testing.T) {
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(testProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := parseProfile(zbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, total, _ := p.byFunction(); total != 150 {
		t.Fatalf("gzipped round-trip total = %d, want 150", total)
	}
}

// TestParseRealProfile round-trips a live runtime/pprof capture: the
// reader must accept whatever the current toolchain emits. Sample
// contents depend on scheduling, so the assertions stop at structural
// health (parse success, non-negative totals, resolvable sample type).
func TestParseRealProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	x := 0
	for i := 0; i < 1<<22; i++ {
		x += i * i
	}
	pprof.StopCPUProfile()
	_ = x
	p, err := parseProfile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sampleType) == 0 {
		t.Fatal("no sample types decoded")
	}
	if got := p.sampleType[p.valueIndex()]; got.typ != "cpu" || got.unit != "nanoseconds" {
		t.Fatalf("value column = %+v, want cpu/nanoseconds", got)
	}
	if _, total, _ := p.byFunction(); total < 0 {
		t.Fatalf("negative total %d", total)
	}
}

func TestParseTruncatedProfile(t *testing.T) {
	raw := testProfile()
	if _, err := parseProfile(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated profile accepted")
	}
}

// TestSummarizeEndToEnd runs the CLI path over a synthetic profile file.
func TestSummarizeEndToEnd(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	if err := os.WriteFile(path, testProfile(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarize(os.Stdout, path, 5); err != nil {
		t.Fatal(err)
	}
}
