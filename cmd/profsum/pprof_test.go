package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"runtime/pprof"
	"strings"
	"testing"
)

// enc is a minimal protobuf writer for building test profiles: just
// enough to exercise the reader against a known-good byte layout.
type enc struct{ buf bytes.Buffer }

func (e *enc) varint(x uint64) {
	for x >= 0x80 {
		e.buf.WriteByte(byte(x) | 0x80)
		x >>= 7
	}
	e.buf.WriteByte(byte(x))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *enc) uintField(field int, v uint64) {
	e.tag(field, 0)
	e.varint(v)
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(b)))
	e.buf.Write(b)
}

func (e *enc) msgField(field int, fill func(*enc)) {
	var inner enc
	fill(&inner)
	e.bytesField(field, inner.buf.Bytes())
}

func (e *enc) packedField(field int, vals ...uint64) {
	var inner enc
	for _, v := range vals {
		inner.varint(v)
	}
	e.bytesField(field, inner.buf.Bytes())
}

// testProfile builds a two-sample CPU profile by hand:
//
//	sample 1: stack leaf→root [inner, outer], 100ns
//	sample 2: stack [outer], 50ns
//
// so outer has cum 150 / flat 50 and inner cum 100 / flat 100.
func testProfile() []byte {
	var e enc
	// string_table: index 0 must be "".
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "outer", "inner"} {
		e.bytesField(6, []byte(s))
	}
	// sample_type: (samples, count), (cpu, nanoseconds).
	e.msgField(1, func(m *enc) { m.uintField(1, 1); m.uintField(2, 2) })
	e.msgField(1, func(m *enc) { m.uintField(1, 3); m.uintField(2, 4) })
	// functions: 1 = outer, 2 = inner.
	e.msgField(5, func(m *enc) { m.uintField(1, 1); m.uintField(2, 5) })
	e.msgField(5, func(m *enc) { m.uintField(1, 2); m.uintField(2, 6) })
	// locations: 1 → outer, 2 → inner.
	e.msgField(4, func(m *enc) {
		m.uintField(1, 1)
		m.msgField(4, func(l *enc) { l.uintField(1, 1) })
	})
	e.msgField(4, func(m *enc) {
		m.uintField(1, 2)
		m.msgField(4, func(l *enc) { l.uintField(1, 2) })
	})
	// samples, packed location ids leaf-first and packed values.
	e.msgField(2, func(m *enc) {
		m.packedField(1, 2, 1)
		m.packedField(2, 1, 100)
	})
	e.msgField(2, func(m *enc) {
		m.packedField(1, 1)
		m.packedField(2, 1, 50)
	})
	return e.buf.Bytes()
}

func TestParseSyntheticProfile(t *testing.T) {
	p, err := parseProfile(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.valueIndex(); got != 1 {
		t.Fatalf("valueIndex = %d, want 1 (cpu/nanoseconds)", got)
	}
	rows, total, unit := p.byFunction()
	if total != 150 || unit != "nanoseconds" {
		t.Fatalf("total = %d %s, want 150 nanoseconds", total, unit)
	}
	want := map[string]row{
		"outer": {name: "outer", cum: 150, flat: 50},
		"inner": {name: "inner", cum: 100, flat: 100},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for _, r := range rows {
		if r != want[r.name] {
			t.Errorf("row %q = %+v, want %+v", r.name, r, want[r.name])
		}
	}
}

// TestParseGzippedProfile pins transparent gzip handling — the format
// `go test -cpuprofile` writes.
func TestParseGzippedProfile(t *testing.T) {
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(testProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := parseProfile(zbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, total, _ := p.byFunction(); total != 150 {
		t.Fatalf("gzipped round-trip total = %d, want 150", total)
	}
}

// TestParseRealProfile round-trips a live runtime/pprof capture: the
// reader must accept whatever the current toolchain emits. Sample
// contents depend on scheduling, so the assertions stop at structural
// health (parse success, non-negative totals, resolvable sample type).
func TestParseRealProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	x := 0
	for i := 0; i < 1<<22; i++ {
		x += i * i
	}
	pprof.StopCPUProfile()
	_ = x
	p, err := parseProfile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sampleType) == 0 {
		t.Fatal("no sample types decoded")
	}
	if got := p.sampleType[p.valueIndex()]; got.typ != "cpu" || got.unit != "nanoseconds" {
		t.Fatalf("value column = %+v, want cpu/nanoseconds", got)
	}
	if _, total, _ := p.byFunction(); total < 0 {
		t.Fatalf("negative total %d", total)
	}
}

func TestParseTruncatedProfile(t *testing.T) {
	raw := testProfile()
	if _, err := parseProfile(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated profile accepted")
	}
}

// TestSummarizeEndToEnd runs the CLI path over a synthetic profile file.
func TestSummarizeEndToEnd(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	if err := os.WriteFile(path, testProfile(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarize(os.Stdout, path, 5); err != nil {
		t.Fatal(err)
	}
}

// altProfile is testProfile with outer absent and a third function
// "solo" present instead, so the pair table has all three matching
// shapes: both sides (inner), left only (outer), right only (solo).
func altProfile() []byte {
	var e enc
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "solo", "inner"} {
		e.bytesField(6, []byte(s))
	}
	e.msgField(1, func(m *enc) { m.uintField(1, 1); m.uintField(2, 2) })
	e.msgField(1, func(m *enc) { m.uintField(1, 3); m.uintField(2, 4) })
	e.msgField(5, func(m *enc) { m.uintField(1, 1); m.uintField(2, 5) })
	e.msgField(5, func(m *enc) { m.uintField(1, 2); m.uintField(2, 6) })
	e.msgField(4, func(m *enc) {
		m.uintField(1, 1)
		m.msgField(4, func(l *enc) { l.uintField(1, 1) })
	})
	e.msgField(4, func(m *enc) {
		m.uintField(1, 2)
		m.msgField(4, func(l *enc) { l.uintField(1, 2) })
	})
	// solo 300ns, inner 100ns: solo must outrank everything in the pair
	// table even though it only exists on the right side.
	e.msgField(2, func(m *enc) {
		m.packedField(1, 1)
		m.packedField(2, 1, 300)
	})
	e.msgField(2, func(m *enc) {
		m.packedField(1, 2)
		m.packedField(2, 1, 100)
	})
	return e.buf.Bytes()
}

// TestSummarizePair pins the side-by-side rendering: union of functions
// ranked by the larger cumulative share, dashes for a side a function
// never sampled on, and the -top cut applied to the merged ranking.
func TestSummarizePair(t *testing.T) {
	dir := t.TempDir()
	left, right := dir+"/left.pprof", dir+"/right.pprof"
	if err := os.WriteFile(left, testProfile(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(right, altProfile(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := summarizePair(&buf, left, right, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 header lines + 1 column line + 3 function rows.
	if len(lines) != 6 {
		t.Fatalf("%d output lines, want 6:\n%s", len(lines), out)
	}
	// Ranking by max share: outer 100% left, solo 75% right, inner 66.7%.
	for i, name := range []string{"outer", "solo", "inner"} {
		if !strings.HasSuffix(lines[3+i], name) {
			t.Errorf("row %d = %q, want function %s", i, lines[3+i], name)
		}
	}
	// outer never sampled on the right, solo never on the left: dashes.
	if !strings.Contains(lines[3], "|            -       -") {
		t.Errorf("outer row lacks right-side dashes: %q", lines[3])
	}
	if !strings.HasPrefix(strings.TrimLeft(lines[4], " "), "-") {
		t.Errorf("solo row lacks left-side dash: %q", lines[4])
	}
	// The -top cut applies to the merged ranking.
	buf.Reset()
	if err := summarizePair(&buf, left, right, 1); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Fatalf("top=1 rendered %d lines, want 4:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "outer") || strings.Contains(buf.String(), "solo") {
		t.Fatalf("top=1 must keep only the top-ranked function:\n%s", buf.String())
	}
}
