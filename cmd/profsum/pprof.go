package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// This file is a minimal reader for the pprof profile.proto wire
// format — just the fields a CPU-time summary needs: sample stacks and
// values, the location → line → function graph, and the string table.
// It understands both packed and unpacked repeated scalars, skips every
// field it does not know, and depends on nothing outside the standard
// library.

// profile is the decoded subset of a pprof profile.
type profile struct {
	strings    []string
	sampleType []valueType // parallel to each sample's value vector
	samples    []sample
	locations  map[uint64]location
	functions  map[uint64]string // id → name
}

// valueType is one (type, unit) pair of the profile's value vector,
// already resolved through the string table.
type valueType struct {
	typ, unit string
}

// sample is one stack sample: location ids leaf-first, one value per
// sample type.
type sample struct {
	locs   []uint64
	values []int64
}

// location is one address's line stack; multiple entries mean inlining,
// leaf-first, each naming a function id.
type location struct {
	funcIDs []uint64
}

// row is one function's accumulated cost.
type row struct {
	name      string
	cum, flat int64
}

// valueIndex picks which entry of each sample's value vector to
// accumulate: the cpu/nanoseconds column when present (the CPU
// profile's second column), else the last column.
func (p *profile) valueIndex() int {
	for i, vt := range p.sampleType {
		if vt.typ == "cpu" && vt.unit == "nanoseconds" {
			return i
		}
	}
	return len(p.sampleType) - 1
}

// byFunction folds the samples into per-function cumulative and flat
// cost. A function's cumulative cost counts each sample at most once no
// matter how often it recurs in the stack; flat cost counts only the
// leaf frame (the leaf location's first line, per pprof convention).
func (p *profile) byFunction() ([]row, int64, string) {
	vi := p.valueIndex()
	unit := ""
	if vi >= 0 && vi < len(p.sampleType) {
		unit = p.sampleType[vi].unit
	}
	cum := make(map[string]int64)
	flat := make(map[string]int64)
	seen := make(map[string]bool)
	var total int64
	for _, s := range p.samples {
		if vi < 0 || vi >= len(s.values) {
			continue
		}
		v := s.values[vi]
		total += v
		clear(seen)
		for li, locID := range s.locs {
			loc, ok := p.locations[locID]
			if !ok {
				continue
			}
			for fi, fid := range loc.funcIDs {
				name := p.functions[fid]
				if name == "" {
					continue
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
				if li == 0 && fi == 0 {
					flat[name] += v
				}
			}
		}
	}
	rows := make([]row, 0, len(cum))
	for name, c := range cum {
		rows = append(rows, row{name: name, cum: c, flat: flat[name]})
	}
	return rows, total, unit
}

// parseProfile decodes a (possibly gzipped) serialized profile.
func parseProfile(raw []byte) (*profile, error) {
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
	}
	p := &profile{
		locations: make(map[uint64]location),
		functions: make(map[uint64]string),
	}
	// First pass collects everything including the string table; string
	// indices are only resolved afterwards, since the table may follow
	// the messages that reference it.
	var sampleTypeIdx [][2]int64 // (type, unit) string indices
	var funcNameIdx []funcName
	err := fields(raw, func(field int, wire int, v uint64, chunk []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var typ, unit int64
			if err := fields(chunk, scalarPair(&typ, &unit)); err != nil {
				return err
			}
			sampleTypeIdx = append(sampleTypeIdx, [2]int64{typ, unit})
		case 2: // sample
			s, err := parseSample(chunk)
			if err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			id, loc, err := parseLocation(chunk)
			if err != nil {
				return err
			}
			p.locations[id] = loc
		case 5: // function
			fn, err := parseFunction(chunk)
			if err != nil {
				return err
			}
			funcNameIdx = append(funcNameIdx, fn)
		case 6: // string_table
			p.strings = append(p.strings, string(chunk))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i int64) string {
		if i < 0 || int(i) >= len(p.strings) {
			return ""
		}
		return p.strings[i]
	}
	for _, st := range sampleTypeIdx {
		p.sampleType = append(p.sampleType, valueType{typ: str(st[0]), unit: str(st[1])})
	}
	for _, fn := range funcNameIdx {
		p.functions[fn.id] = str(fn.name)
	}
	return p, nil
}

// funcName is a Function message before string resolution.
type funcName struct {
	id   uint64
	name int64
}

// parseSample decodes a Sample message (location_id = 1, value = 2).
func parseSample(b []byte) (sample, error) {
	var s sample
	err := fields(b, func(field int, wire int, v uint64, chunk []byte) error {
		switch field {
		case 1:
			return repeatedUint(wire, v, chunk, &s.locs)
		case 2:
			return repeatedInt(wire, v, chunk, &s.values)
		}
		return nil
	})
	return s, err
}

// parseLocation decodes a Location message (id = 1, line = 4 with
// function_id = 1).
func parseLocation(b []byte) (uint64, location, error) {
	var id uint64
	var loc location
	err := fields(b, func(field int, wire int, v uint64, chunk []byte) error {
		switch field {
		case 1:
			id = v
		case 4:
			return fields(chunk, func(f int, w int, lv uint64, _ []byte) error {
				if f == 1 {
					loc.funcIDs = append(loc.funcIDs, lv)
				}
				return nil
			})
		}
		return nil
	})
	return id, loc, err
}

// parseFunction decodes a Function message (id = 1, name = 2).
func parseFunction(b []byte) (funcName, error) {
	var fn funcName
	err := fields(b, func(field int, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			fn.id = v
		case 2:
			fn.name = int64(v)
		}
		return nil
	})
	return fn, err
}

// scalarPair reads two varint fields (1, 2) into the given slots — the
// shape of ValueType.
func scalarPair(a, b *int64) func(int, int, uint64, []byte) error {
	return func(field int, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			*a = int64(v)
		case 2:
			*b = int64(v)
		}
		return nil
	}
}

// repeatedUint appends a repeated uint64 field, packed or not.
func repeatedUint(wire int, v uint64, chunk []byte, out *[]uint64) error {
	if wire == 0 {
		*out = append(*out, v)
		return nil
	}
	for len(chunk) > 0 {
		x, n := uvarint(chunk)
		if n <= 0 {
			return fmt.Errorf("pprof: bad packed varint")
		}
		*out = append(*out, x)
		chunk = chunk[n:]
	}
	return nil
}

// repeatedInt is repeatedUint for int64 values.
func repeatedInt(wire int, v uint64, chunk []byte, out *[]int64) error {
	var u []uint64
	if err := repeatedUint(wire, v, chunk, &u); err != nil {
		return err
	}
	for _, x := range u {
		*out = append(*out, int64(x))
	}
	return nil
}

// fields walks one protobuf message, invoking fn per field. For varint
// fields v carries the value; for length-delimited fields chunk carries
// the bytes. Fixed32/64 fields are skipped (the profile schema the
// summary reads has none).
func fields(b []byte, fn func(field int, wire int, v uint64, chunk []byte) error) error {
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			return fmt.Errorf("pprof: bad field tag")
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(b)
			if n <= 0 {
				return fmt.Errorf("pprof: bad varint in field %d", field)
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 2: // length-delimited
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("pprof: truncated field %d", field)
			}
			chunk := b[n : n+int(l)]
			b = b[n+int(l):]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 1: // fixed64
			if len(b) < 8 {
				return fmt.Errorf("pprof: truncated fixed64 field %d", field)
			}
			b = b[8:]
		case 5: // fixed32
			if len(b) < 4 {
				return fmt.Errorf("pprof: truncated fixed32 field %d", field)
			}
			b = b[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// uvarint is binary.Uvarint without the import: returns the value and
// byte count, n <= 0 on malformed input.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, -1
		}
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
