package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rlnc/internal/serve"
)

// TestServeE2Golden is the control plane's acceptance differential: E2
// submitted over HTTP must produce the committed CLI golden byte for
// byte, and resubmitting it must be a cache hit that never reaches the
// execution machinery. GOMAXPROCS is pinned to 1 so the Monte-Carlo
// chunk boundaries — hence the float accumulation order in the rendered
// table — match the golden exactly, as in the CLI golden tests.
func TestServeE2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	st, err := serve.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	submit := func(body string) (int, serve.RunMeta) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var meta serve.RunMeta
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, meta
	}

	code, meta := submit(`{"experiment":"E2","quick":true,"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	// Stream the run's events to completion — the SSE contract the CI
	// job also exercises: the stream ends at the terminal event.
	resp, err := http.Get(ts.URL + "/v1/runs/" + meta.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(events, []byte("event: done")) {
		t.Fatalf("stream ended without a done event:\n%s", events)
	}

	fetchTable := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/runs/" + meta.ID + "/table")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("table: %d %s", resp.StatusCode, b)
		}
		return b
	}
	table := fetchTable()
	expectGolden(t, "run_E2_quick_seed7.golden", table)

	// Resubmission: same ID, zero additional executions, identical bytes.
	if srv.Executed() != 1 {
		t.Fatalf("executed %d runs, want 1", srv.Executed())
	}
	code2, meta2 := submit(`{"seed":7,"experiment":"e2","quick":true}`)
	if code2 != http.StatusOK || meta2.ID != meta.ID {
		t.Fatalf("resubmit: %d id=%s (want 200, id %s)", code2, meta2.ID, meta.ID)
	}
	if srv.Executed() != 1 {
		t.Fatalf("resubmission executed again: %d", srv.Executed())
	}
	if got := fetchTable(); !bytes.Equal(got, table) {
		t.Fatal("resubmitted table differs")
	}
}

// TestServeAlgorithmJob runs a real algorithm job end to end through
// the default runner: registry key, graph family, trials — and checks
// the run is deterministic (two daemons, same spec, byte-identical
// tables via the store's content addressing).
func TestServeAlgorithmJob(t *testing.T) {
	if testing.Short() {
		t.Skip("trial sweep in -short mode")
	}
	runOnce := func(dir string) (string, []byte) {
		t.Helper()
		st, err := serve.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(serve.Options{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
			strings.NewReader(`{"algorithm":{"key":"luby-mis","family":"cycle","n":24,"trials":50},"seed":9}`))
		if err != nil {
			t.Fatal(err)
		}
		var meta serve.RunMeta
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(30 * time.Second)
		for {
			r, err := http.Get(ts.URL + "/v1/runs/" + meta.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(r.Body).Decode(&meta); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if meta.Status == "done" || meta.Status == "error" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("run stuck at %s", meta.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if meta.Status != "done" {
			t.Fatalf("algorithm run failed: %+v", meta)
		}
		r, err := http.Get(ts.URL + "/v1/runs/" + meta.ID + "/table")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return meta.ID, b
	}
	id1, t1 := runOnce(t.TempDir())
	id2, t2 := runOnce(t.TempDir())
	if id1 != id2 {
		t.Fatalf("same spec, different IDs: %s vs %s", id1, id2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("same spec, different tables:\n%s\n---\n%s", t1, t2)
	}
	if !bytes.Contains(t1, []byte("rounds")) || !bytes.Contains(t1, []byte("messages")) {
		t.Fatalf("table missing metrics:\n%s", t1)
	}
}
