package main

import "testing"

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGraphFamilies(t *testing.T) {
	for _, fam := range []string{"cycle", "path", "complete", "star", "grid", "torus", "tree", "hypercube", "petersen"} {
		if err := cmdGraph([]string{"-family", fam, "-n", "5"}); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
	}
	if err := cmdGraph([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family accepted")
	}
	if err := cmdGraph([]string{"-family", "path", "-n", "4", "-dot"}); err != nil {
		t.Errorf("dot output: %v", err)
	}
}

func TestCmdSimAlgorithms(t *testing.T) {
	for _, algo := range []string{"cv", "random", "retry4", "luby-mis", "matching", "weak", "linial"} {
		if err := cmdSim([]string{"-algo", algo, "-n", "12", "-seed", "3"}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := cmdSim([]string{"-algo", "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"E15", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := cmdRun([]string{"-quick"}); err == nil {
		t.Error("missing ids accepted")
	}
}
