package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestMain doubles as the shard-worker entry point: `-transport tcp`
// spawns os.Executable() — under `go test` that is this test binary, so
// the dispatch below lets the golden tests exercise the real N-process
// execution path, worker processes included.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "shard-worker" {
		if err := cmdShardWorker(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "rlnc: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// captureStdout runs fn with os.Stdout redirected into a buffer and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	errRun := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// expectGolden compares output against a committed golden file. The
// goldens under testdata/ were generated from the boxed message engine
// BEFORE the wire-format migration, so these tests pin byte-identical
// CLI output across it: experiment tables, construction outputs, and
// the rounds/messages Stats lines all survive the transport change.
func expectGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (generated pre-wire-migration):\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestRunExperimentGolden pins a full message-algorithm experiment table
// (E2: retry coloring, the message-path construction of §1.1) byte for
// byte against the pre-migration engine.
func TestRunExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	out := captureStdout(t, func() error {
		return cmdRun([]string{"E2", "-quick", "-seed", "7"})
	})
	expectGolden(t, "run_E2_quick_seed7.golden", out)
}

// TestRunExperimentGoldenSharded is the end-to-end shard-equivalence
// differential at the CLI: `run E2 -shards 2` (and 4) must reproduce the
// committed unsharded golden byte for byte — the sharded engine may not
// change a single digit of a published table. GOMAXPROCS is pinned to 1
// for the duration so the Monte-Carlo chunk boundaries (and hence the
// float accumulation order) match the unsharded golden exactly.
func TestRunExperimentGoldenSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, shards := range []string{"2", "4"} {
		out := captureStdout(t, func() error {
			return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", shards})
		})
		expectGolden(t, "run_E2_quick_seed7.golden", out)
	}
}

// TestRunExperimentGoldenTransports is the transport differential at
// the CLI: `run E2 -shards 2` must reproduce the committed unsharded
// golden byte for byte over every cut-exchange transport — the
// in-process loopback-TCP links and the real N-process shard-worker
// path alike. GOMAXPROCS is pinned for the chunk boundaries, as in
// TestRunExperimentGoldenSharded.
func TestRunExperimentGoldenTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, transport := range []string{"tcp-loopback", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			out := captureStdout(t, func() error {
				return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", "2", "-transport", transport})
			})
			expectGolden(t, "run_E2_quick_seed7.golden", out)
		})
	}
}

// freePort reserves a loopback address for a control listener: bind an
// ephemeral port, note it, release it. The tiny window before the
// orchestrator rebinds is covered by the workers' control-dial retry.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startExternalWorker launches one `rlnc shard-worker` OS process (this
// test binary, re-exec'd through the TestMain dispatch) dialing the
// control address — the externally-started worker of a multi-host
// deployment, only on loopback. Workers may start before the
// orchestrator listens: the control dial retries.
func startExternalWorker(t *testing.T, control string, extra ...string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"shard-worker", "-connect", control, "-listen", "127.0.0.1:0", "-heartbeat", "100ms"}, extra...)
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

// TestRunMultiHostGolden drives the full multi-host path on loopback:
// the workers are NOT spawned by cmdRun but register themselves against
// `-control`, exactly as a fleet on separate hosts would — and the run's
// output must still be the committed unsharded golden, byte for byte.
func TestRunMultiHostGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	control := freePort(t)
	startExternalWorker(t, control)
	startExternalWorker(t, control)
	out := captureStdout(t, func() error {
		return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", "2", "-transport", "tcp", "-control", control})
	})
	expectGolden(t, "run_E2_quick_seed7.golden", out)
}

// TestRunMultiHostWorkerDeathGolden is the acceptance test of the
// requeue contract at the CLI: one of the two registered workers
// abruptly dies mid-run (-die-after-rounds), the scheduler requeues its
// in-flight trial chunk onto an executor built from the survivor, and
// the completed output is STILL byte-identical to the committed golden.
func TestRunMultiHostWorkerDeathGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	control := freePort(t)
	startExternalWorker(t, control, "-die-after-rounds", "35")
	startExternalWorker(t, control)
	out := captureStdout(t, func() error {
		return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", "2", "-transport", "tcp", "-control", control})
	})
	expectGolden(t, "run_E2_quick_seed7.golden", out)
}

// childPIDs lists this process's live (and zombie) direct children via
// /proc — the observable for the fleet-reap contract. Children are
// attributed to the OS thread that forked them, so every task's list is
// aggregated (the Go runtime execs from arbitrary threads).
func childPIDs(t *testing.T) []string {
	t.Helper()
	tasks, err := os.ReadDir("/proc/self/task")
	if err != nil {
		t.Skipf("no /proc children visibility: %v", err)
	}
	var pids []string
	for _, task := range tasks {
		b, err := os.ReadFile(fmt.Sprintf("/proc/self/task/%s/children", task.Name()))
		if err != nil {
			continue // thread exited between the listing and the read
		}
		pids = append(pids, strings.Fields(string(b))...)
	}
	return pids
}

// TestWorkerFleetReaped pins the orchestrator cleanup contract: after
// stop(), every spawned shard-worker process has been waited on — no
// zombies, no orphans left behind a `rlnc run -shards N -transport tcp`.
func TestWorkerFleetReaped(t *testing.T) {
	before := len(childPIDs(t))
	pool, stop, err := startWorkerProcesses(2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 || pool.Live() != 2 {
		t.Fatalf("fleet came up with size %d, live %d", pool.Size(), pool.Live())
	}
	if n := len(childPIDs(t)); n < before+2 {
		t.Fatalf("%d children while fleet runs, want >= %d", n, before+2)
	}
	stop()
	if n := len(childPIDs(t)); n > before {
		t.Fatalf("%d children after stop, want <= %d (workers not reaped)", n, before)
	}
}

// TestSimGolden pins the sim subcommand for every migrated message
// algorithm — outputs, validity verdicts, and Stats (rounds, messages)
// — against the pre-migration engine.
func TestSimGolden(t *testing.T) {
	for golden, args := range map[string][]string{
		"sim_cv_n24_seed5.golden":       {"-algo", "cv", "-n", "24", "-seed", "5"},
		"sim_retry4_n24_seed5.golden":   {"-algo", "retry4", "-n", "24", "-seed", "5"},
		"sim_luby_n24_seed5.golden":     {"-algo", "luby-mis", "-n", "24", "-seed", "5"},
		"sim_matching_n24_seed5.golden": {"-algo", "matching", "-n", "24", "-seed", "5"},
		"sim_linial_n24_seed5.golden":   {"-algo", "linial", "-n", "24", "-seed", "5"},
	} {
		args := args
		t.Run(golden, func(t *testing.T) {
			out := captureStdout(t, func() error { return cmdSim(args) })
			expectGolden(t, golden, out)
		})
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGraphFamilies(t *testing.T) {
	for _, fam := range []string{"cycle", "path", "complete", "star", "grid", "torus", "tree", "hypercube", "petersen"} {
		if err := cmdGraph([]string{"-family", fam, "-n", "5"}); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
	}
	if err := cmdGraph([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family accepted")
	}
	if err := cmdGraph([]string{"-family", "path", "-n", "4", "-dot"}); err != nil {
		t.Errorf("dot output: %v", err)
	}
}

func TestCmdSimAlgorithms(t *testing.T) {
	for _, algo := range []string{"cv", "random", "retry4", "luby-mis", "matching", "weak", "linial"} {
		if err := cmdSim([]string{"-algo", algo, "-n", "12", "-seed", "3"}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := cmdSim([]string{"-algo", "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"E15", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := cmdRun([]string{"-quick"}); err == nil {
		t.Error("missing ids accepted")
	}
}
