package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestMain doubles as the shard-worker entry point: `-transport tcp`
// spawns os.Executable() — under `go test` that is this test binary, so
// the dispatch below lets the golden tests exercise the real N-process
// execution path, worker processes included.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "shard-worker" {
		if err := cmdShardWorker(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "rlnc: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// captureStdout runs fn with os.Stdout redirected into a buffer and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	errRun := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// expectGolden compares output against a committed golden file. The
// goldens under testdata/ were generated from the boxed message engine
// BEFORE the wire-format migration, so these tests pin byte-identical
// CLI output across it: experiment tables, construction outputs, and
// the rounds/messages Stats lines all survive the transport change.
func expectGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (generated pre-wire-migration):\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestRunExperimentGolden pins a full message-algorithm experiment table
// (E2: retry coloring, the message-path construction of §1.1) byte for
// byte against the pre-migration engine.
func TestRunExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	out := captureStdout(t, func() error {
		return cmdRun([]string{"E2", "-quick", "-seed", "7"})
	})
	expectGolden(t, "run_E2_quick_seed7.golden", out)
}

// TestRunExperimentGoldenSharded is the end-to-end shard-equivalence
// differential at the CLI: `run E2 -shards 2` (and 4) must reproduce the
// committed unsharded golden byte for byte — the sharded engine may not
// change a single digit of a published table. GOMAXPROCS is pinned to 1
// for the duration so the Monte-Carlo chunk boundaries (and hence the
// float accumulation order) match the unsharded golden exactly.
func TestRunExperimentGoldenSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, shards := range []string{"2", "4"} {
		out := captureStdout(t, func() error {
			return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", shards})
		})
		expectGolden(t, "run_E2_quick_seed7.golden", out)
	}
}

// TestRunExperimentGoldenTransports is the transport differential at
// the CLI: `run E2 -shards 2` must reproduce the committed unsharded
// golden byte for byte over every cut-exchange transport — the
// in-process loopback-TCP links and the real N-process shard-worker
// path alike. GOMAXPROCS is pinned for the chunk boundaries, as in
// TestRunExperimentGoldenSharded.
func TestRunExperimentGoldenTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment table in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, transport := range []string{"tcp-loopback", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			out := captureStdout(t, func() error {
				return cmdRun([]string{"E2", "-quick", "-seed", "7", "-shards", "2", "-transport", transport})
			})
			expectGolden(t, "run_E2_quick_seed7.golden", out)
		})
	}
}

// TestSimGolden pins the sim subcommand for every migrated message
// algorithm — outputs, validity verdicts, and Stats (rounds, messages)
// — against the pre-migration engine.
func TestSimGolden(t *testing.T) {
	for golden, args := range map[string][]string{
		"sim_cv_n24_seed5.golden":       {"-algo", "cv", "-n", "24", "-seed", "5"},
		"sim_retry4_n24_seed5.golden":   {"-algo", "retry4", "-n", "24", "-seed", "5"},
		"sim_luby_n24_seed5.golden":     {"-algo", "luby-mis", "-n", "24", "-seed", "5"},
		"sim_matching_n24_seed5.golden": {"-algo", "matching", "-n", "24", "-seed", "5"},
		"sim_linial_n24_seed5.golden":   {"-algo", "linial", "-n", "24", "-seed", "5"},
	} {
		args := args
		t.Run(golden, func(t *testing.T) {
			out := captureStdout(t, func() error { return cmdSim(args) })
			expectGolden(t, golden, out)
		})
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGraphFamilies(t *testing.T) {
	for _, fam := range []string{"cycle", "path", "complete", "star", "grid", "torus", "tree", "hypercube", "petersen"} {
		if err := cmdGraph([]string{"-family", fam, "-n", "5"}); err != nil {
			t.Errorf("family %s: %v", fam, err)
		}
	}
	if err := cmdGraph([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family accepted")
	}
	if err := cmdGraph([]string{"-family", "path", "-n", "4", "-dot"}); err != nil {
		t.Errorf("dot output: %v", err)
	}
}

func TestCmdSimAlgorithms(t *testing.T) {
	for _, algo := range []string{"cv", "random", "retry4", "luby-mis", "matching", "weak", "linial"} {
		if err := cmdSim([]string{"-algo", algo, "-n", "12", "-seed", "3"}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := cmdSim([]string{"-algo", "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"E15", "-quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := cmdRun([]string{"-quick"}); err == nil {
		t.Error("missing ids accepted")
	}
}
