// Command rlnc drives the Randomized Local Network Computing
// reproduction: it lists and runs the experiment suite E1–E17 (one per
// quantitative statement of the paper, see DESIGN.md §5, plus the E17
// fault-injection study), inspects graph families, runs individual
// construction algorithms, and hosts shard workers for multi-process
// sharded execution.
//
// Usage:
//
//	rlnc list
//	rlnc run E1 E4 ...      [-quick] [-seed N] [-shards N] [-transport T]
//	                        [-drop P] [-delay P] [-crash P] [-crash-from R]
//	                        [-crash-until R] [-fault-seed N]
//	rlnc run all            [-quick] [-seed N] [-shards N] [-transport T]
//	rlnc graph -family cycle -n 12
//	rlnc sim -algo cv -n 64 [-seed N]
//	rlnc serve -listen HOST:PORT [-store DIR] [-control HOST:PORT -shards N]
//	rlnc shard-worker -connect HOST:PORT [-listen ADDR] [-advertise ADDR]
//	                  [-heartbeat D] [-connect-timeout D]
//
// # Fault injection
//
// The -drop/-delay/-crash flags assemble a local.FaultPlan and arm it on
// every trial executor of the run (report.Config.Fault): each message
// independently dropped with probability -drop or held one round with
// probability -delay, each live node crashing per round with probability
// -crash from round -crash-from on (recovering at -crash-until, or
// frozen for good when 0). Fault decisions come from a dedicated tape
// seeded by -fault-seed, decoupled from the experiment seed and keyed by
// (round, edge slot, lane), so faulty runs are exactly reproducible and
// per-trial outputs stay byte-identical across batch widths, shard
// counts, and transports. All-zero rates reproduce fault-free runs bit
// for bit. Experiment E17 sweeps this axis systematically — degradation
// of the E2/E3/E4 quantities against drop and crash rates.
//
// # Sharded transports
//
// With -shards N > 1, message-algorithm trial loops run on a sharded
// engine whose per-round cut exchange travels over the transport named
// by -transport:
//
//	chan          in-process channel links (default; zero-copy)
//	tcp-loopback  framed byte streams over loopback TCP sockets inside
//	              this process — the full codec/kernel path, one process
//	tcp           N real `rlnc shard-worker` OS processes: by default
//	              this process spawns them on loopback; with -control it
//	              instead listens for externally started workers (other
//	              hosts included), ships each one its shard of the job
//	              over a gob control stream, and the workers exchange cut
//	              blocks directly with each other over TCP
//
// Per-trial outputs are byte-identical across all transports; rendered
// tables additionally match the unsharded run whenever the Monte-Carlo
// worker chunking coincides (pin GOMAXPROCS=1 for exact equality, as CI
// does when diffing against the committed goldens).
//
// # The shard-worker protocol
//
// `rlnc shard-worker -connect HOST:PORT` dials the orchestrator's
// control listener (retrying with backoff for -connect-timeout, so
// worker and orchestrator start order is free) and serves jobs until
// the control connection closes. On its control stream the worker
// (1) announces itself with a versioned hello — protocol version, data
// listener address, the algorithm keys its binary registers, and its
// heartbeat period; a version mismatch fails registration immediately,
// so mixed fleet binaries cannot desync mid-run, (2) heartbeats every
// -heartbeat period so the orchestrator can tell a long computation
// from a dead process (four silent periods mark the worker dead),
// (3) receives jobs — CSR adjacency, partition bounds, its shard index,
// an algorithm registry key with flat int64 parameters, the peers' data
// addresses — and acks each after dialing/accepting the direct
// worker-to-worker TCP data links for its cuts (peer dials also retry
// with backoff while a peer's listener comes up), then (4) executes
// runs: per-run instances and draw seeds, followed by one command per
// round carrying the lane-liveness vector, each answered with per-lane
// delivered/finished counts (and collected outputs on the final
// command). Cut blocks cross the data links as the framed, versioned
// byte encoding of internal/local's codec. Randomness ships as draw
// seeds, so worker-side tapes are bit-identical to in-process ones.
//
// # Multi-host deployment
//
// One host runs the orchestrator, listening for worker registrations:
//
//	rlnc run E2 -shards 3 -transport tcp -control 0.0.0.0:7000
//
// Each worker host then runs (in any order, before or after — the
// control dial retries until -connect-timeout):
//
//	rlnc shard-worker -connect orch.example:7000 -listen 0.0.0.0:7001
//
// Firewalling: the orchestrator's -control port must accept the
// workers, and every worker's -listen port must accept its peer
// workers (cut blocks travel worker-to-worker, not through the
// orchestrator). When a worker binds a wildcard address, the address
// it advertises to peers is derived from its interface on the control
// connection; -advertise overrides it for NAT or multi-homed hosts.
// The run starts once -shards workers have registered. If a worker
// process dies mid-run, the orchestrator marks it dead via the lost
// control stream (or four missed heartbeats) and the Monte-Carlo
// scheduler requeues that worker group's trial chunk onto a fresh
// executor built from the survivors — output bytes are unchanged, per
// the sharding contract. When no workers survive, trial chunks fall
// back to in-process execution, still byte-identical.
//
// # The serve control plane
//
// `rlnc serve` turns the binary into a long-lived experiment daemon: an
// HTTP+JSON API (internal/serve) that accepts experiment and algorithm
// jobs, executes them on the same Monte-Carlo machinery as `rlnc run`,
// streams per-run progress as Server-Sent Events, and archives every
// finished table in a content-addressed run store under -store. Run IDs
// hash the job's canonical configuration, so resubmitting an identical
// job — however the JSON is spelled — is a cache hit served from the
// store without recompute. With -control and -shards the daemon fronts
// a multi-host shard-worker fleet: jobs submitted over HTTP execute
// across externally started `rlnc shard-worker` processes, exactly as
// `rlnc run -transport tcp -control` does for one run. See
// docs/OPERATIONS.md for the API reference and deployment walkthroughs,
// docs/ARCHITECTURE.md for where the daemon sits on the execution
// stack.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"rlnc/internal/construct"
	"rlnc/internal/exp"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
	"rlnc/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "shard-worker":
		err = cmdShardWorker(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rlnc: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlnc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rlnc — Randomized Local Network Computing (SPAA 2015) reproduction

commands:
  list                         list the experiment suite
  run <id>... | all            run experiments
                               (flags: -quick, -seed N, -shards N,
                                -transport chan|tcp-loopback|tcp,
                                -control ADDR for multi-host workers)
  graph -family F -n N         describe a graph family instance
  sim -algo A -n N             run a construction algorithm on a ring
  serve -listen ADDR           HTTP control plane with a content-addressed
                               run store (-store DIR; -control ADDR
                               -shards N to front a worker fleet)
  shard-worker -connect ADDR   host one shard for a tcp-transport run
                               (-listen/-advertise for multi-host)

`)
}

func cmdList() error {
	for _, e := range exp.All() {
		fmt.Printf("%-4s %s\n     reproduces: %s\n", e.ID(), e.Title(), e.PaperRef())
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced trial counts")
	seed := fs.Uint64("seed", 1, "tape-space seed")
	shards := fs.Int("shards", 1, "run message-algorithm trials on a sharded engine of N shards (byte-identical per-trial outputs)")
	transport := fs.String("transport", "chan", "sharded cut-exchange transport: chan (in-process links), tcp-loopback (byte streams over loopback sockets), tcp (N shard-worker OS processes)")
	control := fs.String("control", "", "with -transport tcp: listen on this address and await -shards externally started `rlnc shard-worker -connect` registrations (multi-host) instead of spawning loopback workers")
	drop := fs.Float64("drop", 0, "fault injection: per-message drop probability in [0,1]")
	delay := fs.Float64("delay", 0, "fault injection: per-message one-round delay probability in [0,1]")
	crash := fs.Float64("crash", 0, "fault injection: per-node per-round crash probability in [0,1]")
	crashFrom := fs.Int("crash-from", 1, "fault injection: first round crashes may fire (with -crash)")
	crashUntil := fs.Int("crash-until", 0, "fault injection: crashed nodes recover at this round (0: crashes are permanent)")
	faultSeed := fs.Uint64("fault-seed", 0, "fault injection: seed of the fault tape (decoupled from -seed)")
	var idArgs []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			break
		}
		idArgs = append(idArgs, a)
	}
	if err := fs.Parse(args[len(idArgs):]); err != nil {
		return err
	}
	if len(idArgs) == 0 {
		return fmt.Errorf("run: no experiment ids given (try `rlnc run all`)")
	}
	var exps []report.Experiment
	if len(idArgs) == 1 && strings.EqualFold(idArgs[0], "all") {
		exps = exp.All()
	} else {
		for _, id := range idArgs {
			e, ok := report.ByID(id)
			if !ok {
				return fmt.Errorf("run: unknown experiment %q", id)
			}
			exps = append(exps, e)
		}
	}
	cfg := report.Config{Quick: *quick, Seed: *seed, Shards: *shards}
	if *drop > 0 || *delay > 0 || *crash > 0 {
		cfg.Fault = &local.FaultPlan{
			Seed:       *faultSeed,
			Drop:       *drop,
			Delay:      *delay,
			CrashP:     *crash,
			CrashFrom:  *crashFrom,
			CrashUntil: *crashUntil,
		}
	}
	switch *transport {
	case "chan", "":
		// Default in-process channel links.
	case "tcp-loopback":
		cfg.NewSharded = func(plan *local.Plan, width, shards int) (*local.Sharded, error) {
			sh, err := plan.NewSharded(width, shards)
			if err != nil {
				return nil, err
			}
			sh.UseTCPLoopback()
			return sh, nil
		}
	case "tcp":
		if *shards < 2 {
			return fmt.Errorf("run: -transport tcp needs -shards >= 2")
		}
		var pool *local.WorkerPool
		var stop func()
		var err error
		if *control != "" {
			pool, stop, err = awaitWorkerFleet(*control, *shards)
		} else {
			pool, stop, err = startWorkerProcesses(*shards)
		}
		if err != nil {
			return fmt.Errorf("run: start shard workers: %w", err)
		}
		defer stop()
		cfg.NewSharded = func(plan *local.Plan, width, shards int) (*local.Sharded, error) {
			// The pool decides the shard count, not the request: the
			// executor is built from however many workers are still live
			// (clamped to the graph), so a mid-run worker death degrades
			// to the survivors instead of erroring the whole run — the
			// sharding contract keeps the output bytes identical either way.
			return plan.NewShardedRemote(width, pool)
		}
	default:
		return fmt.Errorf("run: unknown transport %q (chan, tcp-loopback, tcp)", *transport)
	}
	failed := 0
	for _, e := range exps {
		fmt.Print(report.Header(e))
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID(), err)
		}
		res.Render(os.Stdout)
		if !res.AllChecksPass() {
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

// cmdShardWorker hosts one shard of a tcp-transport run: it dials the
// orchestrator's control listener (retrying while the orchestrator comes
// up) and serves jobs until the control connection closes (see the
// package comment for the protocol and the multi-host deployment notes).
func cmdShardWorker(args []string) error {
	fs := flag.NewFlagSet("shard-worker", flag.ExitOnError)
	connect := fs.String("connect", "", "orchestrator control address HOST:PORT (required)")
	listen := fs.String("listen", "", "data-link listen address; bind a reachable interface (e.g. 0.0.0.0:7001) for multi-host runs (default: loopback ephemeral)")
	advertise := fs.String("advertise", "", "data-link address peer workers dial (default: derived from -listen, wildcard hosts replaced by this worker's interface on the control connection; set explicitly behind NAT)")
	heartbeat := fs.Duration("heartbeat", local.DefaultWorkerBeat, "control-stream heartbeat period; the orchestrator declares this worker dead after four silent periods")
	connectTimeout := fs.Duration("connect-timeout", 30*time.Second, "how long to keep retrying the control dial before giving up")
	dieAfter := fs.Int("die-after-rounds", 0, "testing: abruptly close every connection and exit after N round commands, simulating a worker death mid-run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("shard-worker: -connect is required")
	}
	ctrl, err := local.DialRetry("tcp", *connect, *connectTimeout)
	if err != nil {
		return fmt.Errorf("shard-worker: %w", err)
	}
	defer ctrl.Close()
	return local.ServeShardOpts(ctrl, local.ServeOptions{
		Listen:         *listen,
		Advertise:      *advertise,
		Beat:           *heartbeat,
		DieAfterRounds: *dieAfter,
	})
}

// acceptWorkers accepts n worker registrations on ln, handshaking each
// into a WorkerConn. On any failure every already-registered worker is
// closed before the error returns — no half-built fleet leaks.
func acceptWorkers(ln net.Listener, n int, each time.Duration) ([]*local.WorkerConn, error) {
	workers := make([]*local.WorkerConn, n)
	for i := 0; i < n; i++ {
		var err error
		if d, ok := ln.(*net.TCPListener); ok {
			err = d.SetDeadline(time.Now().Add(each))
		}
		var conn net.Conn
		if err == nil {
			conn, err = ln.Accept()
		}
		if err == nil {
			// NewWorkerConn closes the conn itself on a failed handshake.
			workers[i], err = local.NewWorkerConn(conn, each)
		}
		if err != nil {
			for _, w := range workers[:i] {
				w.Close()
			}
			return nil, fmt.Errorf("worker %d of %d: %w", i+1, n, err)
		}
	}
	return workers, nil
}

// awaitWorkerFleet listens on addr for n externally started
// `rlnc shard-worker -connect` registrations (the -control multi-host
// path) and assembles their pool; stop closes the control connections,
// which is the workers' shutdown signal.
func awaitWorkerFleet(addr string, n int) (pool *local.WorkerPool, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "rlnc: control listening on %s, awaiting %d shard workers\n", ln.Addr(), n)
	workers, err := acceptWorkers(ln, n, 2*time.Minute)
	if err != nil {
		return nil, nil, err
	}
	pool = local.NewWorkerPool(workers)
	return pool, pool.Close, nil
}

// startWorkerProcesses spawns n `rlnc shard-worker` OS processes wired
// back to this process's control listener and assembles their pool; stop
// shuts the pool down and reaps the processes. Every error path kills
// and reaps whatever was already spawned — a failed orchestrator start
// must not leave orphan worker processes behind.
func startWorkerProcesses(n int) (pool *local.WorkerPool, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var procs []*exec.Cmd
	// reap waits for the spawned workers, escalating to kill if any is
	// still alive after a grace period: a worker wedged in a syscall must
	// not wedge the orchestrator's exit (or leak as a zombie) with it.
	reap := func() {
		done := make(chan struct{})
		go func() {
			for _, p := range procs {
				p.Wait()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			for _, p := range procs {
				p.Process.Kill()
			}
			<-done
		}
	}
	kill := func() {
		for _, p := range procs {
			p.Process.Kill()
		}
		reap()
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "shard-worker", "-connect", ln.Addr().String())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			kill()
			return nil, nil, err
		}
		procs = append(procs, cmd)
	}
	workers, err := acceptWorkers(ln, n, 30*time.Second)
	if err != nil {
		kill()
		return nil, nil, err
	}
	pool = local.NewWorkerPool(workers)
	stop = func() {
		// Closing the control connections is the workers' shutdown signal;
		// reap so no zombies outlive the run.
		pool.Close()
		reap()
	}
	return pool, stop, nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	family := fs.String("family", "cycle", strings.Join(graph.Families(), "|"))
	n := fs.Int("n", 12, "size parameter")
	dot := fs.Bool("dot", false, "emit Graphviz DOT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.Family(*family, *n)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	fmt.Printf("%s  diameter=%d connected=%v\n", g, g.Diameter(), g.Connected())
	if *dot {
		fmt.Print(g.DOT(*family, nil))
	}
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	algoName := fs.String("algo", "cv", "cv|random|retry4|luby-mis|matching|weak|linial")
	n := fs.Int("n", 64, "ring size")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := ids.RandomPerm(*n, *seed)
	in, err := lang.NewInstance(graph.Cycle(*n), lang.EmptyInputs(*n), id)
	if err != nil {
		return err
	}
	var algo construct.Algorithm
	var language lang.Language
	switch *algoName {
	case "cv":
		algo = construct.ColeVishkinColoring(63)
		language = lang.ProperColoring(3)
	case "random":
		algo = construct.RandomColoring(3)
		language = lang.ProperColoring(3)
	case "retry4":
		algo = construct.RetryColoring{Q: 3, T: 4}
		language = lang.ProperColoring(3)
	case "luby-mis":
		algo = construct.LubyMISAlgorithm()
		language = lang.MIS()
	case "matching":
		algo = construct.MaximalMatchingAlgorithm()
		language = lang.MaximalMatching()
	case "weak":
		algo = construct.WeakColoringViaMIS()
		language = lang.WeakColoring(2)
	case "linial":
		algo = construct.LinialColoringFor(in)
		language = lang.ProperColoring(3)
	default:
		return fmt.Errorf("sim: unknown algorithm %q", *algoName)
	}
	draw := localrand.NewTapeSpace(*seed).Draw(0)
	y, err := algo.Run(in, &draw)
	if err != nil {
		return err
	}
	ok, err := language.Contains(&lang.Config{G: in.G, X: in.X, Y: y})
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\nnetwork:   %s\nvalid %s:  %v\n", algo.Name(), in.G, language.Name(), ok)
	if msg, isMsg := algo.(construct.MessageConstruction); isMsg {
		if res, err := local.RunMessage(in, msg.Algo, &draw, msg.Opts); err == nil {
			fmt.Printf("rounds:    %d\nmessages:  %d\n", res.Stats.Rounds, res.Stats.Messages)
		}
	}
	return nil
}

// cmdServe hosts the experiment control plane: an HTTP+JSON daemon
// accepting jobs against the experiment and algorithm registries,
// executing them through the shared Monte-Carlo machinery, and caching
// every finished table in the content-addressed run store under -store.
// With -control and -shards, the daemon first assembles a multi-host
// shard-worker fleet (externally started `rlnc shard-worker -connect`
// processes) and routes every job's sharded trial loops through it.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "HTTP listen address HOST:PORT")
	storeDir := fs.String("store", "runstore", "run-store directory (created if missing)")
	control := fs.String("control", "", "listen on this address for `rlnc shard-worker -connect` registrations and run jobs on the fleet (requires -shards)")
	shards := fs.Int("shards", 0, "with -control: fleet size to await before serving")
	maxQueue := fs.Int("max-queue", 64, "maximum accepted-but-unexecuted runs before submissions get 503")
	maxTrials := fs.Int("max-trials", 0, "maximum trials an algorithm job may request (0: default 100000)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*control != "") != (*shards > 0) {
		return fmt.Errorf("serve: -control and -shards must be set together")
	}
	st, err := serve.OpenStore(*storeDir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	opts := serve.Options{
		Store:    st,
		MaxQueue: *maxQueue,
		Limits:   serve.Limits{MaxTrials: *maxTrials},
		Logf: func(format string, fargs ...any) {
			fmt.Fprintf(os.Stderr, "rlnc serve: "+format+"\n", fargs...)
		},
	}
	if *control != "" {
		if *shards < 2 {
			return fmt.Errorf("serve: -shards must be at least 2 with -control")
		}
		pool, stop, err := awaitWorkerFleet(*control, *shards)
		if err != nil {
			return fmt.Errorf("serve: start shard workers: %w", err)
		}
		defer stop()
		opts.NewSharded = func(plan *local.Plan, width, shards int) (*local.Sharded, error) {
			// As in cmdRun's tcp transport: the pool sizes the executor from
			// its surviving workers, so fleet deaths degrade instead of
			// erroring (see the package comment on multi-host deployment).
			return plan.NewShardedRemote(width, pool)
		}
	}
	srv, err := serve.NewServer(opts)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "rlnc serve: listening on http://%s (run store %s)\n", ln.Addr(), st.Dir())
	return http.Serve(ln, srv)
}
