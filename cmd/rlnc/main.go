// Command rlnc drives the Randomized Local Network Computing
// reproduction: it lists and runs the experiment suite E1–E15 (one per
// quantitative statement of the paper, see DESIGN.md §5), inspects graph
// families, and runs individual construction algorithms.
//
// Usage:
//
//	rlnc list
//	rlnc run E1 E4 ...      [-quick] [-seed N] [-shards N]
//	rlnc run all            [-quick] [-seed N] [-shards N]
//	rlnc graph -family cycle -n 12
//	rlnc sim -algo cv -n 64 [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rlnc/internal/construct"
	"rlnc/internal/exp"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rlnc: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlnc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rlnc — Randomized Local Network Computing (SPAA 2015) reproduction

commands:
  list                         list the experiment suite
  run <id>... | all            run experiments (flags: -quick, -seed N, -shards N)
  graph -family F -n N         describe a graph family instance
  sim -algo A -n N             run a construction algorithm on a ring

`)
}

func cmdList() error {
	for _, e := range exp.All() {
		fmt.Printf("%-4s %s\n     reproduces: %s\n", e.ID(), e.Title(), e.PaperRef())
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced trial counts")
	seed := fs.Uint64("seed", 1, "tape-space seed")
	shards := fs.Int("shards", 1, "run message-algorithm trials on a sharded engine of N shards (byte-identical per-trial outputs)")
	var idArgs []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			break
		}
		idArgs = append(idArgs, a)
	}
	if err := fs.Parse(args[len(idArgs):]); err != nil {
		return err
	}
	if len(idArgs) == 0 {
		return fmt.Errorf("run: no experiment ids given (try `rlnc run all`)")
	}
	var exps []report.Experiment
	if len(idArgs) == 1 && strings.EqualFold(idArgs[0], "all") {
		exps = exp.All()
	} else {
		for _, id := range idArgs {
			e, ok := report.ByID(id)
			if !ok {
				return fmt.Errorf("run: unknown experiment %q", id)
			}
			exps = append(exps, e)
		}
	}
	cfg := report.Config{Quick: *quick, Seed: *seed, Shards: *shards}
	failed := 0
	for _, e := range exps {
		fmt.Printf("=== %s — %s\n    reproduces %s\n\n", e.ID(), e.Title(), e.PaperRef())
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID(), err)
		}
		res.Render(os.Stdout)
		if !res.AllChecksPass() {
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	family := fs.String("family", "cycle", "cycle|path|complete|star|grid|torus|tree|hypercube|petersen")
	n := fs.Int("n", 12, "size parameter")
	dot := fs.Bool("dot", false, "emit Graphviz DOT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	switch *family {
	case "cycle":
		g = graph.Cycle(*n)
	case "path":
		g = graph.Path(*n)
	case "complete":
		g = graph.Complete(*n)
	case "star":
		g = graph.Star(*n)
	case "grid":
		g = graph.Grid(*n, *n)
	case "torus":
		g = graph.Torus(*n, *n)
	case "tree":
		g = graph.CompleteTree(2, *n)
	case "hypercube":
		g = graph.Hypercube(*n)
	case "petersen":
		g = graph.Petersen()
	default:
		return fmt.Errorf("graph: unknown family %q", *family)
	}
	fmt.Printf("%s  diameter=%d connected=%v\n", g, g.Diameter(), g.Connected())
	if *dot {
		fmt.Print(g.DOT(*family, nil))
	}
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	algoName := fs.String("algo", "cv", "cv|random|retry4|luby-mis|matching|weak|linial")
	n := fs.Int("n", 64, "ring size")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := ids.RandomPerm(*n, *seed)
	in, err := lang.NewInstance(graph.Cycle(*n), lang.EmptyInputs(*n), id)
	if err != nil {
		return err
	}
	var algo construct.Algorithm
	var language lang.Language
	switch *algoName {
	case "cv":
		algo = construct.ColeVishkinColoring(63)
		language = lang.ProperColoring(3)
	case "random":
		algo = construct.RandomColoring(3)
		language = lang.ProperColoring(3)
	case "retry4":
		algo = construct.RetryColoring{Q: 3, T: 4}
		language = lang.ProperColoring(3)
	case "luby-mis":
		algo = construct.LubyMISAlgorithm()
		language = lang.MIS()
	case "matching":
		algo = construct.MaximalMatchingAlgorithm()
		language = lang.MaximalMatching()
	case "weak":
		algo = construct.WeakColoringViaMIS()
		language = lang.WeakColoring(2)
	case "linial":
		algo = construct.LinialColoringFor(in)
		language = lang.ProperColoring(3)
	default:
		return fmt.Errorf("sim: unknown algorithm %q", *algoName)
	}
	draw := localrand.NewTapeSpace(*seed).Draw(0)
	y, err := algo.Run(in, &draw)
	if err != nil {
		return err
	}
	ok, err := language.Contains(&lang.Config{G: in.G, X: in.X, Y: y})
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\nnetwork:   %s\nvalid %s:  %v\n", algo.Name(), in.G, language.Name(), ok)
	if msg, isMsg := algo.(construct.MessageConstruction); isMsg {
		if res, err := local.RunMessage(in, msg.Algo, &draw, msg.Opts); err == nil {
			fmt.Printf("rounds:    %d\nmessages:  %d\n", res.Stats.Rounds, res.Stats.Messages)
		}
	}
	return nil
}
