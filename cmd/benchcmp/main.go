// Command benchcmp compares two benchmark result files produced by
// `go test -json -bench ...` (test2json event streams) and fails when a
// named benchmark regressed in time/op beyond a tolerance. CI uses it to
// gate pull requests against the committed baseline BENCH_main.json:
//
//	benchcmp -old BENCH_main.json -new BENCH_pr.json \
//	    -max-regress 0.10 BenchmarkTrialPooledEngine BenchmarkTrialBatched32
//
// Benchmarks named on the command line must be present in both files;
// any other benchmark is reported for information but never gates.
//
// With -md, benchcmp instead renders one result file as a markdown
// table (fastest ns/op per benchmark, sorted by name) and exits — the
// README's benchmark table is regenerated from the committed baseline
// this way:
//
//	benchcmp -md BENCH_main.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// event is the subset of a test2json event benchcmp reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// test2json splits one benchmark result line across two output events —
// the name ("BenchmarkTrialBatched32      \t") and then the numbers
// ("     100\t     45931 ns/op\t..."), so the parser stitches a pending
// name to the next numbers event. Complete single-line results (plain
// -bench output piped through) are matched directly.
var (
	nameOnly   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)
	numsOnly   = regexp.MustCompile(`^\s*\d+\s+([0-9.]+) ns/op`)
	fullResult = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
)

// parse extracts benchmark-name → ns/op from a test2json stream. When a
// benchmark appears several times (-count > 1), the fastest run wins —
// the conventional noise-resistant choice.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	record := func(name string, ns float64) {
		if old, ok := out[name]; !ok || ns < old {
			out[name] = ns
		}
	}
	pending := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			ev = event{Action: "output", Output: string(line)} // plain -bench output
		}
		if ev.Action != "output" {
			continue
		}
		if m := fullResult.FindStringSubmatch(ev.Output); m != nil {
			if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
				record(m[1], ns)
			}
			pending = ""
			continue
		}
		if m := nameOnly.FindStringSubmatch(ev.Output); m != nil {
			pending = m[1]
			continue
		}
		if m := numsOnly.FindStringSubmatch(ev.Output); m != nil && pending != "" {
			if ns, err := strconv.ParseFloat(m[1], 64); err == nil {
				record(pending, ns)
			}
		}
		pending = ""
	}
	return out, sc.Err()
}

// writeMarkdown renders one parsed result set as a markdown table on
// stdout, sorted by benchmark name for stable diffs.
func writeMarkdown(ns map[string]float64) {
	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("| benchmark | ns/op |")
	fmt.Println("|---|---:|")
	for _, name := range names {
		fmt.Printf("| %s | %.0f |\n", name, ns[name])
	}
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark JSON (required)")
	newPath := flag.String("new", "", "candidate benchmark JSON (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated time/op regression (fraction)")
	mdPath := flag.String("md", "", "render this benchmark JSON as a markdown table and exit")
	flag.Parse()
	if *mdPath != "" {
		ns, err := parse(*mdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		writeMarkdown(ns)
		return
	}
	if *oldPath == "" || *newPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -old OLD.json -new NEW.json [-max-regress F] Benchmark... | benchcmp -md RESULTS.json")
		os.Exit(2)
	}
	oldNs, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newNs, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	failed := 0
	for _, name := range flag.Args() {
		o, okO := oldNs[name]
		n, okN := newNs[name]
		switch {
		case !okO:
			// A gated benchmark absent from the baseline means the gate
			// would silently stop gating (stale baseline, renamed
			// benchmark): fail loudly so the baseline gets regenerated.
			fmt.Printf("%-32s missing from baseline %s — FAIL\n", name, *oldPath)
			failed++
		case !okN:
			fmt.Printf("%-32s missing from candidate %s — FAIL\n", name, *newPath)
			failed++
		default:
			delta := n/o - 1
			verdict := "ok"
			if delta > *maxRegress {
				verdict = "FAIL"
				failed++
			}
			fmt.Printf("%-32s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n", name, o, n, 100*delta, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d benchmark(s) regressed beyond %.0f%%\n", failed, 100**maxRegress)
		os.Exit(1)
	}
}
