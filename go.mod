module rlnc

go 1.24
