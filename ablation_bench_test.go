package rlnc

import (
	"runtime"
	"testing"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
)

// Ablation benchmarks: quantify the design choices DESIGN.md commits to.

// --- Engine parallelism ----------------------------------------------------
// The round engine runs nodes on a GOMAXPROCS worker pool; the ablation
// pins the pool to one worker to measure the speedup the pool buys.

func benchEngineWithProcs(b *testing.B, procs int) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	n := 2048
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.RandomPerm(n, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, construct.ColeVishkin{MaxIDBits: 63}, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngineSerial(b *testing.B)   { benchEngineWithProcs(b, 1) }
func BenchmarkAblationEngineParallel(b *testing.B) { benchEngineWithProcs(b, runtime.NumCPU()) }

// --- Monte-Carlo pool -------------------------------------------------------

func benchMCWithProcs(b *testing.B, procs int) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Run(20000, func(trial int) bool {
			return localrand.NewSource(uint64(trial)).Float64() < 0.5
		})
	}
}

func BenchmarkAblationMCSerial(b *testing.B)   { benchMCWithProcs(b, 1) }
func BenchmarkAblationMCParallel(b *testing.B) { benchMCWithProcs(b, runtime.NumCPU()) }

// --- Per-worker engines in the Monte-Carlo harness ---------------------------
// The Plan/Engine design choice: each trial-pool worker holds one
// reusable engine (mc.RunWith) vs rebuilding execution state every trial
// (mc.Run), on the kind of construction trial every experiment runs.

func benchMCTrialLoop(b *testing.B, pooled bool) {
	n := 256
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	algo := local.ViewFunc{AlgoName: "random-3-color", R: 1, F: func(v *local.View) []byte {
		return lang.EncodeColor(v.Tape().Intn(3))
	}}
	space := localrand.NewTapeSpace(23)
	plan := local.MustPlan(in.G)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pooled {
			mc.RunWith(500, plan.NewEngine, func(eng *local.Engine, trial int) bool {
				draw := space.Draw(uint64(trial))
				return eng.RunView(in, algo, &draw)[0][0] == 0
			})
		} else {
			mc.Run(500, func(trial int) bool {
				draw := space.Draw(uint64(trial))
				return local.RunView(in, algo, &draw)[0][0] == 0
			})
		}
	}
}

func BenchmarkAblationMCPerTrialState(b *testing.B)   { benchMCTrialLoop(b, false) }
func BenchmarkAblationMCPerWorkerEngine(b *testing.B) { benchMCTrialLoop(b, true) }

// --- View vs message interface ----------------------------------------------
// The same radius-2 computation through the direct ball-view runner vs
// the full-information gossip adapter: the cost of faithful message
// simulation over omniscient extraction.

var summaryView = local.ViewFunc{
	AlgoName: "sum",
	R:        2,
	F: func(v *local.View) []byte {
		var s int64
		for _, id := range v.IDs {
			s += id
		}
		return []byte{byte(s)}
	},
}

func BenchmarkAblationViewDirect(b *testing.B) {
	n := 512
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local.RunView(in, summaryView, nil)
	}
}

func BenchmarkAblationViewViaGossip(b *testing.B) {
	n := 512
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	algo := local.FullInfo(summaryView)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, algo, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Retry rounds vs violations ---------------------------------------------
// The ε-slack design knob: each extra retry round buys a constant-factor
// violation reduction (E2b); the bench reports violations/op as a metric.

func benchRetry(b *testing.B, retries int) {
	n := 1200
	l := lang.ProperColoring(3)
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	space := localrand.NewTapeSpace(11)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		draw := space.Draw(uint64(i))
		y, err := (construct.RetryColoring{Q: 3, T: retries}).Run(in, &draw)
		if err != nil {
			b.Fatal(err)
		}
		total += l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y})
	}
	b.ReportMetric(float64(total)/float64(b.N), "violations/op")
}

func BenchmarkAblationRetry0(b *testing.B) { benchRetry(b, 0) }
func BenchmarkAblationRetry2(b *testing.B) { benchRetry(b, 2) }
func BenchmarkAblationRetry6(b *testing.B) { benchRetry(b, 6) }

// --- Scattered-set selection --------------------------------------------------
// Greedy BFS-order selection vs the naive quadratic rejection sampler.

func naiveScattered(g *graph.Graph, sep, want int) []int {
	var chosen []int
	for v := 0; v < g.N(); v++ {
		ok := true
		for _, u := range chosen {
			if d := g.Dist(u, v); d != -1 && d < sep {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, v)
			if want > 0 && len(chosen) >= want {
				break
			}
		}
	}
	return chosen
}

func BenchmarkAblationScatteredGreedy(b *testing.B) {
	g := graph.Cycle(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := g.ScatteredSet(16, 8); len(s) < 8 {
			b.Fatal("too few scattered nodes")
		}
	}
}

func BenchmarkAblationScatteredNaive(b *testing.B) {
	g := graph.Cycle(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := naiveScattered(g, 16, 8); len(s) < 8 {
			b.Fatal("too few scattered nodes")
		}
	}
}

// --- Linial reduction targets -------------------------------------------------
// Stopping the palette walk early (reduction only) vs walking greedily
// all the way to Δ+1: the greedy tail dominates the round count but not
// the wall-clock on bounded-degree graphs.

func benchLinial(b *testing.B, target int) {
	g := graph.Torus(8, 8)
	id := ids.RandomPerm(g.N(), 5)
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), id)
	if err != nil {
		b.Fatal(err)
	}
	algo := construct.LinialReduction{MaxDegree: 4, MaxIDBits: 32, TargetColors: target}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, algo, nil, local.RunOptions{MaxRounds: 4 * algo.Rounds()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(algo.Rounds()), "rounds")
}

func BenchmarkAblationLinialToDelta1(b *testing.B) { benchLinial(b, 5) }
func BenchmarkAblationLinialFixedPointOnly(b *testing.B) {
	algo := construct.LinialReduction{MaxDegree: 4, MaxIDBits: 32}
	benchLinial(b, algo.FixedPointPalette())
}
