package decide

import (
	"fmt"
	"math"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// selInstance builds a decision instance with the given selected set.
func selInstance(t testing.TB, g *graph.Graph, selected ...int) *lang.DecisionInstance {
	t.Helper()
	y := make([][]byte, g.N())
	for v := range y {
		y[v] = lang.EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = lang.EncodeSelected(true)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
}

// coloringInstance builds a decision instance carrying a coloring.
func coloringInstance(t testing.TB, g *graph.Graph, colors ...int) *lang.DecisionInstance {
	t.Helper()
	y := make([][]byte, g.N())
	for v, c := range colors {
		y[v] = lang.EncodeColor(c)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
}

func TestLCLDeciderMatchesLanguage(t *testing.T) {
	l := lang.ProperColoring(3)
	d := &LCLDecider{L: l}
	cases := []struct {
		di   *lang.DecisionInstance
		want bool
	}{
		{coloringInstance(t, graph.Cycle(6), 0, 1, 0, 1, 0, 1), true},
		{coloringInstance(t, graph.Cycle(6), 0, 0, 1, 0, 1, 2), false},
		{coloringInstance(t, graph.Path(4), 0, 1, 2, 0), true},
		{coloringInstance(t, graph.Path(4), 0, 0, 0, 0), false},
	}
	for i, tc := range cases {
		inLang, err := l.Contains(tc.di.Config())
		if err != nil {
			t.Fatal(err)
		}
		if inLang != tc.want {
			t.Fatalf("case %d: fixture mislabeled", i)
		}
		if got := Accepts(tc.di, d, nil); got != tc.want {
			t.Errorf("case %d: Accepts = %v, want %v", i, got, tc.want)
		}
	}
}

func TestLCLDeciderRejectSet(t *testing.T) {
	l := lang.ProperColoring(3)
	d := &LCLDecider{L: l}
	di := coloringInstance(t, graph.Cycle(6), 0, 0, 1, 0, 1, 2)
	rs := RejectSet(di, d, nil)
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Errorf("reject set = %v, want [0 1]", rs)
	}
}

func TestGoldenP(t *testing.T) {
	// p² = 1 − p characterizes the golden guarantee.
	if math.Abs(GoldenP*GoldenP-(1-GoldenP)) > 1e-12 {
		t.Errorf("GoldenP = %v does not satisfy p² = 1-p", GoldenP)
	}
	d := NewAMOSDecider()
	if math.Abs(d.Guarantee()-GoldenP) > 1e-12 {
		t.Errorf("guarantee %v, want %v", d.Guarantee(), GoldenP)
	}
}

func TestAMOSDeciderAcceptProbabilities(t *testing.T) {
	// Pr[all accept] = p^s for s selected nodes.
	g := graph.Cycle(24)
	space := localrand.NewTapeSpace(42)
	const trials = 40000
	for _, s := range []int{0, 1, 2, 4} {
		sel := make([]int, s)
		for i := range sel {
			sel[i] = i * 5
		}
		di := selInstance(t, g, sel...)
		est := AcceptProbability(di, NewAMOSDecider(), space, trials)
		want := math.Pow(GoldenP, float64(s))
		lo, hi := est.Wilson(3.3)
		if want < lo || want > hi {
			t.Errorf("s=%d: empirical %v not covering analytic %.4f", s, est, want)
		}
	}
}

func TestAMOSDeciderGuaranteeOverCorpus(t *testing.T) {
	g := graph.Path(16)
	amos := lang.AMOS{}
	var corpus []*LabeledInstance
	for _, sel := range [][]int{{}, {3}, {0, 15}, {2, 8, 14}} {
		li, err := Labeled(selInstance(t, g, sel...), amos, fmt.Sprintf("%d selected", len(sel)))
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, li)
	}
	rep := EstimateGuarantee(corpus, NewAMOSDecider(), localrand.NewTapeSpace(7), 20000)
	if rep.Min.P() <= 0.5 {
		t.Errorf("estimated guarantee %v <= 1/2", rep.Min)
	}
	// The binding constraint is the single-selected instance at p ≈ 0.618.
	lo, hi := rep.Min.Wilson(3.3)
	if GoldenP < lo-0.01 || GoldenP > hi+0.01 {
		t.Errorf("guarantee %v far from golden ratio", rep.Min)
	}
}

func TestBrokenAMOSDeciderFlagged(t *testing.T) {
	// A selected-acceptance probability of 0.3 gives guarantee 0.3 < 1/2
	// on single-selected instances; the estimator must expose it.
	g := graph.Path(12)
	li, err := Labeled(selInstance(t, g, 4), lang.AMOS{}, "one selected")
	if err != nil {
		t.Fatal(err)
	}
	rep := EstimateGuarantee([]*LabeledInstance{li}, &AMOSDecider{P: 0.3}, localrand.NewTapeSpace(9), 20000)
	if rep.Min.P() > 0.4 {
		t.Errorf("broken decider not flagged: %v", rep.Min)
	}
}

func TestResilientPInterval(t *testing.T) {
	for f := 1; f <= 12; f++ {
		p := ResilientP(f)
		lo := math.Exp2(-1 / float64(f))
		hi := math.Exp2(-1 / float64(f+1))
		if !(lo < p && p < hi) {
			t.Errorf("f=%d: p=%v outside (%v, %v)", f, p, lo, hi)
		}
		// The two Corollary 1 inequalities.
		if math.Pow(p, float64(f)) <= 0.5 {
			t.Errorf("f=%d: p^f = %v <= 1/2", f, math.Pow(p, float64(f)))
		}
		if 1-math.Pow(p, float64(f+1)) <= 0.5 {
			t.Errorf("f=%d: 1-p^{f+1} = %v <= 1/2", f, 1-math.Pow(p, float64(f+1)))
		}
	}
}

func TestResilientPPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for f=0")
		}
	}()
	ResilientP(0)
}

// plantBadBalls returns a C_n coloring with exactly 2*pairs bad balls.
func plantBadBalls(t testing.TB, n, pairs int) *lang.DecisionInstance {
	t.Helper()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 3
	}
	for i := 0; i < pairs; i++ {
		colors[6*i+1] = colors[6*i]
	}
	return coloringInstance(t, graph.Cycle(n), colors...)
}

func TestResilientDeciderAcceptProbability(t *testing.T) {
	l := lang.ProperColoring(3)
	space := localrand.NewTapeSpace(5)
	const trials = 30000
	for _, tc := range []struct {
		f     int
		pairs int
	}{
		{2, 0}, {2, 1}, {2, 2}, {4, 1}, {4, 3},
	} {
		d := NewResilientDecider(l, tc.f)
		di := plantBadBalls(t, 36, tc.pairs)
		bad := l.CountBadBalls(di.Config())
		if bad != 2*tc.pairs {
			t.Fatalf("fixture: %d bad balls, want %d", bad, 2*tc.pairs)
		}
		est := AcceptProbability(di, d, space, trials)
		want := math.Pow(d.P, float64(bad))
		lo, hi := est.Wilson(3.3)
		if want < lo || want > hi {
			t.Errorf("f=%d |F|=%d: empirical %v vs analytic %.4f", tc.f, bad, est, want)
		}
	}
}

func TestResilientDeciderGuaranteeAboveHalf(t *testing.T) {
	l := lang.ProperColoring(3)
	for f := 1; f <= 8; f *= 2 {
		d := NewResilientDecider(l, f)
		if d.Guarantee() <= 0.5 {
			t.Errorf("f=%d: guarantee %v <= 1/2", f, d.Guarantee())
		}
	}
}

func TestSlackNodeAwareDecider(t *testing.T) {
	l := lang.ProperColoring(3)
	d := NewSlackNodeAwareDecider(l, 0.1, 60)
	if d.Budget() != 6 {
		t.Errorf("budget = %d, want 6", d.Budget())
	}
	if d.Guarantee() <= 0.5 {
		t.Errorf("guarantee %v <= 1/2", d.Guarantee())
	}
	// Deterministic on violation-free instances.
	di := plantBadBalls(t, 60, 0)
	draw := localrand.NewTapeSpace(3).Draw(0)
	if !Accepts(di, d, &draw) {
		t.Error("slack decider rejected a perfect coloring")
	}
}

func TestAcceptsFarFrom(t *testing.T) {
	// A decider rejecting exactly at the node with the smallest identity.
	d := rejectAtMinID{}
	g := graph.Path(9)
	di := selInstance(t, g) // ids 1..9 along the path
	if Accepts(di, d, nil) {
		t.Fatal("fixture decider should reject somewhere")
	}
	// Node 0 carries id 1 and is the only rejector; far from node 0 at
	// distance >= 1 everything accepts.
	if !AcceptsFarFrom(di, d, nil, 0, 0) {
		t.Error("far-from-0 should exclude only node 0")
	}
	if AcceptsFarFrom(di, d, nil, 8, 2) {
		t.Error("far from node 8 must still see the rejection at node 0")
	}
}

type rejectAtMinID struct{}

func (rejectAtMinID) Name() string { return "reject-at-min-id" }
func (rejectAtMinID) Radius() int  { return 1 }
func (rejectAtMinID) Verdict(v *local.View) bool {
	// Reject iff the center carries identity 1.
	return v.IDs[0] != 1
}

// naiveAMOSDecider is the natural deterministic attempt: reject iff two
// selected nodes appear in the radius-t view. The fooling engine must
// defeat it for every t.
type naiveAMOSDecider struct{ t int }

func (d naiveAMOSDecider) Name() string { return fmt.Sprintf("naive-amos(t=%d)", d.t) }
func (d naiveAMOSDecider) Radius() int  { return d.t }
func (d naiveAMOSDecider) Verdict(v *local.View) bool {
	count := 0
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			count++
		}
	}
	return count <= 1
}

// paranoidAMOSDecider rejects whenever it sees any selected node — it
// fails the other way, rejecting legal configurations.
type paranoidAMOSDecider struct{ t int }

func (d paranoidAMOSDecider) Name() string { return "paranoid-amos" }
func (d paranoidAMOSDecider) Radius() int  { return d.t }
func (d paranoidAMOSDecider) Verdict(v *local.View) bool {
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			return false
		}
	}
	return true
}

func TestAMOSFoolingDefeatsNaiveDeciders(t *testing.T) {
	for _, radius := range []int{1, 2, 3, 4} {
		rep, err := AMOSFooling(naiveAMOSDecider{t: radius}, 2*radius+4)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Fails {
			t.Errorf("t=%d: naive decider not defeated", radius)
		}
		if !rep.AcceptsBoth {
			t.Errorf("t=%d: expected illegal double acceptance, got %+v", radius, rep)
		}
		if !rep.TransferConsistent {
			t.Errorf("t=%d: view-transfer prediction violated", radius)
		}
	}
}

func TestAMOSFoolingDefeatsParanoidDecider(t *testing.T) {
	rep, err := AMOSFooling(paranoidAMOSDecider{t: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fails || rep.AcceptsLeft {
		t.Errorf("paranoid decider should fail by rejecting legal configs: %+v", rep)
	}
}

func TestAMOSFoolingPathTooShort(t *testing.T) {
	if _, err := AMOSFooling(naiveAMOSDecider{t: 3}, 6); err == nil {
		t.Error("expected error for too-short path")
	}
}

func TestVerdictsParallelDeterminism(t *testing.T) {
	l := lang.ProperColoring(3)
	d := NewResilientDecider(l, 2)
	di := plantBadBalls(t, 36, 2)
	draw := localrand.NewTapeSpace(11).Draw(3)
	v1 := Verdicts(di, d, &draw)
	v2 := Verdicts(di, d, &draw)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("same draw, different verdicts at node %d", i)
		}
	}
}
