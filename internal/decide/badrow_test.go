package decide

import (
	"fmt"
	"math/rand"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

// badRowFamilies are the graph shapes of the row-decider differential:
// the standard contract families plus the star, whose fixed leaf order
// makes the order-sensitivity pins below deterministic.
func badRowFamilies(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rr, err := graph.RandomRegular(48, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle":          graph.Cycle(24),
		"grid":           graph.Grid(5, 5),
		"tree":           graph.CompleteTree(3, 3),
		"star":           graph.Star(9),
		"random-regular": rr,
	}
}

// corruptOutputs builds an adversarial output column: mostly valid
// colors/marks, salted with every malformed shape the deciders must
// treat identically on both paths — empty outputs, overlong outputs,
// out-of-palette colors, and (for selection languages) bad mark bytes.
func corruptOutputs(rng *rand.Rand, n, q int, selection bool) [][]byte {
	y := make([][]byte, n)
	for v := range y {
		switch rng.Intn(8) {
		case 0:
			y[v] = []byte{} // malformed: empty
		case 1:
			y[v] = []byte{0, 0} // malformed: two bytes
		case 2:
			if selection {
				y[v] = []byte{7} // malformed selection mark
			} else {
				y[v] = []byte{byte(q + rng.Intn(3))} // out of palette
			}
		default:
			if selection {
				y[v] = lang.EncodeSelected(rng.Intn(2) == 1)
			} else {
				y[v] = lang.EncodeColor(rng.Intn(q))
			}
		}
	}
	return y
}

// viewOnly strips the row decider from an LCL, leaving the per-ball
// view path — the reference side of the differential.
func viewOnly(l *lang.LCL) *LCLDecider {
	return &LCLDecider{L: &lang.LCL{LangName: l.LangName, Radius: l.Radius, Bad: l.Bad}}
}

// rowOnly replaces the ball predicate with a tripwire, so a dispatch
// that falls back to view assembly — instead of the BadRow fast path
// under test — fails loudly.
func rowOnly(l *lang.LCL) *LCLDecider {
	return &LCLDecider{L: &lang.LCL{
		LangName: l.LangName,
		Radius:   l.Radius,
		Bad: func(*lang.LabeledBall) bool {
			panic("decide: BadRow fast path not taken")
		},
		BadRow: l.BadRow,
	}}
}

// TestBadRowMatchesBallPath is the row-decider differential: for every
// language defining BadRow, on every family, across seeds of corrupted
// output columns, Exec.Verdicts through the BadRow fast path must equal
// the per-ball view path node for node — malformed outputs, planted
// violations, and out-of-palette colors included. The rowOnly tripwire
// asserts the fast path actually dispatched.
func TestBadRowMatchesBallPath(t *testing.T) {
	langs := []struct {
		l         *lang.LCL
		selection bool
	}{
		{lang.ProperColoring(3), false},
		{lang.WeakColoring(3), false},
		{lang.MIS(), true},
	}
	for name, g := range badRowFamilies(t) {
		n := g.N()
		id := ids.RandomPerm(n, 17)
		for _, lc := range langs {
			if lc.l.BadRow == nil {
				t.Fatalf("%s defines no BadRow", lc.l.LangName)
			}
			t.Run(fmt.Sprintf("%s/%s", name, lc.l.LangName), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n * 1000)))
				x := lang.EmptyInputs(n)
				mem := &Mem{}
				const lanes = 2
				for seed := 0; seed < 4; seed++ {
					dis := make([]*lang.DecisionInstance, lanes)
					for b := range dis {
						dis[b] = &lang.DecisionInstance{
							G: g, X: x, Y: corruptOutputs(rng, n, 3, lc.selection), ID: id,
						}
					}
					want := Exec{}.Verdicts(dis, viewOnly(lc.l), nil)
					got := Exec{Mem: mem}.Verdicts(dis, rowOnly(lc.l), nil)
					for b := 0; b < lanes; b++ {
						for v := 0; v < n; v++ {
							if want[b][v] != got[b][v] {
								t.Fatalf("seed %d lane %d node %d: row path %v, view path %v (y=%x)",
									seed, b, v, got[b][v], want[b][v], dis[b].Y[v])
							}
						}
					}
				}
			})
		}
	}
}

// TestBadRowWeakColoringOrder pins the order-sensitive clause of
// WeakColoring's BadRow on a fixed star: the neighbor scan must stop at
// the first differing neighbor — acquitting the center even when a
// LATER neighbor is malformed — but convict when the malformed neighbor
// comes first, exactly as the ball predicate's early returns do. The
// star's leaf order is the center's port order, so the two cases are
// deterministic.
func TestBadRowWeakColoringOrder(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..4 in port order
	n := g.N()
	l := lang.WeakColoring(3)
	id := ids.Consecutive(n)
	x := lang.EmptyInputs(n)
	build := func(first, second []byte) *lang.DecisionInstance {
		y := make([][]byte, n)
		for v := range y {
			y[v] = lang.EncodeColor(0)
		}
		y[1], y[2] = first, second
		return &lang.DecisionInstance{G: g, X: x, Y: y, ID: id}
	}
	cases := []struct {
		name      string
		di        *lang.DecisionInstance
		centerBad bool
	}{
		// A differing leaf before the malformed one acquits the center.
		{"differing-then-malformed", build(lang.EncodeColor(1), []byte{}), false},
		// A malformed leaf before any differing one convicts it.
		{"malformed-then-differing", build([]byte{}, lang.EncodeColor(1)), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := Exec{}.Verdicts([]*lang.DecisionInstance{c.di}, viewOnly(l), nil)
			got := Exec{}.Verdicts([]*lang.DecisionInstance{c.di}, rowOnly(l), nil)
			// The verdict is the negated predicate: centerBad ⇒ verdict false.
			if got[0][0] != !c.centerBad {
				t.Errorf("row path center verdict %v; want %v", got[0][0], !c.centerBad)
			}
			if want[0][0] != got[0][0] {
				t.Errorf("view path center verdict %v, row path %v", want[0][0], got[0][0])
			}
		})
	}
}
