package decide

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// TestPooledVerdictsMatchSingleShot pins that the engine-pooled decision
// path (VerdictsWith / AcceptsWith / AcceptsFarFromWith) produces
// identical verdicts to the one-shot path for randomized and
// deterministic deciders, across back-to-back reuse with fresh
// DecisionInstances per trial — the exact shape of the experiment loops.
func TestPooledVerdictsMatchSingleShot(t *testing.T) {
	l := lang.ProperColoring(3)
	g := graph.Cycle(18)
	colors := make([]int, 18)
	for v := range colors {
		colors[v] = v % 3
	}
	colors[4] = colors[3] // plant one violation
	space := localrand.NewTapeSpace(13)

	plan, err := local.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	det := &LCLDecider{L: l}
	for trial := 0; trial < 5; trial++ {
		// Fresh instance per trial, like the Monte-Carlo harness builds.
		di := coloringInstance(t, g, colors...)
		draw := space.Draw(uint64(trial))

		want := Verdicts(di, det, &draw)
		got := VerdictsWith(eng, di, det, &draw)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("trial %d node %d: pooled verdict %v, single-shot %v", trial, v, got[v], want[v])
			}
		}
		if Accepts(di, det, &draw) != AcceptsWith(eng, di, det, &draw) {
			t.Fatalf("trial %d: Accepts disagrees", trial)
		}
		for _, u := range []int{0, 4, 9} {
			for _, far := range []int{1, 3} {
				if AcceptsFarFrom(di, det, &draw, u, far) != AcceptsFarFromWith(eng, di, det, &draw, u, far) {
					t.Fatalf("trial %d: AcceptsFarFrom(u=%d, far=%d) disagrees", trial, u, far)
				}
			}
		}
	}

	// Randomized decider: verdicts depend on tapes, so this also pins the
	// pooled tape threading.
	rnd := NewResilientDecider(l, 1)
	for trial := 0; trial < 5; trial++ {
		di := coloringInstance(t, g, colors...)
		draw := space.Draw(uint64(100 + trial))
		want := Verdicts(di, rnd, &draw)
		got := VerdictsWith(eng, di, rnd, &draw)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("randomized trial %d node %d: pooled %v, single-shot %v", trial, v, got[v], want[v])
			}
		}
	}
}
