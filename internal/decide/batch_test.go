package decide

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// TestBatchVerdictsMatchPooledAndSingleShot pins the decision-side
// equivalence contract: every lane of VerdictsBatch / AcceptsBatch /
// AcceptsFarFromBatch — full batches, ragged tails, back-to-back reuse of
// one Batch — matches the pooled engine path and the one-shot path at the
// same (instance, draw), for deterministic and randomized deciders.
func TestBatchVerdictsMatchPooledAndSingleShot(t *testing.T) {
	l := lang.ProperColoring(3)
	g := graph.Cycle(18)
	colors := make([]int, 18)
	for v := range colors {
		colors[v] = v % 3
	}
	colors[4] = colors[3] // plant one violation
	space := localrand.NewTapeSpace(29)

	plan, err := local.NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	const width = 4
	bt := plan.NewBatch(width)
	eng := plan.NewEngine()

	for _, d := range []Decider{&LCLDecider{L: l}, NewResilientDecider(l, 1)} {
		lo := 0
		for rep, k := range []int{width, width - 1, width} {
			// Fresh instances per lane, like the Monte-Carlo harness builds:
			// shared identity/input columns, per-lane output columns.
			dis := make([]*lang.DecisionInstance, k)
			draws := make([]localrand.Draw, k)
			for b := 0; b < k; b++ {
				dis[b] = coloringInstance(t, g, colors...)
				draws[b] = space.Draw(uint64(lo + b))
			}
			got := VerdictsBatch(bt, dis, d, draws)
			accs := AcceptsBatch(bt, dis, d, draws)
			for b := 0; b < k; b++ {
				want := Verdicts(dis[b], d, &draws[b])
				pooled := VerdictsWith(eng, dis[b], d, &draws[b])
				for v := range want {
					if want[v] != got[b][v] {
						t.Fatalf("%s rep %d lane %d node %d: batched %v, single-shot %v", d.Name(), rep, b, v, got[b][v], want[v])
					}
					if pooled[v] != got[b][v] {
						t.Fatalf("%s rep %d lane %d node %d: batched %v, pooled %v", d.Name(), rep, b, v, got[b][v], pooled[v])
					}
				}
				if accs[b] != Accepts(dis[b], d, &draws[b]) {
					t.Fatalf("%s rep %d lane %d: AcceptsBatch disagrees", d.Name(), rep, b)
				}
				for _, u := range []int{0, 4, 9} {
					for _, far := range []int{1, 3} {
						farBatch := AcceptsFarFromBatch(bt, dis, d, draws, u, far)
						if farBatch[b] != AcceptsFarFrom(dis[b], d, &draws[b], u, far) {
							t.Fatalf("%s rep %d lane %d: AcceptsFarFromBatch(u=%d, far=%d) disagrees with one-shot", d.Name(), rep, b, u, far)
						}
						if farBatch[b] != AcceptsFarFromWith(eng, dis[b], d, &draws[b], u, far) {
							t.Fatalf("%s rep %d lane %d: AcceptsFarFromBatch(u=%d, far=%d) disagrees with pooled", d.Name(), rep, b, u, far)
						}
					}
				}
			}
			lo += k
		}
	}

	// Deterministic deciders accept nil draws (the benchmark trial shape).
	dis := []*lang.DecisionInstance{coloringInstance(t, g, colors...), coloringInstance(t, g, colors...)}
	det := &LCLDecider{L: l}
	got := VerdictsBatch(bt, dis, det, nil)
	want := Verdicts(dis[0], det, nil)
	for b := range dis {
		for v := range want {
			if want[v] != got[b][v] {
				t.Fatalf("nil-draw lane %d node %d: %v, want %v", b, v, got[b][v], want[v])
			}
		}
	}
}

// TestBatchedGuaranteeEstimatorsMatchScalar pins that the batched
// estimators replay exactly the per-trial draws of the scalar loops they
// replaced, so their estimates are identical, not merely close.
func TestBatchedGuaranteeEstimatorsMatchScalar(t *testing.T) {
	l := lang.ProperColoring(3)
	g := graph.Cycle(12)
	colors := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	di := coloringInstance(t, g, colors...)
	d := NewResilientDecider(l, 2)
	space := localrand.NewTapeSpace(123)
	const trials = 100

	est := AcceptProbability(di, d, space, trials)
	wantSucc := 0
	for trial := 0; trial < trials; trial++ {
		draw := space.Draw(uint64(trial))
		if Accepts(di, d, &draw) {
			wantSucc++
		}
	}
	if est.Successes != wantSucc || est.Trials != trials {
		t.Errorf("AcceptProbability = %v, want %d/%d", est, wantSucc, trials)
	}

	estFar := AcceptFarFromProbability(di, d, space, trials, 0, 2)
	wantSucc = 0
	for trial := 0; trial < trials; trial++ {
		draw := space.Draw(uint64(trial))
		if AcceptsFarFrom(di, d, &draw, 0, 2) {
			wantSucc++
		}
	}
	if estFar.Successes != wantSucc {
		t.Errorf("AcceptFarFromProbability = %v, want %d/%d", estFar, wantSucc, trials)
	}

	li, err := Labeled(di, l, "proper ring")
	if err != nil {
		t.Fatal(err)
	}
	rep := EstimateGuarantee([]*LabeledInstance{li}, d, space, trials)
	wantSucc = 0
	for trial := 0; trial < trials; trial++ {
		draw := space.Draw(uint64(trial))
		if Accepts(di, d, &draw) == li.InL {
			wantSucc++
		}
	}
	if rep.PerInstance[0].Successes != wantSucc {
		t.Errorf("EstimateGuarantee = %v, want %d/%d", rep.PerInstance[0], wantSucc, trials)
	}
	if rep.Min != rep.PerInstance[0] {
		t.Errorf("Min = %v, want %v", rep.Min, rep.PerInstance[0])
	}
}
