package decide

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

// This file implements the indistinguishability argument of §2.3.1: amos
// cannot be deterministically decided in D/2 − 1 rounds on graphs of
// diameter D, "because no node can decide whether or not two nodes at
// distance D are selected". The engine makes the argument executable for
// an arbitrary deterministic decider: on a long path, the configuration
// with both endpoints selected is locally indistinguishable from the two
// legal single-endpoint configurations, so any decider accepting both
// legal configurations must accept the illegal one.

// FoolingReport records the outcome of the argument for one decider.
type FoolingReport struct {
	Radius  int
	PathLen int
	// Acceptance of the three configurations: left endpoint selected,
	// right endpoint selected, both selected.
	AcceptsLeft, AcceptsRight, AcceptsBoth bool
	// TransferConsistent confirms the indistinguishability prediction:
	// at every node, the verdict on the double configuration equals the
	// verdict on whichever single configuration presents the same view.
	TransferConsistent bool
	// Fails is true when the decider provably does not decide amos on
	// this instance family (it rejects a legal configuration or accepts
	// the illegal one).
	Fails bool
	// Reason explains the failure mode.
	Reason string
}

// AMOSFooling runs the indistinguishability argument against a
// deterministic decider on a path of pathLen nodes with consecutive
// identities. pathLen must be at least 2*Radius+3 so that the two
// endpoints are invisible to each other's radius-t views.
func AMOSFooling(d Decider, pathLen int) (*FoolingReport, error) {
	t := d.Radius()
	if pathLen < 2*t+3 {
		return nil, fmt.Errorf("decide: path of %d nodes too short for radius %d (need >= %d)", pathLen, t, 2*t+3)
	}
	g := graph.Path(pathLen)
	id := ids.Consecutive(pathLen)
	mk := func(selected ...int) *lang.DecisionInstance {
		y := make([][]byte, pathLen)
		for v := range y {
			y[v] = lang.EncodeSelected(false)
		}
		for _, v := range selected {
			y[v] = lang.EncodeSelected(true)
		}
		return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(pathLen), Y: y, ID: id}
	}
	left := mk(0)
	right := mk(pathLen - 1)
	both := mk(0, pathLen-1)

	vLeft := Verdicts(left, d, nil)
	vRight := Verdicts(right, d, nil)
	vBoth := Verdicts(both, d, nil)

	rep := &FoolingReport{
		Radius:             t,
		PathLen:            pathLen,
		AcceptsLeft:        all(vLeft),
		AcceptsRight:       all(vRight),
		AcceptsBoth:        all(vBoth),
		TransferConsistent: true,
	}
	// Check the transfer prediction node by node: a node that cannot see
	// the right endpoint has the same view in `both` as in `left`, and
	// symmetrically; every node is in at least one of the two cases when
	// pathLen >= 2t+3.
	for v := 0; v < pathLen; v++ {
		distRight := pathLen - 1 - v
		distLeft := v
		if distRight > t && vBoth[v] != vLeft[v] {
			rep.TransferConsistent = false
		}
		if distLeft > t && vBoth[v] != vRight[v] {
			rep.TransferConsistent = false
		}
	}
	switch {
	case !rep.AcceptsLeft || !rep.AcceptsRight:
		rep.Fails = true
		rep.Reason = "rejects a legal single-selection configuration"
	case rep.AcceptsBoth:
		rep.Fails = true
		rep.Reason = "accepts the illegal double-selection configuration"
	default:
		// Unreachable for a genuinely local deterministic decider; kept
		// for deciders that cheat (e.g. non-determinism or global state).
		rep.Reason = "decider escaped the fooling argument (non-local behavior?)"
	}
	return rep, nil
}

func all(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}
