// Package decide implements distributed decision in the LOCAL model
// (§2.2.1, §2.3): deciders are constant-radius algorithms in which every
// node outputs true or false after inspecting its view of the input-output
// configuration; the configuration is accepted iff all nodes output true.
//
// Deterministic deciders witness membership in LD; randomized Monte-Carlo
// deciders with guarantee p > 1/2 (Eq. (1) of the paper) witness
// membership in BPLD. The package provides the canonical LCL decider, the
// golden-ratio AMOS decider of §2.3.1, the f-resilient decider from the
// proof of Corollary 1, the #node-aware ε-slack decider of §5, the
// "accepts far from v" evaluation used by Claims 4–5, and a guarantee
// estimator.
package decide

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Decider is a local decision algorithm: every node computes a boolean
// verdict from its radius-t view of the configuration (inputs, outputs,
// identities, and — for randomized deciders — its private tape).
type Decider interface {
	Name() string
	Radius() int
	Verdict(v *local.View) bool
}

// oneDraw lifts an optional scalar draw into the vector shape the Exec
// verbs take.
func oneDraw(draw *localrand.Draw) []localrand.Draw {
	if draw == nil {
		return nil
	}
	return []localrand.Draw{*draw}
}

// Verdicts runs the decider at every node; draw carries the decider's
// randomness (nil for deterministic deciders).
//
// Deprecated: use Exec.Verdicts — the zero Exec is this computation.
func Verdicts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	return Exec{}.Verdicts([]*lang.DecisionInstance{di}, d, oneDraw(draw))[0]
}

// Accepts reports whether every node outputs true — the acceptance rule of
// §2.2.1.
//
// Deprecated: use Exec.Accepts.
func Accepts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	return Exec{}.Accepts([]*lang.DecisionInstance{di}, d, oneDraw(draw))[0]
}

// RejectSet returns the nodes voting false: the set Reject(u, σ′) of the
// proof of Claim 4.
func RejectSet(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []int {
	var out []int
	for v, ok := range Verdicts(di, d, draw) {
		if !ok {
			out = append(out, v)
		}
	}
	return out
}

// AcceptsFarFrom reports whether the decider outputs true at every node at
// distance greater than far from u — "D accepts (G,(x,y)) far from u" in
// §3. Nodes within distance far of u are ignored.
//
// Deprecated: use Exec.AcceptsFarFrom; callers evaluating many trials
// against one source should hold an Exec with an engine or batch so the
// plan's distance column and ball cache survive across trials.
func AcceptsFarFrom(di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	return Exec{}.AcceptsFarFrom([]*lang.DecisionInstance{di}, d, oneDraw(draw), u, far)[0]
}

// VerdictsWith is Verdicts on a pooled engine: decision views are
// assembled on the engine's cached balls instead of being extracted per
// node per call. The verdicts are identical to Verdicts'.
//
// Deprecated: use Exec{Eng: eng}.Verdicts.
func VerdictsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	return verdictsPooled(eng, di, d, draw)
}

// verdictsPooled is the pooled-engine core of the Verdicts verb.
func verdictsPooled(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	out := make([]bool, di.G.N())
	eng.ForEachDecisionView(di, d.Radius(), draw, func(v int, view *local.View) {
		out[v] = d.Verdict(view)
	})
	return out
}

// AcceptsWith is Accepts on a pooled engine; see VerdictsWith.
//
// Deprecated: use Exec{Eng: eng}.Accepts.
func AcceptsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	return Exec{Eng: eng}.Accepts([]*lang.DecisionInstance{di}, d, oneDraw(draw))[0]
}

// AcceptsFarFromWith is AcceptsFarFrom on a pooled engine; see
// VerdictsWith.
//
// Deprecated: use Exec{Eng: eng}.AcceptsFarFrom.
func AcceptsFarFromWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	return Exec{Eng: eng}.AcceptsFarFrom([]*lang.DecisionInstance{di}, d, oneDraw(draw), u, far)[0]
}

// VerdictsBatch is VerdictsWith over a vector of trials: lane b holds the
// verdicts of dis[b] under draws[b] (nil draws for deterministic
// deciders).
//
// Deprecated: use Exec{Bt: bt}.Verdicts.
func VerdictsBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) [][]bool {
	return verdictsBatch(bt, dis, d, draws)
}

// verdictsBatch is the batched core of the Verdicts verb: decision views
// are assembled once per batch on the batch's cached balls — lanes that
// share identity and input columns with their predecessor pay only the
// candidate-output column and the tape binding — and every lane's
// verdicts are identical to the pooled core's for the same (instance,
// draw).
func verdictsBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) [][]bool {
	return Exec{Bt: bt}.Verdicts(dis, d, draws)
}

// AcceptsBatch is Accepts over a vector of trials; see VerdictsBatch.
//
// Deprecated: use Exec{Bt: bt}.Accepts.
func AcceptsBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) []bool {
	return Exec{Bt: bt}.Accepts(dis, d, draws)
}

// AcceptsFarFromBatch is AcceptsFarFrom over a vector of trials; see
// VerdictsBatch.
//
// Deprecated: use Exec{Bt: bt}.AcceptsFarFrom.
func AcceptsFarFromBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw, u, far int) []bool {
	return Exec{Bt: bt}.AcceptsFarFrom(dis, d, draws, u, far)
}

// LCLDecider is the canonical deterministic decider for an LCL language:
// a node rejects iff its radius-t ball is in Bad(L). It decides L exactly,
// witnessing LCL ⊆ LD (§2.2.2).
type LCLDecider struct {
	L *lang.LCL
}

// Name implements Decider.
func (d *LCLDecider) Name() string { return fmt.Sprintf("lcl-decider(%s)", d.L.Name()) }

// Radius implements Decider.
func (d *LCLDecider) Radius() int { return d.L.Radius }

// Verdict implements Decider.
func (d *LCLDecider) Verdict(v *local.View) bool {
	return !d.L.Bad(v.LabeledBall())
}
