// Package decide implements distributed decision in the LOCAL model
// (§2.2.1, §2.3): deciders are constant-radius algorithms in which every
// node outputs true or false after inspecting its view of the input-output
// configuration; the configuration is accepted iff all nodes output true.
//
// Deterministic deciders witness membership in LD; randomized Monte-Carlo
// deciders with guarantee p > 1/2 (Eq. (1) of the paper) witness
// membership in BPLD. The package provides the canonical LCL decider, the
// golden-ratio AMOS decider of §2.3.1, the f-resilient decider from the
// proof of Corollary 1, the #node-aware ε-slack decider of §5, the
// "accepts far from v" evaluation used by Claims 4–5, and a guarantee
// estimator.
package decide

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Decider is a local decision algorithm: every node computes a boolean
// verdict from its radius-t view of the configuration (inputs, outputs,
// identities, and — for randomized deciders — its private tape).
type Decider interface {
	Name() string
	Radius() int
	Verdict(v *local.View) bool
}

// Verdicts runs the decider at every node; draw carries the decider's
// randomness (nil for deterministic deciders).
func Verdicts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	n := di.G.N()
	out := make([]bool, n)
	local.ParallelFor(n, func(v int) {
		out[v] = d.Verdict(local.DecisionView(di, v, d.Radius(), draw))
	})
	return out
}

// Accepts reports whether every node outputs true — the acceptance rule of
// §2.2.1.
func Accepts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	for _, ok := range Verdicts(di, d, draw) {
		if !ok {
			return false
		}
	}
	return true
}

// RejectSet returns the nodes voting false: the set Reject(u, σ′) of the
// proof of Claim 4.
func RejectSet(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []int {
	var out []int
	for v, ok := range Verdicts(di, d, draw) {
		if !ok {
			out = append(out, v)
		}
	}
	return out
}

// AcceptsFarFrom reports whether the decider outputs true at every node at
// distance greater than far from u — "D accepts (G,(x,y)) far from u" in
// §3. Nodes within distance far of u are ignored.
func AcceptsFarFrom(di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	dist := di.G.BFSFrom(u)
	verdicts := Verdicts(di, d, draw)
	for v, ok := range verdicts {
		if dist[v] > far && !ok {
			return false
		}
	}
	return true
}

// VerdictsWith is Verdicts on a pooled engine: decision views are
// assembled on the engine's cached balls instead of being extracted per
// node per call, which is what Monte-Carlo trial loops want. The verdicts
// are identical to Verdicts'.
func VerdictsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	out := make([]bool, di.G.N())
	eng.ForEachDecisionView(di, d.Radius(), draw, func(v int, view *local.View) {
		out[v] = d.Verdict(view)
	})
	return out
}

// AcceptsWith is Accepts on a pooled engine; see VerdictsWith.
func AcceptsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	for _, ok := range VerdictsWith(eng, di, d, draw) {
		if !ok {
			return false
		}
	}
	return true
}

// AcceptsFarFromWith is AcceptsFarFrom on a pooled engine; see
// VerdictsWith.
func AcceptsFarFromWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	dist := di.G.BFSFrom(u)
	verdicts := VerdictsWith(eng, di, d, draw)
	for v, ok := range verdicts {
		if dist[v] > far && !ok {
			return false
		}
	}
	return true
}

// LCLDecider is the canonical deterministic decider for an LCL language:
// a node rejects iff its radius-t ball is in Bad(L). It decides L exactly,
// witnessing LCL ⊆ LD (§2.2.2).
type LCLDecider struct {
	L *lang.LCL
}

// Name implements Decider.
func (d *LCLDecider) Name() string { return fmt.Sprintf("lcl-decider(%s)", d.L.Name()) }

// Radius implements Decider.
func (d *LCLDecider) Radius() int { return d.L.Radius }

// Verdict implements Decider.
func (d *LCLDecider) Verdict(v *local.View) bool {
	return !d.L.Bad(&lang.LabeledBall{Ball: v.Ball, X: v.X, Y: v.Y})
}
