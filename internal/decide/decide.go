// Package decide implements distributed decision in the LOCAL model
// (§2.2.1, §2.3): deciders are constant-radius algorithms in which every
// node outputs true or false after inspecting its view of the input-output
// configuration; the configuration is accepted iff all nodes output true.
//
// Deterministic deciders witness membership in LD; randomized Monte-Carlo
// deciders with guarantee p > 1/2 (Eq. (1) of the paper) witness
// membership in BPLD. The package provides the canonical LCL decider, the
// golden-ratio AMOS decider of §2.3.1, the f-resilient decider from the
// proof of Corollary 1, the #node-aware ε-slack decider of §5, the
// "accepts far from v" evaluation used by Claims 4–5, and a guarantee
// estimator.
package decide

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Decider is a local decision algorithm: every node computes a boolean
// verdict from its radius-t view of the configuration (inputs, outputs,
// identities, and — for randomized deciders — its private tape).
type Decider interface {
	Name() string
	Radius() int
	Verdict(v *local.View) bool
}

// Verdicts runs the decider at every node; draw carries the decider's
// randomness (nil for deterministic deciders).
func Verdicts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	n := di.G.N()
	out := make([]bool, n)
	local.ParallelFor(n, func(v int) {
		out[v] = d.Verdict(local.DecisionView(di, v, d.Radius(), draw))
	})
	return out
}

// Accepts reports whether every node outputs true — the acceptance rule of
// §2.2.1.
func Accepts(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	for _, ok := range Verdicts(di, d, draw) {
		if !ok {
			return false
		}
	}
	return true
}

// RejectSet returns the nodes voting false: the set Reject(u, σ′) of the
// proof of Claim 4.
func RejectSet(di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []int {
	var out []int
	for v, ok := range Verdicts(di, d, draw) {
		if !ok {
			out = append(out, v)
		}
	}
	return out
}

// AcceptsFarFrom reports whether the decider outputs true at every node at
// distance greater than far from u — "D accepts (G,(x,y)) far from u" in
// §3. Nodes within distance far of u are ignored. It is the single-shot
// wrapper over the pooled path (a transient plan and engine); callers
// evaluating many trials against one source should hold an engine or
// batch themselves so the plan's distance column and ball cache survive
// across trials.
func AcceptsFarFrom(di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	return AcceptsFarFromWith(local.MustPlan(di.G).NewEngine(), di, d, draw, u, far)
}

// VerdictsWith is Verdicts on a pooled engine: decision views are
// assembled on the engine's cached balls instead of being extracted per
// node per call, which is what Monte-Carlo trial loops want. The verdicts
// are identical to Verdicts'.
func VerdictsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) []bool {
	out := make([]bool, di.G.N())
	eng.ForEachDecisionView(di, d.Radius(), draw, func(v int, view *local.View) {
		out[v] = d.Verdict(view)
	})
	return out
}

// AcceptsWith is Accepts on a pooled engine; see VerdictsWith.
func AcceptsWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw) bool {
	for _, ok := range VerdictsWith(eng, di, d, draw) {
		if !ok {
			return false
		}
	}
	return true
}

// AcceptsFarFromWith is AcceptsFarFrom on a pooled engine; see
// VerdictsWith. The hop distances from u are read from the plan's cache
// (they depend only on the graph and the source), so trial loops pay the
// BFS once per source instead of once per trial.
func AcceptsFarFromWith(eng *local.Engine, di *lang.DecisionInstance, d Decider, draw *localrand.Draw, u, far int) bool {
	dist := eng.Plan().DistFrom(u)
	verdicts := VerdictsWith(eng, di, d, draw)
	for v, ok := range verdicts {
		if dist[v] > far && !ok {
			return false
		}
	}
	return true
}

// VerdictsBatch is VerdictsWith over a vector of trials: lane b holds the
// verdicts of dis[b] under draws[b] (nil draws for deterministic
// deciders). Decision views are assembled once per batch on the batch's
// cached balls — lanes that share identity and input columns with their
// predecessor pay only the candidate-output column and the tape binding —
// and every lane's verdicts are identical to VerdictsWith's for the same
// (instance, draw).
func VerdictsBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) [][]bool {
	k := len(dis)
	n := bt.Plan().Graph().N()
	slab := make([]bool, k*n)
	out := make([][]bool, k)
	for b := range out {
		out[b] = slab[b*n : (b+1)*n : (b+1)*n]
	}
	if err := bt.ForEachDecisionViews(dis, d.Radius(), draws, func(b, v int, view *local.View) {
		slab[b*n+v] = d.Verdict(view)
	}); err != nil {
		panic(err.Error())
	}
	return out
}

// AcceptsBatch is Accepts over a vector of trials; see VerdictsBatch.
func AcceptsBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) []bool {
	verdicts := VerdictsBatch(bt, dis, d, draws)
	acc := make([]bool, len(verdicts))
	for b, row := range verdicts {
		acc[b] = true
		for _, ok := range row {
			if !ok {
				acc[b] = false
				break
			}
		}
	}
	return acc
}

// AcceptsFarFromBatch is AcceptsFarFrom over a vector of trials; see
// VerdictsBatch. The distance column of u comes from the plan's cache.
func AcceptsFarFromBatch(bt *local.Batch, dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw, u, far int) []bool {
	dist := bt.Plan().DistFrom(u)
	verdicts := VerdictsBatch(bt, dis, d, draws)
	acc := make([]bool, len(verdicts))
	for b, row := range verdicts {
		acc[b] = true
		for v, ok := range row {
			if dist[v] > far && !ok {
				acc[b] = false
				break
			}
		}
	}
	return acc
}

// LCLDecider is the canonical deterministic decider for an LCL language:
// a node rejects iff its radius-t ball is in Bad(L). It decides L exactly,
// witnessing LCL ⊆ LD (§2.2.2).
type LCLDecider struct {
	L *lang.LCL
}

// Name implements Decider.
func (d *LCLDecider) Name() string { return fmt.Sprintf("lcl-decider(%s)", d.L.Name()) }

// Radius implements Decider.
func (d *LCLDecider) Radius() int { return d.L.Radius }

// Verdict implements Decider.
func (d *LCLDecider) Verdict(v *local.View) bool {
	return !d.L.Bad(v.LabeledBall())
}
