package decide

import (
	"fmt"
	"math"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// GoldenP is (√5−1)/2 ≈ 0.618, the guarantee of the zero-round AMOS
// decider of §2.3.1. It is the fixed point of p = 1 − p²: a selected node
// accepts with probability p, so one selected node is accepted with
// probability p and s ≥ 2 selected nodes are rejected with probability
// 1 − p^s ≥ 1 − p² = p.
var GoldenP = (math.Sqrt(5) - 1) / 2

// AMOSDecider is the zero-round randomized decider for the language amos:
// every non-selected node accepts; every selected node accepts with
// probability P and rejects with probability 1−P.
type AMOSDecider struct {
	// P is the acceptance probability of a selected node; the guarantee
	// of the decider is min(P, 1−P²), maximized at the golden ratio.
	P float64
}

// NewAMOSDecider returns the decider with the optimal P = (√5−1)/2.
func NewAMOSDecider() *AMOSDecider { return &AMOSDecider{P: GoldenP} }

// Name implements Decider.
func (d *AMOSDecider) Name() string { return fmt.Sprintf("amos-decider(p=%.3f)", d.P) }

// Radius implements Decider. The decider inspects nothing beyond the
// node's own output: zero rounds.
func (d *AMOSDecider) Radius() int { return 0 }

// Verdict implements Decider.
func (d *AMOSDecider) Verdict(v *local.View) bool {
	sel, err := lang.DecodeSelected(v.Y[0])
	if err != nil || !sel {
		// Malformed marks count as non-selected, matching the language.
		return true
	}
	return v.Tape().Bernoulli(d.P)
}

// Guarantee returns the decider's analytic guarantee min(P, 1−P²).
func (d *AMOSDecider) Guarantee() float64 {
	return math.Min(d.P, 1-d.P*d.P)
}

// ResilientP returns the acceptance probability used by the Corollary 1
// decider for the f-resilient relaxation: any p in the open interval
// (2^{−1/f}, 2^{−1/(f+1)}) works; this picks the geometric mean
// 2^{−(2f+1)/(2f(f+1))}. It panics for f <= 0.
func ResilientP(f int) float64 {
	if f <= 0 {
		panic("decide: resilient decider needs f >= 1")
	}
	lo := math.Exp2(-1 / float64(f))
	hi := math.Exp2(-1 / float64(f+1))
	return math.Sqrt(lo * hi)
}

// ResilientDecider is the randomized decider from the proof of
// Corollary 1, witnessing L_f ∈ BPLD for every LCL language L: every node
// whose radius-t ball is good accepts; every node centering a bad ball
// accepts with probability P and rejects with probability 1−P.
//
// With |F(G)| the number of bad balls, Pr[all accept] = P^{|F(G)|}, so
//   - (G,(x,y)) ∈ L_f  (|F| ≤ f):   Pr[all accept] ≥ P^f > 1/2, and
//   - (G,(x,y)) ∉ L_f  (|F| ≥ f+1): Pr[some reject] ≥ 1 − P^{f+1} > 1/2,
//
// because 2^{−1/f} < P < 2^{−1/(f+1)}.
type ResilientDecider struct {
	L *lang.LCL
	F int
	P float64
}

// NewResilientDecider builds the Corollary 1 decider with the default P.
func NewResilientDecider(l *lang.LCL, f int) *ResilientDecider {
	return &ResilientDecider{L: l, F: f, P: ResilientP(f)}
}

// Name implements Decider.
func (d *ResilientDecider) Name() string {
	return fmt.Sprintf("resilient-decider(%s, f=%d, p=%.4f)", d.L.Name(), d.F, d.P)
}

// Radius implements Decider: t is the radius of the excluded balls.
func (d *ResilientDecider) Radius() int { return d.L.Radius }

// Verdict implements Decider.
func (d *ResilientDecider) Verdict(v *local.View) bool {
	bad := d.L.Bad(v.LabeledBall())
	if !bad {
		return true
	}
	return v.Tape().Bernoulli(d.P)
}

// Guarantee returns the analytic guarantee min(P^f, 1 − P^{f+1}).
func (d *ResilientDecider) Guarantee() float64 {
	return math.Min(math.Pow(d.P, float64(d.F)), 1-math.Pow(d.P, float64(d.F+1)))
}

// SlackNodeAwareDecider decides the ε-slack relaxation of an LCL language
// when the number of nodes n is known a priori: it is the Corollary 1
// decider with f = ⌊ε·n⌋. This witnesses ε-slack ∈ BPLD#node (§5); the
// dependence on n is what keeps it outside BPLD, and the paper shows
// Theorem 1 cannot extend to BPLD#node.
type SlackNodeAwareDecider struct {
	L   *lang.LCL
	Eps float64
	N   int
	P   float64
}

// NewSlackNodeAwareDecider builds the decider for n-node configurations.
func NewSlackNodeAwareDecider(l *lang.LCL, eps float64, n int) *SlackNodeAwareDecider {
	f := int(math.Floor(eps * float64(n)))
	if f < 1 {
		f = 1
	}
	return &SlackNodeAwareDecider{L: l, Eps: eps, N: n, P: ResilientP(f)}
}

// Budget returns the tolerated number of bad balls ⌊ε·n⌋ (at least 1).
func (d *SlackNodeAwareDecider) Budget() int {
	f := int(math.Floor(d.Eps * float64(d.N)))
	if f < 1 {
		f = 1
	}
	return f
}

// Name implements Decider.
func (d *SlackNodeAwareDecider) Name() string {
	return fmt.Sprintf("slack-decider(%s, eps=%g, n=%d)", d.L.Name(), d.Eps, d.N)
}

// Radius implements Decider.
func (d *SlackNodeAwareDecider) Radius() int { return d.L.Radius }

// Verdict implements Decider.
func (d *SlackNodeAwareDecider) Verdict(v *local.View) bool {
	bad := d.L.Bad(v.LabeledBall())
	if !bad {
		return true
	}
	return v.Tape().Bernoulli(d.P)
}

// Guarantee returns min(P^f, 1 − P^{f+1}) for f = Budget().
func (d *SlackNodeAwareDecider) Guarantee() float64 {
	f := float64(d.Budget())
	return math.Min(math.Pow(d.P, f), 1-math.Pow(d.P, f+1))
}
