package decide

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Exec is the package's one execution handle: the three decision verbs —
// Verdicts, Accepts, AcceptsFarFrom — are methods on it, and the handle
// decides how the decision views are assembled. Set Bt for vectorized
// trials on a reusable batch, Eng for pooled per-trial execution on a
// reusable engine; the zero Exec builds a transient engine per call (the
// single-shot convenience). The legacy free functions — the
// {Verdicts,Accepts,AcceptsFarFrom}{,With,Batch} enumeration — are thin
// deprecated wrappers over this handle, with identical verdicts.
//
// All verbs take trial vectors: lane b evaluates dis[b] under draws[b]
// (nil draws for deterministic deciders). Single-trial callers pass
// one-element slices; every lane's verdicts are identical to a
// single-shot evaluation of the same (instance, draw).
type Exec struct {
	// Eng, when set, assembles decision views on the engine's cached
	// balls, one lane at a time.
	Eng *local.Engine
	// Bt, when set, assembles all lanes' views in one pass on the batch's
	// cached balls; it takes precedence over Eng.
	Bt *local.Batch
	// Mem, when set, backs the returned verdict and acceptance slices
	// with a reusable double-buffered store instead of fresh allocations:
	// a trial loop that holds one Mem evaluates allocation-free in steady
	// state. Returned slices then follow the arena retention contract —
	// valid while the next evaluation on this Mem runs, overwritten by
	// the one after. Callers needing longer retention leave Mem nil (the
	// legacy behavior: every call allocates caller-owned slices).
	Mem *Mem
}

// Mem is the reusable verdict storage of an Exec: one double-buffered
// pair of verdict slabs and acceptance rows, alternating per evaluation
// exactly like the engine's output arenas, so pipelines can read one
// evaluation's verdicts while the next runs. A Mem is one trial loop's
// private scratch: not safe for concurrent use.
type Mem struct {
	buf  [2]memBuf
	flip int
	col  []int32
}

// memBuf is one buffer of the pair: the flat verdict slab (lane b's row
// at [b*n, (b+1)*n)), the per-lane row headers, and the acceptance row.
type memBuf struct {
	slab []bool
	rows [][]bool
	acc  []bool
}

// col is the per-node decode scratch of the row-decider fast path
// (lang.LCL.BadRow). Transient within one Verdicts call, so it needs no
// double buffering.
func (m *Mem) colRow(n int) []int32 {
	if cap(m.col) >= n {
		return m.col[:n]
	}
	m.col = make([]int32, n)
	return m.col
}

// next returns the buffer the coming evaluation writes, sized for k
// lanes of n nodes, and flips the pair.
func (m *Mem) next(k, n int) *memBuf {
	mb := &m.buf[m.flip]
	m.flip ^= 1
	mb.slab = boolsFor(mb.slab, k*n)
	if cap(mb.rows) < k {
		mb.rows = make([][]bool, k)
	}
	mb.rows = mb.rows[:k]
	return mb
}

// lastAcc returns the acceptance row of the buffer the immediately
// preceding Verdicts call wrote (the flip has already advanced past it).
func (m *Mem) lastAcc(k int) []bool {
	mb := &m.buf[m.flip^1]
	mb.acc = boolsFor(mb.acc, k)
	return mb.acc
}

// boolsFor resizes a bool slice, reusing its backing array when capacity
// allows; contents are stale — callers overwrite every entry they read.
func boolsFor(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// engine resolves the pooled engine of a non-batched handle, building a
// transient one for the zero Exec.
func (x Exec) engine(di *lang.DecisionInstance) *local.Engine {
	if x.Eng != nil {
		return x.Eng
	}
	return local.MustPlan(di.G).NewEngine()
}

// Verdicts evaluates the decider at every node of every lane: out[b][v]
// is node v's verdict on dis[b] under draws[b].
func (x Exec) Verdicts(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) [][]bool {
	if len(dis) == 0 {
		return nil
	}
	k, n := len(dis), dis[0].G.N()
	slab, out := x.verdictStore(k, n)
	// Row-decider fast path: a deterministic LCL decider whose language
	// defines the whole-row Bad predicate skips view assembly entirely —
	// each lane's outputs decode once into a scratch column and the
	// verdicts are pure comparisons over the graph's adjacency. Verdicts
	// are identical to the view path's by the BadRow contract.
	if draws == nil {
		if ld, ok := d.(*LCLDecider); ok && ld.L.BadRow != nil {
			col := x.colStore(n)
			for b, di := range dis {
				ld.L.BadRow(di, out[b], col)
			}
			for i, bad := range slab[:k*n] {
				slab[i] = !bad
			}
			return out
		}
	}
	if x.Bt != nil {
		if err := x.Bt.ForEachDecisionViews(dis, d.Radius(), draws, func(b, v int, view *local.View) {
			slab[b*n+v] = d.Verdict(view)
		}); err != nil {
			panic(err.Error())
		}
		return out
	}
	eng := x.engine(dis[0])
	for b, di := range dis {
		var draw *localrand.Draw
		if draws != nil {
			draw = &draws[b]
		}
		row := out[b]
		eng.ForEachDecisionView(di, d.Radius(), draw, func(v int, view *local.View) {
			row[v] = d.Verdict(view)
		})
	}
	return out
}

// verdictStore stages the verdict slab and row headers of one
// evaluation: from the Mem's double buffer when one is attached (zero
// steady-state allocations), freshly allocated and caller-owned
// otherwise. Every (lane, node) cell is written by the evaluation, so a
// reused slab's stale contents are never read.
func (x Exec) verdictStore(k, n int) ([]bool, [][]bool) {
	var slab []bool
	var rows [][]bool
	if x.Mem != nil {
		mb := x.Mem.next(k, n)
		slab, rows = mb.slab, mb.rows
	} else {
		slab = make([]bool, k*n)
		rows = make([][]bool, k)
	}
	for b := 0; b < k; b++ {
		rows[b] = slab[b*n : (b+1)*n : (b+1)*n]
	}
	return slab, rows
}

// Accepts reports, per lane, whether every node outputs true — the
// acceptance rule of §2.2.1.
func (x Exec) Accepts(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) []bool {
	verdicts := x.Verdicts(dis, d, draws)
	acc := x.accStore(len(verdicts))
	for b, row := range verdicts {
		acc[b] = allTrue(row)
	}
	return acc
}

// colStore stages the row-decider decode scratch: Mem-backed or freshly
// allocated.
func (x Exec) colStore(n int) []int32 {
	if x.Mem != nil {
		return x.Mem.colRow(n)
	}
	return make([]int32, n)
}

// accStore stages the acceptance row: Mem-backed (the same buffer the
// preceding Verdicts wrote) or freshly allocated.
func (x Exec) accStore(k int) []bool {
	if x.Mem != nil {
		return x.Mem.lastAcc(k)
	}
	return make([]bool, k)
}

// AcceptsFarFrom reports, per lane, whether the decider outputs true at
// every node at distance greater than far from u — "D accepts (G,(x,y))
// far from u" in §3. The distance column of u comes from the plan's
// cache, so trial sweeps pay the BFS once per source.
func (x Exec) AcceptsFarFrom(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw, u, far int) []bool {
	if len(dis) == 0 {
		return nil
	}
	var dist []int
	if x.Bt != nil {
		dist = x.Bt.Plan().DistFrom(u)
	} else {
		x.Eng = x.engine(dis[0])
		dist = x.Eng.Plan().DistFrom(u)
	}
	verdicts := x.Verdicts(dis, d, draws)
	acc := x.accStore(len(verdicts))
	for b, row := range verdicts {
		acc[b] = true
		for v, ok := range row {
			if dist[v] > far && !ok {
				acc[b] = false
				break
			}
		}
	}
	return acc
}

// allTrue reports whether every verdict in the row is true.
func allTrue(row []bool) bool {
	for _, ok := range row {
		if !ok {
			return false
		}
	}
	return true
}
