package decide

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Exec is the package's one execution handle: the three decision verbs —
// Verdicts, Accepts, AcceptsFarFrom — are methods on it, and the handle
// decides how the decision views are assembled. Set Bt for vectorized
// trials on a reusable batch, Eng for pooled per-trial execution on a
// reusable engine; the zero Exec builds a transient engine per call (the
// single-shot convenience). The legacy free functions — the
// {Verdicts,Accepts,AcceptsFarFrom}{,With,Batch} enumeration — are thin
// deprecated wrappers over this handle, with identical verdicts.
//
// All verbs take trial vectors: lane b evaluates dis[b] under draws[b]
// (nil draws for deterministic deciders). Single-trial callers pass
// one-element slices; every lane's verdicts are identical to a
// single-shot evaluation of the same (instance, draw).
type Exec struct {
	// Eng, when set, assembles decision views on the engine's cached
	// balls, one lane at a time.
	Eng *local.Engine
	// Bt, when set, assembles all lanes' views in one pass on the batch's
	// cached balls; it takes precedence over Eng.
	Bt *local.Batch
}

// engine resolves the pooled engine of a non-batched handle, building a
// transient one for the zero Exec.
func (x Exec) engine(di *lang.DecisionInstance) *local.Engine {
	if x.Eng != nil {
		return x.Eng
	}
	return local.MustPlan(di.G).NewEngine()
}

// Verdicts evaluates the decider at every node of every lane: out[b][v]
// is node v's verdict on dis[b] under draws[b].
func (x Exec) Verdicts(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) [][]bool {
	if len(dis) == 0 {
		return nil
	}
	if x.Bt != nil {
		return verdictsBatch(x.Bt, dis, d, draws)
	}
	eng := x.engine(dis[0])
	out := make([][]bool, len(dis))
	for b, di := range dis {
		var draw *localrand.Draw
		if draws != nil {
			draw = &draws[b]
		}
		out[b] = verdictsPooled(eng, di, d, draw)
	}
	return out
}

// Accepts reports, per lane, whether every node outputs true — the
// acceptance rule of §2.2.1.
func (x Exec) Accepts(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw) []bool {
	verdicts := x.Verdicts(dis, d, draws)
	acc := make([]bool, len(verdicts))
	for b, row := range verdicts {
		acc[b] = allTrue(row)
	}
	return acc
}

// AcceptsFarFrom reports, per lane, whether the decider outputs true at
// every node at distance greater than far from u — "D accepts (G,(x,y))
// far from u" in §3. The distance column of u comes from the plan's
// cache, so trial sweeps pay the BFS once per source.
func (x Exec) AcceptsFarFrom(dis []*lang.DecisionInstance, d Decider, draws []localrand.Draw, u, far int) []bool {
	if len(dis) == 0 {
		return nil
	}
	var dist []int
	var verdicts [][]bool
	if x.Bt != nil {
		dist = x.Bt.Plan().DistFrom(u)
		verdicts = verdictsBatch(x.Bt, dis, d, draws)
	} else {
		eng := x.engine(dis[0])
		dist = eng.Plan().DistFrom(u)
		verdicts = Exec{Eng: eng}.Verdicts(dis, d, draws)
	}
	acc := make([]bool, len(verdicts))
	for b, row := range verdicts {
		acc[b] = true
		for v, ok := range row {
			if dist[v] > far && !ok {
				acc[b] = false
				break
			}
		}
	}
	return acc
}

// allTrue reports whether every verdict in the row is true.
func allTrue(row []bool) bool {
	for _, ok := range row {
		if !ok {
			return false
		}
	}
	return true
}
