package decide

import (
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
)

// LabeledInstance pairs a decision instance with its ground-truth
// membership, for guarantee estimation.
type LabeledInstance struct {
	DI   *lang.DecisionInstance
	InL  bool
	Note string
}

// Labeled builds a LabeledInstance by evaluating the language.
func Labeled(di *lang.DecisionInstance, l lang.Language, note string) (*LabeledInstance, error) {
	in, err := l.Contains(di.Config())
	if err != nil {
		return nil, err
	}
	return &LabeledInstance{DI: di, InL: in, Note: note}, nil
}

// GuaranteeReport is the outcome of estimating a decider's guarantee on a
// corpus of labeled instances: the empirical success probability of each
// instance (Pr[all accept] when in L, Pr[some reject] when out of L) and
// the minimum over the corpus, which lower-bounds the decider's guarantee
// p in Eq. (1) on that corpus.
type GuaranteeReport struct {
	PerInstance []mc.Estimate
	Min         mc.Estimate
}

// EstimateGuarantee measures the success probability of a randomized
// decider on each labeled instance over the given tape space, using
// `trials` draws per instance.
func EstimateGuarantee(corpus []*LabeledInstance, d Decider, space *localrand.TapeSpace, trials int) GuaranteeReport {
	rep := GuaranteeReport{PerInstance: make([]mc.Estimate, len(corpus))}
	for i, li := range corpus {
		li := li
		est := mc.Run(trials, func(trial int) bool {
			draw := space.Draw(uint64(i)<<32 | uint64(trial))
			acc := Accepts(li.DI, d, &draw)
			if li.InL {
				return acc
			}
			return !acc
		})
		rep.PerInstance[i] = est
		if i == 0 || est.P() < rep.Min.P() {
			rep.Min = est
		}
	}
	return rep
}

// AcceptProbability estimates Pr[D accepts (G,(x,y))] for one instance.
func AcceptProbability(di *lang.DecisionInstance, d Decider, space *localrand.TapeSpace, trials int) mc.Estimate {
	return mc.Run(trials, func(trial int) bool {
		draw := space.Draw(uint64(trial))
		return Accepts(di, d, &draw)
	})
}

// AcceptFarFromProbability estimates Pr[D accepts far from u], the
// quantity bounded by Claims 4 and 5.
func AcceptFarFromProbability(di *lang.DecisionInstance, d Decider, space *localrand.TapeSpace, trials, u, far int) mc.Estimate {
	return mc.Run(trials, func(trial int) bool {
		draw := space.Draw(uint64(trial))
		return AcceptsFarFrom(di, d, &draw, u, far)
	})
}
