package decide

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
)

// LabeledInstance pairs a decision instance with its ground-truth
// membership, for guarantee estimation.
type LabeledInstance struct {
	DI   *lang.DecisionInstance
	InL  bool
	Note string
}

// Labeled builds a LabeledInstance by evaluating the language.
func Labeled(di *lang.DecisionInstance, l lang.Language, note string) (*LabeledInstance, error) {
	in, err := l.Contains(di.Config())
	if err != nil {
		return nil, err
	}
	return &LabeledInstance{DI: di, InL: in, Note: note}, nil
}

// GuaranteeReport is the outcome of estimating a decider's guarantee on a
// corpus of labeled instances: the empirical success probability of each
// instance (Pr[all accept] when in L, Pr[some reject] when out of L) and
// the minimum over the corpus, which lower-bounds the decider's guarantee
// p in Eq. (1) on that corpus.
type GuaranteeReport struct {
	PerInstance []mc.Estimate
	Min         mc.Estimate
}

// estimatorBatch is the lane count the guarantee estimators hand to
// plan.NewBatch: wide enough to amortize view assembly across a chunk of
// trials, narrow enough that quick sweeps still fill a batch.
const estimatorBatch = 32

// guaranteeScratch is one worker's reusable trial-vector state for the
// estimators below: a batch over the instance's plan plus lane slices
// for the (constant) instance column and the per-trial draws.
type guaranteeScratch struct {
	bt    *local.Batch
	dis   []*lang.DecisionInstance
	draws []localrand.Draw
}

// newGuaranteeScratch returns the per-worker state constructor for an
// estimator over one fixed instance: every lane of the batch decides di.
func newGuaranteeScratch(di *lang.DecisionInstance) func() *guaranteeScratch {
	plan := local.MustPlan(di.G)
	return func() *guaranteeScratch {
		s := &guaranteeScratch{
			bt:    plan.NewBatch(estimatorBatch),
			dis:   make([]*lang.DecisionInstance, estimatorBatch),
			draws: make([]localrand.Draw, estimatorBatch),
		}
		for b := range s.dis {
			s.dis[b] = di
		}
		return s
	}
}

// estimate runs trials chunks through batched workers: accept evaluates
// one chunk of lanes (lane b under s.draws[b]) and the per-trial outcome
// is want(accept). Per-trial draws are addressed by drawAt, so estimates
// match the scalar loops these estimators replaced at equal seeds.
func estimate(di *lang.DecisionInstance, trials int, drawAt func(trial int) localrand.Draw, accept func(s *guaranteeScratch, k int) []bool, want func(accept bool) bool) mc.Estimate {
	return mc.RunBatched(trials, estimatorBatch, newGuaranteeScratch(di), func(s *guaranteeScratch, lo, hi int, out []bool) {
		k := hi - lo
		for b := 0; b < k; b++ {
			s.draws[b] = drawAt(lo + b)
		}
		for b, acc := range accept(s, k) {
			out[b] = want(acc)
		}
	})
}

// acceptEstimate measures Pr[want(D accepts di)] over trials draws
// addressed by drawAt; the per-trial acceptance is identical to
// Accepts(di, d, drawAt(trial)).
func acceptEstimate(di *lang.DecisionInstance, d Decider, trials int, drawAt func(trial int) localrand.Draw, want func(accept bool) bool) mc.Estimate {
	return estimate(di, trials, drawAt, func(s *guaranteeScratch, k int) []bool {
		return Exec{Bt: s.bt}.Accepts(s.dis[:k], d, s.draws[:k])
	}, want)
}

// EstimateGuarantee measures the success probability of a randomized
// decider on each labeled instance over the given tape space, using
// `trials` draws per instance. Each instance's trials run through a
// batched engine (one plan per instance, one batch per worker), so the
// per-trial view assembly amortizes across the sweep.
func EstimateGuarantee(corpus []*LabeledInstance, d Decider, space *localrand.TapeSpace, trials int) GuaranteeReport {
	rep := GuaranteeReport{PerInstance: make([]mc.Estimate, len(corpus))}
	for i, li := range corpus {
		inL := li.InL
		est := acceptEstimate(li.DI, d, trials,
			func(trial int) localrand.Draw { return space.Draw(uint64(i)<<32 | uint64(trial)) },
			func(acc bool) bool { return acc == inL })
		rep.PerInstance[i] = est
		if i == 0 || est.P() < rep.Min.P() {
			rep.Min = est
		}
	}
	return rep
}

// AcceptProbability estimates Pr[D accepts (G,(x,y))] for one instance,
// on a batched engine.
func AcceptProbability(di *lang.DecisionInstance, d Decider, space *localrand.TapeSpace, trials int) mc.Estimate {
	return acceptEstimate(di, d, trials,
		func(trial int) localrand.Draw { return space.Draw(uint64(trial)) },
		func(acc bool) bool { return acc })
}

// AcceptFarFromProbability estimates Pr[D accepts far from u], the
// quantity bounded by Claims 4 and 5, on a batched engine; the distance
// column of u is read from the plan's cache once for the whole run.
func AcceptFarFromProbability(di *lang.DecisionInstance, d Decider, space *localrand.TapeSpace, trials, u, far int) mc.Estimate {
	return estimate(di, trials,
		func(trial int) localrand.Draw { return space.Draw(uint64(trial)) },
		func(s *guaranteeScratch, k int) []bool {
			return Exec{Bt: s.bt}.AcceptsFarFrom(s.dis[:k], d, s.draws[:k], u, far)
		},
		func(acc bool) bool { return acc })
}
