package orderinv

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
)

func TestRingPatternIndexBijective(t *testing.T) {
	// The six orderings of three distinct identities map to six distinct
	// indices in [0, 6).
	triples := [][3]int64{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	seen := make(map[int]bool)
	for _, tr := range triples {
		idx := ringPatternIndex(tr[0], tr[1], tr[2])
		if idx < 0 || idx >= ringPatternCount {
			t.Fatalf("index %d out of range for %v", idx, tr)
		}
		if seen[idx] {
			t.Fatalf("index %d repeated at %v", idx, tr)
		}
		seen[idx] = true
	}
}

func TestRingPatternIndexOrderInvariant(t *testing.T) {
	// Scaling identities preserves the index.
	for _, tr := range [][3]int64{{5, 9, 2}, {7, 1, 8}, {3, 6, 4}} {
		a := ringPatternIndex(tr[0], tr[1], tr[2])
		b := ringPatternIndex(tr[0]*100, tr[1]*100, tr[2]*100)
		if a != b {
			t.Errorf("pattern index changed under scaling: %v", tr)
		}
	}
}

func TestEnumerateRingAlgorithmsCount(t *testing.T) {
	if got := len(EnumerateRingAlgorithms(3)); got != 729 {
		t.Errorf("3^6 = %d, want 729", got)
	}
	if got := len(EnumerateRingAlgorithms(2)); got != 64 {
		t.Errorf("2^6 = %d, want 64", got)
	}
	// Tables are pairwise distinct.
	seen := make(map[[6]int]bool)
	for _, a := range EnumerateRingAlgorithms(2) {
		if seen[a.Table] {
			t.Fatal("duplicate table enumerated")
		}
		seen[a.Table] = true
	}
}

func TestRingTableAlgorithmIsOrderInvariant(t *testing.T) {
	algo := RingTableAlgorithm{Table: [6]int{0, 1, 2, 0, 1, 2}, Q: 3}
	if err := CheckInvarianceRandom(algo, graph.Cycle(9), 4, 11); err != nil {
		t.Errorf("table algorithm not order-invariant: %v", err)
	}
}

func TestVerifyClaim2Radius1(t *testing.T) {
	rep, err := VerifyClaim2Radius1(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithms != 729 || rep.Failures != 729 {
		t.Errorf("failures %d/%d, want 729/729", rep.Failures, rep.Algorithms)
	}
	// The Section 4 argument predicts counterexamples on tiny cycles:
	// everything should fail by C_4 at the latest (consecutive identities
	// give adjacent interior nodes the same pattern).
	for n := range rep.BySize {
		if n > 4 {
			t.Errorf("counterexample needed a cycle of length %d > 4", n)
		}
	}
}

func TestConsecutiveInteriorPatternCollision(t *testing.T) {
	// The engine of the Section 4 argument, pinned directly: on C_4 with
	// consecutive identities, the two interior nodes share the order
	// pattern, hence any table algorithm colors them equally — and they
	// are adjacent.
	g := graph.Cycle(4)
	in := &lang.Instance{G: g, X: lang.EmptyInputs(4), ID: ids.Consecutive(4)}
	v1 := local.ConstructionView(in, 1, 1, nil)
	v2 := local.ConstructionView(in, 2, 1, nil)
	nb1 := v1.Ball.G.Neighbors(0)
	nb2 := v2.Ball.G.Neighbors(0)
	p1 := ringPatternIndex(v1.IDs[0], v1.IDs[nb1[0]], v1.IDs[nb1[1]])
	p2 := ringPatternIndex(v2.IDs[0], v2.IDs[nb2[0]], v2.IDs[nb2[1]])
	if p1 != p2 {
		t.Fatalf("interior patterns differ: %d vs %d", p1, p2)
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("fixture: nodes 1 and 2 must be adjacent")
	}
}

func TestFindRingCounterexampleOnCorrectAlgorithmFamily(t *testing.T) {
	// Sanity check of the searcher itself: an algorithm that is proper on
	// C_3 with any identities (all patterns distinct on a triangle ball:
	// color by center rank) still fails on larger consecutive cycles.
	algo := RingTableAlgorithm{Table: [6]int{0, 0, 1, 1, 2, 2}, Q: 3} // color = center rank
	ce, found := FindRingCounterexample(algo, 3, 8)
	if !found {
		t.Fatal("rank coloring should fail somewhere")
	}
	if ce.N < 3 {
		t.Fatalf("bad counterexample %+v", ce)
	}
}
