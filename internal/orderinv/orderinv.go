// Package orderinv implements the order-invariance machinery of the paper:
// the invariance checker used to validate order-invariant algorithms
// (§2.1.1), the ball inventory that makes the count N = Σ nᵢ! of the proof
// of Claim 2 concrete, and a finite form of the Ramsey extraction from the
// proof of Claim 1 (Appendix A) that converts an arbitrary constant-time
// algorithm into an order-invariant one.
//
// Substitution note (see DESIGN.md): the paper's Appendix A uses the
// infinite Ramsey theorem over a countably infinite identity universe. The
// proof only ever consumes finitely many elements of the extracted set U
// (nodes relabel their balls with the smallest values of U), so a finite
// pool {1..M} with a greedy consistency-checked extraction certifies the
// same property on every instance whose identities come from U.
package orderinv

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// CheckInvariance verifies that an algorithm's outputs are unchanged under
// an order-preserving remapping of the instance identities. It returns an
// error naming the first differing node, or nil. This is the operational
// definition of order-invariance from §2.1.1.
func CheckInvariance(algo local.ViewAlgorithm, in *lang.Instance, pool []int64) error {
	remapped, err := in.ID.RemapPreservingOrder(pool)
	if err != nil {
		return fmt.Errorf("orderinv: %w", err)
	}
	inB := &lang.Instance{G: in.G, X: in.X, ID: remapped}
	ya := local.RunView(in, algo, nil)
	yb := local.RunView(inB, algo, nil)
	for v := range ya {
		if string(ya[v]) != string(yb[v]) {
			return fmt.Errorf("orderinv: %s is not order-invariant: node %d output %q vs %q under remap",
				algo.Name(), v, ya[v], yb[v])
		}
	}
	return nil
}

// CheckInvarianceRandom runs CheckInvariance over several random
// instances on the given graph, with pools spread far from the original
// identity range.
func CheckInvarianceRandom(algo local.ViewAlgorithm, g *graph.Graph, rounds int, seed uint64) error {
	n := g.N()
	for r := 0; r < rounds; r++ {
		id := ids.RandomPerm(n, seed+uint64(r))
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), id)
		if err != nil {
			return err
		}
		pool := make([]int64, n)
		for i := range pool {
			pool[i] = int64(10_000+1_000*r) + int64(i)*7
		}
		if err := CheckInvariance(algo, in, pool); err != nil {
			return err
		}
	}
	return nil
}

// BallShape is one structural ball of the inventory: the unlabeled ball of
// the proof of Claim 2 ("there is a finite number of balls of radius t in
// a graph of maximum degree k").
type BallShape struct {
	Ball *graph.Ball
	// Key is the canonical form under center-fixing isomorphism.
	Key string
	// Size is the number of nodes.
	Size int
}

// Inventory is the finite census behind β = 1/N in Claim 2.
type Inventory struct {
	Shapes []BallShape
	// Nu is ν, the number of pairwise non-isomorphic balls.
	Nu int
	// OrderedBalls is N = Σ nᵢ!, the number of ordered balls, i.e. the
	// number of (shape, identity-order) pairs an order-invariant
	// algorithm can distinguish. The count of order-invariant algorithms
	// with palette q is q^N.
	OrderedBalls int64
}

// RingInventory enumerates the radius-t balls of the cycle family
// {C_n : n >= 3}: one generic path-shaped ball for large n, plus the
// degenerate shapes arising when the cycle is smaller than the ball
// radius. Inputs are empty in this family.
func RingInventory(t int) (*Inventory, error) {
	seen := make(map[string]*graph.Ball)
	var order []string
	for n := 3; n <= 2*t+3; n++ {
		b := graph.Cycle(n).BallAround(0, t)
		key, err := b.CanonicalKey(nil)
		if err != nil {
			return nil, err
		}
		if _, ok := seen[key]; !ok {
			seen[key] = b
			order = append(order, key)
		}
	}
	inv := &Inventory{}
	for _, key := range order {
		b := seen[key]
		inv.Shapes = append(inv.Shapes, BallShape{Ball: b, Key: key, Size: b.Size()})
		inv.OrderedBalls += factorial(b.Size())
	}
	inv.Nu = len(inv.Shapes)
	return inv, nil
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// Beta returns β = 1/N, the failure probability Claim 2 extracts for at
// least one order-invariant algorithm.
func (inv *Inventory) Beta() float64 {
	return 1 / float64(inv.OrderedBalls)
}
