package orderinv

import (
	"strings"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// idParityAlgo outputs the parity of the maximum identity in the ball —
// deliberately order-SENSITIVE.
type idParityAlgo struct{ t int }

func (a idParityAlgo) Name() string { return "id-parity" }
func (a idParityAlgo) Radius() int  { return a.t }
func (a idParityAlgo) Output(v *local.View) []byte {
	max := v.IDs[0]
	for _, id := range v.IDs {
		if id > max {
			max = id
		}
	}
	return []byte{byte(max % 2)}
}

// rankAlgo outputs the center's rank in the ball — order-invariant.
type rankAlgo struct{ t int }

func (a rankAlgo) Name() string { return "rank" }
func (a rankAlgo) Radius() int  { return a.t }
func (a rankAlgo) Output(v *local.View) []byte {
	r := 0
	for _, id := range v.IDs {
		if id < v.IDs[0] {
			r++
		}
	}
	return []byte{byte(r)}
}

func TestCheckInvarianceAcceptsInvariant(t *testing.T) {
	if err := CheckInvarianceRandom(rankAlgo{t: 2}, graph.Cycle(10), 5, 3); err != nil {
		t.Errorf("rank algorithm flagged: %v", err)
	}
}

func TestCheckInvarianceRejectsSensitive(t *testing.T) {
	// Parity of the max id changes under the pool remap (odd-spaced pool).
	g := graph.Cycle(8)
	in, err := lang.NewInstance(g, lang.EmptyInputs(8), ids.Consecutive(8))
	if err != nil {
		t.Fatal(err)
	}
	// An all-even pool forces constant parity 0, whereas the original
	// consecutive identities alternate max-parity around the ring.
	pool := []int64{100, 102, 104, 106, 108, 110, 112, 114}
	if err := CheckInvariance(idParityAlgo{t: 1}, in, pool); err == nil {
		t.Error("order-sensitive algorithm not flagged")
	} else if !strings.Contains(err.Error(), "not order-invariant") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRingInventoryRadius1(t *testing.T) {
	inv, err := RingInventory(1)
	if err != nil {
		t.Fatal(err)
	}
	// Radius-1 balls on cycles: C3 (triangle minus the frontier edge — a
	// path), C4 and larger give the 3-node path; C3's ball has the two
	// neighbors adjacent at distance 1... enumerate and sanity-check
	// sizes instead of hardcoding the census: all shapes have 3 nodes.
	for _, s := range inv.Shapes {
		if s.Size != 3 {
			t.Errorf("radius-1 ring ball with %d nodes", s.Size)
		}
	}
	if inv.Nu < 1 || inv.Nu > 2 {
		t.Errorf("ν = %d, want 1 or 2", inv.Nu)
	}
	if inv.OrderedBalls != int64(inv.Nu)*6 {
		t.Errorf("N = %d, want %d (ν · 3!)", inv.OrderedBalls, inv.Nu*6)
	}
	if inv.Beta() <= 0 || inv.Beta() > 1 {
		t.Errorf("β = %v out of range", inv.Beta())
	}
}

func TestRingInventoryRadius2(t *testing.T) {
	inv, err := RingInventory(2)
	if err != nil {
		t.Fatal(err)
	}
	// Shapes: from C3, C4, C5 (degenerate) and the generic 5-node path.
	if inv.Nu < 2 {
		t.Errorf("ν = %d, want at least 2 distinct shapes", inv.Nu)
	}
	// The generic shape has 5 nodes; some degenerate shapes are smaller.
	foundGeneric := false
	for _, s := range inv.Shapes {
		if s.Size == 5 {
			foundGeneric = true
		}
		if s.Size > 5 {
			t.Errorf("radius-2 ring ball with %d > 5 nodes", s.Size)
		}
	}
	if !foundGeneric {
		t.Error("generic 5-node path ball missing")
	}
}

func TestExtractOnOrderInvariantAlgorithmIsFast(t *testing.T) {
	inv, err := RingInventory(1)
	if err != nil {
		t.Fatal(err)
	}
	// An already order-invariant algorithm is consistent on any ids: the
	// greedy extraction accepts the first candidates it sees.
	ext, err := Extract(rankAlgo{t: 1}, inv, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.U) != 5 {
		t.Errorf("|U| = %d, want 5", len(ext.U))
	}
	for i := range ext.U {
		if ext.U[i] != int64(i+1) {
			t.Errorf("U = %v, expected the first candidates 1..5", ext.U)
			break
		}
	}
}

func TestExtractOnParityAlgorithm(t *testing.T) {
	inv, err := RingInventory(1)
	if err != nil {
		t.Fatal(err)
	}
	// Max-id parity must be constant over all 3-subsets of U. The max of
	// a 3-subset is always at least the third-smallest element of U, so
	// the consistency requirement is exactly: every element of U except
	// the two smallest shares one parity.
	ext, err := Extract(idParityAlgo{t: 1}, inv, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	parity := ext.U[2] % 2
	for _, u := range ext.U[2:] {
		if u%2 != parity {
			t.Errorf("extracted U = %v has mixed-parity maxima", ext.U)
			break
		}
	}
	// Direct verification: every ordered ball evaluates constantly on U.
	for bi, ob := range orderedBallsOf(inv) {
		var first string
		seen := false
		forEachSubset(ext.U, ob.shape.Size, func(sub []int64) bool {
			out := evalOnIDs(idParityAlgo{t: 1}, ob, sub)
			if !seen {
				first, seen = out, true
				return true
			}
			if out != first {
				t.Errorf("ordered ball %d: output varies over U", bi)
				return false
			}
			return true
		})
	}
}

func TestSimulationIsOrderInvariantAndAgreesOnU(t *testing.T) {
	inv, err := RingInventory(1)
	if err != nil {
		t.Fatal(err)
	}
	inner := idParityAlgo{t: 1}
	ext, err := Extract(inner, inv, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Inner: inner, U: ext.U}

	// (a) A' is order-invariant.
	if err := CheckInvarianceRandom(sim, graph.Cycle(8), 5, 9); err != nil {
		t.Errorf("A' not order-invariant: %v", err)
	}

	// (b) A' agrees with A on instances whose identities come from U.
	g := graph.Cycle(8)
	idAssign := ids.FromSlice(ext.U[:8])
	in, err := lang.NewInstance(g, lang.EmptyInputs(8), idAssign)
	if err != nil {
		t.Fatal(err)
	}
	ya := local.RunView(in, inner, nil)
	yb := local.RunView(in, sim, nil)
	for v := range ya {
		if string(ya[v]) != string(yb[v]) {
			t.Errorf("node %d: A=%v A'=%v on U-instance", v, ya[v], yb[v])
		}
	}
}

func TestSimulationPanicsOnSmallU(t *testing.T) {
	sim := &Simulation{Inner: rankAlgo{t: 2}, U: []int64{1, 2}}
	g := graph.Cycle(9)
	in, _ := lang.NewInstance(g, lang.EmptyInputs(9), ids.Consecutive(9))
	view := local.ConstructionView(in, 0, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for |U| smaller than the ball")
		}
	}()
	sim.Output(view)
}

func TestExtractRejectsBadParams(t *testing.T) {
	inv, _ := RingInventory(1)
	if _, err := Extract(rankAlgo{t: 1}, inv, 0, 10); err == nil {
		t.Error("wantSize 0 accepted")
	}
}

func TestExtractPoolExhaustion(t *testing.T) {
	inv, _ := RingInventory(1)
	// Tiny pool cannot yield 10 ids.
	if _, err := Extract(idParityAlgo{t: 1}, inv, 10, 6); err == nil {
		t.Error("expected pool-exhaustion error")
	}
}

// orderedBallsOf mirrors Extract's enumeration for verification.
func orderedBallsOf(inv *Inventory) []orderedBall {
	var balls []orderedBall
	for _, shape := range inv.Shapes {
		for _, perm := range permutations(shape.Size) {
			balls = append(balls, orderedBall{shape: shape, perm: perm})
		}
	}
	return balls
}

func TestFactorial(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int64
	}{{0, 1}, {1, 1}, {3, 6}, {5, 120}} {
		if got := factorial(tc.n); got != tc.want {
			t.Errorf("factorial(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
