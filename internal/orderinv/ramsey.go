package orderinv

import (
	"fmt"
	"sort"

	"rlnc/internal/local"
)

// This file implements the finite Ramsey extraction of Appendix A. Given
// an algorithm A of radius t on the ring family, it searches a finite
// identity pool for a subset U such that, for every ordered ball (shape
// plus identity-order pattern), A's output at the center is the same for
// all assignments of identities from U respecting that order. Appendix A
// secures an infinite such U via Ramsey's theorem; the extractor below
// certifies the property on a finite U, which is all the order-invariant
// simulation A' ever consumes.

// orderedBall is one (shape, permutation) pair — the βᵢ of Appendix A.
type orderedBall struct {
	shape BallShape
	// perm assigns rank perm[i] to ball-local node i.
	perm []int
}

// permutations generates all permutations of 0..n-1.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// evalOnIDs runs A at the center of an ordered ball whose node identities
// are the given sorted values assigned according to the pattern.
func evalOnIDs(algo local.ViewAlgorithm, ob orderedBall, sortedIDs []int64) string {
	idArr := make([]int64, ob.shape.Size)
	for i, rank := range ob.perm {
		idArr[i] = sortedIDs[rank]
	}
	view := &local.View{
		Ball: ob.shape.Ball,
		IDs:  idArr,
		X:    make([][]byte, ob.shape.Size),
	}
	return string(algo.Output(view))
}

// Extraction is the result of a successful Ramsey extraction.
type Extraction struct {
	// U is the extracted identity set, ascending.
	U []int64
	// Outputs records, for each ordered ball index, the constant output.
	Outputs []string
	// Evaluations counts algorithm invocations performed by the search.
	Evaluations int
}

// ErrBudget reports an exhausted extraction search budget.
var ErrBudget = fmt.Errorf("orderinv: extraction budget exhausted")

// defaultExtractBudget caps algorithm evaluations during Extract.
const defaultExtractBudget = 5_000_000

// Extract searches the pool {1..poolSize} for a set U of the wanted size
// such that the outputs of algo on every ordered ball depend only on the
// order pattern when identities come from U. The search is a backtracking
// DFS over ascending candidates with consistency checking: a candidate
// joins U only while every ordered ball, evaluated on every subset
// involving the candidate, agrees with the ball's established output;
// dead branches roll the establishment state back — the finite analogue
// of re-applying Ramsey's theorem per ordered ball in Appendix A.
func Extract(algo local.ViewAlgorithm, inv *Inventory, wantSize, poolSize int) (*Extraction, error) {
	if wantSize < 1 {
		return nil, fmt.Errorf("orderinv: wantSize must be positive")
	}
	var balls []orderedBall
	for _, shape := range inv.Shapes {
		for _, perm := range permutations(shape.Size) {
			balls = append(balls, orderedBall{shape: shape, perm: perm})
		}
	}
	established := make([]string, len(balls))
	establishedSet := make([]bool, len(balls))
	ext := &Extraction{}
	var u []int64
	budgetHit := false

	// consistent evaluates candidate c against the current set u, updating
	// establishment state in place (callers snapshot and roll back).
	consistent := func(c int64) bool {
		for bi, ob := range balls {
			r := ob.shape.Size
			if len(u)+1 < r {
				continue // not enough identities yet
			}
			ok := true
			forEachSubset(u, r-1, func(subset []int64) bool {
				idsSorted := append(append([]int64(nil), subset...), c)
				sort.Slice(idsSorted, func(i, j int) bool { return idsSorted[i] < idsSorted[j] })
				out := evalOnIDs(algo, ob, idsSorted)
				ext.Evaluations++
				if !establishedSet[bi] {
					established[bi] = out
					establishedSet[bi] = true
					return true
				}
				if out != established[bi] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}

	var dfs func(from int64) bool
	dfs = func(from int64) bool {
		if len(u) >= wantSize {
			return true
		}
		for c := from; c <= int64(poolSize); c++ {
			if ext.Evaluations > defaultExtractBudget {
				budgetHit = true
				return false
			}
			estBackup := append([]string(nil), established...)
			setBackup := append([]bool(nil), establishedSet...)
			if consistent(c) {
				u = append(u, c)
				if dfs(c + 1) {
					return true
				}
				u = u[:len(u)-1]
			}
			copy(established, estBackup)
			copy(establishedSet, setBackup)
			if budgetHit {
				return false
			}
		}
		return false
	}
	if !dfs(1) {
		if budgetHit {
			return nil, fmt.Errorf("%w: %d evaluations, |U| reached %d of %d",
				ErrBudget, ext.Evaluations, len(u), wantSize)
		}
		return nil, fmt.Errorf("orderinv: pool of %d admits no consistent U of size %d (best effort exhausted after %d evaluations)",
			poolSize, wantSize, ext.Evaluations)
	}
	ext.U = u
	ext.Outputs = established
	return ext, nil
}

// forEachSubset enumerates size-r subsets of set, calling fn with each;
// fn returning false aborts the enumeration.
func forEachSubset(set []int64, r int, fn func([]int64) bool) {
	if r == 0 {
		fn(nil)
		return
	}
	if r > len(set) {
		return
	}
	idx := make([]int, r)
	current := make([]int64, r)
	var rec func(start, k int) bool
	rec = func(start, k int) bool {
		if k == r {
			for i := 0; i < r; i++ {
				current[i] = set[idx[i]]
			}
			return fn(current)
		}
		for i := start; i <= len(set)-(r-k); i++ {
			idx[k] = i
			if !rec(i+1, k+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// Simulation is the order-invariant algorithm A' of Appendix A: it
// relabels every ball with the |ball| smallest values of U, respecting
// the order of the original identities, and runs A on the relabeled ball.
type Simulation struct {
	Inner local.ViewAlgorithm
	U     []int64
}

// Name implements local.ViewAlgorithm.
func (s *Simulation) Name() string { return fmt.Sprintf("order-invariant(%s)", s.Inner.Name()) }

// Radius implements local.ViewAlgorithm.
func (s *Simulation) Radius() int { return s.Inner.Radius() }

// OrderInvariantAlgorithm marks the simulation as order-invariant.
func (s *Simulation) OrderInvariantAlgorithm() {}

// Output implements local.ViewAlgorithm.
func (s *Simulation) Output(v *local.View) []byte {
	r := len(v.IDs)
	if r > len(s.U) {
		panic(fmt.Sprintf("orderinv: ball of %d nodes exceeds |U| = %d", r, len(s.U)))
	}
	// Rank the original identities and substitute the smallest values of
	// U in the same order ("reassigning identities ... using the
	// |B_G(v,t)| smallest values in U, in the order specified by σ").
	ranks := rankOf(v.IDs)
	sub := make([]int64, r)
	for i, rk := range ranks {
		sub[i] = s.U[rk]
	}
	view := &local.View{Ball: v.Ball, IDs: sub, X: v.X, Y: v.Y, TapeFor: v.TapeFor}
	return s.Inner.Output(view)
}

func rankOf(idsIn []int64) []int {
	idx := make([]int, len(idsIn))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return idsIn[idx[a]] < idsIn[idx[b]] })
	rank := make([]int, len(idsIn))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}
