package orderinv

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// This file makes the premise of Claim 2 exact for the smallest
// interesting case: radius-1 algorithms on rings. The proof of Claim 2
// observes that under the F_k promise there are finitely many
// (deterministic) order-invariant algorithms — N ordered balls, hence
// q^N algorithms with palette q — and that, if no deterministic
// algorithm exists, EVERY one of them fails on some instance. Here the
// whole space (3^6 = 729 algorithms for q = 3) is enumerated and a
// failing instance is exhibited for each, turning the counting argument
// into an exhaustive computation.

// ringPatternCount is the number of order patterns of a radius-1 ring
// view: the ball is always the 3-node path (center, successor,
// predecessor) — for every cycle length, including C_3, whose
// frontier-frontier edge is excluded — so patterns are the 3! orderings.
const ringPatternCount = 6

// ringPatternIndex maps the (center, successor, predecessor) identities
// to a pattern index in 0..5 via the rank vector, in lexicographic order
// of rank triples.
func ringPatternIndex(center, succ, pred int64) int {
	rank := func(x int64) int {
		r := 0
		if center < x {
			r++
		}
		if succ < x {
			r++
		}
		if pred < x {
			r++
		}
		return r
	}
	rc, rs := rank(center), rank(succ)
	// The triple (rc, rs, rp) is a permutation of (0,1,2); index it by
	// rc*2 + (1 if rs is the larger of the remaining two).
	idx := rc * 2
	rp := 3 - rc - rs
	if rs > rp {
		idx++
	}
	return idx
}

// RingTableAlgorithm is one order-invariant radius-1 ring algorithm: a
// lookup table from the 6 order patterns to colors in [0, Q).
type RingTableAlgorithm struct {
	Table [ringPatternCount]int
	Q     int
}

// Name implements local.ViewAlgorithm.
func (a RingTableAlgorithm) Name() string {
	return fmt.Sprintf("ring-table%v(q=%d)", a.Table, a.Q)
}

// Radius implements local.ViewAlgorithm.
func (a RingTableAlgorithm) Radius() int { return 1 }

// OrderInvariantAlgorithm marks the algorithm order-invariant (the table
// is indexed by order pattern only).
func (a RingTableAlgorithm) OrderInvariantAlgorithm() {}

// Output implements local.ViewAlgorithm. The view must be a ring view:
// degree-2 center with ports (successor, predecessor).
func (a RingTableAlgorithm) Output(v *local.View) []byte {
	if v.Degree() != 2 {
		panic("orderinv: ring table algorithm needs a cycle")
	}
	nb := v.Ball.G.Neighbors(0)
	succ := v.IDs[nb[0]]
	pred := v.IDs[nb[1]]
	return lang.EncodeColor(a.Table[ringPatternIndex(v.IDs[0], succ, pred)])
}

// EnumerateRingAlgorithms returns all q^6 order-invariant radius-1 ring
// algorithms with palette q — the full space the Claim 2 argument counts.
func EnumerateRingAlgorithms(q int) []RingTableAlgorithm {
	total := 1
	for i := 0; i < ringPatternCount; i++ {
		total *= q
	}
	out := make([]RingTableAlgorithm, 0, total)
	for code := 0; code < total; code++ {
		var table [ringPatternCount]int
		c := code
		for i := 0; i < ringPatternCount; i++ {
			table[i] = c % q
			c /= q
		}
		out = append(out, RingTableAlgorithm{Table: table, Q: q})
	}
	return out
}

// Counterexample is a failing instance for one algorithm.
type Counterexample struct {
	N    int
	Seed uint64
}

// FindRingCounterexample searches consecutive-identity and permuted
// cycles of length 3..maxN for an instance the algorithm fails to
// properly q-color, returning the first hit.
func FindRingCounterexample(algo local.ViewAlgorithm, q, maxN int) (*Counterexample, bool) {
	l := lang.ProperColoring(q)
	for n := 3; n <= maxN; n++ {
		g := graph.Cycle(n)
		assignments := []struct {
			id   ids.Assignment
			seed uint64
		}{
			{ids.Consecutive(n), 0},
		}
		for seed := uint64(1); seed <= 6; seed++ {
			assignments = append(assignments, struct {
				id   ids.Assignment
				seed uint64
			}{ids.RandomPerm(n, seed), seed})
		}
		for _, as := range assignments {
			in := &lang.Instance{G: g, X: lang.EmptyInputs(n), ID: as.id}
			y := local.RunView(in, algo, nil)
			ok, err := l.Contains(&lang.Config{G: g, X: in.X, Y: y})
			if err == nil && !ok {
				return &Counterexample{N: n, Seed: as.seed}, true
			}
		}
	}
	return nil, false
}

// Claim2Report summarizes the exhaustive verification.
type Claim2Report struct {
	Palette    int
	Algorithms int
	// Failures counts algorithms with a counterexample (Claim 2 requires
	// this to equal Algorithms).
	Failures int
	// BySize histograms the minimal counterexample cycle length found.
	BySize map[int]int
}

// VerifyClaim2Radius1 enumerates every order-invariant radius-1 ring
// algorithm with palette q and finds a failing instance for each. The
// paper's Section 4 argument predicts universal failure: on a
// consecutive-identity cycle all interior views share one order pattern,
// so two adjacent interior nodes receive equal colors.
func VerifyClaim2Radius1(q, maxN int) (*Claim2Report, error) {
	rep := &Claim2Report{Palette: q, BySize: make(map[int]int)}
	for _, algo := range EnumerateRingAlgorithms(q) {
		rep.Algorithms++
		ce, found := FindRingCounterexample(algo, q, maxN)
		if !found {
			return nil, fmt.Errorf("orderinv: algorithm %s survives all cycles up to %d — Claim 2 premise violated",
				algo.Name(), maxN)
		}
		rep.Failures++
		rep.BySize[ce.N]++
	}
	return rep, nil
}
