package lang

import (
	"fmt"
)

// Language is a distributed language: a family of input-output
// configurations (§2.2.1). Contains must be independent of identities.
type Language interface {
	Name() string
	// Contains reports whether the configuration belongs to the language.
	// An error indicates a malformed configuration (shape mismatch), not
	// mere non-membership.
	Contains(c *Config) (bool, error)
}

// countSelected counts nodes whose output is exactly the selection mark.
func countSelected(c *Config) int {
	count := 0
	for _, y := range c.Y {
		if len(y) == 1 && y[0] == Selected {
			count++
		}
	}
	return count
}

// AMOS is the language "at most one selected" of §2.3.1:
//
//	amos = { (G,(x,y)) : |{v : y(v) = ⋆}| <= 1 }.
//
// It is the canonical witness that LD ⊊ BPLD: it cannot be decided
// deterministically in D/2−1 rounds on diameter-D graphs, yet it is
// randomly decidable in zero rounds with guarantee (√5−1)/2.
type AMOS struct{}

// Name implements Language.
func (AMOS) Name() string { return "amos" }

// Contains implements Language.
func (AMOS) Contains(c *Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return countSelected(c) <= 1, nil
}

// Majority is the language requiring that a strict majority of nodes
// output the selection mark (§2.2.2's example of a language constructible
// but not decidable in constant time).
type Majority struct{}

// Name implements Language.
func (Majority) Name() string { return "majority" }

// Contains implements Language.
func (Majority) Contains(c *Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return 2*countSelected(c) > c.G.N(), nil
}

// AtLeastKSelected generalizes Majority to a fixed threshold; used as a
// non-local specification in decider stress tests.
type AtLeastKSelected struct{ K int }

// Name implements Language.
func (l AtLeastKSelected) Name() string { return fmt.Sprintf("at-least-%d-selected", l.K) }

// Contains implements Language.
func (l AtLeastKSelected) Contains(c *Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return countSelected(c) >= l.K, nil
}
