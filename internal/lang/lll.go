package lang

// LLL returns the LCL used as the paper's running Lovász-local-lemma
// example (§1.1, citing Chung–Pettie–Su [6]): every node outputs one bit,
// and the "bad event" at node v is that v's closed star is monochromatic
// (v and all its neighbors carry the same bit). Under a uniformly random
// assignment the bad event at v has probability 2^{-deg(v)} and depends
// only on events within distance 2, so for bounded degree ≥ 3 the LLL
// criterion e·p·(d+1) ≤ 1 holds and satisfying assignments exist — indeed
// any weak 2-coloring is exactly an assignment avoiding every bad event.
//
// The f-resilient relaxation of this language (at most f bad events hold)
// is the relaxed constructive LLL discussed in §1.1 and §4.
func LLL() *LCL {
	l := WeakColoring(2)
	l.LangName = "lll-monochromatic-star"
	return l
}
