// Package lang defines distributed languages and their configurations,
// following §2.2 of the paper: an input-output configuration is a pair
// (G, (x, y)) where G is a graph and x, y assign binary strings to nodes;
// a distributed language is a family of such configurations containing at
// least one output for every input configuration. Languages come in two
// flavours here: LCL languages defined by excluding a finite set of bad
// balls (§4, after Naor–Stockmeyer), and global languages such as AMOS
// whose specification is not local.
package lang

import (
	"errors"
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
)

// Config is an input-output configuration (G, (x, y)). X and Y are indexed
// by node; entries may be empty strings but the slices must cover all
// nodes. Membership in a language never depends on identities, so Config
// carries none.
type Config struct {
	G *graph.Graph
	X [][]byte
	Y [][]byte
}

// Instance is an instance (G, x, id) of a construction task (§2.2.1):
// the identity assignment determines how algorithms behave but not what
// the language contains.
type Instance struct {
	G  *graph.Graph
	X  [][]byte
	ID ids.Assignment
}

// DecisionInstance is an instance (G, (x, y), id) of a decision task.
type DecisionInstance struct {
	G  *graph.Graph
	X  [][]byte
	Y  [][]byte
	ID ids.Assignment
}

// Config extracts the identity-free configuration under decision.
func (d *DecisionInstance) Config() *Config {
	return &Config{G: d.G, X: d.X, Y: d.Y}
}

// Errors reported by validation.
var (
	ErrShape   = errors.New("lang: per-node slice length does not match node count")
	ErrNilG    = errors.New("lang: nil graph")
	ErrPromise = errors.New("lang: configuration violates the promise")
)

// EmptyInputs returns an all-empty input assignment for n nodes.
func EmptyInputs(n int) [][]byte {
	return make([][]byte, n)
}

// NewInstance validates and assembles a construction instance.
func NewInstance(g *graph.Graph, x [][]byte, id ids.Assignment) (*Instance, error) {
	if g == nil {
		return nil, ErrNilG
	}
	if len(x) != g.N() {
		return nil, fmt.Errorf("%w: |x|=%d, n=%d", ErrShape, len(x), g.N())
	}
	if id.Len() != g.N() {
		return nil, fmt.Errorf("%w: |id|=%d, n=%d", ErrShape, id.Len(), g.N())
	}
	if err := id.Validate(); err != nil {
		return nil, err
	}
	return &Instance{G: g, X: x, ID: id}, nil
}

// WithOutput attaches a constructed output to an instance, yielding the
// decision instance that a decider will examine.
func (in *Instance) WithOutput(y [][]byte) (*DecisionInstance, error) {
	if len(y) != in.G.N() {
		return nil, fmt.Errorf("%w: |y|=%d, n=%d", ErrShape, len(y), in.G.N())
	}
	return &DecisionInstance{G: in.G, X: in.X, Y: y, ID: in.ID}, nil
}

// Validate checks structural consistency of a configuration.
func (c *Config) Validate() error {
	if c.G == nil {
		return ErrNilG
	}
	if len(c.X) != c.G.N() {
		return fmt.Errorf("%w: |x|=%d, n=%d", ErrShape, len(c.X), c.G.N())
	}
	if len(c.Y) != c.G.N() {
		return fmt.Errorf("%w: |y|=%d, n=%d", ErrShape, len(c.Y), c.G.N())
	}
	return nil
}

// Promise is a predicate restricting the instances an algorithm must
// handle, such as the paper's F_k.
type Promise interface {
	Name() string
	Holds(c *Config) bool
}

// Fk is the promise of the paper (§2.2.3): configurations whose graph has
// maximum degree at most K and whose input and output strings have length
// at most K bytes... the paper bounds string length in bits; we bound in
// bytes, which only widens the finite alphabet and changes no argument.
type Fk struct {
	K int
}

// Name implements Promise.
func (f Fk) Name() string { return fmt.Sprintf("F_%d", f.K) }

// Holds implements Promise.
func (f Fk) Holds(c *Config) bool {
	if c.Validate() != nil {
		return false
	}
	if c.G.MaxDegree() > f.K {
		return false
	}
	for v := 0; v < c.G.N(); v++ {
		if len(c.X[v]) > f.K || len(c.Y[v]) > f.K {
			return false
		}
	}
	return true
}

// CheckPromise returns a descriptive error when the promise fails.
func CheckPromise(p Promise, c *Config) error {
	if !p.Holds(c) {
		return fmt.Errorf("%w: %s", ErrPromise, p.Name())
	}
	return nil
}
