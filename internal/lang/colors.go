package lang

import (
	"errors"
	"fmt"
)

// Colors and other small categorical outputs are encoded as single bytes,
// keeping outputs within every F_k promise with k >= 1. The sentinel
// values below share the byte namespace deliberately: a language only ever
// interprets its own outputs.

// ErrDecode reports an output string that does not decode as expected.
var ErrDecode = errors.New("lang: cannot decode output")

// colorBytes backs EncodeColor: one shared 1-byte string per color, so
// encoding — the innermost operation of every coloring trial — is
// allocation-free. Output strings are immutable by convention everywhere
// in the repository; callers must not write through the returned slice.
var colorBytes = func() (t [256][1]byte) {
	for i := range t {
		t[i][0] = byte(i)
	}
	return t
}()

// EncodeColor encodes color c (0..255) as a 1-byte output string. The
// returned slice is shared and read-only.
func EncodeColor(c int) []byte {
	if c < 0 || c > 255 {
		panic(fmt.Sprintf("lang: color %d out of byte range", c))
	}
	return colorBytes[c][:]
}

// DecodeColor decodes a 1-byte color.
func DecodeColor(y []byte) (int, error) {
	if len(y) != 1 {
		return 0, fmt.Errorf("%w: want 1 byte, got %d", ErrDecode, len(y))
	}
	return int(y[0]), nil
}

// Selection marks (AMOS, MIS, dominating set) use a single byte: 0 = not
// selected, 1 = selected (the paper's ⋆ mark).
const (
	NotSelected byte = 0
	Selected    byte = 1
)

// EncodeSelected returns the output string for a (non-)selected node.
// The returned slice is shared and read-only, like EncodeColor's.
func EncodeSelected(sel bool) []byte {
	if sel {
		return colorBytes[Selected][:]
	}
	return colorBytes[NotSelected][:]
}

// DecodeSelected decodes a selection mark.
func DecodeSelected(y []byte) (bool, error) {
	if len(y) != 1 || (y[0] != Selected && y[0] != NotSelected) {
		return false, fmt.Errorf("%w: bad selection mark %v", ErrDecode, y)
	}
	return y[0] == Selected, nil
}

// UnmatchedPort is the matching output for an unmatched node.
const UnmatchedPort byte = 0xFF

// EncodeMatchPort encodes "matched through port p" (p < 255) or
// unmatched. The returned slice is shared and read-only, like
// EncodeColor's.
func EncodeMatchPort(port int, matched bool) []byte {
	if !matched {
		return colorBytes[UnmatchedPort][:]
	}
	if port < 0 || port >= 255 {
		panic(fmt.Sprintf("lang: match port %d out of range", port))
	}
	return colorBytes[byte(port)][:]
}

// DecodeMatchPort decodes a matching output; matched is false for the
// unmatched sentinel.
func DecodeMatchPort(y []byte) (port int, matched bool, err error) {
	if len(y) != 1 {
		return 0, false, fmt.Errorf("%w: want 1 byte, got %d", ErrDecode, len(y))
	}
	if y[0] == UnmatchedPort {
		return 0, false, nil
	}
	return int(y[0]), true, nil
}
