package lang

import (
	"errors"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
)

// colorConfig builds a configuration on g with the given 1-byte colors.
func colorConfig(g *graph.Graph, colors ...int) *Config {
	y := make([][]byte, g.N())
	for v, c := range colors {
		y[v] = EncodeColor(c)
	}
	return &Config{G: g, X: EmptyInputs(g.N()), Y: y}
}

// selConfig builds a configuration with the given selected node set.
func selConfig(g *graph.Graph, selected ...int) *Config {
	y := make([][]byte, g.N())
	for v := 0; v < g.N(); v++ {
		y[v] = EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = EncodeSelected(true)
	}
	return &Config{G: g, X: EmptyInputs(g.N()), Y: y}
}

func mustContain(t *testing.T, l Language, c *Config, want bool) {
	t.Helper()
	got, err := l.Contains(c)
	if err != nil {
		t.Fatalf("%s: Contains error: %v", l.Name(), err)
	}
	if got != want {
		t.Errorf("%s: Contains = %v, want %v", l.Name(), got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	g := graph.Path(3)
	good := &Config{G: g, X: EmptyInputs(3), Y: EmptyInputs(3)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := &Config{G: g, X: EmptyInputs(2), Y: EmptyInputs(3)}
	if err := bad.Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	if err := (&Config{}).Validate(); !errors.Is(err, ErrNilG) {
		t.Errorf("want ErrNilG, got %v", err)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewInstance(g, EmptyInputs(3), ids.Consecutive(3)); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if _, err := NewInstance(g, EmptyInputs(2), ids.Consecutive(3)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	if _, err := NewInstance(g, EmptyInputs(3), ids.Assignment{1, 1, 2}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestWithOutput(t *testing.T) {
	g := graph.Path(3)
	in, _ := NewInstance(g, EmptyInputs(3), ids.Consecutive(3))
	di, err := in.WithOutput(EmptyInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := di.Config().Validate(); err != nil {
		t.Errorf("decision config invalid: %v", err)
	}
	if _, err := in.WithOutput(EmptyInputs(2)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestFkPromise(t *testing.T) {
	g := graph.Star(5) // center degree 4
	c := &Config{G: g, X: EmptyInputs(5), Y: EmptyInputs(5)}
	if !(Fk{K: 4}).Holds(c) {
		t.Error("F_4 should hold for star with Δ=4")
	}
	if (Fk{K: 3}).Holds(c) {
		t.Error("F_3 should fail for star with Δ=4")
	}
	c.Y[0] = []byte("too long for k")
	if (Fk{K: 4}).Holds(c) {
		t.Error("F_4 should fail for a 14-byte output")
	}
	if err := CheckPromise(Fk{K: 4}, c); !errors.Is(err, ErrPromise) {
		t.Errorf("want ErrPromise, got %v", err)
	}
}

func TestColorCodec(t *testing.T) {
	for _, c := range []int{0, 1, 17, 255} {
		got, err := DecodeColor(EncodeColor(c))
		if err != nil || got != c {
			t.Errorf("roundtrip %d -> %d, err %v", c, got, err)
		}
	}
	if _, err := DecodeColor([]byte{1, 2}); !errors.Is(err, ErrDecode) {
		t.Error("expected decode error for 2-byte color")
	}
	if _, err := DecodeColor(nil); !errors.Is(err, ErrDecode) {
		t.Error("expected decode error for empty color")
	}
}

func TestSelectionCodec(t *testing.T) {
	for _, s := range []bool{true, false} {
		got, err := DecodeSelected(EncodeSelected(s))
		if err != nil || got != s {
			t.Errorf("roundtrip %v -> %v, err %v", s, got, err)
		}
	}
	if _, err := DecodeSelected([]byte{7}); err == nil {
		t.Error("expected decode error for mark 7")
	}
}

func TestMatchPortCodec(t *testing.T) {
	p, m, err := DecodeMatchPort(EncodeMatchPort(3, true))
	if err != nil || !m || p != 3 {
		t.Errorf("roundtrip: p=%d m=%v err=%v", p, m, err)
	}
	_, m, err = DecodeMatchPort(EncodeMatchPort(0, false))
	if err != nil || m {
		t.Errorf("unmatched roundtrip: m=%v err=%v", m, err)
	}
}

func TestProperColoring(t *testing.T) {
	l := ProperColoring(3)
	c5 := graph.Cycle(5)
	mustContain(t, l, colorConfig(c5, 0, 1, 0, 1, 2), true)
	mustContain(t, l, colorConfig(c5, 0, 0, 1, 2, 1), false)
	// Color out of palette.
	mustContain(t, l, colorConfig(c5, 0, 1, 0, 1, 3), false)
	// Malformed output string.
	bad := colorConfig(c5, 0, 1, 0, 1, 2)
	bad.Y[2] = nil
	mustContain(t, l, bad, false)
}

func TestProperColoringBadBallCount(t *testing.T) {
	l := ProperColoring(3)
	c6 := graph.Cycle(6)
	mono := colorConfig(c6, 1, 1, 1, 1, 1, 1)
	if got := l.CountBadBalls(mono); got != 6 {
		t.Errorf("monochromatic C6: bad balls = %d, want 6", got)
	}
	one := colorConfig(c6, 0, 0, 1, 2, 1, 2) // conflict only at {0,1}
	if got := l.CountBadBalls(one); got != 2 {
		t.Errorf("single conflict: bad balls = %d, want 2", got)
	}
	if nodes := l.BadNodes(one); len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("bad nodes = %v, want [0 1]", nodes)
	}
}

func TestWeakColoring(t *testing.T) {
	l := WeakColoring(2)
	p3 := graph.Path(3)
	mustContain(t, l, colorConfig(p3, 0, 1, 0), true)
	mustContain(t, l, colorConfig(p3, 0, 0, 0), false)
	// 0,0,1: node 0's only neighbor is 1 with color 0 -> bad ball at 0.
	mustContain(t, l, colorConfig(p3, 0, 0, 1), false)
	// A proper coloring is in particular weak.
	c4 := graph.Cycle(4)
	mustContain(t, l, colorConfig(c4, 0, 1, 0, 1), true)
}

func TestMIS(t *testing.T) {
	l := MIS()
	p4 := graph.Path(4)
	mustContain(t, l, selConfig(p4, 0, 2), true)
	mustContain(t, l, selConfig(p4, 0, 3), true)
	mustContain(t, l, selConfig(p4, 0, 1), false) // not independent
	mustContain(t, l, selConfig(p4, 0), false)    // not maximal: 2,3 undominated... 2 has no selected neighbor
	mustContain(t, l, selConfig(p4), false)       // empty set not maximal
	k4 := graph.Complete(4)
	mustContain(t, l, selConfig(k4, 2), true)
}

func TestMaximalMatching(t *testing.T) {
	l := MaximalMatching()
	p4 := graph.Path(4) // adjacency: 0:[1] 1:[0,2] 2:[1,3] 3:[2]
	y := [][]byte{
		EncodeMatchPort(0, true), // 0 matched to 1
		EncodeMatchPort(0, true), // 1 matched to 0
		EncodeMatchPort(1, true), // 2 matched to 3
		EncodeMatchPort(0, true), // 3 matched to 2
	}
	c := &Config{G: p4, X: EmptyInputs(4), Y: y}
	mustContain(t, l, c, true)

	// Non-reciprocal: 1 claims 2 while 2 claims 3.
	y2 := [][]byte{
		EncodeMatchPort(0, true),
		EncodeMatchPort(1, true),
		EncodeMatchPort(1, true),
		EncodeMatchPort(0, true),
	}
	mustContain(t, l, &Config{G: p4, X: EmptyInputs(4), Y: y2}, false)

	// Not maximal: middle edge unmatched while both endpoints unmatched.
	y3 := [][]byte{
		EncodeMatchPort(0, false),
		EncodeMatchPort(0, false),
		EncodeMatchPort(0, false),
		EncodeMatchPort(0, false),
	}
	mustContain(t, l, &Config{G: p4, X: EmptyInputs(4), Y: y3}, false)

	// Matched through a nonexistent port.
	y4 := [][]byte{
		EncodeMatchPort(5, true),
		EncodeMatchPort(0, true),
		EncodeMatchPort(1, true),
		EncodeMatchPort(0, true),
	}
	mustContain(t, l, &Config{G: p4, X: EmptyInputs(4), Y: y4}, false)
}

func TestMinimalDominatingSet(t *testing.T) {
	l := MinimalDominatingSet()
	star := graph.Star(5)
	mustContain(t, l, selConfig(star, 0), true) // center dominates all
	mustContain(t, l, selConfig(star), false)   // nothing dominated
	p3 := graph.Path(3)
	mustContain(t, l, selConfig(p3, 1), true)     // middle dominates path
	mustContain(t, l, selConfig(p3, 0, 1), false) // 0 redundant
	mustContain(t, l, selConfig(p3, 0, 2), true)  // endpoints: minimal
	k3 := graph.Complete(3)
	mustContain(t, l, selConfig(k3, 0), true)
	mustContain(t, l, selConfig(k3, 0, 1), false) // either is redundant
}

func TestFrugalColoring(t *testing.T) {
	star := graph.Star(5) // center 0, leaves 1..4
	cfg := colorConfig(star, 0, 1, 1, 2, 2)
	mustContain(t, FrugalColoring(3, 2), cfg, true)
	mustContain(t, FrugalColoring(3, 1), cfg, false) // color 1 twice in N(0)
	// Frugal but improper must fail too.
	bad := colorConfig(star, 1, 1, 2, 3, 4)
	mustContain(t, FrugalColoring(5, 4), bad, false)
}

func TestAMOS(t *testing.T) {
	g := graph.Cycle(6)
	mustContain(t, AMOS{}, selConfig(g), true)
	mustContain(t, AMOS{}, selConfig(g, 3), true)
	mustContain(t, AMOS{}, selConfig(g, 1, 4), false)
	mustContain(t, AMOS{}, selConfig(g, 0, 1, 2), false)
}

func TestMajority(t *testing.T) {
	g := graph.Path(4)
	mustContain(t, Majority{}, selConfig(g, 0, 1, 2), true)
	mustContain(t, Majority{}, selConfig(g, 0, 1), false) // exactly half is not a majority
	mustContain(t, Majority{}, selConfig(g), false)
}

func TestAtLeastKSelected(t *testing.T) {
	g := graph.Path(4)
	mustContain(t, AtLeastKSelected{K: 2}, selConfig(g, 1, 3), true)
	mustContain(t, AtLeastKSelected{K: 3}, selConfig(g, 1, 3), false)
}

func TestLLLMatchesWeakColoring(t *testing.T) {
	l := LLL()
	if l.Name() != "lll-monochromatic-star" {
		t.Errorf("name = %q", l.Name())
	}
	p3 := graph.Path(3)
	// Monochromatic star at node 1 <-> bad event holds.
	mustContain(t, l, colorConfig(p3, 0, 0, 0), false)
	mustContain(t, l, colorConfig(p3, 0, 1, 0), true)
}

func TestLabeledBallAroundIndexing(t *testing.T) {
	g := graph.Cycle(5)
	c := colorConfig(g, 0, 1, 2, 0, 1)
	b := LabeledBallAround(c, 2, 1)
	if b.Ball.Center() != 2 {
		t.Fatalf("center = %d", b.Ball.Center())
	}
	col, err := DecodeColor(b.Y[0])
	if err != nil || col != 2 {
		t.Errorf("center color = %d (%v), want 2", col, err)
	}
	if b.Ball.Size() != 3 {
		t.Errorf("ball size = %d, want 3", b.Ball.Size())
	}
}
