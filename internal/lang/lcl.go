package lang

import (
	"fmt"

	"rlnc/internal/graph"
)

// LabeledBall is a radius-t ball together with the inputs and outputs of
// its nodes, indexed ball-locally (index 0 = center). LCL bad-ball
// predicates examine labeled balls and must not depend on identities —
// language membership is identity-free (§2.2.1).
type LabeledBall struct {
	Ball *graph.Ball
	X    [][]byte
	Y    [][]byte
}

// LabeledBallAround extracts the labeled ball B_G(v,t) from a
// configuration.
func LabeledBallAround(c *Config, v, t int) *LabeledBall {
	b := c.G.BallAround(v, t)
	x := make([][]byte, b.Size())
	y := make([][]byte, b.Size())
	for i, u := range b.Nodes {
		x[i] = c.X[u]
		y[i] = c.Y[u]
	}
	return &LabeledBall{Ball: b, X: x, Y: y}
}

// LCL is a locally checkable labeling language (§4): a language defined by
// the exclusion of a collection Bad(L) of balls of radius Radius. A
// configuration belongs to the language iff no node's ball is bad.
type LCL struct {
	LangName string
	Radius   int
	// Bad reports whether the ball violates the specification. It is the
	// membership test of Bad(L).
	Bad func(b *LabeledBall) bool
	// BadRow, when non-nil, is Bad evaluated for every center of one
	// labeled configuration at once over the global columns, without
	// assembling per-node views: after the call, bad[v] must equal
	// Bad(B(v, Radius)) for every node v — byte-for-byte the same
	// predicate, including the treatment of malformed outputs and the
	// neighbor scan order (the direct-neighbor order of a radius-1 ball
	// is the graph's port order). Only radius-1 languages whose predicate
	// reads the outputs of the center and its direct neighbors can define
	// it; deterministic deciders dispatch to it on the hot trial path
	// (decide.Exec.Verdicts). len(bad) is the node count; scratch is
	// caller-provided per-node scratch of the same length, typically a
	// decode-once column so each output is validated once instead of
	// once per adjacent center.
	BadRow func(di *DecisionInstance, bad []bool, scratch []int32)
}

// Name implements Language.
func (l *LCL) Name() string { return l.LangName }

// Contains implements Language: no ball may be bad.
func (l *LCL) Contains(c *Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return l.CountBadBalls(c) == 0, nil
}

// CountBadBalls returns |F(G)| in the notation of Corollary 1's proof:
// the number of nodes v with B_G(v,t) ∈ Bad(L).
func (l *LCL) CountBadBalls(c *Config) int {
	count := 0
	for v := 0; v < c.G.N(); v++ {
		if l.Bad(LabeledBallAround(c, v, l.Radius)) {
			count++
		}
	}
	return count
}

// BadNodes returns the centers of all bad balls.
func (l *LCL) BadNodes(c *Config) []int {
	var out []int
	for v := 0; v < c.G.N(); v++ {
		if l.Bad(LabeledBallAround(c, v, l.Radius)) {
			out = append(out, v)
		}
	}
	return out
}

// centerColor decodes the center's color; ok is false when the output is
// malformed or outside [0, q).
func centerColor(b *LabeledBall, q int) (int, bool) {
	col, err := DecodeColor(b.Y[0])
	if err != nil || col >= q {
		return 0, false
	}
	return col, true
}

// ProperColoring returns the LCL of proper q-colorings: the excluded balls
// of radius 1 are those whose center shares its color with a neighbor (or
// carries no valid color).
func ProperColoring(q int) *LCL {
	return &LCL{
		LangName: fmt.Sprintf("%d-coloring", q),
		Radius:   1,
		Bad: func(b *LabeledBall) bool {
			col, ok := centerColor(b, q)
			if !ok {
				return true
			}
			for _, u := range b.Ball.G.Neighbors(0) {
				nc, err := DecodeColor(b.Y[u])
				if err != nil {
					return true
				}
				if nc == col {
					return true
				}
			}
			return false
		},
		BadRow: func(di *DecisionInstance, bad []bool, col []int32) {
			decodeColorRow(di.Y, col)
			g := di.G
			for v := range bad {
				cv := col[v]
				// The center must carry a valid color below q; neighbors
				// need only decode — an out-of-palette neighbor is its own
				// center's violation, exactly as in Bad.
				if cv < 0 || int(cv) >= q {
					bad[v] = true
					continue
				}
				b := false
				for _, u := range g.Neighbors(v) {
					if cu := col[u]; cu < 0 || cu == cv {
						b = true
						break
					}
				}
				bad[v] = b
			}
		},
	}
}

// decodeColorRow decodes every node's output color once into col:
// -1 for a malformed output, the raw decoded value otherwise (range
// checks stay with the caller — Bad treats center and neighbor ranges
// differently).
func decodeColorRow(y [][]byte, col []int32) {
	for v, yv := range y {
		if c, err := DecodeColor(yv); err != nil {
			col[v] = -1
		} else {
			col[v] = int32(c)
		}
	}
}

// WeakColoring returns the LCL of weak q-colorings (§1.1, [28]): every
// node must have at least one neighbor with a different color.
func WeakColoring(q int) *LCL {
	return &LCL{
		LangName: fmt.Sprintf("weak-%d-coloring", q),
		Radius:   1,
		Bad: func(b *LabeledBall) bool {
			col, ok := centerColor(b, q)
			if !ok {
				return true
			}
			for _, u := range b.Ball.G.Neighbors(0) {
				nc, err := DecodeColor(b.Y[u])
				if err != nil {
					return true
				}
				if nc != col {
					return false // found a differing neighbor
				}
			}
			return true // no differing neighbor (or isolated center)
		},
		BadRow: func(di *DecisionInstance, bad []bool, col []int32) {
			decodeColorRow(di.Y, col)
			g := di.G
			for v := range bad {
				cv := col[v]
				if cv < 0 || int(cv) >= q {
					bad[v] = true
					continue
				}
				// The neighbor scan is order-sensitive: a differing
				// neighbor before the first malformed one acquits the
				// center, exactly as Bad's early return does.
				b := true
				for _, u := range g.Neighbors(v) {
					cu := col[u]
					if cu < 0 {
						break // malformed neighbor: bad
					}
					if cu != cv {
						b = false // found a differing neighbor
						break
					}
				}
				bad[v] = b
			}
		},
	}
}

// MIS returns the LCL of maximal independent sets: a selected node may not
// have a selected neighbor; an unselected node must have one.
func MIS() *LCL {
	return &LCL{
		LangName: "mis",
		Radius:   1,
		Bad: func(b *LabeledBall) bool {
			sel, err := DecodeSelected(b.Y[0])
			if err != nil {
				return true
			}
			anySelected := false
			for _, u := range b.Ball.G.Neighbors(0) {
				nsel, err := DecodeSelected(b.Y[u])
				if err != nil {
					return true
				}
				if nsel {
					anySelected = true
				}
			}
			if sel {
				return anySelected // independence violated
			}
			return !anySelected // domination violated
		},
		BadRow: func(di *DecisionInstance, bad []bool, sel []int32) {
			for v, yv := range di.Y {
				if s, err := DecodeSelected(yv); err != nil {
					sel[v] = -1
				} else if s {
					sel[v] = 1
				} else {
					sel[v] = 0
				}
			}
			g := di.G
			for v := range bad {
				sv := sel[v]
				if sv < 0 {
					bad[v] = true
					continue
				}
				nbrErr, anySelected := false, false
				for _, u := range g.Neighbors(v) {
					switch sel[u] {
					case -1:
						nbrErr = true
					case 1:
						anySelected = true
					}
				}
				if sv == 1 {
					bad[v] = nbrErr || anySelected // independence violated
				} else {
					bad[v] = nbrErr || !anySelected // domination violated
				}
			}
		},
	}
}

// MaximalMatching returns the LCL of maximal matchings. Outputs encode
// "matched through host port p" or the unmatched sentinel; the excluded
// balls of radius 1 are those where the center's claimed partner does not
// reciprocate, the port is invalid, or both the center and a neighbor are
// unmatched (maximality).
func MaximalMatching() *LCL {
	return &LCL{
		LangName: "maximal-matching",
		Radius:   1,
		Bad:      badMatchingBall,
	}
}

func badMatchingBall(b *LabeledBall) bool {
	port, matched, err := DecodeMatchPort(b.Y[0])
	if err != nil {
		return true
	}
	if matched {
		// Find the local neighbor reached through the claimed host port.
		partner := -1
		for j, hostPort := range b.Ball.Ports[0] {
			if hostPort == port {
				partner = int(b.Ball.G.Neighbors(0)[j])
				break
			}
		}
		if partner == -1 {
			return true // port does not exist at the center
		}
		// The partner must point back at the center through its own port.
		pPort, pMatched, err := DecodeMatchPort(b.Y[partner])
		if err != nil || !pMatched {
			return true
		}
		for j, hostPort := range b.Ball.Ports[partner] {
			if hostPort == pPort {
				return int(b.Ball.G.Neighbors(partner)[j]) != 0
			}
		}
		return true // partner's port points outside the ball, hence not at center
	}
	// Maximality: an unmatched center may not have an unmatched neighbor.
	for _, u := range b.Ball.G.Neighbors(0) {
		_, nMatched, err := DecodeMatchPort(b.Y[u])
		if err != nil {
			return true
		}
		if !nMatched {
			return true
		}
	}
	return false
}

// MinimalDominatingSet returns the LCL of minimal dominating sets, with
// radius 2: domination is a radius-1 condition; minimality of a selected
// center needs its neighbors' neighborhoods.
func MinimalDominatingSet() *LCL {
	return &LCL{
		LangName: "minimal-dominating-set",
		Radius:   2,
		Bad:      badMDSBall,
	}
}

func badMDSBall(b *LabeledBall) bool {
	selAt := func(local int) (bool, bool) {
		s, err := DecodeSelected(b.Y[local])
		return s, err == nil
	}
	sel, ok := selAt(0)
	if !ok {
		return true
	}
	neighbors := b.Ball.G.Neighbors(0)
	if !sel {
		// Domination: some neighbor must be selected.
		for _, u := range neighbors {
			if s, ok := selAt(int(u)); !ok {
				return true
			} else if s {
				return false
			}
		}
		return true
	}
	// Minimality: the selected center is redundant — and the ball bad — if
	// the center is dominated without itself (some selected neighbor) and
	// every neighbor is dominated without the center.
	centerCovered := false
	for _, u := range neighbors {
		s, ok := selAt(int(u))
		if !ok {
			return true
		}
		if s {
			centerCovered = true
		}
	}
	if !centerCovered {
		return false // center is the only dominator of itself: not redundant
	}
	for _, u := range neighbors {
		uCovered := false
		if s, _ := selAt(int(u)); s {
			uCovered = true
		}
		for j, w := range b.Ball.G.Neighbors(int(u)) {
			_ = j
			if int(w) == 0 {
				continue // coverage by the center does not count
			}
			if s, ok := selAt(int(w)); ok && s {
				uCovered = true
				break
			}
		}
		if !uCovered {
			return false // u needs the center: center not redundant
		}
	}
	return true // center redundant: minimality violated
}

// FrugalColoring returns the LCL of c-frugal proper q-colorings (§4):
// proper coloring with the extra constraint that no color appears more
// than c times in the neighborhood of any node.
func FrugalColoring(q, c int) *LCL {
	proper := ProperColoring(q)
	return &LCL{
		LangName: fmt.Sprintf("%d-frugal-%d-coloring", c, q),
		Radius:   1,
		Bad: func(b *LabeledBall) bool {
			if proper.Bad(b) {
				return true
			}
			counts := make(map[int]int)
			for _, u := range b.Ball.G.Neighbors(0) {
				nc, err := DecodeColor(b.Y[u])
				if err != nil {
					return true
				}
				counts[nc]++
				if counts[nc] > c {
					return true
				}
			}
			return false
		},
	}
}
