package serve

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"rlnc/internal/exp"
	"rlnc/internal/graph"
	"rlnc/internal/local"
	"rlnc/internal/report"
)

// JobSpec is the body of POST /v1/runs: one experiment job (the E1–E17
// suite by registry ID) or one algorithm job (a registered
// message-algorithm key run as a Monte-Carlo trial sweep over a graph
// family). Exactly one of Experiment and Algorithm must be set.
//
// A job's identity is its content: the normalized spec canonicalizes to
// a deterministic byte form (internal/report's Canon) whose hash is the
// run ID, so resubmitting the same configuration — whatever the JSON
// field order or whitespace — resolves to the same run and is served
// from the run store without recompute.
type JobSpec struct {
	// Experiment is an experiment registry ID ("E2"), normalized to its
	// canonical capitalization at validation.
	Experiment string `json:"experiment,omitempty"`
	// Algorithm describes an algorithm job; nil for experiment jobs.
	Algorithm *AlgoSpec `json:"algorithm,omitempty"`
	// Quick selects the reduced trial counts and sweeps experiments use
	// in CI (`rlnc run -quick`). Ignored for algorithm jobs.
	Quick bool `json:"quick,omitempty"`
	// Seed feeds every tape space of the run; defaults to 1, the CLI
	// default, when omitted.
	Seed uint64 `json:"seed"`
	// Shards, when > 1, runs message-algorithm trial loops on a sharded
	// engine of that many shards, exactly like `rlnc run -shards N`.
	Shards int `json:"shards,omitempty"`
	// Fault arms a fault plan on every trial executor of the run; nil
	// runs fault-free.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// AlgoSpec names a registered message algorithm and the instance to run
// it on: `POST /v1/runs` algorithm jobs measure mean rounds and message
// counts of Trials independent executions on the family graph.
type AlgoSpec struct {
	// Key is a remote-algorithm registry key (GET /v1/algorithms lists
	// them), e.g. "retry-coloring" or "luby-mis".
	Key string `json:"key"`
	// Params are the algorithm's flat parameters, exactly as the
	// shard-worker protocol ships them (e.g. [3, 4] for retry-coloring's
	// (q, t)).
	Params []int64 `json:"params,omitempty"`
	// Family is a graph family name (GET /v1/families lists them).
	Family string `json:"family"`
	// N is the family's size parameter (nodes for cycle/path/..., side
	// length for grid/torus, depth for tree, dimension for hypercube).
	N int `json:"n"`
	// Trials is the Monte-Carlo trial count, bounded by the server's
	// MaxTrials limit.
	Trials int `json:"trials"`
}

// FaultSpec mirrors local.FaultPlan's CLI-exposed knobs in JSON.
type FaultSpec struct {
	// Seed seeds the dedicated fault tape (decoupled from the job seed).
	Seed uint64 `json:"seed,omitempty"`
	// Drop and Delay are per-message probabilities in [0, 1].
	Drop  float64 `json:"drop,omitempty"`
	Delay float64 `json:"delay,omitempty"`
	// Crash is the per-node per-round crash probability in [0, 1];
	// CrashFrom is the first round crashes may fire, CrashUntil the
	// recovery round (0: permanent).
	Crash      float64 `json:"crash,omitempty"`
	CrashFrom  int     `json:"crashFrom,omitempty"`
	CrashUntil int     `json:"crashUntil,omitempty"`
}

// plan converts the spec to the engine's fault plan; nil for a nil or
// all-zero spec, which runs bit-identically to fault-free.
func (f *FaultSpec) plan() *local.FaultPlan {
	if f == nil || (f.Drop == 0 && f.Delay == 0 && f.Crash == 0) {
		return nil
	}
	return &local.FaultPlan{
		Seed:       f.Seed,
		Drop:       f.Drop,
		Delay:      f.Delay,
		CrashP:     f.Crash,
		CrashFrom:  f.CrashFrom,
		CrashUntil: f.CrashUntil,
	}
}

// Limits bounds what a job may ask of the daemon. The zero value means
// "use defaults".
type Limits struct {
	// MaxTrials caps an algorithm job's trial count (default 100000).
	MaxTrials int
	// MaxNodes caps the built instance's node count (default 65536).
	MaxNodes int
	// MaxShards caps the requested shard count (default 64).
	MaxShards int
}

// withDefaults fills unset limits.
func (l Limits) withDefaults() Limits {
	if l.MaxTrials <= 0 {
		l.MaxTrials = 100000
	}
	if l.MaxNodes <= 0 {
		l.MaxNodes = 65536
	}
	if l.MaxShards <= 0 {
		l.MaxShards = 64
	}
	return l
}

// errJob marks a validation failure — the client's fault, reported as
// 422 — as opposed to an execution failure.
var errJob = errors.New("invalid job")

// jobErrorf builds a validation error.
func jobErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errJob, fmt.Sprintf(format, args...))
}

// normalize validates the spec against the experiment and algorithm
// registries and the limits, and rewrites it into its canonical form
// (default seed applied, experiment ID capitalization fixed, shards<2
// collapsed to 0, zero fault plans dropped). Two specs that normalize
// equal are the same run by definition; everything content addressing
// hashes is set here.
func (j *JobSpec) normalize(lim Limits) error {
	lim = lim.withDefaults()
	if (j.Experiment == "") == (j.Algorithm == nil) {
		return jobErrorf("exactly one of \"experiment\" and \"algorithm\" must be set")
	}
	if j.Seed == 0 {
		j.Seed = 1 // the CLI's -seed default
	}
	if j.Shards < 0 {
		return jobErrorf("shards %d must not be negative", j.Shards)
	}
	if j.Shards > lim.MaxShards {
		return jobErrorf("shards %d exceeds the limit %d", j.Shards, lim.MaxShards)
	}
	if j.Shards < 2 {
		j.Shards = 0 // 0 and 1 both mean "unsharded"; collapse for the hash
	}
	if f := j.Fault; f != nil {
		for name, p := range map[string]float64{"drop": f.Drop, "delay": f.Delay, "crash": f.Crash} {
			if p < 0 || p > 1 {
				return jobErrorf("fault.%s %v outside [0, 1]", name, p)
			}
		}
		if f.CrashFrom < 0 || f.CrashUntil < 0 {
			return jobErrorf("fault rounds must not be negative")
		}
		if f.Drop == 0 && f.Delay == 0 && f.Crash == 0 {
			j.Fault = nil // the zero plan is fault-free by contract
		}
	}
	if j.Experiment != "" {
		e, ok := exp.ByID(j.Experiment)
		if !ok {
			return jobErrorf("unknown experiment %q (GET /v1/experiments lists the suite)", j.Experiment)
		}
		j.Experiment = e.ID() // canonical capitalization
		return nil
	}
	a := j.Algorithm
	j.Quick = false // quick mode is an experiment knob
	if a.Key == "" {
		return jobErrorf("algorithm.key must be set")
	}
	if !slices.Contains(local.RegisteredRemoteAlgorithms(), a.Key) {
		return jobErrorf("unknown algorithm key %q (GET /v1/algorithms lists the registry)", a.Key)
	}
	if _, err := local.BuildRemoteAlgorithm(a.Key, a.Params); err != nil {
		return jobErrorf("algorithm params rejected: %v", err)
	}
	if !slices.Contains(graph.Families(), a.Family) {
		return jobErrorf("unknown graph family %q (GET /v1/families lists them)", a.Family)
	}
	if a.Trials < 1 {
		return jobErrorf("trials %d must be at least 1", a.Trials)
	}
	if a.Trials > lim.MaxTrials {
		return jobErrorf("trials %d exceeds the limit %d", a.Trials, lim.MaxTrials)
	}
	g, err := buildFamily(a.Family, a.N)
	if err != nil {
		return jobErrorf("%v", err)
	}
	if g.N() > lim.MaxNodes {
		return jobErrorf("%s n=%d builds %d nodes, exceeding the limit %d",
			a.Family, a.N, g.N(), lim.MaxNodes)
	}
	if j.Shards > g.N() {
		return jobErrorf("shards %d exceeds the %d-node instance", j.Shards, g.N())
	}
	return nil
}

// maxFamilyParam bounds the size parameter fed to a family generator
// before it runs: exponential families (tree depth, hypercube
// dimension) would overflow memory long before the node-count limit
// could reject them.
const maxFamilyParam = 1 << 20

// buildFamily builds the named family, converting generator panics
// (bad sizes) into errors so a hostile size parameter cannot take the
// daemon down.
func buildFamily(family string, n int) (g *graph.Graph, err error) {
	if n < 0 || n > maxFamilyParam {
		return nil, fmt.Errorf("family %s size %d outside [0, %d]", family, n, maxFamilyParam)
	}
	if family == "tree" || family == "hypercube" {
		// Node counts are exponential in the parameter; pre-bound so the
		// generator cannot allocate terabytes before the limit check.
		if n > 20 {
			return nil, fmt.Errorf("family %s size %d too deep (max 20)", family, n)
		}
	}
	if family == "grid" || family == "torus" {
		if n > 4096 {
			return nil, fmt.Errorf("family %s side %d too large (max 4096)", family, n)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("family %s rejects size %d: %v", family, n, r)
		}
	}()
	return graph.Family(family, n)
}

// canon renders the normalized spec's canonical encoding — the byte
// form the run ID hashes. Field enumeration is exhaustive by
// construction: every JobSpec field that can change a run's output has
// a line here, and nothing else does.
func (j *JobSpec) canon() *report.Canon {
	var c report.Canon
	c.PutUint("seed", j.Seed)
	c.PutInt("shards", int64(j.Shards))
	if j.Experiment != "" {
		c.PutString("kind", "experiment")
		c.PutString("experiment", j.Experiment)
		c.PutBool("quick", j.Quick)
	} else {
		c.PutString("kind", "algorithm")
		c.PutString("algorithm.key", j.Algorithm.Key)
		c.PutInts("algorithm.params", j.Algorithm.Params)
		c.PutString("family", j.Algorithm.Family)
		c.PutInt("n", int64(j.Algorithm.N))
		c.PutInt("trials", int64(j.Algorithm.Trials))
	}
	if f := j.Fault; f != nil {
		c.PutUint("fault.seed", f.Seed)
		c.PutFloat("fault.drop", f.Drop)
		c.PutFloat("fault.delay", f.Delay)
		c.PutFloat("fault.crash", f.Crash)
		c.PutInt("fault.crashFrom", int64(f.CrashFrom))
		c.PutInt("fault.crashUntil", int64(f.CrashUntil))
	}
	return &c
}

// ID returns the content-addressed run ID of a normalized spec.
func (j *JobSpec) ID() string { return j.canon().Hash() }

// Describe renders a one-line human summary for listings and logs.
func (j *JobSpec) Describe() string {
	var b strings.Builder
	if j.Experiment != "" {
		fmt.Fprintf(&b, "experiment %s", j.Experiment)
		if j.Quick {
			b.WriteString(" (quick)")
		}
	} else {
		fmt.Fprintf(&b, "algorithm %s%v on %s n=%d × %d trials",
			j.Algorithm.Key, j.Algorithm.Params, j.Algorithm.Family, j.Algorithm.N, j.Algorithm.Trials)
	}
	fmt.Fprintf(&b, " seed=%d", j.Seed)
	if j.Shards > 1 {
		fmt.Fprintf(&b, " shards=%d", j.Shards)
	}
	if j.Fault != nil {
		fmt.Fprintf(&b, " faulty(drop=%g,delay=%g,crash=%g)", j.Fault.Drop, j.Fault.Delay, j.Fault.Crash)
	}
	return b.String()
}
