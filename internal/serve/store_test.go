package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// doneMeta builds a storable metadata record for tests.
func doneMeta(id string) RunMeta {
	return RunMeta{
		ID:          id,
		Spec:        JobSpec{Experiment: "E2", Quick: true, Seed: 7},
		Status:      statusDone,
		ChecksPass:  true,
		SubmittedAt: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		FinishedAt:  time.Date(2026, 8, 8, 12, 0, 5, 0, time.UTC),
	}
}

// testID fabricates a distinct valid run ID per suffix.
func testID(suffix byte) string {
	return strings.Repeat("0", 31) + string(suffix)
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := testID('a')
	table := []byte("=== E2 — table\n")
	canon := []byte("rlnc-canon/1\nkind=experiment\n")
	if err := st.Put(doneMeta(id), canon, table); err != nil {
		t.Fatal(err)
	}
	meta, got, ok, err := st.Get(id)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(got) != string(table) {
		t.Fatalf("table round trip: got %q", got)
	}
	if meta.ID != id || meta.Status != statusDone || meta.TableBytes != len(table) {
		t.Fatalf("meta round trip: %+v", meta)
	}
	if meta.Cached {
		t.Fatal("Cached must never persist as true")
	}
	// A second Put of the same run (the shared-store rename race) is fine.
	if err := st.Put(doneMeta(id), canon, table); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
}

func TestStoreMissAndMalformedID(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := st.Get(testID('b')); err != nil || ok {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	for _, id := range []string{"", "short", strings.Repeat("Z", 32), "../../../../etc/passwd00000000000"[:32]} {
		if _, _, _, err := st.Get(id); err == nil {
			t.Fatalf("malformed id %q accepted", id)
		}
	}
}

func TestStoreRefusesUnfinishedRuns(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := doneMeta(testID('c'))
	meta.Status = statusRunning
	if err := st.Put(meta, nil, nil); err == nil {
		t.Fatal("stored a running run")
	}
}

func TestStoreDetectsTornTable(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := testID('d')
	if err := st.Put(doneMeta(id), nil, []byte("full table bytes")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.runDir(id), "table.txt"), []byte("trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Get(id); err == nil {
		t.Fatal("torn table read as a hit")
	}
}

func TestStoreList(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Stored out of finish order; List must sort oldest-finished first.
	late := doneMeta(testID('f'))
	late.FinishedAt = late.FinishedAt.Add(time.Hour)
	for _, m := range []RunMeta{late, doneMeta(testID('e'))} {
		if err := st.Put(m, nil, []byte("t")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != testID('e') || got[1].ID != testID('f') {
		t.Fatalf("List order: %+v", got)
	}
}
