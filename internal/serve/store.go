package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The run store is a content-addressed, flat-file archive of finished
// runs: one directory per run ID holding the normalized job, its
// canonical encoding, the rendered result table, and the run metadata.
// Flat files rather than a database on purpose — the store's unit of
// work is "write one immutable directory, rename it into place", which
// needs no daemon-side locking, survives crashes (a half-written run is
// a tmp directory that never got renamed, invisible to readers), and
// lets operators inspect or rsync the archive with ordinary tools. A
// run ID is the hash of the job's canonical configuration (see
// internal/report's Canon), so the store doubles as the cache: a
// resubmitted configuration resolves to an existing directory and is
// served without recompute.
//
// Layout under the store root:
//
//	<root>/v1/<id[:2]>/<id>/meta.json   run metadata (RunMeta)
//	<root>/v1/<id[:2]>/<id>/job.json    the normalized JobSpec
//	<root>/v1/<id[:2]>/<id>/canon.txt   canonical encoding the ID hashes
//	<root>/v1/<id[:2]>/<id>/table.txt   rendered result table, verbatim
//
// The two-hex-digit fan-out keeps directory listings shallow at millions
// of stored runs. Only successful runs are stored: failures may be
// transient (a dead worker fleet, a cancelled process) and must not
// poison the cache.

// storeVersion names the store layout; it appears as the first path
// segment so a future incompatible layout can live alongside this one.
const storeVersion = "v1"

// RunMeta is the stored metadata of one run — everything about the run
// except the table bytes themselves.
type RunMeta struct {
	// ID is the content-addressed run ID (the canonical-config hash).
	ID string `json:"id"`
	// Spec is the normalized job the ID addresses.
	Spec JobSpec `json:"spec"`
	// Status is "queued", "running", "done", or "error".
	Status string `json:"status"`
	// Error carries the failure message of an "error" run.
	Error string `json:"error,omitempty"`
	// ChecksPass reports whether every experiment check passed (always
	// true for algorithm jobs, which carry no checks).
	ChecksPass bool `json:"checksPass"`
	// SubmittedAt, StartedAt, and FinishedAt stamp the run's lifecycle
	// in UTC.
	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	FinishedAt  time.Time `json:"finishedAt,omitempty"`
	// TableBytes is the size of the stored table.
	TableBytes int `json:"tableBytes"`
	// Cached reports that this response was served from the run store
	// without recompute. Never persisted as true: it is set on the way
	// out when a stored run answers a fresh submission.
	Cached bool `json:"cached,omitempty"`
}

// Store is the flat-file run archive rooted at one directory. Methods
// are safe for concurrent use; cross-process safety comes from the
// write-tmp-then-rename protocol, not locks.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a run store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("serve: store directory must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, storeVersion), 0o755); err != nil {
		return nil, fmt.Errorf("serve: open store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// runDir maps a run ID to its directory.
func (s *Store) runDir(id string) string {
	return filepath.Join(s.root, storeVersion, id[:2], id)
}

// Get loads a stored run. The boolean reports whether the run exists; a
// directory with unreadable or torn contents returns an error rather
// than a miss, so corruption is surfaced instead of silently recomputed
// over.
func (s *Store) Get(id string) (meta RunMeta, table []byte, ok bool, err error) {
	if !validRunID(id) {
		return RunMeta{}, nil, false, fmt.Errorf("serve: malformed run id %q", id)
	}
	dir := s.runDir(id)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return RunMeta{}, nil, false, nil
	}
	if err != nil {
		return RunMeta{}, nil, false, fmt.Errorf("serve: store read %s: %w", id, err)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return RunMeta{}, nil, false, fmt.Errorf("serve: store meta %s corrupt: %w", id, err)
	}
	table, err = os.ReadFile(filepath.Join(dir, "table.txt"))
	if err != nil {
		return RunMeta{}, nil, false, fmt.Errorf("serve: store table %s: %w", id, err)
	}
	if meta.TableBytes != len(table) {
		return RunMeta{}, nil, false, fmt.Errorf("serve: store table %s torn: %d bytes, meta says %d",
			id, len(table), meta.TableBytes)
	}
	return meta, table, true, nil
}

// Put archives a finished run atomically: the directory is assembled
// under a tmp name and renamed into place, so readers never observe a
// partial run. Losing a rename race to an identical run (two daemons
// sharing a store) is not an error — content addressing makes the
// winner's bytes equal by construction.
func (s *Store) Put(meta RunMeta, canon, table []byte) error {
	if !validRunID(meta.ID) {
		return fmt.Errorf("serve: malformed run id %q", meta.ID)
	}
	if meta.Status != statusDone {
		return fmt.Errorf("serve: refusing to store run %s with status %q", meta.ID, meta.Status)
	}
	meta.Cached = false
	meta.TableBytes = len(table)
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal meta: %w", err)
	}
	jobBytes, err := json.MarshalIndent(meta.Spec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal job: %w", err)
	}
	final := s.runDir(meta.ID)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	tmp, err := os.MkdirTemp(filepath.Dir(final), "tmp-"+meta.ID+"-")
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for name, data := range map[string][]byte{
		"meta.json": metaBytes,
		"job.json":  jobBytes,
		"canon.txt": canon,
		"table.txt": table,
	} {
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			return fmt.Errorf("serve: store put %s: %w", name, err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		if _, _, ok, getErr := s.Get(meta.ID); getErr == nil && ok {
			return nil // lost the race to an identical run
		}
		return fmt.Errorf("serve: store put: %w", err)
	}
	return nil
}

// List returns the metadata of every stored run, sorted by finish time
// (oldest first). Torn or foreign directories are skipped, not fatal:
// one bad entry must not take down the listing.
func (s *Store) List() ([]RunMeta, error) {
	var out []RunMeta
	base := filepath.Join(s.root, storeVersion)
	fans, err := os.ReadDir(base)
	if err != nil {
		return nil, fmt.Errorf("serve: store list: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		runs, err := os.ReadDir(filepath.Join(base, fan.Name()))
		if err != nil {
			continue
		}
		for _, run := range runs {
			if !run.IsDir() || !validRunID(run.Name()) {
				continue
			}
			metaBytes, err := os.ReadFile(filepath.Join(base, fan.Name(), run.Name(), "meta.json"))
			if err != nil {
				continue
			}
			var meta RunMeta
			if json.Unmarshal(metaBytes, &meta) != nil || meta.ID != run.Name() {
				continue
			}
			out = append(out, meta)
		}
	}
	// Oldest-finished first, ID as the deterministic tiebreak.
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FinishedAt.Equal(out[j].FinishedAt) {
			return out[i].FinishedAt.Before(out[j].FinishedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// validRunID reports whether id has the exact shape Canon.Hash emits:
// 32 lowercase hex digits. Everything touching the filesystem goes
// through this gate, so a request path can never become a directory
// traversal.
func validRunID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
