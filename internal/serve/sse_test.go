package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sseEvent is one parsed wire frame.
type sseEvent struct {
	id   int
	typ  string
	data string
}

// readSSE consumes an SSE stream until it ends (the server closes a
// finished run's stream) and returns the frames.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(line[4:])
		case strings.HasPrefix(line, "event: "):
			cur.typ = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSSEStreamOrdering(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, t.TempDir(), countingRunner(&calls))
	_, body := postJob(t, ts, `{"experiment":"E2"}`)
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}

	events := readSSE(t, ts.URL+"/v1/runs/"+meta.ID+"/events")
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Sequence numbers are gapless and ascending from 1.
	for i, ev := range events {
		if ev.id != i+1 {
			t.Fatalf("event %d has seq %d: %+v", i, ev.id, events)
		}
		if !json.Valid([]byte(ev.data)) {
			t.Fatalf("event %d data is not JSON: %q", i, ev.data)
		}
	}
	// The lifecycle reads queued → started → sweep → chunks* → done.
	types := make([]string, len(events))
	for i, ev := range events {
		types[i] = ev.typ
	}
	want := []string{"queued", "started", "sweep", "chunks", "chunks", "done"}
	if strings.Join(types, " ") != strings.Join(want, " ") {
		t.Fatalf("event order %v, want %v", types, want)
	}
	var doneData struct {
		Cached     bool `json:"cached"`
		ChecksPass bool `json:"checksPass"`
		TableBytes int  `json:"tableBytes"`
	}
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &doneData); err != nil {
		t.Fatal(err)
	}
	if doneData.Cached || !doneData.ChecksPass || doneData.TableBytes == 0 {
		t.Fatalf("done payload: %+v", doneData)
	}

	// A reconnect with Last-Event-ID replays only the tail.
	req, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+meta.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tail []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			tail = append(tail, sc.Text()[7:])
		}
	}
	if strings.Join(tail, " ") != "chunks done" {
		t.Fatalf("resumed tail %v", tail)
	}
}

func TestSSECachedRunReplaysTerminalLog(t *testing.T) {
	var calls atomic.Int64
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, countingRunner(&calls))
	_, body := postJob(t, ts, `{"experiment":"E2"}`)
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	awaitDone(t, ts, meta.ID)

	// Fresh daemon over the same store: submitting again is a cache hit
	// whose event stream is the synthesized [cached, done] log.
	_, ts2 := newTestServer(t, dir, countingRunner(&calls))
	resp, body2 := postJob(t, ts2, `{"experiment":"E2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit: %d %s", resp.StatusCode, body2)
	}
	events := readSSE(t, ts2.URL+"/v1/runs/"+meta.ID+"/events")
	types := make([]string, len(events))
	for i, ev := range events {
		types[i] = ev.typ
	}
	if strings.Join(types, " ") != "cached done" {
		t.Fatalf("cached stream %v", types)
	}
	var doneData struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal([]byte(events[1].data), &doneData); err != nil {
		t.Fatal(err)
	}
	if !doneData.Cached {
		t.Fatal("cached done event not flagged cached")
	}
}

func TestEventLogBackpressureAndReplayCap(t *testing.T) {
	l := newEventLog()
	// Overfill past the cap; the replay window must slide, seqs stay
	// global.
	total := eventLogCap + 100
	for i := 0; i < total; i++ {
		l.emit("chunks", i)
	}
	replay, ch, cancel := l.subscribe(0)
	defer cancel()
	if ch == nil {
		t.Fatal("open log returned no channel")
	}
	if len(replay) != eventLogCap {
		t.Fatalf("replay length %d, want %d", len(replay), eventLogCap)
	}
	if first := replay[0].Seq; first != total-eventLogCap+1 {
		t.Fatalf("window starts at seq %d", first)
	}
	if last := replay[len(replay)-1].Seq; last != total {
		t.Fatalf("window ends at seq %d, want %d", last, total)
	}
	l.close()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after close")
	}
	// Subscribing to a closed log yields replay only.
	replay2, ch2, _ := l.subscribe(total - 1)
	if ch2 != nil || len(replay2) != 1 || replay2[0].Seq != total {
		t.Fatalf("closed-log subscribe: ch=%v replay=%+v", ch2, replay2)
	}
}
