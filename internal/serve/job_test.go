package serve

import (
	"strings"
	"testing"
)

// validAlgoJob is a baseline algorithm job every mutation test starts
// from.
func validAlgoJob() JobSpec {
	return JobSpec{
		Algorithm: &AlgoSpec{Key: "luby-mis", Family: "cycle", N: 16, Trials: 10},
		Seed:      3,
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"both kinds", func(j *JobSpec) { j.Experiment = "E2" }, "exactly one"},
		{"neither kind", func(j *JobSpec) { j.Algorithm = nil }, "exactly one"},
		{"unknown algorithm", func(j *JobSpec) { j.Algorithm.Key = "nope" }, "unknown algorithm"},
		{"unknown family", func(j *JobSpec) { j.Algorithm.Family = "moebius" }, "unknown graph family"},
		{"zero trials", func(j *JobSpec) { j.Algorithm.Trials = 0 }, "trials"},
		{"oversized trials", func(j *JobSpec) { j.Algorithm.Trials = 1 << 30 }, "exceeds the limit"},
		{"negative shards", func(j *JobSpec) { j.Shards = -1 }, "negative"},
		{"oversized shards", func(j *JobSpec) { j.Shards = 1000 }, "exceeds the limit"},
		{"bad graph size", func(j *JobSpec) { j.Algorithm.N = 1 }, "rejects size"},
		{"huge graph", func(j *JobSpec) { j.Algorithm.N = 1 << 19 }, "exceeding the limit"},
		{"hypercube blowup", func(j *JobSpec) { j.Algorithm.Family = "hypercube"; j.Algorithm.N = 64 }, "too deep"},
		{"bad drop rate", func(j *JobSpec) { j.Fault = &FaultSpec{Drop: 1.5} }, "outside [0, 1]"},
		{"negative crash round", func(j *JobSpec) { j.Fault = &FaultSpec{Crash: 0.1, CrashFrom: -1} }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := validAlgoJob()
			tc.mut(&j)
			err := j.normalize(Limits{})
			if err == nil {
				t.Fatalf("accepted: %+v", j)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	t.Run("unknown experiment", func(t *testing.T) {
		j := JobSpec{Experiment: "E99"}
		if err := j.normalize(Limits{}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestNormalizeCanonicalizes(t *testing.T) {
	// Case-insensitive experiment IDs, defaulted seeds, collapsed shard
	// counts, and dropped zero fault plans must all converge on one ID.
	a := JobSpec{Experiment: "e2", Quick: true}
	b := JobSpec{Experiment: "E2", Quick: true, Seed: 1, Shards: 1, Fault: &FaultSpec{}}
	for _, j := range []*JobSpec{&a, &b} {
		if err := j.normalize(Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Experiment != "E2" {
		t.Fatalf("capitalization not canonicalized: %q", a.Experiment)
	}
	if a.ID() != b.ID() {
		t.Fatalf("equivalent specs hash apart:\n%s\n%s", a.canon().Encode(), b.canon().Encode())
	}
	if !validRunID(a.ID()) {
		t.Fatalf("ID %q is not store-shaped", a.ID())
	}
}

func TestIDSensitivity(t *testing.T) {
	base := func() JobSpec { return validAlgoJob() }
	j := base()
	if err := j.normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	want := j.ID()
	muts := []func(*JobSpec){
		func(j *JobSpec) { j.Seed = 4 },
		func(j *JobSpec) { j.Shards = 2 },
		func(j *JobSpec) { j.Algorithm.Key = "retry-coloring"; j.Algorithm.Params = []int64{3, 4} },
		func(j *JobSpec) { j.Algorithm.Family = "path" },
		func(j *JobSpec) { j.Algorithm.N = 17 },
		func(j *JobSpec) { j.Algorithm.Trials = 11 },
		func(j *JobSpec) { j.Fault = &FaultSpec{Drop: 0.1} },
	}
	for i, mut := range muts {
		m := base()
		mut(&m)
		if err := m.normalize(Limits{}); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if m.ID() == want {
			t.Fatalf("mutation %d did not change the run ID", i)
		}
	}
	// And experiment vs algorithm jobs can never collide on "kind".
	e := JobSpec{Experiment: "E2"}
	if err := e.normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	if e.ID() == want {
		t.Fatal("experiment and algorithm jobs hashed together")
	}
}
