package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Event is one entry in a run's progress log, streamed to clients as a
// Server-Sent Event. Seq is a per-run sequence number starting at 1;
// clients reconnecting with Last-Event-ID replay from the log, so no
// event is lost across a dropped connection (the log is capped — see
// eventLogCap — and very chatty runs replay a trailing window).
type Event struct {
	// Seq is the event's position in the run's log, starting at 1.
	Seq int `json:"seq"`
	// Type names the event: "queued", "started", "sweep", "chunks",
	// "cached", "done", or "error".
	Type string `json:"type"`
	// Data is the event payload, already JSON-encoded.
	Data json.RawMessage `json:"data"`
}

// eventLogCap bounds a run's replay buffer. Progress events beyond the
// cap drop the oldest entries; terminal events are always retained
// because they are appended last.
const eventLogCap = 4096

// eventLog is one run's append-only progress log plus its live
// subscribers. Emit appends and fans out; subscribe returns the replay
// slice and a channel carrying everything after it. Closing the log
// (terminal event reached) closes all subscriber channels once they
// have drained.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	first  int // Seq of events[0]; > 1 once the cap has trimmed
	nextID int
	subs   map[chan Event]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{nextID: 1, first: 1, subs: make(map[chan Event]struct{})}
}

// emit appends an event with the given type and payload (marshalled to
// JSON) and delivers it to every subscriber. Safe for concurrent use;
// a no-op after close.
func (l *eventLog) emit(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf("%q", err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := Event{Seq: l.nextID, Type: typ, Data: data}
	l.nextID++
	l.events = append(l.events, ev)
	if len(l.events) > eventLogCap {
		drop := len(l.events) - eventLogCap
		l.events = l.events[drop:]
		l.first += drop
	}
	for ch := range l.subs {
		// Subscriber channels are buffered to the log cap; a subscriber
		// that cannot keep up loses its slot rather than stalling the run.
		select {
		case ch <- ev:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// close marks the log terminal and closes every subscriber channel.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = nil
}

// subscribe returns every event already logged after the given sequence
// number (0 replays everything retained) and, unless the log is already
// closed, a channel delivering subsequent events. The channel closes
// when the run reaches a terminal event or the subscriber falls too far
// behind; cancel unsubscribes early.
func (l *eventLog) subscribe(after int) (replay []Event, ch chan Event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := after + 1 - l.first
	if start < 0 {
		start = 0
	}
	if start < len(l.events) {
		replay = append(replay, l.events[start:]...)
	}
	if l.closed {
		return replay, nil, func() {}
	}
	ch = make(chan Event, eventLogCap)
	l.subs[ch] = struct{}{}
	cancel = func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
	return replay, ch, cancel
}

// writeSSE streams a run's event log to one client in Server-Sent
// Events framing until the log closes or the client disconnects. The
// Last-Event-ID header (or lastEventID query parameter) resumes after
// the given sequence number.
func writeSSE(w http.ResponseWriter, r *http.Request, log *eventLog, after int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := log.subscribe(after)
	defer cancel()
	for _, ev := range replay {
		writeEvent(w, ev)
	}
	fl.Flush()
	if ch == nil {
		return // log already terminal; replay was the whole story
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeEvent(w, ev)
			// Drain whatever else is ready before flushing, so a burst of
			// chunk events costs one flush, not one per event.
		drain:
			for {
				select {
				case more, ok := <-ch:
					if !ok {
						fl.Flush()
						return
					}
					writeEvent(w, more)
				default:
					break drain
				}
			}
			fl.Flush()
		}
	}
}

// writeEvent renders one event in SSE wire framing.
func writeEvent(w http.ResponseWriter, ev Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
}
