package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer builds a Server over a fresh store with an injected
// runner and returns it with its HTTP front end.
func newTestServer(t *testing.T, dir string, runner func(spec JobSpec, progress func(done, total int)) ([]byte, bool, error)) (*Server, *httptest.Server) {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Options{Store: st, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// countingRunner returns a runner that counts invocations and emits a
// tiny deterministic table with one sweep of two chunks.
func countingRunner(calls *atomic.Int64) func(spec JobSpec, progress func(done, total int)) ([]byte, bool, error) {
	return func(spec JobSpec, progress func(done, total int)) ([]byte, bool, error) {
		calls.Add(1)
		progress(0, 2)
		progress(1, 2)
		progress(2, 2)
		return []byte("table for " + spec.Describe() + "\n"), true, nil
	}
}

// postJob submits a body and returns the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// awaitDone polls a run until it leaves the queue and the worker
// finishes it.
func awaitDone(t *testing.T, ts *httptest.Server, id string) RunMeta {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var meta RunMeta
		err = json.NewDecoder(resp.Body).Decode(&meta)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if meta.Status == statusDone || meta.Status == statusError {
			return meta
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", id)
	return RunMeta{}
}

func TestSubmitValidation(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, t.TempDir(), countingRunner(&calls))
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{"experiment": `, http.StatusBadRequest},
		{"unknown field", `{"experiment":"E2","bogus":1}`, http.StatusBadRequest},
		{"unknown experiment", `{"experiment":"E99"}`, http.StatusUnprocessableEntity},
		{"unknown algorithm key", `{"algorithm":{"key":"nope","family":"cycle","n":8,"trials":5}}`, http.StatusUnprocessableEntity},
		{"oversized trials", `{"algorithm":{"key":"luby-mis","family":"cycle","n":8,"trials":99999999}}`, http.StatusUnprocessableEntity},
		{"both kinds", `{"experiment":"E2","algorithm":{"key":"luby-mis","family":"cycle","n":8,"trials":5}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJob(t, ts, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.code, body)
			}
			if !bytes.Contains(body, []byte("error")) {
				t.Fatalf("no error body: %s", body)
			}
		})
	}
	if calls.Load() != 0 {
		t.Fatalf("rejected jobs reached the runner %d times", calls.Load())
	}
}

func TestSubmitExecuteAndCacheHit(t *testing.T) {
	var calls atomic.Int64
	dir := t.TempDir()
	srv, ts := newTestServer(t, dir, countingRunner(&calls))

	resp, body := postJob(t, ts, `{"experiment":"E2","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Status != statusQueued || meta.Cached {
		t.Fatalf("first submit meta: %+v", meta)
	}
	done := awaitDone(t, ts, meta.ID)
	if done.Status != statusDone || !done.ChecksPass {
		t.Fatalf("run did not succeed: %+v", done)
	}
	tableResp, err := http.Get(ts.URL + "/v1/runs/" + meta.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	table1, _ := io.ReadAll(tableResp.Body)
	tableResp.Body.Close()
	if tableResp.StatusCode != http.StatusOK || len(table1) == 0 {
		t.Fatalf("table fetch: %d %q", tableResp.StatusCode, table1)
	}

	// The differential the whole design rides on: resubmitting the same
	// job (different JSON spelling included) is a 200 cache hit with
	// byte-identical table bytes and ZERO further runner invocations.
	resp2, body2 := postJob(t, ts, `{"seed":7,"quick":true,"experiment":"e2"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
	var meta2 RunMeta
	if err := json.Unmarshal(body2, &meta2); err != nil {
		t.Fatal(err)
	}
	if meta2.ID != meta.ID {
		t.Fatalf("resubmission got a different ID: %s vs %s", meta2.ID, meta.ID)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner invoked %d times, want exactly 1", calls.Load())
	}
	if srv.Executed() != 1 || srv.CacheHits() != 0 {
		// Still live in this daemon: answered from the live map, which is
		// dedup, not a store hit.
		t.Fatalf("counters after live dedup: executed=%d cacheHits=%d", srv.Executed(), srv.CacheHits())
	}

	// Across a daemon restart the live map is gone and only the store
	// answers — the true cache-hit path, with Cached reported.
	srv2, ts2 := newTestServer(t, dir, func(spec JobSpec, progress func(int, int)) ([]byte, bool, error) {
		t.Error("cache hit reached the runner")
		return nil, false, fmt.Errorf("must not run")
	})
	resp3, body3 := postJob(t, ts2, `{"experiment":"E2","quick":true,"seed":7}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("restart resubmit: %d %s", resp3.StatusCode, body3)
	}
	var meta3 RunMeta
	if err := json.Unmarshal(body3, &meta3); err != nil {
		t.Fatal(err)
	}
	if !meta3.Cached || meta3.ID != meta.ID {
		t.Fatalf("restart resubmit meta: %+v", meta3)
	}
	if srv2.CacheHits() != 1 || srv2.Executed() != 0 {
		t.Fatalf("counters after store hit: executed=%d cacheHits=%d", srv2.Executed(), srv2.CacheHits())
	}
	table2Resp, err := http.Get(ts2.URL + "/v1/runs/" + meta.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	table2, _ := io.ReadAll(table2Resp.Body)
	table2Resp.Body.Close()
	if !bytes.Equal(table1, table2) {
		t.Fatalf("cached table differs:\n%q\n%q", table1, table2)
	}
}

func TestRunError(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), func(spec JobSpec, progress func(int, int)) ([]byte, bool, error) {
		return nil, false, fmt.Errorf("synthetic failure")
	})
	resp, body := postJob(t, ts, `{"experiment":"E2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	done := awaitDone(t, ts, meta.ID)
	if done.Status != statusError || !strings.Contains(done.Error, "synthetic failure") {
		t.Fatalf("error run meta: %+v", done)
	}
	// Failed runs must not poison the cache: no table, and a
	// resubmission after restart would re-execute (the store holds
	// nothing).
	tresp, err := http.Get(ts.URL + "/v1/runs/" + meta.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusConflict {
		t.Fatalf("table of failed run: %d", tresp.StatusCode)
	}
}

func TestRegistryEndpoints(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, t.TempDir(), countingRunner(&calls))
	for path, want := range map[string]string{
		"/v1/experiments": `"E2"`,
		"/v1/algorithms":  `"luby-mis"`,
		"/v1/families":    `"cycle"`,
		"/v1/healthz":     `"ok"`,
		"/v1/stats":       `"executed"`,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(want)) {
			t.Fatalf("%s: %d %s (want %s)", path, resp.StatusCode, body, want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("a", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d", resp.StatusCode)
	}
}

func TestListMergesLiveAndStored(t *testing.T) {
	var calls atomic.Int64
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, countingRunner(&calls))
	_, body := postJob(t, ts, `{"experiment":"E2"}`)
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	awaitDone(t, ts, meta.ID)
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct{ Runs []RunMeta }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]int)
	for _, m := range list.Runs {
		ids[m.ID]++
	}
	if ids[meta.ID] != 1 {
		t.Fatalf("run listed %d times: %+v", ids[meta.ID], list.Runs)
	}
}
