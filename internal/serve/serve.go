// Package serve is the experiment control plane: a long-lived HTTP+JSON
// daemon (`rlnc serve`) that accepts experiment and algorithm jobs,
// validates them against the experiment and algorithm registries,
// executes them on the repository's Monte-Carlo machinery, and archives
// every finished table in a content-addressed run store.
//
// The design premise is the repository's determinism contract: a run's
// output is a pure function of its normalized configuration (algorithm,
// graph family, parameters, trial count, seed, fault plan). The daemon
// therefore names each run by the hash of that configuration's canonical
// encoding — resubmitting the same job, whatever the JSON spelling,
// resolves to the same run ID and is answered from the store without
// recomputing anything. `GET /v1/runs/{id}/events` streams each run's
// progress (queued → started → per-sweep trial-chunk counts → done) as
// Server-Sent Events.
//
// Endpoints (all under /v1; see docs/OPERATIONS.md for curl examples):
//
//	POST /v1/runs            submit a job (202 queued, 200 cached)
//	GET  /v1/runs            list runs, live and stored
//	GET  /v1/runs/{id}        one run's metadata
//	GET  /v1/runs/{id}/table  the rendered result table, verbatim bytes
//	GET  /v1/runs/{id}/events SSE progress stream
//	GET  /v1/experiments      the experiment registry (E1–E17)
//	GET  /v1/algorithms       the remote-algorithm registry
//	GET  /v1/families         the graph-family registry
//	GET  /v1/stats            executed/cache-hit counters
//	GET  /v1/healthz          liveness probe
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlnc/internal/exp"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

// Run lifecycle states, as reported in RunMeta.Status.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusError   = "error"
)

// Options configures a Server. Store is required; everything else
// defaults sensibly.
type Options struct {
	// Store is the content-addressed run archive. Required.
	Store *Store
	// Limits bounds submitted jobs; zero fields take the documented
	// defaults.
	Limits Limits
	// MaxQueue caps the number of accepted-but-unexecuted runs; further
	// submissions get 503 until the queue drains. Default 64.
	MaxQueue int
	// NewSharded, when set, builds the sharded executors experiment and
	// algorithm trial loops use — this is how `rlnc serve -control` puts
	// a multi-host worker fleet behind the HTTP API (the same provider
	// `rlnc run -transport` injects).
	NewSharded func(plan *local.Plan, width, shards int) (*local.Sharded, error)
	// Runner, when set, replaces the default job runner. Tests inject a
	// counting runner here to pin the cache-hit contract (a repeated
	// submission must reach the runner zero times).
	Runner func(spec JobSpec, progress func(done, total int)) (table []byte, checksPass bool, err error)
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
}

// run is one live (queued, running, or recently finished) run.
type run struct {
	mu    sync.Mutex
	meta  RunMeta
	table []byte
	log   *eventLog
}

// snapshot returns a copy of the run's metadata.
func (r *run) snapshot() RunMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meta
}

// Server is the control-plane daemon: an http.Handler serving the /v1
// API plus one background worker executing queued runs in submission
// order. Runs execute one at a time — parallelism lives inside a run
// (the Monte-Carlo worker pool), not across runs, so concurrent
// submissions cannot perturb each other's float accumulation order.
type Server struct {
	opts  Options
	store *Store
	mux   *http.ServeMux

	mu   sync.Mutex
	live map[string]*run

	queue chan *run

	executed  atomic.Int64
	cacheHits atomic.Int64

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewServer builds a Server over the given store and starts its worker.
// Call Close to stop the worker; the handler itself has no shutdown of
// its own (wrap it in an http.Server for that).
func NewServer(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("serve: Options.Store is required")
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	s := &Server{
		opts:   opts,
		store:  opts.Store,
		live:   make(map[string]*run),
		queue:  make(chan *run, opts.MaxQueue),
		closed: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/table", s.handleTable)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/families", s.handleFamilies)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker. A run in flight finishes first; queued runs
// stay queued (the process is going away anyway, and nothing was
// promised beyond "accepted").
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
}

// Executed returns how many runs the worker has actually executed (as
// opposed to answered from the store). The serve-e2e CI job asserts
// this stays at one across a resubmission.
func (s *Server) Executed() int64 { return s.executed.Load() }

// CacheHits returns how many submissions were answered from the run
// store without recompute.
func (s *Server) CacheHits() int64 { return s.cacheHits.Load() }

// writeJSON renders v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds a submission body; a job spec is a few hundred
// bytes, so a megabyte is generous.
const maxBodyBytes = 1 << 20

// handleSubmit is POST /v1/runs: validate, content-address, dedup
// against live runs and the store, and queue what remains.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job: %v", err)
		return
	}
	if err := spec.normalize(s.opts.Limits); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	id := spec.ID()

	s.mu.Lock()
	if rn, ok := s.live[id]; ok {
		s.mu.Unlock()
		meta := rn.snapshot()
		status := http.StatusAccepted
		if meta.Status == statusDone || meta.Status == statusError {
			status = http.StatusOK
		}
		writeJSON(w, status, meta)
		return
	}
	s.mu.Unlock()

	// Not live: a stored run answers without recompute — the cache hit
	// content addressing promises.
	if meta, table, ok, err := s.store.Get(id); err != nil {
		writeError(w, http.StatusInternalServerError, "run store: %v", err)
		return
	} else if ok {
		s.cacheHits.Add(1)
		meta.Cached = true
		s.registerCached(meta, table)
		writeJSON(w, http.StatusOK, meta)
		return
	}

	rn := &run{
		meta: RunMeta{
			ID:          id,
			Spec:        spec,
			Status:      statusQueued,
			SubmittedAt: s.opts.now().UTC(),
		},
		log: newEventLog(),
	}
	// Logged before the queue send: the worker may start the run the
	// instant it is enqueued, and "started" must not precede "queued".
	rn.log.emit("queued", map[string]any{"id": id, "job": spec.Describe()})
	s.mu.Lock()
	if prior, ok := s.live[id]; ok {
		// Lost a submit race to an identical spec; answer with the winner.
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, prior.snapshot())
		return
	}
	select {
	case s.queue <- rn:
		s.live[id] = rn
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "run queue full (%d pending)", s.opts.MaxQueue)
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, rn.snapshot())
}

// registerCached installs a store-answered run in the live map so its
// table and a synthetic event stream ([cached, done]) are immediately
// servable, mirroring a freshly executed run's endpoints.
func (s *Server) registerCached(meta RunMeta, table []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.live[meta.ID]; ok {
		return
	}
	rn := &run{meta: meta, table: table, log: newEventLog()}
	rn.log.emit("cached", map[string]any{"id": meta.ID, "job": meta.Spec.Describe()})
	rn.log.emit("done", doneEvent(meta))
	rn.log.close()
	s.live[meta.ID] = rn
}

// doneEvent is the terminal-event payload of a successful run.
func doneEvent(meta RunMeta) map[string]any {
	return map[string]any{
		"id":         meta.ID,
		"tableBytes": meta.TableBytes,
		"checksPass": meta.ChecksPass,
		"cached":     meta.Cached,
	}
}

// lookup finds a run by ID, live runs shadowing stored ones.
func (s *Server) lookup(id string) (meta RunMeta, table []byte, lg *eventLog, ok bool, err error) {
	if !validRunID(id) {
		return RunMeta{}, nil, nil, false, fmt.Errorf("malformed run id %q", id)
	}
	s.mu.Lock()
	rn, live := s.live[id]
	s.mu.Unlock()
	if live {
		rn.mu.Lock()
		defer rn.mu.Unlock()
		return rn.meta, rn.table, rn.log, true, nil
	}
	meta, table, ok, err = s.store.Get(id)
	return meta, table, nil, ok, err
}

// handleList is GET /v1/runs: stored runs plus live ones, live entries
// shadowing their stored counterparts.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stored, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "run store: %v", err)
		return
	}
	s.mu.Lock()
	liveMetas := make([]RunMeta, 0, len(s.live))
	seen := make(map[string]bool, len(s.live))
	for id, rn := range s.live {
		liveMetas = append(liveMetas, rn.snapshot())
		seen[id] = true
	}
	s.mu.Unlock()
	out := make([]RunMeta, 0, len(stored)+len(liveMetas))
	for _, m := range stored {
		if !seen[m.ID] {
			out = append(out, m)
		}
	}
	out = append(out, liveMetas...)
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// handleGet is GET /v1/runs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, _, _, ok, err := s.lookup(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleTable is GET /v1/runs/{id}/table: the stored table bytes,
// verbatim — these diff clean against the committed CLI goldens, which
// is what the serve-e2e CI job pins.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, table, _, ok, err := s.lookup(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	if meta.Status != statusDone {
		writeError(w, http.StatusConflict, "run %s is %s, not done", id, meta.Status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(table) //nolint:errcheck // nothing to do about a gone client
}

// handleEvents is GET /v1/runs/{id}/events: the run's SSE progress
// stream. Live runs stream until their terminal event; finished and
// stored runs replay their log (or a synthesized terminal event) and
// end. Last-Event-ID (or ?lastEventID=) resumes a dropped stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, _, lg, ok, err := s.lookup(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no run %s", id)
		return
	}
	if lg == nil {
		// A stored run from a previous daemon lifetime: synthesize its
		// terminal log so clients see the same framing either way.
		lg = newEventLog()
		lg.emit("done", doneEvent(meta))
		lg.close()
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v)
	} else if v := r.URL.Query().Get("lastEventID"); v != "" {
		after, _ = strconv.Atoi(v)
	}
	writeSSE(w, r, lg, after)
}

// handleExperiments is GET /v1/experiments.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		PaperRef string `json:"paperRef"`
	}
	var out []entry
	for _, e := range report.All() {
		out = append(out, entry{ID: e.ID(), Title: e.Title(), PaperRef: e.PaperRef()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// handleAlgorithms is GET /v1/algorithms.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": local.RegisteredRemoteAlgorithms()})
}

// handleFamilies is GET /v1/families.
func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"families": graph.Families()})
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	live := len(s.live)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"executed":  s.executed.Load(),
		"cacheHits": s.cacheHits.Load(),
		"queued":    len(s.queue),
		"live":      live,
	})
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// worker drains the run queue, one run at a time.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case rn := <-s.queue:
			s.execute(rn)
		}
	}
}

// execute runs one queued job to its terminal state: progress events
// stream while it runs, and a successful table lands in the store
// before the done event fires, so a client that saw "done" can always
// fetch the table.
func (s *Server) execute(rn *run) {
	s.executed.Add(1)
	rn.mu.Lock()
	rn.meta.Status = statusRunning
	rn.meta.StartedAt = s.opts.now().UTC()
	spec := rn.meta.Spec
	rn.mu.Unlock()
	rn.log.emit("started", map[string]any{"id": rn.meta.ID, "job": spec.Describe()})

	// Sweeps run sequentially inside an experiment, so the sweep counter
	// only moves on the (0, total) calls; chunk completions within a
	// sweep arrive concurrently and share the counter's current value.
	var pmu sync.Mutex
	sweep := 0
	progress := func(done, total int) {
		pmu.Lock()
		defer pmu.Unlock()
		if done == 0 {
			sweep++
			rn.log.emit("sweep", map[string]any{"sweep": sweep, "chunks": total})
			return
		}
		rn.log.emit("chunks", map[string]any{"sweep": sweep, "done": done, "total": total})
	}

	runner := s.opts.Runner
	if runner == nil {
		runner = s.runJob
	}
	table, checksPass, err := runner(spec, progress)

	rn.mu.Lock()
	rn.meta.FinishedAt = s.opts.now().UTC()
	if err != nil {
		rn.meta.Status = statusError
		rn.meta.Error = err.Error()
		meta := rn.meta
		rn.mu.Unlock()
		s.opts.Logf("run %s failed: %v", meta.ID, err)
		rn.log.emit("error", map[string]any{"id": meta.ID, "error": err.Error()})
		rn.log.close()
		return
	}
	rn.meta.Status = statusDone
	rn.meta.ChecksPass = checksPass
	rn.meta.TableBytes = len(table)
	rn.table = table
	meta := rn.meta
	rn.mu.Unlock()

	if err := s.store.Put(meta, []byte(spec.canon().Encode()), table); err != nil {
		// The run still completed; the archive just missed it. Serve from
		// memory and say so rather than failing a finished run.
		s.opts.Logf("run %s finished but could not be stored: %v", meta.ID, err)
	}
	s.opts.Logf("run %s done: %s (%d table bytes, checks pass: %v)",
		meta.ID, spec.Describe(), len(table), checksPass)
	rn.log.emit("done", doneEvent(meta))
	rn.log.close()
}

// runJob is the default runner: experiments go through the registry's
// Config plumbing, algorithm jobs through a Monte-Carlo trial sweep
// built right here. A panic anywhere below (a trial chunk failing
// permanently re-raises its panic) becomes the run's error, not the
// daemon's.
func (s *Server) runJob(spec JobSpec, progress func(done, total int)) (table []byte, checksPass bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			table, checksPass, err = nil, false, fmt.Errorf("run panicked: %v", r)
		}
	}()
	if spec.Experiment != "" {
		e, ok := exp.ByID(spec.Experiment)
		if !ok {
			return nil, false, fmt.Errorf("unknown experiment %q", spec.Experiment)
		}
		res, err := e.Run(report.Config{
			Quick:      spec.Quick,
			Seed:       spec.Seed,
			Shards:     spec.Shards,
			Fault:      spec.Fault.plan(),
			NewSharded: s.opts.NewSharded,
			Progress:   progress,
		})
		if err != nil {
			return nil, false, err
		}
		return report.RunText(e, res), res.AllChecksPass(), nil
	}
	return s.runAlgorithm(spec, progress)
}

// algoState is one Monte-Carlo worker's execution scratch for an
// algorithm job: a single-lane engine, or a sharded executor when the
// job asked for shards. It satisfies the executor's fault-setter and
// closer hooks, so fault plans arm and transports release exactly as in
// the experiment trial loops.
type algoState struct {
	eng  *local.Engine
	sh   *local.Sharded
	algo local.MessageAlgorithm
	draw [1]localrand.Draw
}

// SetFault arms the fault plan on the worker's executor.
func (a *algoState) SetFault(f *local.FaultPlan) {
	if a.sh != nil {
		a.sh.SetFault(f)
		return
	}
	a.eng.SetFault(f)
}

// Close releases the worker's sharded executor, if any.
func (a *algoState) Close() error {
	if a.sh != nil {
		return a.sh.Close()
	}
	return nil
}

// run executes one trial.
func (a *algoState) run(in *lang.Instance, draw localrand.Draw, opts local.RunOptions) (*local.Result, error) {
	if a.sh != nil {
		a.draw[0] = draw
		rs, err := a.sh.Run(in, a.algo, a.draw[:1], opts)
		if err != nil {
			return nil, err
		}
		return rs[0], nil
	}
	return a.eng.Run(in, a.algo, &draw, opts)
}

// runAlgorithm executes an algorithm job: Trials independent runs of
// the keyed algorithm on the family graph, per-trial randomness drawn
// from the job seed by trial index, aggregated into mean ± stderr
// rounds and messages. Per-trial values land in trial-indexed slices
// and fold in trial order, so the rendered digits are a fixed function
// of the spec — the same determinism contract the experiment tables
// have.
func (s *Server) runAlgorithm(spec JobSpec, progress func(done, total int)) ([]byte, bool, error) {
	a := spec.Algorithm
	g, err := buildFamily(a.Family, a.N)
	if err != nil {
		return nil, false, err
	}
	plan, err := local.NewPlan(g)
	if err != nil {
		return nil, false, err
	}
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), ids.Consecutive(g.N()))
	if err != nil {
		return nil, false, err
	}
	shards := spec.Shards
	if shards > g.N() {
		shards = g.N()
	}
	provider := s.opts.NewSharded
	if provider == nil {
		provider = func(plan *local.Plan, width, shards int) (*local.Sharded, error) {
			return plan.NewSharded(width, shards)
		}
	}
	newState := func() *algoState {
		algo, err := local.BuildRemoteAlgorithm(a.Key, a.Params)
		if err != nil {
			mc.Fail(err) // validated at intake; only a registry change mid-flight gets here
		}
		st := &algoState{algo: algo}
		if shards > 1 {
			if sh, err := provider(plan, 1, shards); err == nil {
				st.sh = sh
				return st
			}
			// Provider refused (a busy worker pool): degrade to the local
			// engine, which the sharding contract keeps byte-identical.
		}
		st.eng = plan.NewEngine()
		return st
	}

	space := localrand.NewTapeSpace(spec.Seed)
	rounds := make([]float64, a.Trials)
	msgs := make([]float64, a.Trials)
	x := mc.Executor[*algoState]{
		Trials:   a.Trials,
		Shards:   shards,
		Fault:    spec.Fault.plan(),
		NewState: newState,
		Progress: progress,
	}
	x.Mean(mc.ScalarMean(func(st *algoState, trial int) float64 {
		res, err := st.run(in, space.Draw(uint64(trial)), local.RunOptions{})
		if err != nil {
			mc.Fail(err)
		}
		rounds[trial] = float64(res.Stats.Rounds)
		msgs[trial] = float64(res.Stats.Messages)
		return rounds[trial]
	}))
	rMean, rSE := meanStderr(rounds)
	mMean, mSE := meanStderr(msgs)

	res := &report.Result{}
	t := res.NewTable(
		fmt.Sprintf("algorithm %s%v on %s n=%d", a.Key, a.Params, a.Family, a.N),
		"metric", "mean", "stderr", "trials")
	t.AddRow("rounds", fmt.Sprintf("%.4f", rMean), fmt.Sprintf("%.4f", rSE), a.Trials)
	t.AddRow("messages", fmt.Sprintf("%.1f", mMean), fmt.Sprintf("%.1f", mSE), a.Trials)
	t.AddNote("seed %d; %d nodes; randomness drawn per trial index", spec.Seed, g.N())
	if spec.Fault != nil {
		t.AddNote("faults armed: drop=%g delay=%g crash=%g", spec.Fault.Drop, spec.Fault.Delay, spec.Fault.Crash)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "=== algorithm %s — %s n=%d, %d trials, seed %d\n\n",
		a.Key, a.Family, a.N, a.Trials, spec.Seed)
	res.Render(&b)
	b.WriteByte('\n')
	return []byte(b.String()), true, nil
}

// meanStderr folds per-trial values in index order into the sample mean
// and standard error (mirroring the Monte-Carlo package's fold, so the
// two metrics of an algorithm table agree digit-for-digit with what a
// one-metric sweep would print).
func meanStderr(vals []float64) (mean, stderr float64) {
	n := len(vals)
	if n == 0 {
		return 0, 0
	}
	var sum, sq float64
	for _, v := range vals {
		sum += v
		sq += v * v
	}
	mean = sum / float64(n)
	if n > 1 {
		variance := (sq - sum*sum/float64(n)) / float64(n-1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / float64(n))
	}
	return mean, stderr
}
