package localrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds in 64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(9)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := NewSource(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d too far from expectation %v", v, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := NewSource(13)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestDrawReproducible(t *testing.T) {
	ts := NewTapeSpace(100)
	d := ts.Draw(5)
	t1 := d.Tape(77)
	t2 := d.Tape(77)
	for i := 0; i < 50; i++ {
		if t1.Uint64() != t2.Uint64() {
			t.Fatalf("same (draw, node) tapes diverged at step %d", i)
		}
	}
}

func TestDrawsIndependent(t *testing.T) {
	ts := NewTapeSpace(100)
	a := ts.Draw(1).Tape(77)
	b := ts.Draw(2).Tape(77)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between draws in 64 steps", same)
	}
}

func TestNodesIndependent(t *testing.T) {
	d := NewTapeSpace(3).Draw(0)
	a := d.Tape(1)
	b := d.Tape(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between node tapes in 64 steps", same)
	}
}

func TestFixSigmaSemantics(t *testing.T) {
	// The Claim 4 conditioning: fixing σ of one space while varying draws
	// of another must replay σ's bits exactly.
	cSpace := NewTapeSpace(1)
	dSpace := NewTapeSpace(2)
	sigma := cSpace.Draw(123)
	ref := sigma.Tape(5).Uint64()
	for i := uint64(0); i < 10; i++ {
		_ = dSpace.Draw(i).Tape(5).Uint64() // unrelated draws
		if got := sigma.Tape(5).Uint64(); got != ref {
			t.Fatalf("fixed σ changed after decider draw %d", i)
		}
	}
}

func TestDeriveChangesStream(t *testing.T) {
	d := NewTapeSpace(9).Draw(0)
	a := d.Tape(1).Uint64()
	b := d.Derive(1).Tape(1).Uint64()
	if a == b {
		t.Error("Derive(1) did not change the stream")
	}
	if d.Derive(2).Tape(1).Uint64() == b {
		t.Error("Derive(1) and Derive(2) collide")
	}
}

// Property: tapes are pure functions of (space seed, draw index, node id).
func TestTapePurityProperty(t *testing.T) {
	f := func(seed, draw uint64, node int64) bool {
		if node < 0 {
			node = -node
		}
		x := NewTapeSpace(seed).Draw(draw).Tape(node).Uint64()
		y := NewTapeSpace(seed).Draw(draw).Tape(node).Uint64()
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTapeIntoMatchesTape(t *testing.T) {
	d := NewTapeSpace(21).Draw(4)
	var slab Tape
	for _, id := range []int64{1, 7, 1 << 40} {
		d.TapeInto(&slab, id)
		fresh := d.Tape(id)
		for i := 0; i < 8; i++ {
			if got, want := slab.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("id %d word %d: TapeInto stream %x, Tape stream %x", id, i, got, want)
			}
		}
	}
	// Reseeding mid-stream must rewind to the start of the new tape.
	d.TapeInto(&slab, 7)
	if slab.Uint64() != d.Tape(7).Uint64() {
		t.Error("TapeInto after partial consumption did not rewind")
	}
}

func TestTapeVecIntoMatchesTapeInto(t *testing.T) {
	d := NewTapeSpace(33).Draw(9)
	ids := []int64{1, 7, 42, 1 << 40}
	row := make([]Tape, len(ids))
	// Consume a little first: the vectorized reseed must rewind lanes.
	for i := range row {
		row[i].Uint64()
	}
	d.TapeVecInto(row, ids)
	for i, id := range ids {
		var want Tape
		d.TapeInto(&want, id)
		for w := 0; w < 4; w++ {
			if got, exp := row[i].Uint64(), want.Uint64(); got != exp {
				t.Fatalf("lane %d (id %d) word %d: TapeVecInto stream %x, TapeInto stream %x", i, id, w, got, exp)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TapeVecInto with mismatched lengths did not panic")
		}
	}()
	d.TapeVecInto(row[:2], ids)
}

// TestDrawSeedRoundTrip pins the wire form of a draw: DrawFromSeed(σ.Seed())
// reproduces σ's per-node tapes bit for bit — what lets a shard-worker
// process reconstruct the orchestrator's randomness exactly.
func TestDrawSeedRoundTrip(t *testing.T) {
	space := NewTapeSpace(17)
	for idx := uint64(0); idx < 8; idx++ {
		want := space.Draw(idx)
		got := DrawFromSeed(want.Seed())
		for _, id := range []int64{0, 1, 7, 1 << 40} {
			a, b := want.Tape(id), got.Tape(id)
			for w := 0; w < 8; w++ {
				if x, y := a.Uint64(), b.Uint64(); x != y {
					t.Fatalf("draw %d id %d word %d: %x vs %x after seed round-trip", idx, id, w, x, y)
				}
			}
		}
	}
}
