// Package localrand provides the deterministic, splittable randomness used
// to model randomized Monte-Carlo algorithms in the LOCAL model.
//
// In the paper (§2.1.2 and §3), a randomized algorithm gives every node a
// private source of independent random bits; the collection of all nodes'
// bit strings, indexed by node identity, forms one element of the space
// Rand(A) of random strings of algorithm A. The proofs of Claims 4 and 5
// condition on a *fixed* string σ ∈ Rand(C) of the construction algorithm
// while integrating over Rand(D) of the decider.
//
// This package makes that conditioning executable: a TapeSpace is a seeded,
// reproducible model of Rand(A); drawing element σ yields per-node Tapes
// addressed by node identity. Fixing σ and resampling an independent space
// is just reusing one seed while varying the other.
package localrand

import "math"

const (
	splitmixGamma = 0x9e3779b97f4a7c15
	mixA          = 0xbf58476d1ce4e5b9
	mixB          = 0x94d049bb133111eb
)

// mix64 is the SplitMix64 finalizer: a bijective mixer with good avalanche
// behaviour, sufficient for simulation-grade pseudo-randomness.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixA
	z = (z ^ (z >> 27)) * mixB
	return z ^ (z >> 31)
}

// Source is a deterministic stream of pseudo-random values.
type Source struct {
	state uint64
}

// NewSource returns a source seeded with the given value.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Clone returns an independent copy of the source at its current
// position. Cloning a pristine (never-consumed) tape and replaying the
// clone models shipping a node's random bit string to another node, which
// §2.1.2 explicitly allows ("these random bits may well be exchanged
// between nodes during the execution").
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += splitmixGamma
	return mix64(s.state)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("localrand: Intn with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias; the loop terminates quickly
	// because the acceptance probability is at least 1/2.
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Bool returns a fair pseudo-random bit.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Tape is the private random bit string of a single node, as in §2.1.2:
// "every node has access to a private source of independent random bits".
// A Tape is just a Source whose seed is derived from (space seed, draw
// index, node identity), so the same (σ, node) pair always replays the
// same bits.
type Tape = Source

// TapeSpace models Rand(A) for one algorithm: the probability space of the
// collections of per-node random strings. Distinct algorithms should use
// distinct space seeds so their randomness is independent.
type TapeSpace struct {
	seed uint64
}

// NewTapeSpace returns the tape space identified by seed.
func NewTapeSpace(seed uint64) *TapeSpace {
	return &TapeSpace{seed: seed}
}

// Draw identifies one element σ ∈ Rand(A) by index. Draws with different
// indices are independent streams; the same index always denotes the same
// σ, which is what lets experiments fix σ ∈ Rand(C) (Claim 4) and vary
// only the decider's randomness.
func (ts *TapeSpace) Draw(index uint64) Draw {
	return Draw{seed: mix64(ts.seed ^ mix64(index+1))}
}

// Draw is one fixed element σ of a tape space: a deterministic function
// from node identity to that node's private bit string.
type Draw struct {
	seed uint64
}

// Tape returns the private tape of the node with the given identity under
// this draw. Calling it twice returns identical, independently-positioned
// streams.
func (d Draw) Tape(nodeID int64) *Tape {
	return NewSource(d.tapeSeed(nodeID))
}

// TapeInto rewinds t in place to the start of nodeID's tape under this
// draw — the allocation-free form of Tape used by pooled engines, which
// hold one Tape per node and reseed the slab on every trial. After the
// call, t replays exactly the stream Tape(nodeID) would return.
func (d Draw) TapeInto(t *Tape, nodeID int64) {
	t.state = d.tapeSeed(nodeID)
}

// TapeVecInto rewinds ts[i] to the start of ids[i]'s tape under this draw
// for every i — the batched form of TapeInto. A batched engine holds one
// tape row per trial lane and reseeds the whole row in a single pass
// before the lane starts, so the per-node seeding cost is a tight loop
// over the identity column instead of a closure call per node. It panics
// if the slices disagree in length.
func (d Draw) TapeVecInto(ts []Tape, ids []int64) {
	if len(ts) != len(ids) {
		panic("localrand: TapeVecInto tape row and identity column lengths differ")
	}
	for i, id := range ids {
		ts[i].state = d.tapeSeed(id)
	}
}

// tapeSeed derives the per-node seed of this draw.
func (d Draw) tapeSeed(nodeID int64) uint64 {
	return mix64(d.seed ^ mix64(uint64(nodeID)+0x5bf0_3635))
}

// FaultTape is the dedicated randomness of a fault plan: a positionally
// addressed pseudo-random function over event coordinates, rather than a
// sequentially consumed stream. Fault decisions (drop this delivery?
// crash this node?) are keyed by where and when they happen — (channel,
// round, slot, lane identity) — so the same seed reproduces the same
// faults regardless of iteration order, batch width, shard count, or
// process boundary: the property that keeps faulty runs byte-identical
// across every execution shape. It is deliberately separate from
// TapeSpace: fault randomness must not perturb the algorithms' Rand(A)
// draws, so conditioning experiments keep their meaning under faults.
type FaultTape struct {
	seed uint64
}

// NewFaultTape returns the fault tape identified by seed.
func NewFaultTape(seed uint64) FaultTape {
	return FaultTape{seed: mix64(seed ^ 0x7f4a_7c15_9e37_79b9)}
}

// Word returns the pseudo-random word at coordinates (channel, a, b, c):
// a chained SplitMix64 walk, so permuting or offsetting coordinates
// yields independent words (no xor-style commutative collisions).
func (t FaultTape) Word(channel, a, b, c uint64) uint64 {
	h := mix64(t.seed + splitmixGamma*(channel+1))
	h = mix64(h + splitmixGamma*(a+1))
	h = mix64(h + splitmixGamma*(b+1))
	return mix64(h + splitmixGamma*(c+1))
}

// Bernoulli reports a probability-p event at the given coordinates,
// using the same uniform mapping as Source.Float64.
func (t FaultTape) Bernoulli(p float64, channel, a, b, c uint64) bool {
	if p <= 0 {
		return false
	}
	return float64(t.Word(channel, a, b, c)>>11)/(1<<53) < p
}

// Derive returns a sub-draw labeled by the given tag, for algorithms that
// need several independent per-node streams (e.g. one per round).
func (d Draw) Derive(tag uint64) Draw {
	return Draw{seed: mix64(d.seed + splitmixGamma*(tag+1))}
}

// Seed returns the draw's identifying word. Together with DrawFromSeed
// it is the wire form of a draw: a shard-worker process handed the seed
// reconstructs σ exactly, so every node's tape is bit-identical on both
// sides of the process boundary.
func (d Draw) Seed() uint64 { return d.seed }

// DrawFromSeed reconstructs the draw identified by seed (see Draw.Seed).
func DrawFromSeed(seed uint64) Draw { return Draw{seed: seed} }
