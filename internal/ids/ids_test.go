package ids

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestConsecutive(t *testing.T) {
	a := Consecutive(5)
	if a.Len() != 5 {
		t.Fatalf("len = %d, want 5", a.Len())
	}
	for i, id := range a {
		if id != int64(i+1) {
			t.Errorf("a[%d] = %d, want %d", i, id, i+1)
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestConsecutiveFrom(t *testing.T) {
	a := ConsecutiveFrom(3, 100)
	want := Assignment{100, 101, 102}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	a := Assignment{1, 0, 3}
	if err := a.Validate(); !errors.Is(err, ErrNonPositive) {
		t.Errorf("Validate() = %v, want ErrNonPositive", err)
	}
	a = Assignment{1, -5, 3}
	if err := a.Validate(); !errors.Is(err, ErrNonPositive) {
		t.Errorf("Validate() = %v, want ErrNonPositive", err)
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	a := Assignment{1, 2, 2}
	if err := a.Validate(); !errors.Is(err, ErrDuplicate) {
		t.Errorf("Validate() = %v, want ErrDuplicate", err)
	}
}

func TestMinMax(t *testing.T) {
	a := Assignment{7, 3, 9, 4}
	if a.Min() != 3 || a.Max() != 9 {
		t.Errorf("Min/Max = %d/%d, want 3/9", a.Min(), a.Max())
	}
	var empty Assignment
	if empty.Min() != 0 || empty.Max() != 0 {
		t.Errorf("empty Min/Max = %d/%d, want 0/0", empty.Min(), empty.Max())
	}
}

func TestSpaced(t *testing.T) {
	a := Spaced(4, 10, 5)
	want := Assignment{10, 15, 20, 25}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestRandomPermIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		a := RandomPerm(n, 42)
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if a.Min() != 1 || a.Max() != int64(n) {
			t.Errorf("n=%d: range [%d,%d], want [1,%d]", n, a.Min(), a.Max(), n)
		}
	}
}

func TestRandomPermDeterministic(t *testing.T) {
	a := RandomPerm(50, 7)
	b := RandomPerm(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different permutations at %d", i)
		}
	}
	c := RandomPerm(50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutations")
	}
}

func TestRandomFromUniverse(t *testing.T) {
	a, err := RandomFromUniverse(20, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Max() > 1000 {
		t.Errorf("id %d exceeds universe", a.Max())
	}
	if _, err := RandomFromUniverse(10, 5, 3); err == nil {
		t.Error("expected error for universe < n")
	}
}

func TestRank(t *testing.T) {
	a := Assignment{30, 10, 20}
	r := a.Rank()
	want := []int{2, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, r[i], want[i])
		}
	}
}

func TestOrderPattern(t *testing.T) {
	p, err := OrderPattern([]int64{5, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("pattern[%d] = %d, want %d", i, p[i], want[i])
		}
	}
	if _, err := OrderPattern([]int64{1, 1}); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestSameOrder(t *testing.T) {
	if !SameOrder([]int64{5, 1, 9}, []int64{50, 10, 90}) {
		t.Error("order-equivalent lists reported different")
	}
	if SameOrder([]int64{5, 1, 9}, []int64{1, 5, 9}) {
		t.Error("different orders reported same")
	}
	if SameOrder([]int64{1, 2}, []int64{1, 2, 3}) {
		t.Error("different lengths reported same")
	}
}

func TestRemapPreservingOrder(t *testing.T) {
	a := Assignment{30, 10, 20}
	out, err := a.RemapPreservingOrder([]int64{100, 200, 300, 400})
	if err != nil {
		t.Fatal(err)
	}
	// Order must be preserved: positions 1 < 2 < 0.
	if !(out[1] < out[2] && out[2] < out[0]) {
		t.Errorf("order not preserved: %v", out)
	}
	// And it must use the 3 smallest pool values.
	if out[1] != 100 || out[2] != 200 || out[0] != 300 {
		t.Errorf("did not use smallest pool values: %v", out)
	}
	if _, err := a.RemapPreservingOrder([]int64{1, 2}); err == nil {
		t.Error("expected pool-too-small error")
	}
}

func TestConcatDisjointAndOrderPreserving(t *testing.T) {
	a := Assignment{3, 1, 2}
	b := Assignment{2, 5}
	out := Concat(a, b)
	if err := out.Validate(); err != nil {
		t.Fatalf("Concat produced invalid assignment: %v (%v)", err, out)
	}
	if out.Len() != 5 {
		t.Fatalf("len = %d, want 5", out.Len())
	}
	// Block 2 identities must all exceed block 1's maximum.
	blockAMax := out[:3].Max()
	for _, id := range out[3:] {
		if id <= blockAMax {
			t.Errorf("block 2 id %d not above block 1 max %d", id, blockAMax)
		}
	}
	// Relative order within each block preserved.
	if !SameOrder([]int64(out[:3]), []int64(a)) {
		t.Errorf("block 1 order changed: %v vs %v", out[:3], a)
	}
	if !SameOrder([]int64(out[3:]), []int64(b)) {
		t.Errorf("block 2 order changed: %v vs %v", out[3:], b)
	}
}

// Property: RandomPerm is always a valid assignment and Rank is always a
// permutation of 0..n-1.
func TestRankIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		a := RandomPerm(n, seed)
		r := a.Rank()
		seen := make([]bool, n)
		for _, x := range r {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: order-preserving remap never changes the order pattern.
func TestRemapPreservesPatternProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		a := RandomPerm(n, seed)
		pool := make([]int64, n)
		for i := range pool {
			pool[i] = int64(1000 + i*7)
		}
		out, err := a.RemapPreservingOrder(pool)
		if err != nil {
			return false
		}
		return SameOrder([]int64(a), []int64(out))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
