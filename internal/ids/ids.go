// Package ids provides identity assignments for the LOCAL model.
//
// In the LOCAL model every node v of a network carries an identity id(v),
// a positive integer, and identities within one network are pairwise
// distinct (paper §2.1.1). The behaviour of algorithms may depend on the
// actual identity values or, for order-invariant algorithms, only on their
// relative order. This package provides assignment generators, order
// patterns (ranks), order-preserving remappings, and the disjoint-range
// concatenation used by the gluing constructions of Theorem 1.
package ids

import (
	"errors"
	"fmt"
	"sort"
)

// Assignment maps node indices 0..n-1 to identities. Identities are
// positive and pairwise distinct; Validate reports violations.
type Assignment []int64

// Errors returned by Validate.
var (
	ErrNonPositive = errors.New("ids: identity must be positive")
	ErrDuplicate   = errors.New("ids: identities must be pairwise distinct")
)

// Validate checks that the assignment is a legal LOCAL-model identity
// assignment: every identity is positive and no two nodes share one.
func (a Assignment) Validate() error {
	seen := make(map[int64]int, len(a))
	for v, id := range a {
		if id <= 0 {
			return fmt.Errorf("%w: node %d has id %d", ErrNonPositive, v, id)
		}
		if u, ok := seen[id]; ok {
			return fmt.Errorf("%w: nodes %d and %d share id %d", ErrDuplicate, u, v, id)
		}
		seen[id] = v
	}
	return nil
}

// Len returns the number of nodes covered by the assignment.
func (a Assignment) Len() int { return len(a) }

// Max returns the largest identity in the assignment, or 0 if empty.
func (a Assignment) Max() int64 {
	var m int64
	for _, id := range a {
		if id > m {
			m = id
		}
	}
	return m
}

// Min returns the smallest identity in the assignment, or 0 if empty.
func (a Assignment) Min() int64 {
	if len(a) == 0 {
		return 0
	}
	m := a[0]
	for _, id := range a[1:] {
		if id < m {
			m = id
		}
	}
	return m
}

// Clone returns an independent copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Consecutive assigns identities 1..n in node order. This is the hard
// assignment of the paper's Section 4 argument: on the cycle with
// consecutive identities, all interior balls carry the same order pattern.
func Consecutive(n int) Assignment {
	return ConsecutiveFrom(n, 1)
}

// ConsecutiveFrom assigns identities start..start+n-1 in node order.
func ConsecutiveFrom(n int, start int64) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = start + int64(i)
	}
	return a
}

// Spaced assigns identities start, start+gap, start+2*gap, ... allowing
// later insertions between existing identities. gap must be >= 1.
func Spaced(n int, start, gap int64) Assignment {
	if gap < 1 {
		gap = 1
	}
	a := make(Assignment, n)
	for i := range a {
		a[i] = start + int64(i)*gap
	}
	return a
}

// rng is a small splitmix64 generator local to this package so that
// assignment generation does not depend on localrand (keeping the
// dependency graph acyclic).
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// RandomPerm assigns a uniformly random permutation of 1..n, derived
// deterministically from seed.
func RandomPerm(n int, seed uint64) Assignment {
	a := Consecutive(n)
	r := rng(seed)
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		a[i], a[j] = a[j], a[i]
	}
	return a
}

// RandomFromUniverse assigns n distinct identities drawn uniformly without
// replacement from [1, universe]. universe must be >= n.
func RandomFromUniverse(n int, universe int64, seed uint64) (Assignment, error) {
	if universe < int64(n) {
		return nil, fmt.Errorf("ids: universe %d smaller than n %d", universe, n)
	}
	r := rng(seed)
	seen := make(map[int64]bool, n)
	a := make(Assignment, 0, n)
	for len(a) < n {
		id := int64(r.next()%uint64(universe)) + 1
		if !seen[id] {
			seen[id] = true
			a = append(a, id)
		}
	}
	return a, nil
}

// FromSlice builds an assignment from explicit identities.
func FromSlice(ids []int64) Assignment {
	return Assignment(ids).Clone()
}

// Rank returns, for each node, the rank of its identity among all
// identities in the assignment (0 = smallest). The rank vector is exactly
// the information available to an order-invariant algorithm that sees the
// whole assignment.
func (a Assignment) Rank() []int {
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return a[idx[i]] < a[idx[j]] })
	ranks := make([]int, len(a))
	for r, v := range idx {
		ranks[v] = r
	}
	return ranks
}

// OrderPattern computes the rank vector of an arbitrary identity list.
// Identities must be distinct; equal identities would make the pattern
// ill-defined, so duplicates cause an error.
func OrderPattern(ids []int64) ([]int, error) {
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("%w: id %d", ErrDuplicate, id)
		}
		seen[id] = true
	}
	return Assignment(ids).Rank(), nil
}

// SameOrder reports whether two identity lists induce the same ordering of
// their positions, i.e. whether an order-invariant algorithm is guaranteed
// to behave identically on them (paper §2.1.1, order-invariance).
func SameOrder(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	pa, errA := OrderPattern(a)
	pb, errB := OrderPattern(b)
	if errA != nil || errB != nil {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// RemapPreservingOrder returns a new assignment using the n smallest values
// of pool, assigned so the relative order of identities is preserved.
// This is the substitution step of the order-invariant simulation A′ in
// Appendix A: relabel the ball with the smallest identities of the Ramsey
// set U, respecting the original order. pool must contain at least Len()
// distinct positive values.
func (a Assignment) RemapPreservingOrder(pool []int64) (Assignment, error) {
	if len(pool) < len(a) {
		return nil, fmt.Errorf("ids: pool size %d < n %d", len(pool), len(a))
	}
	sortedPool := append([]int64(nil), pool...)
	sort.Slice(sortedPool, func(i, j int) bool { return sortedPool[i] < sortedPool[j] })
	sortedPool = sortedPool[:len(a)]
	if err := Assignment(sortedPool).Validate(); err != nil {
		return nil, err
	}
	ranks := a.Rank()
	out := make(Assignment, len(a))
	for v, r := range ranks {
		out[v] = sortedPool[r]
	}
	return out, nil
}

// Concat concatenates assignments for a disjoint union of graphs,
// offsetting each block so that identity ranges do not overlap and each
// block's identities stay in the same relative order. This realizes the
// "identities at least I_min" sequencing in the proof of Claim 3: block
// i+1 starts above the maximum identity of blocks 1..i.
func Concat(parts ...Assignment) Assignment {
	var out Assignment
	var offset int64
	for _, p := range parts {
		base := offset + 1 - p.Min()
		if p.Len() == 0 {
			continue
		}
		for _, id := range p {
			out = append(out, id+base)
		}
		if m := out.Max(); m > offset {
			offset = m
		}
	}
	return out
}
