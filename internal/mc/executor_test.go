package mc

import (
	"math"
	"testing"

	"rlnc/internal/local"
)

// trialPredicate is the reference Bernoulli body of the executor tests:
// success iff the trial index hashes to an even word.
func trialPredicate(trial int) bool {
	x := uint64(trial)*0x9e3779b97f4a7c15 + 1
	x ^= x >> 33
	return x&1 == 0
}

// TestExecutorMatchesLegacy pins the unification: the Executor verbs and
// every deprecated wrapper compute bit-identical estimates for the same
// per-trial bodies, across scalar, batched, and sharded configurations.
func TestExecutorMatchesLegacy(t *testing.T) {
	const trials = 1000
	want := Run(trials, trialPredicate)
	got := Executor[struct{}]{Trials: trials}.
		Run(Scalar(func(_ struct{}, trial int) bool { return trialPredicate(trial) }))
	if want != got {
		t.Errorf("scalar: executor %+v, legacy %+v", got, want)
	}

	batched := Executor[struct{}]{Trials: trials, Batch: 7}.
		Run(func(_ struct{}, lo, hi int, out []bool) {
			for i := lo; i < hi; i++ {
				out[i-lo] = trialPredicate(i)
			}
		})
	if want != batched {
		t.Errorf("batched: executor %+v, legacy %+v", batched, want)
	}

	sharded := Executor[struct{}]{Trials: trials, Batch: 7, Shards: 2}.
		Run(func(_ struct{}, lo, hi int, out []bool) {
			for i := lo; i < hi; i++ {
				out[i-lo] = trialPredicate(i)
			}
		})
	if want != sharded {
		t.Errorf("sharded pool: executor %+v, legacy %+v", sharded, want)
	}

	obs := func(trial int) float64 { return float64(trial%17) / 17 }
	wm, ws := Mean(trials, obs)
	gm, gs := Executor[struct{}]{Trials: trials}.
		Mean(ScalarMean(func(_ struct{}, trial int) float64 { return obs(trial) }))
	if wm != gm || ws != gs {
		t.Errorf("mean: executor (%v, %v), legacy (%v, %v)", gm, gs, wm, ws)
	}
	if math.IsNaN(gm) {
		t.Error("mean is NaN")
	}
}

// faultRecorder is a worker state that records the armed plan.
type faultRecorder struct{ got *local.FaultPlan }

func (r *faultRecorder) SetFault(f *local.FaultPlan) { r.got = f }

// TestExecutorArmsFault checks the fault axis: a non-nil Executor.Fault
// is installed on every worker state exposing SetFault, and states
// without the method are silently left alone.
func TestExecutorArmsFault(t *testing.T) {
	fp := &local.FaultPlan{Seed: 9, Drop: 0.1}
	est := Executor[*faultRecorder]{
		Trials:   4,
		Fault:    fp,
		NewState: func() *faultRecorder { return &faultRecorder{} },
	}.Run(Scalar(func(s *faultRecorder, _ int) bool {
		return s.got == fp
	}))
	if est.Successes != est.Trials {
		t.Errorf("fault armed on %d/%d trials' states", est.Successes, est.Trials)
	}

	// A state without SetFault runs unperturbed.
	plain := Executor[int]{Trials: 2, Fault: fp}.
		Run(Scalar(func(int, int) bool { return true }))
	if plain.Successes != 2 {
		t.Errorf("stateless run under fault option: %+v", plain)
	}
}
