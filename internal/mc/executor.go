package mc

import (
	"runtime"

	"rlnc/internal/local"
)

// Executor is the package's one Monte-Carlo execution surface: every
// knob that used to pick a different entry point — per-worker state,
// trial vectorization, shard-group pool sizing, and now fault injection —
// is a field, and the verbs are methods: Run estimates a Bernoulli
// probability, Mean a real-valued observable. The legacy free functions
// (Run/RunWith/RunBatched/RunSharded and the Mean quartet) are thin
// deprecated wrappers over this struct and remain bit-identical to it.
//
// The zero value runs scalar trials with no state on a GOMAXPROCS pool:
//
//	est := mc.Executor[struct{}]{Trials: 10000}.Run(mc.Scalar(func(_ struct{}, trial int) bool {
//		return trialSucceeds(trial)
//	}))
//
// Trials must derive all randomness from the trial index, so estimates
// are reproducible and independent of scheduling, chunking, and pool
// size.
type Executor[S any] struct {
	// Trials is the number of independent trials.
	Trials int
	// Batch is the trial-vector width handed to the body: each call
	// receives a contiguous chunk of at most Batch trial indices. Values
	// below 1 mean scalar execution (chunks of one). The intended state
	// for Batch > 1 is a reusable *local.Batch of the same width.
	Batch int
	// Shards, when positive, sizes the worker pool for shard-group
	// execution: GOMAXPROCS/Shards groups (at least one) instead of
	// GOMAXPROCS scalar workers, because each sharded trial vector
	// already runs on Shards goroutines. Zero selects the scalar pool.
	Shards int
	// Fault, when non-nil, is armed as the default fault plan of every
	// worker state that exposes SetFault(*local.FaultPlan) — Engine,
	// Batch, and Sharded all do — so a whole trial sweep runs under one
	// fault model without threading RunOptions through every call site.
	// States without SetFault ignore it.
	Fault *local.FaultPlan
	// NewState is called once per worker; its value is passed to every
	// trial body that worker executes. The intended state is reusable
	// execution scratch (*local.Engine, *local.Batch, *local.Sharded).
	// nil yields the zero S. States implementing io.Closer are closed
	// when their worker retires.
	NewState func() S
	// Progress, when non-nil, observes the sweep's trial-chunk schedule:
	// it is called once with (0, total) before the first chunk runs —
	// total being the sweep's chunk count — and once per completed chunk
	// with the cumulative completed count. Failed attempts report nothing
	// (their requeued rerun does, on success). Calls after the first may
	// arrive concurrently from worker goroutines, so the callback must be
	// safe for concurrent use; it must not panic. This is the hook the
	// serve layer's per-run SSE progress events ride on.
	Progress func(done, total int)
}

// faultSetter is what a worker state must expose for Executor.Fault to
// arm it; local.Engine, local.Batch, and local.Sharded all qualify.
type faultSetter interface {
	SetFault(*local.FaultPlan)
}

// pool returns the worker-pool size the executor schedules on.
func (e Executor[S]) pool() int {
	if e.Shards > 0 {
		return shardGroups(e.Shards)
	}
	return runtime.GOMAXPROCS(0)
}

// batch returns the effective trial-vector width.
func (e Executor[S]) batch() int {
	if e.Batch < 1 {
		return 1
	}
	return e.Batch
}

// stateFn resolves the per-worker state constructor, arming the fault
// plan on states that accept one.
func (e Executor[S]) stateFn() func() S {
	ns := e.NewState
	if ns == nil {
		ns = func() S { var zero S; return zero }
	}
	if e.Fault == nil {
		return ns
	}
	fault := e.Fault
	return func() S {
		s := ns()
		if fs, ok := any(s).(faultSetter); ok {
			fs.SetFault(fault)
		}
		return s
	}
}

// Run executes the executor's trials of a Bernoulli body and returns the
// estimate. The body receives a contiguous trial chunk [lo, hi) of at
// most Batch indices and fills out (out[i] reports trial lo+i); wrap a
// per-trial predicate with Scalar when no vectorization is wanted.
//
// Chunks are scheduled by the work-stealing queue (steal.go): workers
// pull chunks off a shared dequeue, so a slow worker just processes
// fewer of them, and a chunk whose body fails (Fail, or any panic) is
// retried on a freshly built state before the failure is considered
// permanent. Estimates stay bit-identical to the legacy static split.
func (e Executor[S]) Run(f func(s S, lo, hi int, out []bool)) Estimate {
	return runSteal(e.Trials, e.batch(), e.pool(), e.stateFn(), e.Progress, f)
}

// Mean executes the executor's trials of a real-valued body and returns
// the sample mean and standard error. Chunking and failure handling
// follow Run's work-stealing schedule; per-trial values are merged in
// trial order, so the float accumulation order — hence every rendered
// digit — is a fixed function of the trial count, independent of pool
// size and scheduling. Wrap a per-trial observable with ScalarMean when
// no vectorization is wanted.
func (e Executor[S]) Mean(f func(s S, lo, hi int, out []float64)) (mean, stderr float64) {
	return meanSteal(e.Trials, e.batch(), e.pool(), e.stateFn(), e.Progress, f)
}

// Scalar adapts a per-trial predicate to Run's vector body.
func Scalar[S any](f func(s S, trial int) bool) func(s S, lo, hi int, out []bool) {
	return func(s S, lo, hi int, out []bool) {
		for i := lo; i < hi; i++ {
			out[i-lo] = f(s, i)
		}
	}
}

// ScalarMean adapts a per-trial observable to Mean's vector body.
func ScalarMean[S any](f func(s S, trial int) float64) func(s S, lo, hi int, out []float64) {
	return func(s S, lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i-lo] = f(s, i)
		}
	}
}
