package mc

import (
	"sync"
	"sync/atomic"
)

// This file is the work-stealing trial scheduler: the execution core of
// Executor.Run and Executor.Mean. The static split (forEachWorker,
// runBatchedWorkers, meanBatchedWorkers) hands every worker one
// contiguous range up front, so a slow or dead worker gates — or aborts
// — the whole sweep. Here the trial range is cut into [lo, hi) chunks of
// one batch each on a shared queue; workers dequeue, execute, and come
// back for more, so a straggling host simply ends up with fewer chunks.
//
// Two properties make stealing safe for a measurement harness:
//
//   - Estimates are bit-identical to the static split. Trial bodies
//     derive all randomness from the trial index, so a trial's outcome
//     does not depend on which worker ran it; Run sums integers
//     (order-free), and Mean writes every trial's value into a shared
//     per-trial slice and accumulates it in trial order after the last
//     chunk — one fixed summation order regardless of pool size or
//     scheduling (the static split only had that at one worker).
//
//   - A failing chunk is requeued, not fatal. A body that cannot
//     complete its chunk signals with Fail (or any panic): the worker
//     discards its state — a sharded executor whose worker process died,
//     a poisoned transport — closes it, builds a fresh one, and the
//     chunk goes back on the queue for another attempt. Only a chunk
//     that keeps failing (maxChunkAttempts fresh states) aborts the
//     sweep, re-raising the original panic.

// Fail aborts the current trial chunk with err: the scheduler closes the
// worker's state, requeues the chunk, and retries it on a freshly built
// state. Trial bodies call it when the failure is in the execution
// substrate (a dead worker process, a broken transport) rather than the
// measured algorithm — fabricating a degraded measurement instead would
// silently corrupt the estimate.
func Fail(err error) {
	panic(err)
}

// maxChunkAttempts bounds how many fresh states one chunk may consume
// before its failure is considered permanent and re-raised: the first
// attempt plus two retries.
const maxChunkAttempts = 3

// stealChunk is one [lo, hi) trial span in flight, carrying its attempt
// count across requeues.
type stealChunk struct {
	lo, hi  int
	attempt int
}

// chunkFailure wraps a recovered chunk panic so the scheduler can tell
// "this attempt failed" from "ran clean".
type chunkFailure struct{ val any }

// runChunk executes one chunk attempt, converting a panic into a
// failure value.
func runChunk(body func()) (failure *chunkFailure) {
	defer func() {
		if r := recover(); r != nil {
			failure = &chunkFailure{val: r}
		}
	}()
	body()
	return nil
}

// stealWorkers runs body(w, s, lo, hi) over [0, trials) in chunks of
// batch on up to `workers` goroutines fed from a shared chunk queue.
// w < workers indexes the goroutine (bodies may keep worker-indexed
// accumulators); s is the goroutine's current state. The queue is FIFO,
// so a single worker processes chunks in ascending trial order — exactly
// the static split's order, which keeps one-worker runs (GOMAXPROCS=1
// goldens) byte-identical to it even for order-sensitive accumulation.
//
// A body panic fails the attempt: the state is closed, a fresh one is
// built, and the chunk is requeued until maxChunkAttempts is exhausted,
// at which point the sweep drains and the original panic value is
// re-raised.
//
// progress, when non-nil, observes the schedule: (0, nchunks) once
// before the first chunk is handed out, then the cumulative completed
// count after each clean chunk — the latter concurrently from worker
// goroutines (Executor.Progress documents the contract).
func stealWorkers[S any](trials, batch, workers int, newState func() S, progress func(done, total int), body func(w int, s S, lo, hi int)) {
	if batch < 1 {
		batch = 1
	}
	nchunks := (trials + batch - 1) / batch
	if nchunks == 0 {
		return
	}
	if progress != nil {
		progress(0, nchunks)
	}
	if workers > nchunks {
		workers = nchunks
	}
	if workers < 1 {
		workers = 1
	}
	// Capacity covers every chunk plus one requeue slot per worker, so a
	// requeue send can never block (each worker holds at most one chunk).
	queue := make(chan stealChunk, nchunks+workers)
	for lo := 0; lo < trials; lo += batch {
		hi := lo + batch
		if hi > trials {
			hi = trials
		}
		queue <- stealChunk{lo: lo, hi: hi}
	}
	var pending atomic.Int64
	pending.Store(int64(nchunks))
	// done closes when the sweep is over — all chunks completed, or one
	// failed permanently. The queue itself is never closed: a concurrent
	// requeue racing a close would panic on the send.
	done := make(chan struct{})
	var doneOnce sync.Once
	finish := func() { doneOnce.Do(func() { close(done) }) }
	var fatalMu sync.Mutex
	var fatal *chunkFailure

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newState()
			defer func() { closeState(s) }()
			for {
				var c stealChunk
				select {
				case c = <-queue:
				case <-done:
					return
				}
				if failure := runChunk(func() { body(w, s, c.lo, c.hi) }); failure != nil {
					// The attempt died with its state: discard the state and
					// retry the chunk on a fresh one. The fresh build re-runs
					// the state constructor, which is where degraded modes
					// live (a sharded provider excluding dead workers, or
					// falling back to a local batch).
					closeState(s)
					s = newState()
					if c.attempt+1 >= maxChunkAttempts {
						fatalMu.Lock()
						if fatal == nil {
							fatal = failure
						}
						fatalMu.Unlock()
						finish()
						return
					}
					queue <- stealChunk{lo: c.lo, hi: c.hi, attempt: c.attempt + 1}
					continue
				}
				left := pending.Add(-1)
				if progress != nil {
					progress(nchunks-int(left), nchunks)
				}
				if left == 0 {
					finish()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if fatal != nil {
		panic(fatal.val)
	}
}

// runSteal is Run's core: per-worker success counters (integer sums are
// order-free, so the estimate is bit-identical to the static split's)
// over the stealing scheduler. A chunk's successes are counted only
// after its body returns clean — a failed attempt contributes nothing,
// and its requeued rerun recounts from a zeroed row.
func runSteal[S any](trials, batch, workers int, newState func() S, progress func(done, total int), f func(s S, lo, hi int, out []bool)) Estimate {
	if batch < 1 {
		batch = 1
	}
	counts := make([]int, workers)
	outs := make([][]bool, workers)
	stealWorkers(trials, batch, workers, newState, progress, func(w int, s S, lo, hi int) {
		if outs[w] == nil {
			outs[w] = make([]bool, batch)
		}
		chunk := outs[w][:hi-lo]
		clear(chunk)
		f(s, lo, hi, chunk)
		for _, ok := range chunk {
			if ok {
				counts[w]++
			}
		}
	})
	succ := 0
	for _, c := range counts {
		succ += c
	}
	return Estimate{Trials: trials, Successes: succ}
}

// meanSteal is Mean's core: every trial's value lands in its own slot of
// a shared per-trial slice (chunks cover disjoint ranges, so workers
// never race), and the mean and standard error accumulate in trial order
// once the sweep completes. The summation order is therefore a fixed
// function of the trial count — independent of pool size, scheduling,
// and stealing — and identical to the static split's single-worker
// order, which is what the committed GOMAXPROCS=1 goldens pin.
func meanSteal[S any](trials, batch, workers int, newState func() S, progress func(done, total int), f func(s S, lo, hi int, out []float64)) (mean, stderr float64) {
	if batch < 1 {
		batch = 1
	}
	vals := make([]float64, trials)
	stealWorkers(trials, batch, workers, newState, progress, func(w int, s S, lo, hi int) {
		chunk := vals[lo:hi]
		clear(chunk)
		f(s, lo, hi, chunk)
	})
	return meanOf(trials, vals)
}

// meanOf folds per-trial values in index order into the sample mean and
// standard error, exactly as meanBatchedWorkers folds per-worker sums.
func meanOf(trials int, vals []float64) (mean, stderr float64) {
	var sum, sq float64
	for _, v := range vals {
		sum += v
		sq += v * v
	}
	return meanStats(trials, sum, sq)
}
