package mc

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rlnc/internal/localrand"
)

func TestRunCountsDeterministically(t *testing.T) {
	// f depends only on the trial index, so the estimate is exact and
	// independent of scheduling.
	est := Run(1000, func(trial int) bool { return trial%4 == 0 })
	if est.Successes != 250 || est.Trials != 1000 {
		t.Errorf("est = %+v, want 250/1000", est)
	}
	if math.Abs(est.P()-0.25) > 1e-12 {
		t.Errorf("P = %v", est.P())
	}
}

func TestRunMatchesSequential(t *testing.T) {
	f := func(trial int) bool {
		return localrand.NewSource(uint64(trial)).Float64() < 0.37
	}
	par := Run(5000, f)
	seq := 0
	for i := 0; i < 5000; i++ {
		if f(i) {
			seq++
		}
	}
	if par.Successes != seq {
		t.Errorf("parallel %d != sequential %d", par.Successes, seq)
	}
}

func TestWilsonCoversTruth(t *testing.T) {
	est := Run(20000, func(trial int) bool {
		return localrand.NewSource(uint64(trial)).Float64() < 0.618
	})
	lo, hi := est.Wilson(3.3)
	if 0.618 < lo || 0.618 > hi {
		t.Errorf("interval [%v, %v] misses 0.618 (est %v)", lo, hi, est)
	}
	if hi-lo > 0.03 {
		t.Errorf("interval too wide: [%v, %v]", lo, hi)
	}
}

func TestWilsonClamped(t *testing.T) {
	all := Estimate{Trials: 100, Successes: 100}
	lo, hi := all.Wilson(1.96)
	if hi > 1 || lo < 0 {
		t.Errorf("interval [%v, %v] out of [0,1]", lo, hi)
	}
	none := Estimate{Trials: 100, Successes: 0}
	lo, _ = none.Wilson(1.96)
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
}

func TestEmptyEstimate(t *testing.T) {
	var e Estimate
	if !math.IsNaN(e.P()) {
		t.Error("empty estimate should be NaN")
	}
	lo, hi := e.Wilson(1.96)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty Wilson should be NaN")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Trials: 100, Successes: 62}
	if e.String() != "p=0.6200 (62/100)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestMean(t *testing.T) {
	mean, stderr := Mean(4000, func(trial int) float64 {
		return localrand.NewSource(uint64(trial)).Float64()
	})
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
	// Uniform stddev = 1/sqrt(12) ≈ 0.2887; stderr ≈ 0.00456.
	if stderr < 0.003 || stderr > 0.006 {
		t.Errorf("stderr = %v out of expected range", stderr)
	}
}

func TestMeanConstant(t *testing.T) {
	mean, stderr := Mean(100, func(int) float64 { return 7 })
	if mean != 7 || stderr != 0 {
		t.Errorf("mean=%v stderr=%v, want 7, 0", mean, stderr)
	}
}

func TestMeanSingleTrial(t *testing.T) {
	mean, stderr := Mean(1, func(int) float64 { return 3 })
	if mean != 3 || stderr != 0 {
		t.Errorf("mean=%v stderr=%v", mean, stderr)
	}
}

// scratch is a stand-in for a reusable per-worker engine: it records that
// the harness created it once per worker, not once per trial.
type scratch struct{ uses int }

func TestRunWithMatchesRun(t *testing.T) {
	f := func(trial int) bool {
		return localrand.NewSource(uint64(trial)).Float64() < 0.37
	}
	want := Run(5000, f)
	var created atomic.Int64
	got := RunWith(5000,
		func() *scratch { created.Add(1); return &scratch{} },
		func(s *scratch, trial int) bool { s.uses++; return f(trial) })
	if got != want {
		t.Errorf("RunWith = %+v, want %+v", got, want)
	}
	if c := created.Load(); c < 1 || c > int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("newState called %d times; want once per worker", c)
	}
}

func TestMeanWithMatchesMean(t *testing.T) {
	f := func(trial int) float64 {
		return localrand.NewSource(uint64(trial)).Float64()
	}
	wantMean, wantSE := Mean(4000, f)
	gotMean, gotSE := MeanWith(4000,
		func() *scratch { return &scratch{} },
		func(s *scratch, trial int) float64 { return f(trial) })
	if gotMean != wantMean || gotSE != wantSE {
		t.Errorf("MeanWith = (%v, %v), want (%v, %v)", gotMean, gotSE, wantMean, wantSE)
	}
}

func TestRunWithZeroTrials(t *testing.T) {
	est := RunWith(0, func() *scratch { t.Error("state created for zero trials"); return nil },
		func(*scratch, int) bool { t.Error("trial executed"); return false })
	if est.Trials != 0 || est.Successes != 0 {
		t.Errorf("est = %+v", est)
	}
}

func TestRunWithStateIsPerWorker(t *testing.T) {
	// Every trial must observe the state its own worker created. If a
	// regression shared one state across workers, the unsynchronized
	// increments below would lose updates, the use counts would no longer
	// sum to the trial count, and -race would flag the writes.
	var mu sync.Mutex
	var states []*scratch
	est := RunWith(2000,
		func() *scratch {
			s := &scratch{}
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
			return s
		},
		func(s *scratch, trial int) bool {
			s.uses++
			return true
		})
	if est.Successes != 2000 {
		t.Errorf("successes = %d, want 2000", est.Successes)
	}
	total := 0
	for _, s := range states {
		if s.uses == 0 {
			t.Error("a worker state ran zero trials")
		}
		total += s.uses
	}
	if total != 2000 {
		t.Errorf("per-state use counts sum to %d, want 2000 (states shared across workers?)", total)
	}
}

// TestRunBatchedMatchesRun pins that the batched harness visits exactly
// the same trial indices with the same per-trial outcomes as Run, across
// chunk shapes that do and do not divide the trial count.
func TestRunBatchedMatchesRun(t *testing.T) {
	pred := func(trial int) bool { return trial%3 == 0 || trial%7 == 2 }
	for _, trials := range []int{1, 31, 96, 1000} {
		for _, batch := range []int{1, 4, 32} {
			want := Run(trials, pred)
			got := RunBatched(trials, batch, func() struct{} { return struct{}{} },
				func(_ struct{}, lo, hi int, out []bool) {
					if hi-lo > batch {
						t.Fatalf("chunk [%d,%d) exceeds batch %d", lo, hi, batch)
					}
					for i := lo; i < hi; i++ {
						out[i-lo] = pred(i)
					}
				})
			if got != want {
				t.Errorf("trials=%d batch=%d: %v, want %v", trials, batch, got, want)
			}
		}
	}
}

// TestRunShardedMatchesRun pins that shard-group distribution changes
// only which worker evaluates which chunk: success counts are integers,
// so the estimate is exact at every shard count, including shard counts
// above GOMAXPROCS (one group) and below (several groups).
func TestRunShardedMatchesRun(t *testing.T) {
	pred := func(trial int) bool { return trial%5 == 0 || trial%11 == 3 }
	for _, trials := range []int{1, 47, 500} {
		for _, shards := range []int{1, 2, 4, 64} {
			want := Run(trials, pred)
			got := RunSharded(trials, 8, shards, func() struct{} { return struct{}{} },
				func(_ struct{}, lo, hi int, out []bool) {
					for i := lo; i < hi; i++ {
						out[i-lo] = pred(i)
					}
				})
			if got != want {
				t.Errorf("trials=%d shards=%d: %v, want %v", trials, shards, got, want)
			}
		}
	}
}

// TestRunShardedPoolSize pins the group sizing: with S-shard state each
// group occupies S goroutines, so the pool must shrink to
// GOMAXPROCS/S groups (floored at one). Worker indices are observed
// through the per-worker state constructor.
func TestRunShardedPoolSize(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, shards := range []int{1, 2, procs, 4 * procs} {
		wantMax := procs / shards
		if wantMax < 1 {
			wantMax = 1
		}
		var states atomic.Int64
		RunSharded(1000, 8, shards, func() struct{} {
			states.Add(1)
			return struct{}{}
		}, func(_ struct{}, lo, hi int, out []bool) {})
		if got := states.Load(); got > int64(wantMax) {
			t.Errorf("shards=%d: %d worker states, want <= %d", shards, got, wantMax)
		}
	}
}

// TestMeanShardedMatchesMean pins the sharded mean harness against the
// scalar one at one worker group (shards >= GOMAXPROCS forces a single
// group, whose chunk accumulation order equals sequential trial order).
func TestMeanShardedMatchesMean(t *testing.T) {
	obs := func(trial int) float64 { return float64(trial%13) * 0.29 }
	trials := 300
	wantMean := 0.0
	for i := 0; i < trials; i++ {
		wantMean += obs(i)
	}
	wantMean /= float64(trials)
	gotMean, gotSE := MeanSharded(trials, 8, 4*runtime.GOMAXPROCS(0), func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int, out []float64) {
			for i := lo; i < hi; i++ {
				out[i-lo] = obs(i)
			}
		})
	if gotMean != wantMean {
		t.Errorf("mean %v, want %v", gotMean, wantMean)
	}
	if gotSE <= 0 {
		t.Errorf("stderr %v, want > 0", gotSE)
	}
}

// TestMeanBatchedMatchesMean pins bit-identical mean and stderr: the
// batched harness accumulates per-worker sums in the same trial order as
// MeanWith, so floating-point results agree exactly.
func TestMeanBatchedMatchesMean(t *testing.T) {
	obs := func(trial int) float64 { return float64(trial%17) * 0.37 }
	for _, trials := range []int{1, 31, 1000} {
		for _, batch := range []int{1, 5, 32} {
			wantMean, wantSE := Mean(trials, obs)
			gotMean, gotSE := MeanBatched(trials, batch, func() struct{} { return struct{}{} },
				func(_ struct{}, lo, hi int, out []float64) {
					for i := lo; i < hi; i++ {
						out[i-lo] = obs(i)
					}
				})
			if gotMean != wantMean || gotSE != wantSE {
				t.Errorf("trials=%d batch=%d: mean %v se %v, want %v %v", trials, batch, gotMean, gotSE, wantMean, wantSE)
			}
		}
	}
}
