package mc

import (
	"math"
	"testing"

	"rlnc/internal/localrand"
)

func TestRunCountsDeterministically(t *testing.T) {
	// f depends only on the trial index, so the estimate is exact and
	// independent of scheduling.
	est := Run(1000, func(trial int) bool { return trial%4 == 0 })
	if est.Successes != 250 || est.Trials != 1000 {
		t.Errorf("est = %+v, want 250/1000", est)
	}
	if math.Abs(est.P()-0.25) > 1e-12 {
		t.Errorf("P = %v", est.P())
	}
}

func TestRunMatchesSequential(t *testing.T) {
	f := func(trial int) bool {
		return localrand.NewSource(uint64(trial)).Float64() < 0.37
	}
	par := Run(5000, f)
	seq := 0
	for i := 0; i < 5000; i++ {
		if f(i) {
			seq++
		}
	}
	if par.Successes != seq {
		t.Errorf("parallel %d != sequential %d", par.Successes, seq)
	}
}

func TestWilsonCoversTruth(t *testing.T) {
	est := Run(20000, func(trial int) bool {
		return localrand.NewSource(uint64(trial)).Float64() < 0.618
	})
	lo, hi := est.Wilson(3.3)
	if 0.618 < lo || 0.618 > hi {
		t.Errorf("interval [%v, %v] misses 0.618 (est %v)", lo, hi, est)
	}
	if hi-lo > 0.03 {
		t.Errorf("interval too wide: [%v, %v]", lo, hi)
	}
}

func TestWilsonClamped(t *testing.T) {
	all := Estimate{Trials: 100, Successes: 100}
	lo, hi := all.Wilson(1.96)
	if hi > 1 || lo < 0 {
		t.Errorf("interval [%v, %v] out of [0,1]", lo, hi)
	}
	none := Estimate{Trials: 100, Successes: 0}
	lo, _ = none.Wilson(1.96)
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
}

func TestEmptyEstimate(t *testing.T) {
	var e Estimate
	if !math.IsNaN(e.P()) {
		t.Error("empty estimate should be NaN")
	}
	lo, hi := e.Wilson(1.96)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty Wilson should be NaN")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Trials: 100, Successes: 62}
	if e.String() != "p=0.6200 (62/100)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestMean(t *testing.T) {
	mean, stderr := Mean(4000, func(trial int) float64 {
		return localrand.NewSource(uint64(trial)).Float64()
	})
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
	// Uniform stddev = 1/sqrt(12) ≈ 0.2887; stderr ≈ 0.00456.
	if stderr < 0.003 || stderr > 0.006 {
		t.Errorf("stderr = %v out of expected range", stderr)
	}
}

func TestMeanConstant(t *testing.T) {
	mean, stderr := Mean(100, func(int) float64 { return 7 })
	if mean != 7 || stderr != 0 {
		t.Errorf("mean=%v stderr=%v, want 7, 0", mean, stderr)
	}
}

func TestMeanSingleTrial(t *testing.T) {
	mean, stderr := Mean(1, func(int) float64 { return 3 })
	if mean != 3 || stderr != 0 {
		t.Errorf("mean=%v stderr=%v", mean, stderr)
	}
}
