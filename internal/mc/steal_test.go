package mc

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// trialOutcome is the deterministic per-trial Bernoulli body every
// scheduler test shares: outcome is a pure function of the trial index,
// exactly the contract real trial bodies honor (all randomness derived
// from the index), so any two schedulers must agree bit for bit.
func trialOutcome(trial int) bool {
	x := uint64(trial)*0x9e3779b97f4a7c15 + 0x1234
	x ^= x >> 29
	return x%3 == 0
}

func trialValue(trial int) float64 {
	x := uint64(trial)*0x9e3779b97f4a7c15 + 0x77
	x ^= x >> 31
	return float64(x%1000) / 997.0
}

// schedulerShapes is the trials/batch/workers sweep of the differential
// tests: zero trials, trials < workers, trials < batch, ragged tails,
// single-chunk, and bulk shapes.
var schedulerShapes = []struct{ trials, batch, workers int }{
	{0, 1, 4},
	{0, 32, 1},
	{1, 1, 8},
	{1, 4, 8},
	{3, 1, 8},   // trials < workers, scalar chunks
	{5, 32, 4},  // trials < batch: one ragged chunk
	{7, 2, 3},   // ragged tail
	{64, 32, 2}, // exact chunks
	{100, 7, 16},
	{257, 32, 5},
}

// TestStealEstimateMatchesStaticSplit is the work-stealing scheduler's
// acceptance gate: for every pool shape — trials below the worker count
// and the zero-trial edge of forEachWorker included — the stolen
// Estimate is bit-identical to the legacy static split's, and every
// trial executes exactly once.
func TestStealEstimateMatchesStaticSplit(t *testing.T) {
	for _, shape := range schedulerShapes {
		shape := shape
		t.Run(fmt.Sprintf("t%d_b%d_w%d", shape.trials, shape.batch, shape.workers), func(t *testing.T) {
			body := func(_ struct{}, lo, hi int, out []bool) {
				for i := lo; i < hi; i++ {
					out[i-lo] = trialOutcome(i)
				}
			}
			newState := func() struct{} { return struct{}{} }
			want := runBatchedWorkers(shape.trials, shape.batch, shape.workers, newState, body)

			ran := make([]atomic.Int32, shape.trials)
			got := runSteal(shape.trials, shape.batch, shape.workers, newState, nil,
				func(s struct{}, lo, hi int, out []bool) {
					for i := lo; i < hi; i++ {
						ran[i].Add(1)
					}
					body(s, lo, hi, out)
				})
			if got != want {
				t.Fatalf("steal %+v != static %+v", got, want)
			}
			for i := range ran {
				if n := ran[i].Load(); n != 1 {
					t.Fatalf("trial %d executed %d times", i, n)
				}
			}
		})
	}
}

// TestStealMeanTrialOrderDeterminism pins the Mean merge contract: the
// stolen mean and standard error are bitwise identical to the static
// split at one worker (the committed-golden configuration) for every
// pool shape — i.e. the float accumulation order is the fixed trial
// order no matter how many workers steal.
func TestStealMeanTrialOrderDeterminism(t *testing.T) {
	body := func(_ struct{}, lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i-lo] = trialValue(i)
		}
	}
	newState := func() struct{} { return struct{}{} }
	for _, shape := range schedulerShapes {
		if shape.trials == 0 {
			continue // NaN/NaN on both sides; compared below
		}
		wantMean, wantErr := meanBatchedWorkers(shape.trials, shape.batch, 1, newState, body)
		gotMean, gotErr := meanSteal(shape.trials, shape.batch, shape.workers, newState, nil, body)
		if math.Float64bits(gotMean) != math.Float64bits(wantMean) ||
			math.Float64bits(gotErr) != math.Float64bits(wantErr) {
			t.Fatalf("shape %+v: steal mean (%v, %v) != one-worker static (%v, %v)",
				shape, gotMean, gotErr, wantMean, wantErr)
		}
	}
	// Zero trials: NaN mean, zero stderr, no body calls — same as static.
	mean, stderr := meanSteal(0, 4, 3, newState, nil, body)
	if !math.IsNaN(mean) || stderr != 0 {
		t.Fatalf("zero-trial mean = (%v, %v), want (NaN, 0)", mean, stderr)
	}
}

// flakyState fails every chunk attempt while the shared failure budget
// lasts, then runs clean; Close counts so the test can assert failed
// states are actually released before their replacements are built.
type flakyState struct {
	failures *atomic.Int32 // remaining attempts to fail
	closed   *atomic.Int32
}

func (s flakyState) Close() error {
	s.closed.Add(1)
	return nil
}

// TestStealRequeuesFailedChunk pins the requeue contract: a chunk whose
// body fails is retried on a fresh state, the sweep completes with every
// trial counted exactly once, and the failed state was closed.
func TestStealRequeuesFailedChunk(t *testing.T) {
	var failures, closed, built atomic.Int32
	failures.Store(2) // two attempts die (possibly on different chunks)
	newState := func() flakyState {
		built.Add(1)
		return flakyState{failures: &failures, closed: &closed}
	}
	trials, batch, workers := 40, 4, 3
	want := runBatchedWorkers(trials, batch, workers, func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int, out []bool) {
			for i := lo; i < hi; i++ {
				out[i-lo] = trialOutcome(i)
			}
		})
	ran := make([]atomic.Int32, trials)
	got := runSteal(trials, batch, workers, newState, nil, func(s flakyState, lo, hi int, out []bool) {
		if s.failures.Add(-1) >= 0 {
			Fail(errors.New("substrate failure"))
		}
		for i := lo; i < hi; i++ {
			ran[i].Add(1)
			out[i-lo] = trialOutcome(i)
		}
	})
	if got != want {
		t.Fatalf("estimate after requeue %+v != static %+v", got, want)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("trial %d completed %d times", i, n)
		}
	}
	if closed.Load() < 2 {
		t.Fatalf("%d states closed, want >= 2 (one per failed attempt)", closed.Load())
	}
	if built.Load() != 3+2 {
		t.Fatalf("%d states built, want 5 (3 workers + a replacement per failed attempt)", built.Load())
	}
}

// TestStealPermanentFailurePanics pins the retry bound: a chunk that
// fails on every fresh state aborts the sweep by re-raising the original
// panic value after maxChunkAttempts attempts — it neither spins forever
// nor silently drops trials.
func TestStealPermanentFailurePanics(t *testing.T) {
	sentinel := errors.New("permanently broken")
	var attempts atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("permanently failing chunk did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, sentinel) {
			t.Fatalf("panic value %v, want the original failure", r)
		}
		// The failing chunk burned exactly its attempt budget; other
		// chunks may or may not have run, but none more than the budget.
		if n := attempts.Load(); n < maxChunkAttempts {
			t.Fatalf("%d attempts before permanent failure, want >= %d", n, maxChunkAttempts)
		}
	}()
	runSteal(8, 4, 2, func() struct{} { return struct{}{} }, nil,
		func(_ struct{}, lo, hi int, out []bool) {
			if lo == 0 {
				attempts.Add(1)
				Fail(sentinel)
			}
			for i := lo; i < hi; i++ {
				out[i-lo] = trialOutcome(i)
			}
		})
}

// TestStealProgressReports pins the Progress hook contract: one leading
// (0, total) call before any chunk completes, then exactly one call per
// completed chunk carrying a distinct cumulative count, so the full
// event set is {0, 1, ..., total} — with requeued failures reporting
// only on their eventually-clean rerun. The estimate itself must be
// unchanged by observation.
func TestStealProgressReports(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	total := -1
	var failures atomic.Int32
	failures.Store(2)
	trials, batch, workers := 40, 4, 3
	est := Executor[struct{}]{
		Trials: trials, Batch: batch,
		Progress: func(done, n int) {
			mu.Lock()
			defer mu.Unlock()
			dones = append(dones, done)
			total = n
		},
	}.Run(func(_ struct{}, lo, hi int, out []bool) {
		if failures.Add(-1) >= 0 {
			Fail(errors.New("substrate failure"))
		}
		for i := lo; i < hi; i++ {
			out[i-lo] = trialOutcome(i)
		}
	})
	want := runBatchedWorkers(trials, batch, workers, func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int, out []bool) {
			for i := lo; i < hi; i++ {
				out[i-lo] = trialOutcome(i)
			}
		})
	if est != want {
		t.Fatalf("observed estimate %+v != static %+v", est, want)
	}
	nchunks := (trials + batch - 1) / batch
	if total != nchunks {
		t.Fatalf("reported total %d, want %d", total, nchunks)
	}
	if len(dones) != nchunks+1 {
		t.Fatalf("%d progress calls, want %d (leading zero + one per chunk)", len(dones), nchunks+1)
	}
	if dones[0] != 0 {
		t.Fatalf("first progress call reported done=%d, want 0", dones[0])
	}
	seen := make(map[int]bool, len(dones))
	for _, d := range dones {
		if d < 0 || d > nchunks || seen[d] {
			t.Fatalf("progress counts %v: want each of 0..%d exactly once", dones, nchunks)
		}
		seen[d] = true
	}
}

// TestExecutorStealMatrix runs the same differential through the public
// Executor surface — Batch/Shards field combinations included — so the
// wiring from Executor.Run/Mean down to the stealing cores is covered,
// not just the cores themselves.
func TestExecutorStealMatrix(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, trials := range []int{0, 1, 5, 97} {
		for _, batch := range []int{0, 1, 8} {
			est := Executor[struct{}]{Trials: trials, Batch: batch}.
				Run(Scalar(func(_ struct{}, trial int) bool { return trialOutcome(trial) }))
			want := runBatchedWorkers(trials, batch, procs,
				func() struct{} { return struct{}{} },
				Scalar(func(_ struct{}, trial int) bool { return trialOutcome(trial) }))
			if est != want {
				t.Fatalf("trials=%d batch=%d: executor %+v != static %+v", trials, batch, est, want)
			}
			// Shard-group pool sizing must not change the estimate either.
			est2 := Executor[struct{}]{Trials: trials, Batch: batch, Shards: 2}.
				Run(Scalar(func(_ struct{}, trial int) bool { return trialOutcome(trial) }))
			if est2 != want {
				t.Fatalf("trials=%d batch=%d shards=2: %+v != %+v", trials, batch, est2, want)
			}
		}
	}
}
