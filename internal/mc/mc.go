// Package mc is the Monte-Carlo measurement harness used by every
// experiment: it runs independent Bernoulli trials on a fixed worker pool
// and reports point estimates with Wilson confidence intervals. Trials are
// indexed, and callers derive all randomness from the trial index, so
// results are reproducible and independent of parallel scheduling.
package mc

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Estimate is the outcome of a batch of Bernoulli trials.
type Estimate struct {
	Trials    int
	Successes int
}

// P returns the point estimate of the success probability.
func (e Estimate) P() float64 {
	if e.Trials == 0 {
		return math.NaN()
	}
	return float64(e.Successes) / float64(e.Trials)
}

// Wilson returns the Wilson score interval at the given z value
// (z = 1.96 for 95%, 2.58 for 99%). Preferred over the normal interval
// because experiment probabilities sit near 0 and 1.
func (e Estimate) Wilson(z float64) (lo, hi float64) {
	if e.Trials == 0 {
		return math.NaN(), math.NaN()
	}
	n := float64(e.Trials)
	p := e.P()
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the estimate as "p=0.618 (k/n)".
func (e Estimate) String() string {
	return fmt.Sprintf("p=%.4f (%d/%d)", e.P(), e.Successes, e.Trials)
}

// Run executes trials of f on a worker pool; f receives the trial index
// and must derive all randomness from it (e.g. as a tape-space draw
// index). The aggregate is independent of scheduling.
func Run(trials int, f func(trial int) bool) Estimate {
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		succ := 0
		for i := 0; i < trials; i++ {
			if f(i) {
				succ++
			}
		}
		return Estimate{Trials: trials, Successes: succ}
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (trials + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > trials {
			hi = trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if f(i) {
					counts[w]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	succ := 0
	for _, c := range counts {
		succ += c
	}
	return Estimate{Trials: trials, Successes: succ}
}

// Mean runs trials of a real-valued observable and returns its sample
// mean and standard error.
func Mean(trials int, f func(trial int) float64) (mean, stderr float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	sums := make([]float64, workers)
	sqs := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (trials + workers - 1) / workers
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			v := f(i)
			sums[0] += v
			sqs[0] += v * v
		}
	} else {
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > trials {
				hi = trials
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					v := f(i)
					sums[w] += v
					sqs[w] += v * v
				}
			}(w, lo, hi)
		}
		wg.Wait()
	}
	var sum, sq float64
	for w := range sums {
		sum += sums[w]
		sq += sqs[w]
	}
	n := float64(trials)
	mean = sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	if trials > 1 {
		stderr = math.Sqrt(variance / (n - 1))
	}
	return mean, stderr
}
