// Package mc is the Monte-Carlo measurement harness used by every
// experiment: it runs independent Bernoulli trials on a fixed worker pool
// and reports point estimates with Wilson confidence intervals. Trials are
// indexed, and callers derive all randomness from the trial index, so
// results are reproducible and independent of parallel scheduling.
package mc

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
)

// Estimate is the outcome of a batch of Bernoulli trials.
type Estimate struct {
	Trials    int
	Successes int
}

// P returns the point estimate of the success probability.
func (e Estimate) P() float64 {
	if e.Trials == 0 {
		return math.NaN()
	}
	return float64(e.Successes) / float64(e.Trials)
}

// Wilson returns the Wilson score interval at the given z value
// (z = 1.96 for 95%, 2.58 for 99%). Preferred over the normal interval
// because experiment probabilities sit near 0 and 1.
func (e Estimate) Wilson(z float64) (lo, hi float64) {
	if e.Trials == 0 {
		return math.NaN(), math.NaN()
	}
	n := float64(e.Trials)
	p := e.P()
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the estimate as "p=0.618 (k/n)".
func (e Estimate) String() string {
	return fmt.Sprintf("p=%.4f (%d/%d)", e.P(), e.Successes, e.Trials)
}

// forEachWorker partitions [0, trials) into contiguous chunks and runs
// body(w, lo, hi) for each on its own goroutine (or inline when one
// worker suffices). workers caps the pool and bounds every index w the
// bodies see — callers size their per-worker result slices from the
// same value, so the two can never disagree. Bodies must write only
// worker-indexed state.
func forEachWorker(trials, workers int, body func(w, lo, hi int)) {
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		if trials > 0 {
			body(0, 0, trials)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (trials + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > trials {
			hi = trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Run executes trials of f on a worker pool; f receives the trial index
// and must derive all randomness from it (e.g. as a tape-space draw
// index). The aggregate is independent of scheduling.
//
// Deprecated: use Executor — Executor[struct{}]{Trials: trials}.Run with
// a Scalar body is the same computation.
func Run(trials int, f func(trial int) bool) Estimate {
	return Executor[struct{}]{Trials: trials}.
		Run(Scalar(func(_ struct{}, trial int) bool { return f(trial) }))
}

// RunWith is Run with per-worker state: newState is called once per
// worker and its value is passed to every trial that worker executes.
// The intended state is a reusable *local.Engine, so the O(n + m)
// execution scratch is set up once per worker instead of once per trial.
//
// Deprecated: use Executor with NewState and a Scalar body.
func RunWith[S any](trials int, newState func() S, f func(s S, trial int) bool) Estimate {
	return Executor[S]{Trials: trials, NewState: newState}.Run(Scalar(f))
}

// RunBatched is RunWith with vectorized trials: instead of one index at a
// time, each worker hands f a contiguous trial chunk [lo, hi) of at most
// batch indices and a result slice out of length hi-lo to fill (out[i]
// reports trial lo+i). The intended state is a reusable *local.Batch of
// width batch, so a whole chunk of trials runs through one engine pass.
//
// Deprecated: use Executor with Batch set.
func RunBatched[S any](trials, batch int, newState func() S, f func(s S, lo, hi int, out []bool)) Estimate {
	return Executor[S]{Trials: trials, Batch: batch, NewState: newState}.Run(f)
}

// RunSharded is RunBatched for sharded execution state: the intended S
// is a *local.Sharded of `shards` shards, whose every trial vector
// already runs on that many goroutines, so the pool is sized at
// GOMAXPROCS/shards shard groups instead of GOMAXPROCS scalar workers.
//
// Deprecated: use Executor with Batch and Shards set.
func RunSharded[S any](trials, batch, shards int, newState func() S, f func(s S, lo, hi int, out []bool)) Estimate {
	return Executor[S]{Trials: trials, Batch: batch, Shards: shards, NewState: newState}.Run(f)
}

// closeState releases a worker state that holds external resources
// (sockets, worker-process leases): states implementing io.Closer are
// closed when their worker retires, so transports injected through
// trial-state constructors cannot leak across a trial sweep.
func closeState(s any) {
	if c, ok := s.(io.Closer); ok {
		c.Close()
	}
}

// shardGroups sizes the worker pool for shard-group execution.
func shardGroups(shards int) int {
	if shards < 1 {
		shards = 1
	}
	groups := runtime.GOMAXPROCS(0) / shards
	if groups < 1 {
		groups = 1
	}
	return groups
}

// runBatchedWorkers is the legacy static-split core: every worker gets
// one contiguous trial range up front. Retained as the differential
// reference for the work-stealing scheduler (steal.go), whose Estimate
// must stay bit-identical to this split.
func runBatchedWorkers[S any](trials, batch, workers int, newState func() S, f func(s S, lo, hi int, out []bool)) Estimate {
	if batch < 1 {
		batch = 1
	}
	counts := make([]int, workers)
	forEachWorker(trials, workers, func(w, lo, hi int) {
		s := newState()
		defer closeState(s)
		out := make([]bool, batch)
		for start := lo; start < hi; start += batch {
			end := start + batch
			if end > hi {
				end = hi
			}
			chunk := out[:end-start]
			clear(chunk)
			f(s, start, end, chunk)
			for _, ok := range chunk {
				if ok {
					counts[w]++
				}
			}
		}
	})
	succ := 0
	for _, c := range counts {
		succ += c
	}
	return Estimate{Trials: trials, Successes: succ}
}

// Mean runs trials of a real-valued observable and returns its sample
// mean and standard error.
//
// Deprecated: use Executor — Executor[struct{}]{Trials: trials}.Mean
// with a ScalarMean body is the same computation.
func Mean(trials int, f func(trial int) float64) (mean, stderr float64) {
	return Executor[struct{}]{Trials: trials}.
		Mean(ScalarMean(func(_ struct{}, trial int) float64 { return f(trial) }))
}

// MeanWith is Mean with per-worker state; see RunWith.
//
// Deprecated: use Executor with NewState and a ScalarMean body.
func MeanWith[S any](trials int, newState func() S, f func(s S, trial int) float64) (mean, stderr float64) {
	return Executor[S]{Trials: trials, NewState: newState}.Mean(ScalarMean(f))
}

// MeanBatched is MeanWith with vectorized trials; see RunBatched. Each
// worker accumulates its chunk's values in trial order, so the mean and
// standard error are bit-identical to MeanWith's for the same per-trial
// observable.
//
// Deprecated: use Executor with Batch set.
func MeanBatched[S any](trials, batch int, newState func() S, f func(s S, lo, hi int, out []float64)) (mean, stderr float64) {
	return Executor[S]{Trials: trials, Batch: batch, NewState: newState}.Mean(f)
}

// MeanSharded is MeanBatched with shard-group pool sizing; see
// RunSharded.
//
// Deprecated: use Executor with Batch and Shards set.
func MeanSharded[S any](trials, batch, shards int, newState func() S, f func(s S, lo, hi int, out []float64)) (mean, stderr float64) {
	return Executor[S]{Trials: trials, Batch: batch, Shards: shards, NewState: newState}.Mean(f)
}

// meanBatchedWorkers is the legacy static-split Mean core; like
// runBatchedWorkers it survives as the reference the work-stealing
// scheduler is differentially tested against. Its per-worker float
// accumulation makes the low digits depend on the worker count — the
// trial-order merge in meanSteal is what replaced it.
func meanBatchedWorkers[S any](trials, batch, workers int, newState func() S, f func(s S, lo, hi int, out []float64)) (mean, stderr float64) {
	if batch < 1 {
		batch = 1
	}
	sums := make([]float64, workers)
	sqs := make([]float64, workers)
	forEachWorker(trials, workers, func(w, lo, hi int) {
		s := newState()
		defer closeState(s)
		out := make([]float64, batch)
		for start := lo; start < hi; start += batch {
			end := start + batch
			if end > hi {
				end = hi
			}
			chunk := out[:end-start]
			clear(chunk)
			f(s, start, end, chunk)
			for _, v := range chunk {
				sums[w] += v
				sqs[w] += v * v
			}
		}
	})
	var sum, sq float64
	for w := range sums {
		sum += sums[w]
		sq += sqs[w]
	}
	return meanStats(trials, sum, sq)
}

// meanStats turns accumulated value and square sums into the sample mean
// and standard error.
func meanStats(trials int, sum, sq float64) (mean, stderr float64) {
	n := float64(trials)
	mean = sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	if trials > 1 {
		stderr = math.Sqrt(variance / (n - 1))
	}
	return mean, stderr
}
