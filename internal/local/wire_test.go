package local

import (
	"bytes"
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// wireMix is a wire-native test algorithm exercising every Outbox verb:
// each round a node mixes the first words it received into its state,
// sends the state word on even ports, appends a second word (the round)
// on ports divisible by 4, and signals (zero words) on odd ports. The
// output is the folded state, so any transport discrepancy — presence,
// word content, payload length — changes the bytes.
type wireMix struct{ rounds int }

func (w wireMix) Name() string                { return fmt.Sprintf("wire-mix(%d)", w.rounds) }
func (w wireMix) MsgWords(int) int            { return 2 }
func (w wireMix) NewWireProcess() WireProcess { return &wireMixProc{rounds: w.rounds} }
func (w wireMix) NewProcess() Process         { return NewLegacyProcess(w) }

type wireMixProc struct {
	rounds int
	state  uint64
}

func (p *wireMixProc) send(out *Outbox) {
	for port := 0; port < out.Degree(); port++ {
		switch {
		case port%4 == 0:
			out.Send(port, p.state)
			out.Append(port, p.state>>32)
		case port%2 == 0:
			out.Send(port, p.state)
		default:
			out.Signal(port)
		}
	}
}

// ResetProcess implements ResetProcess so the pooling tests can exercise
// the reset-and-reuse path with a native wire algorithm.
func (p *wireMixProc) ResetProcess() { *p = wireMixProc{rounds: p.rounds} }

func (p *wireMixProc) Start(info NodeInfo, out *Outbox) {
	p.state = uint64(info.ID) * 0x9e3779b97f4a7c15
	if info.Tape != nil {
		p.state ^= info.Tape.Uint64()
	}
	p.send(out)
}

func (p *wireMixProc) Step(round int, in *Inbox, out *Outbox) bool {
	for port := 0; port < in.Degree(); port++ {
		if !in.Has(port) {
			p.state = p.state*3 + 1
			continue
		}
		for _, w := range in.Words(port) {
			p.state ^= w + uint64(in.Len(port))
		}
	}
	if round >= p.rounds {
		return true
	}
	p.send(out)
	return false
}

func (p *wireMixProc) Output() []byte { return encode64(int64(p.state)) }

// TestWireMatchesBoxedTransport pins the transport-equivalence contract
// of the wire core on every graph family: the same algorithm run
// natively (words in the slabs) and through Boxed (the legacy []Message
// transport, words boxed into payloads) must produce byte-identical
// outputs and identical Stats at equal seeds, single-shot and batched.
func TestWireMatchesBoxedTransport(t *testing.T) {
	space := localrand.NewTapeSpace(81)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			algo := wireMix{rounds: 4}
			draw := space.Draw(9)
			wire, err := RunMessage(in, algo, &draw, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			boxed, err := RunMessage(in, Boxed(algo), &draw, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			expectSameResult(t, "boxed vs wire", wire, boxed)

			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			bt := plan.NewBatch(3)
			draws := drawRange(space, 20, 3)
			wireLanes, err := bt.Run(in, algo, draws, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			boxedLanes, err := bt.Run(in, Boxed(algo), draws, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for b := range draws {
				expectSameResult(t, fmt.Sprintf("lane %d boxed vs wire", b), wireLanes[b], boxedLanes[b])
			}
		})
	}
}

// TestWireLoopback exercises the Outbox staging verbs and Inbox readers
// through the loopback pair, without an engine.
func TestWireLoopback(t *testing.T) {
	out, in := NewLoopback(4, 3)

	// Port 0: nothing staged.
	if in.Has(0) {
		t.Error("port 0: phantom message")
	}
	if got := in.Len(0); got != -1 {
		t.Errorf("port 0: Len = %d, want -1", got)
	}
	if _, ok := in.Word(0); ok {
		t.Error("port 0: Word on absent message")
	}
	if in.Words(0) != nil {
		t.Error("port 0: Words on absent message")
	}

	// Port 1: zero-word signal.
	out.Signal(1)
	if !in.Has(1) || in.Len(1) != 0 {
		t.Errorf("port 1: Has=%v Len=%d, want present empty", in.Has(1), in.Len(1))
	}
	if _, ok := in.Word(1); ok {
		t.Error("port 1: Word on empty message")
	}

	// Port 2: one word, then replaced, then extended.
	out.Send(2, 7)
	out.Send(2, 9)
	out.Append(2, 11)
	if w, ok := in.Word(2); !ok || w != 9 {
		t.Errorf("port 2: Word = %d,%v, want 9,true", w, ok)
	}
	words := in.Words(2)
	if len(words) != 2 || words[0] != 9 || words[1] != 11 {
		t.Errorf("port 2: Words = %v, want [9 11]", words)
	}

	// Port 3: Append onto an empty port starts a message.
	out.Append(3, 5)
	if w := in.Words(3); len(w) != 1 || w[0] != 5 {
		t.Errorf("port 3: Words = %v, want [5]", w)
	}

	// Appending beyond the MsgWords capacity must panic.
	out.Append(3, 6)
	out.Append(3, 7)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Append beyond capacity did not panic")
			}
		}()
		out.Append(3, 8)
	}()

	// Reset clears every staged message.
	out.Reset()
	for port := 0; port < 4; port++ {
		if in.Has(port) {
			t.Errorf("port %d: message survived Reset", port)
		}
	}
}

// TestLegacyProcessTransport pins the legacy shim path in isolation: a
// WireAlgorithm used through NewLegacyProcess must behave exactly like
// the legacy Processes the engine has always run — including presence of
// zero-word signals as non-nil payloads.
func TestLegacyProcessTransport(t *testing.T) {
	in := mustInstance(t, graph.Cycle(6))
	algo := wireMix{rounds: 3}
	proc := algo.NewProcess()
	msgs := proc.Start(NodeInfo{ID: in.ID[0], Degree: 2})
	if len(msgs) != 2 {
		t.Fatalf("legacy Start staged %d ports, want 2", len(msgs))
	}
	// Port 0 sends two words, port 1 a zero-word signal; both non-nil.
	wm, ok := msgs[0].(wireMsg)
	if !ok || len(wm.Words) != 2 {
		t.Fatalf("port 0: payload %#v, want a 2-word wireMsg", msgs[0])
	}
	sig, ok := msgs[1].(wireMsg)
	if !ok || len(sig.Words) != 0 {
		t.Fatalf("port 1: payload %#v, want an empty wireMsg", msgs[1])
	}
}

// TestWireStatsCountSignals pins that zero-word signals are delivered
// messages: a signal-only algorithm must report the same Stats.Messages
// as its boxed form, and a nonzero count.
func TestWireStatsCountSignals(t *testing.T) {
	in := mustInstance(t, graph.Cycle(5))
	algo := wireMix{rounds: 2}
	wire, err := RunMessage(in, algo, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	boxed, err := RunMessage(in, Boxed(algo), nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if wire.Stats.Messages == 0 {
		t.Error("wire run counted no messages")
	}
	if wire.Stats != boxed.Stats {
		t.Errorf("wire Stats %+v != boxed Stats %+v", wire.Stats, boxed.Stats)
	}
}

// TestWireBlockSplitting runs a wire-native algorithm over a lane vector
// wider than one slab block and pins per-lane equivalence with the
// pooled engine (the wire counterpart of TestBatchMessageBlocking).
func TestWireBlockSplitting(t *testing.T) {
	g := graph.Cycle(4000) // 8000 slots: 2-word wire messages split 8 lanes
	in := mustInstance(t, g)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	bt := plan.NewBatch(8)
	algo := wireMix{rounds: 2}
	if lanes := bt.msgLanesFor(algo); lanes >= 8 {
		t.Fatalf("fixture too small: block %d does not split 8 lanes", lanes)
	}
	space := localrand.NewTapeSpace(83)
	draws := drawRange(space, 0, 8)
	results, err := bt.Run(in, algo, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	for b := range draws {
		want, err := eng.Run(in, algo, &draws[b], RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		expectSameResult(t, fmt.Sprintf("blocked lane %d", b), want, results[b])
	}
}

// TestWireOutputsStable pins that outputs survive the engine's
// no-retention cleanup: output bytes must remain valid after the next
// run reuses the batch.
func TestWireOutputsStable(t *testing.T) {
	in := mustInstance(t, graph.Cycle(8))
	plan := MustPlan(in.G)
	eng := plan.NewEngine()
	space := localrand.NewTapeSpace(85)
	d0 := space.Draw(0)
	first, err := eng.Run(in, wireMix{rounds: 3}, &d0, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]byte, len(first.Y))
	for v := range first.Y {
		snapshot[v] = bytes.Clone(first.Y[v])
	}
	d1 := space.Draw(1)
	if _, err := eng.Run(in, wireMix{rounds: 3}, &d1, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for v := range first.Y {
		if !bytes.Equal(first.Y[v], snapshot[v]) {
			t.Fatalf("node %d: output mutated by a later run", v)
		}
	}
}
