package local

import (
	"bytes"
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// tapeXOR is a randomized fixed-round message algorithm: every node draws
// one word from its private tape, floods it, and folds received words in
// by XOR. Its output is a deterministic function of (graph, ids, draw),
// so it pins down that pooled engines thread tapes exactly like
// single-shot runs.
type tapeXOR struct{ rounds int }

func (a tapeXOR) Name() string { return fmt.Sprintf("tape-xor(%d)", a.rounds) }
func (a tapeXOR) NewProcess() Process {
	return &tapeXORProc{rounds: a.rounds}
}

type tapeXORProc struct {
	rounds int
	val    uint64
}

func (p *tapeXORProc) Start(info NodeInfo) []Message {
	p.val = info.Tape.Uint64()
	if p.rounds == 0 {
		return nil
	}
	out := make([]Message, info.Degree)
	for i := range out {
		out[i] = p.val
	}
	return out
}

func (p *tapeXORProc) Step(round int, received []Message) ([]Message, bool) {
	for _, m := range received {
		if m != nil {
			p.val ^= m.(uint64)
		}
	}
	if round >= p.rounds {
		return nil, true
	}
	out := make([]Message, len(received))
	for i := range out {
		out[i] = p.val
	}
	return out, false
}

func (p *tapeXORProc) Output() []byte { return encode64(int64(p.val)) }

// testFamilies returns the graph families the reuse tests sweep.
func testFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rr, err := graph.RandomRegular(48, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := graph.ConnectedGNP(30, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle":          graph.Cycle(24),
		"grid":           graph.Grid(5, 5),
		"tree":           graph.CompleteTree(3, 3),
		"star":           graph.Star(9),
		"random-regular": rr,
		"connected-gnp":  gnp,
	}
}

// expectSameResult asserts byte-identical outputs and identical Stats.
func expectSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	for v := range want.Y {
		if !bytes.Equal(want.Y[v], got.Y[v]) {
			t.Fatalf("%s: node %d output %x, want %x", label, v, got.Y[v], want.Y[v])
		}
	}
}

// TestEngineReuseMatchesSingleShotMessage pins the tentpole contract for
// the message path: one pooled Engine, reused back to back across draws,
// produces byte-identical outputs and identical Stats to fresh
// single-shot runs — on every graph family and with both deterministic
// and randomized algorithms.
func TestEngineReuseMatchesSingleShotMessage(t *testing.T) {
	space := localrand.NewTapeSpace(42)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			eng := plan.NewEngine()

			// Deterministic algorithm, reused engine.
			want, err := RunMessage(in, floodMin{t: 3}, nil, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				got, err := eng.Run(in, floodMin{t: 3}, nil, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				expectSameResult(t, fmt.Sprintf("floodMin rep %d", rep), want, got)
			}

			// Randomized algorithm: interleave draws on ONE engine and
			// compare each against its own fresh single-shot run.
			for trial := 0; trial < 4; trial++ {
				draw := space.Draw(uint64(trial))
				want, err := RunMessage(in, tapeXOR{rounds: 2}, &draw, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Run(in, tapeXOR{rounds: 2}, &draw, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				expectSameResult(t, fmt.Sprintf("tapeXOR trial %d", trial), want, got)
			}

			// Switching algorithms on the same engine must not leak state:
			// rerun the deterministic algorithm after the randomized ones.
			got, err := eng.Run(in, floodMin{t: 3}, nil, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			expectSameResult(t, "floodMin after tapeXOR", want, got)
		})
	}
}

// TestEngineReuseMatchesSingleShotView pins the same contract for the
// ball-view path, including the cached-views steady state (same instance,
// varying draw) and a radius switch mid-stream.
func TestEngineReuseMatchesSingleShotView(t *testing.T) {
	space := localrand.NewTapeSpace(7)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			eng := plan.NewEngine()
			for trial := 0; trial < 4; trial++ {
				draw := space.Draw(uint64(trial))
				want := RunView(in, tapeSumView{t: 2}, &draw)
				got := eng.RunView(in, tapeSumView{t: 2}, &draw)
				for v := range want {
					if !bytes.Equal(want[v], got[v]) {
						t.Fatalf("trial %d node %d: %x, want %x", trial, v, got[v], want[v])
					}
				}
			}
			// Radius switch (rebuilds the cache), then deterministic run
			// (drops tapes) on the same engine.
			want := RunView(in, minIDView{t: 3}, nil)
			got := eng.RunView(in, minIDView{t: 3}, nil)
			for v := range want {
				if !bytes.Equal(want[v], got[v]) {
					t.Fatalf("radius switch node %d: %x, want %x", v, got[v], want[v])
				}
			}
		})
	}
}

// TestEngineRejectsForeignInstance pins the plan/instance contract: an
// engine only runs instances over its own graph.
func TestEngineRejectsForeignInstance(t *testing.T) {
	a := mustInstance(t, graph.Cycle(6))
	b := mustInstance(t, graph.Cycle(6)) // same shape, different graph value
	plan, err := NewPlan(a.G)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.NewEngine().Run(b, floodMin{t: 1}, nil, RunOptions{}); err == nil {
		t.Fatal("engine accepted an instance over a foreign graph")
	}
}

// TestEngineErrorPathsMatchSingleShot pins ErrNoHalt and StopAfter
// behavior on reused engines, including reuse after a failed run.
func TestEngineErrorPathsMatchSingleShot(t *testing.T) {
	in := mustInstance(t, graph.Cycle(5))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	if _, err := eng.Run(in, neverHalt{}, nil, RunOptions{MaxRounds: 20}); err == nil {
		t.Fatal("expected ErrNoHalt")
	}
	// The engine must be reusable after an aborted run.
	res, err := eng.Run(in, neverHalt{}, nil, RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", res.Stats.Rounds)
	}
	want, err := RunMessage(in, floodMin{t: 2}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(in, floodMin{t: 2}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	expectSameResult(t, "after aborted run", want, got)
}

// TestPlanBallCacheShared pins that engines of one plan share one ball
// cache (the point of putting it on the Plan).
func TestPlanBallCacheShared(t *testing.T) {
	g := graph.Cycle(12)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	a := plan.ballsFor(2)
	b := plan.ballsFor(2)
	if &a[0] != &b[0] {
		t.Error("ballsFor rebuilt the cache on the second call")
	}
}
