package local

import (
	"fmt"
	"sync"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// Plan is the reusable execution layout for one graph (with its port
// numbering): the CSR-flattened adjacency and reverse-port table that
// every synchronous round needs, plus per-graph caches that depend only on
// the topology — the balls B_G(v,t) by radius (ball-view executions) and
// the BFS distance columns by source (far-from decision evaluation). A
// Plan holds no per-execution state, so it is safe for concurrent use;
// Monte-Carlo harnesses build one Plan per instance and hand each worker
// its own Engine (one trial at a time) or Batch (a vector of trials per
// pass).
type Plan struct {
	g    *graph.Graph
	topo *graph.Topology

	// balls caches the per-node balls by radius and dists the hop-distance
	// columns by BFS source. Both depend only on the graph, never on
	// inputs, identities, or randomness, so the caches are shared by every
	// engine and batch of the plan.
	mu    sync.Mutex
	balls map[int][]*graph.Ball
	dists map[int][]int
}

// NewPlan builds (or fetches, the topology is cached on the graph) the
// execution plan of g. The only failure mode is a hand-rolled asymmetric
// adjacency, which graphs built through the public constructors never
// exhibit.
func NewPlan(g *graph.Graph) (*Plan, error) {
	topo, err := g.Topology()
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	return &Plan{g: g, topo: topo}, nil
}

// MustPlan is NewPlan for graphs known to be well-formed (anything built
// through the public constructors); it panics on the hand-rolled
// asymmetric case NewPlan reports.
func MustPlan(g *graph.Graph) *Plan {
	p, err := NewPlan(g)
	if err != nil {
		panic(err)
	}
	return p
}

// Graph returns the graph the plan was built for.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Run executes a message-passing algorithm with a transient engine; it is
// what the package-level RunMessage delegates to. Callers running many
// executions on the same graph should hold an Engine instead.
func (p *Plan) Run(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	return p.NewEngine().Run(in, algo, draw, opts)
}

// ballsFor returns the cached per-node balls of the given radius,
// extracting them on first use.
func (p *Plan) ballsFor(radius int) []*graph.Ball {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.balls[radius]; ok {
		return b
	}
	n := p.g.N()
	balls := make([]*graph.Ball, n)
	parallelFor(n, func(v int) { balls[v] = p.g.BallAround(v, radius) })
	if p.balls == nil {
		p.balls = make(map[int][]*graph.Ball)
	}
	p.balls[radius] = balls
	return balls
}

// DistFrom returns the hop distances from source u (graph.BFSFrom),
// computed on first use and cached for the plan's lifetime. Distances
// depend only on (graph, source), so — like the ball cache — the column
// is shared by every engine and batch of the plan; far-from decision
// loops that evaluate thousands of trials against one source pay the BFS
// once. The returned slice is cache-owned: callers must not modify it.
func (p *Plan) DistFrom(u int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.dists[u]; ok {
		return d
	}
	d := p.g.BFSFrom(u)
	if p.dists == nil {
		p.dists = make(map[int][]int)
	}
	p.dists[u] = d
	return d
}

// Engine executes algorithms on one Plan while reusing all per-execution
// scratch: the double-buffered send/receive message slabs (one directed
// edge slot each), the per-node done flags and process table, the random
// tape slab, and — for ball-view executions — the assembled per-node
// views. Steady-state reuse eliminates the O(n + m) allocations that a
// fresh run performs every round, which is what makes Monte-Carlo trial
// loops allocation-free outside the algorithm's own state.
//
// An Engine is exactly the one-lane case of a Batch: both run the same
// structure-of-arrays core (see batch.go), an Engine simply fixes the
// batch width at 1 and unwraps the single lane. Trial loops that run many
// draws on one graph should hold a Batch instead and hand it a vector of
// draws per pass.
//
// An Engine is NOT safe for concurrent use: it is one worker's private
// scratch. Concurrency comes from running one Engine per worker on a
// shared Plan.
type Engine struct {
	bt      Batch
	drawBuf [1]localrand.Draw
	diBuf   [1]*lang.DecisionInstance
	ptrBuf  [1]*Result
}

// NewEngine returns a fresh engine of the plan. Slabs are allocated
// lazily on first use, so view-only engines never pay for message slabs
// and vice versa.
func (p *Plan) NewEngine() *Engine { return &Engine{bt: Batch{plan: p, width: 1}} }

// Plan returns the plan the engine executes on.
func (e *Engine) Plan() *Plan { return e.bt.plan }

// drawsOf stages a single optional draw into the engine's one-lane draw
// buffer (nil stays nil: deterministic execution).
func (e *Engine) drawsOf(draw *localrand.Draw) []localrand.Draw {
	if draw == nil {
		return nil
	}
	e.drawBuf[0] = *draw
	return e.drawBuf[:]
}

// Run executes a message-passing algorithm on an instance over the
// plan's graph. A nil draw yields a deterministic execution; otherwise
// each node's tape is drawn from σ by identity, exactly as RunMessage
// does — outputs and Stats are identical to a single-shot run. Unlike a
// Batch, the Engine gives the Result and its Y table to the caller: both
// are freshly allocated (the trial loop's only two steady-state
// allocations) and stay valid forever, so harnesses may hold results
// across arbitrarily many runs.
func (e *Engine) Run(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	if err := e.bt.checkInstance(in); err != nil {
		return nil, err
	}
	draws := e.drawsOf(draw)
	src := laneSrc{shared: in}
	if draws != nil {
		e.bt.seedTapes(1, draws, &src)
	}
	res := make([]Result, 1)
	if err := e.bt.runVec(src, 1, e.bt.prepareWire(algo), draws, opts, make([][]byte, e.bt.plan.g.N()), res, e.ptrBuf[:]); err != nil {
		return nil, err
	}
	return &res[0], nil
}

// runWithTapes runs with an explicit per-node tape source (nil for
// deterministic executions) addressed by node index; the ball-simulation
// adapter uses it to thread view tapes through. Same caller-owned
// result contract as Run.
func (e *Engine) runWithTapes(in *lang.Instance, algo MessageAlgorithm, tapeOf func(v int) *localrand.Tape, opts RunOptions) (*Result, error) {
	if err := e.bt.checkInstance(in); err != nil {
		return nil, err
	}
	src := laneSrc{shared: in}
	if tapeOf != nil {
		src.tapeFn = func(_, v int) *localrand.Tape { return tapeOf(v) }
	}
	res := make([]Result, 1)
	if err := e.bt.runVec(src, 1, e.bt.prepareWire(algo), nil, opts, make([][]byte, e.bt.plan.g.N()), res, e.ptrBuf[:]); err != nil {
		return nil, err
	}
	return &res[0], nil
}

// RunView executes a ball-view algorithm on every node of an instance
// over the plan's graph, reusing the cached balls and view skeletons
// across calls. The output slice y lives in an engine-owned
// double-buffered arena — valid through the next RunView call,
// overwritten by the one after; everything else — balls, view node
// tables, tape accessors — is reused (only the identity/input pointers
// are refilled), so a trial loop runs allocation-free outside the
// algorithm's own work even when each trial or pipeline stage hands a
// fresh Instance over the same graph. Outputs are identical to
// RunView's.
func (e *Engine) RunView(in *lang.Instance, algo ViewAlgorithm, draw *localrand.Draw) [][]byte {
	if err := e.bt.checkInstance(in); err != nil {
		panic(err.Error())
	}
	return e.bt.runViewVec(in, nil, 1, algo, e.drawsOf(draw))[0]
}

// ForEachDecisionView assembles the radius-t decision views of di over
// the plan's graph and invokes fn at every node on the worker pool,
// exactly as the decide package's Verdicts does with one-shot views.
// Skeletons are cached per radius; only the identity/input/label
// pointers are refilled per call, so trial loops that hand a fresh
// DecisionInstance every trial stay allocation-free. Views are
// engine-owned scratch: they are valid only for the duration of fn and
// must be treated as read-only.
func (e *Engine) ForEachDecisionView(di *lang.DecisionInstance, radius int, draw *localrand.Draw, fn func(v int, view *View)) {
	e.diBuf[0] = di
	defer func() { e.diBuf[0] = nil }() // no-retention: drop the trial's instance
	if err := e.bt.ForEachDecisionViews(e.diBuf[:], radius, e.drawsOf(draw), func(_, v int, view *View) {
		fn(v, view)
	}); err != nil {
		panic(err.Error())
	}
}
