package local

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// Plan is the reusable execution layout for one graph (with its port
// numbering): the CSR-flattened adjacency and reverse-port table that
// every synchronous round needs, plus a per-radius cache of the balls
// B_G(v,t) that ball-view executions need. A Plan holds no per-execution
// state, so it is safe for concurrent use; Monte-Carlo harnesses build
// one Plan per instance and hand each worker its own Engine.
type Plan struct {
	g    *graph.Graph
	topo *graph.Topology

	// balls caches the per-node balls by radius. Balls depend only on
	// (graph, radius), never on inputs, identities, or randomness, so the
	// cache is shared by every engine of the plan.
	mu    sync.Mutex
	balls map[int][]*graph.Ball
}

// NewPlan builds (or fetches, the topology is cached on the graph) the
// execution plan of g. The only failure mode is a hand-rolled asymmetric
// adjacency, which graphs built through the public constructors never
// exhibit.
func NewPlan(g *graph.Graph) (*Plan, error) {
	topo, err := g.Topology()
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	return &Plan{g: g, topo: topo}, nil
}

// MustPlan is NewPlan for graphs known to be well-formed (anything built
// through the public constructors); it panics on the hand-rolled
// asymmetric case NewPlan reports.
func MustPlan(g *graph.Graph) *Plan {
	p, err := NewPlan(g)
	if err != nil {
		panic(err)
	}
	return p
}

// Graph returns the graph the plan was built for.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Run executes a message-passing algorithm with a transient engine; it is
// what the package-level RunMessage delegates to. Callers running many
// executions on the same graph should hold an Engine instead.
func (p *Plan) Run(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	return p.NewEngine().Run(in, algo, draw, opts)
}

// ballsFor returns the cached per-node balls of the given radius,
// extracting them on first use.
func (p *Plan) ballsFor(radius int) []*graph.Ball {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.balls[radius]; ok {
		return b
	}
	n := p.g.N()
	balls := make([]*graph.Ball, n)
	parallelFor(n, func(v int) { balls[v] = p.g.BallAround(v, radius) })
	if p.balls == nil {
		p.balls = make(map[int][]*graph.Ball)
	}
	p.balls[radius] = balls
	return balls
}

// Engine executes algorithms on one Plan while reusing all per-execution
// scratch: the double-buffered send/receive message slabs (one directed
// edge slot each), the per-node done flags and process table, the random
// tape slab, and — for ball-view executions — the assembled per-node
// views. Steady-state reuse eliminates the O(n + m) allocations that a
// fresh run performs every round, which is what makes Monte-Carlo trial
// loops allocation-free outside the algorithm's own state.
//
// An Engine is NOT safe for concurrent use: it is one worker's private
// scratch. Concurrency comes from running one Engine per worker on a
// shared Plan.
type Engine struct {
	plan *Plan

	// Message-passing scratch. sendSlab[s] is the message travelling on
	// directed slot s (node v's port p is slot Offsets[v]+p); delivery is
	// the gather recvSlab[s] = sendSlab[RevSlot[s]].
	sendSlab []Message
	recvSlab []Message
	recvs    [][]Message // per-node windows into recvSlab
	procs    []Process
	done     []bool
	tapes    []localrand.Tape

	// View scratch: skeleton views keyed by radius (like the plan's ball
	// cache), refilled from the instance on every call — trial loops and
	// pipeline stages hand fresh instances per call, but only the
	// identity/input/label pointers change. Construction and decision
	// views differ only in carrying Y, so they share the machinery; the
	// tape closures of both read viewDraw, rebound before every run.
	viewSets  map[int]*viewSet
	dviewSets map[int]*viewSet
	viewDraw  localrand.Draw
}

// viewSet is one radius's cached view skeletons plus the per-node tape
// accessors bound to the engine's current draw.
type viewSet struct {
	views   []View
	tapeFns []func(int) *localrand.Tape
}

// NewEngine returns a fresh engine of the plan. Slabs are allocated
// lazily on first use, so view-only engines never pay for message slabs
// and vice versa.
func (p *Plan) NewEngine() *Engine { return &Engine{plan: p} }

// Run executes a message-passing algorithm on an instance over the
// plan's graph. A nil draw yields a deterministic execution; otherwise
// each node's tape is drawn from σ by identity, exactly as RunMessage
// does — outputs and Stats are identical to a single-shot run.
func (e *Engine) Run(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	var tapeOf func(v int) *localrand.Tape
	if draw != nil {
		d := *draw
		if e.tapes == nil {
			e.tapes = make([]localrand.Tape, e.plan.g.N())
		}
		tapes := e.tapes
		tapeOf = func(v int) *localrand.Tape {
			t := &tapes[v]
			d.TapeInto(t, in.ID[v])
			return t
		}
	}
	return e.runWithTapes(in, algo, tapeOf, opts)
}

// runWithTapes is the engine proper; tapeOf supplies each node's private
// tape (nil for deterministic executions) addressed by node index.
func (e *Engine) runWithTapes(in *lang.Instance, algo MessageAlgorithm, tapeOf func(v int) *localrand.Tape, opts RunOptions) (*Result, error) {
	if in.G != e.plan.g {
		return nil, fmt.Errorf("local: instance graph %v is not the engine's plan graph %v", in.G, e.plan.g)
	}
	topo := e.plan.topo
	n := e.plan.g.N()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 64
	}
	if opts.StopAfter > 0 {
		maxRounds = opts.StopAfter
	}
	e.ensureMessageState()
	// Drop references into algorithm state when the run ends — on the
	// error paths too — so a pooled engine never keeps a previous
	// execution's processes and messages alive.
	defer func() {
		clear(e.procs)
		clear(e.sendSlab)
		clear(e.recvSlab)
	}()

	procs, done := e.procs, e.done
	var messages atomic.Int64

	parallelFor(n, func(v int) {
		done[v] = false
		procs[v] = algo.NewProcess()
		info := NodeInfo{
			ID:     in.ID[v],
			Degree: topo.Degree(v),
			Input:  in.X[v],
		}
		if tapeOf != nil {
			info.Tape = tapeOf(v)
		}
		e.stageSend(v, procs[v].Start(info))
	})

	rounds := 0
	for round := 1; opts.StopAfter == 0 || round <= opts.StopAfter; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("%w: %d rounds on %d nodes", ErrNoHalt, maxRounds, n)
		}
		// Deliver: the message v sent on port p arrives across the edge at
		// the reverse slot, so receiving is one gather over RevSlot.
		parallelFor(n, func(v int) {
			lo, hi := topo.Slots(v)
			delivered := 0
			for s := lo; s < hi; s++ {
				m := e.sendSlab[topo.RevSlot[s]]
				e.recvSlab[s] = m
				if m != nil {
					delivered++
				}
			}
			if delivered > 0 {
				messages.Add(int64(delivered))
			}
		})
		rounds = round

		parallelFor(n, func(v int) {
			if done[v] {
				e.stageSend(v, nil)
				return
			}
			out, fin := procs[v].Step(round, e.recvs[v])
			e.stageSend(v, out)
			done[v] = fin
		})
		allDone := true
		for v := 0; v < n; v++ {
			if !done[v] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}

	y := make([][]byte, n)
	parallelFor(n, func(v int) { y[v] = procs[v].Output() })
	return &Result{Y: y, Stats: Stats{Rounds: rounds, Messages: messages.Load()}}, nil
}

// ensureMessageState allocates the round-loop slabs on first use.
func (e *Engine) ensureMessageState() {
	if e.procs != nil {
		return
	}
	n := e.plan.g.N()
	slots := e.plan.topo.NumSlots()
	e.sendSlab = make([]Message, slots)
	e.recvSlab = make([]Message, slots)
	e.recvs = make([][]Message, n)
	for v := 0; v < n; v++ {
		lo, hi := e.plan.topo.Slots(v)
		e.recvs[v] = e.recvSlab[lo:hi:hi]
	}
	e.procs = make([]Process, n)
	e.done = make([]bool, n)
}

// stageSend copies a process's outgoing messages into node v's send
// slots, padding (or truncating) to the node's degree like the engine
// always has.
func (e *Engine) stageSend(v int, out []Message) {
	lo, hi := e.plan.topo.Slots(v)
	k := copy(e.sendSlab[lo:hi], out)
	clear(e.sendSlab[lo+k : hi])
}

// RunView executes a ball-view algorithm on every node of an instance
// over the plan's graph, reusing the cached balls and view skeletons
// across calls. The output slice y is fresh on every call; everything
// else — balls, view node tables, tape accessors — is reused (only the
// identity/input pointers are refilled), so a trial loop runs
// allocation-free outside the algorithm's own work even when each trial
// or pipeline stage hands a fresh Instance over the same graph. Outputs
// are identical to RunView's.
func (e *Engine) RunView(in *lang.Instance, algo ViewAlgorithm, draw *localrand.Draw) [][]byte {
	if in.G != e.plan.g {
		panic(fmt.Sprintf("local: instance graph %v is not the engine's plan graph %v", in.G, e.plan.g))
	}
	vs := e.viewSetFor(algo.Radius(), false)
	y := make([][]byte, len(vs.views))
	e.forEachView(vs, in.ID, in.X, nil, draw, func(v int, view *View) {
		y[v] = algo.Output(view)
	})
	return y
}

// ForEachDecisionView assembles the radius-t decision views of di over
// the plan's graph and invokes fn at every node on the worker pool,
// exactly as the decide package's Verdicts does with one-shot views.
// Skeletons are cached per radius; only the identity/input/label
// pointers are refilled per call, so trial loops that hand a fresh
// DecisionInstance every trial stay allocation-free. Views are
// engine-owned scratch: they are valid only for the duration of fn and
// must be treated as read-only.
func (e *Engine) ForEachDecisionView(di *lang.DecisionInstance, radius int, draw *localrand.Draw, fn func(v int, view *View)) {
	if di.G != e.plan.g {
		panic(fmt.Sprintf("local: decision instance graph %v is not the engine's plan graph %v", di.G, e.plan.g))
	}
	e.forEachView(e.viewSetFor(radius, true), di.ID, di.X, di.Y, draw, fn)
}

// viewSetFor returns the cached view skeletons of the given radius,
// building them on first use. Decision views additionally carry the
// candidate-output column Y.
func (e *Engine) viewSetFor(radius int, decision bool) *viewSet {
	cache := &e.viewSets
	if decision {
		cache = &e.dviewSets
	}
	if *cache == nil {
		*cache = make(map[int]*viewSet)
	}
	if vs, ok := (*cache)[radius]; ok {
		return vs
	}
	balls := e.plan.ballsFor(radius)
	vs := &viewSet{
		views:   make([]View, len(balls)),
		tapeFns: make([]func(int) *localrand.Tape, len(balls)),
	}
	for v, b := range balls {
		view := &vs.views[v]
		view.Ball = b
		view.IDs = make([]int64, b.Size())
		view.X = make([][]byte, b.Size())
		if decision {
			view.Y = make([][]byte, b.Size())
		}
		ids := view.IDs
		vs.tapeFns[v] = func(local int) *localrand.Tape {
			return e.viewDraw.Tape(ids[local])
		}
	}
	(*cache)[radius] = vs
	return vs
}

// forEachView refills the skeleton views from (id, x, y) — y is nil for
// construction views — binds the tape accessors to draw, and invokes fn
// at every node on the worker pool. The instance's data pointers are
// released when the run ends, matching the message path's no-retention
// invariant for pooled engines.
func (e *Engine) forEachView(vs *viewSet, id []int64, x, y [][]byte, draw *localrand.Draw, fn func(v int, view *View)) {
	if draw != nil {
		e.viewDraw = *draw
	}
	defer func() {
		for v := range vs.views {
			view := &vs.views[v]
			clear(view.X)
			clear(view.Y)
			view.TapeFor = nil
		}
	}()
	parallelFor(len(vs.views), func(v int) {
		view := &vs.views[v]
		for i, u := range view.Ball.Nodes {
			view.IDs[i] = id[u]
			view.X[i] = x[u]
			if y != nil {
				view.Y[i] = y[u]
			}
		}
		if draw != nil {
			view.TapeFor = vs.tapeFns[v]
		} else {
			view.TapeFor = nil
		}
		fn(v, view)
	})
}
