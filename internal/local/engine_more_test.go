package local

import (
	"strings"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
)

// panicker violates its contract in Start.
type panicker struct{}

func (panicker) Name() string { return "panicker" }
func (panicker) NewProcess() Process {
	return &panickerProc{}
}

type panickerProc struct{}

func (p *panickerProc) Start(info NodeInfo) []Message {
	panic("algorithm contract violated")
}
func (p *panickerProc) Step(round int, received []Message) ([]Message, bool) { return nil, true }
func (p *panickerProc) Output() []byte                                       { return nil }

// TestEnginePanicsAreRecoverable pins the worker-pool contract: a panic
// inside a process surfaces on the caller's goroutine where tests (and
// callers) can recover it, instead of crashing the whole program from a
// worker goroutine.
func TestEnginePanicsAreRecoverable(t *testing.T) {
	in := mustInstance(t, graph.Cycle(8))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the algorithm panic to propagate")
		}
		if !strings.Contains(r.(string), "contract violated") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_, _ = RunMessage(in, panicker{}, nil, RunOptions{})
}

func TestParallelForSmallN(t *testing.T) {
	// n smaller than worker count exercises the serial path.
	hits := make([]bool, 2)
	ParallelFor(2, func(i int) { hits[i] = true })
	if !hits[0] || !hits[1] {
		t.Error("ParallelFor skipped indices")
	}
	ParallelFor(0, func(i int) { t.Error("called for n=0") })
}

func TestFullInfoZeroRound(t *testing.T) {
	in := mustInstance(t, graph.Path(5))
	view := ViewFunc{AlgoName: "self", R: 0, F: func(v *View) []byte {
		return []byte{byte(v.IDs[0])}
	}}
	res, err := RunMessage(in, FullInfo(view), nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if len(res.Y[v]) != 1 || res.Y[v][0] != byte(in.ID[v]) {
			t.Errorf("node %d: output %v", v, res.Y[v])
		}
	}
	if res.Stats.Messages != 0 {
		t.Errorf("zero-round run sent %d messages", res.Stats.Messages)
	}
}

func TestMessageStatsCount(t *testing.T) {
	in := mustInstance(t, graph.Cycle(6))
	res, err := RunMessage(in, floodMin{t: 2}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every node sends both ports for 2 rounds of delivery: the Start
	// sends (delivered in round 1) plus round-1 sends (delivered in round
	// 2): 6 nodes × 2 ports × 2 deliveries.
	if res.Stats.Messages != 24 {
		t.Errorf("messages = %d, want 24", res.Stats.Messages)
	}
}

func TestRunMessageRejectsNilGraphInstance(t *testing.T) {
	// Structural misuse should fail loudly, not hang: a 0-node instance
	// completes immediately.
	in := &lang.Instance{G: mustInstance(t, graph.Path(1)).G, X: lang.EmptyInputs(1), ID: []int64{1}}
	res, err := RunMessage(in, floodMin{t: 0}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Y) != 1 {
		t.Error("single-node run lost its output")
	}
}
