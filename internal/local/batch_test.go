package local

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// drawRange returns draws lo..lo+k-1 of the space, the addressing the
// Monte-Carlo harness uses for a contiguous trial chunk.
func drawRange(space *localrand.TapeSpace, lo, k int) []localrand.Draw {
	out := make([]localrand.Draw, k)
	for i := range out {
		out[i] = space.Draw(uint64(lo + i))
	}
	return out
}

// TestBatchMatchesPooledMessage pins the tentpole equivalence contract
// for the message path: every lane of a Batch.Run — full batches, ragged
// tails, and back-to-back reuse of one Batch — produces byte-identical
// outputs and identical Stats to a pooled Engine run and a single-shot
// run at the same draw, on every graph family.
func TestBatchMatchesPooledMessage(t *testing.T) {
	const width = 4
	space := localrand.NewTapeSpace(71)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			bt := plan.NewBatch(width)
			eng := plan.NewEngine()
			algo := tapeXOR{rounds: 3}

			// Back-to-back runs on one Batch: a full batch, then a ragged
			// tail (trials % width != 0), then a full batch again.
			lo := 0
			for rep, k := range []int{width, width - 1, width} {
				draws := drawRange(space, lo, k)
				results, err := bt.Run(in, algo, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != k {
					t.Fatalf("rep %d: %d results for %d lanes", rep, len(results), k)
				}
				for b := 0; b < k; b++ {
					want, err := eng.Run(in, algo, &draws[b], RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					expectSameResult(t, fmt.Sprintf("rep %d lane %d vs pooled", rep, b), want, results[b])
					single, err := RunMessage(in, algo, &draws[b], RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					expectSameResult(t, fmt.Sprintf("rep %d lane %d vs single-shot", rep, b), single, results[b])
				}
				lo += k
			}

			// Deterministic lanes (nil draws) through RunInstances.
			ins := []*lang.Instance{in, in, in}
			results, err := bt.RunInstances(ins, floodMin{t: 2}, nil, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunMessage(in, floodMin{t: 2}, nil, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for b := range results {
				expectSameResult(t, fmt.Sprintf("deterministic lane %d", b), want, results[b])
			}
		})
	}
}

// TestBatchPartialWidthMatrix sweeps the slot-major kernel's ragged
// widths: k ∈ {1, 3, B-1, B} lanes on a width-B batch, across every
// graph family and both transports (legacy boxed tapeXOR, wire-native
// wireMix), every lane byte-identical to a pooled Engine run at the
// same draw. Partial widths are where a slot-major kernel can first go
// wrong — the contiguous lens clears and dense cut copies span all B
// lanes of a slot while only k are live — so the matrix pins that dead
// lanes neither leak into live ones nor shift their bytes.
func TestBatchPartialWidthMatrix(t *testing.T) {
	const width = 8
	space := localrand.NewTapeSpace(73)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			bt := plan.NewBatch(width)
			eng := plan.NewEngine()
			lo := 0
			for _, algo := range []MessageAlgorithm{tapeXOR{rounds: 3}, wireMix{rounds: 4}} {
				for _, k := range []int{1, 3, width - 1, width} {
					draws := drawRange(space, lo, k)
					lo += k
					results, err := bt.Run(in, algo, draws, RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if len(results) != k {
						t.Fatalf("%s k=%d: %d results", algo.Name(), k, len(results))
					}
					for b := 0; b < k; b++ {
						want, err := eng.Run(in, algo, &draws[b], RunOptions{})
						if err != nil {
							t.Fatal(err)
						}
						expectSameResult(t, fmt.Sprintf("%s k=%d lane %d", algo.Name(), k, b), want, results[b])
					}
				}
			}
		})
	}
}

// TestBatchMatchesPooledView pins the same contract for the ball-view
// path, including a radius switch mid-stream and a deterministic batch.
func TestBatchMatchesPooledView(t *testing.T) {
	const width = 4
	space := localrand.NewTapeSpace(72)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			bt := plan.NewBatch(width)
			eng := plan.NewEngine()

			lo := 0
			for rep, k := range []int{width, 2, width} {
				draws := drawRange(space, lo, k)
				ys, err := bt.RunView(in, tapeSumView{t: 2}, draws)
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < k; b++ {
					want := eng.RunView(in, tapeSumView{t: 2}, &draws[b])
					single := RunView(in, tapeSumView{t: 2}, &draws[b])
					for v := range want {
						if !bytes.Equal(want[v], ys[b][v]) {
							t.Fatalf("rep %d lane %d node %d: %x, want %x (pooled)", rep, b, v, ys[b][v], want[v])
						}
						if !bytes.Equal(single[v], ys[b][v]) {
							t.Fatalf("rep %d lane %d node %d: %x, want %x (single-shot)", rep, b, v, ys[b][v], single[v])
						}
					}
				}
				lo += k
			}

			// Radius switch on the same batch, deterministic lanes.
			ys, err := bt.RunViewInstances([]*lang.Instance{in, in}, minIDView{t: 3}, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := RunView(in, minIDView{t: 3}, nil)
			for b := range ys {
				for v := range want {
					if !bytes.Equal(want[v], ys[b][v]) {
						t.Fatalf("radius switch lane %d node %d: %x, want %x", b, v, ys[b][v], want[v])
					}
				}
			}
		})
	}
}

// TestBatchPerLaneInstances pins the pipeline shape: lanes carrying
// different input columns over one graph must match per-lane pooled runs
// on both the message and the ball-view paths.
func TestBatchPerLaneInstances(t *testing.T) {
	g := graph.Cycle(20)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	base := mustInstance(t, g)
	ins := make([]*lang.Instance, 3)
	for b := range ins {
		x := make([][]byte, g.N())
		for v := range x {
			x[v] = []byte{byte(b*31 + v)}
		}
		ins[b] = &lang.Instance{G: g, X: x, ID: base.ID}
	}
	space := localrand.NewTapeSpace(5)
	draws := drawRange(space, 0, len(ins))

	bt := plan.NewBatch(4)
	eng := plan.NewEngine()

	// Message path: xorInput reads the lane's input column.
	results, err := bt.RunInstances(ins, tapeXOR{rounds: 2}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range ins {
		want, err := eng.Run(ins[b], tapeXOR{rounds: 2}, &draws[b], RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		expectSameResult(t, fmt.Sprintf("message lane %d", b), want, results[b])
	}

	// View path: a view algorithm reading inputs.
	sumX := ViewFunc{AlgoName: "sum-x", R: 1, F: func(v *View) []byte {
		var s byte
		for i := range v.X {
			if len(v.X[i]) > 0 {
				s += v.X[i][0]
			}
		}
		return []byte{s}
	}}
	ys, err := bt.RunViewInstances(ins, sumX, draws)
	if err != nil {
		t.Fatal(err)
	}
	for b := range ins {
		want := eng.RunView(ins[b], sumX, &draws[b])
		for v := range want {
			if !bytes.Equal(want[v], ys[b][v]) {
				t.Fatalf("view lane %d node %d: %x, want %x", b, v, ys[b][v], want[v])
			}
		}
	}
}

// TestBatchValidation pins the batch's argument contract: width >= 1,
// lane counts within capacity, draw/lane agreement, and the plan/instance
// pairing.
func TestBatchValidation(t *testing.T) {
	g := graph.Cycle(6)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	foreign := mustInstance(t, graph.Cycle(6))
	space := localrand.NewTapeSpace(1)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBatch(0) did not panic")
			}
		}()
		plan.NewBatch(0)
	}()

	bt := plan.NewBatch(2)
	if _, err := bt.Run(in, floodMin{t: 1}, drawRange(space, 0, 3), RunOptions{}); err == nil {
		t.Error("batch accepted more lanes than its width")
	}
	if _, err := bt.Run(in, floodMin{t: 1}, nil, RunOptions{}); err == nil {
		t.Error("batch accepted zero lanes")
	}
	if _, err := bt.Run(foreign, floodMin{t: 1}, drawRange(space, 0, 1), RunOptions{}); err == nil {
		t.Error("batch accepted an instance over a foreign graph")
	}
	if _, err := bt.RunInstances([]*lang.Instance{in, in}, floodMin{t: 1}, drawRange(space, 0, 1), RunOptions{}); err == nil {
		t.Error("batch accepted mismatched draw/lane counts")
	}
	if _, err := bt.RunView(foreign, minIDView{t: 1}, drawRange(space, 0, 1)); err == nil {
		t.Error("batched view run accepted a foreign instance")
	}
}

// TestBatchErrorPaths pins ErrNoHalt and StopAfter behavior on batches,
// including reuse after a failed run — the engine's error contract, lane
// by lane.
func TestBatchErrorPaths(t *testing.T) {
	in := mustInstance(t, graph.Cycle(5))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(9)
	bt := plan.NewBatch(3)
	if _, err := bt.Run(in, neverHalt{}, drawRange(space, 0, 3), RunOptions{MaxRounds: 20}); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("expected ErrNoHalt, got %v", err)
	}
	// The batch must be reusable after an aborted run.
	results, err := bt.Run(in, neverHalt{}, drawRange(space, 0, 2), RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	for b, r := range results {
		if r.Stats.Rounds != 7 {
			t.Errorf("lane %d rounds = %d, want 7", b, r.Stats.Rounds)
		}
	}
	draws := drawRange(space, 10, 2)
	results, err = bt.Run(in, tapeXOR{rounds: 2}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range results {
		want, err := RunMessage(in, tapeXOR{rounds: 2}, &draws[b], RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		expectSameResult(t, fmt.Sprintf("after aborted run lane %d", b), want, results[b])
	}
}

// TestPlanDistFromCached pins that the distance columns are cached on the
// plan (the point of moving BFS out of the far-from trial loops) and
// match graph.BFSFrom.
func TestPlanDistFromCached(t *testing.T) {
	g := graph.Grid(4, 5)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFSFrom(3)
	got := plan.DistFrom(3)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("DistFrom(3)[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	again := plan.DistFrom(3)
	if &again[0] != &got[0] {
		t.Error("DistFrom rebuilt the column on the second call")
	}
}

// TestBatchMessageBlocking pins lane-vector splitting: on a graph large
// enough that the slab budget caps a pass below the requested lane count,
// results must still be per-lane identical to pooled runs (the blocks are
// stitched in lane order).
func TestBatchMessageBlocking(t *testing.T) {
	g := graph.Cycle(1200) // 2400 slots: a 4-lane vector needs 2+ passes
	in := mustInstance(t, g)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	bt := plan.NewBatch(4)
	if lanes := bt.msgLanesFor(tapeXOR{rounds: 3}); lanes >= 4 {
		t.Fatalf("fixture too small: block %d does not split 4 lanes", lanes)
	}
	eng := plan.NewEngine()
	space := localrand.NewTapeSpace(44)
	draws := drawRange(space, 0, 4)
	results, err := bt.Run(in, tapeXOR{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for b := range draws {
		want, err := eng.Run(in, tapeXOR{rounds: 3}, &draws[b], RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		expectSameResult(t, fmt.Sprintf("blocked lane %d", b), want, results[b])
	}
}
