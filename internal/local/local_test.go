package local

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

func mustInstance(t testing.TB, g *graph.Graph) *lang.Instance {
	t.Helper()
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), ids.RandomPerm(g.N(), 99))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// minIDView outputs the minimum identity in the radius-t ball, encoded in
// 8 bytes. It reads only ball membership, never port order, so it is safe
// for the reconstruction-equivalence tests.
type minIDView struct{ t int }

func (m minIDView) Name() string { return fmt.Sprintf("min-id-view(%d)", m.t) }
func (m minIDView) Radius() int  { return m.t }
func (m minIDView) Output(v *View) []byte {
	min := v.IDs[0]
	for _, id := range v.IDs {
		if id < min {
			min = id
		}
	}
	return encode64(min)
}

func encode64(x int64) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(x >> (8 * i))
	}
	return out
}

// ballSummaryView produces an order-insensitive fingerprint of the view:
// the sorted (distance, id) pairs and the sorted edge list by identity.
// It exercises structure reconstruction without depending on frontier
// port numbering.
type ballSummaryView struct{ t int }

func (b ballSummaryView) Name() string { return "ball-summary" }
func (b ballSummaryView) Radius() int  { return b.t }
func (b ballSummaryView) Output(v *View) []byte {
	var parts []string
	for i := range v.IDs {
		parts = append(parts, fmt.Sprintf("n%d@%d", v.IDs[i], v.Ball.Dist[i]))
	}
	sort.Strings(parts)
	var edges []string
	for _, e := range v.Ball.G.Edges() {
		a, bID := v.IDs[e[0]], v.IDs[e[1]]
		if a > bID {
			a, bID = bID, a
		}
		edges = append(edges, fmt.Sprintf("e%d-%d", a, bID))
	}
	sort.Strings(edges)
	return []byte(fmt.Sprintf("%v|%v", parts, edges))
}

// tapeSumView sums the first tape word of every ball node, testing that
// random bits are shipped correctly by the full-information adapter.
type tapeSumView struct{ t int }

func (s tapeSumView) Name() string { return "tape-sum" }
func (s tapeSumView) Radius() int  { return s.t }
func (s tapeSumView) Output(v *View) []byte {
	var sum uint64
	for i := range v.IDs {
		sum += v.TapeFor(i).Uint64()
	}
	return encode64(int64(sum))
}

// floodMin is a message-passing algorithm: flood identities for t rounds,
// output the minimum seen. After t rounds the minimum ranges exactly over
// the radius-t ball.
type floodMin struct{ t int }

func (f floodMin) Name() string { return fmt.Sprintf("flood-min(%d)", f.t) }
func (f floodMin) NewProcess() Process {
	return &floodMinProc{t: f.t}
}

type floodMinProc struct {
	t   int
	min int64
}

func (p *floodMinProc) Start(info NodeInfo) []Message {
	p.min = info.ID
	if p.t == 0 {
		return nil
	}
	out := make([]Message, info.Degree)
	for i := range out {
		out[i] = p.min
	}
	return out
}

func (p *floodMinProc) Step(round int, received []Message) ([]Message, bool) {
	for _, m := range received {
		if m == nil {
			continue
		}
		if id := m.(int64); id < p.min {
			p.min = id
		}
	}
	if round >= p.t {
		return nil, true
	}
	out := make([]Message, len(received))
	for i := range out {
		out[i] = p.min
	}
	return out, false
}

func (p *floodMinProc) Output() []byte { return encode64(p.min) }

func TestRunViewMinID(t *testing.T) {
	g := graph.Cycle(8)
	in := mustInstance(t, g)
	y := RunView(in, minIDView{t: 2}, nil)
	for v := 0; v < g.N(); v++ {
		want := in.ID[v]
		nodes, _ := g.NodesWithin(v, 2)
		for _, u := range nodes {
			if in.ID[u] < want {
				want = in.ID[u]
			}
		}
		if !bytes.Equal(y[v], encode64(want)) {
			t.Errorf("node %d: wrong min", v)
		}
	}
}

func TestRunMessageFloodMin(t *testing.T) {
	g := graph.Path(10)
	in := mustInstance(t, g)
	res, err := RunMessage(in, floodMin{t: 3}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Stats.Rounds)
	}
	if res.Stats.Messages == 0 {
		t.Error("no messages recorded")
	}
	y := RunView(in, minIDView{t: 3}, nil)
	for v := range y {
		if !bytes.Equal(res.Y[v], y[v]) {
			t.Errorf("node %d: message %x vs view %x", v, res.Y[v], y[v])
		}
	}
}

func TestRunMessageDeterministic(t *testing.T) {
	g, err := graph.ConnectedGNP(40, 0.15, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	r1, err1 := RunMessage(in, floodMin{t: 4}, nil, RunOptions{})
	r2, err2 := RunMessage(in, floodMin{t: 4}, nil, RunOptions{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := range r1.Y {
		if !bytes.Equal(r1.Y[v], r2.Y[v]) {
			t.Fatalf("node %d: outputs differ across runs", v)
		}
	}
}

// neverHalt keeps sending forever.
type neverHalt struct{}

func (neverHalt) Name() string { return "never-halt" }
func (neverHalt) NewProcess() Process {
	return &neverHaltProc{}
}

type neverHaltProc struct{}

func (p *neverHaltProc) Start(info NodeInfo) []Message {
	return make([]Message, info.Degree)
}
func (p *neverHaltProc) Step(round int, received []Message) ([]Message, bool) {
	return make([]Message, len(received)), false
}
func (p *neverHaltProc) Output() []byte { return nil }

func TestRunMessageNoHalt(t *testing.T) {
	in := mustInstance(t, graph.Cycle(5))
	_, err := RunMessage(in, neverHalt{}, nil, RunOptions{MaxRounds: 20})
	if !errors.Is(err, ErrNoHalt) {
		t.Errorf("want ErrNoHalt, got %v", err)
	}
}

func TestStopAfter(t *testing.T) {
	in := mustInstance(t, graph.Cycle(5))
	res, err := RunMessage(in, neverHalt{}, nil, RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", res.Stats.Rounds)
	}
}

func TestFullInfoEquivalenceDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		t    int
	}{
		{"cycle-r0", graph.Cycle(7), 0},
		{"cycle-r1", graph.Cycle(7), 1},
		{"cycle-r2", graph.Cycle(9), 2},
		{"path-r3", graph.Path(12), 3},
		{"grid-r2", graph.Grid(4, 5), 2},
		{"tree-r2", graph.CompleteTree(3, 3), 2},
		{"petersen-r2", Petersen(), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := mustInstance(t, tc.g)
			view := ballSummaryView{t: tc.t}
			want := RunView(in, view, nil)
			res, err := RunMessage(in, FullInfo(view), nil, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if tc.t > 0 && res.Stats.Rounds != tc.t {
				t.Errorf("full-info rounds = %d, want %d", res.Stats.Rounds, tc.t)
			}
			for v := range want {
				if !bytes.Equal(res.Y[v], want[v]) {
					t.Errorf("node %d:\n message: %s\n view:    %s", v, res.Y[v], want[v])
				}
			}
		})
	}
}

// Petersen is re-exported for table entries.
func Petersen() *graph.Graph { return graph.Petersen() }

func TestFullInfoEquivalenceRandomized(t *testing.T) {
	in := mustInstance(t, graph.Cycle(9))
	draw := localrand.NewTapeSpace(5).Draw(0)
	view := tapeSumView{t: 2}
	want := RunView(in, view, &draw)
	res, err := RunMessage(in, FullInfo(view), &draw, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if !bytes.Equal(res.Y[v], want[v]) {
			t.Errorf("node %d: tape sums differ between view and message run", v)
		}
	}
}

func TestMessageAsViewEquivalence(t *testing.T) {
	for _, rounds := range []int{0, 1, 2, 3} {
		g := graph.Cycle(10)
		in := mustInstance(t, g)
		direct, err := RunMessage(in, floodMin{t: rounds}, nil, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sim := RunView(in, MessageAsView(floodMin{t: rounds}, rounds), nil)
		for v := range sim {
			if !bytes.Equal(direct.Y[v], sim[v]) {
				t.Errorf("rounds=%d node %d: direct %x vs simulated %x", rounds, v, direct.Y[v], sim[v])
			}
		}
	}
}

func TestDecisionViewCarriesOutputs(t *testing.T) {
	g := graph.Path(4)
	in := mustInstance(t, g)
	y := [][]byte{{1}, {2}, {3}, {4}}
	di, err := in.WithOutput(y)
	if err != nil {
		t.Fatal(err)
	}
	v := DecisionView(di, 1, 1, nil)
	if v.Y == nil {
		t.Fatal("decision view lost outputs")
	}
	if !bytes.Equal(v.Y[0], []byte{2}) {
		t.Errorf("center output = %v, want [2]", v.Y[0])
	}
	if v.Tape() != nil {
		t.Error("deterministic view has a tape")
	}
}

func TestConstructionViewTapesAddressedByID(t *testing.T) {
	g := graph.Path(3)
	in := mustInstance(t, g)
	draw := localrand.NewTapeSpace(1).Draw(7)
	// The same node must present the same first tape word in views built
	// around different centers (the multiset-of-strings model of §3).
	v0 := ConstructionView(in, 0, 2, &draw)
	v2 := ConstructionView(in, 2, 2, &draw)
	var at0, at2 uint64
	for i, id := range v0.IDs {
		if id == in.ID[1] {
			at0 = v0.TapeFor(i).Uint64()
		}
	}
	for i, id := range v2.IDs {
		if id == in.ID[1] {
			at2 = v2.TapeFor(i).Uint64()
		}
	}
	if at0 != at2 || at0 == 0 {
		t.Errorf("node 1 tape differs across views: %d vs %d", at0, at2)
	}
}

func TestViewFunc(t *testing.T) {
	f := ViewFunc{AlgoName: "const", R: 1, F: func(v *View) []byte { return []byte{9} }}
	if f.Name() != "const" || f.Radius() != 1 {
		t.Error("ViewFunc accessors wrong")
	}
	in := mustInstance(t, graph.Path(3))
	y := RunView(in, f, nil)
	if !bytes.Equal(y[1], []byte{9}) {
		t.Error("ViewFunc output wrong")
	}
}

// Property: full-information reconstruction equals the omniscient ball on
// random connected graphs for the order-insensitive summary.
func TestFullInfoEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawT uint8) bool {
		n := int(rawN%20) + 4
		radius := int(rawT % 4)
		g, err := graph.ConnectedGNP(n, 0.25, seed)
		if err != nil {
			return true
		}
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.RandomPerm(n, seed))
		if err != nil {
			return false
		}
		view := ballSummaryView{t: radius}
		want := RunView(in, view, nil)
		res, err := RunMessage(in, FullInfo(view), nil, RunOptions{})
		if err != nil {
			return false
		}
		for v := range want {
			if !bytes.Equal(res.Y[v], want[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
