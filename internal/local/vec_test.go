package local

import (
	"fmt"
	"testing"

	"rlnc/internal/localrand"
)

// vecMix is the lane-vectorized companion of wireMix: a wire algorithm
// implementing VecAlgorithm whose scalar and vector steppings must agree
// byte for byte. Each round a node folds every port's payload into its
// state (missing messages perturb it, so drop faults change the bytes),
// draws one tape word (so tape cursors advance identically on both
// paths), and alternates between one-word broadcasts and pure signals;
// lanes finish at the round bound or early when the folded state hits a
// sentinel residue, so the lane vector diverges mid-run and the done-row
// skipping of the vector path is exercised on every graph.
type vecMix struct{ rounds int }

func (a vecMix) Name() string                { return fmt.Sprintf("vec-mix(%d)", a.rounds) }
func (a vecMix) MsgWords(int) int            { return 2 }
func (a vecMix) NewProcess() Process         { return NewLegacyProcess(a) }
func (a vecMix) NewWireProcess() WireProcess { return &vecMixProc{rounds: a.rounds} }
func (a vecMix) NewVecProcess() VecProcess   { return &vecMixVec{rounds: a.rounds} }

// vecMixProc is the scalar reference stepping of vecMix.
type vecMixProc struct {
	rounds int
	tape   *localrand.Tape
	state  uint64
}

func (p *vecMixProc) ResetProcess() { *p = vecMixProc{rounds: p.rounds} }

func (p *vecMixProc) Start(info NodeInfo, out *Outbox) {
	p.state = uint64(info.ID) * 0x9e3779b97f4a7c15
	p.tape = info.Tape
	if p.tape != nil {
		p.state ^= p.tape.Uint64()
	}
	for port := 0; port < out.Degree(); port++ {
		out.Send(port, p.state)
		out.Append(port, p.state>>7)
	}
}

func (p *vecMixProc) Step(round int, in *Inbox, out *Outbox) bool {
	for port := 0; port < in.Degree(); port++ {
		words, ok := in.Payload(port)
		if !ok {
			p.state = p.state*3 + 1
			continue
		}
		for _, w := range words {
			p.state ^= w + uint64(len(words))
		}
	}
	if p.tape != nil {
		p.state ^= p.tape.Uint64()
	}
	if round >= p.rounds || (round >= 2 && p.state&7 == 0) {
		return true
	}
	if round%2 == 1 {
		out.Broadcast(p.state)
	} else {
		out.SignalAll()
	}
	return false
}

func (p *vecMixProc) Output() []byte { return encode64(int64(p.state)) }

// vecMixVec is vecMixProc across all lanes as struct-of-arrays: the same
// fold, tape draw, halting rule, and send schedule, with the port
// indirection hoisted out of the lane loop.
type vecMixVec struct {
	rounds int
	tapes  []*localrand.Tape
	state  []uint64
	w1     []uint64
	act    []bool
}

func (p *vecMixVec) ResetVec() { clear(p.tapes) }

func (p *vecMixVec) StartVec(info *VecNodeInfo, out *OutboxVec) {
	k := info.Lanes()
	p.tapes = sliceFor(p.tapes, k)
	p.state = sliceFor(p.state, k)
	p.w1 = sliceFor(p.w1, k)
	p.act = sliceFor(p.act, k)
	for b := 0; b < k; b++ {
		t := info.Tape(b)
		p.tapes[b] = t
		s := uint64(info.ID(b)) * 0x9e3779b97f4a7c15
		if t != nil {
			s ^= t.Uint64()
		}
		p.state[b] = s
		p.w1[b] = s >> 7
		p.act[b] = true
	}
	out.BroadcastRow2(p.state, p.w1, p.act)
}

func (p *vecMixVec) StepVec(round int, in *InboxVec, out *OutboxVec, done []bool) {
	k, mask := in.Lanes(), in.Mask()
	act := p.act[:k]
	for b := 0; b < k; b++ {
		act[b] = !done[b] && (mask == nil || !mask[b])
	}
	for port := 0; port < in.Degree(); port++ {
		lens := in.LensRow(port)
		words, stride := in.WordBlock(port)
		for b := 0; b < k; b++ {
			if !act[b] {
				continue
			}
			l := int(lens[b])
			if l == 0 {
				p.state[b] = p.state[b]*3 + 1
				continue
			}
			n := l - 1
			for _, w := range words[b*stride : b*stride+n] {
				p.state[b] ^= w + uint64(n)
			}
		}
	}
	for b := 0; b < k; b++ {
		if !act[b] {
			continue
		}
		if p.tapes[b] != nil {
			p.state[b] ^= p.tapes[b].Uint64()
		}
		if round >= p.rounds || (round >= 2 && p.state[b]&7 == 0) {
			done[b] = true
			act[b] = false
		}
	}
	if round%2 == 1 {
		out.BroadcastRow(p.state, act)
	} else {
		out.SignalRow(act)
	}
}

func (p *vecMixVec) OutputVec(b int) []byte { return encode64(int64(p.state[b])) }

// TestVecMatchesScalar pins the tentpole contract of the vector path in
// the package that owns it: on every graph family, a batch stepping
// vecMix through its VecProcess must reproduce the ScalarOnly reference
// — the same algorithm stripped of the vector extension — byte for byte,
// outputs and Stats, at widths 1 (the scalar fallback), 2, and 5, on
// full and ragged lane vectors, under nil, zero, and lossy fault plans,
// on reused executors back to back.
func TestVecMatchesScalar(t *testing.T) {
	space := localrand.NewTapeSpace(57)
	plans := []struct {
		name string
		fp   *FaultPlan
	}{
		{"none", nil},
		{"zero", &FaultPlan{Seed: 5}},
		{"faulty", &FaultPlan{Seed: 19, Drop: 0.15, Delay: 0.1, CrashP: 0.05, CrashFrom: 2}},
		{"crash-recover", &FaultPlan{Seed: 29, Drop: 0.1, CrashP: 0.1, CrashFrom: 1, CrashUntil: 3}},
	}
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan := MustPlan(g)
			algo := vecMix{rounds: 6}
			lo := 0
			for _, width := range []int{1, 2, 5} {
				vecBt := plan.NewBatch(width)
				sclBt := plan.NewBatch(width)
				for _, k := range []int{1, width} {
					for _, pl := range plans {
						draws := drawRange(space, lo, k)
						lo += k
						opts := RunOptions{Fault: pl.fp}
						want, wantErr := sclBt.Run(in, ScalarOnly(algo), draws, opts)
						got, gotErr := vecBt.Run(in, algo, draws, opts)
						label := fmt.Sprintf("width %d k %d plan %s", width, k, pl.name)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: vec error %v, scalar %v", label, gotErr, wantErr)
						}
						if wantErr != nil {
							continue
						}
						for b := 0; b < k; b++ {
							expectSameResult(t, fmt.Sprintf("%s lane %d", label, b), want[b], got[b])
						}
					}
				}
				if width > 1 && vecBt.vecAlgo == nil {
					t.Fatalf("width %d: vector path not armed for a VecAlgorithm", width)
				}
				if sclBt.vecAlgo != nil {
					t.Fatalf("width %d: ScalarOnly failed to strip the vector path", width)
				}
			}
		})
	}
}

// TestVecSharded pins the vector path under the sharded orchestrator:
// a sharded run of a VecAlgorithm (whose shard batches step vectorized)
// must reproduce the unsharded ScalarOnly batch byte for byte — cut
// exchange, windowed rev tables, and per-shard collection included.
func TestVecSharded(t *testing.T) {
	space := localrand.NewTapeSpace(61)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan := MustPlan(g)
			algo := vecMix{rounds: 5}
			const width = 3
			sclBt := plan.NewBatch(width)
			for _, shards := range []int{2, 3} {
				sh, err := plan.NewSharded(width, shards)
				if err != nil {
					t.Fatal(err)
				}
				for rep, k := range []int{width, width - 1} {
					draws := drawRange(space, rep*width, k)
					want, err := sclBt.Run(in, ScalarOnly(algo), draws, RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Run(in, algo, draws, RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					for b := 0; b < k; b++ {
						expectSameResult(t, fmt.Sprintf("shards %d rep %d lane %d", shards, rep, b), want[b], got[b])
					}
				}
			}
		})
	}
}
