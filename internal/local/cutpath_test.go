package local

import (
	"strings"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// benchCutFixture builds a warm two-shard split of a random-regular
// graph: one clean run sizes the slabs and computes the cut layout, so
// the benchmarks below measure the steady-state pack and install, not
// first-run growth. The orchestrator chops wide runs into lane blocks
// (the shards' slab budget), so the per-exchange lane count is the
// shard batch's block, not the run width — kOf picks the benchmark's k
// from that block after the warm run.
func benchCutFixture(b *testing.B, kOf func(block int) int) (*Sharded, int) {
	b.Helper()
	g, err := graph.RandomRegular(512, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	in := mustInstance(b, g)
	sh, err := MustPlan(g).NewSharded(32, 2)
	if err != nil {
		b.Fatal(err)
	}
	space := localrand.NewTapeSpace(29)
	if _, err := sh.Run(in, wireMix{rounds: 2}, drawRange(space, 0, 32), RunOptions{}); err != nil {
		b.Fatal(err)
	}
	k := kOf(sh.shards[0].bt.block)
	if k < 1 {
		b.Skipf("shard lane block %d too small for this variant", sh.shards[0].bt.block)
	}
	return sh, k
}

// cutCases is the full/partial split the cut benchmarks sweep: "full"
// runs at k == B, the dense fast path (maximal consecutive-slot runs
// collapse to one lens and one word copy); "partial" at k < B, the
// per-slot strided path.
var cutCases = []struct {
	name string
	kOf  func(block int) int
}{
	{"full", func(block int) int { return block }},
	{"partial", func(block int) int { return block / 2 }},
}

// BenchmarkCutPack measures packCut flattening one peer's cut slots out
// of the current send slabs.
func BenchmarkCutPack(b *testing.B) {
	for _, bc := range cutCases {
		b.Run(bc.name, func(b *testing.B) {
			sh, k := benchCutFixture(b, bc.kOf)
			bt := sh.shards[0].bt
			port := &sh.shards[0].out[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.packCut(port.cut, k, &port.buf)
			}
		})
	}
}

// BenchmarkCutInstall measures installCut writing a received block into
// the receiver's halo segment, same full/partial split as the pack.
func BenchmarkCutInstall(b *testing.B) {
	for _, bc := range cutCases {
		b.Run(bc.name, func(b *testing.B) {
			sh, k := benchCutFixture(b, bc.kOf)
			// Pack the sender-side block once; the receiver installs the
			// identical shape every iteration, as in a real exchange.
			sendBt := sh.shards[0].bt
			sendPort := &sh.shards[0].out[0]
			sendBt.packCut(sendPort.cut, k, &sendPort.buf)
			recvBt := sh.shards[1].bt
			recvPort := &sh.shards[1].in[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := recvBt.installCut(recvPort.haloLo, len(recvPort.cut), k, sendPort.buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestInstallCutFullBlockRejectsMalformedLens is the regression gate for
// installCut's k == B dense fast path: value-level lens validation must
// run BEFORE the dense copy, so a structurally valid block carrying an
// oversized or negative len — byte-stream peers can produce both — is
// refused without a single slab byte changing. The oversize sits in the
// final (slot, lane) cell to force a full clamp scan.
func TestInstallCutFullBlockRejectsMalformedLens(t *testing.T) {
	g := graph.Cycle(8)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	k := 4 // == width: the dense fast path
	if _, err := sh.Run(in, wireMix{rounds: 2}, drawRange(localrand.NewTapeSpace(17), 0, k), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	bt := sh.shards[1].bt
	if bt.block != k {
		// The dense branch only triggers at k == bt.block; the shard's
		// slab budget must not have chopped the lanes.
		k = bt.block
	}
	port := sh.shards[1].in[0]
	ncut := len(port.cut)
	lens := make([]int32, ncut*k)
	words := 0
	for i := 0; i < ncut; i++ {
		words += int(bt.capW[port.haloLo+i]) * k
	}
	snap := append([]int32(nil), bt.curLens...)
	for name, bad := range map[string]int32{
		"oversized": bt.capW[port.haloLo+ncut-1] + 2, // one word past capacity
		"negative":  -1,
	} {
		lens[len(lens)-1] = bad
		err := bt.installCut(port.haloLo, ncut, k, CutBlock{Lens: lens, Words: make([]uint64, words)})
		if err == nil || !strings.Contains(err.Error(), "capacity") {
			t.Fatalf("%s len accepted by fast path: %v", name, err)
		}
		for i, l := range bt.curLens {
			if l != snap[i] {
				t.Fatalf("%s len: dense copy ran before validation (curLens[%d] = %d, want %d)", name, i, l, snap[i])
			}
		}
	}
}
