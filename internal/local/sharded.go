package local

import (
	"errors"
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file implements sharded batch execution: one LOCAL round run
// cooperatively by several shards, each owning a contiguous node range of
// the plan's CSR layout (a cut in Topology.Offsets) and executing the
// full lane vector over its own range with the ordinary Batch machinery —
// startPass and roundPass are reused unchanged, driven over the shard's
// node window instead of the whole graph. The only thing a shard cannot
// resolve locally is a RevSlot entry that crosses a cut: those slots'
// send state is exchanged once per round as contiguous [slot][lane]
// lens+words block copies (PR 3's flat wire words need no serialization),
// shipped over a ShardLink. The in-process link is a Go channel; the
// interface is the seam where a real network transport slots in.
//
// The contract is the repository's usual one, extended across the cut:
// every lane of a sharded run — outputs, Stats, and errors — is
// byte-identical to the unsharded Batch at equal seeds, for every shard
// count and every cut placement. internal/shardtest enforces it
// differentially across all message algorithms and graph families.

// CutBlock is one round's handoff on one directed shard pair: for each
// cut slot, in ascending slot order, the k-lane lens range and the
// capW·k-lane word range of the sender's send slab, flattened back to
// back. Lens and Words are exactly the bytes a real transport would put
// on the wire. Refs carries by-reference payloads (the boxing shim for
// legacy Processes and the full-information adapter) and only works on
// in-process links; wire-native algorithms leave it empty.
type CutBlock struct {
	Lens  []int32
	Words []uint64
	Refs  []Message
}

// ShardLink ships cut blocks across one directed shard pair: the sending
// shard calls Send once per round, the receiving shard Recv once per
// round, strictly in round order. The block's backing arrays stay owned
// by the sender, which will not touch them again until after the
// receiver's next Recv on this link returns — so an in-process link may
// hand the block through zero-copy, while a network link would serialize
// Lens/Words (both fixed-width) during Send. Errors abort the sharded
// run.
type ShardLink interface {
	Send(round int, block CutBlock) error
	Recv(round int) (CutBlock, error)
}

// LinkFactory builds the link that carries the given cut slots from
// shard `from` to shard `to`. The returned link is shared by both
// endpoint shards of an in-process run (the sender calls Send, the
// receiver Recv); a transport factory would instead return the two ends
// of a connection keyed by (from, to). The factory is invoked once per
// Run, before the first round.
type LinkFactory func(from, to int, cut []int32) ShardLink

// errShardAborted reports an exchange cut short by a failing peer shard.
var errShardAborted = errors.New("local: sharded exchange aborted")

// chanLink is the in-process ShardLink: a one-slot channel. The
// per-round consensus barrier guarantees at most one block is in flight
// per link, so Send never blocks; abort unblocks a Recv whose peer died
// mid-round instead of deadlocking the run.
type chanLink struct {
	ch    chan CutBlock
	abort <-chan struct{}
}

func (l *chanLink) Send(round int, block CutBlock) error {
	select {
	case l.ch <- block:
		return nil
	case <-l.abort:
		return errShardAborted
	}
}

func (l *chanLink) Recv(round int) (CutBlock, error) {
	select {
	case b := <-l.ch:
		return b, nil
	case <-l.abort:
		return CutBlock{}, errShardAborted
	}
}

// Sharded executes message algorithms over a partitioned plan: shard i
// runs the full lane vector over its node range as an ordinary Batch
// pass, and cross-shard deliveries are resolved by the per-round cut
// exchange. It is the multi-machine execution shape run in one process —
// the Batch is the per-machine engine, the ShardLink the network.
//
// Like a Batch, a Sharded is one caller's private scratch: it is NOT
// safe for concurrent use. Concurrency across trials comes from one
// Sharded per worker group (mc.RunSharded); concurrency within a trial
// comes from the per-shard goroutines themselves.
type Sharded struct {
	plan   *Plan
	width  int
	part   graph.Partition
	cuts   [][][]int32
	links  LinkFactory // nil: in-process channel links
	shards []*shardExec

	// Orchestrator-owned per-run state: the shared tape slab (one row per
	// lane, read by each node's owning shard), the lane bookkeeping
	// identical to Batch.runVec's, the shared report channel, and the
	// abort latch that unblocks links when a shard dies.
	tapes    []localrand.Tape
	alive    []bool
	notDone  []int
	roundsOf []int
	msgsOf   []int64
	reports  chan shardReport
	abort    chan struct{}
}

// shardExec is one shard of a Sharded: its node range, its private Batch
// (full-size slabs indexed by global slot, of which the shard writes
// only its own range plus the installed remote cut slots), and its link
// ports. ctrl carries the orchestrator's per-round commands.
type shardExec struct {
	idx    int
	lo, hi int
	bt     *Batch
	out    []shardPort
	in     []shardPort
	ctrl   chan shardCmd
}

// shardPort is one direction of one cut: the slots it carries and the
// link that ships them. buf is the send-side staging block, reused every
// round (the receiver has always consumed round r before the sender
// stages r+1 — the consensus barrier between rounds guarantees it).
type shardPort struct {
	peer int
	cut  []int32
	link ShardLink
	buf  CutBlock
}

// shardCmd is one orchestrator command: execute round `round` (run =
// true), or finish — collecting outputs first when collect is set.
type shardCmd struct {
	round   int
	run     bool
	collect bool
}

// shardReport is one shard's answer to a command: the per-lane delivered
// and newly-finished counts of the round it just ran (nil on the finish
// ack), an exchange error, or a recovered panic to re-raise.
type shardReport struct {
	from     int
	msgs     []int64
	fins     []int
	err      error
	panicked any
}

// NewSharded partitions the plan into `shards` contiguous slot-balanced
// node ranges (Topology.PartitionBySlots) and returns the sharded
// executor with lane capacity `width`.
func (p *Plan) NewSharded(width, shards int) (*Sharded, error) {
	part, err := p.topo.PartitionBySlots(shards)
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	return p.NewShardedPartition(width, part)
}

// NewShardedPartition is NewSharded with an explicit cut placement; the
// equivalence harness uses it to sweep adversarial partitions. The
// partition must be a valid contiguous node partition of the plan's
// topology.
func (p *Plan) NewShardedPartition(width int, part graph.Partition) (*Sharded, error) {
	if width < 1 {
		return nil, fmt.Errorf("local: sharded width %d, need >= 1", width)
	}
	if err := p.topo.CheckPartition(part); err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	s := &Sharded{
		plan:  p,
		width: width,
		part:  part,
		cuts:  p.topo.CutSlots(part),
	}
	for i := 0; i < part.NumShards(); i++ {
		lo, hi := part.Shard(i)
		sh := &shardExec{idx: i, lo: lo, hi: hi, bt: p.NewBatch(width)}
		s.shards = append(s.shards, sh)
	}
	// Ports are persistent (their staging buffers amortize across runs);
	// links are installed per run by buildLinks.
	for i := range s.shards {
		for j := range s.shards {
			if len(s.cuts[i][j]) == 0 {
				continue
			}
			s.shards[i].out = append(s.shards[i].out, shardPort{peer: j, cut: s.cuts[i][j]})
			s.shards[j].in = append(s.shards[j].in, shardPort{peer: i, cut: s.cuts[i][j]})
		}
	}
	return s, nil
}

// SetLinkFactory installs a transport for the cut exchange; nil restores
// the in-process channel links. Call before Run.
func (s *Sharded) SetLinkFactory(f LinkFactory) { s.links = f }

// Plan returns the plan the sharded executor runs on.
func (s *Sharded) Plan() *Plan { return s.plan }

// Width returns the lane capacity.
func (s *Sharded) Width() int { return s.width }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.part.NumShards() }

// Partition returns the node partition.
func (s *Sharded) Partition() graph.Partition { return s.part }

// Unsharded returns a companion Batch on the same plan with the same
// lane capacity, for execution paths that have no sharded form (pure
// ball-view trials above all). It shares scratch with shard 0, so use it
// and the Sharded from the same goroutine, never concurrently.
func (s *Sharded) Unsharded() *Batch { return s.shards[0].bt }

// Run executes one message-passing trial per draw across the shards,
// returning one Result per lane, byte-identical — outputs, Stats, and
// errors — to Batch.Run at equal seeds. len(draws) may be any
// 1..Width().
func (s *Sharded) Run(in *lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	bt0 := s.shards[0].bt
	if err := bt0.lanes(len(draws)); err != nil {
		return nil, err
	}
	if err := bt0.checkInstance(in); err != nil {
		return nil, err
	}
	return s.runBlocks(func(int) *lang.Instance { return in }, len(draws), algo, draws, opts)
}

// RunInstances is Run with per-lane instances (all over the plan's
// graph); a nil draws runs every lane deterministically.
func (s *Sharded) RunInstances(ins []*lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	bt0 := s.shards[0].bt
	if err := bt0.lanes(len(ins)); err != nil {
		return nil, err
	}
	if draws != nil && len(draws) != len(ins) {
		return nil, fmt.Errorf("local: %d draws for %d lanes", len(draws), len(ins))
	}
	for _, in := range ins {
		if err := bt0.checkInstance(in); err != nil {
			return nil, err
		}
	}
	return s.runBlocks(func(b int) *lang.Instance { return ins[b] }, len(ins), algo, draws, opts)
}

// buildLinks installs fresh links for a run: in-process channels wired
// to this run's abort latch by default, the caller's transport
// otherwise.
func (s *Sharded) buildLinks() {
	factory := s.links
	if factory == nil {
		abort := s.abort
		factory = func(from, to int, cut []int32) ShardLink {
			return &chanLink{ch: make(chan CutBlock, 1), abort: abort}
		}
	}
	for i := range s.shards {
		for oi := range s.shards[i].out {
			port := &s.shards[i].out[oi]
			link := factory(i, port.peer, port.cut)
			port.link = link
			// Hand the receiving end the same link object.
			in := s.shards[port.peer].in
			for ii := range in {
				if in[ii].peer == i {
					in[ii].link = link
				}
			}
		}
	}
}

// seedTapes reseeds the first k rows of the shared tape slab — row b
// holds lane b's per-node tapes under draws[b] — and returns the
// lane-aware accessor every shard reads (a node's tapes are touched only
// by its owning shard, so the slab needs no further coordination).
func (s *Sharded) seedTapes(k int, draws []localrand.Draw, idOf func(b int) ids.Assignment) func(b, v int) *localrand.Tape {
	if draws == nil {
		return nil
	}
	n := s.plan.g.N()
	if s.tapes == nil {
		s.tapes = make([]localrand.Tape, s.width*n)
	}
	for b := 0; b < k; b++ {
		draws[b].TapeVecInto(s.tapes[b*n:(b+1)*n], idOf(b))
	}
	tapes := s.tapes
	return func(b, v int) *localrand.Tape { return &tapes[b*n+v] }
}

// ensureLaneState sizes the orchestrator's lane bookkeeping.
func (s *Sharded) ensureLaneState() {
	if s.alive == nil {
		s.alive = make([]bool, s.width)
		s.notDone = make([]int, s.width)
		s.roundsOf = make([]int, s.width)
		s.msgsOf = make([]int64, s.width)
	}
}

// runBlocks drives the sharded core over a lane vector in slab-budget
// blocks, exactly like Batch.runBlocks: the per-shard layouts are
// computed from the same algorithm over the same topology, so every
// shard agrees on the block size and the lane split matches the
// unsharded batch block for block.
func (s *Sharded) runBlocks(insOf func(b int) *lang.Instance, k int, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	wa := wireOf(algo)
	for _, sh := range s.shards {
		sh.bt.layoutWire(wa)
	}
	block := s.shards[0].bt.block
	s.ensureLaneState()
	s.abort = make(chan struct{})
	s.reports = make(chan shardReport, len(s.shards))
	s.buildLinks()
	results := make([]*Result, 0, k)
	for lo := 0; lo < k; lo += block {
		hi := lo + block
		if hi > k {
			hi = k
		}
		var chunk []localrand.Draw
		if draws != nil {
			chunk = draws[lo:hi]
		}
		lo := lo
		blockIns := func(b int) *lang.Instance { return insOf(lo + b) }
		tapeOf := s.seedTapes(hi-lo, chunk, func(b int) ids.Assignment { return blockIns(b).ID })
		rs, err := s.runVec(blockIns, hi-lo, wa, tapeOf, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	return results, nil
}

// runVec runs one execution vector of k lanes across the shards. It is
// the orchestrator side of Batch.runVec's round loop: shards execute
// startPass/roundPass over their node ranges on their own goroutines,
// and the per-round merge — message counts, halting consensus, the lane
// liveness that every shard's next pass reads — happens here, once,
// exactly as the unsharded loop merges its worker rows. Round count
// semantics, the ErrNoHalt budget, and StopAfter match Batch.runVec
// decision for decision.
func (s *Sharded) runVec(insOf func(b int) *lang.Instance, k int, wa WireAlgorithm, tapeOf func(b, v int) *localrand.Tape, opts RunOptions) ([]*Result, error) {
	n := s.plan.g.N()
	if k > s.shards[0].bt.block {
		return nil, fmt.Errorf("local: %d lanes exceed the %d-lane slab block", k, s.shards[0].bt.block)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 64
	}
	if opts.StopAfter > 0 {
		maxRounds = opts.StopAfter
	}
	for b := 0; b < k; b++ {
		s.alive[b] = true
		s.notDone[b] = n
		s.roundsOf[b] = 0
		s.msgsOf[b] = 0
	}
	ys := make([][]byte, k*n)
	dead := make([]bool, len(s.shards))
	var panicked any
	var linkErr error
	aborted := false
	closeAbort := func() {
		if !aborted {
			aborted = true
			close(s.abort)
		}
	}
	for _, sh := range s.shards {
		sh.ctrl = make(chan shardCmd, 1)
		go sh.run(s, insOf, k, wa, tapeOf, ys)
	}
	liveShards := len(s.shards)

	// gather collects one report per live shard, in arrival order (a
	// shard blocked on a dead peer's block reports only after the abort
	// latch trips, which happens when the failing shard's own report is
	// read here — so arrival order is the only safe order). Counts are
	// summed exactly like the unsharded worker-row merge.
	gather := func(counts bool) {
		for got := 0; got < liveShards; got++ {
			rep := <-s.reports
			switch {
			case rep.panicked != nil:
				dead[rep.from] = true
				if panicked == nil {
					panicked = rep.panicked
				}
				closeAbort()
			case rep.err != nil:
				if linkErr == nil {
					linkErr = rep.err
				}
				closeAbort()
			case counts && rep.msgs != nil:
				for b := 0; b < k; b++ {
					s.msgsOf[b] += rep.msgs[b]
					s.notDone[b] -= rep.fins[b]
				}
			}
		}
		liveShards = 0
		for _, d := range dead {
			if !d {
				liveShards++
			}
		}
	}
	broadcast := func(cmd shardCmd) {
		for si, sh := range s.shards {
			if !dead[si] {
				sh.ctrl <- cmd
			}
		}
	}
	finish := func(collect bool) {
		broadcast(shardCmd{run: false, collect: collect})
		gather(false)
		if panicked != nil {
			panic(panicked)
		}
	}

	live := k
	var runErr error
	for round := 1; opts.StopAfter == 0 || round <= opts.StopAfter; round++ {
		if round > maxRounds {
			runErr = fmt.Errorf("%w: %d rounds on %d nodes", ErrNoHalt, maxRounds, n)
			break
		}
		broadcast(shardCmd{round: round, run: true})
		gather(true)
		if panicked != nil {
			finish(false)
		}
		if linkErr != nil {
			runErr = fmt.Errorf("local: sharded exchange: %w", linkErr)
			break
		}
		for b := 0; b < k; b++ {
			if !s.alive[b] {
				continue
			}
			s.roundsOf[b] = round
			if s.notDone[b] == 0 {
				s.alive[b] = false
				live--
			}
		}
		if live == 0 {
			break
		}
	}
	finish(runErr == nil && linkErr == nil)
	if runErr != nil {
		return nil, runErr
	}
	results := make([]*Result, k)
	for b := 0; b < k; b++ {
		results[b] = &Result{
			Y:     ys[b*n : (b+1)*n : (b+1)*n],
			Stats: Stats{Rounds: s.roundsOf[b], Messages: s.msgsOf[b]},
		}
	}
	return results, nil
}

// run is one shard's execution loop: init + round-1 staging over its own
// node range, then one exchange + pass + swap per orchestrator command.
// The Batch passes are the unsharded ones — worker 0 over [lo, hi) — and
// the shared alive slice (orchestrator-written between rounds, command
// channels provide the happens-before) stands in for the batch's own.
func (sh *shardExec) run(s *Sharded, insOf func(b int) *lang.Instance, k int, wa WireAlgorithm, tapeOf func(b, v int) *localrand.Tape, ys [][]byte) {
	defer func() {
		if r := recover(); r != nil {
			sh.cleanup()
			s.reports <- shardReport{from: sh.idx, panicked: r}
		}
	}()
	bt := sh.bt
	n := s.plan.g.N()
	bt.ensureWireState()
	bt.ensureWorkerScratch(1)
	bt.alive = s.alive
	bt.preparePools(wa)
	bt.rk, bt.rwa, bt.rins, bt.rtape = k, wa, insOf, tapeOf
	bt.startPass(0, sh.lo, sh.hi)
	for {
		cmd := <-sh.ctrl
		if !cmd.run {
			if cmd.collect {
				B := bt.block
				for v := sh.lo; v < sh.hi; v++ {
					for b := 0; b < k; b++ {
						ys[b*n+v] = bt.procs[v*B+b].Output()
					}
				}
			}
			// Cleanup strictly before the ack: the ack releases the
			// orchestrator, which may immediately hand this batch to the
			// next execution vector's goroutine.
			sh.cleanup()
			s.reports <- shardReport{from: sh.idx}
			return
		}
		if err := sh.exchange(cmd.round, k); err != nil {
			s.reports <- shardReport{from: sh.idx, err: err}
			continue
		}
		bt.rround = cmd.round
		bt.roundPass(0, sh.lo, sh.hi)
		bt.curLens, bt.nextLens = bt.nextLens, bt.curLens
		bt.curWords, bt.nextWord = bt.nextWord, bt.curWords
		bt.curRefs, bt.nextRefs = bt.nextRefs, bt.curRefs
		s.reports <- shardReport{from: sh.idx, msgs: bt.wkMsgs[0][:k], fins: bt.wkFin[0][:k]}
	}
}

// cleanup is the unsharded runVec's no-retention cleanup, per shard: a
// pooled shard batch never keeps a previous execution's processes or
// messages alive (the pooled process table is the deliberate exception,
// as in Batch.runVec).
func (sh *shardExec) cleanup() {
	bt := sh.bt
	if bt.procAlgo == nil {
		clear(bt.procs)
	}
	clear(bt.curRefs)
	clear(bt.nextRefs)
	bt.rins, bt.rtape, bt.rwa = nil, nil, nil
}

// exchange performs one round's cut handoff: pack and send the cur-slab
// ranges every peer reads from this shard, then receive and install the
// ranges this shard reads from every peer. Sends never block (one-slot
// links, one block in flight), so the fixed send-then-receive order
// cannot deadlock.
func (sh *shardExec) exchange(round, k int) error {
	bt := sh.bt
	for oi := range sh.out {
		port := &sh.out[oi]
		bt.packCut(port.cut, k, &port.buf)
		if err := port.link.Send(round, port.buf); err != nil {
			return err
		}
	}
	for ii := range sh.in {
		port := &sh.in[ii]
		blk, err := port.link.Recv(round)
		if err != nil {
			return err
		}
		if err := bt.installCut(port.cut, k, blk); err != nil {
			return err
		}
	}
	return nil
}

// packCut flattens the cut slots' [slot][lane] ranges out of the current
// send slabs into blk, reusing its backing arrays. Lens rows are k lanes
// per slot; word rows are capW[s]·k per slot — both contiguous in the
// slab, so each slot is two copies.
func (bt *Batch) packCut(cut []int32, k int, blk *CutBlock) {
	B := bt.block
	lens := blk.Lens[:0]
	words := blk.Words[:0]
	for _, s := range cut {
		li := int(s) * B
		lens = append(lens, bt.curLens[li:li+k]...)
		if w := int(bt.capW[s]); w > 0 {
			base := int(bt.offW[s]) * B
			words = append(words, bt.curWords[base:base+w*k]...)
		}
	}
	blk.Lens, blk.Words = lens, words
	blk.Refs = blk.Refs[:0]
	if bt.curRefs != nil {
		refs := blk.Refs
		for _, s := range cut {
			li := int(s) * B
			refs = append(refs, bt.curRefs[li:li+k]...)
		}
		blk.Refs = refs
	}
}

// installCut writes a received block into the current receive slabs at
// the cut slots' global indices — the shard-side half of the gather: the
// subsequent roundPass reads these slots through RevSlot exactly as if a
// local sender had staged them.
func (bt *Batch) installCut(cut []int32, k int, blk CutBlock) error {
	if len(blk.Lens) != len(cut)*k {
		return fmt.Errorf("local: cut block carries %d lens for %d slots × %d lanes", len(blk.Lens), len(cut), k)
	}
	B := bt.block
	li0, w0, r0 := 0, 0, 0
	for _, s := range cut {
		li := int(s) * B
		copy(bt.curLens[li:li+k], blk.Lens[li0:li0+k])
		li0 += k
		if w := int(bt.capW[s]); w > 0 {
			base := int(bt.offW[s]) * B
			if w0+w*k > len(blk.Words) {
				return fmt.Errorf("local: cut block word section truncated at slot %d", s)
			}
			copy(bt.curWords[base:base+w*k], blk.Words[w0:w0+w*k])
			w0 += w * k
		}
	}
	if bt.curRefs != nil && len(blk.Refs) > 0 {
		if len(blk.Refs) != len(cut)*k {
			return fmt.Errorf("local: cut block carries %d refs for %d slots × %d lanes", len(blk.Refs), len(cut), k)
		}
		for _, s := range cut {
			li := int(s) * B
			copy(bt.curRefs[li:li+k], blk.Refs[r0:r0+k])
			r0 += k
		}
	}
	return nil
}
