package local

import (
	"errors"
	"fmt"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file implements sharded batch execution: one LOCAL round run
// cooperatively by several shards, each owning a contiguous node range of
// the plan's CSR layout (a cut in Topology.Offsets) and executing the
// full lane vector over its own range with the ordinary Batch machinery —
// startPass and roundPass are reused unchanged, driven over the shard's
// node window on a compacted slab window: each shard's slabs cover only
// its own slot range plus the remote halo it reads, through the
// global→local remap of graph.ShardSlots, so shard memory scales with
// the shard rather than the whole graph. The only thing a shard cannot
// resolve locally is a RevSlot entry that crosses a cut: those slots'
// send state is exchanged once per round as contiguous [slot][lane]
// lens+words block copies (flat wire words need no serialization in
// process), shipped over a ShardLink. Three transports implement the
// seam: the in-process one-slot channel below (zero-copy, deadline
// backstop), framed byte streams over any net.Conn (codec.go,
// transport.go), and shard-worker OS processes (remote.go, worker.go).
//
// The contract is the repository's usual one, extended across the cut:
// every lane of a sharded run — outputs, Stats, and errors — is
// byte-identical to the unsharded Batch at equal seeds, for every shard
// count and every cut placement. internal/shardtest enforces it
// differentially across all message algorithms and graph families.

// CutBlock is one round's handoff on one directed shard pair: for each
// cut slot, in ascending slot order, the k-lane lens range and the
// capW·k-lane word range of the sender's send slab, flattened back to
// back. Lens and Words are exactly the bytes a real transport would put
// on the wire. Refs carries by-reference payloads (the boxing shim for
// legacy Processes and the full-information adapter) and only works on
// in-process links; wire-native algorithms leave it empty.
type CutBlock struct {
	Lens  []int32
	Words []uint64
	Refs  []Message
}

// ShardLink ships cut blocks across one directed shard pair: the sending
// shard calls Send once per round, the receiving shard Recv once per
// round, strictly in round order. The block's backing arrays stay owned
// by the sender, which will not touch them again until after the
// receiver's next Recv on this link returns — so an in-process link may
// hand the block through zero-copy, while a network link would serialize
// Lens/Words (both fixed-width) during Send. Errors abort the sharded
// run.
type ShardLink interface {
	Send(round int, block CutBlock) error
	Recv(round int) (CutBlock, error)
}

// LinkFactory builds the link that carries the given cut slots from
// shard `from` to shard `to`. The returned link is shared by both
// endpoint shards of an in-process run (the sender calls Send, the
// receiver Recv); a transport factory would instead return the two ends
// of a connection keyed by (from, to). The factory is invoked once per
// Run, before the first round.
type LinkFactory func(from, to int, cut []int32) ShardLink

// errShardAborted reports an exchange cut short by a failing peer shard.
var errShardAborted = errors.New("local: sharded exchange aborted")

// ErrLinkTimeout reports a link operation that exceeded its deadline —
// the cancel path that keeps a shard from blocking forever on a peer
// that died without tripping the abort latch (a custom link with no
// abort wiring, a remote process that vanished).
var ErrLinkTimeout = errors.New("local: shard link deadline exceeded")

// DefaultLinkTimeout bounds how long a built-in link waits for its peer.
// One Recv spans at most the peer's previous round pass plus scheduling
// noise, so the default is generous; Sharded.SetLinkTimeout overrides it
// (0 disables the deadline entirely).
const DefaultLinkTimeout = 30 * time.Second

// chanLink is the in-process ShardLink: a one-slot channel. The
// per-round consensus barrier guarantees at most one block is in flight
// per link, so Send never blocks; abort unblocks a Recv whose peer died
// mid-round instead of deadlocking the run, and the deadline is the
// backstop for links built without an abort latch.
type chanLink struct {
	ch      chan CutBlock
	abort   <-chan struct{}
	timeout time.Duration
}

func (l *chanLink) Send(round int, block CutBlock) error {
	select {
	case l.ch <- block:
		return nil
	case <-l.abort:
		return errShardAborted
	default:
	}
	var expired <-chan time.Time
	if l.timeout > 0 {
		tm := time.NewTimer(l.timeout)
		defer tm.Stop()
		expired = tm.C
	}
	select {
	case l.ch <- block:
		return nil
	case <-l.abort:
		return errShardAborted
	case <-expired:
		return fmt.Errorf("%w: send of round %d waited %v", ErrLinkTimeout, round, l.timeout)
	}
}

func (l *chanLink) Recv(round int) (CutBlock, error) {
	select {
	case b := <-l.ch:
		return b, nil
	case <-l.abort:
		return CutBlock{}, errShardAborted
	default:
	}
	var expired <-chan time.Time
	if l.timeout > 0 {
		tm := time.NewTimer(l.timeout)
		defer tm.Stop()
		expired = tm.C
	}
	select {
	case b := <-l.ch:
		return b, nil
	case <-l.abort:
		return CutBlock{}, errShardAborted
	case <-expired:
		return CutBlock{}, fmt.Errorf("%w: recv of round %d waited %v", ErrLinkTimeout, round, l.timeout)
	}
}

// Sharded executes message algorithms over a partitioned plan: shard i
// runs the full lane vector over its node range as an ordinary Batch
// pass, and cross-shard deliveries are resolved by the per-round cut
// exchange. It is the multi-machine execution shape run in one process —
// the Batch is the per-machine engine, the ShardLink the network.
//
// Like a Batch, a Sharded is one caller's private scratch: it is NOT
// safe for concurrent use. Concurrency across trials comes from one
// Sharded per worker group (mc.RunSharded); concurrency within a trial
// comes from the per-shard goroutines themselves.
type Sharded struct {
	plan   *Plan
	width  int
	part   graph.Partition
	cuts   [][][]int32
	links  LinkFactory // nil: in-process channel links
	shards []*shardExec

	// block is the common lane count of one sharded pass: the minimum of
	// the shards' compacted slab blocks, so every shard agrees on the
	// lane split of an execution vector (lanes are independent, so any
	// agreed split is byte-identical to the unsharded batch lane for
	// lane). Recomputed per run from the algorithm's layout.
	block int
	// full is the lazily built companion Batch Unsharded returns — the
	// shard batches are compacted windows now and cannot stand in for a
	// whole-graph engine.
	full *Batch
	// linkTimeout is the deadline handed to built-in links (and exported
	// to transports through LinkTimeout); closeLinks tears down an
	// installed transport's resources on Close.
	linkTimeout time.Duration
	closeLinks  func()

	// defFault is the executor-default fault plan (SetFault, fault.go): a
	// run obeys RunOptions.Fault when set and this otherwise. The
	// orchestrator resolves the effective plan once per execution vector
	// and arms identical fault state on every shard batch — or ships the
	// plan inside runSpec when the shards are worker processes.
	defFault *FaultPlan

	// Remote mode (remote.go): the shards run as worker processes from
	// this pool. remoteWorkers is the live subset selected at
	// construction — one worker per shard, in shard order; workers that
	// die later fail their shard's driver, which the Monte-Carlo layer
	// answers by retrying the trial chunk on a fresh Sharded built from
	// the survivors. remoteJob/remoteKey/remoteParams identify the job
	// the workers currently hold for this executor.
	remote        *WorkerPool
	remoteWorkers []*WorkerConn
	remoteJob     int64
	remoteKey     string
	remoteParams  []int64

	// Orchestrator-owned per-run state: the shared tape slab (one row per
	// lane, read by each node's owning shard), the lane bookkeeping
	// identical to Batch.runVec's, the shared report channel, and the
	// abort latch that unblocks links when a shard dies. outs is the
	// double-buffered per-run output arena (same alternation contract as
	// Batch's) and deadSh the reusable per-shard death flags.
	tapes    []localrand.Tape
	alive    []bool
	notDone  []int
	roundsOf []int
	msgsOf   []int64
	reports  chan shardReport
	abort    chan struct{}
	outs     arenaPair
	deadSh   []bool
}

// shardExec is one shard of a Sharded: its node range, its private
// windowed Batch (slabs compacted to the shard's own slot range plus the
// remote halo it reads, indexed by window-local slot), and its link
// ports. ctrl carries the orchestrator's per-round commands.
type shardExec struct {
	idx    int
	lo, hi int
	win    *graph.ShardSlots
	bt     *Batch
	out    []shardPort
	in     []shardPort
	ctrl   chan shardCmd
}

// shardPort is one direction of one cut: the slots it carries and the
// link that ships them. buf is the send-side staging block, reused every
// round (the receiver has always consumed round r before the sender
// stages r+1 — the consensus barrier between rounds guarantees it).
// haloLo is the receiver-side local slot of the cut's first entry: a
// peer's halo segment is contiguous in the compacted window, so an
// install is a walk from haloLo.
type shardPort struct {
	peer   int
	cut    []int32
	haloLo int
	link   ShardLink
	buf    CutBlock
}

// shardCmd is one orchestrator command: execute round `round` (run =
// true), or finish — collecting outputs first when collect is set.
type shardCmd struct {
	round   int
	run     bool
	collect bool
}

// shardReport is one shard's answer to a command: the per-lane delivered
// and newly-finished counts of the round it just ran (nil on the finish
// ack), an exchange error, or a recovered panic to re-raise.
type shardReport struct {
	from     int
	msgs     []int64
	fins     []int
	err      error
	panicked any
}

// NewSharded partitions the plan into `shards` contiguous slot-balanced
// node ranges (Topology.PartitionBySlots) and returns the sharded
// executor with lane capacity `width`.
func (p *Plan) NewSharded(width, shards int) (*Sharded, error) {
	part, err := p.topo.PartitionBySlots(shards)
	if err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	return p.NewShardedPartition(width, part)
}

// NewShardedPartition is NewSharded with an explicit cut placement; the
// equivalence harness uses it to sweep adversarial partitions. The
// partition must be a valid contiguous node partition of the plan's
// topology.
func (p *Plan) NewShardedPartition(width int, part graph.Partition) (*Sharded, error) {
	if width < 1 {
		return nil, fmt.Errorf("local: sharded width %d, need >= 1", width)
	}
	if err := p.topo.CheckPartition(part); err != nil {
		return nil, fmt.Errorf("local: %w", err)
	}
	s := &Sharded{
		plan:        p,
		width:       width,
		part:        part,
		cuts:        p.topo.CutSlots(part),
		linkTimeout: DefaultLinkTimeout,
	}
	for i := 0; i < part.NumShards(); i++ {
		lo, hi := part.Shard(i)
		win := p.topo.ShardSlots(part, s.cuts, i)
		sh := &shardExec{idx: i, lo: lo, hi: hi, win: &win, bt: p.newWindowBatch(width, &win)}
		s.shards = append(s.shards, sh)
	}
	// Ports are persistent (their staging buffers amortize across runs);
	// links are installed per run by buildLinks. An in-port's halo base
	// comes from the receiver's window: peer i's cut slots occupy one
	// contiguous local segment there.
	for i := range s.shards {
		for j := range s.shards {
			if len(s.cuts[i][j]) == 0 {
				continue
			}
			s.shards[i].out = append(s.shards[i].out, shardPort{peer: j, cut: s.cuts[i][j]})
			s.shards[j].in = append(s.shards[j].in, shardPort{
				peer: i, cut: s.cuts[i][j], haloLo: s.shards[j].win.HaloLocal(i),
			})
		}
	}
	return s, nil
}

// SetLinkFactory installs a transport for the cut exchange; nil restores
// the in-process channel links. Call before Run.
func (s *Sharded) SetLinkFactory(f LinkFactory) { s.links = f }

// SetTransport installs a link factory together with the teardown Close
// runs — the form transports with real resources (sockets, worker
// processes) use.
func (s *Sharded) SetTransport(f LinkFactory, close func()) {
	s.links = f
	s.closeLinks = close
}

// SetLinkTimeout sets the deadline built-in links apply to each Send and
// Recv (DefaultLinkTimeout initially; 0 disables). Transports installed
// through a factory read it via LinkTimeout.
func (s *Sharded) SetLinkTimeout(d time.Duration) { s.linkTimeout = d }

// LinkTimeout returns the configured per-operation link deadline.
func (s *Sharded) LinkTimeout() time.Duration { return s.linkTimeout }

// Close tears down an installed transport's resources (a no-op for the
// in-process channel links). The Sharded itself remains usable with the
// default links afterwards.
func (s *Sharded) Close() error {
	if s.closeLinks != nil {
		s.closeLinks()
		s.closeLinks = nil
		s.links = nil
	}
	return nil
}

// Plan returns the plan the sharded executor runs on.
func (s *Sharded) Plan() *Plan { return s.plan }

// Width returns the lane capacity.
func (s *Sharded) Width() int { return s.width }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.part.NumShards() }

// Partition returns the node partition.
func (s *Sharded) Partition() graph.Partition { return s.part }

// Unsharded returns a companion Batch on the same plan with the same
// lane capacity, for execution paths that have no sharded form (pure
// ball-view trials above all). The shard batches are compacted windows,
// so the companion is a separate full batch, built lazily and reused;
// use it and the Sharded from the same goroutine, never concurrently.
func (s *Sharded) Unsharded() *Batch {
	if s.full == nil {
		s.full = s.plan.NewBatch(s.width)
		s.full.SetFault(s.defFault)
	}
	return s.full
}

// ShardSlabBytes reports, per shard, the wire-slab byte footprint one
// pass of algo would stream on that shard's compacted window — the
// memory a shard machine actually pays. The compaction gate compares it
// against Unsharded().SlabBytesFor, which is what every shard paid when
// shards held full-size global-slot slabs.
func (s *Sharded) ShardSlabBytes(algo MessageAlgorithm) []int {
	bytes := make([]int, len(s.shards))
	for i, sh := range s.shards {
		bytes[i] = sh.bt.SlabBytesFor(algo)
	}
	return bytes
}

// Run executes one message-passing trial per draw across the shards,
// returning one Result per lane, byte-identical — outputs, Stats, and
// errors — to Batch.Run at equal seeds. len(draws) may be any
// 1..Width().
func (s *Sharded) Run(in *lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	bt0 := s.shards[0].bt
	if err := bt0.lanes(len(draws)); err != nil {
		return nil, err
	}
	if err := bt0.checkInstance(in); err != nil {
		return nil, err
	}
	if s.remote != nil && !s.remotable(algo) {
		return s.Unsharded().Run(in, algo, draws, opts)
	}
	return s.runBlocks(in, nil, len(draws), algo, draws, opts)
}

// remotable reports whether algo can cross to the worker processes: it
// must be reconstructible from this binary's registry AND advertised by
// every live worker's handshake — a fleet of mixed binaries must not
// ship a job half its workers cannot build. An algorithm that cannot
// cross runs on the local companion batch instead (byte-identical by
// the sharding contract).
func (s *Sharded) remotable(algo MessageAlgorithm) bool {
	ra, ok := algo.(RemoteAlgorithm)
	if !ok {
		return false
	}
	key, params := ra.RemoteSpec()
	if _, err := remoteAlgoFor(key, params); err != nil {
		return false
	}
	for _, w := range s.remoteWorkers {
		if !w.Supports(key) {
			return false
		}
	}
	return true
}

// RunInstances is Run with per-lane instances (all over the plan's
// graph); a nil draws runs every lane deterministically.
func (s *Sharded) RunInstances(ins []*lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	bt0 := s.shards[0].bt
	if err := bt0.lanes(len(ins)); err != nil {
		return nil, err
	}
	if draws != nil && len(draws) != len(ins) {
		return nil, fmt.Errorf("local: %d draws for %d lanes", len(draws), len(ins))
	}
	for _, in := range ins {
		if err := bt0.checkInstance(in); err != nil {
			return nil, err
		}
	}
	if s.remote != nil && !s.remotable(algo) {
		return s.Unsharded().RunInstances(ins, algo, draws, opts)
	}
	return s.runBlocks(nil, ins, len(ins), algo, draws, opts)
}

// buildLinks installs fresh links for a run: in-process channels wired
// to this run's abort latch by default, the caller's transport
// otherwise.
func (s *Sharded) buildLinks() {
	factory := s.links
	if factory == nil {
		abort := s.abort
		timeout := s.linkTimeout
		factory = func(from, to int, cut []int32) ShardLink {
			return &chanLink{ch: make(chan CutBlock, 1), abort: abort, timeout: timeout}
		}
	}
	for i := range s.shards {
		for oi := range s.shards[i].out {
			port := &s.shards[i].out[oi]
			link := factory(i, port.peer, port.cut)
			port.link = link
			// Hand the receiving end the same link object.
			in := s.shards[port.peer].in
			for ii := range in {
				if in[ii].peer == i {
					in[ii].link = link
				}
			}
		}
	}
}

// seedTapes reseeds the first k rows of the shared tape slab — row b
// holds lane b's per-node tapes under draws[b] — and points src at it;
// every shard reads the shared slab (a node's tapes are touched only
// by its owning shard, so the slab needs no further coordination).
func (s *Sharded) seedTapes(k int, draws []localrand.Draw, src *laneSrc) {
	if draws == nil {
		return
	}
	n := s.plan.g.N()
	if s.tapes == nil {
		s.tapes = make([]localrand.Tape, s.width*n)
	}
	for b := 0; b < k; b++ {
		draws[b].TapeVecInto(s.tapes[b*n:(b+1)*n], src.instance(b).ID)
	}
	src.tapes, src.tlo, src.tn = s.tapes, 0, n
}

// ensureLaneState sizes the orchestrator's lane bookkeeping.
func (s *Sharded) ensureLaneState() {
	if s.alive == nil {
		s.alive = make([]bool, s.width)
		s.notDone = make([]int, s.width)
		s.roundsOf = make([]int, s.width)
		s.msgsOf = make([]int64, s.width)
	}
}

// runBlocks drives the sharded core over a lane vector in slab-budget
// blocks, exactly like Batch.runBlocks. Compacted windows give every
// shard its own slab budget block, so the orchestrator takes the
// minimum and imposes it on all shards — any agreed lane split is
// byte-identical to the unsharded batch lane for lane, because lanes
// are independent.
func (s *Sharded) runBlocks(shared *lang.Instance, ins []*lang.Instance, k int, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	wa := wireOf(algo)
	block := s.layoutShards(wa)
	s.ensureLaneState()
	s.abort = make(chan struct{})
	s.reports = make(chan shardReport, len(s.shards))
	if s.remote != nil {
		if err := s.ensureRemoteJob(algo.(RemoteAlgorithm)); err != nil {
			return nil, err
		}
	} else {
		s.buildLinks()
	}
	n := s.plan.g.N()
	ar := s.outs.next(k, n)
	for lo := 0; lo < k; lo += block {
		hi := lo + block
		if hi > k {
			hi = k
		}
		var chunk []localrand.Draw
		if draws != nil {
			chunk = draws[lo:hi]
		}
		src := laneSrc{shared: shared}
		if ins != nil {
			src.ins = ins[lo:hi]
		}
		if s.remote == nil {
			// Remote workers seed their own node windows from the shipped
			// draw seeds; the orchestrator never materializes tapes.
			s.seedTapes(hi-lo, chunk, &src)
		}
		err := s.runVec(src, hi-lo, wa, chunk, opts, ar.ys[lo*n:hi*n], ar.res[lo:hi], ar.ptr[lo:hi])
		if err != nil {
			return nil, err
		}
	}
	return ar.ptr[:k], nil
}

// layoutShards computes every shard's wire layout for wa and imposes
// the common (minimum) lane block on all of them, returning it.
func (s *Sharded) layoutShards(wa WireAlgorithm) int {
	block := 0
	for _, sh := range s.shards {
		sh.bt.layoutWire(wa)
		if block == 0 || sh.bt.block < block {
			block = sh.bt.block
		}
	}
	for _, sh := range s.shards {
		sh.bt.block = block
	}
	s.block = block
	return block
}

// runVec runs one execution vector of k lanes across the shards. It is
// the orchestrator side of Batch.runVec's round loop: shards execute
// startPass/roundPass over their node ranges on their own goroutines,
// and the per-round merge — message counts, halting consensus, the lane
// liveness that every shard's next pass reads — happens here, once,
// exactly as the unsharded loop merges its worker rows. Round count
// semantics, the ErrNoHalt budget, and StopAfter match Batch.runVec
// decision for decision.
func (s *Sharded) runVec(src laneSrc, k int, wa WireAlgorithm, chunk []localrand.Draw, opts RunOptions, ys [][]byte, res []Result, out []*Result) error {
	n := s.plan.g.N()
	if k > s.block {
		return fmt.Errorf("local: %d lanes exceed the %d-lane slab block", k, s.block)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 64
	}
	if opts.StopAfter > 0 {
		maxRounds = opts.StopAfter
	}
	for b := 0; b < k; b++ {
		s.alive[b] = true
		s.notDone[b] = n
		s.roundsOf[b] = 0
		s.msgsOf[b] = 0
	}
	dead := sliceFor(s.deadSh, len(s.shards))
	clear(dead)
	s.deadSh = dead
	var panicked any
	var linkErr error
	aborted := false
	closeAbort := func() {
		if !aborted {
			aborted = true
			close(s.abort)
		}
	}
	// The effective fault plan is resolved once here, so every shard —
	// in-process batch or worker process — arms identical fault state;
	// decisions are keyed on global coordinates, making faulty sharded
	// runs byte-identical to faulty unsharded ones.
	eff := s.effectiveFault(opts)
	if s.remote != nil {
		if err := s.beginRemoteRun(src, k, chunk, eff); err != nil {
			return err
		}
		for i, sh := range s.shards {
			sh.ctrl = make(chan shardCmd, 1)
			go s.remoteDrive(i, k, n, ys)
		}
	} else {
		for _, sh := range s.shards {
			sh.bt.installFault(eff, chunk, k)
			sh.ctrl = make(chan shardCmd, 1)
			go sh.run(s, src, k, wa, ys)
		}
	}
	liveShards := len(s.shards)

	// gather collects one report per live shard, in arrival order (a
	// shard blocked on a dead peer's block reports only after the abort
	// latch trips, which happens when the failing shard's own report is
	// read here — so arrival order is the only safe order). Counts are
	// summed exactly like the unsharded worker-row merge.
	gather := func(counts bool) {
		for got := 0; got < liveShards; got++ {
			rep := <-s.reports
			switch {
			case rep.panicked != nil:
				dead[rep.from] = true
				if panicked == nil {
					panicked = rep.panicked
				}
				closeAbort()
			case rep.err != nil:
				if linkErr == nil {
					linkErr = rep.err
				}
				closeAbort()
			case counts && rep.msgs != nil:
				for b := 0; b < k; b++ {
					s.msgsOf[b] += rep.msgs[b]
					s.notDone[b] -= rep.fins[b]
				}
			}
		}
		liveShards = 0
		for _, d := range dead {
			if !d {
				liveShards++
			}
		}
	}
	broadcast := func(cmd shardCmd) {
		for si, sh := range s.shards {
			if !dead[si] {
				sh.ctrl <- cmd
			}
		}
	}
	finish := func(collect bool) {
		broadcast(shardCmd{run: false, collect: collect})
		gather(false)
		if panicked != nil {
			panic(panicked)
		}
	}

	live := k
	var runErr error
	for round := 1; opts.StopAfter == 0 || round <= opts.StopAfter; round++ {
		if round > maxRounds {
			runErr = fmt.Errorf("%w: %d rounds on %d nodes", ErrNoHalt, maxRounds, n)
			break
		}
		broadcast(shardCmd{round: round, run: true})
		gather(true)
		if panicked != nil {
			finish(false)
		}
		if linkErr != nil {
			runErr = fmt.Errorf("local: sharded exchange: %w", linkErr)
			break
		}
		for b := 0; b < k; b++ {
			if !s.alive[b] {
				continue
			}
			s.roundsOf[b] = round
			if s.notDone[b] == 0 {
				s.alive[b] = false
				live--
			}
		}
		if live == 0 {
			break
		}
	}
	finish(runErr == nil && linkErr == nil)
	if runErr != nil {
		return runErr
	}
	if linkErr != nil {
		// A failure surfacing only in the final gather (a worker dying at
		// collection, above all) must not pass for a clean run.
		return fmt.Errorf("local: sharded exchange: %w", linkErr)
	}
	for b := 0; b < k; b++ {
		res[b] = Result{
			Y:     ys[b*n : (b+1)*n : (b+1)*n],
			Stats: Stats{Rounds: s.roundsOf[b], Messages: s.msgsOf[b]},
		}
		out[b] = &res[b]
	}
	return nil
}

// run is one shard's execution loop: init + round-1 staging over its own
// node range, then one exchange + pass + swap per orchestrator command.
// The Batch passes are the unsharded ones — worker 0 over [lo, hi) — and
// the shared alive slice (orchestrator-written between rounds, command
// channels provide the happens-before) stands in for the batch's own.
func (sh *shardExec) run(s *Sharded, src laneSrc, k int, wa WireAlgorithm, ys [][]byte) {
	defer func() {
		if r := recover(); r != nil {
			sh.cleanup()
			s.reports <- shardReport{from: sh.idx, panicked: r}
		}
	}()
	bt := sh.bt
	n := s.plan.g.N()
	bt.ensureWireState()
	bt.ensureWorkerScratch(1)
	// Zero the counter rows before staging: a previous run's final-round
	// stage counts (never captured — last-round stages are not delivered)
	// must not replay into this run's first round.
	clear(bt.wkStage[0])
	clear(bt.wkMsgs[0])
	clear(bt.wkFin[0])
	bt.alive = s.alive
	bt.preparePools(wa)
	bt.rk, bt.rwa, bt.rsrc = k, wa, src
	bt.startPass(0, sh.lo, sh.hi)
	for {
		cmd := <-sh.ctrl
		if !cmd.run {
			if cmd.collect {
				sh.collectInto(ys, k, n)
			}
			// Cleanup strictly before the ack: the ack releases the
			// orchestrator, which may immediately hand this batch to the
			// next execution vector's goroutine.
			sh.cleanup()
			s.reports <- shardReport{from: sh.idx}
			return
		}
		if err := sh.execRound(cmd.round, k); err != nil {
			s.reports <- shardReport{from: sh.idx, err: err}
			continue
		}
		s.reports <- shardReport{from: sh.idx, msgs: bt.wkMsgs[0][:k], fins: bt.wkFin[0][:k]}
	}
}

// execRound is one shard's round: the cut exchange, the round pass over
// the shard's node window, and the slab swap. The shard-worker protocol
// drives the same method from a control connection instead of the
// in-process ctrl channel.
//
// Message accounting on the fault-free path is sender-side: what this
// shard's nodes staged last round is delivered (to its own nodes or
// across a cut to a peer's) this round, so the previous pass's stage
// counts become this round's report row. Per-shard partials differ from
// the receiver-side ones — a cut message now counts at its sender's
// shard — but the orchestrator only ever sums the rows, and the global
// per-lane sums are identical. The alive gate matches the unsharded
// merge: the orchestrator updates the shared alive vector before issuing
// the round, exactly the state the receiver-side count observed. Fault
// runs keep receiver-side accounting — faultPass overwrites the row.
func (sh *shardExec) execRound(round, k int) error {
	bt := sh.bt
	if err := sh.exchange(round, k); err != nil {
		return err
	}
	stRow := bt.wkStage[0][:k]
	if bt.fault == nil {
		msgRow := bt.wkMsgs[0][:k]
		for b := 0; b < k; b++ {
			msgRow[b] = 0
			if bt.alive[b] {
				msgRow[b] = stRow[b]
			}
		}
	}
	clear(stRow)
	clear(bt.wkFin[0][:k])
	bt.rround = round
	bt.roundPass(0, sh.lo, sh.hi)
	bt.curLens, bt.nextLens = bt.nextLens, bt.curLens
	bt.curWords, bt.nextWord = bt.nextWord, bt.curWords
	bt.curRefs, bt.nextRefs = bt.nextRefs, bt.curRefs
	return nil
}

// collectInto gathers the shard's node window outputs: ys[b*n+v] for
// every lane b and owned node v (n is the global node count).
func (sh *shardExec) collectInto(ys [][]byte, k, n int) {
	bt := sh.bt
	for v := sh.lo; v < sh.hi; v++ {
		for b := 0; b < k; b++ {
			ys[b*n+v] = bt.outputOf(v, b)
		}
	}
}

// cleanup is the unsharded runVec's no-retention cleanup, per shard: a
// pooled shard batch never keeps a previous execution's processes or
// messages alive (the pooled process table is the deliberate exception,
// as in Batch.runVec).
func (sh *shardExec) cleanup() {
	bt := sh.bt
	if bt.procAlgo == nil {
		clear(bt.procs)
	}
	if bt.vprocAlgo == nil {
		clear(bt.vprocs)
	}
	clear(bt.curRefs)
	clear(bt.nextRefs)
	clear(bt.heldRefs)
	bt.rsrc = laneSrc{}
	bt.rwa = nil
}

// exchange performs one round's cut handoff: pack and send the cur-slab
// ranges every peer reads from this shard, then receive and install the
// ranges this shard reads from every peer. Sends never block (one-slot
// links, one block in flight), so the fixed send-then-receive order
// cannot deadlock.
func (sh *shardExec) exchange(round, k int) error {
	bt := sh.bt
	for oi := range sh.out {
		port := &sh.out[oi]
		bt.packCut(port.cut, k, &port.buf)
		if err := port.link.Send(round, port.buf); err != nil {
			return err
		}
	}
	for ii := range sh.in {
		port := &sh.in[ii]
		blk, err := port.link.Recv(round)
		if err != nil {
			return err
		}
		if err := bt.installCut(port.haloLo, len(port.cut), k, blk); err != nil {
			return err
		}
	}
	return nil
}

// packCut flattens the cut slots' [slot][lane] ranges out of the current
// send slabs into blk, reusing its backing arrays. The cut lists global
// slots the sender owns, so each maps to the window-local slot
// s−slotBase; lens rows are k lanes per slot, word rows capW·k per slot
// — both contiguous in the slab. When the run uses the full lane block
// (k == B) the pack goes further: offW is a strict prefix sum over
// consecutive local slots, so a maximal run of consecutive cut slots is
// ONE dense lens copy and ONE dense word copy — cut slots cluster on
// contiguous CSR ranges, making the per-peer pack a handful of memcpys
// instead of a per-slot loop.
func (bt *Batch) packCut(cut []int32, k int, blk *CutBlock) {
	B := bt.block
	base := bt.slotBase
	lens := blk.Lens[:0]
	words := blk.Words[:0]
	if k == B {
		for i := 0; i < len(cut); {
			j := i + 1
			for j < len(cut) && cut[j] == cut[j-1]+1 {
				j++
			}
			slo, shi := int(cut[i])-base, int(cut[j-1])-base+1
			lens = append(lens, bt.curLens[slo*B:shi*B]...)
			wlo, whi := int(bt.offW[slo]), int(bt.offW[shi-1])+int(bt.capW[shi-1])
			if whi > wlo {
				words = append(words, bt.curWords[wlo*B:whi*B]...)
			}
			i = j
		}
	} else {
		for _, s := range cut {
			sl := int(s) - base
			li := sl * B
			lens = append(lens, bt.curLens[li:li+k]...)
			if w := int(bt.capW[sl]); w > 0 {
				wbase := int(bt.offW[sl]) * B
				words = append(words, bt.curWords[wbase:wbase+w*k]...)
			}
		}
	}
	blk.Lens, blk.Words = lens, words
	blk.Refs = blk.Refs[:0]
	if bt.curRefs != nil {
		refs := blk.Refs
		for _, s := range cut {
			li := (int(s) - base) * B
			refs = append(refs, bt.curRefs[li:li+k]...)
		}
		blk.Refs = refs
	}
}

// installCut writes a received block into the current receive slabs at
// the receiver's halo segment [haloLo, haloLo+ncut) — the shard-side
// half of the gather: the subsequent roundPass reads these local slots
// through the window's Rev table exactly as if a local sender had staged
// them. Shape violations (a malformed or truncated frame that survived
// the codec) are reported, not panicked: they abort the sharded run
// with a descriptive error.
func (bt *Batch) installCut(haloLo, ncut, k int, blk CutBlock) error {
	if len(blk.Lens) != ncut*k {
		return fmt.Errorf("local: cut block carries %d lens for %d slots × %d lanes", len(blk.Lens), ncut, k)
	}
	B := bt.block
	wantW := 0
	for i := 0; i < ncut; i++ {
		wantW += int(bt.capW[haloLo+i]) * k
	}
	if len(blk.Words) != wantW {
		return fmt.Errorf("local: cut block carries %d words, layout expects %d for %d slots × %d lanes", len(blk.Words), wantW, ncut, k)
	}
	// Clamp the lens values, not just the section shapes: a
	// structurally valid frame carrying an oversized len would
	// otherwise make the Inbox read past the slot's word capacity —
	// silent wrong delivery at best, a bounds panic at worst. Local
	// packCut can never produce one; byte-stream peers can.
	for i := 0; i < ncut; i++ {
		sl := haloLo + i
		for _, l := range blk.Lens[i*k : (i+1)*k] {
			if l < 0 || l > bt.capW[sl]+1 {
				return fmt.Errorf("local: cut block len %d exceeds slot capacity %d words", l-1, bt.capW[sl])
			}
		}
	}
	if k == B && ncut > 0 {
		// Full-block fast path: a peer's halo segment is consecutive
		// local slots and offW is a strict prefix sum over them, so the
		// whole install is one dense lens copy and one dense word copy.
		copy(bt.curLens[haloLo*B:(haloLo+ncut)*B], blk.Lens)
		wlo := int(bt.offW[haloLo])
		copy(bt.curWords[wlo*B:wlo*B+wantW], blk.Words)
	} else {
		li0, w0 := 0, 0
		for i := 0; i < ncut; i++ {
			sl := haloLo + i
			li := sl * B
			copy(bt.curLens[li:li+k], blk.Lens[li0:li0+k])
			li0 += k
			if w := int(bt.capW[sl]); w > 0 {
				base := int(bt.offW[sl]) * B
				copy(bt.curWords[base:base+w*k], blk.Words[w0:w0+w*k])
				w0 += w * k
			}
		}
	}
	if bt.curRefs != nil && len(blk.Refs) > 0 {
		if len(blk.Refs) != ncut*k {
			return fmt.Errorf("local: cut block carries %d refs for %d slots × %d lanes", len(blk.Refs), ncut, k)
		}
		r0 := 0
		for i := 0; i < ncut; i++ {
			li := (haloLo + i) * B
			copy(bt.curRefs[li:li+k], blk.Refs[r0:r0+k])
			r0 += k
		}
	}
	return nil
}
