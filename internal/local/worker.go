package local

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file is the worker half of the shard-worker protocol (see
// remote.go for the orchestrator and the message catalogue): ServeShard
// turns the current process into one shard of a remote Sharded. The
// worker rebuilds the job's graph and its compacted slot window from the
// shipped CSR adjacency, establishes direct TCP data links to its peer
// workers, and then drives the very same shardExec machinery the
// in-process orchestrator uses — startPass, execRound, collectInto — one
// control command at a time. `rlnc shard-worker` is the process entry
// point.

// dataPreambleLen is the fixed-width connection preamble a dialing
// worker writes before its first frame: magic "rlSW", the job id, and
// the directed pair. Fixed width (no gob) so the receiving side cannot
// over-read into the first cut-block frame.
const dataPreambleLen = 4 + 8 + 4 + 4

// writeDataPreamble identifies a fresh data connection.
func writeDataPreamble(conn net.Conn, job int64, from, to int32) error {
	var b [dataPreambleLen]byte
	copy(b[0:4], "rlSW")
	binary.LittleEndian.PutUint64(b[4:12], uint64(job))
	binary.LittleEndian.PutUint32(b[12:16], uint32(from))
	binary.LittleEndian.PutUint32(b[16:20], uint32(to))
	_, err := conn.Write(b[:])
	return err
}

// readDataPreamble parses a peer's preamble.
func readDataPreamble(conn net.Conn) (job int64, from, to int32, err error) {
	var b [dataPreambleLen]byte
	if _, err = io.ReadFull(conn, b[:]); err != nil {
		return 0, 0, 0, err
	}
	if string(b[0:4]) != "rlSW" {
		return 0, 0, 0, fmt.Errorf("local: bad data-link preamble magic %q", b[0:4])
	}
	job = int64(binary.LittleEndian.Uint64(b[4:12]))
	from = int32(binary.LittleEndian.Uint32(b[12:16]))
	to = int32(binary.LittleEndian.Uint32(b[16:20]))
	return job, from, to, nil
}

// shardWorker is one serving worker's state: the control connection and
// codecs, the data listener peers dial, and the current job and run.
// sendMu serializes control-stream writes between the serve loop and the
// heartbeat goroutine — a gob encoder is not safe for concurrent use.
type shardWorker struct {
	ctrl   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	sendMu sync.Mutex
	ln     net.Listener

	// dieAfter counts down on each round command when positive; at zero
	// the worker abruptly closes every connection and exits — the
	// deterministic stand-in for a worker process dying mid-run
	// (ServeOptions.DieAfterRounds, `rlnc shard-worker -die-after-rounds`).
	dieAfter int

	job *workerJob
	run *workerRun
}

// sendMsg encodes one worker message under the write deadline. Deadline
// errors are real failures (a closed or deadline-refusing conn), not
// noise to discard: they surface so the serve loop can exit descriptively.
func (w *shardWorker) sendMsg(m *workerMsg) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	if err := w.ctrl.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout)); err != nil {
		return fmt.Errorf("local: shard worker write deadline: %w", err)
	}
	if err := w.enc.Encode(m); err != nil {
		return err
	}
	if err := w.ctrl.SetWriteDeadline(time.Time{}); err != nil {
		return fmt.Errorf("local: shard worker clear write deadline: %w", err)
	}
	return nil
}

// workerJob is one (graph, partition, algorithm) job: the rebuilt plan,
// this shard's executor with its windowed batch, and the data
// connections backing its links.
type workerJob struct {
	id      int64
	g       *graph.Graph
	wa      WireAlgorithm
	width   int
	timeout time.Duration
	sh      *shardExec
	conns   []net.Conn
}

// workerRun is one execution vector in flight: lane count, the
// per-lane instances and liveness, and any setup failure to report on
// the next command.
type workerRun struct {
	k        int
	insts    []*lang.Instance
	alive    []bool
	tapes    []localrand.Tape
	errText  string
	panicked string
}

// DefaultWorkerBeat is the heartbeat period a serving worker announces
// and keeps when ServeOptions.Beat is zero. The orchestrator declares a
// worker dead after four silent periods, so with the default a frozen
// worker is detected in ~8s; deployments with very large collect
// payloads on slow links can raise it (`rlnc shard-worker -heartbeat`).
const DefaultWorkerBeat = 2 * time.Second

// ServeOptions configures one serving shard worker.
type ServeOptions struct {
	// Listen is the address the worker's data listener binds. Empty
	// selects a loopback ephemeral port — single-host default. Multi-host
	// workers bind a reachable interface (or ":0" for all interfaces).
	Listen string
	// Advertise is the data address reported to the orchestrator and
	// dialed by peer workers. Empty derives it from the listener: a
	// wildcard host (":0", "0.0.0.0") is replaced by the local address of
	// the control connection — the interface that reaches the
	// orchestrator is the best default guess for what peers can reach.
	Advertise string
	// Beat is the heartbeat period on the control stream; 0 selects
	// DefaultWorkerBeat, negative disables heartbeats entirely.
	Beat time.Duration
	// DieAfterRounds, when positive, abruptly closes every connection and
	// exits with an error after that many round commands — fault
	// injection at the process level, used by CI to prove a mid-run
	// worker death requeues cleanly. Zero never dies.
	DieAfterRounds int
}

// ServeShard serves shard jobs on the control connection until the
// orchestrator closes it, hosting one shard of a remote Sharded per job.
// listenAddr is the data listener's bind address ("" selects a loopback
// ephemeral port). ServeShardOpts is the full-option form.
func ServeShard(ctrl net.Conn, listenAddr string) error {
	return ServeShardOpts(ctrl, ServeOptions{Listen: listenAddr})
}

// errWorkerChaosExit marks a deliberate DieAfterRounds death.
var errWorkerChaosExit = errors.New("local: shard worker chaos exit (die-after-rounds reached)")

// ServeShardOpts serves shard jobs on the control connection until the
// orchestrator closes it. It announces itself with a versioned hello
// (protocol version, data address, registered-algorithm capabilities,
// heartbeat period) and then heartbeats from a dedicated goroutine so
// the orchestrator can tell a long computation from a dead worker.
func ServeShardOpts(ctrl net.Conn, o ServeOptions) error {
	listenAddr := o.Listen
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("local: shard worker listen: %w", err)
	}
	beat := o.Beat
	if beat == 0 {
		beat = DefaultWorkerBeat
	}
	w := &shardWorker{
		ctrl:     ctrl,
		enc:      gob.NewEncoder(ctrl),
		dec:      gob.NewDecoder(ctrl),
		ln:       ln,
		dieAfter: o.DieAfterRounds,
	}
	defer w.teardownJob()
	defer ln.Close()
	hello := &helloMsg{
		Version:  ctrlProtoVersion,
		DataAddr: advertiseAddr(o.Advertise, ctrl, ln),
		Algos:    RegisteredRemoteAlgorithms(),
	}
	if beat > 0 {
		hello.BeatMS = beat.Milliseconds()
	}
	if err := w.sendHello(hello); err != nil {
		return fmt.Errorf("local: shard worker hello: %w", err)
	}
	if beat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go w.heartbeat(beat, stop)
	}
	for {
		var msg ctrlMsg
		if err := w.dec.Decode(&msg); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // orderly shutdown: orchestrator hung up
			}
			return fmt.Errorf("local: shard worker control: %w", err)
		}
		switch {
		case msg.Job != nil:
			ready := &reportMsg{}
			if err := w.setupJob(msg.Job); err != nil {
				ready.Err = err.Error()
			}
			if err := w.sendMsg(&workerMsg{Ready: ready}); err != nil {
				return err
			}
		case msg.Run != nil:
			w.beginRun(msg.Run)
		case msg.Cmd != nil:
			if msg.Cmd.Run && w.dieAfter > 0 {
				if w.dieAfter--; w.dieAfter == 0 {
					// Simulated process death: no farewell on any stream —
					// peers and orchestrator see exactly what a kill -9
					// produces (reset data links, dead control stream).
					w.abruptClose()
					return errWorkerChaosExit
				}
			}
			if err := w.sendMsg(&workerMsg{Report: w.execCmd(msg.Cmd)}); err != nil {
				return err
			}
		}
	}
}

// sendHello encodes the hello under the write deadline (the hello
// predates workerMsg framing, so it cannot ride sendMsg).
func (w *shardWorker) sendHello(h *helloMsg) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	if err := w.ctrl.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout)); err != nil {
		return fmt.Errorf("local: shard worker write deadline: %w", err)
	}
	if err := w.enc.Encode(h); err != nil {
		return err
	}
	if err := w.ctrl.SetWriteDeadline(time.Time{}); err != nil {
		return fmt.Errorf("local: shard worker clear write deadline: %w", err)
	}
	return nil
}

// heartbeat sends one Beat per period until stop closes or a send fails.
// A failed beat is not itself fatal to the worker: either the control
// stream is dead (the serve loop is about to find out) or nothing has
// read the stream for a full write deadline — both end the goroutine.
func (w *shardWorker) heartbeat(period time.Duration, stop chan struct{}) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := w.sendMsg(&workerMsg{Beat: true}); err != nil {
				return
			}
		case <-stop:
			return
		}
	}
}

// abruptClose severs every connection the worker holds — control, data
// listener, and the current job's data links — with no protocol
// farewell, emulating sudden process death.
func (w *shardWorker) abruptClose() {
	w.ctrl.Close()
	w.ln.Close()
	if w.job != nil {
		for _, c := range w.job.conns {
			c.Close()
		}
	}
}

// advertiseAddr resolves the data address peers will dial: the explicit
// override when set, otherwise the listener's address with a wildcard
// host substituted by the control connection's local IP (a peer cannot
// dial "0.0.0.0"; the interface facing the orchestrator is the sanest
// guess for one peers reach too).
func advertiseAddr(advertise string, ctrl net.Conn, ln net.Listener) string {
	if advertise != "" {
		return advertise
	}
	lnAddr := ln.Addr().String()
	host, port, err := net.SplitHostPort(lnAddr)
	if err != nil {
		return lnAddr
	}
	ip := net.ParseIP(host)
	if host != "" && (ip == nil || !ip.IsUnspecified()) {
		return lnAddr
	}
	if la, ok := ctrl.LocalAddr().(*net.TCPAddr); ok && la.IP != nil && !la.IP.IsUnspecified() {
		return net.JoinHostPort(la.IP.String(), port)
	}
	return lnAddr
}

// teardownJob closes the current job's data connections.
func (w *shardWorker) teardownJob() {
	if w.job == nil {
		return
	}
	for _, c := range w.job.conns {
		c.Close()
	}
	w.job = nil
	w.run = nil
}

// setupJob rebuilds the job's graph, window, and shard executor, and
// establishes the data links to its peers.
func (w *shardWorker) setupJob(spec *jobSpec) error {
	w.teardownJob()
	n := len(spec.Offsets) - 1
	if n < 1 || int(spec.Offsets[n]) != len(spec.Nbrs) {
		return fmt.Errorf("local: job %d ships a malformed CSR adjacency", spec.Job)
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = spec.Nbrs[spec.Offsets[v]:spec.Offsets[v+1]]
	}
	g, err := graph.FromAdjacency(adj)
	if err != nil {
		return fmt.Errorf("local: job %d adjacency: %w", spec.Job, err)
	}
	plan, err := NewPlan(g)
	if err != nil {
		return err
	}
	part := graph.Partition{Bounds: spec.Bounds}
	if err := plan.topo.CheckPartition(part); err != nil {
		return fmt.Errorf("local: job %d partition: %w", spec.Job, err)
	}
	me := int(spec.Shard)
	if me < 0 || me >= part.NumShards() || part.NumShards() != len(spec.Peers) {
		return fmt.Errorf("local: job %d names shard %d of %d with %d peers", spec.Job, me, part.NumShards(), len(spec.Peers))
	}
	algo, err := remoteAlgoFor(spec.AlgoKey, spec.AlgoParams)
	if err != nil {
		return err
	}
	cuts := plan.topo.CutSlots(part)
	win := plan.topo.ShardSlots(part, cuts, me)
	lo, hi := part.Shard(me)
	sh := &shardExec{idx: me, lo: lo, hi: hi, win: &win, bt: plan.newWindowBatch(int(spec.Width), &win)}
	for j := 0; j < part.NumShards(); j++ {
		if len(cuts[me][j]) > 0 {
			sh.out = append(sh.out, shardPort{peer: j, cut: cuts[me][j]})
		}
		if len(cuts[j][me]) > 0 {
			sh.in = append(sh.in, shardPort{peer: j, cut: cuts[j][me], haloLo: win.HaloLocal(j)})
		}
	}
	job := &workerJob{
		id:      spec.Job,
		g:       g,
		wa:      wireOf(algo),
		width:   int(spec.Width),
		timeout: time.Duration(spec.TimeoutMS) * time.Millisecond,
		sh:      sh,
	}
	if err := job.connectLinks(w.ln, spec.Peers); err != nil {
		for _, c := range job.conns {
			c.Close()
		}
		return err
	}
	w.job = job
	return nil
}

// connectLinks establishes the job's data connections: one dialed TCP
// connection per out-cut (identified by a fixed preamble) and one
// accepted connection per in-cut, matched to its port by the preamble's
// sender shard. Dials retry with backoff — on separate hosts a peer's
// listener may not be up yet when this worker's job arrives — and never
// wait on accepts (the listener backlog holds them), so the symmetric
// setup cannot deadlock. Deadline errors are checked everywhere: a conn
// that refuses deadlines would otherwise turn a vanished peer into an
// unbounded hang, and the listener deadline is cleared afterwards so a
// stale deadline cannot poison the next job's accepts.
func (j *workerJob) connectLinks(ln net.Listener, peers []string) error {
	window := j.timeout + 5*time.Second
	deadline := time.Now().Add(window)
	for oi := range j.sh.out {
		port := &j.sh.out[oi]
		conn, err := DialRetry("tcp", peers[port.peer], window)
		if err != nil {
			return fmt.Errorf("local: dial peer shard %d: %w", port.peer, err)
		}
		j.conns = append(j.conns, conn)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return fmt.Errorf("local: peer shard %d write deadline: %w", port.peer, err)
		}
		if err := writeDataPreamble(conn, j.id, int32(j.sh.idx), int32(port.peer)); err != nil {
			return fmt.Errorf("local: preamble to peer shard %d: %w", port.peer, err)
		}
		if err := conn.SetWriteDeadline(time.Time{}); err != nil {
			return fmt.Errorf("local: peer shard %d clear write deadline: %w", port.peer, err)
		}
		port.link = StreamLink(conn, nil, j.timeout)
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	pending := len(j.sh.in)
	for pending > 0 {
		if d, ok := ln.(deadliner); ok {
			if err := d.SetDeadline(deadline); err != nil {
				return fmt.Errorf("local: data listener deadline: %w", err)
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("local: accept peer data link: %w", err)
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			conn.Close()
			return fmt.Errorf("local: peer data-link read deadline: %w", err)
		}
		job, from, to, err := readDataPreamble(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("local: peer data-link preamble: %w", err)
		}
		if job != j.id || int(to) != j.sh.idx {
			// A connection from a stale job (or a confused peer): drop it
			// and keep waiting for the current job's links.
			conn.Close()
			continue
		}
		matched := false
		for ii := range j.sh.in {
			port := &j.sh.in[ii]
			if port.peer == int(from) && port.link == nil {
				if err := conn.SetReadDeadline(time.Time{}); err != nil {
					conn.Close()
					return fmt.Errorf("local: peer data-link clear read deadline: %w", err)
				}
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.SetNoDelay(true)
				}
				port.link = StreamLink(nil, conn, j.timeout)
				j.conns = append(j.conns, conn)
				matched = true
				pending--
				break
			}
		}
		if !matched {
			conn.Close()
			return fmt.Errorf("local: unexpected data link from shard %d", from)
		}
	}
	// The accept loop is done: clear the listener deadline so the next
	// job's accepts (or a long idle period) don't inherit a stale one.
	if d, ok := ln.(deadliner); ok {
		if err := d.SetDeadline(time.Time{}); err != nil {
			return fmt.Errorf("local: clear data listener deadline: %w", err)
		}
	}
	return nil
}

// beginRun stands one execution vector up: instances, draws, tapes, and
// the startPass staging. Failures (including panics out of the
// algorithm's Start) are parked and reported on the next command, which
// is when the orchestrator listens.
func (w *shardWorker) beginRun(rs *runSpec) {
	run := &workerRun{}
	w.run = run
	defer func() {
		if r := recover(); r != nil {
			run.panicked = fmt.Sprint(r)
		}
	}()
	if w.job == nil {
		run.errText = "local: run before any job"
		return
	}
	j := w.job
	bt, sh := j.sh.bt, j.sh
	k := int(rs.K)
	if k < 1 || k > j.width {
		run.errText = fmt.Sprintf("local: run of %d lanes on width %d", k, j.width)
		return
	}
	bt.layoutWire(j.wa)
	if int(rs.Block) > bt.block || int(rs.Block) < k {
		run.errText = fmt.Sprintf("local: run block %d outside [%d, %d]", rs.Block, k, bt.block)
		return
	}
	bt.block = int(rs.Block)
	run.k = k
	if len(rs.Lane) != k {
		run.errText = fmt.Sprintf("local: %d lane indices for %d lanes", len(rs.Lane), k)
		return
	}
	run.insts = make([]*lang.Instance, len(rs.Insts))
	for i, ip := range rs.Insts {
		x := ip.X
		if x == nil {
			x = make([][]byte, j.g.N())
		}
		in, err := lang.NewInstance(j.g, x, ip.ID)
		if err != nil {
			run.errText = fmt.Sprintf("local: run instance %d: %v", i, err)
			return
		}
		run.insts[i] = in
	}
	for _, li := range rs.Lane {
		if int(li) < 0 || int(li) >= len(run.insts) {
			run.errText = fmt.Sprintf("local: run lane instance index %d out of %d", li, len(run.insts))
			return
		}
	}
	laneIns := make([]*lang.Instance, k)
	for b := 0; b < k; b++ {
		laneIns[b] = run.insts[rs.Lane[b]]
	}
	// Reconstruct the effective fault plan (or disarm any previous run's).
	// Lane identities come from the same draw seeds the tapes use, so a
	// faulty remote shard makes byte-identical fault decisions to its
	// in-process twin.
	if rs.HasFault {
		f := &FaultPlan{
			Seed:       rs.FaultSeed,
			Drop:       rs.FaultDrop,
			Delay:      rs.FaultDelay,
			CrashP:     rs.FaultCrashP,
			CrashFrom:  int(rs.FaultCrashFrom),
			CrashUntil: int(rs.FaultCrashUntil),
		}
		if len(rs.FaultCuts)%3 != 0 {
			run.errText = fmt.Sprintf("local: %d fault cut words, want a multiple of 3", len(rs.FaultCuts))
			return
		}
		for i := 0; i < len(rs.FaultCuts); i += 3 {
			f.Surgery = append(f.Surgery, EdgeCut{
				Round: int(rs.FaultCuts[i]),
				U:     int(rs.FaultCuts[i+1]),
				Z:     int(rs.FaultCuts[i+2]),
			})
		}
		var seeds []uint64
		if rs.HasDraws {
			seeds = rs.Draws
		}
		bt.installFaultSeeds(f, seeds, k)
	} else {
		bt.installFaultSeeds(nil, nil, k)
	}
	src := laneSrc{ins: laneIns}
	if rs.HasDraws {
		if len(rs.Draws) != k {
			run.errText = fmt.Sprintf("local: %d draw seeds for %d lanes", len(rs.Draws), k)
			return
		}
		nwin := sh.hi - sh.lo
		run.tapes = make([]localrand.Tape, k*nwin)
		for b := 0; b < k; b++ {
			d := localrand.DrawFromSeed(rs.Draws[b])
			d.TapeVecInto(run.tapes[b*nwin:(b+1)*nwin], laneIns[b].ID[sh.lo:sh.hi])
		}
		src.tapes, src.tlo, src.tn = run.tapes, sh.lo, nwin
	}
	run.alive = make([]bool, j.width)
	for b := 0; b < k; b++ {
		run.alive[b] = true
	}
	bt.ensureWireState()
	bt.ensureWorkerScratch(1)
	// Zero the counter rows before staging, exactly as the in-process
	// shard loop does: a previous run's uncaptured final-round stage
	// counts must not replay into this run's first round.
	clear(bt.wkStage[0])
	clear(bt.wkMsgs[0])
	clear(bt.wkFin[0])
	bt.alive = run.alive
	bt.preparePools(j.wa)
	bt.rk, bt.rwa, bt.rsrc = k, j.wa, src
	bt.startPass(0, sh.lo, sh.hi)
}

// execCmd executes one orchestrator command against the current run and
// returns its report.
func (w *shardWorker) execCmd(cmd *cmdMsg) (rep *reportMsg) {
	rep = &reportMsg{}
	run := w.run
	if run == nil {
		rep.Err = "local: command before any run"
		return rep
	}
	defer func() {
		if r := recover(); r != nil {
			rep = &reportMsg{Panicked: fmt.Sprint(r)}
		}
	}()
	sh := w.job.sh
	bt := sh.bt
	if !cmd.Run {
		if run.errText == "" && run.panicked == "" && cmd.Collect {
			nwin := sh.hi - sh.lo
			rep.Out = make([][]byte, run.k*nwin)
			for v := sh.lo; v < sh.hi; v++ {
				for b := 0; b < run.k; b++ {
					rep.Out[b*nwin+(v-sh.lo)] = bt.outputOf(v, b)
				}
			}
		}
		sh.cleanup()
		w.run = nil
		return rep
	}
	switch {
	case run.panicked != "":
		rep.Panicked = run.panicked
	case run.errText != "":
		rep.Err = run.errText
	case len(cmd.Alive) != run.k:
		rep.Err = fmt.Sprintf("local: liveness vector carries %d lanes, want %d", len(cmd.Alive), run.k)
	default:
		copy(run.alive[:run.k], cmd.Alive)
		if err := sh.execRound(int(cmd.Round), run.k); err != nil {
			rep.Err = err.Error()
			return rep
		}
		rep.Msgs = bt.wkMsgs[0][:run.k]
		rep.Fins = make([]int32, run.k)
		for b, f := range bt.wkFin[0][:run.k] {
			rep.Fins[b] = int32(f)
		}
	}
	return rep
}
