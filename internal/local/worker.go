package local

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file is the worker half of the shard-worker protocol (see
// remote.go for the orchestrator and the message catalogue): ServeShard
// turns the current process into one shard of a remote Sharded. The
// worker rebuilds the job's graph and its compacted slot window from the
// shipped CSR adjacency, establishes direct TCP data links to its peer
// workers, and then drives the very same shardExec machinery the
// in-process orchestrator uses — startPass, execRound, collectInto — one
// control command at a time. `rlnc shard-worker` is the process entry
// point.

// dataPreambleLen is the fixed-width connection preamble a dialing
// worker writes before its first frame: magic "rlSW", the job id, and
// the directed pair. Fixed width (no gob) so the receiving side cannot
// over-read into the first cut-block frame.
const dataPreambleLen = 4 + 8 + 4 + 4

// writeDataPreamble identifies a fresh data connection.
func writeDataPreamble(conn net.Conn, job int64, from, to int32) error {
	var b [dataPreambleLen]byte
	copy(b[0:4], "rlSW")
	binary.LittleEndian.PutUint64(b[4:12], uint64(job))
	binary.LittleEndian.PutUint32(b[12:16], uint32(from))
	binary.LittleEndian.PutUint32(b[16:20], uint32(to))
	_, err := conn.Write(b[:])
	return err
}

// readDataPreamble parses a peer's preamble.
func readDataPreamble(conn net.Conn) (job int64, from, to int32, err error) {
	var b [dataPreambleLen]byte
	if _, err = io.ReadFull(conn, b[:]); err != nil {
		return 0, 0, 0, err
	}
	if string(b[0:4]) != "rlSW" {
		return 0, 0, 0, fmt.Errorf("local: bad data-link preamble magic %q", b[0:4])
	}
	job = int64(binary.LittleEndian.Uint64(b[4:12]))
	from = int32(binary.LittleEndian.Uint32(b[12:16]))
	to = int32(binary.LittleEndian.Uint32(b[16:20]))
	return job, from, to, nil
}

// shardWorker is one serving worker's state: the control codecs, the
// data listener peers dial, and the current job and run.
type shardWorker struct {
	enc *gob.Encoder
	dec *gob.Decoder
	ln  net.Listener

	job *workerJob
	run *workerRun
}

// workerJob is one (graph, partition, algorithm) job: the rebuilt plan,
// this shard's executor with its windowed batch, and the data
// connections backing its links.
type workerJob struct {
	id      int64
	g       *graph.Graph
	wa      WireAlgorithm
	width   int
	timeout time.Duration
	sh      *shardExec
	conns   []net.Conn
}

// workerRun is one execution vector in flight: lane count, the
// per-lane instances and liveness, and any setup failure to report on
// the next command.
type workerRun struct {
	k        int
	insts    []*lang.Instance
	alive    []bool
	tapes    []localrand.Tape
	errText  string
	panicked string
}

// ServeShard serves shard jobs on the control connection until the
// orchestrator closes it, hosting one shard of a remote Sharded per job.
// listenAddr is the address the data listener binds ("" selects a
// loopback ephemeral port); its resolved address is reported to the
// orchestrator in the hello and relayed to peer workers.
func ServeShard(ctrl net.Conn, listenAddr string) error {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("local: shard worker listen: %w", err)
	}
	w := &shardWorker{
		enc: gob.NewEncoder(ctrl),
		dec: gob.NewDecoder(ctrl),
		ln:  ln,
	}
	defer w.teardownJob()
	defer ln.Close()
	if err := w.enc.Encode(&helloMsg{DataAddr: ln.Addr().String()}); err != nil {
		return fmt.Errorf("local: shard worker hello: %w", err)
	}
	for {
		var msg ctrlMsg
		if err := w.dec.Decode(&msg); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // orderly shutdown: orchestrator hung up
			}
			return fmt.Errorf("local: shard worker control: %w", err)
		}
		switch {
		case msg.Job != nil:
			ready := &reportMsg{}
			if err := w.setupJob(msg.Job); err != nil {
				ready.Err = err.Error()
			}
			if err := w.enc.Encode(&workerMsg{Ready: ready}); err != nil {
				return err
			}
		case msg.Run != nil:
			w.beginRun(msg.Run)
		case msg.Cmd != nil:
			if err := w.enc.Encode(&workerMsg{Report: w.execCmd(msg.Cmd)}); err != nil {
				return err
			}
		}
	}
}

// teardownJob closes the current job's data connections.
func (w *shardWorker) teardownJob() {
	if w.job == nil {
		return
	}
	for _, c := range w.job.conns {
		c.Close()
	}
	w.job = nil
	w.run = nil
}

// setupJob rebuilds the job's graph, window, and shard executor, and
// establishes the data links to its peers.
func (w *shardWorker) setupJob(spec *jobSpec) error {
	w.teardownJob()
	n := len(spec.Offsets) - 1
	if n < 1 || int(spec.Offsets[n]) != len(spec.Nbrs) {
		return fmt.Errorf("local: job %d ships a malformed CSR adjacency", spec.Job)
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = spec.Nbrs[spec.Offsets[v]:spec.Offsets[v+1]]
	}
	g, err := graph.FromAdjacency(adj)
	if err != nil {
		return fmt.Errorf("local: job %d adjacency: %w", spec.Job, err)
	}
	plan, err := NewPlan(g)
	if err != nil {
		return err
	}
	part := graph.Partition{Bounds: spec.Bounds}
	if err := plan.topo.CheckPartition(part); err != nil {
		return fmt.Errorf("local: job %d partition: %w", spec.Job, err)
	}
	me := int(spec.Shard)
	if me < 0 || me >= part.NumShards() || part.NumShards() != len(spec.Peers) {
		return fmt.Errorf("local: job %d names shard %d of %d with %d peers", spec.Job, me, part.NumShards(), len(spec.Peers))
	}
	algo, err := remoteAlgoFor(spec.AlgoKey, spec.AlgoParams)
	if err != nil {
		return err
	}
	cuts := plan.topo.CutSlots(part)
	win := plan.topo.ShardSlots(part, cuts, me)
	lo, hi := part.Shard(me)
	sh := &shardExec{idx: me, lo: lo, hi: hi, win: &win, bt: plan.newWindowBatch(int(spec.Width), &win)}
	for j := 0; j < part.NumShards(); j++ {
		if len(cuts[me][j]) > 0 {
			sh.out = append(sh.out, shardPort{peer: j, cut: cuts[me][j]})
		}
		if len(cuts[j][me]) > 0 {
			sh.in = append(sh.in, shardPort{peer: j, cut: cuts[j][me], haloLo: win.HaloLocal(j)})
		}
	}
	job := &workerJob{
		id:      spec.Job,
		g:       g,
		wa:      wireOf(algo),
		width:   int(spec.Width),
		timeout: time.Duration(spec.TimeoutMS) * time.Millisecond,
		sh:      sh,
	}
	if err := job.connectLinks(w.ln, spec.Peers); err != nil {
		for _, c := range job.conns {
			c.Close()
		}
		return err
	}
	w.job = job
	return nil
}

// connectLinks establishes the job's data connections: one dialed TCP
// connection per out-cut (identified by a fixed preamble) and one
// accepted connection per in-cut, matched to its port by the preamble's
// sender shard. Dials never wait on accepts (the listener backlog holds
// them), so the symmetric setup cannot deadlock.
func (j *workerJob) connectLinks(ln net.Listener, peers []string) error {
	deadline := time.Now().Add(j.timeout + 5*time.Second)
	for oi := range j.sh.out {
		port := &j.sh.out[oi]
		conn, err := net.DialTimeout("tcp", peers[port.peer], j.timeout+5*time.Second)
		if err != nil {
			return fmt.Errorf("local: dial peer shard %d: %w", port.peer, err)
		}
		j.conns = append(j.conns, conn)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		conn.SetWriteDeadline(deadline)
		if err := writeDataPreamble(conn, j.id, int32(j.sh.idx), int32(port.peer)); err != nil {
			return fmt.Errorf("local: preamble to peer shard %d: %w", port.peer, err)
		}
		conn.SetWriteDeadline(time.Time{})
		port.link = StreamLink(conn, nil, j.timeout)
	}
	pending := len(j.sh.in)
	for pending > 0 {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("local: accept peer data link: %w", err)
		}
		conn.SetReadDeadline(deadline)
		job, from, to, err := readDataPreamble(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("local: peer data-link preamble: %w", err)
		}
		if job != j.id || int(to) != j.sh.idx {
			// A connection from a stale job (or a confused peer): drop it
			// and keep waiting for the current job's links.
			conn.Close()
			continue
		}
		matched := false
		for ii := range j.sh.in {
			port := &j.sh.in[ii]
			if port.peer == int(from) && port.link == nil {
				conn.SetReadDeadline(time.Time{})
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.SetNoDelay(true)
				}
				port.link = StreamLink(nil, conn, j.timeout)
				j.conns = append(j.conns, conn)
				matched = true
				pending--
				break
			}
		}
		if !matched {
			conn.Close()
			return fmt.Errorf("local: unexpected data link from shard %d", from)
		}
	}
	return nil
}

// beginRun stands one execution vector up: instances, draws, tapes, and
// the startPass staging. Failures (including panics out of the
// algorithm's Start) are parked and reported on the next command, which
// is when the orchestrator listens.
func (w *shardWorker) beginRun(rs *runSpec) {
	run := &workerRun{}
	w.run = run
	defer func() {
		if r := recover(); r != nil {
			run.panicked = fmt.Sprint(r)
		}
	}()
	if w.job == nil {
		run.errText = "local: run before any job"
		return
	}
	j := w.job
	bt, sh := j.sh.bt, j.sh
	k := int(rs.K)
	if k < 1 || k > j.width {
		run.errText = fmt.Sprintf("local: run of %d lanes on width %d", k, j.width)
		return
	}
	bt.layoutWire(j.wa)
	if int(rs.Block) > bt.block || int(rs.Block) < k {
		run.errText = fmt.Sprintf("local: run block %d outside [%d, %d]", rs.Block, k, bt.block)
		return
	}
	bt.block = int(rs.Block)
	run.k = k
	if len(rs.Lane) != k {
		run.errText = fmt.Sprintf("local: %d lane indices for %d lanes", len(rs.Lane), k)
		return
	}
	run.insts = make([]*lang.Instance, len(rs.Insts))
	for i, ip := range rs.Insts {
		x := ip.X
		if x == nil {
			x = make([][]byte, j.g.N())
		}
		in, err := lang.NewInstance(j.g, x, ip.ID)
		if err != nil {
			run.errText = fmt.Sprintf("local: run instance %d: %v", i, err)
			return
		}
		run.insts[i] = in
	}
	for _, li := range rs.Lane {
		if int(li) < 0 || int(li) >= len(run.insts) {
			run.errText = fmt.Sprintf("local: run lane instance index %d out of %d", li, len(run.insts))
			return
		}
	}
	laneIns := make([]*lang.Instance, k)
	for b := 0; b < k; b++ {
		laneIns[b] = run.insts[rs.Lane[b]]
	}
	// Reconstruct the effective fault plan (or disarm any previous run's).
	// Lane identities come from the same draw seeds the tapes use, so a
	// faulty remote shard makes byte-identical fault decisions to its
	// in-process twin.
	if rs.HasFault {
		f := &FaultPlan{
			Seed:       rs.FaultSeed,
			Drop:       rs.FaultDrop,
			Delay:      rs.FaultDelay,
			CrashP:     rs.FaultCrashP,
			CrashFrom:  int(rs.FaultCrashFrom),
			CrashUntil: int(rs.FaultCrashUntil),
		}
		if len(rs.FaultCuts)%3 != 0 {
			run.errText = fmt.Sprintf("local: %d fault cut words, want a multiple of 3", len(rs.FaultCuts))
			return
		}
		for i := 0; i < len(rs.FaultCuts); i += 3 {
			f.Surgery = append(f.Surgery, EdgeCut{
				Round: int(rs.FaultCuts[i]),
				U:     int(rs.FaultCuts[i+1]),
				Z:     int(rs.FaultCuts[i+2]),
			})
		}
		var seeds []uint64
		if rs.HasDraws {
			seeds = rs.Draws
		}
		bt.installFaultSeeds(f, seeds, k)
	} else {
		bt.installFaultSeeds(nil, nil, k)
	}
	src := laneSrc{ins: laneIns}
	if rs.HasDraws {
		if len(rs.Draws) != k {
			run.errText = fmt.Sprintf("local: %d draw seeds for %d lanes", len(rs.Draws), k)
			return
		}
		nwin := sh.hi - sh.lo
		run.tapes = make([]localrand.Tape, k*nwin)
		for b := 0; b < k; b++ {
			d := localrand.DrawFromSeed(rs.Draws[b])
			d.TapeVecInto(run.tapes[b*nwin:(b+1)*nwin], laneIns[b].ID[sh.lo:sh.hi])
		}
		src.tapes, src.tlo, src.tn = run.tapes, sh.lo, nwin
	}
	run.alive = make([]bool, j.width)
	for b := 0; b < k; b++ {
		run.alive[b] = true
	}
	bt.ensureWireState()
	bt.ensureWorkerScratch(1)
	// Zero the counter rows before staging, exactly as the in-process
	// shard loop does: a previous run's uncaptured final-round stage
	// counts must not replay into this run's first round.
	clear(bt.wkStage[0])
	clear(bt.wkMsgs[0])
	clear(bt.wkFin[0])
	bt.alive = run.alive
	bt.preparePools(j.wa)
	bt.rk, bt.rwa, bt.rsrc = k, j.wa, src
	bt.startPass(0, sh.lo, sh.hi)
}

// execCmd executes one orchestrator command against the current run and
// returns its report.
func (w *shardWorker) execCmd(cmd *cmdMsg) (rep *reportMsg) {
	rep = &reportMsg{}
	run := w.run
	if run == nil {
		rep.Err = "local: command before any run"
		return rep
	}
	defer func() {
		if r := recover(); r != nil {
			rep = &reportMsg{Panicked: fmt.Sprint(r)}
		}
	}()
	sh := w.job.sh
	bt := sh.bt
	if !cmd.Run {
		if run.errText == "" && run.panicked == "" && cmd.Collect {
			nwin := sh.hi - sh.lo
			rep.Out = make([][]byte, run.k*nwin)
			for v := sh.lo; v < sh.hi; v++ {
				for b := 0; b < run.k; b++ {
					rep.Out[b*nwin+(v-sh.lo)] = bt.outputOf(v, b)
				}
			}
		}
		sh.cleanup()
		w.run = nil
		return rep
	}
	switch {
	case run.panicked != "":
		rep.Panicked = run.panicked
	case run.errText != "":
		rep.Err = run.errText
	case len(cmd.Alive) != run.k:
		rep.Err = fmt.Sprintf("local: liveness vector carries %d lanes, want %d", len(cmd.Alive), run.k)
	default:
		copy(run.alive[:run.k], cmd.Alive)
		if err := sh.execRound(int(cmd.Round), run.k); err != nil {
			rep.Err = err.Error()
			return rep
		}
		rep.Msgs = bt.wkMsgs[0][:run.k]
		rep.Fins = make([]int32, run.k)
		for b, f := range bt.wkFin[0][:run.k] {
			rep.Fins[b] = int32(f)
		}
	}
	return rep
}
