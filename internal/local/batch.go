package local

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// Batch executes a vector of independent trials of one algorithm through a
// single engine pass, so the per-round scheduling, the CSR reverse-slot
// gather, the halting checks, and the view assembly amortize across the
// whole vector instead of being paid once per trial. It is the
// structure-of-arrays generalization of Engine: message slabs are indexed
// [slot][lane] (flattened, stride = the batch width B), tape slabs hold one
// row per lane (seeded in one pass by localrand.Draw.TapeVecInto), and the
// cached view skeletons are refilled once per batch with only the
// lane-varying columns (candidate outputs, tapes) swapped per trial. An
// Engine is exactly the B = 1 case of this core.
//
// Lanes are independent: lane b behaves byte-identically to a pooled
// Engine run of the same (instance, draw) pair — outputs, Stats, and error
// behavior included. That equivalence is the contract Monte-Carlo
// harnesses rely on when they hand each worker a contiguous trial chunk
// (mc.RunBatched) instead of one index at a time.
//
// A Batch, like an Engine, is one worker's private scratch: it is NOT safe
// for concurrent use. Concurrency comes from one Batch per worker on a
// shared Plan.
type Batch struct {
	plan  *Plan
	width int

	// win, when non-nil, makes this batch one shard's compacted window:
	// its wire slabs cover only the shard's own slot range plus the
	// remote halo it reads (graph.ShardSlots), indexed by the window's
	// local slot coordinates — global slot s of the own range lives at
	// local s−slotBase, halo slots after the own range. slotBase and
	// revTab are the coordinate shift the passes apply: for a full batch
	// slotBase is 0 and revTab is the topology's global RevSlot table, so
	// the unsharded round loop pays a constant subtract-zero and nothing
	// else. Windowed batches must only ever be driven over the window's
	// node range (the sharded orchestrator does); procs/done/tapes stay
	// globally node-indexed so collection code is shared.
	win      *graph.ShardSlots
	slotBase int
	revTab   []int32

	// Message-path scratch, recomputed per run (the layout depends on the
	// algorithm's MsgWords) and reallocated only on growth. The wire slabs
	// are the double-buffered send state in [slot][lane] layout: the
	// message lane b sends on directed slot s occupies lens index s*B+b
	// (0 = no message, n+1 = n payload words) and the word range starting
	// at offW[s]*B + capW[s]*b, so one slot's lanes are contiguous and the
	// reverse-slot walk of a delivery is shared by every lane of the
	// batch. Each round counts arrivals out of the cur slabs, steps each
	// process with an Inbox reading cur and an Outbox writing next, and
	// swaps. block is the lane count of one message pass (see
	// msgSlabBudget); slabs are sized and strided by it, and wider lane
	// vectors run in successive blocks.
	block    int
	capW     []int32 // per-slot word capacity, from MsgWords by sender degree
	offW     []int32 // per-slot word offsets (lane-0 base), prefix sums of capW
	totalW   int     // words per lane: offW[last] + capW[last]
	useRefs  bool    // algorithm payloads travel through the ref slabs
	curLens  []int32
	nextLens []int32
	curWords []uint64
	nextWord []uint64
	curRefs  []Message
	nextRefs []Message
	procs    []WireProcess  // [v*block+b]
	resets   []ResetProcess // procs' ResetProcess views, filled as created
	done     []bool         // [v*block+b]
	tapes    []localrand.Tape
	alive    []bool  // per-lane: still running
	notDone  []int   // per-lane count of nodes still running
	roundsOf []int   // per-lane Stats.Rounds
	msgsOf   []int64 // per-lane Stats.Messages
	// Per-worker, per-lane round counters, merged serially after each
	// round pass so the hot loop runs without atomics: wkStage holds the
	// messages each worker's nodes staged this pass (the Outbox stage
	// rows — the fault-free path's sender-side message accounting),
	// wkMsgs the receiver-side delivered counts (written only by the
	// fault pass, whose suppression makes staged ≠ delivered), wkFin the
	// newly finished nodes. pending buffers the previous pass's merged
	// stage counts: what was staged at round r-1 is delivered at round r,
	// so runVec adds pending to msgsOf exactly where the receiver-side
	// merge used to happen. Per-worker Inbox/Outbox scratch keeps the
	// round loop allocation-free.
	wkStage  [][]int64
	wkMsgs   [][]int64
	wkFin    [][]int
	pending  []int64
	inboxes  []Inbox
	outboxes []Outbox
	// Per-worker slot-major scratch rows for the fault pass: wkDel
	// accumulates each lane's delivered count during a node's
	// reverse-slot walk (the walk reads each slot's contiguous
	// [s*B, s*B+k) lens range once instead of k stride-B gathers), wkDown
	// holds the per-lane crash decisions. Both are written and read only
	// within one node's iteration.
	wkDel  [][]int32
	wkDown [][]bool
	// roundFn/startFn/collectFn are the bound roundPass/startPass/
	// collectPass methods, built once so the per-round parallelChunks
	// dispatch does not allocate a closure; rk/rround/rwa/rsrc/rys carry
	// the pass parameters to them. The sharded orchestrator drives the
	// same passes directly over a shard's node range (see sharded.go),
	// which is why the parameters live on the batch rather than in
	// closures.
	roundFn   func(w, vlo, vhi int)
	startFn   func(w, vlo, vhi int)
	collectFn func(w, vlo, vhi int)
	rk        int
	rround    int
	rwa       WireAlgorithm
	rsrc      laneSrc
	rys       [][]byte
	// outs is the double-buffered per-run output arena (see arenaPair).
	outs arenaPair
	// procAlgo is the algorithm whose process table survives in procs
	// between runs: non-nil only when its processes implement
	// ResetProcess, in which case startPass resets and reuses them
	// instead of allocating n×lanes fresh processes per trial. rpool is
	// the per-run flag startPass reads.
	procAlgo WireAlgorithm
	rpool    bool

	// Lane-vectorized stepping state (vec.go): vecAlgo is armed by
	// layoutWire when the run's algorithm implements VecAlgorithm and the
	// batch is wider than one lane — the passes then dispatch to their
	// vec twins, which drive ONE SoA process per node (vprocs, pooled via
	// vresets/vprocAlgo under the same rules as the scalar table) through
	// per-worker InboxVec/OutboxVec scratch. wkPrev holds the pre-step
	// done row a pass diffs new finishes out of; wkMask the per-node lane
	// mask the fault pass hands crashed lanes to StepVec with.
	vecAlgo   VecAlgorithm
	vprocs    []VecProcess // [v] — one per node, all lanes
	vresets   []ResetVecProcess
	vprocAlgo WireAlgorithm
	vinboxes  []InboxVec
	voutboxes []OutboxVec
	vinfos    []VecNodeInfo
	wkPrev    [][]bool
	wkMask    [][]bool

	// Fault state (fault.go): defFault is the executor default a run
	// falls back to when RunOptions.Fault is nil; fault is the armed
	// per-run plan (nil = fault-free fast path), ftape its positional
	// randomness, flane the per-lane fault identities (draw seeds), fsev
	// the per-global-slot severed-from rounds of the surgery schedule,
	// and the held slabs the one-round retention state of Delay plans.
	defFault  *FaultPlan
	fault     *FaultPlan
	ftape     localrand.FaultTape
	flane     []uint64
	fsev      []int32
	heldLens  []int32
	heldWords []uint64
	heldRefs  []Message

	// View-path scratch: skeleton views keyed by radius, shared by the
	// construction and decision paths (decision views additionally carry
	// the candidate-output column Y), plus the per-lane column tables and
	// refill flags the batched refill resolves once per pass so the hot
	// (lane × node) loop runs without indirect calls.
	viewSets  map[int]*viewSet
	dviewSets map[int]*viewSet
	colID     []ids.Assignment
	colX      [][][]byte
	colY      [][][]byte
	refill    []colRefill
	// viewOuts is the double-buffered view-path output arena; viewFlip
	// selects the buffer the next view pass writes (same contract as the
	// message path's arenaPair).
	viewOuts [2]viewArena
	viewFlip int
}

// laneSrc supplies the per-lane inputs of one execution vector — lane
// b's instance and the tape of (lane b, node v) — through struct fields
// instead of per-run closures, so binding a run's parameters to the
// batch allocates nothing. Exactly one of shared/ins is set. Randomness
// comes from tapes (row b covers nodes [tlo, tlo+tn), node v at index
// b*tn+(v-tlo) — shard workers hold windowed rows) or, for the
// ball-simulation adapter only, from the tapeFn fallback; both nil
// means deterministic lanes.
type laneSrc struct {
	shared *lang.Instance   // every lane runs this instance...
	ins    []*lang.Instance // ...or lane b runs ins[b]
	tapes  []localrand.Tape
	tlo    int // first node the tape rows cover
	tn     int // tape row stride (nodes per row)
	tapeFn func(b, v int) *localrand.Tape
}

// instance returns lane b's instance.
func (src *laneSrc) instance(b int) *lang.Instance {
	if src.shared != nil {
		return src.shared
	}
	return src.ins[b]
}

// hasTapes reports whether the lanes carry randomness.
func (src *laneSrc) hasTapes() bool { return src.tapes != nil || src.tapeFn != nil }

// tape returns the tape of (lane b, node v); only called when hasTapes.
func (src *laneSrc) tape(b, v int) *localrand.Tape {
	if src.tapes != nil {
		return &src.tapes[b*src.tn+(v-src.tlo)]
	}
	return src.tapeFn(b, v)
}

// runArena is one buffer of a double-buffered per-run output store: the
// flat output slab (lane b's column at [b*n, (b+1)*n)), the Result
// values, and the pointer slice handed to the caller.
type runArena struct {
	ys  [][]byte
	res []Result
	ptr []*Result
}

// arenaPair is the double-buffered per-run output arena of an executor.
// Each run writes one buffer and the pair alternates, so a run's
// returned results stay valid while the NEXT run executes (pipelines
// read stage i's outputs while stage i+1 runs) and are overwritten by
// the run after that. Callers needing longer retention copy out.
type arenaPair struct {
	buf  [2]runArena
	flip int
}

// next returns the buffer the coming run writes, sized for k lanes of n
// nodes, and flips the pair.
func (p *arenaPair) next(k, n int) *runArena {
	ar := &p.buf[p.flip]
	p.flip ^= 1
	ar.ys = sliceFor(ar.ys, k*n)
	ar.res = sliceFor(ar.res, k)
	ar.ptr = sliceFor(ar.ptr, k)
	return ar
}

// viewArena is one buffer of the view path's double-buffered output
// store: the flat per-node output slab and the per-lane row slice,
// under the same alternation contract as arenaPair.
type viewArena struct {
	slab [][]byte
	ys   [][][]byte
}

// colRefill records which of a lane's columns differ from the previous
// lane's (by backing array), i.e. which the per-node refill must rewrite.
type colRefill struct{ id, x, y bool }

// NewBatch returns a fresh batch of the plan with the given width (the
// lane capacity B). Runs may use any 1..width lanes, so ragged tails of a
// trial loop (trials % B != 0) reuse the same batch. Slabs are allocated
// lazily on first use, exactly like an Engine's.
func (p *Plan) NewBatch(width int) *Batch {
	if width < 1 {
		panic(fmt.Sprintf("local: batch width %d, need >= 1", width))
	}
	return &Batch{plan: p, width: width, revTab: p.topo.RevSlot}
}

// newWindowBatch returns a batch whose wire slabs are compacted to one
// shard's slot window plus its halo. Only the sharded orchestrator and
// the shard-worker protocol build these; they drive the passes strictly
// over the window's node range.
func (p *Plan) newWindowBatch(width int, win *graph.ShardSlots) *Batch {
	bt := p.NewBatch(width)
	bt.win = win
	bt.slotBase = int(win.SlotLo)
	bt.revTab = win.Rev
	return bt
}

// localSlots returns the batch's slot-space size: the full topology for
// an unwindowed batch, own range + halo for a shard window.
func (bt *Batch) localSlots() int {
	if bt.win != nil {
		return bt.win.NumLocal()
	}
	return bt.plan.topo.NumSlots()
}

// Plan returns the plan the batch executes on.
func (bt *Batch) Plan() *Plan { return bt.plan }

// Width returns the lane capacity B.
func (bt *Batch) Width() int { return bt.width }

// lanes validates a lane count against the batch width.
func (bt *Batch) lanes(k int) error {
	if k < 1 || k > bt.width {
		return fmt.Errorf("local: %d lanes on a batch of width %d", k, bt.width)
	}
	return nil
}

// checkInstance validates that an instance runs on the batch's plan graph.
func (bt *Batch) checkInstance(in *lang.Instance) error {
	if in.G != bt.plan.g {
		return fmt.Errorf("local: instance graph %v is not the batch's plan graph %v", in.G, bt.plan.g)
	}
	return nil
}

// Run executes one message-passing trial per draw — lane b runs in.ID's
// tapes under draws[b] — through a blocked round loop, returning one
// Result per lane. Successful lane outputs and Stats are byte-identical
// to Engine.Run with the same draw; errors fail fast, so a lane
// exceeding the round budget aborts its whole vector rather than failing
// alone (the repository's algorithms halt within the budget for every
// draw, making the two behaviors indistinguishable in practice).
// len(draws) may be any 1..Width(). Results live in the batch's
// double-buffered output arena: they stay valid while the next run on
// this batch executes and are overwritten by the run after that.
func (bt *Batch) Run(in *lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	if err := bt.lanes(len(draws)); err != nil {
		return nil, err
	}
	if err := bt.checkInstance(in); err != nil {
		return nil, err
	}
	return bt.runBlocks(in, nil, len(draws), algo, draws, opts)
}

// RunInstances is Run with per-lane instances (all over the plan's graph):
// lane b executes ins[b] under draws[b]. A nil draws runs every lane
// deterministically; otherwise len(draws) must equal len(ins). Pipelines
// use this form — after the first stage, each lane carries its own inputs.
func (bt *Batch) RunInstances(ins []*lang.Instance, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	if err := bt.lanes(len(ins)); err != nil {
		return nil, err
	}
	if draws != nil && len(draws) != len(ins) {
		return nil, fmt.Errorf("local: %d draws for %d lanes", len(draws), len(ins))
	}
	for _, in := range ins {
		if err := bt.checkInstance(in); err != nil {
			return nil, err
		}
	}
	return bt.runBlocks(nil, ins, len(ins), algo, draws, opts)
}

// msgSlabBudget bounds the bytes the two send slabs of one message pass
// may occupy. SoA lanes amortize per-round scheduling, but a round loop
// streams both slabs every round, so the slabs must stay cache-resident
// for the batch to win; lane vectors wider than the budget's block run in
// successive full passes (lanes are independent, so the results are
// identical either way). With fixed-width message words a slot-lane costs
// 2×(8·words + 4) bytes instead of the 2×16-byte interface headers the
// boxed slabs paid (plus their out-of-slab payloads), so the budget was
// doubled when the wire core landed: far more lanes fit a block, and the
// blocks they fit in are genuinely the bytes the round loop streams.
const msgSlabBudget = 256 << 10

// layoutWire computes the wire slab layout of one algorithm over the
// plan's topology: per-slot word capacities (MsgWords of the sender's
// degree), their prefix offsets, and the lane count of one message pass
// under msgSlabBudget. Slices are reused across runs; recomputing is
// O(slots) and allocation-free once grown.
func (bt *Batch) layoutWire(wa WireAlgorithm) {
	topo := bt.plan.topo
	vlo, vhi := 0, topo.NumNodes()
	slots := bt.localSlots()
	if bt.win != nil {
		vlo, vhi = bt.win.NodeLo, bt.win.NodeHi
	}
	bt.capW = sliceFor(bt.capW, slots)
	bt.offW = sliceFor(bt.offW, slots)
	total := 0
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v)
		if lo == hi {
			continue
		}
		w := wa.MsgWords(hi - lo)
		if w < 0 {
			panic(fmt.Sprintf("local: %s.MsgWords(%d) = %d, need >= 0", wa.Name(), hi-lo, w))
		}
		for s := lo; s < hi; s++ {
			bt.offW[s-bt.slotBase] = int32(total)
			bt.capW[s-bt.slotBase] = int32(w)
			total += w
		}
	}
	if bt.win != nil {
		// Halo slots: their senders live on other shards, so the word
		// capacity comes from the window's recorded sender degrees — the
		// same MsgWords the owning shard computes, keeping both sides of
		// a cut in exact layout agreement.
		own := bt.win.NumOwn()
		for h, deg := range bt.win.HaloDeg {
			w := wa.MsgWords(int(deg))
			if w < 0 {
				panic(fmt.Sprintf("local: %s.MsgWords(%d) = %d, need >= 0", wa.Name(), deg, w))
			}
			bt.offW[own+h] = int32(total)
			bt.capW[own+h] = int32(w)
			total += w
		}
	}
	bt.totalW = total
	bt.useRefs = wantsRefs(wa)
	// Bytes one lane adds to a pass: both double-buffered slabs count.
	bytesPerLane := 2 * (8*total + 4*slots)
	if bt.useRefs {
		bytesPerLane += 2 * 16 * slots
	}
	block := bt.width
	if bytesPerLane > 0 {
		block = msgSlabBudget / bytesPerLane
	}
	if block < 1 {
		block = 1
	}
	if block > bt.width {
		block = bt.width
	}
	bt.block = block
	// Arm the lane-vectorized path when the algorithm steps SoA lanes
	// itself: worth it only with lanes to share the hoisted work across
	// (a width-1 batch — every Engine — stays scalar), and only for
	// slab-word payloads (ref-carried messages have no lane-major form).
	bt.vecAlgo = nil
	if va, ok := wa.(VecAlgorithm); ok && bt.width > 1 && !bt.useRefs {
		bt.vecAlgo = va
	}
}

// SlabBytesFor reports the byte footprint of the double-buffered wire
// slabs one pass of algo streams on this batch — the memory a shard (or
// an unsharded batch) actually pays per lane block under its current
// slot space. It computes the algorithm's layout as a side effect, like
// a run would. The sharded compaction gate compares per-shard windows
// against the full batch through it.
func (bt *Batch) SlabBytesFor(algo MessageAlgorithm) int {
	bt.layoutWire(wireOf(algo))
	return bt.slabBytes()
}

// slabBytes is SlabBytesFor under the already-computed layout.
func (bt *Batch) slabBytes() int {
	slots := bt.localSlots()
	perLane := 2 * (8*bt.totalW + 4*slots)
	if bt.useRefs {
		perLane += 2 * 16 * slots
	}
	return perLane * bt.block
}

// msgLanesFor returns the lane count of one message pass of algo — how
// many lanes of a wide vector share one round loop before the slab
// budget forces a new pass.
func (bt *Batch) msgLanesFor(algo MessageAlgorithm) int {
	bt.layoutWire(wireOf(algo))
	return bt.block
}

// sliceFor returns s resized to n elements, reusing its backing array
// when the capacity allows (contents are then stale — callers
// reinitialize what they read) and allocating otherwise.
func sliceFor[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// runBlocks drives the message core over a lane vector in slab-budget
// blocks: lanes [lo, lo+block) share one round loop per pass. Exactly
// one of shared/ins carries the lane instances. The whole vector's
// outputs land in one arena buffer, so the arena alternates per
// top-level run, not per block — a multi-block run never clobbers its
// own earlier blocks.
func (bt *Batch) runBlocks(shared *lang.Instance, ins []*lang.Instance, k int, algo MessageAlgorithm, draws []localrand.Draw, opts RunOptions) ([]*Result, error) {
	wa := bt.prepareWire(algo)
	n := bt.plan.g.N()
	ar := bt.outs.next(k, n)
	for lo := 0; lo < k; lo += bt.block {
		hi := lo + bt.block
		if hi > k {
			hi = k
		}
		var chunk []localrand.Draw
		if draws != nil {
			chunk = draws[lo:hi]
		}
		src := laneSrc{shared: shared}
		if ins != nil {
			src.ins = ins[lo:hi]
		}
		bt.seedTapes(hi-lo, chunk, &src)
		err := bt.runVec(src, hi-lo, wa, chunk, opts, ar.ys[lo*n:hi*n], ar.res[lo:hi], ar.ptr[lo:hi])
		if err != nil {
			return nil, err
		}
	}
	return ar.ptr[:k], nil
}

// seedTapes reseeds the first k tape rows — row b holds lane b's
// per-node tapes under draws[b], addressed by src's lane instances —
// and points src at them (deterministic vectors leave src tape-free).
func (bt *Batch) seedTapes(k int, draws []localrand.Draw, src *laneSrc) {
	if draws == nil {
		return
	}
	n := bt.plan.g.N()
	if bt.tapes == nil {
		bt.tapes = make([]localrand.Tape, bt.width*n)
	}
	for b := 0; b < k; b++ {
		draws[b].TapeVecInto(bt.tapes[b*n:(b+1)*n], src.instance(b).ID)
	}
	src.tapes, src.tlo, src.tn = bt.tapes, 0, n
}

// prepareWire resolves an algorithm onto the wire core (wireOf) and
// computes its slab layout; callers hand the returned algorithm to
// runVec, which assumes the layout is current — runBlocks prepares once
// and reuses the layout across every block of a wide lane vector.
func (bt *Batch) prepareWire(algo MessageAlgorithm) WireAlgorithm {
	wa := wireOf(algo)
	bt.layoutWire(wa)
	return wa
}

// runVec is the batched round-loop core shared by every execution path:
// Engine.Run and the single-shot wrappers are the k = 1 case. src
// supplies lane instances and tapes (the caller has validated all lanes
// against the plan), draws carries the lanes' draw identities (read
// only by the fault seam; nil for deterministic lanes), and wa comes
// from prepareWire on this batch (the slab layout must be current).
// ys/res/out are the run's arena destinations — k*n output cells, k
// Result values, k result pointers — typically one block's slices of a
// runBlocks-level arena buffer. The loop runs on the wire core: native
// WireAlgorithms stage fixed-width words straight into the send slabs
// and the steady-state round costs zero allocations; legacy algorithms
// run through the boxing shim on the identical loop with their payloads
// carried by the ref slabs.
func (bt *Batch) runVec(src laneSrc, k int, wa WireAlgorithm, draws []localrand.Draw, opts RunOptions, ys [][]byte, res []Result, out []*Result) error {
	if k > bt.block {
		return fmt.Errorf("local: %d lanes exceed the %d-lane slab block", k, bt.block)
	}
	n := bt.plan.g.N()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 64
	}
	if opts.StopAfter > 0 {
		maxRounds = opts.StopAfter
	}
	bt.installFault(bt.effectiveFault(opts), draws, k)
	bt.ensureWireState()
	// endRun drops references into algorithm state when the run ends —
	// on the error paths too — so a pooled batch never keeps a previous
	// execution's processes and messages alive.
	defer bt.endRun()

	workers := maxWorkers(n)
	bt.ensureWorkerScratch(workers)
	for b := 0; b < k; b++ {
		bt.alive[b] = true
		bt.notDone[b] = n
		bt.roundsOf[b] = 0
		bt.msgsOf[b] = 0
	}
	// Zero the worker counter rows before the first pass: the passes no
	// longer self-clear them (the merges below re-zero after reading),
	// so a row left over from a previous run — a fault run's uncaptured
	// stage counts above all — must not replay into this one.
	for w := 0; w < workers; w++ {
		clear(bt.wkStage[w])
		clear(bt.wkMsgs[w])
		clear(bt.wkFin[w])
	}

	// Init + round-1 staging: every (node, lane) clears its lane's send
	// state (the slabs are reused across runs) and lets Start stage into
	// the cur slabs through a per-worker Outbox.
	bt.preparePools(wa)
	bt.rk, bt.rwa, bt.rsrc = k, wa, src
	if bt.startFn == nil {
		bt.startFn = bt.startPass
	}
	parallelChunks(n, bt.startFn)

	// capture merges the worker stage rows into pending — the messages
	// staged this pass, delivered (and credited to msgsOf) next round —
	// re-zeroing the rows for the next pass. Fault runs skip it: their
	// accounting is receiver-side (wkMsgs), and the stage rows are dead
	// weight cleared at the next run's init.
	faulty := bt.fault != nil
	pend := bt.pending[:k]
	capture := func() {
		clear(pend)
		for w := 0; w < workers; w++ {
			stRow := bt.wkStage[w][:k]
			for b := 0; b < k; b++ {
				pend[b] += stRow[b]
			}
			clear(stRow)
		}
	}
	if !faulty {
		capture()
	}

	live := k
	if bt.roundFn == nil {
		// Bind the method value once; rebuilding it per round would
		// allocate a closure in the hot loop.
		bt.roundFn = bt.roundPass
	}
	for round := 1; opts.StopAfter == 0 || round <= opts.StopAfter; round++ {
		if round > maxRounds {
			return fmt.Errorf("%w: %d rounds on %d nodes", ErrNoHalt, maxRounds, n)
		}
		bt.rround = round
		parallelChunks(n, bt.roundFn)
		bt.curLens, bt.nextLens = bt.nextLens, bt.curLens
		bt.curWords, bt.nextWord = bt.nextWord, bt.curWords
		bt.curRefs, bt.nextRefs = bt.nextRefs, bt.curRefs
		// Merge and re-zero the worker rows: a worker index can go idle
		// between runs (GOMAXPROCS shrinks, or ceil-division leaves the
		// last chunk empty), and an idle worker's row must read as zero
		// rather than replay a previous round's counts.
		for w := 0; w < workers; w++ {
			finRow := bt.wkFin[w][:k]
			for b := 0; b < k; b++ {
				bt.notDone[b] -= finRow[b]
			}
			clear(finRow)
		}
		if faulty {
			// Receiver-side accounting: the fault pass counts what
			// survived suppression into the wkMsgs rows.
			for w := 0; w < workers; w++ {
				msgRow := bt.wkMsgs[w][:k]
				for b := 0; b < k; b++ {
					bt.msgsOf[b] += msgRow[b]
				}
				clear(msgRow)
			}
		} else {
			// Sender-side accounting: what the previous pass staged was
			// delivered by this one. The alive gate matches the old
			// receiver-side count exactly — a lane that finished last
			// round no longer counts arrivals, and a lane's final-round
			// stages are never delivered or counted.
			for b := 0; b < k; b++ {
				if bt.alive[b] {
					bt.msgsOf[b] += pend[b]
				}
			}
			capture()
		}
		for b := 0; b < k; b++ {
			if !bt.alive[b] {
				continue
			}
			bt.roundsOf[b] = round
			if bt.notDone[b] == 0 {
				bt.alive[b] = false
				live--
			}
		}
		if live == 0 {
			break
		}
	}

	bt.rys = ys
	if bt.collectFn == nil {
		bt.collectFn = bt.collectPass
	}
	parallelChunks(n, bt.collectFn)
	for b := 0; b < k; b++ {
		res[b] = Result{
			Y:     ys[b*n : (b+1)*n : (b+1)*n],
			Stats: Stats{Rounds: bt.roundsOf[b], Messages: bt.msgsOf[b]},
		}
		out[b] = &res[b]
	}
	return nil
}

// endRun is runVec's deferred cleanup: it drops references into
// algorithm state so a pooled batch never keeps a previous execution's
// processes and messages alive. The process table is the one deliberate
// exception: when the algorithm's processes implement ResetProcess the
// table is kept and reset in place next run. (The output arena is the
// other intended survivor — its retention contract is the documented
// double-buffer alternation.)
func (bt *Batch) endRun() {
	if bt.procAlgo == nil {
		clear(bt.procs)
		clear(bt.resets)
	}
	if bt.vprocAlgo == nil {
		clear(bt.vprocs)
		clear(bt.vresets)
	}
	clear(bt.curRefs)
	clear(bt.nextRefs)
	clear(bt.heldRefs)
	bt.rsrc = laneSrc{}
	bt.rys = nil
	bt.rwa = nil
}

// collectPass is one worker's share of the output gather: lane b's node
// v output lands at rys[b*n+v]. Slot-free, so it walks the process
// table in [node][lane] order directly.
func (bt *Batch) collectPass(w, vlo, vhi int) {
	if bt.vecAlgo != nil {
		bt.collectVecPass(vlo, vhi)
		return
	}
	k, B, n := bt.rk, bt.block, bt.plan.g.N()
	ys, procs := bt.rys, bt.procs
	for v := vlo; v < vhi; v++ {
		row := procs[v*B : v*B+k]
		for b, p := range row {
			ys[b*n+v] = p.Output()
		}
	}
}

// preparePools decides whether this run's process table can be pooled:
// when the algorithm changed since the last run, the stale table is
// dropped and one probe process determines whether the new algorithm's
// processes implement ResetProcess. Steady-state trial loops (same
// algorithm back to back) skip the probe entirely and reuse the table.
func (bt *Batch) preparePools(wa WireAlgorithm) {
	if bt.vecAlgo != nil {
		if !sameAlgo(bt.vprocAlgo, bt.vecAlgo) {
			clear(bt.vprocs)
			clear(bt.vresets)
			bt.vprocAlgo = nil
			if _, ok := bt.vecAlgo.NewVecProcess().(ResetVecProcess); ok {
				bt.vprocAlgo = bt.vecAlgo
			}
		}
		bt.rpool = bt.vprocAlgo != nil
		return
	}
	if !sameAlgo(bt.procAlgo, wa) {
		clear(bt.procs)
		clear(bt.resets)
		bt.procAlgo = nil
		if _, ok := wa.NewWireProcess().(ResetProcess); ok {
			bt.procAlgo = wa
		}
	}
	bt.rpool = bt.procAlgo != nil
}

// startPass is one worker's share of the init + round-1 staging: every
// node clears its lanes' send state slot-major — the node's outgoing
// slots are consecutive, so the whole [lo*B, hi*B) window is ONE
// contiguous clear (lanes ≥ k are unused capacity nobody ever reads, so
// clearing the full block width is output-invisible and lets the clear
// run at memclr bandwidth) — then every (node, lane) obtains a process —
// pooled and reset in place when the algorithm supports it, freshly
// created otherwise — and lets Start stage into the cur slabs through
// the worker's Outbox. Pass parameters arrive via rk/rwa/rsrc, exactly
// like roundPass's.
func (bt *Batch) startPass(w, vlo, vhi int) {
	if bt.vecAlgo != nil {
		bt.startVecPass(w, vlo, vhi)
		return
	}
	topo := bt.plan.topo
	k, B, wa := bt.rk, bt.block, bt.rwa
	src, pool := &bt.rsrc, bt.rpool
	hasTapes := src.hasTapes()
	procs, done := bt.procs, bt.done
	resets := bt.resets
	curLens, curRefs := bt.curLens, bt.curRefs
	out := &bt.outboxes[w]
	bt.bindOutbox(out, bt.curLens, bt.curWords, bt.curRefs)
	out.stage = bt.wkStage[w]
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v)
		deg := hi - lo
		slo, shi := lo-bt.slotBase, hi-bt.slotBase
		out.deg, out.slotLo = deg, slo
		clear(curLens[slo*B : shi*B])
		if curRefs != nil {
			clear(curRefs[slo*B : shi*B])
		}
		for b := 0; b < k; b++ {
			in := src.instance(b)
			done[v*B+b] = false
			p := procs[v*B+b]
			if pool && resets[v*B+b] != nil {
				resets[v*B+b].ResetProcess()
			} else {
				p = wa.NewWireProcess()
				procs[v*B+b] = p
				if rp, ok := p.(ResetProcess); ok {
					resets[v*B+b] = rp
				}
			}
			info := NodeInfo{ID: in.ID[v], Degree: deg, Input: in.X[v]}
			if hasTapes {
				info.Tape = src.tape(b, v)
			}
			out.b = b
			p.Start(info, out)
		}
	}
}

// roundPass is one worker's share of one round, fused deliver + step:
// the message lane b's node v sent on port p arrives across the edge at
// the reverse slot, and the Inbox reads payload words from cur in place —
// no receive copy at all. New sends are staged into next through the
// worker's Outbox, whose stage row counts them as they are staged:
// message accounting is sender-side (every staged message is read by
// exactly one receiver next round, so runVec credits the previous pass's
// stage counts as this round's deliveries), which removes the per-round
// arrival-count walk over the RevSlot window entirely. Done nodes still
// receive but stage nothing. Halting counters accumulate into
// worker-indexed scratch and merge serially after the pass, so the hot
// loop carries no atomics — and, on the wire path, no allocations.
//
// An armed fault plan dispatches to faultPass (fault.go), the same walk
// with the plan applied receiver-side (suppression makes staged ≠
// delivered, so the fault pass keeps the arrival count); a fault-free
// run pays exactly one predictable nil check here and nothing else.
func (bt *Batch) roundPass(w, vlo, vhi int) {
	if bt.fault != nil {
		bt.faultPass(w, vlo, vhi)
		return
	}
	if bt.vecAlgo != nil {
		bt.roundVecPass(w, vlo, vhi)
		return
	}
	topo := bt.plan.topo
	k, B, round := bt.rk, bt.block, bt.rround
	finRow := bt.wkFin[w][:k]
	in, out := &bt.inboxes[w], &bt.outboxes[w]
	bt.bindInbox(in, bt.curLens, bt.curWords, bt.curRefs)
	bt.bindOutbox(out, bt.nextLens, bt.nextWord, bt.nextRefs)
	out.stage = bt.wkStage[w]
	nextLens, nextRefs := bt.nextLens, bt.nextRefs
	alive, done, procs := bt.alive, bt.done, bt.procs
	base := bt.slotBase
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v)
		deg := hi - lo
		// revTab is already in the batch's local slot coordinates (the
		// global table for a full batch, the window remap for a shard).
		rev := bt.revTab[lo-base : hi-base]
		in.deg, in.slot = deg, rev
		out.deg, out.slotLo = deg, lo-base
		// Reset the node's outgoing slots before staging — next still
		// holds the sends of two rounds ago. The node's slots are
		// consecutive, so the whole window is ONE contiguous clear at
		// memclr bandwidth; dead lanes and the unused capacity lanes
		// ≥ k are cleared along with the live ones: their stale state
		// is never read (they are skipped below and by every receiver),
		// so the wider clear is output-invisible.
		clear(nextLens[(lo-base)*B : (hi-base)*B])
		if nextRefs != nil {
			clear(nextRefs[(lo-base)*B : (hi-base)*B])
		}
		for b := 0; b < k; b++ {
			if !alive[b] || done[v*B+b] {
				continue
			}
			in.b, out.b = b, b
			if procs[v*B+b].Step(round, in, out) {
				done[v*B+b] = true
				finRow[b]++
			}
		}
	}
}

// bindInbox points a worker's Inbox at the current receive slabs; the
// per-node fields (deg, slot window, lane) are set in the loop.
func (bt *Batch) bindInbox(in *Inbox, lens []int32, words []uint64, refs []Message) {
	in.B = bt.block
	in.lens = lens
	in.word = words
	in.offW = bt.offW
	in.capW = bt.capW
	in.refs = refs
	in.box = nil
}

// bindOutbox points a worker's Outbox at the staging slabs.
func (bt *Batch) bindOutbox(out *Outbox, lens []int32, words []uint64, refs []Message) {
	out.B = bt.block
	out.lens = lens
	out.word = words
	out.offW = bt.offW
	out.capW = bt.capW
	out.refs = refs
}

// ensureWireState sizes the round-loop slabs for the current layout,
// reusing backing arrays across runs; steady-state reuse (same algorithm
// layout, any lane count) allocates nothing.
func (bt *Batch) ensureWireState() {
	n := bt.plan.g.N()
	slots := bt.localSlots()
	B := bt.block
	if bt.revTab == nil {
		// Engines embed a zero-value Batch; a full batch's delivery table
		// is the topology's global one.
		bt.revTab = bt.plan.topo.RevSlot
	}
	bt.curLens = sliceFor(bt.curLens, slots*B)
	bt.nextLens = sliceFor(bt.nextLens, slots*B)
	bt.curWords = sliceFor(bt.curWords, bt.totalW*B)
	bt.nextWord = sliceFor(bt.nextWord, bt.totalW*B)
	bt.ensureHeldSlabs(slots, B)
	if bt.useRefs {
		bt.curRefs = sliceFor(bt.curRefs, slots*B)
		bt.nextRefs = sliceFor(bt.nextRefs, slots*B)
	} else {
		// Hand the run nil refs so the hot loop skips ref clearing; a
		// later shim run re-allocates them.
		bt.curRefs, bt.nextRefs = nil, nil
	}
	bt.procs = sliceFor(bt.procs, n*B)
	bt.resets = sliceFor(bt.resets, n*B)
	if bt.vecAlgo != nil {
		bt.vprocs = sliceFor(bt.vprocs, n)
		bt.vresets = sliceFor(bt.vresets, n)
	}
	bt.done = sliceFor(bt.done, n*B)
	if bt.alive == nil {
		bt.alive = make([]bool, bt.width)
		bt.notDone = make([]int, bt.width)
		bt.roundsOf = make([]int, bt.width)
		bt.msgsOf = make([]int64, bt.width)
	}
	if bt.pending == nil {
		bt.pending = make([]int64, bt.width)
	}
}

// ensureWorkerScratch sizes the per-worker round counters and wire
// in/outbox scratch for the current worker count (GOMAXPROCS may change
// between runs).
func (bt *Batch) ensureWorkerScratch(workers int) {
	for len(bt.wkMsgs) < workers {
		bt.wkStage = append(bt.wkStage, make([]int64, bt.width))
		bt.wkMsgs = append(bt.wkMsgs, make([]int64, bt.width))
		bt.wkFin = append(bt.wkFin, make([]int, bt.width))
		bt.wkDel = append(bt.wkDel, make([]int32, bt.width))
		bt.wkDown = append(bt.wkDown, make([]bool, bt.width))
	}
	for len(bt.wkPrev) < workers {
		bt.wkPrev = append(bt.wkPrev, make([]bool, bt.width))
		bt.wkMask = append(bt.wkMask, make([]bool, bt.width))
	}
	if len(bt.inboxes) < workers {
		bt.inboxes = sliceFor(bt.inboxes, workers)
		bt.outboxes = sliceFor(bt.outboxes, workers)
	}
	if len(bt.vinboxes) < workers {
		bt.vinboxes = sliceFor(bt.vinboxes, workers)
		bt.voutboxes = sliceFor(bt.voutboxes, workers)
		bt.vinfos = sliceFor(bt.vinfos, workers)
	}
}

// viewSet is one radius's cached view skeletons, the per-node lane draw
// they are currently bound to, and the per-node tape accessors reading it.
type viewSet struct {
	views []View
	// draws[v] is the draw of the lane node v is currently evaluating;
	// the batched refill rebinds it before each lane's output, and
	// tapeFns[v] reads it. Nodes advance through lanes independently on
	// the worker pool, which is why the binding is per node, not global.
	draws   []localrand.Draw
	tapeFns []func(int) *localrand.Tape
	// tapes[v][local] is the tape storage TapeFor hands out for node v's
	// ball-local index: reseeded in place on every call, so the trial
	// loop's innermost operation allocates nothing. Distinct locals get
	// distinct entries (simulations hold several ball tapes at once);
	// repeated calls for one local rewind the same entry, per the
	// View.TapeFor contract.
	tapes [][]localrand.Tape
}

// viewSetFor returns the cached view skeletons of the given radius,
// building them on first use. Decision views additionally carry the
// candidate-output column Y.
func (bt *Batch) viewSetFor(radius int, decision bool) *viewSet {
	cache := &bt.viewSets
	if decision {
		cache = &bt.dviewSets
	}
	if *cache == nil {
		*cache = make(map[int]*viewSet)
	}
	if vs, ok := (*cache)[radius]; ok {
		return vs
	}
	balls := bt.plan.ballsFor(radius)
	vs := &viewSet{
		views:   make([]View, len(balls)),
		draws:   make([]localrand.Draw, len(balls)),
		tapeFns: make([]func(int) *localrand.Tape, len(balls)),
		tapes:   make([][]localrand.Tape, len(balls)),
	}
	for v, b := range balls {
		view := &vs.views[v]
		view.Ball = b
		view.IDs = make([]int64, b.Size())
		view.X = make([][]byte, b.Size())
		if decision {
			view.Y = make([][]byte, b.Size())
		}
		vs.tapes[v] = make([]localrand.Tape, b.Size())
		ids := view.IDs
		row := vs.tapes[v]
		v := v
		vs.tapeFns[v] = func(local int) *localrand.Tape {
			t := &row[local]
			vs.draws[v].TapeInto(t, ids[local])
			return t
		}
	}
	(*cache)[radius] = vs
	return vs
}

// sameColumn reports whether two per-node columns share a backing array,
// which is how the batched refill detects that a lane reuses the previous
// lane's data (the usual trial-loop shape: identities and inputs are
// shared across the batch, only outputs and tapes vary).
func sameColumn[T any](a, b []T) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// ensureColumns sizes the per-lane column tables.
func (bt *Batch) ensureColumns() {
	if bt.colID == nil {
		bt.colID = make([]ids.Assignment, bt.width)
		bt.colX = make([][][]byte, bt.width)
		bt.colY = make([][][]byte, bt.width)
		bt.refill = make([]colRefill, bt.width)
	}
}

// forEachViewVec refills the skeleton views lane by lane and invokes fn
// for every (lane, node) pair on the worker pool. Lane b's columns are
// bt.colID/colX (and colY when hasY), staged by the caller; columns that
// share a backing array with the previous lane's are not refilled — the
// refill decision is resolved once per lane, not per node — so a batch
// over one instance assembles each view once and pays only the
// lane-varying columns per trial. draws carries lane randomness (nil =
// deterministic). Views are batch-owned scratch: valid only for the
// duration of fn, read-only, and released when the pass ends — the
// no-retention invariant of pooled engines.
func (bt *Batch) forEachViewVec(vs *viewSet, k int, hasY bool, draws []localrand.Draw, fn func(b, v int, view *View)) {
	rf := bt.refill
	for b := 0; b < k; b++ {
		rf[b] = colRefill{
			id: b == 0 || !sameColumn(bt.colID[b], bt.colID[b-1]),
			x:  b == 0 || !sameColumn(bt.colX[b], bt.colX[b-1]),
		}
		if hasY {
			rf[b].y = b == 0 || !sameColumn(bt.colY[b], bt.colY[b-1])
		}
	}
	defer func() {
		for v := range vs.views {
			view := &vs.views[v]
			clear(view.X)
			clear(view.Y)
			view.TapeFor = nil
		}
		clear(bt.colID[:k])
		clear(bt.colX[:k])
		clear(bt.colY[:k])
	}()
	parallelFor(len(vs.views), func(v int) {
		view := &vs.views[v]
		nodes := view.Ball.Nodes
		for b := 0; b < k; b++ {
			if rf[b].id {
				id := bt.colID[b]
				for i, u := range nodes {
					view.IDs[i] = id[u]
				}
			}
			if rf[b].x {
				x := bt.colX[b]
				for i, u := range nodes {
					view.X[i] = x[u]
				}
			}
			if rf[b].y {
				y := bt.colY[b]
				for i, u := range nodes {
					view.Y[i] = y[u]
				}
			}
			if draws != nil {
				vs.draws[v] = draws[b]
				// The accessor is the same closure for every lane; writing
				// it once per pass keeps the lane loop free of pointer
				// write barriers.
				if view.TapeFor == nil {
					view.TapeFor = vs.tapeFns[v]
				}
			} else if view.TapeFor != nil {
				view.TapeFor = nil
			}
			fn(b, v, view)
		}
	})
}

// RunView executes one ball-view trial per draw on a shared instance,
// returning lane b's global output at index b. The cached view skeletons
// are assembled once for the whole batch — only the tape binding varies
// per lane — which is where batched ball-view trials beat pooled ones.
// Lane outputs are byte-identical to Engine.RunView at the same draw.
// The returned rows live in the batch's double-buffered view arena:
// valid while the next view pass on this batch runs, overwritten by the
// one after that.
func (bt *Batch) RunView(in *lang.Instance, algo ViewAlgorithm, draws []localrand.Draw) ([][][]byte, error) {
	if err := bt.lanes(len(draws)); err != nil {
		return nil, err
	}
	if err := bt.checkInstance(in); err != nil {
		return nil, err
	}
	return bt.runViewVec(in, nil, len(draws), algo, draws), nil
}

// RunViewInstances is RunView with per-lane instances (all over the
// plan's graph); a nil draws runs every lane deterministically.
func (bt *Batch) RunViewInstances(ins []*lang.Instance, algo ViewAlgorithm, draws []localrand.Draw) ([][][]byte, error) {
	if err := bt.lanes(len(ins)); err != nil {
		return nil, err
	}
	if draws != nil && len(draws) != len(ins) {
		return nil, fmt.Errorf("local: %d draws for %d lanes", len(draws), len(ins))
	}
	for _, in := range ins {
		if err := bt.checkInstance(in); err != nil {
			return nil, err
		}
	}
	return bt.runViewVec(nil, ins, len(ins), algo, draws), nil
}

// runViewVec is the batched ball-view core; the output rows live in the
// batch's double-buffered view arena (zero steady-state allocations per
// pass instead of one per trial), alternating per pass so a pipeline
// can read one pass's outputs while the next runs.
func (bt *Batch) runViewVec(shared *lang.Instance, ins []*lang.Instance, k int, algo ViewAlgorithm, draws []localrand.Draw) [][][]byte {
	vs := bt.viewSetFor(algo.Radius(), false)
	n := len(vs.views)
	ar := &bt.viewOuts[bt.viewFlip]
	bt.viewFlip ^= 1
	slab := sliceFor(ar.slab, k*n)
	ar.slab = slab
	bt.ensureColumns()
	for b := 0; b < k; b++ {
		in := shared
		if in == nil {
			in = ins[b]
		}
		bt.colID[b] = in.ID
		bt.colX[b] = in.X
	}
	bt.forEachViewVec(vs, k, false, draws,
		func(b, v int, view *View) { slab[b*n+v] = algo.Output(view) })
	ys := sliceFor(ar.ys, k)
	ar.ys = ys
	for b := 0; b < k; b++ {
		ys[b] = slab[b*n : (b+1)*n : (b+1)*n]
	}
	return ys
}

// ForEachDecisionViews assembles the radius-t decision views of one
// instance per lane — dis[b] evaluated under draws[b] (nil draws =
// deterministic deciders) — and invokes fn for every (lane, node) pair on
// the worker pool. The usual trial shape shares identities and inputs
// across lanes and varies only the candidate outputs, so the skeletons
// are refilled once and each lane pays only its Y column and tape
// binding. Lane verdictions are identical to Engine.ForEachDecisionView
// with the same (instance, draw). Views are batch-owned scratch: valid
// only for the duration of fn and read-only.
func (bt *Batch) ForEachDecisionViews(dis []*lang.DecisionInstance, radius int, draws []localrand.Draw, fn func(b, v int, view *View)) error {
	if err := bt.lanes(len(dis)); err != nil {
		return err
	}
	if draws != nil && len(draws) != len(dis) {
		return fmt.Errorf("local: %d draws for %d lanes", len(draws), len(dis))
	}
	for _, di := range dis {
		if di.G != bt.plan.g {
			return fmt.Errorf("local: decision instance graph %v is not the batch's plan graph %v", di.G, bt.plan.g)
		}
	}
	bt.ensureColumns()
	for b, di := range dis {
		bt.colID[b] = di.ID
		bt.colX[b] = di.X
		bt.colY[b] = di.Y
	}
	bt.forEachViewVec(bt.viewSetFor(radius, true), len(dis), true, draws, fn)
	return nil
}
