package local

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// resultsEqual asserts two results are byte-identical (outputs and stats).
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Stats != b.Stats {
		t.Errorf("%s: stats %+v vs %+v", label, a.Stats, b.Stats)
	}
	for v := range a.Y {
		if !bytes.Equal(a.Y[v], b.Y[v]) {
			t.Errorf("%s: node %d outputs differ: %x vs %x", label, v, a.Y[v], b.Y[v])
		}
	}
}

// TestFaultZeroPlanFree pins the "zero plan is provably free" contract: a
// nil Fault, an all-zero FaultPlan through RunOptions, and an all-zero
// default through SetFault must all reproduce the unperturbed run
// byte-for-byte.
func TestFaultZeroPlanFree(t *testing.T) {
	g := graph.Petersen()
	in := mustInstance(t, g)
	plan := MustPlan(g)
	algo := floodMin{t: 4}

	base, err := plan.Run(in, algo, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := plan.Run(in, algo, nil, RunOptions{Fault: &FaultPlan{Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "zero plan via RunOptions", base, viaOpts)

	e := plan.NewEngine()
	e.SetFault(&FaultPlan{Seed: 7})
	viaDefault, err := e.Run(in, algo, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "zero plan via SetFault", base, viaDefault)
}

// TestFaultDropAllSilencesNetwork checks Drop = 1: every delivery is lost,
// so no message is ever counted and flood-min outputs degenerate to each
// node's own identity.
func TestFaultDropAllSilencesNetwork(t *testing.T) {
	g := graph.Path(10)
	in := mustInstance(t, g)
	res, err := MustPlan(g).Run(in, floodMin{t: 3}, nil, RunOptions{
		Fault: &FaultPlan{Seed: 1, Drop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("messages = %d, want 0 under full drop", res.Stats.Messages)
	}
	for v := range res.Y {
		if !bytes.Equal(res.Y[v], encode64(in.ID[v])) {
			t.Errorf("node %d: output %x, want own id", v, res.Y[v])
		}
	}
}

// TestFaultDropDeterministic pins the fault tape: equal seeds reproduce the
// faulty run exactly, distinct seeds give an independent loss pattern.
func TestFaultDropDeterministic(t *testing.T) {
	g, err := graph.ConnectedGNP(40, 0.15, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	plan := MustPlan(g)
	run := func(seed uint64) *Result {
		r, err := plan.Run(in, floodMin{t: 5}, nil, RunOptions{
			Fault: &FaultPlan{Seed: seed, Drop: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(11), run(11)
	resultsEqual(t, "same fault seed", a, b)
	base := run(0)
	other := run(12345)
	if other.Stats.Messages == a.Stats.Messages && base.Stats.Messages == a.Stats.Messages {
		t.Error("distinct fault seeds produced identical delivery counts; tape looks constant")
	}
}

// TestFaultEngineBatchIdentical runs one faulty plan through the width-1
// Engine and a width-3 Batch (distinct draws per lane) and demands
// lane-byte-identical outputs: fault decisions are keyed by draw seed, not
// lane position, so batch width cannot perturb them.
func TestFaultEngineBatchIdentical(t *testing.T) {
	g := graph.Cycle(16)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	algo := floodMin{t: 4}
	fp := &FaultPlan{Seed: 21, Drop: 0.25, Delay: 0.2}
	space := localrand.NewTapeSpace(77)
	const k = 3
	draws := make([]localrand.Draw, k)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}

	bt := plan.NewBatch(k)
	batched, err := bt.Run(in, algo, draws, RunOptions{Fault: fp})
	if err != nil {
		t.Fatal(err)
	}
	eng := plan.NewEngine()
	for b := 0; b < k; b++ {
		d := draws[b]
		single, err := eng.Run(in, algo, &d, RunOptions{Fault: fp})
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("lane %d", b), single, batched[b])
	}
}

// TestFaultCrashPermanentFinalizes crashes every node at round 1 with no
// recovery: the engine must finalize the crashed nodes with their frozen
// outputs instead of spinning to ErrNoHalt, even though the algorithm's
// own halting round is far beyond the budget.
func TestFaultCrashPermanentFinalizes(t *testing.T) {
	g := graph.Cycle(8)
	in := mustInstance(t, g)
	res, err := MustPlan(g).Run(in, floodMin{t: 100}, nil, RunOptions{
		MaxRounds: 50,
		Fault:     &FaultPlan{Seed: 3, CrashP: 1, CrashFrom: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 when every node crashes at round 1", res.Stats.Rounds)
	}
	for v := range res.Y {
		if !bytes.Equal(res.Y[v], encode64(in.ID[v])) {
			t.Errorf("node %d: frozen output %x, want own id", v, res.Y[v])
		}
	}
}

// TestFaultCrashRecovery pins the crash window arithmetic. All nodes are
// down exactly at round 2 (CrashFrom 2, CrashUntil 3) of a 4-round
// flood-min: messages staged into the dead round are lost and the down
// round stages nothing, so information makes exactly 2 hops (rounds 1 and
// 4) instead of 4 — the run must equal the radius-2 view computation.
func TestFaultCrashRecovery(t *testing.T) {
	g := graph.Path(10)
	in := mustInstance(t, g)
	res, err := MustPlan(g).Run(in, floodMin{t: 4}, nil, RunOptions{
		Fault: &FaultPlan{Seed: 5, CrashP: 1, CrashFrom: 2, CrashUntil: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 4 {
		t.Errorf("rounds = %d, want 4 (recovered nodes must resume)", res.Stats.Rounds)
	}
	want := RunView(in, minIDView{t: 2}, nil)
	for v := range res.Y {
		if !bytes.Equal(res.Y[v], want[v]) {
			t.Errorf("node %d: output %x, want radius-2 min %x", v, res.Y[v], want[v])
		}
	}
}

// TestFaultDelayHoldsOneRound uses a one-shot sender under Delay = 1: the
// round-1 message is held, and on every later round the restored message is
// re-delayed (the delay draw applies to restored deliveries too), so a
// permanent full delay silences the network exactly like a full drop.
func TestFaultDelayHoldsOneRound(t *testing.T) {
	g := graph.Path(6)
	in := mustInstance(t, g)
	res, err := MustPlan(g).Run(in, floodMin{t: 3}, nil, RunOptions{
		Fault: &FaultPlan{Seed: 9, Delay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("messages = %d, want 0 under permanent delay", res.Stats.Messages)
	}
	for v := range res.Y {
		if !bytes.Equal(res.Y[v], encode64(in.ID[v])) {
			t.Errorf("node %d: output %x, want own id", v, res.Y[v])
		}
	}
}

// TestFaultDelayPartial checks that a partial delay plan is deterministic
// and actually perturbs delivery timing relative to the fault-free run
// without losing the run's determinism across repeats.
func TestFaultDelayPartial(t *testing.T) {
	g, err := graph.ConnectedGNP(30, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	plan := MustPlan(g)
	run := func() *Result {
		r, err := plan.Run(in, floodMin{t: 5}, nil, RunOptions{
			Fault: &FaultPlan{Seed: 13, Delay: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	resultsEqual(t, "delayed run repeat", a, b)
	base, err := plan.Run(in, floodMin{t: 5}, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Messages == a.Stats.Messages {
		t.Error("delay plan left the delivery count untouched; holds look inert")
	}
}

// TestFaultSurgeryCutsEdge severs the middle edge of a 3-path. Cut from
// round 1, the two sides never exchange anything; cut from round 2, exactly
// one exchange happens first.
func TestFaultSurgeryCutsEdge(t *testing.T) {
	g := graph.Path(3)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	id := func(v int) int64 { return in.ID[v] }
	min2 := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}

	res, err := plan.Run(in, floodMin{t: 5}, nil, RunOptions{
		Fault: &FaultPlan{Surgery: []EdgeCut{{Round: 1, U: 1, Z: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantEarly := []int64{min2(id(0), id(1)), min2(id(0), id(1)), id(2)}
	for v, w := range wantEarly {
		if !bytes.Equal(res.Y[v], encode64(w)) {
			t.Errorf("round-1 cut, node %d: got %x want %x", v, res.Y[v], encode64(w))
		}
	}

	res, err = plan.Run(in, floodMin{t: 5}, nil, RunOptions{
		Fault: &FaultPlan{Surgery: []EdgeCut{{Round: 2, U: 2, Z: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := min2(min2(id(0), id(1)), id(2))
	wantLate := []int64{all, all, min2(id(1), id(2))}
	for v, w := range wantLate {
		if !bytes.Equal(res.Y[v], encode64(w)) {
			t.Errorf("round-2 cut, node %d: got %x want %x", v, res.Y[v], encode64(w))
		}
	}
}

// TestCutForSubdivision pins the surgery helper as the first real consumer
// of graph.SubdivideTwice: it must return both the engine-side EdgeCut and
// the structurally subdivided graph (two fresh degree-2 relays replacing
// the direct edge), and reject non-edges.
func TestCutForSubdivision(t *testing.T) {
	g := graph.Cycle(6)
	cut, res, err := CutForSubdivision(g, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut != (EdgeCut{Round: 1, U: 0, Z: 1}) {
		t.Errorf("cut = %+v", cut)
	}
	if res.G.N() != g.N()+2 {
		t.Errorf("subdivided graph has %d nodes, want %d", res.G.N(), g.N()+2)
	}
	if res.G.Degree(res.VNode) != 2 || res.G.Degree(res.WNode) != 2 {
		t.Errorf("relay degrees %d/%d, want 2/2", res.G.Degree(res.VNode), res.G.Degree(res.WNode))
	}
	if _, _, err := CutForSubdivision(g, 1, 0, 3); err == nil {
		t.Error("subdividing a non-edge succeeded")
	}

	// The engine-side cut and the offline subdivision must agree: running
	// flood-min on the cycle with the cut severed from round 1 equals
	// computing connectivity without that edge (a 6-path's propagation).
	in := mustInstance(t, g)
	withCut, err := MustPlan(g).Run(in, floodMin{t: 2}, nil, RunOptions{
		Fault: &FaultPlan{Surgery: []EdgeCut{cut}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range withCut.Y {
		want := in.ID[v]
		nodes, _ := g.NodesWithin(v, 2)
		for _, u := range nodes {
			// Distance through the severed edge no longer counts: recompute
			// radius-2 reachability on the path 1-2-3-4-5-0.
			if pathDist(v, u) <= 2 && in.ID[u] < want {
				want = in.ID[u]
			}
		}
		if got := int64(binary.LittleEndian.Uint64(withCut.Y[v])); got != want {
			t.Errorf("node %d: min %d, want %d", v, got, want)
		}
	}
}

// pathDist is the hop distance on the 6-cycle with edge {0,1} removed,
// i.e. the path 1-2-3-4-5-0.
func pathDist(a, b int) int {
	pos := map[int]int{1: 0, 2: 1, 3: 2, 4: 3, 5: 4, 0: 5}
	d := pos[a] - pos[b]
	if d < 0 {
		d = -d
	}
	return d
}

// TestFaultRemoteShardedMatchesBatch drives one faulty plan through the
// shard-worker protocol: the plan crosses the process boundary as flat
// runSpec fields, the workers rebuild identical fault state from the
// shipped draw seeds, and every lane must reproduce the faulty unsharded
// batch byte for byte — with and without randomness.
func TestFaultRemoteShardedMatchesBatch(t *testing.T) {
	const width = 3
	g := graph.Grid(5, 5)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	algo := floodMin{t: 4}
	fp := &FaultPlan{
		Seed: 61, Drop: 0.2, Delay: 0.1, CrashP: 0.1, CrashFrom: 2, CrashUntil: 3,
		Surgery: []EdgeCut{{Round: 2, U: 0, Z: 1}},
	}
	pool := startWorkerPool(t, 3)
	bt := plan.NewBatch(width)
	sh, err := plan.NewShardedRemote(width, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	space := localrand.NewTapeSpace(303)
	for rep, draws := range [][]localrand.Draw{
		{space.Draw(0), space.Draw(1), space.Draw(2)},
		nil, // deterministic lanes: fault identities fall back to 0
	} {
		k := width
		var want, got []*Result
		var wantErr, gotErr error
		if draws != nil {
			want, wantErr = bt.Run(in, algo, draws, RunOptions{Fault: fp})
			got, gotErr = sh.Run(in, algo, draws, RunOptions{Fault: fp})
		} else {
			ins := []*lang.Instance{in, in, in}
			want, wantErr = bt.RunInstances(ins, algo, nil, RunOptions{Fault: fp})
			got, gotErr = sh.RunInstances(ins, algo, nil, RunOptions{Fault: fp})
		}
		if wantErr != nil || gotErr != nil {
			t.Fatalf("rep %d: errors %v / %v", rep, wantErr, gotErr)
		}
		for b := 0; b < k; b++ {
			resultsEqual(t, fmt.Sprintf("remote rep %d lane %d", rep, b), want[b], got[b])
		}
	}
}

// TestFaultShardedMatchesBatch runs one faulty plan unsharded and across
// every in-process shard count, demanding lane-byte-identical results —
// the tentpole contract that fault decisions are shape-invariant.
func TestFaultShardedMatchesBatch(t *testing.T) {
	g, err := graph.ConnectedGNP(36, 0.18, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	plan := MustPlan(g)
	algo := floodMin{t: 5}
	fp := &FaultPlan{Seed: 31, Drop: 0.2, Delay: 0.15, CrashP: 0.1, CrashFrom: 2}
	space := localrand.NewTapeSpace(5)
	const k = 3
	draws := make([]localrand.Draw, k)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}
	bt := plan.NewBatch(k)
	want, err := bt.Run(in, algo, draws, RunOptions{Fault: fp})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4} {
		s, err := plan.NewSharded(k, shards)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(in, algo, draws, RunOptions{Fault: fp})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for b := 0; b < k; b++ {
			resultsEqual(t, fmt.Sprintf("shards=%d lane=%d", shards, b), want[b], got[b])
		}
		s.Close()
	}
}
