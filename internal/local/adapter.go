package local

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file implements the two directions of the simulation argument of
// §2.1.1 ("an algorithm performing in t rounds in the LOCAL model can be
// viewed as an algorithm in which every node outputs after having
// inspected its t-neighborhood"):
//
//   - FullInfo turns a radius-t ViewAlgorithm into a MessageAlgorithm that
//     runs in exactly t communication rounds by gossiping node records.
//     The reconstruction recovers B_G(v,t) exactly — the frontier-edge
//     exclusion in the ball definition is precisely the information that
//     cannot reach the center in t rounds. One genuine model fact
//     surfaces: the t-round view determines which ball nodes are adjacent
//     to a frontier node but not the frontier node's own port numbering,
//     so reconstructed frontier ports are marked unknown (-1). Algorithms
//     that need frontier port order need radius t+1.
//
//   - MessageAsView turns a t-round MessageAlgorithm into a ViewAlgorithm
//     of radius t+1 by simulating the execution inside the ball: all nodes
//     at distance <= t have their exact host degree and port order inside
//     B(v,t+1), and information from beyond distance t+1 cannot reach the
//     center within t rounds, so the center's simulated output equals its
//     output in the real execution. (The radius t+1 rather than t is the
//     standard folklore slack: frontier nodes of B(v,t) have truncated
//     degrees, which could alter their first-round messages.)

// basicRec is a node's round-1 self-announcement.
type basicRec struct {
	id    int64
	input []byte
	// tape is a pristine (position-zero) copy of the node's random tape,
	// or nil in deterministic executions. Shipping random bits is allowed
	// by §2.1.2.
	tape *localrand.Tape
}

// fullRec adds the node's neighbor identities in port order, known to the
// node itself only after round 1.
type fullRec struct {
	basicRec
	nbrs []int64
}

// gossip is the message exchanged from round 2 on: newly learned full
// records and newly learned basic announcements. Both waves are needed:
// the basic record of a node at distance d reaches the center at round d
// (self-announcement plus forwarding), while its full record — formed only
// after round 1 — arrives at round d+1. The center therefore knows basics
// of everything in B(v,t) and adjacency of everything at distance <= t-1,
// which is exactly the ball with frontier-frontier edges excluded.
type gossip struct {
	recs   []fullRec
	basics []basicRec
}

// FullInfo adapts a ball-view algorithm to the message-passing interface.
//
// The returned algorithm is a WireAlgorithm whose payloads travel by
// reference through the engine's ref slab rather than as slab words: the
// gossip records of a full-information protocol are unbounded (whole
// neighborhoods, inputs, tapes), so a fixed-width encoding would have to
// reserve worst-case ball-sized capacity on every directed slot. The ref
// lane keeps the old sharing behavior — one gossip record fanned out to
// every port is a single boxed value — at the old allocation profile.
func FullInfo(algo ViewAlgorithm) MessageAlgorithm {
	return &fullInfoAlgo{inner: algo}
}

type fullInfoAlgo struct{ inner ViewAlgorithm }

func (a *fullInfoAlgo) Name() string { return fmt.Sprintf("full-info(%s)", a.inner.Name()) }

// MsgWords implements WireAlgorithm: gossip occupies no slab words.
func (a *fullInfoAlgo) MsgWords(int) int { return 0 }

// wireRefs marks the gossip payloads as ref-slab traffic.
func (a *fullInfoAlgo) wireRefs() {}

// NewWireProcess implements WireAlgorithm.
func (a *fullInfoAlgo) NewWireProcess() WireProcess {
	return &fullInfoProc{algo: a.inner, t: a.inner.Radius()}
}

// NewProcess implements the legacy MessageAlgorithm interface.
func (a *fullInfoAlgo) NewProcess() Process { return NewLegacyProcess(a) }

type fullInfoProc struct {
	algo ViewAlgorithm
	t    int

	info       NodeInfo
	nbrIDs     []int64 // learned in round 1, port order
	basics     map[int64]basicRec
	recs       map[int64]fullRec
	pendRecs   []fullRec  // full records to forward next round
	pendBasics []basicRec // basic records to forward next round
	output     []byte
}

func (p *fullInfoProc) Start(info NodeInfo, out *Outbox) {
	p.info = info
	p.basics = make(map[int64]basicRec)
	p.recs = make(map[int64]fullRec)
	var pristine *localrand.Tape
	if info.Tape != nil {
		pristine = info.Tape.Clone()
	}
	p.basics[info.ID] = basicRec{id: info.ID, input: info.Input, tape: pristine}
	if p.t == 0 {
		return
	}
	// Round 1: announce self to all ports (one boxed record, shared).
	self := Message(p.basics[info.ID])
	for port := 0; port < info.Degree; port++ {
		out.sendRef(port, self)
	}
}

func (p *fullInfoProc) Step(round int, in *Inbox, out *Outbox) bool {
	if p.t == 0 {
		p.output = p.algo.Output(p.reconstruct())
		return true
	}
	if round == 1 {
		// Learn neighbor identities; own record becomes complete.
		p.nbrIDs = make([]int64, in.Degree())
		p.pendBasics = nil
		for port := range p.nbrIDs {
			b, ok := in.ref(port).(basicRec)
			if !ok {
				panic("local: full-info adapter received foreign message")
			}
			p.nbrIDs[port] = b.id
			p.basics[b.id] = b
			p.pendBasics = append(p.pendBasics, b)
		}
		self := fullRec{basicRec: p.basics[p.info.ID], nbrs: p.nbrIDs}
		p.recs[p.info.ID] = self
		p.pendRecs = []fullRec{self}
	} else {
		var freshRecs []fullRec
		var freshBasics []basicRec
		for port := 0; port < in.Degree(); port++ {
			m := in.ref(port)
			if m == nil {
				continue
			}
			g, ok := m.(gossip)
			if !ok {
				panic("local: full-info adapter received foreign message")
			}
			for _, b := range g.basics {
				if _, seen := p.basics[b.id]; !seen {
					p.basics[b.id] = b
					freshBasics = append(freshBasics, b)
				}
			}
			for _, r := range g.recs {
				if _, seen := p.recs[r.id]; !seen {
					p.recs[r.id] = r
					if _, haveBasic := p.basics[r.id]; !haveBasic {
						p.basics[r.id] = r.basicRec
					}
					freshRecs = append(freshRecs, r)
				}
			}
		}
		p.pendRecs = freshRecs
		p.pendBasics = freshBasics
	}
	if round == p.t {
		p.output = p.algo.Output(p.reconstruct())
		return true
	}
	// Flood the newly learned records (one boxed gossip value, shared).
	if len(p.pendRecs) > 0 || len(p.pendBasics) > 0 {
		g := Message(gossip{recs: p.pendRecs, basics: p.pendBasics})
		for port := 0; port < p.info.Degree; port++ {
			out.sendRef(port, g)
		}
	}
	return false
}

func (p *fullInfoProc) Output() []byte { return p.output }

// reconstruct rebuilds B_G(v,t) from the gathered records. After t rounds
// the process knows the basic records of every node at distance <= t and
// the full records (adjacency) of every node at distance <= t-1 — exactly
// the ball with frontier-frontier edges excluded.
func (p *fullInfoProc) reconstruct() *View {
	t := p.t
	// BFS over full records, expanding neighbor lists in port order. The
	// discovery order matches graph.BallAround's (both follow port order).
	order := []int64{p.info.ID}
	dist := map[int64]int{p.info.ID: 0}
	for i := 0; i < len(order); i++ {
		id := order[i]
		d := dist[id]
		if d >= t {
			continue
		}
		rec, ok := p.recs[id]
		if !ok {
			continue // frontier: adjacency unknown
		}
		for _, nb := range rec.nbrs {
			if _, seen := dist[nb]; !seen {
				dist[nb] = d + 1
				order = append(order, nb)
			}
		}
	}
	local := make(map[int64]int, len(order))
	for i, id := range order {
		local[id] = i
	}
	n := len(order)
	adj := make([][]int32, n)
	ports := make([][]int, n)
	// Interior nodes: adjacency from their own records, in port order.
	for i, id := range order {
		rec, ok := p.recs[id]
		if !ok {
			continue
		}
		for port, nb := range rec.nbrs {
			j, in := local[nb]
			if !in {
				continue // beyond the ball
			}
			if dist[id] == t && dist[nb] == t {
				continue // frontier-frontier exclusion (unreachable here, kept for clarity)
			}
			adj[i] = append(adj[i], int32(j))
			ports[i] = append(ports[i], port)
		}
	}
	// Frontier nodes (distance exactly t > 0): incident edges are known
	// from interior records; the frontier node's own port numbering is
	// not. List neighbors in ball order with unknown ports.
	for i, id := range order {
		if dist[id] != t || t == 0 {
			continue
		}
		if _, hasRec := p.recs[id]; hasRec {
			continue
		}
		for j, other := range order {
			rec, ok := p.recs[other]
			if !ok {
				continue
			}
			for _, nb := range rec.nbrs {
				if nb == id {
					adj[i] = append(adj[i], int32(j))
					ports[i] = append(ports[i], -1)
				}
			}
		}
	}
	g, err := graph.FromAdjacency(adj)
	if err != nil {
		panic(fmt.Sprintf("local: reconstructed ball invalid: %v", err))
	}
	hostless := make([]int, n)
	distArr := make([]int, n)
	idArr := make([]int64, n)
	xArr := make([][]byte, n)
	tapes := make([]*localrand.Tape, n)
	for i, id := range order {
		hostless[i] = -1 // host indices are unknowable in-model
		distArr[i] = dist[id]
		idArr[i] = id
		b := p.basics[id]
		xArr[i] = b.input
		tapes[i] = b.tape
	}
	ball := &graph.Ball{G: g, Nodes: hostless, Dist: distArr, Ports: ports, Radius: t}
	view := &View{Ball: ball, IDs: idArr, X: xArr}
	if p.info.Tape != nil {
		view.TapeFor = func(l int) *localrand.Tape {
			if tapes[l] == nil {
				return nil
			}
			return tapes[l].Clone()
		}
	}
	return view
}

// MessageAsView adapts a fixed-round message-passing algorithm to the
// ball-view interface with radius rounds+1.
func MessageAsView(algo MessageAlgorithm, rounds int) ViewAlgorithm {
	return &msgViewAlgo{inner: algo, rounds: rounds}
}

type msgViewAlgo struct {
	inner  MessageAlgorithm
	rounds int
}

func (a *msgViewAlgo) Name() string { return fmt.Sprintf("simulate(%s)", a.inner.Name()) }

func (a *msgViewAlgo) Radius() int { return a.rounds + 1 }

func (a *msgViewAlgo) Output(v *View) []byte {
	if a.rounds == 0 {
		// Zero-round algorithms fix their output in Start.
		proc := a.inner.NewProcess()
		info := NodeInfo{ID: v.IDs[0], Degree: v.Degree(), Input: v.X[0]}
		if v.TapeFor != nil {
			info.Tape = v.TapeFor(0)
		}
		proc.Start(info)
		return proc.Output()
	}
	// Run the message algorithm on the ball as a standalone network for
	// exactly `rounds` rounds and return the center's output. Identity
	// validation is skipped deliberately: ball identities are inherited
	// from a validated host instance.
	sub := &lang.Instance{G: v.Ball.G, X: v.X, ID: v.IDs}
	var tapeOf func(i int) *localrand.Tape
	if v.TapeFor != nil {
		tapeOf = func(i int) *localrand.Tape { return v.TapeFor(i) }
	}
	res, err := runCore(sub, a.inner, tapeOf, RunOptions{StopAfter: a.rounds})
	if err != nil {
		panic(fmt.Sprintf("local: ball simulation failed: %v", err))
	}
	return res.Y[0]
}
