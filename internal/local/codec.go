package local

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// This file is the CutBlock wire codec: the framed, versioned byte
// encoding a cut block takes on a real byte-stream transport. A frame
// is self-delimiting, so links can ship one block per round over any
// net.Conn with no out-of-band coordination:
//
//	offset  size  field
//	0       4     magic "rlCB"
//	4       1     version (currently 1)
//	5       1     flags (bit 0: a refs section follows the words)
//	6       2     reserved, must be zero
//	8       4     round (uint32) — the round the sender packed
//	12      4     lens count (uint32)
//	16      4     words count (uint32)
//	20      4     refs section byte length (uint32)
//	24      ...   lens   (int32 little-endian each)
//	...     ...   words  (uint64 little-endian each)
//	...     ...   refs   (gob, see below)
//
// Lens and words are the exact slab ranges packCut flattens — fixed
// width, so encoding is a bounds-checked copy in each direction and the
// decoded block installs with no further translation.
//
// Refs are the by-reference payloads of the boxing shim and the
// full-information adapter. They have no fixed-width encoding, so the
// codec ships them via gob as (index, value) pairs of the non-nil
// entries; only payload types that gob can encode — registered, with
// exported fields — survive the trip. Everything else gets the explicit
// in-process-only error: such algorithms must run over in-process links
// (or migrate to wire words). Wire-native algorithms leave Refs empty
// and never touch gob.

// ErrFrame reports a malformed cut-block frame: bad magic, an
// unsupported version, a declared section exceeding the frame bounds, a
// truncated stream, or a round mismatch. A frame error aborts the
// sharded run with a descriptive message instead of panicking or
// hanging.
var ErrFrame = errors.New("local: malformed cut-block frame")

// ErrRefsNotPortable reports a cut block whose by-reference payloads
// cannot cross a byte stream: the boxed/ref transport is in-process-only
// unless every payload type is gob-encodable (registered, exported
// fields).
var ErrRefsNotPortable = errors.New("local: cut block ref payloads are in-process only (not gob-encodable)")

const (
	frameMagic   = "rlCB"
	frameVersion = 1
	frameHdrLen  = 24
	flagRefs     = 1

	// maxFrameSection bounds each declared section, making a corrupt or
	// hostile length field an error instead of an allocation bomb: 1<<26
	// words is a 512 MiB slab range, far beyond any real layout.
	maxFrameSection = 1 << 26
)

// refSection is the gob shape of a block's non-nil refs: sparse
// (index, value) pairs, because gob cannot encode nil interface values
// inside a slice.
type refSection struct {
	N    int32 // total ref slots (nil entries included)
	Idx  []int32
	Vals []Message
}

func init() {
	// The boxed form of a wire message is the one ref payload the engine
	// itself produces; registering it here lets wire-native algorithms
	// driven through the legacy API cross a byte stream too.
	gob.Register(wireMsg{})
}

// appendFrame encodes one cut block as a frame appended to dst and
// returns the extended buffer (callers reuse it across rounds).
func appendFrame(dst []byte, round int, blk CutBlock) ([]byte, error) {
	flags := byte(0)
	var refs []byte
	if len(blk.Refs) > 0 {
		sec := refSection{N: int32(len(blk.Refs))}
		for i, m := range blk.Refs {
			if m == nil {
				continue
			}
			sec.Idx = append(sec.Idx, int32(i))
			sec.Vals = append(sec.Vals, m)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&sec); err != nil {
			return dst, fmt.Errorf("%w: %v", ErrRefsNotPortable, err)
		}
		refs = buf.Bytes()
		flags |= flagRefs
	}
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion, flags, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blk.Lens)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blk.Words)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(refs)))
	for _, l := range blk.Lens {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l))
	}
	for _, w := range blk.Words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return append(dst, refs...), nil
}

// readFrame reads and decodes one frame from r into blk, reusing its
// backing arrays, and verifies the frame carries the expected round.
// scratch is the reusable payload read buffer; the grown buffer is
// returned for the next call.
func readFrame(r io.Reader, round int, blk *CutBlock, scratch []byte) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return scratch, fmt.Errorf("%w: truncated header (%v)", ErrFrame, err)
		}
		return scratch, err
	}
	if string(hdr[0:4]) != frameMagic {
		return scratch, fmt.Errorf("%w: bad magic %q", ErrFrame, hdr[0:4])
	}
	if hdr[4] != frameVersion {
		return scratch, fmt.Errorf("%w: version %d, this build speaks %d", ErrFrame, hdr[4], frameVersion)
	}
	flags := hdr[5]
	if hdr[6] != 0 || hdr[7] != 0 {
		return scratch, fmt.Errorf("%w: nonzero reserved bytes", ErrFrame)
	}
	gotRound := int(binary.LittleEndian.Uint32(hdr[8:12]))
	nLens := int(binary.LittleEndian.Uint32(hdr[12:16]))
	nWords := int(binary.LittleEndian.Uint32(hdr[16:20]))
	nRefs := int(binary.LittleEndian.Uint32(hdr[20:24]))
	if nLens > maxFrameSection || nWords > maxFrameSection || nRefs > maxFrameSection {
		return scratch, fmt.Errorf("%w: oversized frame (%d lens, %d words, %d ref bytes)", ErrFrame, nLens, nWords, nRefs)
	}
	if gotRound != round {
		return scratch, fmt.Errorf("%w: frame for round %d arrived in round %d", ErrFrame, gotRound, round)
	}
	need := 4*nLens + 8*nWords + nRefs
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	payload := scratch[:need]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return scratch, fmt.Errorf("%w: truncated payload (%v)", ErrFrame, err)
		}
		return scratch, err
	}
	blk.Lens = sliceFor(blk.Lens, nLens)[:0]
	for i := 0; i < nLens; i++ {
		blk.Lens = append(blk.Lens, int32(binary.LittleEndian.Uint32(payload[4*i:])))
	}
	words := payload[4*nLens:]
	blk.Words = sliceFor(blk.Words, nWords)[:0]
	for i := 0; i < nWords; i++ {
		blk.Words = append(blk.Words, binary.LittleEndian.Uint64(words[8*i:]))
	}
	blk.Refs = blk.Refs[:0]
	if flags&flagRefs != 0 {
		var sec refSection
		if err := gob.NewDecoder(bytes.NewReader(words[8*nWords:])).Decode(&sec); err != nil {
			return scratch, fmt.Errorf("%w: refs section: %v", ErrFrame, err)
		}
		if int(sec.N) > maxFrameSection || len(sec.Idx) != len(sec.Vals) {
			return scratch, fmt.Errorf("%w: refs section shape", ErrFrame)
		}
		blk.Refs = sliceFor(blk.Refs, int(sec.N))
		clear(blk.Refs)
		for i, idx := range sec.Idx {
			if idx < 0 || int(idx) >= int(sec.N) {
				return scratch, fmt.Errorf("%w: ref index %d out of %d slots", ErrFrame, idx, sec.N)
			}
			blk.Refs[idx] = sec.Vals[i]
		}
	}
	return scratch, nil
}
