package local

import "reflect"

// This file defines the wire-format message core: the zero-allocation
// fast path of the message engine. Messages are sequences of fixed-width
// 64-bit words staged straight into the engine's [slot][lane] send slabs
// — no per-round slices, no interface boxing. The layering is
//
//	WireProcess  — native wire algorithms; words in the slabs (this file)
//	boxing shim  — legacy Process implementations run on the same round
//	               loop with their payloads carried by reference
//	               (shimAlgo/shimProc below)
//	legacy shim  — a WireAlgorithm used through the legacy Process API
//	               has its words boxed into wireMsg payloads
//	               (NewLegacyProcess below)
//
// so one round loop (batch.go runVec) executes every algorithm, and only
// the payload transport differs. The equivalence contract is exact: an
// algorithm produces byte-identical outputs and Stats on every transport
// at equal seeds.

// WireProcess is the wire-format per-node state machine of a
// message-passing algorithm: the zero-allocation counterpart of Process.
// Received messages are read from the Inbox as fixed-width 64-bit words;
// outgoing messages are staged into the Outbox, which writes directly
// into the engine's send slab for the node's directed-edge slots.
//
// Inbox and Outbox are engine-owned scratch, valid only for the duration
// of the call that hands them over — a WireProcess must not retain them.
// Word payloads read through Inbox.Words are likewise valid only during
// the call and must be treated as read-only.
type WireProcess interface {
	// Start receives the node's static information and stages the
	// messages of round 1 into out (staging nothing sends nothing).
	Start(info NodeInfo, out *Outbox)
	// Step reads the messages that arrived in round r from in and stages
	// the messages of round r+1 into out. Returning done = true fixes the
	// node's output; the node sends nothing afterwards but neighbors may
	// keep running.
	Step(round int, in *Inbox, out *Outbox) (done bool)
	// Output returns the node's final output string, exactly as
	// Process.Output does.
	Output() []byte
}

// WireAlgorithm creates the wire-format per-node processes of a
// distributed algorithm and declares the slab capacity its messages
// need. Engines prefer this interface: an algorithm that implements it
// runs with its message words written straight into the send slabs,
// bypassing the boxed legacy transport entirely.
type WireAlgorithm interface {
	Name() string
	NewWireProcess() WireProcess
	// MsgWords bounds the number of 64-bit words of any single message a
	// node of the given degree stages in one round. The engine sizes the
	// per-slot slab capacity from it (it must be a pure function of the
	// degree); Outbox panics if a message exceeds the bound.
	MsgWords(degree int) int
}

// ResetProcess is an optional extension of WireProcess: a process that
// can return to its just-created state. When every process of an
// algorithm implements it, engines pool the per-(node, lane) process
// table across back-to-back executions of that algorithm — the dominant
// remaining per-trial allocation on message paths — resetting each entry
// in place instead of allocating n×lanes fresh processes per run.
// Outputs must stay byte-identical: ResetProcess followed by Start must
// behave exactly like NewWireProcess followed by Start. Because a pooled
// process serves many trials, the slice Output returns must remain valid
// after the process is reset and reused — return freshly allocated or
// immutable storage (the lang.Encode* tables), never a per-process
// buffer a later trial would overwrite.
type ResetProcess interface {
	WireProcess
	// ResetProcess restores the process to its pre-Start state. It must
	// drop every reference the previous execution planted — tapes,
	// message payloads, neighbor scratch — so a pooled table does not
	// keep a finished trial's state alive.
	ResetProcess()
}

// sameAlgo reports whether two wire algorithms are the same value; it is
// how a batch detects back-to-back runs of one algorithm when deciding
// to pool the process table. Uncomparable dynamic types (closures inside
// adapter structs) never compare equal — they simply never pool.
func sameAlgo(a, b WireAlgorithm) bool {
	if a == nil || b == nil {
		return false
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

// refCarrier marks wire algorithms whose payloads travel by reference
// through the engine's ref slab instead of as slab words: the boxing
// shim for legacy Processes and the full-information adapter, whose
// gossip records are unbounded. Internal on purpose — out-of-tree
// fat-message algorithms use the legacy Process API, which routes
// through the shim.
type refCarrier interface{ wireRefs() }

// wantsRefs reports whether wa's messages need the ref slab.
func wantsRefs(wa WireAlgorithm) bool {
	_, ok := wa.(refCarrier)
	return ok
}

// wireOf adapts any MessageAlgorithm to the wire core: native
// WireAlgorithms pass through, legacy algorithms are wrapped in the
// boxing shim, which transports their payloads by reference through the
// same round loop.
func wireOf(algo MessageAlgorithm) WireAlgorithm {
	if wa, ok := algo.(WireAlgorithm); ok {
		return wa
	}
	return shimAlgo{inner: algo}
}

// Inbox is the received side of one node in one round: one message per
// port, read as fixed-width words. The port-to-slot indirection and the
// lens/words slabs are engine-owned; an Inbox is valid only for the
// duration of the Step call it is passed to.
type Inbox struct {
	deg  int
	b, B int     // lane and lane stride
	slot []int32 // per-port receive slot (the node's RevSlot window)
	lens []int32 // [slot*B+b]: 0 = no message, n+1 = n payload words
	word []uint64
	offW []int32 // per-slot word offsets (lane-0 base, in words)
	capW []int32 // per-slot word capacities
	refs []Message
	box  [][]uint64 // legacy transport payloads; nil on the slab path
}

// Degree returns the number of ports (the node's degree).
func (in *Inbox) Degree() int { return in.deg }

// Has reports whether a message arrived on port. Zero-word messages
// (pure signals) are present but have no payload.
func (in *Inbox) Has(port int) bool {
	return in.lens[int(in.slot[port])*in.B+in.b] > 0
}

// Len returns the payload word count of the message on port, or -1 if no
// message arrived.
func (in *Inbox) Len(port int) int {
	return int(in.lens[int(in.slot[port])*in.B+in.b]) - 1
}

// Word returns the first payload word of the message on port; ok is
// false if no message arrived or the message has no payload.
func (in *Inbox) Word(port int) (word uint64, ok bool) {
	s := int(in.slot[port])
	if in.lens[s*in.B+in.b] < 2 {
		return 0, false
	}
	if in.box != nil {
		return in.box[port][0], true
	}
	return in.word[int(in.offW[s])*in.B+int(in.capW[s])*in.b], true
}

// Words returns the payload words of the message on port — nil if no
// message arrived or the message has no payload (Has distinguishes the
// two). The slice is engine-owned scratch: read-only, valid only for the
// duration of the call it was handed over in.
func (in *Inbox) Words(port int) []uint64 {
	s := int(in.slot[port])
	n := int(in.lens[s*in.B+in.b]) - 1
	if n <= 0 {
		return nil
	}
	if in.box != nil {
		return in.box[port][:n:n]
	}
	base := int(in.offW[s])*in.B + int(in.capW[s])*in.b
	return in.word[base : base+n : base+n]
}

// Payload returns the payload words of the message on port together
// with a presence flag — one lens load instead of the Has+Words pair,
// which matters in per-port receive loops on the hot path. ok is true
// whenever a message arrived, including zero-word signals (whose
// payload is nil). The slice is engine-owned scratch: read-only, valid
// only for the duration of the call it was handed over in.
func (in *Inbox) Payload(port int) (words []uint64, ok bool) {
	s := int(in.slot[port])
	n := int(in.lens[s*in.B+in.b]) - 1
	if n < 0 {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	if in.box != nil {
		return in.box[port][:n:n], true
	}
	base := int(in.offW[s])*in.B + int(in.capW[s])*in.b
	return in.word[base : base+n : base+n], true
}

// ref returns the by-reference payload of the message on port (boxing
// shim and full-information transport), or nil if no message arrived.
func (in *Inbox) ref(port int) Message {
	s := int(in.slot[port])
	if in.lens[s*in.B+in.b] == 0 {
		return nil
	}
	return in.refs[s*in.B+in.b]
}

// Outbox is the sending side of one node in one round: it stages
// messages for the node's ports by writing words directly into the
// engine's send slab. Staging is cumulative within the round — Send
// starts (or restarts) a message, Append extends it — and a port with
// nothing staged sends nothing. An Outbox is engine-owned scratch, valid
// only for the duration of the Start/Step call it is passed to.
type Outbox struct {
	deg    int
	b, B   int // lane and lane stride
	slotLo int // the node's first directed slot
	lens   []int32
	word   []uint64
	offW   []int32
	capW   []int32
	refs   []Message
	// stage is the engine's sender-side message accounting: every staging
	// operation that turns an empty port into a staged one increments
	// stage[b], and Reset decrements per staged port it clears, so after a
	// pass stage[b] holds exactly the number of messages lane b staged.
	// Each staged message is read by exactly one receiver next round,
	// which makes staged-at-round-r identical to delivered-at-round-r+1 —
	// the invariant that lets the fault-free round loop skip the
	// receiver-side arrival count entirely. Always non-nil on engine
	// paths (a per-worker row); loopback pairs bind a throwaway row.
	stage []int64
}

// Degree returns the number of ports (the node's degree).
func (out *Outbox) Degree() int { return out.deg }

// Signal stages a zero-word message on port: presence without payload
// (the wire form of an empty announcement struct).
func (out *Outbox) Signal(port int) {
	li := (out.slotLo+port)*out.B + out.b
	if out.lens[li] == 0 {
		out.stage[out.b]++
	}
	out.lens[li] = 1
}

// Send stages a one-word message on port, replacing anything staged
// there this round.
func (out *Outbox) Send(port int, word uint64) {
	s := out.slotLo + port
	if out.capW[s] < 1 {
		panic("local: Send on a zero-capacity wire slot (MsgWords bound too small)")
	}
	li := s*out.B + out.b
	if out.lens[li] == 0 {
		out.stage[out.b]++
	}
	out.word[int(out.offW[s])*out.B+int(out.capW[s])*out.b] = word
	out.lens[li] = 2
}

// Append appends one payload word to the message staged on port,
// starting a fresh one-word message if nothing is staged yet. It panics
// when the message would exceed the algorithm's MsgWords bound.
func (out *Outbox) Append(port int, word uint64) {
	s := out.slotLo + port
	li := s*out.B + out.b
	n := int(out.lens[li])
	if n == 0 {
		out.stage[out.b]++
		n = 1
	}
	if n-1 >= int(out.capW[s]) {
		panic("local: wire message exceeds the algorithm's MsgWords bound")
	}
	out.word[int(out.offW[s])*out.B+int(out.capW[s])*out.b+n-1] = word
	out.lens[li] = int32(n + 1)
}

// Broadcast stages the same one-word message on every port.
func (out *Outbox) Broadcast(word uint64) {
	for p := 0; p < out.deg; p++ {
		out.Send(p, word)
	}
}

// BroadcastVec stages the same multi-word message on every port,
// replacing anything staged there this round. It is the hoisted form of
// a per-port Send+Append chain: the bounds check and slot math run once
// per port instead of once per word, which matters for algorithms that
// broadcast a fixed tuple every round. It panics when the message
// exceeds the algorithm's MsgWords bound.
func (out *Outbox) BroadcastVec(words ...uint64) {
	n := len(words)
	for p := 0; p < out.deg; p++ {
		s := out.slotLo + p
		if n > int(out.capW[s]) {
			panic("local: wire message exceeds the algorithm's MsgWords bound")
		}
		li := s*out.B + out.b
		if out.lens[li] == 0 {
			out.stage[out.b]++
		}
		base := int(out.offW[s])*out.B + int(out.capW[s])*out.b
		copy(out.word[base:base+n], words)
		out.lens[li] = int32(n + 1)
	}
}

// SignalAll stages a zero-word message on every port.
func (out *Outbox) SignalAll() {
	for p := 0; p < out.deg; p++ {
		out.Signal(p)
	}
}

// Reset clears everything staged this round (all ports).
func (out *Outbox) Reset() {
	for p := 0; p < out.deg; p++ {
		s := out.slotLo + p
		li := s*out.B + out.b
		if out.lens[li] != 0 {
			out.stage[out.b]--
		}
		out.lens[li] = 0
		if out.refs != nil {
			out.refs[li] = nil
		}
	}
}

// sendRef stages a by-reference message on port: the transport of the
// boxing shim and the full-information adapter, whose payloads have no
// fixed-width encoding.
func (out *Outbox) sendRef(port int, m Message) {
	s := out.slotLo + port
	li := s*out.B + out.b
	if out.lens[li] == 0 {
		out.stage[out.b]++
	}
	out.refs[li] = m
	out.lens[li] = 1
}

// NewLoopback builds a connected Outbox/Inbox pair over a single node of
// the given degree and per-message word capacity: a message staged on
// outbox port p reads back on inbox port p. It exists so wire codec
// tests (encode → decode round-trips) can exercise the exact staging and
// reading machinery the engine uses, without running an engine.
func NewLoopback(deg, msgWords int) (*Outbox, *Inbox) {
	lens := make([]int32, deg)
	words := make([]uint64, deg*msgWords)
	offW := make([]int32, deg)
	capW := make([]int32, deg)
	slots := make([]int32, deg)
	refs := make([]Message, deg)
	for i := 0; i < deg; i++ {
		offW[i] = int32(i * msgWords)
		capW[i] = int32(msgWords)
		slots[i] = int32(i)
	}
	out := &Outbox{deg: deg, B: 1, lens: lens, word: words, offW: offW, capW: capW, refs: refs, stage: make([]int64, 1)}
	in := &Inbox{deg: deg, B: 1, slot: slots, lens: lens, word: words, offW: offW, capW: capW, refs: refs}
	return out, in
}

// --- Boxing shim: legacy Process implementations on the wire core -----------

// shimAlgo adapts a legacy MessageAlgorithm to the wire engine. Its
// messages occupy no slab words; the boxed payloads travel by reference
// through the engine's ref slab, which is exactly the allocation profile
// the legacy engine had.
type shimAlgo struct{ inner MessageAlgorithm }

func (a shimAlgo) Name() string     { return a.inner.Name() }
func (a shimAlgo) MsgWords(int) int { return 0 }
func (a shimAlgo) wireRefs()        {}
func (a shimAlgo) NewWireProcess() WireProcess {
	return &shimProc{inner: a.inner.NewProcess()}
}

// shimProc runs one legacy Process on the wire round loop: it gathers
// the by-reference payloads into a reusable receive window, calls the
// legacy Step, and stages the returned messages back by reference.
type shimProc struct {
	inner Process
	win   []Message // engine-owned scratch handed to the legacy Step
}

func (p *shimProc) Start(info NodeInfo, out *Outbox) {
	p.win = make([]Message, info.Degree)
	p.stage(out, p.inner.Start(info))
}

func (p *shimProc) Step(round int, in *Inbox, out *Outbox) bool {
	for port := range p.win {
		p.win[port] = in.ref(port)
	}
	msgs, done := p.inner.Step(round, p.win)
	p.stage(out, msgs)
	return done
}

// stage sends the non-nil messages of a legacy send slice, padding (or
// truncating) to the node's degree like the legacy engine always has.
func (p *shimProc) stage(out *Outbox, msgs []Message) {
	n := len(msgs)
	if n > out.deg {
		n = out.deg
	}
	for port := 0; port < n; port++ {
		if msgs[port] != nil {
			out.sendRef(port, msgs[port])
		}
	}
}

func (p *shimProc) Output() []byte { return p.inner.Output() }

// --- Legacy shim: WireAlgorithms through the legacy Process API -------------

// wireMsg is the boxed form a wire message takes on the legacy
// transport: the payload words of one message. Zero-word signals box as
// an empty wireMsg, preserving presence.
type wireMsg struct{ Words []uint64 }

// Boxed strips algo of its wire fast path: executions transport its
// messages as boxed wireMsg payloads through the legacy Process API.
// Outputs and Stats are byte-identical to the wire path at equal seeds —
// Boxed is the reference baseline the wire benchmarks and equivalence
// tests compare against, and a measure of what out-of-tree legacy
// Process implementations pay.
func Boxed(wa WireAlgorithm) MessageAlgorithm { return boxedAlgo{wa: wa} }

type boxedAlgo struct{ wa WireAlgorithm }

func (a boxedAlgo) Name() string        { return a.wa.Name() }
func (a boxedAlgo) NewProcess() Process { return NewLegacyProcess(a.wa) }

// NewLegacyProcess wraps a fresh WireProcess of wa as a legacy Process:
// staged words are boxed into wireMsg payloads (copied out, because the
// staging buffer is per-process scratch), by-reference payloads pass
// through unchanged. Migrated algorithms use it to keep satisfying the
// legacy MessageAlgorithm interface with one line. The send slice is a
// reused per-process buffer, as the legacy engine contract allows.
func NewLegacyProcess(wa WireAlgorithm) Process {
	return &legacyProc{wa: wa, wp: wa.NewWireProcess()}
}

type legacyProc struct {
	wa   WireAlgorithm
	wp   WireProcess
	deg  int
	cap  int
	in   Inbox
	out  Outbox
	send []Message
}

func (p *legacyProc) Start(info NodeInfo) []Message {
	deg := info.Degree
	p.deg = deg
	p.cap = p.wa.MsgWords(deg)
	slots := make([]int32, deg)
	offW := make([]int32, deg)
	capW := make([]int32, deg)
	for i := 0; i < deg; i++ {
		slots[i] = int32(i)
		offW[i] = int32(i * p.cap)
		capW[i] = int32(p.cap)
	}
	p.in = Inbox{
		deg: deg, B: 1, slot: slots,
		lens: make([]int32, deg),
		refs: make([]Message, deg),
		box:  make([][]uint64, deg),
	}
	p.out = Outbox{
		deg: deg, B: 1,
		lens: make([]int32, deg),
		word: make([]uint64, deg*p.cap),
		offW: offW, capW: capW,
		refs: make([]Message, deg),
		// The legacy transport keeps its own receiver-side accounting; the
		// staged-transition counter lands in a throwaway row.
		stage: make([]int64, 1),
	}
	p.send = make([]Message, deg)
	p.wp.Start(info, &p.out)
	return p.flush()
}

func (p *legacyProc) Step(round int, received []Message) ([]Message, bool) {
	for port := 0; port < p.deg; port++ {
		var m Message
		if port < len(received) {
			m = received[port]
		}
		if m == nil {
			p.in.lens[port] = 0
			p.in.box[port] = nil
			p.in.refs[port] = nil
			continue
		}
		p.in.refs[port] = m
		if wm, ok := m.(wireMsg); ok {
			p.in.lens[port] = int32(len(wm.Words) + 1)
			p.in.box[port] = wm.Words
		} else {
			p.in.lens[port] = 1
			p.in.box[port] = nil
		}
	}
	done := p.wp.Step(round, &p.in, &p.out)
	return p.flush(), done
}

// flush converts the staged outbox into a legacy send slice and resets
// the staging state for the next round.
func (p *legacyProc) flush() []Message {
	for port := 0; port < p.deg; port++ {
		n := int(p.out.lens[port])
		switch {
		case n == 0:
			p.send[port] = nil
		case p.out.refs[port] != nil:
			p.send[port] = p.out.refs[port]
			p.out.refs[port] = nil
		default:
			words := make([]uint64, n-1)
			copy(words, p.out.word[port*p.cap:])
			p.send[port] = wireMsg{Words: words}
		}
		p.out.lens[port] = 0
	}
	return p.send
}

func (p *legacyProc) Output() []byte { return p.wp.Output() }
