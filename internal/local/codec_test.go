package local

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// TestFrameRoundTrip pins the codec: lens, words, and gob-portable refs
// survive encode → decode byte for byte, including empty sections and
// reused decode buffers.
func TestFrameRoundTrip(t *testing.T) {
	blocks := []CutBlock{
		{},
		{Lens: []int32{0, 2, 1}, Words: []uint64{7, ^uint64(0)}},
		{Lens: []int32{1}, Words: nil},
		{
			Lens:  []int32{2, 0},
			Words: []uint64{42},
			Refs:  []Message{wireMsg{Words: []uint64{1, 2, 3}}, nil},
		},
	}
	var blk CutBlock
	var scratch []byte
	for round, want := range blocks {
		frame, err := appendFrame(nil, round, want)
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		scratch, err = readFrame(bytes.NewReader(frame), round, &blk, scratch)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if len(blk.Lens) != len(want.Lens) || len(blk.Words) != len(want.Words) {
			t.Fatalf("round %d: shape %d/%d, want %d/%d", round, len(blk.Lens), len(blk.Words), len(want.Lens), len(want.Words))
		}
		for i := range want.Lens {
			if blk.Lens[i] != want.Lens[i] {
				t.Fatalf("round %d: lens[%d] = %d, want %d", round, i, blk.Lens[i], want.Lens[i])
			}
		}
		for i := range want.Words {
			if blk.Words[i] != want.Words[i] {
				t.Fatalf("round %d: words[%d] = %d, want %d", round, i, blk.Words[i], want.Words[i])
			}
		}
		if len(want.Refs) > 0 {
			if len(blk.Refs) != len(want.Refs) {
				t.Fatalf("round %d: %d refs, want %d", round, len(blk.Refs), len(want.Refs))
			}
			wm := blk.Refs[0].(wireMsg)
			if len(wm.Words) != 3 || wm.Words[2] != 3 {
				t.Fatalf("round %d: ref payload %#v", round, blk.Refs[0])
			}
			if blk.Refs[1] != nil {
				t.Fatalf("round %d: nil ref decoded as %#v", round, blk.Refs[1])
			}
		}
	}
}

// unregisteredPayload is a ref payload gob cannot encode (never
// registered), driving the in-process-only error path.
type unregisteredPayload struct{ V int }

// TestFrameRefsInProcessOnly pins the explicit error for boxed payloads
// that cannot cross a byte stream.
func TestFrameRefsInProcessOnly(t *testing.T) {
	_, err := appendFrame(nil, 1, CutBlock{
		Lens: []int32{1},
		Refs: []Message{unregisteredPayload{V: 7}},
	})
	if !errors.Is(err, ErrRefsNotPortable) {
		t.Fatalf("unregistered ref payload encoded: err = %v", err)
	}
}

// corruptFrame returns a valid frame with fn applied to its bytes.
func corruptFrame(t *testing.T, fn func(f []byte) []byte) []byte {
	t.Helper()
	f, err := appendFrame(nil, 3, CutBlock{Lens: []int32{2, 0}, Words: []uint64{9}})
	if err != nil {
		t.Fatal(err)
	}
	return fn(f)
}

// TestFrameMalformed pins every malformed-frame class to a descriptive
// ErrFrame: truncated header, bad magic, wrong version byte, oversized
// declared sections, truncated payload, and a round mismatch.
func TestFrameMalformed(t *testing.T) {
	cases := map[string]struct {
		frame []byte
		round int
		want  string
	}{
		"truncated-header": {
			frame: corruptFrame(t, func(f []byte) []byte { return f[:frameHdrLen-5] }),
			round: 3, want: "truncated header",
		},
		"bad-magic": {
			frame: corruptFrame(t, func(f []byte) []byte { f[0] = 'X'; return f }),
			round: 3, want: "bad magic",
		},
		"wrong-version": {
			frame: corruptFrame(t, func(f []byte) []byte { f[4] = 9; return f }),
			round: 3, want: "version 9",
		},
		"reserved-bytes": {
			frame: corruptFrame(t, func(f []byte) []byte { f[6] = 1; return f }),
			round: 3, want: "reserved",
		},
		"oversized": {
			frame: corruptFrame(t, func(f []byte) []byte {
				binary.LittleEndian.PutUint32(f[16:20], 1<<30)
				return f
			}),
			round: 3, want: "oversized",
		},
		"truncated-payload": {
			frame: corruptFrame(t, func(f []byte) []byte { return f[:len(f)-3] }),
			round: 3, want: "truncated payload",
		},
		"round-mismatch": {
			frame: corruptFrame(t, func(f []byte) []byte { return f }),
			round: 4, want: "round 3 arrived in round 4",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var blk CutBlock
			_, err := readFrame(bytes.NewReader(tc.frame), tc.round, &blk, nil)
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("err = %v, want ErrFrame", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not describe %q", err, tc.want)
			}
		})
	}
}

// TestInstallCutRejectsMismatch pins the engine-side shape validation: a
// decoded block whose lens or words disagree with the receiver's layout
// returns a descriptive error instead of corrupting slabs or panicking.
func TestInstallCutRejectsMismatch(t *testing.T) {
	g := graph.Cycle(8)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	// One clean run computes the layout and slabs.
	if _, err := sh.Run(in, wireMix{rounds: 2}, drawRange(localrand.NewTapeSpace(3), 0, 2), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	bt := sh.shards[1].bt
	port := sh.shards[1].in[0]
	k := 2
	if err := bt.installCut(port.haloLo, len(port.cut), k, CutBlock{Lens: []int32{1}}); err == nil ||
		!strings.Contains(err.Error(), "lens") {
		t.Fatalf("short lens accepted: %v", err)
	}
	lens := make([]int32, len(port.cut)*k)
	if err := bt.installCut(port.haloLo, len(port.cut), k, CutBlock{Lens: lens, Words: make([]uint64, 1)}); err == nil ||
		!strings.Contains(err.Error(), "words") {
		t.Fatalf("word-count mismatch accepted: %v", err)
	}
}

// TestShardedTCPLoopback runs the sharded engine over real loopback TCP
// links — the framed byte-stream transport end to end — and pins
// byte-identical results against the unsharded batch, reuse across
// back-to-back runs included.
func TestShardedTCPLoopback(t *testing.T) {
	space := localrand.NewTapeSpace(41)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan := MustPlan(g)
			bt := plan.NewBatch(3)
			sh, err := plan.NewSharded(3, 3)
			if err != nil {
				t.Fatal(err)
			}
			sh.UseTCPLoopback()
			defer sh.Close()
			lo := 0
			for rep, k := range []int{3, 2} {
				draws := drawRange(space, lo, k)
				want, err := bt.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < k; b++ {
					expectSameResult(t, fmt.Sprintf("tcp rep %d lane %d", rep, b), want[b], got[b])
				}
				lo += k
			}
		})
	}
}

// TestShardedTCPRefsPayloads pins the gob ref path over a byte stream:
// a legacy boxed algorithm whose payloads are engine wireMsg values
// crosses the TCP cut byte-identically, while an algorithm with
// unregistered payload types aborts with the in-process-only error.
func TestShardedTCPRefsPayloads(t *testing.T) {
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	space := localrand.NewTapeSpace(43)

	// Boxed wire algorithm: payloads box as gob-registered wireMsg.
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh.UseTCPLoopback()
	defer sh.Close()
	boxed := Boxed(wireMix{rounds: 3})
	draws := drawRange(space, 0, 2)
	want, err := plan.NewBatch(2).Run(in, boxed, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, boxed, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("boxed tcp lane %d", b), want[b], got[b])
	}

	// tapeXOR's payloads are plain uint64s boxed through the shim — a
	// gob builtin, so they cross the byte stream byte-identically.
	xdraws := drawRange(space, 4, 2)
	want, err = plan.NewBatch(2).Run(in, tapeXOR{rounds: 2}, xdraws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = sh.Run(in, tapeXOR{rounds: 2}, xdraws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range xdraws {
		expectSameResult(t, fmt.Sprintf("legacy tcp lane %d", b), want[b], got[b])
	}

	// A payload type gob has never seen must be refused with the explicit
	// in-process-only error, and the run must abort cleanly.
	if _, err := sh.Run(in, structPayloadAlgo{}, drawRange(space, 8, 2), RunOptions{}); err == nil ||
		!errors.Is(err, ErrRefsNotPortable) {
		t.Fatalf("unregistered ref payloads crossed TCP: err = %v", err)
	}
	// The same algorithm over in-process links runs fine: the refs path
	// is in-process-only, not broken.
	sh2, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh2.Run(in, structPayloadAlgo{}, drawRange(space, 8, 2), RunOptions{}); err != nil {
		t.Fatalf("in-process run of struct payloads: %v", err)
	}
}

// structPayloadAlgo is a legacy algorithm whose payloads are an
// unregistered struct type: portable nowhere but in process.
type structPayloadAlgo struct{}

func (structPayloadAlgo) Name() string        { return "struct-payload" }
func (structPayloadAlgo) NewProcess() Process { return &structPayloadProc{} }

type structPayloadProc struct{ sum int }

func (p *structPayloadProc) Start(info NodeInfo) []Message {
	out := make([]Message, info.Degree)
	for i := range out {
		out[i] = unregisteredPayload{V: int(info.ID)}
	}
	return out
}

func (p *structPayloadProc) Step(round int, received []Message) ([]Message, bool) {
	for _, m := range received {
		if m != nil {
			p.sum += m.(unregisteredPayload).V
		}
	}
	return nil, true
}

func (p *structPayloadProc) Output() []byte { return encode64(int64(p.sum)) }

// TestShardedTCPRecoversAfterAbort pins the pooled-connection hygiene of
// the loopback transport: a run that dies mid-round (one shard panics,
// its peer's Recv hits the link deadline) may strand stale or partial
// frames in the pooled sockets, so the next run must get fresh
// connections — and byte-identical results — instead of round-mismatch
// errors off the poisoned streams.
func TestShardedTCPRecoversAfterAbort(t *testing.T) {
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetLinkTimeout(200 * time.Millisecond)
	sh.UseTCPLoopback()
	defer sh.Close()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the node panic to re-raise")
			}
		}()
		sh.RunInstances([]*lang.Instance{in}, panicOnNode{node: in.ID[7]}, nil, RunOptions{})
	}()

	draws := drawRange(localrand.NewTapeSpace(61), 0, 2)
	want, err := plan.NewBatch(2).Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatalf("run after aborted TCP run: %v", err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("post-abort lane %d", b), want[b], got[b])
	}
}

// TestInstallCutRejectsOversizedLens pins the value-level validation: a
// structurally valid frame whose lens entry exceeds the slot's word
// capacity must be refused — the Inbox would otherwise read past the
// slot's words (or panic) on delivery.
func TestInstallCutRejectsOversizedLens(t *testing.T) {
	g := graph.Cycle(8)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g)
	if _, err := sh.Run(in, wireMix{rounds: 2}, drawRange(localrand.NewTapeSpace(9), 0, 2), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	bt := sh.shards[1].bt
	port := sh.shards[1].in[0]
	k := 2
	lens := make([]int32, len(port.cut)*k)
	words := 0
	for i := range port.cut {
		words += int(bt.capW[port.haloLo+i]) * k
	}
	lens[0] = bt.capW[port.haloLo] + 2 // one word past the slot capacity
	err = bt.installCut(port.haloLo, len(port.cut), k, CutBlock{Lens: lens, Words: make([]uint64, words)})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("oversized len accepted: %v", err)
	}
}

// TestShardedGarbageStream pins the decode → abort path end to end: a
// link whose byte stream is garbage aborts the sharded run with a
// descriptive frame error — no panic, no hang.
func TestShardedGarbageStream(t *testing.T) {
	g := graph.Cycle(8)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetLinkFactory(func(from, to int, cut []int32) ShardLink {
		recvA, recvB := net.Pipe()
		go recvB.Write([]byte("this is not a cut block frame, not even close!!"))
		sendA, sendB := net.Pipe()
		go io.Copy(io.Discard, sendB)
		return StreamLink(sendA, recvA, 200*time.Millisecond)
	})
	_, err = sh.Run(in, wireMix{rounds: 2}, drawRange(localrand.NewTapeSpace(5), 0, 2), RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage stream: err = %v, want a frame error", err)
	}
}
