package local

import "rlnc/internal/localrand"

// This file is the lane-vectorized stepping seam of the message engine:
// the optional fast path where ONE process instance owns a node's state
// for every lane of the batch as struct-of-arrays and steps all lanes in
// a single call per node per round. The slabs already store messages
// [slot][lane]-major (batch.go), so a slot's lanes are adjacent in
// memory; the scalar path still walks them through B per-(node, lane)
// WireProcess objects, re-deriving the port→slot indirection, the lens
// lookup, the base-offset arithmetic, and the decode validation B times
// per node per round. A VecProcess hoists all of that out of the lane
// loop: InboxVec hands it each port's contiguous lens row and word block
// once, and the inner loop over lanes is a tight walk over adjacent
// memory.
//
// The layering mirrors the wire core exactly:
//
//	VecProcess    — SoA per-node state, one Step call across lanes
//	WireProcess   — the scalar fallback (and the width-1 Engine case)
//
// An algorithm opts in by implementing VecAlgorithm next to its
// WireAlgorithm; layoutWire arms the vector path when the batch is wider
// than one lane and the algorithm's payloads are slab words (ref-carried
// payloads stay scalar). Everything underneath — process-table pooling,
// the fault pass, sharded windows, sender-side message accounting — is
// unchanged: the vec passes fill the same lens/word slabs and the same
// per-worker counter rows the scalar passes do, and the contract is
// byte-identical outputs and Stats at equal seeds on both paths.

// VecAlgorithm is the lane-vectorized extension of a WireAlgorithm: an
// algorithm that can also step one node's whole lane vector through a
// single SoA process. Engines use the vector path automatically when the
// batch has more than one lane; the WireAlgorithm methods remain the
// scalar fallback (and the width-1 Engine path), and both paths must
// produce byte-identical outputs and Stats at equal seeds.
type VecAlgorithm interface {
	WireAlgorithm
	// NewVecProcess creates one SoA process owning a single node's state
	// for all lanes of a batch. The engine creates one per node (not per
	// node per lane) and calls StartVec/StepVec with the lane count of
	// the current run.
	NewVecProcess() VecProcess
}

// VecProcess is the SoA per-node state machine of a lane-vectorized
// algorithm: one instance holds a node's state for every lane, as
// parallel slices indexed by lane (grown to info.Lanes() on StartVec).
//
// InboxVec and OutboxVec are engine-owned scratch, valid only for the
// duration of the call that hands them over; word rows read through
// InboxVec are read-only. State slices must be per-lane independent:
// lane b's outputs must be byte-identical to a scalar WireProcess run of
// the same (instance, draw) pair.
type VecProcess interface {
	// StartVec initializes every lane's state from info (identities,
	// inputs, and tapes are per-lane) and stages the round-1 messages of
	// all lanes into out.
	StartVec(info *VecNodeInfo, out *OutboxVec)
	// StepVec advances every running lane one round: it reads the round's
	// arrivals from in, stages the next round's sends into out, and sets
	// done[b] = true to finish lane b (fixing its output). Lanes with
	// done[b] already true are finished and must be skipped entirely — no
	// reads, no sends, no state changes — as must lanes masked by
	// in.Mask() (crashed under a fault plan, possibly recovering later).
	StepVec(round int, in *InboxVec, out *OutboxVec, done []bool)
	// OutputVec returns lane b's final output, under the same retention
	// rules as WireProcess.Output (and ResetProcess when pooled): the
	// slice must stay valid after the process is reset and reused.
	OutputVec(lane int) []byte
}

// ResetVecProcess is the pooling extension of VecProcess, mirroring
// ResetProcess: when an algorithm's vec processes implement it, the
// per-node process table is kept across back-to-back runs and reset in
// place instead of reallocated. ResetVec must drop every reference the
// previous run planted — tape pointers above all, which alias the
// engine's per-run tape slab.
type ResetVecProcess interface {
	VecProcess
	ResetVec()
}

// VecNodeInfo is the vectorized NodeInfo: one node's static data for
// every lane of the run. Identities, inputs, and tapes vary per lane
// (RunInstances gives lanes distinct instances); the degree does not.
type VecNodeInfo struct {
	deg, k, v int
	src       *laneSrc
	hasTapes  bool
}

// Degree returns the node's degree (ports 0..Degree()-1).
func (info *VecNodeInfo) Degree() int { return info.deg }

// Lanes returns the run's lane count k; state slices grow to it.
func (info *VecNodeInfo) Lanes() int { return info.k }

// ID returns the node's identity in lane b's instance.
func (info *VecNodeInfo) ID(b int) int64 { return info.src.instance(b).ID[info.v] }

// Input returns the node's input in lane b's instance.
func (info *VecNodeInfo) Input(b int) []byte { return info.src.instance(b).X[info.v] }

// Tape returns the node's private random tape in lane b, or nil for a
// deterministic run. Like NodeInfo.Tape, it stays valid for the whole
// execution (not just the StartVec call).
func (info *VecNodeInfo) Tape(b int) *localrand.Tape {
	if !info.hasTapes {
		return nil
	}
	return info.src.tape(b, info.v)
}

// InboxVec is the received side of one node in one round, lane-major:
// per port, the k lens entries and the word block of all lanes at once,
// straight off the receive slab. It is engine-owned scratch, valid only
// for the duration of the StepVec call it is passed to.
type InboxVec struct {
	deg  int
	k, B int     // lane count and lane stride
	slot []int32 // per-port receive slot (the node's RevSlot window)
	lens []int32
	word []uint64
	offW []int32
	capW []int32
	mask []bool
}

// Degree returns the number of ports (the node's degree).
func (in *InboxVec) Degree() int { return in.deg }

// Lanes returns the run's lane count k.
func (in *InboxVec) Lanes() int { return in.k }

// Mask returns the per-lane fault mask of this round, or nil when no
// lane is masked (every fault-free round). A masked lane is crashed: it
// must not read, send, step, or change state this round — but it is not
// done (it may recover), so the process must leave its lane state
// untouched rather than finishing it.
func (in *InboxVec) Mask() []bool { return in.mask }

// LensRow returns the port's k contiguous lens entries, in the slab's
// raw encoding: 0 = no message arrived, n+1 = an n-word payload. Lane
// b's entry is row[b]. Read-only engine-owned scratch.
func (in *InboxVec) LensRow(port int) []int32 {
	s := int(in.slot[port])
	lo := s * in.B
	return in.lens[lo : lo+in.k : lo+in.k]
}

// WordBlock returns the port's payload word block and its per-lane
// stride: lane b's payload words (LensRow(port)[b]-1 of them) start at
// block[b*stride]. The stride is the slot's MsgWords capacity; a
// zero-capacity slot (pure-signal algorithms) returns an empty block.
// Read-only engine-owned scratch.
func (in *InboxVec) WordBlock(port int) (block []uint64, stride int) {
	s := int(in.slot[port])
	stride = int(in.capW[s])
	lo := int(in.offW[s]) * in.B
	hi := lo + stride*in.B
	return in.word[lo:hi:hi], stride
}

// OutboxVec is the sending side of one node in one round, lane-major:
// its staging operations write whole lane rows per port, so the slot
// math, capacity check, and base offset resolve once per port instead of
// once per (port, lane). Staging feeds the same sender-side message
// accounting as the scalar Outbox (every 0→staged lens transition
// increments the lane's stage count). Engine-owned scratch, valid only
// for the duration of the StartVec/StepVec call it is passed to.
type OutboxVec struct {
	deg    int
	k, B   int // lane count and lane stride
	slotLo int // the node's first directed slot (local coordinates)
	lens   []int32
	word   []uint64
	offW   []int32
	capW   []int32
	stage  []int64
}

// Degree returns the number of ports (the node's degree).
func (out *OutboxVec) Degree() int { return out.deg }

// Lanes returns the run's lane count k.
func (out *OutboxVec) Lanes() int { return out.k }

// SignalRow stages a zero-word message on every port for each lane with
// send[b] true (the lane-vectorized SignalAll).
func (out *OutboxVec) SignalRow(send []bool) {
	k, B := out.k, out.B
	for p := 0; p < out.deg; p++ {
		lo := (out.slotLo + p) * B
		row := out.lens[lo : lo+k]
		for b := 0; b < k; b++ {
			if !send[b] {
				continue
			}
			if row[b] == 0 {
				out.stage[b]++
			}
			row[b] = 1
		}
	}
}

// BroadcastRow stages the one-word message words[b] on every port for
// each lane with send[b] true, replacing anything staged there this
// round (the lane-vectorized Broadcast). It panics when the algorithm's
// MsgWords bound cannot hold one word.
func (out *OutboxVec) BroadcastRow(words []uint64, send []bool) {
	k, B := out.k, out.B
	ws := words[:k]
	for p := 0; p < out.deg; p++ {
		s := out.slotLo + p
		stride := int(out.capW[s])
		if stride < 1 {
			panic("local: wire message exceeds the algorithm's MsgWords bound")
		}
		lo := s * B
		row := out.lens[lo : lo+k]
		base := int(out.offW[s]) * B
		if stride == 1 {
			// One-word slots (MsgWords == 1 algorithms): the lane's word
			// sits at base+b, so the write loop is a guarded row copy with
			// no stride multiply and no per-store bounds check.
			dst := out.word[base : base+k]
			for b := 0; b < k; b++ {
				if !send[b] {
					continue
				}
				if row[b] == 0 {
					out.stage[b]++
				}
				dst[b] = ws[b]
				row[b] = 2
			}
			continue
		}
		for b := 0; b < k; b++ {
			if !send[b] {
				continue
			}
			if row[b] == 0 {
				out.stage[b]++
			}
			out.word[base+stride*b] = ws[b]
			row[b] = 2
		}
	}
}

// BroadcastRow2 stages the two-word message (w0[b], w1[b]) on every port
// for each lane with send[b] true, replacing anything staged there this
// round. It panics when the algorithm's MsgWords bound cannot hold two
// words.
func (out *OutboxVec) BroadcastRow2(w0, w1 []uint64, send []bool) {
	k, B := out.k, out.B
	for p := 0; p < out.deg; p++ {
		s := out.slotLo + p
		if out.capW[s] < 2 {
			panic("local: wire message exceeds the algorithm's MsgWords bound")
		}
		lo := s * B
		row := out.lens[lo : lo+k]
		base := int(out.offW[s]) * B
		stride := int(out.capW[s])
		for b := 0; b < k; b++ {
			if !send[b] {
				continue
			}
			if row[b] == 0 {
				out.stage[b]++
			}
			wb := base + stride*b
			out.word[wb] = w0[b]
			out.word[wb+1] = w1[b]
			row[b] = 3
		}
	}
}

// ScalarOnly strips algo of its lane-vectorized fast path: executions
// step it one lane at a time through its scalar WireProcess, exactly as
// a batch of width 1 would. Outputs and Stats are byte-identical to the
// vector path at equal seeds — ScalarOnly is the reference baseline the
// vec differential tests and benchmarks compare against.
func ScalarOnly(algo MessageAlgorithm) MessageAlgorithm {
	return scalarOnly{wa: wireOf(algo)}
}

// scalarOnly forwards the WireAlgorithm surface and deliberately does
// not implement VecAlgorithm, so layoutWire never arms the vector path.
type scalarOnly struct{ wa WireAlgorithm }

func (a scalarOnly) Name() string                { return a.wa.Name() }
func (a scalarOnly) MsgWords(deg int) int        { return a.wa.MsgWords(deg) }
func (a scalarOnly) NewWireProcess() WireProcess { return a.wa.NewWireProcess() }
func (a scalarOnly) NewProcess() Process         { return NewLegacyProcess(a.wa) }

// startVecPass is startPass on the vector path: per node, one contiguous
// clear of the lanes' send state and the done row, then ONE pooled (or
// fresh) VecProcess whose StartVec initializes and stages every lane at
// once. Pass parameters arrive via rk/rsrc exactly like the scalar pass.
func (bt *Batch) startVecPass(w, vlo, vhi int) {
	topo := bt.plan.topo
	k, B, va := bt.rk, bt.block, bt.vecAlgo
	src, pool := &bt.rsrc, bt.rpool
	vprocs, vresets, done := bt.vprocs, bt.vresets, bt.done
	curLens := bt.curLens
	out := &bt.voutboxes[w]
	bt.bindOutboxVec(out, k, bt.wkStage[w], bt.curLens, bt.curWords)
	info := &bt.vinfos[w]
	info.k, info.src, info.hasTapes = k, src, src.hasTapes()
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v)
		deg := hi - lo
		slo, shi := lo-bt.slotBase, hi-bt.slotBase
		out.deg, out.slotLo = deg, slo
		clear(curLens[slo*B : shi*B])
		clear(done[v*B : v*B+k])
		p := vprocs[v]
		if pool && vresets[v] != nil {
			vresets[v].ResetVec()
		} else {
			p = va.NewVecProcess()
			vprocs[v] = p
			if rp, ok := p.(ResetVecProcess); ok {
				vresets[v] = rp
			}
		}
		info.deg, info.v = deg, v
		p.StartVec(info, out)
	}
}

// roundVecPass is the fault-free roundPass on the vector path: the same
// fused deliver + step walk with one StepVec call per node instead of k
// Step calls. Finished lanes are skipped inside the process via the done
// row (a dead lane's nodes are all done, so the scalar path's alive
// check is subsumed); newly finished lanes are diffed against the
// pre-step done row into the worker's fin counters.
func (bt *Batch) roundVecPass(w, vlo, vhi int) {
	topo := bt.plan.topo
	k, B, round := bt.rk, bt.block, bt.rround
	finRow := bt.wkFin[w][:k]
	in, out := &bt.vinboxes[w], &bt.voutboxes[w]
	bt.bindInboxVec(in, k)
	bt.bindOutboxVec(out, k, bt.wkStage[w], bt.nextLens, bt.nextWord)
	nextLens := bt.nextLens
	done, vprocs := bt.done, bt.vprocs
	prev := bt.wkPrev[w][:k]
	base := bt.slotBase
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v)
		deg := hi - lo
		rev := bt.revTab[lo-base : hi-base]
		in.deg, in.slot = deg, rev
		out.deg, out.slotLo = deg, lo-base
		clear(nextLens[(lo-base)*B : (hi-base)*B])
		doneRow := done[v*B : v*B+k]
		left := 0
		for b, d := range doneRow {
			prev[b] = d
			if !d {
				left++
			}
		}
		if left == 0 {
			continue
		}
		vprocs[v].StepVec(round, in, out, doneRow)
		for b, d := range doneRow {
			if d && !prev[b] {
				finRow[b]++
			}
		}
	}
}

// collectVecPass is collectPass on the vector path.
func (bt *Batch) collectVecPass(vlo, vhi int) {
	k, n := bt.rk, bt.plan.g.N()
	ys, vprocs := bt.rys, bt.vprocs
	for v := vlo; v < vhi; v++ {
		p := vprocs[v]
		for b := 0; b < k; b++ {
			ys[b*n+v] = p.OutputVec(b)
		}
	}
}

// outputOf returns lane b's node-v output under the current run's
// stepping mode — the shared collection accessor of the sharded
// orchestrator and the shard-worker protocol.
func (bt *Batch) outputOf(v, b int) []byte {
	if bt.vecAlgo != nil {
		return bt.vprocs[v].OutputVec(b)
	}
	return bt.procs[v*bt.block+b].Output()
}

// bindInboxVec points a worker's InboxVec at the current receive slabs;
// the per-node fields (deg, slot window) are set in the loop. The mask
// is cleared — only the fault pass arms it, per node.
func (bt *Batch) bindInboxVec(in *InboxVec, k int) {
	in.k = k
	in.B = bt.block
	in.lens = bt.curLens
	in.word = bt.curWords
	in.offW = bt.offW
	in.capW = bt.capW
	in.mask = nil
}

// bindOutboxVec points a worker's OutboxVec at the given staging slabs:
// the start pass stages into cur, the round passes into next — exactly
// like the scalar boxes.
func (bt *Batch) bindOutboxVec(out *OutboxVec, k int, stage []int64, lens []int32, words []uint64) {
	out.k = k
	out.B = bt.block
	out.lens = lens
	out.word = words
	out.offW = bt.offW
	out.capW = bt.capW
	out.stage = stage
}
