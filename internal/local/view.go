// Package local implements the LOCAL model of the paper (§2.1): synchronous
// rounds in which every node sends messages to its neighbors, receives
// theirs, and computes; no bounds on message size or local computation.
//
// Two equivalent programming interfaces are provided, mirroring the
// simulation argument of §2.1.1:
//
//   - the message-passing interface runs an explicit round loop with one
//     goroutine per batch of nodes. Its native form is the wire-format
//     interface (WireProcess/WireAlgorithm, wire.go): messages are
//     fixed-width 64-bit words written straight into the engine's send
//     slabs, so a round allocates nothing. The legacy boxed interface
//     (Process/MessageAlgorithm) remains as a compatibility layer — a
//     boxing shim runs legacy Processes on the same round loop with
//     payloads carried by reference, and NewLegacyProcess runs a
//     WireAlgorithm through the legacy API — with byte-identical outputs
//     and Stats on every transport;
//   - the ball-view interface (ViewAlgorithm) computes each node's output
//     directly as a function of its ball B_G(v,t).
//
// The adapters FullInfo (view algorithm → t-round message algorithm,
// exact) and MessageAsView (t-round message algorithm → view algorithm of
// radius t+1, exact) witness the equivalence; see adapter.go.
//
// Both interfaces execute through a four-level layering:
//
//   - Plan (plan.go) is the reusable, concurrency-safe layout of one
//     graph: the CSR-flattened adjacency, the reverse-port delivery
//     table, and per-graph caches that depend only on topology (balls by
//     radius, BFS distance columns by source). Build one Plan per
//     instance and share it across workers.
//   - Batch (batch.go) is one worker's vectorized execution scratch: it
//     runs a vector of independent trials through a single pass, with
//     structure-of-arrays message slabs indexed [slot][lane] (see "Slab
//     layout" below) and cached view skeletons refilled once per pass,
//     so the round scheduling, the reverse-slot gather, the halting
//     checks, and the view assembly amortize across the whole vector.
//     Lane b is byte-identical to a lone execution of the same
//     (instance, draw). Algorithms whose processes implement
//     ResetProcess additionally have their per-(node, lane) process
//     table pooled across back-to-back runs.
//   - Engine (plan.go) is the one-lane case of the same core: a Batch of
//     width 1 with scalar wrappers. RunView and RunMessage are
//     single-shot wrappers building a transient Engine.
//   - Sharded (sharded.go) is the multi-machine shape of the message
//     path: the plan's CSR layout is partitioned into contiguous node
//     ranges (a shard boundary is a cut in Topology.Offsets), and each
//     shard runs the full lane vector over its range with the same
//     startPass/roundPass core on a *compacted window* — its slabs cover
//     only its own slot range plus the remote halo it reads, via the
//     per-shard global→local remap of graph.ShardSlots, so per-shard
//     slab memory scales with the shard, not the graph (the
//     TestShardSlabCompaction gate pins ≥40% savings at 4 balanced
//     shards). Cross-shard RevSlot deliveries are resolved once per
//     round by exchanging the cut slots' contiguous [slot][lane]
//     lens+words blocks over ShardLinks. Three transports implement the
//     seam: in-process one-slot channels (sharded.go; zero-copy, with a
//     deadline backstop), framed byte streams over any net.Conn
//     (codec.go + transport.go: a versioned little-endian frame per
//     round per cut pair, loopback-TCP LinkFactory included, per-link
//     read/write deadlines), and the shard-worker protocol (remote.go +
//     worker.go: each shard is a real OS process — `rlnc shard-worker` —
//     receiving its job over a gob control stream and exchanging cut
//     blocks peer-to-peer over TCP). Every lane is byte-identical
//     (outputs, Stats, errors) to the unsharded Batch at equal seeds,
//     for every shard count, cut placement, and transport;
//     internal/shardtest enforces the contract differentially, TCP
//     links included.
//
// # Slab layout and the slot-major round kernel
//
// The wire slabs are structure-of-arrays over directed CSR slots with
// the lane as the minor axis. For a batch of width B, slot s's length
// code for lane b sits at lens[s*B+b] (0 = no message, n+1 = n payload
// words) and its payload words at words[offW[s]*B + capW[s]*b ...],
// where capW[s] is the slot's fixed word capacity and offW is its
// prefix sum. A slot belongs to its SENDER: a node's Outbox writes its
// own contiguous slot window [lo, hi), and receivers read through the
// plan's reverse-slot table. That ownership is what makes the round
// kernel slot-major: one pass walks each node's window once, clears the
// next-round lens range with a single contiguous clear — (hi-lo)·B
// adjacent entries, not B strided walks — then steps the node's live
// lanes in place. The same contiguity powers the sharded cut exchange:
// at full lane blocks (k == B), packCut flattens a maximal run of
// consecutive cut slots into one dense lens copy and one dense word
// copy, and installCut writes a peer's whole halo segment the same way
// (after value-level lens validation — byte-stream peers can send
// anything).
//
// Message accounting is sender-side on the fault-free path: delivered
// messages of round r are exactly the messages staged in round r-1, so
// the Outbox counts 0→staged lens transitions per lane as they happen
// and the kernel credits the previous pass's counts to lanes still
// alive at delivery time — no receiver-side lens walk. The fault pass
// keeps receiver-side counting, because suppression and delay make
// staged ≠ delivered there.
//
// Per-run outputs land in double-buffered arenas (per-node output
// encodings and the Result vector alternate between two buffers), so a
// warm Batch runs a full trial with zero allocations; the width-1
// Engine instead returns freshly allocated, caller-owned Result and
// output slices — exactly two allocations — because its callers may
// retain results indefinitely. alloc_test.go pins both floors.
//
// # Lane-vectorized stepping
//
// A WireAlgorithm may additionally implement VecAlgorithm (vec.go): one
// VecProcess instance then owns a node's state for ALL lanes of the
// batch as struct-of-arrays, and the round kernel makes a single
// StartVec/StepVec call per node per pass instead of B scalar calls.
// InboxVec and OutboxVec expose the slabs lane-major — per-port
// contiguous lens rows (LensRow) and per-slot word blocks with their
// lane stride (WordBlock), plus row-staging verbs (SignalRow,
// BroadcastRow, BroadcastRow2) — so the port→slot lookup, base-offset
// arithmetic, and decode validation hoist out of the per-lane loop and
// the inner loop walks the adjacent memory the slot-major layout
// already provides. A Batch dispatches to the vector path when the
// algorithm implements VecAlgorithm and the width exceeds one on the
// wire (non-boxed) path; the scalar per-lane path remains the fallback
// and the width-1 Engine case, and ScalarOnly wraps an algorithm to
// force it — the differential suites pin both paths byte-identical.
//
// The VecProcess contract mirrors the scalar one per lane, with three
// SoA-specific rules. State rule: all per-lane state lives in slices
// the process sizes to VecNodeInfo.Lanes (resized, never reallocated
// per pass when capacity suffices), and a process implementing
// ResetVecProcess is pooled per NODE across back-to-back runs exactly
// like ResetProcess tables — TestVecAllocFloors pins the warm vec trial
// at zero allocations, fault plans included. Mask rule: StepVec acts
// only for lanes with done[b] false and Mask()[b] false (a nil mask
// means all lanes live); the mask is how crashed and finalized lanes
// are frozen under faults, so a vec process must neither read arrivals
// for nor stage messages from a masked lane, and it signals halting by
// setting done[b] itself. Aliasing rule: everything InboxVec hands over
// is engine-owned scratch valid only during the call, like the scalar
// Inbox; lens rows and word blocks are read-only views of the live
// slabs.
//
// # Fault injection
//
// Faults are a first-class engine seam (fault.go): a FaultPlan is a
// seeded schedule of per-round message drops and one-round delays, node
// crashes with optional recovery windows, and mid-run topology surgery
// (EdgeCut; CutForSubdivision pairs a cut with its twice-subdivided
// comparison graph). A plan is armed durably with SetFault — on an
// Engine, a Batch, or a Sharded, which propagates it to every shard and
// its companion batch — or per run through RunOptions.Fault. The
// implementation lives once in the shared round core: an armed batch
// routes roundPass through its fault sibling, which suppresses or holds
// receive slots and freezes crashed lanes' nodes before the delivered
// counts are taken, so Engine, Batch, Sharded, and the remote
// shard-worker path (the plan ships inside the job spec) all honor the
// same plan byte-identically. Fault decisions come from a dedicated
// fault tape keyed by shape-invariant coordinates — (round, global
// directed slot, per-lane fault identity) — never from the algorithm's
// tapes, so arming a plan perturbs no algorithmic randomness, faulty
// runs are exactly reproducible, and per-lane outputs are byte-identical
// across batch widths, shard counts, and transports (the faulty half of
// internal/shardtest pins this differentially). A nil or zero plan takes
// the fault path nowhere and reproduces fault-free runs bit for bit at
// zero cost.
//
// Monte-Carlo trial loops hold a Plan and give each worker its own Batch
// (mc.Executor with a Batch width hands workers contiguous trial
// chunks), Engine (width 1, one index at a time), or Sharded (Shards > 0
// hands chunks to shard groups), which removes all steady-state
// allocations from the trial loop; the Executor's Fault option arms a
// FaultPlan on every worker's executor.
//
// Everything an Engine or Batch passes to algorithm code is
// engine-owned scratch with a uniform contract: the received slice of
// Process.Step, assembled Views (and their LabeledBall reinterpretation),
// and the tapes returned by View.TapeFor are valid only for the duration
// of the call that hands them over, must be treated as read-only, and are
// reused or released when the pass ends — algorithms copy whatever they
// want to keep. Message payloads themselves and returned output strings
// are never reused by the engine; conversely, shared encodings such as
// lang.EncodeColor return read-only storage. These invariants are what
// let pooled and batched executions drop every reference to a previous
// trial's state while allocating nothing per round.
package local

import (
	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// View is everything a node may base its output on in the ball-view
// formulation: the ball B_G(v,t) with inputs, identities, optionally the
// outputs y (for deciders examining input-output configurations), and the
// per-node random tapes (for Monte-Carlo algorithms). All slices are
// ball-local; index 0 is the center.
type View struct {
	Ball *graph.Ball
	IDs  []int64
	X    [][]byte
	// Y is nil when the view belongs to a construction task; deciders
	// receive the candidate outputs here.
	Y [][]byte
	// TapeFor returns the private tape of the ball-local node, or nil for
	// deterministic algorithms. Tapes are addressed by identity, so the
	// same node presents the same bits in every view containing it —
	// exactly the multiset-of-strings model of §3. Every call returns the
	// tape rewound to its start; distinct locals return distinct tapes,
	// but calling TapeFor twice with the same local may return the same
	// (rewound) object, so treat a tape as live only until the next
	// TapeFor call for that local.
	TapeFor func(local int) *localrand.Tape

	// lb is the view reinterpreted as an identity-free labeled ball; it
	// aliases Ball/X/Y, rebuilt on demand by LabeledBall.
	lb lang.LabeledBall
}

// LabeledBall returns the view as an identity-free labeled ball for LCL
// bad-ball predicates, backed by the view's own storage: no allocation,
// valid exactly as long as the view is. Cached view skeletons keep their
// Ball/X/Y slices across trials (only the contents are refilled), so the
// rebuild — and its pointer write barriers — happens once per skeleton,
// not once per verdict.
func (v *View) LabeledBall() *lang.LabeledBall {
	if v.lb.Ball != v.Ball || !sameColumn(v.lb.X, v.X) || !sameColumn(v.lb.Y, v.Y) {
		v.lb = lang.LabeledBall{Ball: v.Ball, X: v.X, Y: v.Y}
	}
	return &v.lb
}

// Tape returns the center's tape (nil for deterministic views).
func (v *View) Tape() *localrand.Tape {
	if v.TapeFor == nil {
		return nil
	}
	return v.TapeFor(0)
}

// Degree returns the center's degree inside the ball, which equals its
// degree in the host graph for any radius >= 1.
func (v *View) Degree() int { return v.Ball.G.Degree(0) }

// ViewAlgorithm is a constant-radius algorithm in ball form: every node
// outputs a function of its radius-t view.
type ViewAlgorithm interface {
	Name() string
	Radius() int
	Output(v *View) []byte
}

// tapeFunc builds the per-view tape accessor for a draw σ; nil draws give
// deterministic views.
func tapeFunc(drawPtr *localrand.Draw, idOf func(local int) int64) func(int) *localrand.Tape {
	if drawPtr == nil {
		return nil
	}
	draw := *drawPtr
	return func(local int) *localrand.Tape {
		return draw.Tape(idOf(local))
	}
}

// ConstructionView assembles the radius-t view of node v for a
// construction instance (no outputs).
func ConstructionView(in *lang.Instance, v, t int, draw *localrand.Draw) *View {
	b := in.G.BallAround(v, t)
	view := &View{
		Ball: b,
		IDs:  make([]int64, b.Size()),
		X:    make([][]byte, b.Size()),
	}
	for i, u := range b.Nodes {
		view.IDs[i] = in.ID[u]
		view.X[i] = in.X[u]
	}
	view.TapeFor = tapeFunc(draw, func(local int) int64 { return view.IDs[local] })
	return view
}

// DecisionView assembles the radius-t view of node v for a decision
// instance (inputs and candidate outputs).
func DecisionView(di *lang.DecisionInstance, v, t int, draw *localrand.Draw) *View {
	b := di.G.BallAround(v, t)
	view := &View{
		Ball: b,
		IDs:  make([]int64, b.Size()),
		X:    make([][]byte, b.Size()),
		Y:    make([][]byte, b.Size()),
	}
	for i, u := range b.Nodes {
		view.IDs[i] = di.ID[u]
		view.X[i] = di.X[u]
		view.Y[i] = di.Y[u]
	}
	view.TapeFor = tapeFunc(draw, func(local int) int64 { return view.IDs[local] })
	return view
}

// RunView executes a ball-view algorithm on every node of an instance,
// returning the global output y. A nil draw runs the algorithm
// deterministically (no tapes). Nodes are processed on a worker pool; the
// result is independent of scheduling because views are read-only (and,
// now that views are cached, algorithms must treat them as read-only:
// Ball, IDs, and X are shared scratch, not per-call copies).
//
// RunView is the single-shot wrapper over the Plan/Engine layer; trial
// loops should hold a Plan and one Engine per worker so ball extraction
// and view assembly are amortized across executions.
func RunView(in *lang.Instance, algo ViewAlgorithm, draw *localrand.Draw) [][]byte {
	plan, err := NewPlan(in.G)
	if err != nil {
		// Unreachable for graphs built through the public constructors,
		// which validate adjacency symmetry; keep the old panic-free
		// signature for the overwhelmingly common case.
		panic(err)
	}
	return plan.NewEngine().RunView(in, algo, draw)
}

// ViewFunc wraps a plain function as a ViewAlgorithm.
type ViewFunc struct {
	AlgoName string
	R        int
	F        func(v *View) []byte
}

// Name implements ViewAlgorithm.
func (a ViewFunc) Name() string { return a.AlgoName }

// Radius implements ViewAlgorithm.
func (a ViewFunc) Radius() int { return a.R }

// Output implements ViewAlgorithm.
func (a ViewFunc) Output(v *View) []byte { return a.F(v) }
