package local

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// shardCounts returns the shard counts the local equivalence tests
// sweep: the degenerate single shard, small counts, and one shard per
// node.
func shardCounts(n int) []int {
	counts := []int{1}
	for _, c := range []int{2, 3, n} {
		if c > 1 && c <= n {
			counts = append(counts, c)
		}
	}
	return counts
}

// TestShardedMatchesBatchMessage pins the tentpole contract inside the
// package: every lane of a sharded run — wire-native and boxed/ref
// transports, full batches, ragged tails, back-to-back reuse — is
// byte-identical to the unsharded Batch at equal seeds, on every graph
// family and shard count.
func TestShardedMatchesBatchMessage(t *testing.T) {
	const width = 4
	space := localrand.NewTapeSpace(91)
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan := MustPlan(g)
			bt := plan.NewBatch(width)
			for _, shards := range shardCounts(g.N()) {
				sh, err := plan.NewSharded(width, shards)
				if err != nil {
					t.Fatal(err)
				}
				lo := 0
				for rep, k := range []int{width, width - 1, width} {
					draws := drawRange(space, lo, k)
					want, err := bt.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					for b := 0; b < k; b++ {
						expectSameResult(t, fmt.Sprintf("shards=%d rep=%d lane=%d", shards, rep, b), want[b], got[b])
					}
					lo += k
				}

				// Legacy boxed transport: payloads cross the cut by
				// reference through CutBlock.Refs.
				draws := drawRange(space, lo, 2)
				want, err := bt.Run(in, tapeXOR{rounds: 3}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Run(in, tapeXOR{rounds: 3}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for b := range draws {
					expectSameResult(t, fmt.Sprintf("shards=%d boxed lane=%d", shards, b), want[b], got[b])
				}

				// Deterministic per-lane instances through RunInstances.
				ins := []*lang.Instance{in, in, in}
				gotDet, err := sh.RunInstances(ins, floodMin{t: 2}, nil, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				wantDet, err := RunMessage(in, floodMin{t: 2}, nil, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for b := range gotDet {
					expectSameResult(t, fmt.Sprintf("shards=%d deterministic lane=%d", shards, b), wantDet, gotDet[b])
				}
			}
		})
	}
}

// TestShardedFullInfoRefs pins the ref-slab path across the cut: the
// full-information adapter's gossip records travel by reference through
// CutBlock.Refs and must reconstruct identical views.
func TestShardedFullInfoRefs(t *testing.T) {
	g := graph.Cycle(12)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	algo := FullInfo(tapeSumView{t: 2})
	space := localrand.NewTapeSpace(93)
	draws := drawRange(space, 0, 2)
	want, err := plan.NewBatch(2).Run(in, algo, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, algo, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("full-info lane %d", b), want[b], got[b])
	}
}

// TestShardedErrorPaths pins ErrNoHalt and StopAfter on sharded runs —
// identical errors and Stats to the unsharded batch — and reuse of the
// same Sharded after an aborted run.
func TestShardedErrorPaths(t *testing.T) {
	in := mustInstance(t, graph.Cycle(6))
	plan := MustPlan(in.G)
	space := localrand.NewTapeSpace(95)
	sh, err := plan.NewSharded(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	bt := plan.NewBatch(3)

	_, wantErr := bt.Run(in, neverHalt{}, drawRange(space, 0, 3), RunOptions{MaxRounds: 20})
	_, gotErr := sh.Run(in, neverHalt{}, drawRange(space, 0, 3), RunOptions{MaxRounds: 20})
	if !errors.Is(gotErr, ErrNoHalt) {
		t.Fatalf("expected ErrNoHalt, got %v", gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error text differs: sharded %q vs batch %q", gotErr, wantErr)
	}

	// StopAfter semantics, and reuse after the aborted run above.
	want, err := bt.Run(in, neverHalt{}, drawRange(space, 0, 2), RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, neverHalt{}, drawRange(space, 0, 2), RunOptions{StopAfter: 7})
	if err != nil {
		t.Fatal(err)
	}
	for b := range got {
		expectSameResult(t, fmt.Sprintf("stop-after lane %d", b), want[b], got[b])
	}

	draws := drawRange(space, 10, 2)
	want, err = bt.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = sh.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range got {
		expectSameResult(t, fmt.Sprintf("after-abort lane %d", b), want[b], got[b])
	}
}

// TestShardedValidation pins the argument contract: it must match the
// batch's, error for error.
func TestShardedValidation(t *testing.T) {
	g := graph.Cycle(8)
	plan := MustPlan(g)
	in := mustInstance(t, g)
	foreign := mustInstance(t, graph.Cycle(8))
	space := localrand.NewTapeSpace(1)

	if _, err := plan.NewSharded(0, 2); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := plan.NewSharded(2, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := plan.NewSharded(2, g.N()+1); err == nil {
		t.Error("more shards than nodes accepted")
	}
	if _, err := plan.NewShardedPartition(2, graph.Partition{Bounds: []int32{0, 3}}); err == nil {
		t.Error("truncated partition accepted")
	}

	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Run(in, floodMin{t: 1}, drawRange(space, 0, 3), RunOptions{}); err == nil {
		t.Error("sharded run accepted more lanes than its width")
	}
	if _, err := sh.Run(foreign, floodMin{t: 1}, drawRange(space, 0, 1), RunOptions{}); err == nil {
		t.Error("sharded run accepted a foreign instance")
	}
	if _, err := sh.RunInstances([]*lang.Instance{in, in}, floodMin{t: 1}, drawRange(space, 0, 1), RunOptions{}); err == nil {
		t.Error("sharded run accepted mismatched draw/lane counts")
	}
}

// TestShardedBlockSplitting runs a lane vector wider than one slab block
// through a sharded executor and pins per-lane equivalence — the blocks
// must stitch in lane order exactly like the unsharded batch's.
func TestShardedBlockSplitting(t *testing.T) {
	g := graph.Cycle(4000) // 8000 slots: 2-word wire messages split 8 lanes
	in := mustInstance(t, g)
	plan := MustPlan(g)
	bt := plan.NewBatch(8)
	algo := wireMix{rounds: 2}
	if lanes := bt.msgLanesFor(algo); lanes >= 8 {
		t.Fatalf("fixture too small: block %d does not split 8 lanes", lanes)
	}
	sh, err := plan.NewSharded(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(97)
	draws := drawRange(space, 0, 8)
	want, err := bt.Run(in, algo, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, algo, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("blocked lane %d", b), want[b], got[b])
	}
}

// panicOnNode panics inside Start on one specific node — its shard dies
// before it ever sends, which is exactly the failure that used to leave
// the peer shard blocked in Recv forever when the installed links knew
// nothing of the abort latch.
type panicOnNode struct{ node int64 }

func (a panicOnNode) Name() string { return "panic-on-node" }
func (a panicOnNode) NewProcess() Process {
	return &panicProc{node: a.node}
}

type panicProc struct{ node int64 }

func (p *panicProc) Start(info NodeInfo) []Message {
	if info.ID == p.node {
		panic("node detonated")
	}
	return make([]Message, info.Degree)
}

func (p *panicProc) Step(round int, received []Message) ([]Message, bool) {
	return nil, true
}

func (p *panicProc) Output() []byte { return nil }

// dropSends swallows every Send, so the peer's Recv sees silence.
type dropSends struct{ inner ShardLink }

func (l dropSends) Send(round int, b CutBlock) error { return nil }
func (l dropSends) Recv(round int) (CutBlock, error) { return l.inner.Recv(round) }

// TestShardedLinkDeadline pins the deadline/cancel path of the built-in
// links: a peer that never sends cannot block the run forever. With a
// custom factory that wires neither the abort latch nor a working peer,
// the configured timeout converts the would-be deadlock into a clean
// ErrLinkTimeout abort.
func TestShardedLinkDeadline(t *testing.T) {
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sends are dropped on the floor, so every Recv faces a permanently
	// silent peer with no abort latch wired — only the deadline can end
	// the wait.
	sh.SetLinkFactory(func(from, to int, cut []int32) ShardLink {
		return dropSends{&chanLink{ch: make(chan CutBlock, 1), timeout: 50 * time.Millisecond}}
	})
	done := make(chan error, 1)
	go func() {
		_, err := sh.Run(in, wireMix{rounds: 3}, drawRange(localrand.NewTapeSpace(7), 0, 2), RunOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrLinkTimeout) {
			t.Fatalf("silent peer: err = %v, want ErrLinkTimeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sharded run hung on a silent peer despite the link deadline")
	}

	// The same Sharded recovers with default links afterwards.
	sh.SetLinkFactory(nil)
	draws := drawRange(localrand.NewTapeSpace(7), 4, 2)
	want, err := plan.NewBatch(2).Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("after-deadline lane %d", b), want[b], got[b])
	}
}

// TestShardedPanicWithUnwiredLinks pins the regression the deadline
// exists for: shard 1 panics before sending round 2, the custom links
// know nothing of the abort latch, and shard 0 sits in Recv. The
// deadline unblocks shard 0, the orchestrator gathers both reports, and
// the panic is re-raised — previously this hung forever.
func TestShardedPanicWithUnwiredLinks(t *testing.T) {
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	links := make(map[[2]int]ShardLink)
	sh.SetLinkFactory(func(from, to int, cut []int32) ShardLink {
		key := [2]int{from, to}
		if l, ok := links[key]; ok {
			return l
		}
		l := &chanLink{ch: make(chan CutBlock, 1), timeout: 50 * time.Millisecond}
		links[key] = l
		return l
	})
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		sh.RunInstances([]*lang.Instance{in}, panicOnNode{node: in.ID[7]}, nil, RunOptions{})
		done <- nil
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("expected the node panic to re-raise")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sharded run hung on a panicking peer despite the link deadline")
	}
}

// countingLink wraps the in-process link to prove the transport seam is
// real: a custom LinkFactory sees every round's blocks. The counter is
// atomic — links are driven from per-shard goroutines.
type countingLink struct {
	inner ShardLink
	sends *atomic.Int64
}

func (l *countingLink) Send(round int, b CutBlock) error {
	l.sends.Add(1)
	return l.inner.Send(round, b)
}
func (l *countingLink) Recv(round int) (CutBlock, error) { return l.inner.Recv(round) }

// TestShardedLinkFactory pins the ShardLink seam: a custom factory
// carries the whole exchange (results stay byte-identical) and observes
// one Send per link per round.
func TestShardedLinkFactory(t *testing.T) {
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewSharded(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sends atomic.Int64
	sh.SetLinkFactory(func(from, to int, cut []int32) ShardLink {
		if len(cut) == 0 {
			t.Errorf("link %d->%d built with an empty cut", from, to)
		}
		return &countingLink{inner: &chanLink{ch: make(chan CutBlock, 1)}, sends: &sends}
	})
	draws := drawRange(localrand.NewTapeSpace(99), 0, 2)
	want, err := plan.NewBatch(2).Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("custom link lane %d", b), want[b], got[b])
	}
	// Two directed cut pairs on a bisected cycle, one send each per round.
	rounds := want[0].Stats.Rounds
	if wantSends := int64(2 * rounds); sends.Load() != wantSends {
		t.Errorf("custom links saw %d sends, want %d (2 links × %d rounds)", sends.Load(), wantSends, rounds)
	}
}
