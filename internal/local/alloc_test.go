//go:build !race

package local

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// TestEngineReuseCutsAllocs enforces the PR's performance contract in
// CI. testing.AllocsPerRun pins GOMAXPROCS to 1, so both paths take the
// deterministic serial branch of parallelFor and the comparison is
// exact. Skipped under -race, whose instrumentation changes allocation
// counts.
//
// The contract is path-specific. The ball-view path — the Monte-Carlo
// trial hot path — must show ≥ 40% fewer allocs/op on a pooled engine,
// because ball extraction and view assembly amortize away. The
// message path's single-shot form is already slab-based after this
// refactor (no per-round receive allocation), so reuse only trims the
// per-run slab setup; there the pooled path must simply never allocate
// more than single-shot.
func TestEngineReuseCutsAllocs(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(3)

	// Ball-view path: ≥ 40% fewer allocs/op.
	trial := 0
	singleV := testing.AllocsPerRun(50, func() {
		draw := space.Draw(uint64(trial))
		RunView(in, tapeSumView{t: 2}, &draw)
		trial++
	})
	veng := plan.NewEngine()
	draw := space.Draw(0)
	veng.RunView(in, tapeSumView{t: 2}, &draw) // warm the view cache
	reuseV := testing.AllocsPerRun(50, func() {
		draw := space.Draw(uint64(trial))
		veng.RunView(in, tapeSumView{t: 2}, &draw)
		trial++
	})
	t.Logf("view allocs/op: single-shot %.1f, pooled %.1f", singleV, reuseV)
	if reuseV > 0.6*singleV {
		t.Errorf("pooled view path allocates %.1f/op vs %.1f/op single-shot; want ≥ 40%% fewer", reuseV, singleV)
	}

	// Message path: pooled must not allocate more than single-shot.
	run := func(eng *Engine, trial int) {
		d := space.Draw(uint64(trial))
		if _, err := eng.Run(in, tapeXOR{rounds: 4}, &d, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	single := testing.AllocsPerRun(50, func() {
		run(plan.NewEngine(), trial)
		trial++
	})
	eng := plan.NewEngine()
	run(eng, 0) // warm the slabs before measuring the steady state
	reuse := testing.AllocsPerRun(50, func() {
		run(eng, trial)
		trial++
	})
	t.Logf("message allocs/op: single-shot %.1f, pooled %.1f", single, reuse)
	if reuse > single {
		t.Errorf("pooled message path allocates %.1f/op vs %.1f/op single-shot", reuse, single)
	}
}
