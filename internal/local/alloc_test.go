//go:build !race

package local

import (
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// TestEngineReuseCutsAllocs enforces the PR's performance contract in
// CI. testing.AllocsPerRun pins GOMAXPROCS to 1, so both paths take the
// deterministic serial branch of parallelFor and the comparison is
// exact. Skipped under -race, whose instrumentation changes allocation
// counts.
//
// The contract is path-specific. The ball-view path — the Monte-Carlo
// trial hot path — must show ≥ 40% fewer allocs/op on a pooled engine,
// because ball extraction and view assembly amortize away. The
// message path's single-shot form is already slab-based after this
// refactor (no per-round receive allocation), so reuse only trims the
// per-run slab setup; there the pooled path must simply never allocate
// more than single-shot.
func TestEngineReuseCutsAllocs(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(3)

	// Ball-view path: ≥ 40% fewer allocs/op.
	trial := 0
	singleV := testing.AllocsPerRun(50, func() {
		draw := space.Draw(uint64(trial))
		RunView(in, tapeSumView{t: 2}, &draw)
		trial++
	})
	veng := plan.NewEngine()
	draw := space.Draw(0)
	veng.RunView(in, tapeSumView{t: 2}, &draw) // warm the view cache
	reuseV := testing.AllocsPerRun(50, func() {
		draw := space.Draw(uint64(trial))
		veng.RunView(in, tapeSumView{t: 2}, &draw)
		trial++
	})
	t.Logf("view allocs/op: single-shot %.1f, pooled %.1f", singleV, reuseV)
	if reuseV > 0.6*singleV {
		t.Errorf("pooled view path allocates %.1f/op vs %.1f/op single-shot; want ≥ 40%% fewer", reuseV, singleV)
	}

	// Message path: pooled must not allocate more than single-shot.
	run := func(eng *Engine, trial int) {
		d := space.Draw(uint64(trial))
		if _, err := eng.Run(in, tapeXOR{rounds: 4}, &d, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	single := testing.AllocsPerRun(50, func() {
		run(plan.NewEngine(), trial)
		trial++
	})
	eng := plan.NewEngine()
	run(eng, 0) // warm the slabs before measuring the steady state
	reuse := testing.AllocsPerRun(50, func() {
		run(eng, trial)
		trial++
	})
	t.Logf("message allocs/op: single-shot %.1f, pooled %.1f", single, reuse)
	if reuse > single {
		t.Errorf("pooled message path allocates %.1f/op vs %.1f/op single-shot", reuse, single)
	}

	// Batched paths: a lane must never allocate more than a pooled trial.
	// The batched view path shares one output slab per pass, so its
	// per-trial allocations sit strictly below the pooled path's; the
	// batched message path matches the pooled path lane for lane (one
	// Result and output column per lane) plus the vector bookkeeping,
	// amortized below one pooled trial across the width.
	const width = 8
	bt := plan.NewBatch(width)
	draws := make([]localrand.Draw, width)
	fill := func() {
		for i := range draws {
			draws[i] = space.Draw(uint64(trial))
			trial++
		}
	}
	fill()
	if _, err := bt.RunView(in, tapeSumView{t: 2}, draws); err != nil {
		t.Fatal(err) // warm the view cache
	}
	batchedV := testing.AllocsPerRun(20, func() {
		fill()
		if _, err := bt.RunView(in, tapeSumView{t: 2}, draws); err != nil {
			t.Fatal(err)
		}
	}) / width
	t.Logf("batched view allocs per trial: %.2f (pooled %.1f)", batchedV, reuseV)
	if batchedV > reuseV {
		t.Errorf("batched view path allocates %.2f per trial vs %.1f pooled", batchedV, reuseV)
	}

	runBatch := func() {
		fill()
		if _, err := bt.Run(in, tapeXOR{rounds: 4}, draws, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	runBatch() // warm the slabs
	batchedM := testing.AllocsPerRun(20, runBatch) / width
	t.Logf("batched message allocs per trial: %.2f (pooled %.1f)", batchedM, reuse)
	if batchedM > reuse {
		t.Errorf("batched message path allocates %.2f per trial vs %.1f pooled", batchedM, reuse)
	}
}

// staticOutMix is wireMix with an allocation-free Output: verdata comes
// from a fixed table of immutable rows instead of a fresh encoding per
// call. This mirrors how the real algorithms hit the zero-alloc floor —
// construct's processes return lang.Encode* table entries — so the
// floors below measure the round kernel, not the fixture's encoder.
type staticOutMix struct{ rounds int }

func (a staticOutMix) Name() string        { return fmt.Sprintf("static-out-mix(%d)", a.rounds) }
func (a staticOutMix) MsgWords(d int) int  { return wireMix{}.MsgWords(d) }
func (a staticOutMix) NewProcess() Process { return NewLegacyProcess(a) }
func (a staticOutMix) NewWireProcess() WireProcess {
	return &staticOutProc{wireMixProc{rounds: a.rounds}}
}

type staticOutProc struct{ wireMixProc }

var staticOutTable = func() [][]byte {
	t := make([][]byte, 16)
	for i := range t {
		t[i] = []byte{byte(i)}
	}
	return t
}()

func (p *staticOutProc) Output() []byte { return staticOutTable[p.state&15] }

// TestSteadyStateAllocFloors pins the absolute allocation contract of
// the round kernel, not just the relative gates above. A warm batch
// running one ResetProcess wire algorithm back to back allocates
// NOTHING per run: outputs land in the double-buffered arena, processes
// reset in place, tapes reseed in place, and the round loop itself has
// been allocation-free since the wire core landed. A warm pooled Engine
// allocates exactly its two caller-owned slices — the Result vector and
// the output table — which are the price of the Engine contract that
// callers may retain results forever (TestFaultDeterminismAcrossShapes
// relies on it). The fixture's Output must itself be allocation-free
// (immutable table rows, like construct's lang.Encode* outputs), hence
// staticOutMix rather than wireMix. Skipped under -race, whose
// instrumentation changes allocation counts.
func TestSteadyStateAllocFloors(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(13)
	trial := 0

	const width = 8
	bt := plan.NewBatch(width)
	draws := make([]localrand.Draw, width)
	runBatch := func() {
		for i := range draws {
			draws[i] = space.Draw(uint64(trial))
			trial++
		}
		if _, err := bt.Run(in, staticOutMix{rounds: 6}, draws, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	runBatch()
	runBatch() // warm both arena buffers and the pooled process table
	if got := testing.AllocsPerRun(50, runBatch); got != 0 {
		t.Errorf("warm batched message run allocates %.1f/op; want exactly 0", got)
	}

	eng := plan.NewEngine()
	runEng := func() {
		d := space.Draw(uint64(trial))
		trial++
		if _, err := eng.Run(in, staticOutMix{rounds: 6}, &d, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	runEng()
	runEng()
	if got := testing.AllocsPerRun(50, runEng); got > 2 {
		t.Errorf("warm pooled engine run allocates %.1f/op; want ≤ 2 (the caller-owned Result and output table)", got)
	}
}

// staticVecMix is vecMix with allocation-free outputs on both paths —
// the vector-path analogue of staticOutMix, so the floor below measures
// the vec round kernel rather than the fixture's encoder.
type staticVecMix struct{ vecMix }

func (a staticVecMix) Name() string        { return fmt.Sprintf("static-vec-mix(%d)", a.rounds) }
func (a staticVecMix) NewProcess() Process { return NewLegacyProcess(a) }
func (a staticVecMix) NewWireProcess() WireProcess {
	return &staticVecMixProc{vecMixProc{rounds: a.rounds}}
}
func (a staticVecMix) NewVecProcess() VecProcess {
	return &staticVecMixVec{vecMixVec{rounds: a.rounds}}
}

type staticVecMixProc struct{ vecMixProc }

func (p *staticVecMixProc) Output() []byte { return staticOutTable[p.state&15] }

type staticVecMixVec struct{ vecMixVec }

func (p *staticVecMixVec) OutputVec(b int) []byte { return staticOutTable[p.state[b]&15] }

// TestVecAllocFloors pins the absolute allocation contract of the
// lane-vectorized round kernel, exactly as TestSteadyStateAllocFloors
// does for the scalar one: a warm batch stepping a ResetVecProcess
// algorithm back to back allocates NOTHING per run — the per-node SoA
// process table resets in place, the row staging writes straight into
// the reused slabs, and outputs land in the double-buffered arena. The
// fault-armed shape must hold the same floor: the lane mask and
// pre-step done snapshot are per-worker scratch, not per-run
// allocations. Skipped under -race, whose instrumentation changes
// allocation counts.
func TestVecAllocFloors(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(29)
	trial := 0

	const width = 8
	shapes := []struct {
		name string
		fp   *FaultPlan
	}{
		{"fault-free", nil},
		{"faulty", &FaultPlan{Seed: 31, Drop: 0.1, CrashP: 0.05, CrashFrom: 2}},
	}
	for _, shape := range shapes {
		bt := plan.NewBatch(width)
		draws := make([]localrand.Draw, width)
		runBatch := func() {
			for i := range draws {
				draws[i] = space.Draw(uint64(trial))
				trial++
			}
			if _, err := bt.Run(in, staticVecMix{vecMix{rounds: 6}}, draws, RunOptions{Fault: shape.fp}); err != nil {
				t.Fatal(err)
			}
		}
		runBatch()
		runBatch() // warm both arena buffers and the pooled process table
		if bt.vecAlgo == nil {
			t.Fatal("vector path not armed for the alloc floor")
		}
		if got := testing.AllocsPerRun(50, runBatch); got != 0 {
			t.Errorf("%s: warm vectorized batched run allocates %.1f/op; want exactly 0", shape.name, got)
		}
	}
}

// stripReset wraps a wire algorithm so its processes lose the
// ResetProcess extension: the pooling gate's control group.
type stripReset struct{ inner WireAlgorithm }

func (a stripReset) Name() string        { return a.inner.Name() }
func (a stripReset) MsgWords(d int) int  { return a.inner.MsgWords(d) }
func (a stripReset) NewProcess() Process { return NewLegacyProcess(a) }
func (a stripReset) NewWireProcess() WireProcess {
	return plainProc{a.inner.NewWireProcess()}
}

// plainProc hides the concrete process behind the bare WireProcess
// method set, so the ResetProcess type assertion fails.
type plainProc struct{ WireProcess }

// TestProcessPoolingCutsAllocs enforces the ResetProcess contract: on an
// algorithm whose processes implement it, back-to-back runs of one batch
// reset and reuse the per-(node, lane) process table, so the per-trial
// allocation count must drop measurably against the identical algorithm
// with the extension stripped — at byte-identical outputs and Stats.
// Skipped under -race, whose instrumentation changes allocation counts.
func TestProcessPoolingCutsAllocs(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(11)
	const width = 4
	algo := wireMix{rounds: 4}

	// Equivalence first: pooled reuse must not change a byte.
	pooledBt := plan.NewBatch(width)
	plainBt := plan.NewBatch(width)
	for rep := 0; rep < 3; rep++ {
		draws := drawRange(space, rep*width, width)
		pooled, err := pooledBt.Run(in, algo, draws, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := plainBt.Run(in, stripReset{inner: algo}, draws, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for b := range draws {
			expectSameResult(t, fmt.Sprintf("rep %d lane %d pooled vs plain", rep, b), plain[b], pooled[b])
		}
	}

	trial := 0
	measure := func(bt *Batch, a MessageAlgorithm) float64 {
		draws := make([]localrand.Draw, width)
		run := func() {
			for i := range draws {
				draws[i] = space.Draw(uint64(1000 + trial))
				trial++
			}
			if _, err := bt.Run(in, a, draws, RunOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm slabs and the process table
		return testing.AllocsPerRun(20, run) / width
	}
	pooledAllocs := measure(pooledBt, algo)
	plainAllocs := measure(plainBt, stripReset{inner: algo})
	t.Logf("message allocs per trial: pooled %.1f, unpooled %.1f", pooledAllocs, plainAllocs)
	if pooledAllocs > 0.75*plainAllocs {
		t.Errorf("process pooling allocates %.1f per trial vs %.1f unpooled; want ≥ 25%% fewer", pooledAllocs, plainAllocs)
	}
}

// TestWireMessageZeroAllocsPerRound enforces the wire-format acceptance
// contract: the message round loop on the wire core allocates nothing
// per round. Per-run costs are unavoidable (process table, result
// slices), so the gate compares trials whose only difference is the
// round count — 4 versus 36 rounds — on a reusable engine and batch: if
// any allocation happened per round, the longer trial would show 32
// rounds' worth more. Skipped under -race, whose instrumentation changes
// allocation counts.
func TestWireMessageZeroAllocsPerRound(t *testing.T) {
	in := mustInstance(t, graph.Cycle(256))
	plan, err := NewPlan(in.G)
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(7)
	plans := []struct {
		name  string
		trial func(rounds, trial int)
	}{
		{"pooled", func() func(rounds, trial int) {
			eng := plan.NewEngine()
			return func(rounds, trial int) {
				d := space.Draw(uint64(trial))
				if _, err := eng.Run(in, wireMix{rounds: rounds}, &d, RunOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}()},
		{"batched", func() func(rounds, trial int) {
			bt := plan.NewBatch(8)
			draws := make([]localrand.Draw, 8)
			return func(rounds, trial int) {
				for i := range draws {
					draws[i] = space.Draw(uint64(trial*8 + i))
				}
				if _, err := bt.Run(in, wireMix{rounds: rounds}, draws, RunOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}()},
	}
	for _, p := range plans {
		trial := 0
		p.trial(36, trial) // warm slabs at the larger layout
		measure := func(rounds int) float64 {
			return testing.AllocsPerRun(30, func() {
				p.trial(rounds, trial)
				trial++
			})
		}
		short := measure(4)
		long := measure(36)
		t.Logf("%s wire message allocs/op: %.1f at 4 rounds, %.1f at 36 rounds", p.name, short, long)
		if long != short {
			t.Errorf("%s wire message path allocates per round: %.1f allocs/op at 4 rounds vs %.1f at 36 (want equal)",
				p.name, short, long)
		}
	}
}
