package local

import (
	"errors"
	"runtime"
	"sync"

	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// Message is an arbitrary payload exchanged in one round on the legacy
// boxed transport. The LOCAL model places no bound on message size
// (§2.1.1), so payloads are free-form; algorithms define their own
// message types.
//
// Message and Process are the compatibility surface of the message
// engine, not its core: every execution runs on the wire-format round
// loop (WireProcess, wire.go), which reads and writes messages as
// fixed-width 64-bit words placed directly in the engine's send slabs.
// A legacy Process runs through a boxing shim that carries its payloads
// by reference over that same loop — semantics and Stats are identical,
// but each boxed payload costs an allocation the wire path does not pay.
// Algorithms on hot Monte-Carlo paths should implement WireAlgorithm.
type Message any

// NodeInfo is the static information a node holds when an execution
// starts: its identity, degree, input, and (for Monte-Carlo algorithms)
// its private random tape.
type NodeInfo struct {
	ID     int64
	Degree int
	Input  []byte
	// Tape is nil in deterministic executions.
	Tape *localrand.Tape
}

// Process is the legacy per-node state machine of a message-passing
// algorithm: messages are staged as []Message slices of interface-boxed
// payloads. The engine creates one Process per node; a Process must not
// share mutable state with other Processes (they run concurrently).
//
// Implementations of Process execute through the boxing shim over the
// wire core (see wire.go): correct, byte-identical to the old boxed
// engine, but paying one allocation per boxed payload per round. New
// algorithms — and any algorithm inside a trial loop — should implement
// WireProcess/WireAlgorithm instead and encode their messages as
// fixed-width words; a WireAlgorithm still satisfies this interface via
// NewLegacyProcess for callers that need the boxed form.
type Process interface {
	// Start receives the node's static information and returns the
	// messages to send in round 1, indexed by port (nil entries send
	// nothing; a nil or short slice is padded).
	Start(info NodeInfo) []Message
	// Step receives the messages that arrived in round r (indexed by the
	// receiving node's ports, nil = no message) and returns the messages
	// for round r+1. Returning done = true fixes the node's output; the
	// node sends nothing afterwards but neighbors may keep running.
	//
	// The received slice is engine-owned scratch, valid only for the
	// duration of the call: implementations must copy any values they
	// want to keep (message payloads themselves are never reused).
	// Likewise the returned slice is copied by the engine before the next
	// round, so implementations may reuse their own send buffer.
	Step(round int, received []Message) (send []Message, done bool)
	// Output returns the node's final output string. It is called once
	// the execution finishes and must be valid as soon as done was
	// returned (or when the engine's round budget is exhausted for
	// fixed-round algorithms).
	Output() []byte
}

// MessageAlgorithm creates the per-node processes of a distributed
// algorithm in which "all nodes perform the same instructions" (§2.1.1):
// one factory, one Process per node.
type MessageAlgorithm interface {
	Name() string
	NewProcess() Process
}

// Stats records the observable cost of an execution.
type Stats struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the number of (non-nil) messages delivered.
	Messages int64
}

// Result is the outcome of a message-passing execution.
type Result struct {
	Y     [][]byte
	Stats Stats
}

// ErrNoHalt reports an execution that exceeded its round budget.
var ErrNoHalt = errors.New("local: algorithm did not halt within the round budget")

// RunOptions tunes an execution.
type RunOptions struct {
	// MaxRounds caps the number of rounds; 0 selects 2n+64, a generous
	// bound for the algorithms in this repository.
	MaxRounds int
	// StopAfter, when positive, ends the execution after exactly that
	// many communication rounds whether or not all nodes reported done
	// (the completion time of a LOCAL algorithm is deterministic,
	// §2.1.2). Fixed-round algorithms must have valid outputs then.
	StopAfter int
	// Fault, when non-nil and enabled, injects the plan's faults —
	// message drop/delay, node crashes, topology surgery — into the run
	// (see fault.go). It overrides any executor default installed with
	// SetFault; nil falls back to that default, and a nil-or-zero
	// effective plan runs the unperturbed fast path. Every execution
	// shape honors the same plan byte-identically at equal fault seeds.
	Fault *FaultPlan
}

// RunMessage executes a message-passing algorithm on an instance. A nil
// draw yields a deterministic execution; otherwise each node's tape is
// drawn from σ by identity.
//
// RunMessage is the single-shot convenience wrapper over the Plan/Engine
// layer: it builds the instance's execution plan (the CSR flattening and
// reverse-port table are cached on the graph, so repeat runs share them)
// and a transient Engine. Callers measuring many executions on one graph
// — Monte-Carlo trial loops above all — should hold a Plan and give each
// worker its own Engine; see Plan and Engine in plan.go.
func RunMessage(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	plan, err := NewPlan(in.G)
	if err != nil {
		return nil, err
	}
	return plan.Run(in, algo, draw, opts)
}

// runCore runs a message algorithm with an explicit per-node tape source
// on a transient engine; the ball-simulation adapter uses it to thread
// view tapes through.
func runCore(in *lang.Instance, algo MessageAlgorithm, tapeOf func(v int) *localrand.Tape, opts RunOptions) (*Result, error) {
	plan, err := NewPlan(in.G)
	if err != nil {
		return nil, err
	}
	return plan.NewEngine().runWithTapes(in, algo, tapeOf, opts)
}

// ParallelFor runs fn(i) for i in [0, n) on a pool of GOMAXPROCS workers.
// fn must touch disjoint state per index; under that contract the result
// is deterministic regardless of scheduling. Exported for the decider and
// experiment packages, which share the same per-node parallelism pattern.
func ParallelFor(n int, fn func(i int)) { parallelFor(n, fn) }

// parallelFor runs fn(i) for i in [0, n) on a pool of GOMAXPROCS workers,
// in contiguous chunks. Callers guarantee fn touches disjoint state per
// index, so the iteration is deterministic regardless of scheduling. A
// panic inside fn is captured and re-raised on the calling goroutine, so
// algorithm contract violations surface as ordinary recoverable panics.
func parallelFor(n int, fn func(i int)) {
	parallelChunks(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// maxWorkers bounds the worker index parallelChunks can hand out for n
// indices; callers size worker-indexed scratch from it.
func maxWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks partitions [0, n) into contiguous chunks and runs
// body(w, lo, hi) for each on its own goroutine (inline when one worker
// suffices). w < maxWorkers(n) always holds, so bodies may accumulate
// into worker-indexed scratch without atomics — the batched round loop
// counts delivered messages and halting transitions this way. Panics are
// captured and re-raised on the calling goroutine.
func parallelChunks(n int, body func(w, lo, hi int)) {
	workers := maxWorkers(n)
	if workers <= 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
