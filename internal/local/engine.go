package local

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// Message is an arbitrary payload exchanged in one round. The LOCAL model
// places no bound on message size (§2.1.1), so payloads are free-form;
// algorithms define their own message types.
type Message any

// NodeInfo is the static information a node holds when an execution
// starts: its identity, degree, input, and (for Monte-Carlo algorithms)
// its private random tape.
type NodeInfo struct {
	ID     int64
	Degree int
	Input  []byte
	// Tape is nil in deterministic executions.
	Tape *localrand.Tape
}

// Process is the per-node state machine of a message-passing algorithm.
// The engine creates one Process per node; a Process must not share
// mutable state with other Processes (they run concurrently).
type Process interface {
	// Start receives the node's static information and returns the
	// messages to send in round 1, indexed by port (nil entries send
	// nothing; a nil or short slice is padded).
	Start(info NodeInfo) []Message
	// Step receives the messages that arrived in round r (indexed by the
	// receiving node's ports, nil = no message) and returns the messages
	// for round r+1. Returning done = true fixes the node's output; the
	// node sends nothing afterwards but neighbors may keep running.
	Step(round int, received []Message) (send []Message, done bool)
	// Output returns the node's final output string. It is called once
	// the execution finishes and must be valid as soon as done was
	// returned (or when the engine's round budget is exhausted for
	// fixed-round algorithms).
	Output() []byte
}

// MessageAlgorithm creates the per-node processes of a distributed
// algorithm in which "all nodes perform the same instructions" (§2.1.1):
// one factory, one Process per node.
type MessageAlgorithm interface {
	Name() string
	NewProcess() Process
}

// Stats records the observable cost of an execution.
type Stats struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the number of (non-nil) messages delivered.
	Messages int64
}

// Result is the outcome of a message-passing execution.
type Result struct {
	Y     [][]byte
	Stats Stats
}

// ErrNoHalt reports an execution that exceeded its round budget.
var ErrNoHalt = errors.New("local: algorithm did not halt within the round budget")

// RunOptions tunes an execution.
type RunOptions struct {
	// MaxRounds caps the number of rounds; 0 selects 2n+64, a generous
	// bound for the algorithms in this repository.
	MaxRounds int
	// StopAfter, when positive, ends the execution after exactly that
	// many communication rounds whether or not all nodes reported done
	// (the completion time of a LOCAL algorithm is deterministic,
	// §2.1.2). Fixed-round algorithms must have valid outputs then.
	StopAfter int
}

// RunMessage executes a message-passing algorithm on an instance. A nil
// draw yields a deterministic execution; otherwise each node's tape is
// drawn from σ by identity.
func RunMessage(in *lang.Instance, algo MessageAlgorithm, draw *localrand.Draw, opts RunOptions) (*Result, error) {
	var tapeOf func(v int) *localrand.Tape
	if draw != nil {
		d := *draw
		tapeOf = func(v int) *localrand.Tape { return d.Tape(in.ID[v]) }
	}
	return runCore(in, algo, tapeOf, opts)
}

// runCore is the engine proper; tapeOf supplies each node's private tape
// (nil for deterministic executions) addressed by node index.
func runCore(in *lang.Instance, algo MessageAlgorithm, tapeOf func(v int) *localrand.Tape, opts RunOptions) (*Result, error) {
	n := in.G.N()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 64
	}
	if opts.StopAfter > 0 {
		maxRounds = opts.StopAfter
	}

	// inPort[v][p] is the port at which the neighbor across v's port p
	// receives messages from v.
	inPort := make([][]int, n)
	for v := 0; v < n; v++ {
		inPort[v] = make([]int, in.G.Degree(v))
		for p, w := range in.G.Neighbors(v) {
			u := int(w)
			q := -1
			for pp, x := range in.G.Neighbors(u) {
				if int(x) == v {
					q = pp
					break
				}
			}
			if q == -1 {
				return nil, fmt.Errorf("local: asymmetric adjacency at edge {%d,%d}", v, u)
			}
			inPort[v][p] = q
		}
	}

	procs := make([]Process, n)
	sends := make([][]Message, n)
	done := make([]bool, n)
	var messages atomic.Int64

	parallelFor(n, func(v int) {
		procs[v] = algo.NewProcess()
		info := NodeInfo{
			ID:     in.ID[v],
			Degree: in.G.Degree(v),
			Input:  in.X[v],
		}
		if tapeOf != nil {
			info.Tape = tapeOf(v)
		}
		sends[v] = padMessages(procs[v].Start(info), info.Degree)
	})

	rounds := 0
	for round := 1; opts.StopAfter == 0 || round <= opts.StopAfter; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("%w: %d rounds on %d nodes", ErrNoHalt, maxRounds, n)
		}
		// Deliver: recv[v][p] is the message arriving at v's port p.
		recv := make([][]Message, n)
		parallelFor(n, func(v int) {
			deg := in.G.Degree(v)
			rv := make([]Message, deg)
			for p, w := range in.G.Neighbors(v) {
				u := int(w)
				// v's port p connects to u's port inPort[v][p]; u's
				// outgoing message on that port lands here.
				if m := sends[u][inPort[v][p]]; m != nil {
					rv[p] = m
					messages.Add(1)
				}
			}
			recv[v] = rv
		})
		rounds = round

		allDone := true
		parallelFor(n, func(v int) {
			if done[v] {
				sends[v] = padMessages(nil, in.G.Degree(v))
				return
			}
			out, fin := procs[v].Step(round, recv[v])
			sends[v] = padMessages(out, in.G.Degree(v))
			done[v] = fin
		})
		for v := 0; v < n; v++ {
			if !done[v] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}

	y := make([][]byte, n)
	parallelFor(n, func(v int) { y[v] = procs[v].Output() })
	return &Result{Y: y, Stats: Stats{Rounds: rounds, Messages: messages.Load()}}, nil
}

// padMessages normalizes a send slice to exactly deg entries.
func padMessages(ms []Message, deg int) []Message {
	if len(ms) == deg {
		return ms
	}
	out := make([]Message, deg)
	copy(out, ms)
	return out
}

// ParallelFor runs fn(i) for i in [0, n) on a pool of GOMAXPROCS workers.
// fn must touch disjoint state per index; under that contract the result
// is deterministic regardless of scheduling. Exported for the decider and
// experiment packages, which share the same per-node parallelism pattern.
func ParallelFor(n int, fn func(i int)) { parallelFor(n, fn) }

// parallelFor runs fn(i) for i in [0, n) on a pool of GOMAXPROCS workers,
// in contiguous chunks. Callers guarantee fn touches disjoint state per
// index, so the iteration is deterministic regardless of scheduling. A
// panic inside fn is captured and re-raised on the calling goroutine, so
// algorithm contract violations surface as ordinary recoverable panics.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
