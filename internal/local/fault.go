package local

import (
	"math"

	"rlnc/internal/graph"
	"rlnc/internal/localrand"
)

// This file is the engine's fault seam: FaultPlan describes lossy links
// (per-delivery drop and one-round delay), node crash/recovery schedules,
// and mid-run topology surgery, and the round core applies the plan as a
// receiver-side pass over the wire slabs — the fixed-width [slot][lane]
// send state of batch.go — rather than as a separate transport. Every
// execution shape honors the same plan byte-identically: the unsharded
// Batch (and Engine, its width-1 case), the in-process Sharded, and the
// shard-worker processes, which receive the plan inside runSpec
// (remote.go) and rebuild identical fault state from it.
//
// Determinism is positional. All fault decisions come from a dedicated
// localrand.FaultTape — a pure function of event coordinates, never a
// consumed stream — keyed by shape-invariant quantities only: the round,
// the receiver's GLOBAL directed slot (Topology.Slots is global even on a
// shard's compacted window), and the lane's fault identity (its draw
// seed, which survives the process boundary as runSpec.Draws). Batch
// width, shard count, worker count, and iteration order therefore cannot
// perturb a faulty run, which is what lets the shardtest differential pin
// faulty sharded runs lane-byte-identical to faulty unsharded ones.
//
// A nil (or all-zero) plan is provably free: runVec disarms the fault
// state and roundPass dispatches to the exact pre-fault loop.

// FaultPlan describes the faults injected into an execution. The zero
// value injects nothing and runs the engine's unperturbed fast path; a
// plan is armed per run, either through RunOptions.Fault or as an
// executor default (Batch.SetFault / Sharded.SetFault), with the run
// option taking precedence.
type FaultPlan struct {
	// Seed identifies the fault tape. Equal seeds reproduce equal faults
	// on every execution shape; distinct seeds give independent fault
	// patterns. The fault tape is independent of the algorithms' tape
	// spaces, so arming a plan never perturbs Rand(A) draws.
	Seed uint64
	// Drop is the per-delivery loss probability of a lossy link: each
	// (round, receiver port, lane) delivery is lost independently with
	// this probability, decided on the receiver side before the message
	// is counted or read.
	Drop float64
	// Delay is the probability that a surviving delivery is held one
	// round: the message is removed from the current round and delivered
	// in the next — unless a fresh message occupies the same port then,
	// in which case the stale held message is discarded (fresh wins).
	Delay float64
	// CrashP selects each (node, lane) pair for crashing independently
	// with this probability. A selected node runs normally until
	// CrashFrom, then goes down: it neither reads nor counts deliveries,
	// stages no sends, and does not step.
	CrashP float64
	// CrashFrom is the first round a selected node is down (values < 1
	// mean round 1). Messages the node staged before crashing still
	// deliver — crashes take effect at round boundaries.
	CrashFrom int
	// CrashUntil, when positive, is the recovery round: a crashed node
	// resumes stepping at this round with its pre-crash state frozen in
	// place. Zero means crashed nodes never return; they are finalized
	// with their frozen output so the halting consensus can complete.
	CrashUntil int
	// Surgery lists mid-run topology edits: from EdgeCut.Round onward the
	// edge {U, Z} carries no messages in either direction. CutForSubdivision
	// derives entries that model graph.SubdivideTwice on the live run.
	Surgery []EdgeCut
}

// EdgeCut severs one edge of the running topology from a given round on:
// both directed slots of {U, Z} deliver nothing at rounds >= Round. It is
// the engine-side shadow of an offline graph surgery — the structural
// edit itself (fresh relay nodes, rebuilt CSR) happens on a new graph,
// while the running plan sees the direct edge go dark.
type EdgeCut struct {
	Round int
	U, Z  int
}

// Enabled reports whether the plan injects anything; nil and zero plans
// run the engine's unperturbed fast path.
func (f *FaultPlan) Enabled() bool {
	return f != nil && (f.Drop > 0 || f.Delay > 0 || f.CrashP > 0 || len(f.Surgery) > 0)
}

// CutForSubdivision applies graph.SubdivideTwice to the edge {u, z} and
// returns both halves of the surgery: the EdgeCut that models the edit on
// the running topology (from `round` on, the direct edge carries nothing
// — traffic now traverses the two fresh degree-2 relays, which the
// original node set cannot reach within the old round horizon), and the
// SubdivisionResult carrying the post-surgery graph for offline analysis
// or a follow-up run. It errors when {u, z} is not an edge.
func CutForSubdivision(g *graph.Graph, round, u, z int) (EdgeCut, *graph.SubdivisionResult, error) {
	res, err := g.SubdivideTwice(u, z)
	if err != nil {
		return EdgeCut{}, nil, err
	}
	return EdgeCut{Round: round, U: u, Z: z}, res, nil
}

// Fault-tape channels: each fault kind draws from its own coordinate
// namespace so drop, delay, and crash decisions are independent.
const (
	faultDrop uint64 = iota + 1
	faultDelay
	faultCrash
)

// neverSevered marks a slot no surgery touches.
const neverSevered = int32(math.MaxInt32)

// severedTable flattens a surgery schedule into a per-GLOBAL-slot
// first-dead round: entry s is the earliest round from which the directed
// slot s delivers nothing (neverSevered otherwise). Both directions of
// each cut edge are severed. Keying by receiver-global slot makes the
// table identical on every shard and worker, because Topology.Slots
// returns global coordinates even on compacted windows.
func severedTable(topo *graph.Topology, cuts []EdgeCut, prev []int32) []int32 {
	t := sliceFor(prev, topo.NumSlots())
	for i := range t {
		t[i] = neverSevered
	}
	for _, c := range cuts {
		round := c.Round
		if round < 1 {
			round = 1
		}
		sever := func(u, z int) {
			// Kill z's reception from u: z's own directed slot toward u.
			lo, hi := topo.Slots(z)
			for s := lo; s < hi; s++ {
				if int(topo.Nbrs[s]) == u && int32(round) < t[s] {
					t[s] = int32(round)
				}
			}
		}
		sever(c.U, c.Z)
		sever(c.Z, c.U)
	}
	return t
}

// SetFault installs the batch's default fault plan: the effective plan of
// a run is RunOptions.Fault when non-nil, this default otherwise. Passing
// nil (or a zero plan) restores the fault-free fast path. Trial harnesses
// that cannot thread RunOptions through an algorithm's own entry points
// (construct.RetryColoring builds its own options) arm faults here.
func (bt *Batch) SetFault(f *FaultPlan) { bt.defFault = f }

// SetFault installs the sharded executor's default fault plan, mirroring
// Batch.SetFault; the Unsharded companion batch inherits it.
func (s *Sharded) SetFault(f *FaultPlan) {
	s.defFault = f
	if s.full != nil {
		s.full.SetFault(f)
	}
}

// SetFault installs the engine's default fault plan (Batch.SetFault of
// its one-lane core).
func (e *Engine) SetFault(f *FaultPlan) { e.bt.SetFault(f) }

// effectiveFault resolves the plan one run obeys.
func (bt *Batch) effectiveFault(opts RunOptions) *FaultPlan {
	if opts.Fault != nil {
		return opts.Fault
	}
	return bt.defFault
}

// effectiveFault resolves the plan one sharded run obeys.
func (s *Sharded) effectiveFault(opts RunOptions) *FaultPlan {
	if opts.Fault != nil {
		return opts.Fault
	}
	return s.defFault
}

// installFault arms (or disarms) the batch's per-run fault state, taking
// lane identities from the run's draws: lane b's fault identity is
// draws[b].Seed(), the same word runSpec ships to shard workers, and 0
// for deterministic lanes. Called once per execution vector, before the
// slabs are sized; a disabled plan leaves roundPass on the exact
// pre-fault path.
func (bt *Batch) installFault(f *FaultPlan, draws []localrand.Draw, k int) {
	if !f.Enabled() {
		bt.fault = nil
		return
	}
	bt.flane = sliceFor(bt.flane, k)
	for b := 0; b < k; b++ {
		if draws != nil {
			bt.flane[b] = draws[b].Seed()
		} else {
			bt.flane[b] = 0
		}
	}
	bt.armFault(f)
}

// installFaultSeeds is installFault from shipped draw seeds — the worker
// side of the process boundary, where draws exist only as runSpec words.
func (bt *Batch) installFaultSeeds(f *FaultPlan, seeds []uint64, k int) {
	if !f.Enabled() {
		bt.fault = nil
		return
	}
	bt.flane = sliceFor(bt.flane, k)
	for b := 0; b < k; b++ {
		if seeds != nil {
			bt.flane[b] = seeds[b]
		} else {
			bt.flane[b] = 0
		}
	}
	bt.armFault(f)
}

// armFault finalizes an enabled plan's run state: the fault tape and the
// severed-slot table (surgery only).
func (bt *Batch) armFault(f *FaultPlan) {
	bt.fault = f
	bt.ftape = localrand.NewFaultTape(f.Seed)
	if len(f.Surgery) > 0 {
		bt.fsev = severedTable(bt.plan.topo, f.Surgery, bt.fsev)
	} else {
		bt.fsev = nil
	}
}

// ensureHeldSlabs sizes the one-round retention slabs a Delay plan needs,
// mirroring the main slabs' [slot][lane] layout; cleared on every run so
// a previous run's holds cannot leak into this one. Plans without Delay
// never allocate them.
func (bt *Batch) ensureHeldSlabs(slots, B int) {
	if bt.fault == nil || bt.fault.Delay <= 0 {
		return
	}
	bt.heldLens = sliceFor(bt.heldLens, slots*B)
	clear(bt.heldLens)
	bt.heldWords = sliceFor(bt.heldWords, bt.totalW*B)
	if bt.useRefs {
		bt.heldRefs = sliceFor(bt.heldRefs, slots*B)
		clear(bt.heldRefs)
	} else {
		bt.heldRefs = nil
	}
}

// faultPass is roundPass under an armed fault plan: the identical fused
// deliver + step walk, with the plan applied on the receiver side before
// anything is counted or read. Per (node, lane), a crashed pair skips
// reading (and counting) entirely; otherwise each arriving port first
// resolves last round's held message (delivered now unless a fresh
// message occupies the port — fresh wins), then the surgery table, then
// the drop and delay draws. Suppression happens strictly before the
// delivered count, so Stats stay shape-identical. All slab writes — a
// receiver zeroing curLens at its sender's slot included — touch slots
// this worker is the unique reader of, so the pass stays data-race-free
// under the same contract as roundPass.
//
// Like roundPass, the walk is slot-major: per node, the crash draws
// resolve once per lane, then one pass over the RevSlot window applies
// the suppression chain to each slot's contiguous [s*B, s*B+k) lane
// range, then the outgoing slots clear contiguously, then the lanes
// step. Every fault decision is a pure positional function of
// (channel, round, global slot, lane identity), so the iteration-order
// change cannot perturb a single draw — outputs are byte-identical to
// the lane-major walk. Down and dead lanes skip the suppression chain
// entirely (held-slab state included), exactly as they skipped the
// whole per-lane walk before.
func (bt *Batch) faultPass(w, vlo, vhi int) {
	topo := bt.plan.topo
	k, B, round := bt.rk, bt.block, bt.rround
	f, ftape, fids, sev := bt.fault, bt.ftape, bt.flane, bt.fsev
	var heldLens []int32
	var heldWords []uint64
	var heldRefs []Message
	if f.Delay > 0 {
		heldLens, heldWords, heldRefs = bt.heldLens, bt.heldWords, bt.heldRefs
	}
	crashFrom := f.CrashFrom
	if crashFrom < 1 {
		crashFrom = 1
	}
	crashNow := f.CrashP > 0 && round >= crashFrom &&
		(f.CrashUntil == 0 || round < f.CrashUntil)
	msgRow := bt.wkMsgs[w][:k]
	finRow := bt.wkFin[w][:k]
	clear(msgRow)
	clear(finRow)
	in, out := &bt.inboxes[w], &bt.outboxes[w]
	bt.bindInbox(in, bt.curLens, bt.curWords, bt.curRefs)
	bt.bindOutbox(out, bt.nextLens, bt.nextWord, bt.nextRefs)
	// The stage counters land in the worker's row but are never merged:
	// fault accounting is receiver-side (suppression makes staged ≠
	// delivered), and the row is re-zeroed at the next run's init.
	out.stage = bt.wkStage[w]
	curLens, nextLens, nextRefs := bt.curLens, bt.nextLens, bt.nextRefs
	curWords, curRefs := bt.curWords, bt.curRefs
	alive, done, procs := bt.alive, bt.done, bt.procs
	base := bt.slotBase
	offW, capW := bt.offW, bt.capW
	del := bt.wkDel[w][:k]
	down := bt.wkDown[w][:k]
	// The vector path shares the whole suppression walk and replaces only
	// the per-lane step tail: crashed lanes become the node's lane mask,
	// and one StepVec call advances the rest.
	vec := bt.vecAlgo != nil
	var vin *InboxVec
	var vout *OutboxVec
	var prev, mask []bool
	var vprocs []VecProcess
	if vec {
		vin, vout = &bt.vinboxes[w], &bt.voutboxes[w]
		bt.bindInboxVec(vin, k)
		bt.bindOutboxVec(vout, k, bt.wkStage[w], bt.nextLens, bt.nextWord)
		prev = bt.wkPrev[w][:k]
		mask = bt.wkMask[w][:k]
		vprocs = bt.vprocs
	}
	for v := vlo; v < vhi; v++ {
		lo, hi := topo.Slots(v) // global coordinates, every shape
		deg := hi - lo
		rev := bt.revTab[lo-base : hi-base]
		in.deg, in.slot = deg, rev
		out.deg, out.slotLo = deg, lo-base
		// Crash draws, once per lane. The round coordinate is pinned to 0
		// so one (node, lane) pair crashes in every round of its window.
		for b := 0; b < k; b++ {
			down[b] = crashNow && alive[b] && ftape.Bernoulli(f.CrashP, faultCrash, 0, uint64(v), fids[b])
		}
		clear(del)
		// The suppression walk, slot-major: each receive slot's k lanes
		// are contiguous in the lens slab. Down and dead lanes are
		// skipped — their held-slab state must stay untouched.
		for pi, s := range rev {
			li0 := int(s) * B
			// The directed edge is keyed by the receiver's own global
			// slot: lo+pi is v's port pi in every execution shape.
			gs := uint64(lo + pi)
			severed := sev != nil && round >= int(sev[lo+pi])
			for b := 0; b < k; b++ {
				if !alive[b] || down[b] {
					continue
				}
				li := li0 + b
				if heldLens != nil {
					if hl := heldLens[li]; hl > 0 {
						if curLens[li] == 0 {
							curLens[li] = hl
							if nw := int(hl) - 1; nw > 0 {
								wb := int(offW[s])*B + int(capW[s])*b
								copy(curWords[wb:wb+nw], heldWords[wb:wb+nw])
							}
							if heldRefs != nil {
								curRefs[li] = heldRefs[li]
							}
						}
						heldLens[li] = 0
						if heldRefs != nil {
							heldRefs[li] = nil
						}
					}
				}
				if curLens[li] == 0 {
					continue
				}
				if severed {
					curLens[li] = 0
					continue
				}
				if f.Drop > 0 && ftape.Bernoulli(f.Drop, faultDrop, uint64(round), gs, fids[b]) {
					curLens[li] = 0
					continue
				}
				if heldLens != nil && ftape.Bernoulli(f.Delay, faultDelay, uint64(round), gs, fids[b]) {
					hl := curLens[li]
					heldLens[li] = hl
					if nw := int(hl) - 1; nw > 0 {
						wb := int(offW[s])*B + int(capW[s])*b
						copy(heldWords[wb:wb+nw], curWords[wb:wb+nw])
					}
					if heldRefs != nil {
						heldRefs[li] = curRefs[li]
					}
					curLens[li] = 0
					continue
				}
				del[b]++
			}
		}
		// Reset the node's outgoing slots exactly as roundPass does — one
		// contiguous clear over the node's consecutive slot window; a
		// down node thereby sends nothing next round, and neither dead
		// lanes' nor the unused capacity lanes' stale state is ever read.
		clear(nextLens[(lo-base)*B : (hi-base)*B])
		if nextRefs != nil {
			clear(nextRefs[(lo-base)*B : (hi-base)*B])
		}
		if !vec {
			for b := 0; b < k; b++ {
				if !alive[b] {
					continue
				}
				msgRow[b] += int64(del[b])
				if done[v*B+b] {
					continue
				}
				if down[b] {
					if f.CrashUntil == 0 {
						// Permanent crash: finalize with the frozen state so the
						// run's halting consensus can still complete; Output()
						// reports whatever the process last committed to.
						done[v*B+b] = true
						finRow[b]++
					}
					continue
				}
				in.b, out.b = b, b
				if procs[v*B+b].Step(round, in, out) {
					done[v*B+b] = true
					finRow[b]++
				}
			}
			continue
		}
		// Vec step tail: the same per-lane resolution — delivered credit,
		// permanent-crash finalization (before the pre-step snapshot, so
		// the diff below cannot double-count it) — folded into a lane
		// mask, then one StepVec over the remaining lanes.
		vin.deg, vin.slot = deg, rev
		vout.deg, vout.slotLo = deg, lo-base
		doneRow := done[v*B : v*B+k]
		anyMask, left := false, 0
		for b := 0; b < k; b++ {
			mask[b] = false
			if !alive[b] {
				continue
			}
			msgRow[b] += int64(del[b])
			if doneRow[b] {
				continue
			}
			if down[b] {
				mask[b] = true
				anyMask = true
				if f.CrashUntil == 0 {
					doneRow[b] = true
					finRow[b]++
				}
				continue
			}
			left++
		}
		if left == 0 {
			continue
		}
		copy(prev, doneRow)
		vin.mask = nil
		if anyMask {
			vin.mask = mask
		}
		vprocs[v].StepVec(round, vin, vout, doneRow)
		for b := 0; b < k; b++ {
			if doneRow[b] && !prev[b] {
				finRow[b]++
			}
		}
	}
}
