package local

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// The worker protocol is exercised here without OS processes: each
// "worker" is ServeShard on its own goroutine behind a real connection
// pair, with the data links still real loopback TCP sockets — the full
// codec and connection machinery of a multi-process run, minus exec.

func init() {
	RegisterRemoteAlgorithm("test-wiremix", func(params []int64) (MessageAlgorithm, error) {
		if len(params) != 1 {
			return nil, errors.New("test-wiremix wants one param")
		}
		return wireMix{rounds: int(params[0])}, nil
	})
	RegisterRemoteAlgorithm("test-floodmin", func(params []int64) (MessageAlgorithm, error) {
		return floodMin{t: int(params[0])}, nil
	})
	RegisterRemoteAlgorithm("test-panic-on-node", func(params []int64) (MessageAlgorithm, error) {
		return panicOnNode{node: params[0]}, nil
	})
}

// RemoteSpec makes the package's test algorithms process-portable.
func (a wireMix) RemoteSpec() (string, []int64)     { return "test-wiremix", []int64{int64(a.rounds)} }
func (a floodMin) RemoteSpec() (string, []int64)    { return "test-floodmin", []int64{int64(a.t)} }
func (a panicOnNode) RemoteSpec() (string, []int64) { return "test-panic-on-node", []int64{a.node} }

// tcpPair returns a connected loopback TCP pair (orchestrator side,
// worker side). Control connections must be real sockets here: the
// worker heartbeats from its own goroutine, and a net.Pipe would block
// those writes (and the sendMu they hold) whenever the orchestrator
// isn't actively reading.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptC := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		acceptC <- accepted{conn, err}
	}()
	orch, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acceptC
	if srv.err != nil {
		orch.Close()
		t.Fatal(srv.err)
	}
	t.Cleanup(func() { orch.Close(); srv.conn.Close() })
	return orch, srv.conn
}

// startWorkerPool spins n in-process workers and returns their pool;
// cleanup shuts them down. The beat is cranked down so heartbeats
// interleave with protocol traffic during ordinary runs, exercising the
// orchestrator's beat-skipping receive path in every test below.
func startWorkerPool(t *testing.T, n int) *WorkerPool {
	t.Helper()
	return startWorkerPoolOpts(t, n, ServeOptions{Beat: 25 * time.Millisecond})
}

func startWorkerPoolOpts(t *testing.T, n int, o ServeOptions) *WorkerPool {
	t.Helper()
	workers := make([]*WorkerConn, n)
	for i := 0; i < n; i++ {
		orch, worker := tcpPair(t)
		go func() { ServeShardOpts(worker, o) }()
		w, err := NewWorkerConn(orch, 5*time.Second)
		if err != nil {
			t.Fatalf("worker %d hello: %v", i, err)
		}
		workers[i] = w
	}
	pool := NewWorkerPool(workers)
	t.Cleanup(pool.Close)
	return pool
}

// TestRemoteShardedEquivalence is the protocol's tentpole contract:
// every lane of a worker-hosted sharded run — outputs, Stats, errors —
// is byte-identical to the unsharded Batch at equal seeds, across graph
// families, ragged tails, and back-to-back reuse on one pool.
func TestRemoteShardedEquivalence(t *testing.T) {
	const width = 3
	pool := startWorkerPool(t, 3)
	space := localrand.NewTapeSpace(51)
	lo := 0
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			in := mustInstance(t, g)
			plan := MustPlan(g)
			bt := plan.NewBatch(width)
			sh, err := plan.NewShardedRemote(width, pool)
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()
			for rep, k := range []int{width, width - 1} {
				draws := drawRange(space, lo, k)
				want, err := bt.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Run(in, wireMix{rounds: 4}, draws, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < k; b++ {
					expectSameResult(t, fmt.Sprintf("remote rep %d lane %d", rep, b), want[b], got[b])
				}
				lo += k
			}
		})
	}
}

// TestRemoteShardedAlgorithmSwitch pins job re-shipping: one pool serves
// successive Shardeds over different graphs and algorithms, deterministic
// runs included, each byte-identical to the local engines.
func TestRemoteShardedAlgorithmSwitch(t *testing.T) {
	pool := startWorkerPool(t, 2)
	space := localrand.NewTapeSpace(53)
	for i, g := range []*graph.Graph{graph.Cycle(14), graph.Grid(4, 4), graph.Cycle(9)} {
		in := mustInstance(t, g)
		plan := MustPlan(g)
		sh, err := plan.NewShardedRemote(2, pool)
		if err != nil {
			t.Fatal(err)
		}

		// Randomized wire algorithm.
		draws := drawRange(space, i*4, 2)
		want, err := plan.NewBatch(2).Run(in, wireMix{rounds: 3}, draws, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Run(in, wireMix{rounds: 3}, draws, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for b := range draws {
			expectSameResult(t, fmt.Sprintf("graph %d wire lane %d", i, b), want[b], got[b])
		}

		// Deterministic algorithm on the same pool: a new job mid-Sharded.
		wantDet, err := RunMessage(in, floodMin{t: 2}, nil, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotDet, err := sh.RunInstances([]*lang.Instance{in, in}, floodMin{t: 2}, nil, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for b := range gotDet {
			expectSameResult(t, fmt.Sprintf("graph %d det lane %d", i, b), wantDet, gotDet[b])
		}
		sh.Close()
	}
}

// TestRemoteShardedFallbacks pins the degradation contract: a pool in
// use refuses a second Sharded; a non-portable algorithm transparently
// runs on the local companion batch with identical results.
func TestRemoteShardedFallbacks(t *testing.T) {
	pool := startWorkerPool(t, 2)
	g := graph.Cycle(12)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewShardedRemote(2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.NewShardedRemote(2, pool); err == nil {
		t.Fatal("busy pool handed out twice")
	}

	// tapeXOR has no RemoteSpec: the remote Sharded must fall back to its
	// local companion batch, byte-identically.
	space := localrand.NewTapeSpace(55)
	draws := drawRange(space, 0, 2)
	want, err := plan.NewBatch(2).Run(in, tapeXOR{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, tapeXOR{rounds: 3}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("fallback lane %d", b), want[b], got[b])
	}

	sh.Close()
	// Released pool serves again.
	sh2, err := plan.NewShardedRemote(2, pool)
	if err != nil {
		t.Fatal(err)
	}
	sh2.Close()
}

// TestRemoteShardedWorkerPanic pins failure containment across the
// process boundary: an algorithm panicking inside a worker surfaces as a
// descriptive error on the orchestrator — no hang, no orchestrator
// panic — and the pool stays usable.
func TestRemoteShardedWorkerPanic(t *testing.T) {
	pool := startWorkerPool(t, 2)
	g := graph.Cycle(10)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewShardedRemote(1, pool)
	if err != nil {
		t.Fatal(err)
	}
	// The dead shard's peer unblocks via its data-link deadline; keep the
	// test snappy.
	sh.SetLinkTimeout(300 * time.Millisecond)
	_, err = sh.RunInstances([]*lang.Instance{in}, panicOnNode{node: in.ID[7]}, nil, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "detonated") {
		t.Fatalf("worker panic surfaced as %v, want a detonation error", err)
	}

	// Same executor, clean algorithm: the pool recovers.
	draws := drawRange(localrand.NewTapeSpace(57), 0, 1)
	want, err := plan.NewBatch(1).Run(in, wireMix{rounds: 2}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Run(in, wireMix{rounds: 2}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	expectSameResult(t, "after-panic", want[0], got[0])
	sh.Close()
}

// noDeadlineConn refuses every deadline call — the shape of conn the old
// code silently tolerated, turning a vanished peer into an unbounded
// hang. The handshake must now surface the refusal descriptively.
type noDeadlineConn struct{ net.Conn }

func (c noDeadlineConn) SetDeadline(time.Time) error      { return errors.New("deadlines unsupported") }
func (c noDeadlineConn) SetReadDeadline(time.Time) error  { return errors.New("deadlines unsupported") }
func (c noDeadlineConn) SetWriteDeadline(time.Time) error { return errors.New("deadlines unsupported") }

// TestWorkerConnDeadlineRefused pins the deadline bugfix: a conn whose
// SetReadDeadline errors fails the handshake with the refusal in the
// message instead of being ignored.
func TestWorkerConnDeadlineRefused(t *testing.T) {
	orch, worker := tcpPair(t)
	go ServeShard(worker, "")
	_, err := NewWorkerConn(noDeadlineConn{orch}, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "deadlines unsupported") {
		t.Fatalf("deadline-refusing conn handshake returned %v, want the refusal surfaced", err)
	}
}

// TestWorkerConnVersionMismatch pins the versioned handshake: a worker
// speaking another protocol version is rejected at registration with
// both versions named, so mixed fleet binaries fail fast instead of
// desyncing mid-run.
func TestWorkerConnVersionMismatch(t *testing.T) {
	orch, impostor := tcpPair(t)
	go func() {
		gob.NewEncoder(impostor).Encode(&helloMsg{Version: ctrlProtoVersion + 7, DataAddr: "127.0.0.1:1"})
	}()
	_, err := NewWorkerConn(orch, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "mismatched binaries") {
		t.Fatalf("version-mismatched hello returned %v, want a version error", err)
	}
}

// TestWorkerDeathMarksDeadAndSurvivorsServe is the local half of the
// requeue contract: a worker dying mid-run (DieAfterRounds) turns into a
// run error — not a hang — the pool marks it dead, and the next
// NewShardedRemote builds from the survivors alone with byte-identical
// results. The mc scheduler composes this into transparent retry.
func TestWorkerDeathMarksDeadAndSurvivorsServe(t *testing.T) {
	// Every worker would die at round 3 of its first run; only one pool
	// member is built with the chaos flag.
	workers := make([]*WorkerConn, 3)
	for i := range workers {
		o := ServeOptions{Beat: 25 * time.Millisecond}
		if i == 1 {
			o.DieAfterRounds = 3
		}
		orch, worker := tcpPair(t)
		go func() { ServeShardOpts(worker, o) }()
		w, err := NewWorkerConn(orch, 5*time.Second)
		if err != nil {
			t.Fatalf("worker %d hello: %v", i, err)
		}
		workers[i] = w
	}
	pool := NewWorkerPool(workers)
	t.Cleanup(pool.Close)

	g := graph.Cycle(12)
	in := mustInstance(t, g)
	plan := MustPlan(g)
	sh, err := plan.NewShardedRemote(2, pool)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetLinkTimeout(500 * time.Millisecond) // peers of the dead shard unblock fast
	space := localrand.NewTapeSpace(59)
	draws := drawRange(space, 0, 2)
	if _, err := sh.Run(in, wireMix{rounds: 8}, draws, RunOptions{}); err == nil {
		t.Fatal("run across a dying worker reported success")
	}
	sh.Close()
	if live := pool.Live(); live != 2 {
		t.Fatalf("pool has %d live workers after one death, want 2", live)
	}

	// Survivors carry the next executor, byte-identical to local.
	sh2, err := plan.NewShardedRemote(2, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	want, err := plan.NewBatch(2).Run(in, wireMix{rounds: 8}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh2.Run(in, wireMix{rounds: 8}, draws, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for b := range draws {
		expectSameResult(t, fmt.Sprintf("survivor lane %d", b), want[b], got[b])
	}
}

// TestPoolAllDeadRefuses pins the bottom of the degradation ladder: a
// pool whose every worker is dead refuses NewShardedRemote with a
// descriptive error (exp then falls back to a plain local batch).
func TestPoolAllDeadRefuses(t *testing.T) {
	pool := startWorkerPool(t, 2)
	for _, w := range pool.workers {
		w.markDead()
	}
	g := graph.Cycle(8)
	plan := MustPlan(g)
	if _, err := plan.NewShardedRemote(1, pool); err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("all-dead pool returned %v, want a no-live-workers error", err)
	}
	// The refusal released the pool: it must not be stuck acquired.
	if err := pool.acquire(); err != nil {
		t.Fatalf("pool left acquired after refusal: %v", err)
	}
	pool.release()
}
