package local

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rlnc/internal/lang"
	"rlnc/internal/localrand"
)

// This file is the orchestrator half of the shard-worker protocol: a
// Sharded whose shards are real OS processes. The orchestrator keeps the
// whole consensus loop of sharded.go — runVec, gather, the abort
// bookkeeping — and swaps the in-process shardExec goroutines for
// per-worker drivers that relay round commands and reports over a gob
// control stream, while the cut blocks themselves travel worker-to-worker
// over direct TCP connections carrying the codec.go frames. Worker side:
// worker.go (ServeShard); process entry point: `rlnc shard-worker`.
//
// Protocol (one gob stream per direction per worker):
//
//	worker → orchestrator   helloMsg        once, after connecting: protocol
//	                                        version, data address, registered
//	                                        algorithm keys, heartbeat period
//	worker → orchestrator   workerMsg{Beat} periodic heartbeat, interleaved
//	                                        with any reply below
//	orchestrator → worker   ctrlMsg{Job}    per (graph, algorithm) job
//	worker → orchestrator   workerMsg{Ready}  job built (or its error)
//	orchestrator → worker   ctrlMsg{Run}    per execution vector
//	orchestrator → worker   ctrlMsg{Cmd}    per round: run/finish+collect,
//	                                        with the lane-liveness vector
//	worker → orchestrator   workerMsg{Report} per Cmd: per-lane delivered
//	                                        and finished counts, outputs
//	                                        on collect, or an error
//
// Failure model: any control-stream error — a refused deadline, a decode
// failure, a read deadline expiring with no heartbeat — marks the worker
// dead on its WorkerConn and surfaces as an error from the running
// Sharded. The Monte-Carlo scheduler (internal/mc) then closes that
// trial state and retries the in-flight trial chunk on a fresh one;
// NewShardedRemote builds the replacement from the pool's surviving
// workers (or the provider falls back to a local batch when none are
// left), so a worker dying mid-run requeues its chunk instead of
// aborting the sweep — with byte-identical output, per the sharding
// contract.
//
// Randomness, instances, and the graph all cross as plain data (draw
// seeds, identity/input columns, CSR adjacency), so a worker process
// reconstructs bit-identical state: the hard sharding contract — every
// lane byte-identical to the unsharded Batch — holds across process
// boundaries, and the golden CLI tests pin it end to end.

// RemoteAlgorithm is a MessageAlgorithm that can cross a process
// boundary: it names itself with a registry key and flat int64
// parameters, from which RegisterRemoteAlgorithm's builder reconstructs
// an identical algorithm inside the worker process. Algorithms without
// this (or with unregistered keys) still run on a remote Sharded — the
// orchestrator falls back to its local companion batch, which is
// byte-identical by the sharding contract.
type RemoteAlgorithm interface {
	MessageAlgorithm
	RemoteSpec() (key string, params []int64)
}

var remoteAlgos sync.Map // key → func([]int64) (MessageAlgorithm, error)

// RegisterRemoteAlgorithm installs the builder a shard-worker process
// uses to reconstruct the algorithm named key. Packages register their
// algorithms in init; both ends of the protocol run the same binary, so
// registration is symmetric by construction.
func RegisterRemoteAlgorithm(key string, build func(params []int64) (MessageAlgorithm, error)) {
	if _, dup := remoteAlgos.LoadOrStore(key, build); dup {
		panic(fmt.Sprintf("local: remote algorithm %q registered twice", key))
	}
}

// remoteAlgoFor reconstructs a registered remote algorithm.
func remoteAlgoFor(key string, params []int64) (MessageAlgorithm, error) {
	b, ok := remoteAlgos.Load(key)
	if !ok {
		return nil, fmt.Errorf("local: remote algorithm %q not registered in this binary", key)
	}
	return b.(func([]int64) (MessageAlgorithm, error))(params)
}

// BuildRemoteAlgorithm reconstructs the algorithm registered under key
// from its flat parameters — the same lookup a shard-worker process
// performs for a shipped job, exported so the serve control plane can
// validate and execute `POST /v1/runs` algorithm jobs against the
// identical registry. Unknown keys and parameter-shape mismatches
// error.
func BuildRemoteAlgorithm(key string, params []int64) (MessageAlgorithm, error) {
	return remoteAlgoFor(key, params)
}

// RegisteredRemoteAlgorithms returns the sorted registry keys this
// binary can reconstruct — the capability list a worker advertises in
// its hello.
func RegisteredRemoteAlgorithms() []string {
	var keys []string
	remoteAlgos.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// --- Wire messages of the control stream ------------------------------------

// ctrlProtoVersion is the control-stream protocol version. Version 2
// added the versioned hello (capabilities + heartbeat period) and the
// heartbeat message; the orchestrator refuses workers speaking any other
// version — a silent field mismatch between fleet binaries must fail the
// handshake, not corrupt a run.
const ctrlProtoVersion = 2

// helloMsg is the worker's first message: the protocol version it
// speaks, where peers dial its data listener, which remote-algorithm
// registry keys its binary can reconstruct, and how often it will
// heartbeat (0: never).
type helloMsg struct {
	Version  int32
	DataAddr string
	Algos    []string
	BeatMS   int64
}

// jobSpec ships everything a worker needs to stand up one (graph,
// partition, algorithm) job: the CSR adjacency, the cut placement, its
// shard index, and its peers' data addresses.
type jobSpec struct {
	Job        int64
	Offsets    []int32
	Nbrs       []int32
	Bounds     []int32
	Shard      int32
	Width      int32
	AlgoKey    string
	AlgoParams []int64
	Peers      []string
	TimeoutMS  int64
}

// instPayload is one unique instance of a run: identity and input
// columns (the graph is the job's).
type instPayload struct {
	ID []int64
	X  [][]byte
}

// runSpec begins one execution vector: per-lane instances (deduplicated:
// Lane[b] indexes Insts) and draw seeds. Round budgets stay with the
// orchestrator — workers execute exactly the rounds they are told to.
type runSpec struct {
	K        int32
	Block    int32
	Insts    []instPayload
	Lane     []int32
	Draws    []uint64 // draw seeds; empty + !HasDraws = deterministic
	HasDraws bool

	// Fault plan, flattened: RunOptions never cross the process boundary,
	// so an enabled effective FaultPlan ships as plain fields with the run
	// and the worker reconstructs an identical plan. Surgery crosses as
	// (Round, U, Z) int64 triples. HasFault false = unperturbed run.
	HasFault        bool
	FaultSeed       uint64
	FaultDrop       float64
	FaultDelay      float64
	FaultCrashP     float64
	FaultCrashFrom  int32
	FaultCrashUntil int32
	FaultCuts       []int64
}

// cmdMsg is one orchestrator command: execute round Round (Run), or
// finish — collecting outputs when Collect. Alive is the lane-liveness
// vector the round pass reads, maintained by the orchestrator's halting
// consensus.
type cmdMsg struct {
	Round   int32
	Run     bool
	Collect bool
	Alive   []bool
}

// ctrlMsg is the orchestrator→worker union: exactly one field is set.
type ctrlMsg struct {
	Job *jobSpec
	Run *runSpec
	Cmd *cmdMsg
}

// reportMsg is the worker's answer to a command: per-lane delivered and
// newly-finished counts (a round), collected outputs (finish+collect;
// flattened [lane][ownNode]), or a failure. Panicked carries a recovered
// panic as text — the orchestrator surfaces it as an error, since a
// foreign process's panic value cannot be re-raised faithfully.
type reportMsg struct {
	Msgs     []int64
	Fins     []int32
	Out      [][]byte
	Err      string
	Panicked string
}

// workerMsg is the worker→orchestrator union. Beat marks a heartbeat:
// contentless, sent by the worker's beat goroutine between (and during)
// commands; the orchestrator's recv skips beats, using their arrival to
// refresh its read deadline.
type workerMsg struct {
	Beat   bool
	Ready  *reportMsg // job ack: Err set on failure
	Report *reportMsg
}

// --- Worker pool ------------------------------------------------------------

// WorkerConn is the orchestrator's handle on one shard-worker process:
// the control connection with its gob codecs, the worker's data address,
// and the capabilities and heartbeat period it announced. A control
// failure of any kind marks the conn dead; dead workers are excluded
// from the live set NewShardedRemote builds its shards from.
type WorkerConn struct {
	ctrl     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	dataAddr string
	algos    map[string]bool
	beat     time.Duration
	dead     atomic.Bool
}

// ctrlWriteTimeout bounds one control-stream encode: a worker that
// cannot absorb a small command within it is as good as gone.
const ctrlWriteTimeout = time.Minute

// NewWorkerConn wraps a freshly accepted control connection, reading and
// validating the worker's versioned hello (bounded by timeout). On error
// the connection is closed — the caller holds no other handle to it once
// it is wrapped, so a failed handshake must not leak the socket.
func NewWorkerConn(ctrl net.Conn, timeout time.Duration) (*WorkerConn, error) {
	w := &WorkerConn{ctrl: ctrl, enc: gob.NewEncoder(ctrl), dec: gob.NewDecoder(ctrl)}
	fail := func(err error) (*WorkerConn, error) {
		ctrl.Close()
		return nil, err
	}
	if timeout > 0 {
		if err := ctrl.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return fail(fmt.Errorf("local: worker hello read deadline: %w", err))
		}
	}
	var hello helloMsg
	if err := w.dec.Decode(&hello); err != nil {
		return fail(fmt.Errorf("local: worker hello: %w", err))
	}
	if timeout > 0 {
		if err := ctrl.SetReadDeadline(time.Time{}); err != nil {
			return fail(fmt.Errorf("local: worker hello clear deadline: %w", err))
		}
	}
	if hello.Version != ctrlProtoVersion {
		return fail(fmt.Errorf("local: worker speaks control protocol v%d, orchestrator wants v%d (mismatched binaries?)", hello.Version, ctrlProtoVersion))
	}
	w.dataAddr = hello.DataAddr
	w.beat = time.Duration(hello.BeatMS) * time.Millisecond
	w.algos = make(map[string]bool, len(hello.Algos))
	for _, k := range hello.Algos {
		w.algos[k] = true
	}
	return w, nil
}

// DataAddr returns the address peers dial to reach this worker's data
// listener.
func (w *WorkerConn) DataAddr() string { return w.dataAddr }

// Supports reports whether the worker's binary advertised the
// remote-algorithm registry key in its hello.
func (w *WorkerConn) Supports(key string) bool { return w.algos[key] }

// Dead reports whether the control stream has failed; a dead worker is
// excluded from subsequent NewShardedRemote live sets.
func (w *WorkerConn) Dead() bool { return w.dead.Load() }

func (w *WorkerConn) markDead() { w.dead.Store(true) }

// readTimeout is the decode deadline the orchestrator arms while waiting
// on this worker: four missed heartbeats means dead. Workers that
// announced no heartbeat get no deadline (legacy behavior — death then
// surfaces only through TCP resets or link timeouts).
func (w *WorkerConn) readTimeout() time.Duration {
	if w.beat <= 0 {
		return 0
	}
	return 4 * w.beat
}

// send encodes one control message under the write deadline, marking the
// worker dead on any failure.
func (w *WorkerConn) send(m *ctrlMsg) error {
	if err := w.ctrl.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout)); err != nil {
		w.markDead()
		return fmt.Errorf("local: worker control write deadline: %w", err)
	}
	if err := w.enc.Encode(m); err != nil {
		w.markDead()
		return err
	}
	if err := w.ctrl.SetWriteDeadline(time.Time{}); err != nil {
		w.markDead()
		return fmt.Errorf("local: worker control clear write deadline: %w", err)
	}
	return nil
}

// recv decodes the next non-heartbeat worker message. timeout bounds the
// silence the orchestrator tolerates: the deadline is re-armed before
// every decode, so each arriving heartbeat refreshes it and a long
// computation stays alive as long as the worker's beat goroutine does —
// while a frozen or vanished worker surfaces as an error after one
// timeout instead of hanging the driver forever. Any failure marks the
// worker dead.
func (w *WorkerConn) recv(timeout time.Duration) (*workerMsg, error) {
	for {
		if timeout > 0 {
			if err := w.ctrl.SetReadDeadline(time.Now().Add(timeout)); err != nil {
				w.markDead()
				return nil, fmt.Errorf("local: worker control read deadline: %w", err)
			}
		}
		var msg workerMsg
		if err := w.dec.Decode(&msg); err != nil {
			w.markDead()
			return nil, err
		}
		if msg.Beat {
			continue
		}
		if timeout > 0 {
			if err := w.ctrl.SetReadDeadline(time.Time{}); err != nil {
				w.markDead()
				return nil, fmt.Errorf("local: worker control clear read deadline: %w", err)
			}
		}
		return &msg, nil
	}
}

// Close closes the control connection, which a serving worker treats as
// shutdown.
func (w *WorkerConn) Close() error { return w.ctrl.Close() }

// WorkerPool is a fixed set of shard-worker processes serving one remote
// Sharded at a time: jobs sequence on the shared control streams, so a
// pool must be acquired before NewShardedRemote uses it and released
// when that Sharded is done (Sharded.Close does).
type WorkerPool struct {
	workers []*WorkerConn

	mu      sync.Mutex
	jobSeq  int64
	current *Sharded // whose job the workers currently hold
	busy    bool
}

// NewWorkerPool assembles a pool from connected workers.
func NewWorkerPool(workers []*WorkerConn) *WorkerPool {
	return &WorkerPool{workers: workers}
}

// Size returns the total worker count, dead workers included.
func (p *WorkerPool) Size() int { return len(p.workers) }

// Live returns how many workers still hold a healthy control stream —
// the shard count of the next Sharded the pool backs.
func (p *WorkerPool) Live() int { return len(p.liveWorkers()) }

// liveWorkers selects the workers whose control streams have not failed.
func (p *WorkerPool) liveWorkers() []*WorkerConn {
	live := make([]*WorkerConn, 0, len(p.workers))
	for _, w := range p.workers {
		if !w.Dead() {
			live = append(live, w)
		}
	}
	return live
}

// acquire reserves the pool for one Sharded; a pool serves one at a
// time (Monte-Carlo harnesses with more worker groups fall back to
// local batches, which the sharding contract keeps byte-identical).
func (p *WorkerPool) acquire() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.busy {
		return errors.New("local: worker pool already serving a sharded executor")
	}
	p.busy = true
	return nil
}

// release returns the pool; the workers keep their last job until the
// next Sharded replaces it.
func (p *WorkerPool) release() {
	p.mu.Lock()
	p.busy = false
	p.mu.Unlock()
}

// Close closes every control connection, shutting serving workers down.
func (p *WorkerPool) Close() {
	for _, w := range p.workers {
		w.Close()
	}
}

// --- Remote Sharded ---------------------------------------------------------

// NewShardedRemote is NewSharded with the shards hosted by the pool's
// worker processes: one shard per live worker (capped at the graph's
// node count), balanced cuts, cut blocks on direct worker-to-worker TCP
// links, rounds and consensus driven over the control streams. Results
// are byte-identical to NewSharded — and to the unsharded Batch — at
// equal seeds and any worker count. The pool is reserved until Close.
//
// Dead workers are skipped, so a pool that lost members mid-sweep keeps
// serving with the survivors; only a pool with no live worker errors,
// which is the signal for callers (exp's trial-state provider) to fall
// back to a local batch.
func (p *Plan) NewShardedRemote(width int, pool *WorkerPool) (*Sharded, error) {
	if err := pool.acquire(); err != nil {
		return nil, err
	}
	live := pool.liveWorkers()
	if n := p.g.N(); len(live) > n {
		live = live[:n]
	}
	if len(live) == 0 {
		pool.release()
		return nil, errors.New("local: worker pool has no live workers")
	}
	s, err := p.NewSharded(width, len(live))
	if err != nil {
		pool.release()
		return nil, err
	}
	s.remote = pool
	s.remoteWorkers = live
	s.closeLinks = func() {
		s.remote = nil
		s.remoteWorkers = nil
		pool.release()
	}
	return s, nil
}

// Remote reports whether the shards run as worker processes.
func (s *Sharded) Remote() bool { return s.remote != nil }

// ensureRemoteJob makes the workers hold this Sharded's (graph,
// partition, algorithm) job, shipping a fresh jobSpec when the pool
// currently holds another Sharded's job or another algorithm.
func (s *Sharded) ensureRemoteJob(algo RemoteAlgorithm) error {
	key, params := algo.RemoteSpec()
	pool := s.remote
	pool.mu.Lock()
	same := pool.current == s && s.remoteKey == key && int64SliceEq(s.remoteParams, params)
	if !same {
		pool.jobSeq++
		s.remoteJob = pool.jobSeq
		pool.current = s
		s.remoteKey, s.remoteParams = key, append([]int64(nil), params...)
	}
	pool.mu.Unlock()
	if same {
		return nil
	}
	topo := s.plan.topo
	workers := s.remoteWorkers
	peers := make([]string, len(workers))
	for i, w := range workers {
		peers[i] = w.dataAddr
	}
	for i, w := range workers {
		spec := &jobSpec{
			Job:        s.remoteJob,
			Offsets:    topo.Offsets,
			Nbrs:       topo.Nbrs,
			Bounds:     s.part.Bounds,
			Shard:      int32(i),
			Width:      int32(s.width),
			AlgoKey:    key,
			AlgoParams: params,
			Peers:      peers,
			TimeoutMS:  s.linkTimeout.Milliseconds(),
		}
		if err := w.send(&ctrlMsg{Job: spec}); err != nil {
			return fmt.Errorf("local: send job to worker %d: %w", i, err)
		}
	}
	for i, w := range workers {
		// Link setup dials peers with retry, so an ack may take a while;
		// the worker's heartbeats keep refreshing the deadline throughout.
		msg, err := w.recv(w.readTimeout())
		if err != nil {
			return fmt.Errorf("local: worker %d job ack: %w", i, err)
		}
		if msg.Ready == nil {
			w.markDead() // protocol violation: the stream is desynced
			return fmt.Errorf("local: worker %d answered a job with no ready ack", i)
		}
		if msg.Ready.Err != "" {
			return fmt.Errorf("local: worker %d job setup: %s", i, msg.Ready.Err)
		}
	}
	return nil
}

// int64SliceEq reports element equality.
func int64SliceEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// beginRemoteRun ships one execution vector's inputs: deduplicated
// instances, per-lane indices, draw seeds, and the effective fault plan
// (flattened; workers rebuild it so faulty sharded-remote runs stay
// byte-identical to local ones).
func (s *Sharded) beginRemoteRun(src laneSrc, k int, draws []localrand.Draw, fault *FaultPlan) error {
	rs := &runSpec{K: int32(k), Block: int32(s.block), Lane: make([]int32, k)}
	idxOf := make(map[*lang.Instance]int32, 1)
	for b := 0; b < k; b++ {
		in := src.instance(b)
		idx, ok := idxOf[in]
		if !ok {
			idx = int32(len(rs.Insts))
			idxOf[in] = idx
			rs.Insts = append(rs.Insts, instPayload{ID: in.ID, X: in.X})
		}
		rs.Lane[b] = idx
	}
	if draws != nil {
		rs.HasDraws = true
		rs.Draws = make([]uint64, k)
		for b := 0; b < k; b++ {
			rs.Draws[b] = draws[b].Seed()
		}
	}
	if fault.Enabled() {
		rs.HasFault = true
		rs.FaultSeed = fault.Seed
		rs.FaultDrop = fault.Drop
		rs.FaultDelay = fault.Delay
		rs.FaultCrashP = fault.CrashP
		rs.FaultCrashFrom = int32(fault.CrashFrom)
		rs.FaultCrashUntil = int32(fault.CrashUntil)
		for _, c := range fault.Surgery {
			rs.FaultCuts = append(rs.FaultCuts, int64(c.Round), int64(c.U), int64(c.Z))
		}
	}
	for i, w := range s.remoteWorkers {
		if err := w.send(&ctrlMsg{Run: rs}); err != nil {
			return fmt.Errorf("local: send run to worker %d: %w", i, err)
		}
	}
	return nil
}

// remoteDrive is the orchestrator-side stand-in for one shardExec
// goroutine: it relays ctrl commands to the worker and its reports back,
// collecting outputs on finish. A broken control stream degrades to
// error reports so the consensus loop unwinds exactly like an exchange
// failure.
func (s *Sharded) remoteDrive(idx, k, n int, ys [][]byte) {
	w := s.remoteWorkers[idx]
	sh := s.shards[idx]
	lo, hi := sh.lo, sh.hi
	// Round replies are small and heartbeat-covered; a collect reply can
	// be a large gob message whose decode outlasts the heartbeat window
	// on a slow link, so it gets the more generous of the two bounds.
	collectTimeout := w.readTimeout()
	if lt := 2 * s.linkTimeout; lt > collectTimeout {
		collectTimeout = lt
	}
	var broken error
	for {
		cmd := <-sh.ctrl
		var rep *reportMsg
		if broken == nil {
			msg := ctrlMsg{Cmd: &cmdMsg{
				Round:   int32(cmd.round),
				Run:     cmd.run,
				Collect: cmd.collect,
				Alive:   s.alive[:k],
			}}
			timeout := w.readTimeout()
			if cmd.collect {
				timeout = collectTimeout
			}
			if err := w.send(&msg); err != nil {
				broken = fmt.Errorf("local: worker %d command: %w", idx, err)
			} else {
				wm, err := w.recv(timeout)
				if err != nil {
					broken = fmt.Errorf("local: worker %d report: %w", idx, err)
				} else if wm.Report == nil {
					w.markDead() // protocol violation: the stream is desynced
					broken = fmt.Errorf("local: worker %d answered a command with no report", idx)
				} else {
					rep = wm.Report
				}
			}
		}
		// Classify the answer once. A failed answer to a round command is
		// an error report; a finish command is always this goroutine's
		// last, so whatever the answer, it must report exactly once and
		// terminate — looping back on a failed finish would leak the
		// driver (and everything it pins) forever.
		var repErr error
		switch {
		case broken != nil:
			// A broken control stream is an error whenever the command
			// needed an answer: every round command, and a collecting
			// finish (silent nil outputs must not pass for a clean run). A
			// plain finish after an already-reported failure just acks.
			if cmd.run || cmd.collect {
				repErr = broken
			}
		case rep.Panicked != "":
			repErr = fmt.Errorf("local: worker %d shard panic: %s", idx, rep.Panicked)
		case rep.Err != "":
			repErr = errors.New(rep.Err)
		}
		if !cmd.run {
			nwin := hi - lo
			switch {
			case repErr != nil:
				s.reports <- shardReport{from: idx, err: repErr}
			case broken == nil && cmd.collect && len(rep.Out) != k*nwin:
				s.reports <- shardReport{from: idx, err: fmt.Errorf("local: worker %d collected %d outputs, want %d", idx, len(rep.Out), k*nwin)}
			default:
				if broken == nil && cmd.collect {
					for b := 0; b < k; b++ {
						for v := lo; v < hi; v++ {
							ys[b*n+v] = rep.Out[b*nwin+(v-lo)]
						}
					}
				}
				s.reports <- shardReport{from: idx}
			}
			return
		}
		switch {
		case repErr != nil:
			s.reports <- shardReport{from: idx, err: repErr}
		case len(rep.Msgs) != k || len(rep.Fins) != k:
			s.reports <- shardReport{from: idx, err: fmt.Errorf("local: worker %d round report carries %d/%d lanes, want %d", idx, len(rep.Msgs), len(rep.Fins), k)}
		default:
			fins := make([]int, k)
			for b, f := range rep.Fins {
				fins[b] = int(f)
			}
			s.reports <- shardReport{from: idx, msgs: rep.Msgs, fins: fins}
		}
	}
}
