package local

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// This file is the byte-stream ShardLink: the transport that makes a
// sharded run pay — and amortize — a real wire. A streamLink frames cut
// blocks with the codec in codec.go and ships them over any net.Conn
// (TCP in production and in the loopback factory below, net.Pipe in
// tests), with a per-operation read/write deadline so a vanished peer
// surfaces as ErrLinkTimeout instead of a hang. The in-process channel
// link in sharded.go remains the zero-copy fast path; this is the seam's
// real implementation.

// DialRetry dials addr, retrying with bounded exponential backoff until
// total has elapsed. Multi-host deployments constrain no start order —
// a worker may dial the orchestrator before its control listener is up,
// and a peer's data listener may not exist yet when the first link dial
// fires — so connection refusals inside the window are a race, not a
// failure. The last dial error is returned when the window closes.
func DialRetry(network, addr string, total time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(total)
	delay := 50 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("local: dial %s: gave up after %v: %w", addr, total, lastErr)
		}
		attempt := remain
		if attempt > 3*time.Second {
			attempt = 3 * time.Second
		}
		conn, err := net.DialTimeout(network, addr, attempt)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if time.Until(deadline) <= delay {
			return nil, fmt.Errorf("local: dial %s: gave up after %v: %w", addr, total, lastErr)
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// StreamLink wraps byte-stream connections as a ShardLink: Send frames
// the block onto send, Recv reads one frame from recv. Either conn may
// be nil for a unidirectional endpoint (a worker process holds the send
// half of one cut pair and the recv half of another); calling the
// missing direction errors. timeout bounds each operation via
// SetWriteDeadline/SetReadDeadline (0 = no deadline).
func StreamLink(send, recv net.Conn, timeout time.Duration) ShardLink {
	return &streamLink{send: send, recv: recv, timeout: timeout}
}

type streamLink struct {
	send    net.Conn
	recv    net.Conn
	timeout time.Duration
	fail    func() // optional: invoked once per failed operation
	wbuf    []byte
	rbuf    []byte
	rblk    CutBlock
}

// failed notes an operation failure with the owning transport (a partial
// frame or unread block desyncs the byte stream, so pooled links must be
// rebuilt) and passes the error through.
func (l *streamLink) failed(err error) error {
	if err != nil && l.fail != nil {
		l.fail()
	}
	return err
}

func (l *streamLink) Send(round int, blk CutBlock) error {
	if l.send == nil {
		return fmt.Errorf("local: stream link has no send connection")
	}
	buf, err := appendFrame(l.wbuf[:0], round, blk)
	l.wbuf = buf
	if err != nil {
		// Encoding failed before any byte hit the wire: the stream is
		// still in sync, no need to invalidate.
		return err
	}
	if l.timeout > 0 {
		if err := l.send.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
			return l.failed(err)
		}
	}
	if _, err := l.send.Write(buf); err != nil {
		return l.failed(fmt.Errorf("local: cut block send: %w", err))
	}
	return nil
}

func (l *streamLink) Recv(round int) (CutBlock, error) {
	if l.recv == nil {
		return CutBlock{}, fmt.Errorf("local: stream link has no recv connection")
	}
	if l.timeout > 0 {
		if err := l.recv.SetReadDeadline(time.Now().Add(l.timeout)); err != nil {
			return CutBlock{}, l.failed(err)
		}
	}
	scratch, err := readFrame(l.recv, round, &l.rblk, l.rbuf)
	l.rbuf = scratch
	if err != nil {
		return CutBlock{}, l.failed(err)
	}
	// The returned block's arrays are link-owned and valid until the next
	// Recv — the receiver installs (copies) them immediately, per the
	// ShardLink contract.
	return l.rblk, nil
}

// errLink is the ShardLink a factory hands out when it could not build a
// working connection: both operations report the construction error.
type errLink struct{ err error }

func (l errLink) Send(int, CutBlock) error   { return l.err }
func (l errLink) Recv(int) (CutBlock, error) { return CutBlock{}, l.err }

// TCPLoopback builds ShardLinks as real TCP connections over 127.0.0.1:
// every cut pair of a sharded run becomes a loopback socket carrying
// framed byte streams, so the full serialize → kernel → deserialize path
// of a multi-machine deployment runs inside one process. Links are
// cached per directed shard pair and reused across runs (rounds are
// strictly ordered, frames self-delimiting); Close tears every
// connection down.
//
// A TCPLoopback serves one Sharded at a time, like the Sharded itself:
// install it with sh.SetTransport(lb.Factory, lb.Close).
type TCPLoopback struct {
	// Timeout is the per-operation link deadline (DefaultLinkTimeout if
	// zero at first use).
	Timeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	links    map[[2]int]*streamLink
	conns    []net.Conn
	poisoned bool
}

// NewTCPLoopback returns a loopback transport with the given link
// deadline (0 selects DefaultLinkTimeout).
func NewTCPLoopback(timeout time.Duration) *TCPLoopback {
	return &TCPLoopback{Timeout: timeout}
}

// Factory is the LinkFactory: it returns the cached TCP link of the
// (from, to) cut pair, dialing a fresh loopback connection on first use.
// Connection failures surface through the returned link's operations,
// which is how a LinkFactory reports errors.
func (t *TCPLoopback) Factory(from, to int, cut []int32) ShardLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.Timeout == 0 {
		t.Timeout = DefaultLinkTimeout
	}
	if t.poisoned {
		// Some link of the previous run failed mid-stream (deadline,
		// abort, malformed frame): a stale or partial frame may be
		// sitting in any of the pooled sockets, so reusing them would
		// poison the next run with round-mismatch errors. Rebuild the
		// whole bundle from fresh connections.
		t.closeConnsLocked()
		t.poisoned = false
	}
	key := [2]int{from, to}
	if l, ok := t.links[key]; ok {
		return l
	}
	if t.ln == nil {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return errLink{fmt.Errorf("local: tcp loopback listen: %w", err)}
		}
		t.ln = ln
	}
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptC := make(chan accepted, 1)
	go func() {
		conn, err := t.ln.Accept()
		acceptC <- accepted{conn, err}
	}()
	client, err := net.DialTimeout("tcp", t.ln.Addr().String(), t.Timeout)
	if err != nil {
		return errLink{fmt.Errorf("local: tcp loopback dial: %w", err)}
	}
	server := <-acceptC
	if server.err != nil {
		client.Close()
		return errLink{fmt.Errorf("local: tcp loopback accept: %w", server.err)}
	}
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one small frame per round: latency over batching
	}
	if tc, ok := server.conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l := &streamLink{send: client, recv: server.conn, timeout: t.Timeout}
	l.fail = func() {
		t.mu.Lock()
		t.poisoned = true
		t.mu.Unlock()
	}
	if t.links == nil {
		t.links = make(map[[2]int]*streamLink)
	}
	t.links[key] = l
	t.conns = append(t.conns, client, server.conn)
	return l
}

// Close shuts the listener and every cached connection.
func (t *TCPLoopback) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	t.closeConnsLocked()
}

// closeConnsLocked drops the pooled connections and links (the listener
// survives, so the next Factory call rebuilds). Callers hold t.mu.
func (t *TCPLoopback) closeConnsLocked() {
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = nil
	t.links = nil
}

// UseTCPLoopback installs a loopback-TCP transport on the sharded
// executor (deadline from SetLinkTimeout) and returns it; Close on the
// Sharded tears it down.
func (s *Sharded) UseTCPLoopback() *TCPLoopback {
	lb := NewTCPLoopback(s.linkTimeout)
	s.SetTransport(lb.Factory, lb.Close)
	return lb
}
