package certify

import (
	"encoding/binary"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// AMOSScheme certifies membership in amos ("at most one selected",
// §2.3.1) with one-round verification: every node's certificate names the
// claimed selected node ("leader"); the verifier checks that all
// neighbors name the same leader and that a selected center is the named
// leader itself.
//
//   - Completeness: with s selected, certify L ≡ id(s) everywhere; with
//     none, any constant works.
//   - Soundness: on a connected graph, edge-agreement forces one global
//     value L*, and two selected nodes cannot both equal L*.
//
// amos is not in LD (experiment E9 defeats every deterministic decider),
// so this scheme witnesses LD ⊊ NLD — the §5 frontier.
type AMOSScheme struct{}

// Name implements Scheme.
func (AMOSScheme) Name() string { return "amos-leader-certificates" }

// Radius implements Scheme.
func (AMOSScheme) Radius() int { return 1 }

func encodeID(id int64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(id))
	return out
}

func decodeID(c []byte) (int64, bool) {
	if len(c) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(c)), true
}

// Prove implements Scheme.
func (AMOSScheme) Prove(di *lang.DecisionInstance) (Certificates, error) {
	inLang, err := (lang.AMOS{}).Contains(di.Config())
	if err != nil {
		return nil, err
	}
	if !inLang {
		return nil, ErrNotInLanguage
	}
	leader := int64(1) // arbitrary when nothing is selected
	for v := 0; v < di.G.N(); v++ {
		if sel, err := lang.DecodeSelected(di.Y[v]); err == nil && sel {
			leader = di.ID[v]
		}
	}
	certs := make(Certificates, di.G.N())
	for v := range certs {
		certs[v] = encodeID(leader)
	}
	return certs, nil
}

// Verify implements Scheme.
func (AMOSScheme) Verify(v *local.View, certs [][]byte) bool {
	own, ok := decodeID(certs[0])
	if !ok {
		return false
	}
	for _, u := range v.Ball.G.Neighbors(0) {
		nb, ok := decodeID(certs[u])
		if !ok || nb != own {
			return false
		}
	}
	if sel, err := lang.DecodeSelected(v.Y[0]); err == nil && sel {
		return own == v.IDs[0]
	}
	return true
}

// --- Spanning tree certification -----------------------------------------

// RootMark is the output of the root node in the spanning-tree language;
// all other nodes output the host port of their parent edge.
var RootMark = []byte{0xFE}

// EncodeParentPort encodes a tree output.
func EncodeParentPort(port int) []byte { return []byte{byte(port)} }

// decodeTreeOutput splits outputs into (isRoot, parentPort).
func decodeTreeOutput(y []byte) (isRoot bool, port int, ok bool) {
	if len(y) != 1 {
		return false, 0, false
	}
	if y[0] == RootMark[0] {
		return true, 0, true
	}
	return false, int(y[0]), true
}

// SpanningTree is the distributed language "the parent pointers form a
// spanning tree with a unique root". It is a global specification (a
// pointer cycle is locally invisible), the classic target of proof
// labeling schemes [20].
type SpanningTree struct{}

// Name implements lang.Language.
func (SpanningTree) Name() string { return "spanning-tree" }

// Contains implements lang.Language.
func (SpanningTree) Contains(c *lang.Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	n := c.G.N()
	parent := make([]int, n)
	root := -1
	for v := 0; v < n; v++ {
		isRoot, port, ok := decodeTreeOutput(c.Y[v])
		if !ok {
			return false, nil
		}
		if isRoot {
			if root != -1 {
				return false, nil // two roots
			}
			root = v
			parent[v] = -1
			continue
		}
		if port >= c.G.Degree(v) {
			return false, nil
		}
		parent[v] = c.G.Neighbor(v, port)
	}
	if root == -1 {
		return false, nil
	}
	// Every node must reach the root without cycling.
	for v := 0; v < n; v++ {
		seen := 0
		u := v
		for u != root {
			u = parent[u]
			seen++
			if seen > n {
				return false, nil // pointer cycle
			}
		}
	}
	return true, nil
}

// SpanningTreeScheme certifies SpanningTree with (rootID, depth)
// certificates: depth decreases by exactly one along parent pointers, so
// pointer cycles cannot be certified, and root-identity agreement across
// every edge pins a unique root.
type SpanningTreeScheme struct{}

// Name implements Scheme.
func (SpanningTreeScheme) Name() string { return "spanning-tree-certificates" }

// Radius implements Scheme.
func (SpanningTreeScheme) Radius() int { return 1 }

func encodeRootDepth(root int64, depth uint32) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint64(out[:8], uint64(root))
	binary.BigEndian.PutUint32(out[8:], depth)
	return out
}

func decodeRootDepth(c []byte) (root int64, depth uint32, ok bool) {
	if len(c) != 12 {
		return 0, 0, false
	}
	return int64(binary.BigEndian.Uint64(c[:8])), binary.BigEndian.Uint32(c[8:]), true
}

// Prove implements Scheme.
func (SpanningTreeScheme) Prove(di *lang.DecisionInstance) (Certificates, error) {
	inLang, err := (SpanningTree{}).Contains(di.Config())
	if err != nil {
		return nil, err
	}
	if !inLang {
		return nil, ErrNotInLanguage
	}
	n := di.G.N()
	parent := make([]int, n)
	root := -1
	for v := 0; v < n; v++ {
		isRoot, port, _ := decodeTreeOutput(di.Y[v])
		if isRoot {
			root = v
			parent[v] = -1
		} else {
			parent[v] = di.G.Neighbor(v, port)
		}
	}
	depth := make([]uint32, n)
	var depthOf func(v int) uint32
	memo := make([]bool, n)
	depthOf = func(v int) uint32 {
		if v == root {
			return 0
		}
		if memo[v] {
			return depth[v]
		}
		depth[v] = depthOf(parent[v]) + 1
		memo[v] = true
		return depth[v]
	}
	certs := make(Certificates, n)
	rootID := di.ID[root]
	for v := 0; v < n; v++ {
		certs[v] = encodeRootDepth(rootID, depthOf(v))
	}
	return certs, nil
}

// Verify implements Scheme.
func (SpanningTreeScheme) Verify(v *local.View, certs [][]byte) bool {
	root, depth, ok := decodeRootDepth(certs[0])
	if !ok {
		return false
	}
	// Root-identity agreement across every incident edge.
	for _, u := range v.Ball.G.Neighbors(0) {
		r, _, ok := decodeRootDepth(certs[u])
		if !ok || r != root {
			return false
		}
	}
	isRoot, port, ok := decodeTreeOutput(v.Y[0])
	if !ok {
		return false
	}
	if isRoot {
		return depth == 0 && root == v.IDs[0]
	}
	if depth == 0 {
		return false // only the root certifies depth zero
	}
	// The parent (through the claimed host port) must be one step closer.
	for j, hostPort := range v.Ball.Ports[0] {
		if hostPort == port {
			p := int(v.Ball.G.Neighbors(0)[j])
			_, pd, ok := decodeRootDepth(certs[p])
			return ok && pd == depth-1
		}
	}
	return false // claimed port does not exist
}

// BuildBFSTreeOutputs constructs a valid spanning-tree output for a
// connected instance: a BFS tree rooted at the given node, with outputs
// in the port encoding. Useful for tests and examples.
func BuildBFSTreeOutputs(di *lang.Instance, root int) ([][]byte, error) {
	n := di.G.N()
	dist := di.G.BFSFrom(root)
	y := make([][]byte, n)
	for v := 0; v < n; v++ {
		if v == root {
			y[v] = RootMark
			continue
		}
		if dist[v] < 0 {
			return nil, ErrNotInLanguage // disconnected
		}
		assigned := false
		for port, w := range di.G.Neighbors(v) {
			if dist[w] == dist[v]-1 {
				y[v] = EncodeParentPort(port)
				assigned = true
				break
			}
		}
		if !assigned {
			return nil, ErrNotInLanguage
		}
	}
	return y, nil
}
