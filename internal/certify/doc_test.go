package certify_test

import (
	"fmt"
	"log"

	"rlnc/internal/certify"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

// ExampleAMOSScheme certifies a legal amos configuration and shows that
// an illegal one cannot be certified even by the honest prover.
func ExampleAMOSScheme() {
	g := graph.Path(8)
	y := make([][]byte, 8)
	for v := range y {
		y[v] = lang.EncodeSelected(v == 3)
	}
	di := &lang.DecisionInstance{G: g, X: lang.EmptyInputs(8), Y: y, ID: ids.Consecutive(8)}
	ok, err := certify.Completeness(di, certify.AMOSScheme{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one selected, certified:", ok)

	y[6] = lang.EncodeSelected(true) // second selection: now illegal
	_, err = (certify.AMOSScheme{}).Prove(di)
	fmt.Println("two selected, prover refuses:", err != nil)
	// Output:
	// one selected, certified: true
	// two selected, prover refuses: true
}
