package certify

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

func selDI(t testing.TB, g *graph.Graph, selected ...int) *lang.DecisionInstance {
	t.Helper()
	y := make([][]byte, g.N())
	for v := range y {
		y[v] = lang.EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = lang.EncodeSelected(true)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
}

func TestAMOSSchemeCompleteness(t *testing.T) {
	graphs := []*graph.Graph{graph.Path(12), graph.Cycle(9), graph.Star(7), graph.CompleteTree(2, 3)}
	for gi, g := range graphs {
		for _, sel := range [][]int{{}, {0}, {g.N() - 1}, {g.N() / 2}} {
			di := selDI(t, g, sel...)
			ok, err := Completeness(di, AMOSScheme{})
			if err != nil {
				t.Fatalf("graph %d sel %v: %v", gi, sel, err)
			}
			if !ok {
				t.Errorf("graph %d sel %v: prover certificates rejected", gi, sel)
			}
		}
	}
}

func TestAMOSSchemeSoundness(t *testing.T) {
	// Two selected endpoints of a long path: amos is violated; no
	// certificate assignment may be accepted.
	g := graph.Path(20)
	di := selDI(t, g, 0, 19)
	fooling, err := SoundnessSearch(di, AMOSScheme{}, 3000, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fooling != nil {
		t.Fatalf("random certificates fooled the verifier: %v", fooling)
	}
	// The canonical attack: hand both leaders' ids as constants on their
	// own halves. The edge where the halves meet must reject.
	n := g.N()
	certs := make(Certificates, n)
	for v := 0; v < n; v++ {
		if v < n/2 {
			certs[v] = encodeID(di.ID[0])
		} else {
			certs[v] = encodeID(di.ID[n-1])
		}
	}
	if VerifyAll(di, AMOSScheme{}, certs) {
		t.Error("split-leader certificates accepted")
	}
	// A constant leader id also fails: one of the selected nodes is not it.
	for v := range certs {
		certs[v] = encodeID(di.ID[0])
	}
	if VerifyAll(di, AMOSScheme{}, certs) {
		t.Error("constant-leader certificates accepted despite two selected nodes")
	}
}

func TestAMOSSchemeRejectsGarbageCertificates(t *testing.T) {
	di := selDI(t, graph.Path(6), 2)
	certs := make(Certificates, 6)
	for v := range certs {
		certs[v] = []byte{1, 2} // wrong length
	}
	if VerifyAll(di, AMOSScheme{}, certs) {
		t.Error("malformed certificates accepted")
	}
}

func TestAMOSProveRejectsNonMembers(t *testing.T) {
	di := selDI(t, graph.Path(6), 1, 4)
	if _, err := (AMOSScheme{}).Prove(di); err == nil {
		t.Error("prover certified a non-member")
	}
}

func TestSpanningTreeLanguage(t *testing.T) {
	g := graph.Cycle(6)
	in := &lang.Instance{G: g, X: lang.EmptyInputs(6), ID: ids.Consecutive(6)}
	y, err := BuildBFSTreeOutputs(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	stLang := SpanningTree{}
	ok, err := stLang.Contains(&lang.Config{G: g, X: in.X, Y: y})
	if err != nil || !ok {
		t.Fatalf("BFS tree rejected: ok=%v err=%v", ok, err)
	}

	// Two roots: invalid.
	y2 := append([][]byte{}, y...)
	y2[3] = RootMark
	if ok, _ := stLang.Contains(&lang.Config{G: g, X: in.X, Y: y2}); ok {
		t.Error("two roots accepted")
	}

	// No root: invalid.
	y3 := append([][]byte{}, y...)
	y3[0] = EncodeParentPort(0)
	if ok, _ := stLang.Contains(&lang.Config{G: g, X: in.X, Y: y3}); ok {
		t.Error("rootless pointer structure accepted")
	}
}

func TestSpanningTreeCycleDetected(t *testing.T) {
	// On C4, make nodes 1,2,3 point around the cycle and node 0 the root,
	// but orient node 1's pointer to node 2, 2 to 3, and 3 back to 1:
	// a pointer cycle disconnected from the root.
	g := graph.Cycle(4) // ports: 0=succ, 1=pred
	y := [][]byte{
		RootMark,
		EncodeParentPort(0), // 1 -> 2
		EncodeParentPort(0), // 2 -> 3
		EncodeParentPort(1), // 3 -> 2?? port 1 of 3 is node 2
	}
	// 3's pred is 2: so 3 -> 2, and 2 -> 3: a 2-cycle.
	ok, err := (SpanningTree{}).Contains(&lang.Config{G: g, X: lang.EmptyInputs(4), Y: y})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pointer cycle accepted by the language")
	}
}

func TestSpanningTreeSchemeCompleteness(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(10), graph.CompleteTree(3, 3), graph.Grid(4, 4)} {
		in := &lang.Instance{G: g, X: lang.EmptyInputs(g.N()), ID: ids.RandomPerm(g.N(), 3)}
		y, err := BuildBFSTreeOutputs(in, g.N()/2)
		if err != nil {
			t.Fatal(err)
		}
		di := &lang.DecisionInstance{G: g, X: in.X, Y: y, ID: in.ID}
		ok, err := Completeness(di, SpanningTreeScheme{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%v: prover certificates rejected", g)
		}
	}
}

func TestSpanningTreeSchemeSoundnessOnCycle(t *testing.T) {
	// A pointer 2-cycle plus root cannot be certified: depth must drop
	// along pointers, which a cycle cannot sustain.
	g := graph.Cycle(4)
	y := [][]byte{
		RootMark,
		EncodeParentPort(0),
		EncodeParentPort(0),
		EncodeParentPort(1),
	}
	di := &lang.DecisionInstance{G: g, X: lang.EmptyInputs(4), Y: y, ID: ids.Consecutive(4)}
	fooling, err := SoundnessSearch(di, SpanningTreeScheme{}, 3000, 14, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fooling != nil {
		t.Fatal("random certificates fooled the spanning-tree verifier")
	}
	// Structured attack: consistent root id everywhere with fabricated
	// depths; the 2-cycle {2,3} cannot have both depths one apart.
	certs := make(Certificates, 4)
	certs[0] = encodeRootDepth(1, 0)
	certs[1] = encodeRootDepth(1, 3)
	certs[2] = encodeRootDepth(1, 2)
	certs[3] = encodeRootDepth(1, 1)
	if VerifyAll(di, SpanningTreeScheme{}, certs) {
		t.Error("fabricated depths certified a pointer cycle")
	}
}

func TestSpanningTreeSchemeSoundnessTwoRoots(t *testing.T) {
	g := graph.Path(8)
	// Roots at both ends, pointers meeting in the middle.
	y := make([][]byte, 8)
	y[0] = RootMark
	y[7] = RootMark
	for v := 1; v <= 3; v++ {
		y[v] = EncodeParentPort(0) // toward node 0
	}
	for v := 4; v <= 6; v++ {
		y[v] = EncodeParentPort(1) // toward node 7
	}
	di := &lang.DecisionInstance{G: g, X: lang.EmptyInputs(8), Y: y, ID: ids.Consecutive(8)}
	if ok, _ := (SpanningTree{}).Contains(di.Config()); ok {
		t.Fatal("fixture error: two-root forest in language")
	}
	fooling, err := SoundnessSearch(di, SpanningTreeScheme{}, 3000, 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	if fooling != nil {
		t.Fatal("random certificates certified a two-root forest")
	}
	// Root-id agreement attack: both halves claim their own root.
	certs := make(Certificates, 8)
	for v := 0; v <= 3; v++ {
		certs[v] = encodeRootDepth(di.ID[0], uint32(v))
	}
	for v := 4; v <= 7; v++ {
		certs[v] = encodeRootDepth(di.ID[7], uint32(7-v))
	}
	if VerifyAll(di, SpanningTreeScheme{}, certs) {
		t.Error("two-root certificates accepted: edge agreement broken")
	}
}

func TestBuildBFSTreeOutputsDisconnected(t *testing.T) {
	u := graph.DisjointUnion(graph.Path(3), graph.Path(3))
	in := &lang.Instance{G: u.G, X: lang.EmptyInputs(6), ID: ids.Consecutive(6)}
	if _, err := BuildBFSTreeOutputs(in, 0); err == nil {
		t.Error("disconnected graph certified as spanning tree")
	}
}

func TestVerifyAllShapeMismatch(t *testing.T) {
	di := selDI(t, graph.Path(4), 0)
	if VerifyAll(di, AMOSScheme{}, make(Certificates, 3)) {
		t.Error("certificate count mismatch accepted")
	}
}
