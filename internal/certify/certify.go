// Package certify implements local verification with certificates — the
// classes NLD and BPNLD that §5 of the paper singles out as candidates
// for extending Theorem 1 ("the classes of languages for which one can
// certify the membership ... thanks to local certificates. They are to LD
// and BPLD, respectively, what NP is to P").
//
// A proof-labeling scheme for a language L equips every node with a
// certificate string; a constant-radius verifier checks certificates
// locally such that
//
//   - completeness: for every configuration in L some certificate
//     assignment makes all nodes accept, and
//   - soundness: for configurations outside L, every certificate
//     assignment makes at least one node reject.
//
// The package provides the scheme interface, a checker that tests
// completeness directly and soundness empirically (adversarial
// certificate search), and two concrete schemes:
//
//   - AMOSScheme certifies the language amos — which is NOT in LD (see
//     experiment E9) but IS in NLD via distance certificates, exhibiting
//     LD ⊊ NLD exactly as the paper's discussion anticipates;
//   - SpanningTreeScheme certifies "the marked edges form a spanning
//     tree", the classic example of proof labeling [20].
//
// The §5 obstacle the paper describes — certificates "may change
// radically" when instances are glued — is directly visible here: the
// AMOS certificates are global distance counters, exactly the kind of
// information that gluing invalidates.
package certify

import (
	"encoding/binary"
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Certificates assigns one certificate string per node.
type Certificates [][]byte

// Scheme is a proof-labeling scheme: a prover (certificate constructor)
// plus a local verifier.
type Scheme interface {
	Name() string
	// Radius is the verifier's view radius.
	Radius() int
	// Prove produces certificates for a configuration believed to be in
	// the language; for configurations outside the language it may
	// return anything (soundness quantifies over all certificates).
	Prove(di *lang.DecisionInstance) (Certificates, error)
	// Verify is the per-node verdict; the certificate of ball-local node
	// i is certs[i] (indexed like the view).
	Verify(v *local.View, certs [][]byte) bool
}

// VerifyAll runs the verifier at every node with the given certificates
// and returns the conjunction (acceptance, §2.2.1 style).
func VerifyAll(di *lang.DecisionInstance, s Scheme, certs Certificates) bool {
	if len(certs) != di.G.N() {
		return false
	}
	n := di.G.N()
	ok := true
	verdicts := make([]bool, n)
	local.ParallelFor(n, func(v int) {
		view := local.DecisionView(di, v, s.Radius(), nil)
		ballCerts := make([][]byte, view.Ball.Size())
		for i, u := range view.Ball.Nodes {
			ballCerts[i] = certs[u]
		}
		verdicts[v] = s.Verify(view, ballCerts)
	})
	for _, okV := range verdicts {
		if !okV {
			ok = false
		}
	}
	return ok
}

// Completeness checks that the prover's certificates are accepted on a
// configuration known to be in the language.
func Completeness(di *lang.DecisionInstance, s Scheme) (bool, error) {
	certs, err := s.Prove(di)
	if err != nil {
		return false, err
	}
	return VerifyAll(di, s, certs), nil
}

// SoundnessSearch attacks a configuration OUTSIDE the language with
// `attempts` random certificate assignments (plus the prover's own
// output) of up to maxLen bytes per node, reporting the first assignment
// that fools the verifier, if any. A nil return means the verifier
// survived the search — empirical evidence of soundness, not a proof.
func SoundnessSearch(di *lang.DecisionInstance, s Scheme, attempts, maxLen int, seed uint64) (Certificates, error) {
	// The prover's own certificates must not fool the verifier either.
	if certs, err := s.Prove(di); err == nil {
		if VerifyAll(di, s, certs) {
			return certs, nil
		}
	}
	src := localrand.NewSource(seed)
	n := di.G.N()
	for a := 0; a < attempts; a++ {
		certs := make(Certificates, n)
		for v := 0; v < n; v++ {
			l := src.Intn(maxLen + 1)
			c := make([]byte, l)
			for i := range c {
				c[i] = byte(src.Intn(256))
			}
			certs[v] = c
		}
		if VerifyAll(di, s, certs) {
			return certs, nil
		}
	}
	return nil, nil
}

// Helpers shared by the schemes: certificates carry small unsigned
// integers in fixed 4-byte big-endian form.
func encodeU32(x uint32) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, x)
	return out
}

func decodeU32(c []byte) (uint32, bool) {
	if len(c) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(c), true
}

// ErrNotInLanguage is returned by provers asked to certify a
// configuration outside their language.
var ErrNotInLanguage = fmt.Errorf("certify: configuration not in the language")
