package relax

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
)

func TestViolationsAccessors(t *testing.T) {
	l := lang.ProperColoring(3)
	c := conflictedRing(36, 2) // 4 bad balls
	if got := (&EpsSlack{L: l, Eps: 0.5}).Violations(c); got != 4 {
		t.Errorf("EpsSlack.Violations = %d, want 4", got)
	}
	if got := (&PolyBudget{L: l, C: 0.5}).Violations(c); got != 4 {
		t.Errorf("PolyBudget.Violations = %d, want 4", got)
	}
}

func TestRelaxationsRejectMalformedConfigs(t *testing.T) {
	l := lang.ProperColoring(3)
	bad := &lang.Config{G: graph.Path(3), X: lang.EmptyInputs(2), Y: lang.EmptyInputs(3)}
	if _, err := (&FResilient{L: l, F: 1}).Contains(bad); err == nil {
		t.Error("FResilient accepted malformed config")
	}
	if _, err := (&EpsSlack{L: l, Eps: 0.1}).Contains(bad); err == nil {
		t.Error("EpsSlack accepted malformed config")
	}
	if _, err := (&PolyBudget{L: l, C: 0.5}).Contains(bad); err == nil {
		t.Error("PolyBudget accepted malformed config")
	}
}

func TestEpsSlackExtremes(t *testing.T) {
	l := lang.ProperColoring(3)
	mono := conflictedRing(36, 0)
	// Every config within budget at ε = 1.
	full := &EpsSlack{L: l, Eps: 1.0}
	if ok, _ := full.Contains(mono); !ok {
		t.Error("ε=1 rejected a proper coloring")
	}
	allBad := &lang.Config{G: graph.Cycle(36), X: lang.EmptyInputs(36), Y: monoColors(36)}
	if ok, _ := full.Contains(allBad); !ok {
		t.Error("ε=1 must accept even the monochromatic coloring")
	}
	// ε = 0 equals the base language.
	zero := &EpsSlack{L: l, Eps: 0}
	if ok, _ := zero.Contains(allBad); ok {
		t.Error("ε=0 accepted a monochromatic coloring")
	}
	if ok, _ := zero.Contains(mono); !ok {
		t.Error("ε=0 rejected a proper coloring")
	}
}

func monoColors(n int) [][]byte {
	y := make([][]byte, n)
	for v := range y {
		y[v] = lang.EncodeColor(1)
	}
	return y
}

func TestPolyBudgetGrowth(t *testing.T) {
	l := lang.ProperColoring(3)
	r := &PolyBudget{L: l, C: 0.5}
	prev := 0
	for _, n := range []int{16, 64, 256, 1024} {
		b := r.Budget(n)
		if b < prev {
			t.Errorf("budget decreased: %d -> %d at n=%d", prev, b, n)
		}
		if b >= n {
			t.Errorf("sublinear budget %d >= n %d", b, n)
		}
		prev = b
	}
}
