package relax

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/lang"
)

// conflictedRing returns a 3-coloring of C_n with exactly `pairs` adjacent
// equal-color pairs planted on disjoint edges, so the number of bad balls
// is exactly 2*pairs. n must be a multiple of 6.
func conflictedRing(n, pairs int) *lang.Config {
	g := graph.Cycle(n)
	y := make([][]byte, n)
	for v := 0; v < n; v++ {
		y[v] = lang.EncodeColor(v % 3) // proper on multiples of 3
	}
	for i := 0; i < pairs; i++ {
		// Overwrite node 6i+1 with the color of node 6i, creating one
		// conflicted edge; spacing 6 keeps conflicts disjoint.
		y[6*i+1] = lang.EncodeColor((6 * i) % 3)
	}
	return &lang.Config{G: g, X: lang.EmptyInputs(n), Y: y}
}

func TestConflictedRingHelper(t *testing.T) {
	l := lang.ProperColoring(3)
	for pairs := 0; pairs <= 3; pairs++ {
		c := conflictedRing(36, pairs)
		if got := l.CountBadBalls(c); got != 2*pairs {
			t.Fatalf("pairs=%d: bad balls = %d, want %d", pairs, got, 2*pairs)
		}
	}
}

func TestFResilientThreshold(t *testing.T) {
	l := lang.ProperColoring(3)
	c := conflictedRing(36, 2) // 4 bad balls
	for _, tc := range []struct {
		f    int
		want bool
	}{
		{0, false}, {3, false}, {4, true}, {10, true},
	} {
		r := &FResilient{L: l, F: tc.f}
		got, err := r.Contains(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("f=%d: Contains = %v, want %v", tc.f, got, tc.want)
		}
	}
	r := &FResilient{L: l, F: 1}
	if r.Violations(c) != 4 {
		t.Errorf("violations = %d, want 4", r.Violations(c))
	}
}

func TestFResilientZeroEqualsBase(t *testing.T) {
	l := lang.ProperColoring(3)
	r := &FResilient{L: l, F: 0}
	good := conflictedRing(36, 0)
	bad := conflictedRing(36, 1)
	if ok, _ := r.Contains(good); !ok {
		t.Error("proper coloring rejected at f=0")
	}
	if ok, _ := r.Contains(bad); ok {
		t.Error("improper coloring accepted at f=0")
	}
	// f=0 must agree with the base language.
	if okBase, _ := l.Contains(bad); okBase {
		t.Error("base language accepted improper coloring")
	}
}

func TestEpsSlackBudget(t *testing.T) {
	l := lang.ProperColoring(3)
	r := &EpsSlack{L: l, Eps: 0.1}
	if b := r.Budget(36); b != 3 {
		t.Errorf("budget(36) = %d, want 3", b)
	}
	c3 := conflictedRing(36, 1) // 2 bad balls <= 3
	if ok, _ := r.Contains(c3); !ok {
		t.Error("2 violations within budget 3 rejected")
	}
	c4 := conflictedRing(36, 2) // 4 bad balls > 3
	if ok, _ := r.Contains(c4); ok {
		t.Error("4 violations beyond budget 3 accepted")
	}
}

func TestEpsSlackScalesWithN(t *testing.T) {
	l := lang.ProperColoring(3)
	r := &EpsSlack{L: l, Eps: 0.2}
	// 4 bad balls: fails for n=18 (budget 3), passes for n=36 (budget 7).
	small := conflictedRing(18, 2)
	big := conflictedRing(36, 2)
	if ok, _ := r.Contains(small); ok {
		t.Error("slack accepted beyond budget on small ring")
	}
	if ok, _ := r.Contains(big); !ok {
		t.Error("slack rejected within budget on big ring")
	}
}

func TestPolyBudget(t *testing.T) {
	l := lang.ProperColoring(3)
	r := &PolyBudget{L: l, C: 0.5}
	if b := r.Budget(36); b != 6 {
		t.Errorf("budget(36) = %d, want 6", b)
	}
	ok6, _ := r.Contains(conflictedRing(36, 3)) // 6 bad <= 6
	ok8, _ := r.Contains(conflictedRing(36, 4)) // 8 bad > 6
	if !ok6 || ok8 {
		t.Errorf("poly budget thresholds wrong: ok6=%v ok8=%v", ok6, ok8)
	}
}

func TestNames(t *testing.T) {
	l := lang.ProperColoring(3)
	if (&FResilient{L: l, F: 2}).Name() == "" ||
		(&EpsSlack{L: l, Eps: 0.5}).Name() == "" ||
		(&PolyBudget{L: l, C: 0.5}).Name() == "" {
		t.Error("relaxation names must be non-empty")
	}
}
