// Package relax implements the two relaxations of LCL languages studied in
// the paper (§1.1 and §4):
//
//   - the ε-slack relaxation tolerates that an ε-fraction of the nodes
//     output values violating the specification; randomization helps for
//     these (a trivial zero-round algorithm solves relaxed coloring);
//   - the f-resilient relaxation L_f (Definition 1) tolerates at most f
//     bad balls in total; Corollary 1 shows L_f ∈ BPLD and, via Theorem 1,
//     that randomization does not help for constructing L_f.
//
// Both relaxations are themselves distributed languages; neither is
// locally checkable in general, which is the paper's entire motivation.
package relax

import (
	"fmt"
	"math"

	"rlnc/internal/lang"
)

// FResilient is the f-resilient relaxation L_f of an LCL language L
// (Definition 1): configurations with at most f balls in Bad(L).
type FResilient struct {
	L *lang.LCL
	F int
}

// Name implements lang.Language.
func (r *FResilient) Name() string {
	return fmt.Sprintf("%s[f-resilient,f=%d]", r.L.Name(), r.F)
}

// Contains implements lang.Language.
func (r *FResilient) Contains(c *lang.Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return r.L.CountBadBalls(c) <= r.F, nil
}

// Violations returns the number of bad balls, the quantity bounded by f.
func (r *FResilient) Violations(c *lang.Config) int {
	return r.L.CountBadBalls(c)
}

// EpsSlack is the ε-slack relaxation of an LCL language: configurations
// where at most ⌊ε·n⌋ nodes center a bad ball.
type EpsSlack struct {
	L   *lang.LCL
	Eps float64
}

// Name implements lang.Language.
func (r *EpsSlack) Name() string {
	return fmt.Sprintf("%s[eps-slack,eps=%g]", r.L.Name(), r.Eps)
}

// Budget returns the violation budget ⌊ε·n⌋ for an n-node graph.
func (r *EpsSlack) Budget(n int) int {
	return int(math.Floor(r.Eps * float64(n)))
}

// Contains implements lang.Language.
func (r *EpsSlack) Contains(c *lang.Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return r.L.CountBadBalls(c) <= r.Budget(c.G.N()), nil
}

// Violations returns the number of bad balls.
func (r *EpsSlack) Violations(c *lang.Config) int {
	return r.L.CountBadBalls(c)
}

// PolyBudget is the intermediate relaxation probed by the paper's open
// problems (§5): at most ⌈n^c⌉ nodes may center bad balls, for c < 1.
type PolyBudget struct {
	L *lang.LCL
	C float64
}

// Name implements lang.Language.
func (r *PolyBudget) Name() string {
	return fmt.Sprintf("%s[poly-slack,c=%g]", r.L.Name(), r.C)
}

// Budget returns ⌈n^c⌉ for an n-node graph.
func (r *PolyBudget) Budget(n int) int {
	return int(math.Ceil(math.Pow(float64(n), r.C)))
}

// Contains implements lang.Language.
func (r *PolyBudget) Contains(c *lang.Config) (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	return r.L.CountBadBalls(c) <= r.Budget(c.G.N()), nil
}

// Violations returns the number of bad balls.
func (r *PolyBudget) Violations(c *lang.Config) int {
	return r.L.CountBadBalls(c)
}
