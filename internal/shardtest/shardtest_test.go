package shardtest

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// TestShardEquivalenceMatrix is the headline differential: the seven
// message algorithms against the six graph families, each through the
// full shard-count and cut-placement sweep. Degree-generic algorithms
// (retry coloring, Luby MIS, edge matching, Moser-Tardos) run on every
// family; the cycle-shaped ones (Cole-Vishkin, the Linial reduction,
// greedy MIS from a coloring) run where their preconditions hold. The
// full-information adapter rides along to cover the by-reference cut
// path.
func TestShardEquivalenceMatrix(t *testing.T) {
	seed := uint64(1009)
	for name, g := range Families(t) {
		in := Instance(t, g)
		generic := []Case{
			{Name: name, Algo: construct.RetryMessage(3, 4), In: in, Random: true},
			{Name: name, Algo: construct.LubyMIS{}, In: in, Random: true},
			{Name: name, Algo: construct.EdgeLubyMatching{}, In: in, Random: true},
			{Name: name, Algo: construct.MoserTardosLLL{Phases: 2}, In: in, Random: true},
		}
		for _, c := range generic {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.Algo.Name()), func(t *testing.T) {
				Equivalence(t, c, seed, 2)
			})
			seed++
		}
	}

	// Cycle-shaped algorithms: oriented-ring 3-coloring, the Linial
	// reduction at degree 2, and greedy MIS from a proper coloring.
	ring := Instance(t, graph.Cycle(24))
	cycleCases := []Case{
		{Name: "cycle", Algo: construct.ColeVishkin{MaxIDBits: 8}, In: ring},
		{Name: "cycle", Algo: construct.LinialReduction{MaxDegree: 2, MaxIDBits: 8, TargetColors: 3}, In: ring},
		{Name: "cycle", Algo: construct.GreedyMISFromColoring{Q: 3}, In: ColoredInstance(t, 24, 3)},
	}
	for _, c := range cycleCases {
		c := c
		t.Run(fmt.Sprintf("cycle/%s", c.Algo.Name()), func(t *testing.T) {
			Equivalence(t, c, seed, 2)
		})
		seed++
	}
}

// TestShardEquivalenceMatrixTCP reruns the seven-algorithm × six-family
// differential with the cut exchange on real loopback TCP sockets: the
// framed CutBlock codec, per-link deadlines, and the byte-stream
// transport must reproduce the unsharded engine bit for bit everywhere
// the in-process links do. This is the CI gate of the shard-transport
// job.
func TestShardEquivalenceMatrixTCP(t *testing.T) {
	seed := uint64(2003)
	for name, g := range Families(t) {
		in := Instance(t, g)
		generic := []Case{
			{Name: name, Algo: construct.RetryMessage(3, 4), In: in, Random: true},
			{Name: name, Algo: construct.LubyMIS{}, In: in, Random: true},
			{Name: name, Algo: construct.EdgeLubyMatching{}, In: in, Random: true},
			{Name: name, Algo: construct.MoserTardosLLL{Phases: 2}, In: in, Random: true},
		}
		for _, c := range generic {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.Algo.Name()), func(t *testing.T) {
				EquivalenceTransport(t, c, seed, 2, TCPTransport)
			})
			seed++
		}
	}
	ring := Instance(t, graph.Cycle(24))
	cycleCases := []Case{
		{Name: "cycle", Algo: construct.ColeVishkin{MaxIDBits: 8}, In: ring},
		{Name: "cycle", Algo: construct.LinialReduction{MaxDegree: 2, MaxIDBits: 8, TargetColors: 3}, In: ring},
		{Name: "cycle", Algo: construct.GreedyMISFromColoring{Q: 3}, In: ColoredInstance(t, 24, 3)},
	}
	for _, c := range cycleCases {
		c := c
		t.Run(fmt.Sprintf("cycle/%s", c.Algo.Name()), func(t *testing.T) {
			EquivalenceTransport(t, c, seed, 2, TCPTransport)
		})
		seed++
	}
}

// TestShardSlabCompaction is the memory gate of the compacted-halo
// layout: at 4 balanced shards, the average per-shard wire-slab
// footprint must be at least 40% below the full-size global-slot slabs
// every shard used to hold — on every family of the harness fixture.
// (Individual shards may come close to the full size — a star's hub
// shard reads nearly every slot — but the per-machine average is what a
// deployment provisions for.)
func TestShardSlabCompaction(t *testing.T) {
	algo := construct.RetryMessage(3, 4)
	for name, g := range Families(t) {
		t.Run(name, func(t *testing.T) {
			plan := local.MustPlan(g)
			sh, err := plan.NewSharded(3, 4)
			if err != nil {
				t.Fatal(err)
			}
			full := sh.Unsharded().SlabBytesFor(algo)
			per := sh.ShardSlabBytes(algo)
			total := 0
			for i, b := range per {
				if b > full {
					t.Errorf("shard %d slab %d B exceeds the uncompacted %d B", i, b, full)
				}
				total += b
			}
			uncompacted := len(per) * full
			t.Logf("%s: per-shard %v B, uncompacted %d B/shard (%.0f%% saved on average)",
				name, per, full, 100*(1-float64(total)/float64(uncompacted)))
			if total*100 > uncompacted*60 {
				t.Errorf("compaction saves only %.0f%%, want >= 40%%: per-shard %v vs full %d",
					100*(1-float64(total)/float64(uncompacted)), per, full)
			}
		})
	}
}

// TestShardEquivalenceFullInfo covers the ref-slab cut path: the
// full-information adapter's gossip records cross shard boundaries by
// reference through CutBlock.Refs.
func TestShardEquivalenceFullInfo(t *testing.T) {
	in := Instance(t, graph.Cycle(16))
	algo := local.FullInfo(local.ViewFunc{
		AlgoName: "ball-size", R: 2,
		F: func(v *local.View) []byte { return []byte{byte(v.Ball.Size())} },
	})
	Equivalence(t, Case{Name: "cycle", Algo: algo, In: in}, 7001, 2)
}

// TestShardEquivalenceQuickFuzz is the testing/quick sweep over random
// partitions of Offsets: random connected graphs, random shard counts,
// random contiguous cut placements — every draw must reproduce the
// unsharded result bit for bit.
func TestShardEquivalenceQuickFuzz(t *testing.T) {
	f := func(seed uint64, rawN, rawShards, rawCuts uint8) bool {
		n := int(rawN%24) + 4
		g, err := graph.ConnectedGNP(n, 0.25, seed)
		if err != nil {
			return true
		}
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.RandomPerm(n, seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seed ^ uint64(rawCuts))))
		shards := int(rawShards)%n + 1
		part := graph.RandomPartition(n, shards, rng)

		plan := local.MustPlan(g)
		bt := plan.NewBatch(2)
		sh, err := plan.NewShardedPartition(2, part)
		if err != nil {
			return false
		}
		space := localrand.NewTapeSpace(seed)
		draws := []localrand.Draw{space.Draw(0), space.Draw(1)}
		algo := construct.RetryMessage(3, 3)
		want, err := bt.Run(in, algo, draws, local.RunOptions{})
		if err != nil {
			return false
		}
		got, err := sh.Run(in, algo, draws, local.RunOptions{})
		if err != nil {
			return false
		}
		for b := range draws {
			if want[b].Stats != got[b].Stats {
				return false
			}
			for v := range want[b].Y {
				if string(want[b].Y[v]) != string(got[b].Y[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestShardedStatsNonTrivial guards the harness itself: a sharded run
// must actually deliver messages and execute rounds (a trivially empty
// Result matching another trivially empty Result would vacuously pass
// the matrix).
func TestShardedStatsNonTrivial(t *testing.T) {
	in := Instance(t, graph.Cycle(12))
	plan := local.MustPlan(in.G)
	sh, err := plan.NewSharded(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	draws := []localrand.Draw{localrand.NewTapeSpace(3).Draw(0)}
	rs, err := sh.Run(in, construct.LubyMIS{}, draws, local.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Stats.Rounds == 0 || rs[0].Stats.Messages == 0 {
		t.Fatalf("sharded run reported trivial Stats %+v", rs[0].Stats)
	}
	selected := 0
	for _, y := range rs[0].Y {
		sel, err := lang.DecodeSelected(y)
		if err != nil {
			t.Fatal(err)
		}
		if sel {
			selected++
		}
	}
	if selected == 0 {
		t.Error("sharded Luby MIS selected nothing")
	}
}
