package shardtest

// The multi-host half of the harness: the differential rerun with every
// shard hosted by a separate OS process on its own port, and the
// fault-tolerance acceptance test — kill a worker process mid-run and
// require the Monte-Carlo sweep to complete with byte-identical results
// through the scheduler's requeue.
//
// Worker processes are this test binary re-exec'd: TestMain dispatches
// on SHARDTEST_WORKER before any test runs, so a "worker host" is one
// more copy of the binary dialing the orchestrator's control listener —
// exactly the `rlnc shard-worker -connect` deployment shape, scaled
// down to loopback.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
)

const (
	workerEnv   = "SHARDTEST_WORKER"    // control address to dial; presence selects worker mode
	dieAfterEnv = "SHARDTEST_DIE_AFTER" // optional: round commands before the chaos exit
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(workerEnv); addr != "" {
		os.Exit(serveWorker(addr))
	}
	os.Exit(m.Run())
}

// serveWorker is the re-exec'd worker-process body: dial the control
// listener (with retry — start order is free) and serve shard jobs
// until the orchestrator hangs up. The heartbeat is cranked down so the
// kill test detects death fast.
func serveWorker(addr string) int {
	dieAfter, _ := strconv.Atoi(os.Getenv(dieAfterEnv))
	ctrl, err := local.DialRetry("tcp", addr, 30*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardtest worker: %v\n", err)
		return 1
	}
	defer ctrl.Close()
	if err := local.ServeShardOpts(ctrl, local.ServeOptions{
		Listen:         "127.0.0.1:0",
		Beat:           100 * time.Millisecond,
		DieAfterRounds: dieAfter,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "shardtest worker: %v\n", err)
		return 1
	}
	return 0
}

// startProcessPool re-execs this test binary as n shard-worker OS
// processes — each with its own data listener on its own ephemeral
// port — and registers them into one pool. dieAfter maps a worker index
// to the number of round commands it executes before dying abruptly.
// Workers are spawned and accepted one at a time so the index mapping
// is deterministic.
func startProcessPool(t *testing.T, n int, dieAfter map[int]int) *local.WorkerPool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var procs []*exec.Cmd
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	})
	workers := make([]*local.WorkerConn, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerEnv+"="+ln.Addr().String())
		if d := dieAfter[i]; d > 0 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", dieAfterEnv, d))
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		if err := ln.(*net.TCPListener).SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
			t.Fatal(err)
		}
		conn, err := ln.Accept()
		if err != nil {
			t.Fatalf("worker %d registration: %v", i, err)
		}
		if workers[i], err = local.NewWorkerConn(conn, 30*time.Second); err != nil {
			t.Fatalf("worker %d handshake: %v", i, err)
		}
	}
	pool := local.NewWorkerPool(workers)
	t.Cleanup(pool.Close) // runs before the kill cleanup: orderly shutdown first
	return pool
}

// TestMultiHostProcessEquivalence reruns the shard differential with
// every shard in a separate OS process on its own port: remote sharded
// runs must be byte-identical to the unsharded Batch, across graphs,
// algorithms, and back-to-back pool reuse.
func TestMultiHostProcessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness in -short mode")
	}
	pool := startProcessPool(t, 3, nil)
	if pool.Live() != 3 {
		t.Fatalf("pool came up with %d live workers, want 3", pool.Live())
	}
	const width = 3
	seed := uint64(6007)
	for _, g := range []*graph.Graph{graph.Cycle(24), graph.Grid(5, 5)} {
		in := Instance(t, g)
		plan := local.MustPlan(g)
		bt := plan.NewBatch(width)
		for _, algo := range []local.MessageAlgorithm{construct.RetryMessage(3, 4), construct.LubyMIS{}} {
			sh, err := plan.NewShardedRemote(width, pool)
			if err != nil {
				t.Fatal(err)
			}
			space := localrand.NewTapeSpace(seed)
			draws := []localrand.Draw{space.Draw(0), space.Draw(1), space.Draw(2)}
			want, err := bt.Run(in, algo, draws, local.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Run(in, algo, draws, local.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for b := range draws {
				expectSame(t, fmt.Sprintf("%s on %s lane %d", algo.Name(), g, b), want[b], got[b])
			}
			sh.Close()
			seed++
		}
	}
}

// remoteOrLocal is the worker state of the kill test: the remote
// sharded executor when the process pool is free, the local batch
// otherwise — the same degradation ladder internal/exp's trial batches
// ride. Both rungs are byte-identical by the sharding contract.
type remoteOrLocal struct {
	sh *local.Sharded
	bt *local.Batch
}

func (s *remoteOrLocal) Close() error {
	if s.sh != nil {
		return s.sh.Close()
	}
	return nil
}

// TestMultiHostWorkerKillRequeue is the acceptance test of the requeue
// contract, library-level: two worker processes host the shards, one
// kills itself mid-run, and the Monte-Carlo sweep must (1) complete,
// (2) produce exactly the estimate of a purely local static reference,
// (3) have rebuilt the executor from the surviving worker — no trial
// lost, none double-counted, no fabricated outcomes.
func TestMultiHostWorkerKillRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness in -short mode")
	}
	// One mc worker, so every chunk flows through the remote executor and
	// the death deterministically fails an in-flight chunk.
	oldProcs := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(oldProcs)

	pool := startProcessPool(t, 2, map[int]int{0: 5})
	g := graph.Cycle(24)
	in := Instance(t, g)
	plan := local.MustPlan(g)
	algo := construct.RetryMessage(3, 4)
	space := localrand.NewTapeSpace(8011)
	const trials, width = 12, 3

	mkDraws := func(lo, hi int) []localrand.Draw {
		draws := make([]localrand.Draw, hi-lo)
		for i := range draws {
			draws[i] = space.Draw(uint64(lo + i))
		}
		return draws
	}
	outcome := func(r *local.Result) bool {
		sum := 0
		for _, y := range r.Y {
			for _, b := range y {
				sum += int(b)
			}
		}
		return sum%2 == 1
	}

	// Static local reference: per-trial outcomes with no sharding and no
	// stealing — the ground truth the stolen remote sweep must reproduce.
	ref := plan.NewBatch(width)
	succ := 0
	for lo := 0; lo < trials; lo += width {
		hi := lo + width
		if hi > trials {
			hi = trials
		}
		rs, err := ref.Run(in, algo, mkDraws(lo, hi), local.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if outcome(r) {
				succ++
			}
		}
	}

	var built, remoteBuilt atomic.Int32
	est := mc.Executor[*remoteOrLocal]{
		Trials: trials,
		Batch:  width,
		Shards: 2,
		NewState: func() *remoteOrLocal {
			built.Add(1)
			if sh, err := plan.NewShardedRemote(width, pool); err == nil {
				sh.SetLinkTimeout(2 * time.Second) // bound the survivor's wait on its dead peer
				remoteBuilt.Add(1)
				return &remoteOrLocal{sh: sh}
			}
			return &remoteOrLocal{bt: plan.NewBatch(width)}
		},
	}.Run(func(s *remoteOrLocal, lo, hi int, out []bool) {
		draws := mkDraws(lo, hi)
		var rs []*local.Result
		var err error
		if s.sh != nil {
			rs, err = s.sh.Run(in, algo, draws, local.RunOptions{})
		} else {
			rs, err = s.bt.Run(in, algo, draws, local.RunOptions{})
		}
		if err != nil {
			// Substrate failure (the killed worker): hand the chunk back to
			// the scheduler instead of fabricating outcomes.
			mc.Fail(err)
		}
		for i, r := range rs {
			out[i] = outcome(r)
		}
	})

	if est.Successes != succ || est.Trials != trials {
		t.Fatalf("requeued sweep estimated %d/%d, static local reference %d/%d",
			est.Successes, est.Trials, succ, trials)
	}
	if live := pool.Live(); live != 1 {
		t.Fatalf("pool reports %d live workers after the kill, want 1", live)
	}
	if built.Load() < 2 || remoteBuilt.Load() < 2 {
		t.Fatalf("states built %d (remote %d), want >= 2 of each: the failed chunk must have been retried on a rebuilt executor",
			built.Load(), remoteBuilt.Load())
	}
}
