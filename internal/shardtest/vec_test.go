package shardtest

import (
	"fmt"
	"testing"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// This file is the vec-vs-scalar differential matrix of the
// lane-vectorized stepping seam on the real construction algorithms:
// every migrated VecAlgorithm (Luby MIS, retry coloring, Cole–Vishkin)
// run through its SoA vector path must reproduce the ScalarOnly
// reference — the same algorithm stripped of the vector extension —
// byte for byte, outputs and Stats, across the six graph families,
// batch widths from one ragged lane to the full vector, the channel and
// loopback-TCP sharded transports, and zero and lossy fault plans.

// vecCase is one (algorithm, plans) row of the matrix. CV is determin-
// istic (nil draws) and protocol-synchronous, so it runs only on the
// cycle under delivery-preserving plans; the randomized algorithms run
// everywhere, and retry coloring — the fault-tolerant one — also under
// the lossy faultPlanFor plan.
type vecCase struct {
	algo   local.MessageAlgorithm
	random bool
	plans  []string // subset of "none", "zero", "faulty"
}

func vecPlans(t testing.TB, g *graph.Graph) map[string]*local.FaultPlan {
	return map[string]*local.FaultPlan{
		"none":   nil,
		"zero":   {Seed: 123},
		"faulty": faultPlanFor(t, g),
	}
}

// runVecPair runs k lanes of the algorithm on both sides of the
// differential and asserts lane-byte-identical Results.
func runVecPair(t *testing.T, label string, c vecCase, in *lang.Instance, fp *local.FaultPlan,
	run func(algo local.MessageAlgorithm, draws []localrand.Draw, opts local.RunOptions) ([]*local.Result, error),
	ref *local.Batch, draws []localrand.Draw, k int) {
	t.Helper()
	opts := local.RunOptions{Fault: fp}
	var want, got []*local.Result
	var wantErr, gotErr error
	if c.random {
		want, wantErr = ref.Run(in, local.ScalarOnly(c.algo), draws[:k], opts)
		got, gotErr = run(c.algo, draws[:k], opts)
	} else {
		ins := make([]*lang.Instance, k)
		for i := range ins {
			ins[i] = in
		}
		want, wantErr = ref.RunInstances(ins, local.ScalarOnly(c.algo), nil, opts)
		got, gotErr = run(c.algo, nil, opts)
	}
	if (wantErr == nil) != (gotErr == nil) ||
		(wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("%s: vec error %v, scalar %v", label, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	for b := 0; b < k; b++ {
		expectSame(t, fmt.Sprintf("%s lane %d", label, b), want[b], got[b])
	}
}

// TestVecMatchesScalarMatrix is the batched half of the matrix: one
// width-5 batch stepping the vector path against a ScalarOnly batch of
// the same width, at lane counts {1, 3, 4, 5} (ragged tails included)
// under every plan the algorithm tolerates, back to back on reused
// executors.
func TestVecMatchesScalarMatrix(t *testing.T) {
	const B = 5
	seed := uint64(7001)
	for name, g := range Families(t) {
		in := Instance(t, g)
		plans := vecPlans(t, g)
		cases := []vecCase{
			{construct.RetryMessage(3, 4), true, []string{"none", "zero", "faulty"}},
			{construct.LubyMIS{}, true, []string{"none", "zero"}},
		}
		for _, c := range cases {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.algo.Name()), func(t *testing.T) {
				plan := local.MustPlan(g)
				vecBt := plan.NewBatch(B)
				sclBt := plan.NewBatch(B)
				space := localrand.NewTapeSpace(seed)
				lo := 0
				for _, k := range []int{1, 3, B - 1, B} {
					draws := make([]localrand.Draw, k)
					for i := range draws {
						draws[i] = space.Draw(uint64(lo + i))
					}
					lo += k
					for _, pname := range c.plans {
						runVecPair(t, fmt.Sprintf("k %d plan %s", k, pname), c, in, plans[pname],
							func(algo local.MessageAlgorithm, draws []localrand.Draw, opts local.RunOptions) ([]*local.Result, error) {
								return vecBt.Run(in, algo, draws, opts)
							}, sclBt, draws, k)
					}
				}
			})
			seed++
		}
	}

	// Cole–Vishkin: deterministic, cycle-only, delivery-preserving plans.
	ring := Instance(t, graph.Cycle(24))
	cv := vecCase{construct.ColeVishkin{MaxIDBits: 8}, false, []string{"none", "zero"}}
	t.Run("cycle/"+cv.algo.Name(), func(t *testing.T) {
		plan := local.MustPlan(ring.G)
		vecBt := plan.NewBatch(B)
		sclBt := plan.NewBatch(B)
		plans := vecPlans(t, ring.G)
		for _, k := range []int{1, 3, B - 1, B} {
			for _, pname := range cv.plans {
				runVecPair(t, fmt.Sprintf("k %d plan %s", k, pname), cv, ring, plans[pname],
					func(algo local.MessageAlgorithm, draws []localrand.Draw, opts local.RunOptions) ([]*local.Result, error) {
						ins := make([]*lang.Instance, k)
						for i := range ins {
							ins[i] = ring
						}
						return vecBt.RunInstances(ins, algo, nil, opts)
					}, sclBt, nil, k)
			}
		}
	})
}

// TestVecMatchesScalarSharded is the sharded half: the vector path
// under the shard orchestrator — windowed rev tables, cut exchange,
// per-shard collection — against the unsharded ScalarOnly batch, on the
// in-process channel links everywhere and on loopback-TCP sockets for
// the cycle and connected-gnp families (the byte-stream codec path).
func TestVecMatchesScalarSharded(t *testing.T) {
	const B = 5
	seed := uint64(8001)
	tcpFamilies := map[string]bool{"cycle": true, "connected-gnp": true}
	for name, g := range Families(t) {
		in := Instance(t, g)
		plans := vecPlans(t, g)
		cases := []vecCase{
			{construct.RetryMessage(3, 4), true, []string{"none", "faulty"}},
			{construct.LubyMIS{}, true, []string{"none"}},
		}
		for _, c := range cases {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.algo.Name()), func(t *testing.T) {
				plan := local.MustPlan(g)
				sclBt := plan.NewBatch(B)
				space := localrand.NewTapeSpace(seed)
				draws := make([]localrand.Draw, B)
				for i := range draws {
					draws[i] = space.Draw(uint64(i))
				}
				transports := []struct {
					name string
					tr   Transport
				}{{"chan", nil}}
				if tcpFamilies[name] {
					transports = append(transports, struct {
						name string
						tr   Transport
					}{"tcp", TCPTransport})
				}
				for _, tp := range transports {
					for _, shards := range []int{2, 3} {
						sh, err := plan.NewSharded(B, shards)
						if err != nil {
							t.Fatal(err)
						}
						if tp.tr != nil {
							if cleanup := tp.tr(sh); cleanup != nil {
								defer cleanup()
							}
						}
						for _, k := range []int{B, B - 2} {
							for _, pname := range c.plans {
								runVecPair(t, fmt.Sprintf("%s shards %d k %d plan %s", tp.name, shards, k, pname),
									c, in, plans[pname],
									func(algo local.MessageAlgorithm, draws []localrand.Draw, opts local.RunOptions) ([]*local.Result, error) {
										return sh.Run(in, algo, draws, opts)
									}, sclBt, draws, k)
							}
						}
					}
				}
			})
			seed++
		}
	}
}
