package shardtest

import (
	"fmt"
	"testing"

	"rlnc/internal/construct"
	"rlnc/internal/graph"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// faultPlanFor builds the standard adversarial plan of the faulty
// differential: lossy links, one-round holds, a sprinkling of permanent
// crashes, and a round-2 surgery cut on the graph's first edge — every
// fault kind armed at once, so the sharded/unsharded comparison covers
// their interactions, not just each kind alone.
func faultPlanFor(t testing.TB, g *graph.Graph) *local.FaultPlan {
	t.Helper()
	topo, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := topo.Slots(0)
	if hi <= lo {
		t.Fatal("node 0 has no edges")
	}
	return &local.FaultPlan{
		Seed:      41,
		Drop:      0.15,
		Delay:     0.1,
		CrashP:    0.05,
		CrashFrom: 2,
		Surgery:   []local.EdgeCut{{Round: 2, U: 0, Z: int(topo.Nbrs[lo])}},
	}
}

// boxedFloodMin is the fault-tolerant companion of the faulty matrix on
// the legacy boxed path: payloads travel by reference through the ref
// slabs (the boxing shim), so delayed messages exercise the heldRefs
// retention path. Absent messages simply contribute nothing to the min,
// and a stale (delayed) min is still a valid min — the algorithm has no
// phase structure faults can break, unlike the synchronous-reliable
// construct algorithms, whose protocol invariants assume the LOCAL
// model's perfect delivery.
type boxedFloodMin struct{ t int }

func (f boxedFloodMin) Name() string { return fmt.Sprintf("boxed-flood-min(%d)", f.t) }
func (f boxedFloodMin) NewProcess() local.Process {
	return &boxedFloodMinProc{t: f.t}
}

type boxedFloodMinProc struct {
	t   int
	min int64
}

func (p *boxedFloodMinProc) Start(info local.NodeInfo) []local.Message {
	p.min = info.ID
	out := make([]local.Message, info.Degree)
	for i := range out {
		out[i] = p.min
	}
	return out
}

func (p *boxedFloodMinProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	for _, m := range received {
		if m == nil {
			continue
		}
		if id := m.(int64); id < p.min {
			p.min = id
		}
	}
	if round >= p.t {
		return nil, true
	}
	out := make([]local.Message, len(received))
	for i := range out {
		out[i] = p.min
	}
	return out, false
}

func (p *boxedFloodMinProc) Output() []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(p.min >> (8 * i))
	}
	return out
}

// TestShardEquivalenceFaulty is the faulty half of the headline
// differential: the equivalence matrix with an armed FaultPlan in the run
// options, on the two fault-tolerant algorithms — retry coloring on the
// wire path and boxed flood-min on the ref path. Fault decisions are
// keyed by global slot and draw seed, so every shard count and cut
// placement must reproduce the faulty unsharded batch
// lane-byte-identically.
func TestShardEquivalenceFaulty(t *testing.T) {
	seed := uint64(3001)
	for name, g := range Families(t) {
		in := Instance(t, g)
		fp := faultPlanFor(t, g)
		cases := []Case{
			{Name: name, Algo: construct.RetryMessage(3, 4), In: in, Random: true, Opts: local.RunOptions{Fault: fp}},
			{Name: name, Algo: boxedFloodMin{t: 4}, In: in, Opts: local.RunOptions{Fault: fp}},
		}
		for _, c := range cases {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.Algo.Name()), func(t *testing.T) {
				Equivalence(t, c, seed, 2)
			})
			seed++
		}
	}
}

// TestShardEquivalenceFaultyTCP reruns the faulty differential with the
// cut exchange on loopback TCP sockets: the fault plan crosses into the
// byte-stream path and must still reproduce the faulty unsharded engine
// bit for bit. Part of the CI shard-transport job.
func TestShardEquivalenceFaultyTCP(t *testing.T) {
	seed := uint64(4001)
	for _, name := range []string{"cycle", "connected-gnp"} {
		g := Families(t)[name]
		in := Instance(t, g)
		fp := faultPlanFor(t, g)
		cases := []Case{
			{Name: name, Algo: construct.RetryMessage(3, 4), In: in, Random: true, Opts: local.RunOptions{Fault: fp}},
			{Name: name, Algo: boxedFloodMin{t: 4}, In: in, Opts: local.RunOptions{Fault: fp}},
		}
		for _, c := range cases {
			c := c
			t.Run(fmt.Sprintf("%s/%s", name, c.Algo.Name()), func(t *testing.T) {
				EquivalenceTransport(t, c, seed, 2, TCPTransport)
			})
			seed++
		}
	}
}

// TestFaultZeroPlanMatrix pins "a zero plan is provably free" across the
// algorithm × family matrix: an all-zero FaultPlan must reproduce the
// nil-fault batched run byte-for-byte for every algorithm, randomized or
// not. (The sharded and TCP shapes inherit this through the equivalence
// matrices, which pin them against the same unsharded batch.)
func TestFaultZeroPlanMatrix(t *testing.T) {
	zero := &local.FaultPlan{Seed: 123}
	seed := uint64(5001)
	for name, g := range Families(t) {
		in := Instance(t, g)
		algos := []struct {
			algo   local.MessageAlgorithm
			random bool
		}{
			{construct.RetryMessage(3, 4), true},
			{construct.LubyMIS{}, true},
			{construct.EdgeLubyMatching{}, true},
			{construct.MoserTardosLLL{Phases: 2}, true},
		}
		for _, a := range algos {
			a := a
			t.Run(fmt.Sprintf("%s/%s", name, a.algo.Name()), func(t *testing.T) {
				plan := local.MustPlan(g)
				bt := plan.NewBatch(2)
				var draws []localrand.Draw
				if a.random {
					space := localrand.NewTapeSpace(seed)
					draws = []localrand.Draw{space.Draw(0), space.Draw(1)}
				}
				want, wantErr := bt.Run(in, a.algo, draws, local.RunOptions{})
				got, gotErr := bt.Run(in, a.algo, draws, local.RunOptions{Fault: zero})
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("errors diverge: %v vs %v", wantErr, gotErr)
				}
				if wantErr != nil {
					return
				}
				for b := range want {
					expectSame(t, fmt.Sprintf("lane %d", b), want[b], got[b])
				}
			})
			seed++
		}
	}

	ring := Instance(t, graph.Cycle(24))
	for _, a := range []local.MessageAlgorithm{
		construct.ColeVishkin{MaxIDBits: 8},
		construct.LinialReduction{MaxDegree: 2, MaxIDBits: 8, TargetColors: 3},
	} {
		a := a
		t.Run(fmt.Sprintf("cycle/%s", a.Name()), func(t *testing.T) {
			plan := local.MustPlan(ring.G)
			bt := plan.NewBatch(2)
			want, err := bt.RunInstances([]*lang.Instance{ring, ring}, a, nil, local.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := bt.RunInstances([]*lang.Instance{ring, ring}, a, nil, local.RunOptions{Fault: zero})
			if err != nil {
				t.Fatal(err)
			}
			for b := range want {
				expectSame(t, fmt.Sprintf("lane %d", b), want[b], got[b])
			}
		})
	}
}

// TestFaultDeterminismAcrossShapes pins the fault tape's shape
// invariance directly: one faulty plan, one draw per trial, executed at
// batch widths 1, 2, and 5 and shard counts 2 and 3 — every shape must
// produce the identical per-trial outputs, because fault decisions are
// functions of (round, global slot, draw seed) alone.
func TestFaultDeterminismAcrossShapes(t *testing.T) {
	g := Families(t)["connected-gnp"]
	in := Instance(t, g)
	plan := local.MustPlan(g)
	algo := construct.RetryMessage(3, 4)
	fp := &local.FaultPlan{Seed: 77, Drop: 0.2, Delay: 0.1, CrashP: 0.08, CrashFrom: 2, CrashUntil: 4}
	const trials = 5
	space := localrand.NewTapeSpace(909)
	draws := make([]localrand.Draw, trials)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}

	// Reference: one engine run per trial.
	want := make([]*local.Result, trials)
	eng := plan.NewEngine()
	for i := range draws {
		d := draws[i]
		r, err := eng.Run(in, algo, &d, local.RunOptions{Fault: fp})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	for _, width := range []int{2, 5} {
		bt := plan.NewBatch(width)
		for lo := 0; lo < trials; lo += width {
			hi := lo + width
			if hi > trials {
				hi = trials
			}
			got, err := bt.Run(in, algo, draws[lo:hi], local.RunOptions{Fault: fp})
			if err != nil {
				t.Fatal(err)
			}
			for b, r := range got {
				expectSame(t, fmt.Sprintf("width %d trial %d", width, lo+b), want[lo+b], r)
			}
		}
	}
	for _, shards := range []int{2, 3} {
		sh, err := plan.NewSharded(trials, shards)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Run(in, algo, draws, local.RunOptions{Fault: fp})
		if err != nil {
			t.Fatal(err)
		}
		for b, r := range got {
			expectSame(t, fmt.Sprintf("shards %d trial %d", shards, b), want[b], r)
		}
		sh.Close()
	}
}
