// Package shardtest is the differential shard-equivalence harness: it
// pins the hard contract of local.Sharded — every lane of a sharded run
// (outputs, Stats, and errors) byte-identical to the unsharded
// local.Batch at equal seeds, for every shard count and every cut
// placement — by running both sides of the differential on demand.
//
// The harness is a library (helpers taking *testing.T), so the matrix
// tests next to it and any algorithm package can reuse one assertion
// path: Equivalence sweeps shard counts {1, 2, 3, N} plus randomized cut
// placements for a (graph, algorithm, seed) triple, and the package's
// own tests wire it across all seven message algorithms and six graph
// families, with a testing/quick fuzz over random partitions of the
// topology's Offsets on top.
package shardtest

import (
	"fmt"
	"math/rand"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Case is one algorithm under differential test: the instance it runs
// on (the graph carries the plan), whether it draws randomness, and any
// run options.
type Case struct {
	Name   string
	Algo   local.MessageAlgorithm
	In     *lang.Instance
	Random bool
	Opts   local.RunOptions
}

// Families returns the six graph families the equivalence matrix
// sweeps — the same shapes the engine packages pin their contracts on.
func Families(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rr, err := graph.RandomRegular(48, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := graph.ConnectedGNP(30, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle":          graph.Cycle(24),
		"grid":           graph.Grid(5, 5),
		"tree":           graph.CompleteTree(3, 3),
		"star":           graph.Star(9),
		"random-regular": rr,
		"connected-gnp":  gnp,
	}
}

// Instance builds the standard test instance over g: empty inputs,
// pseudorandom identity permutation.
func Instance(t testing.TB, g *graph.Graph) *lang.Instance {
	t.Helper()
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), ids.RandomPerm(g.N(), 99))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// ColoredInstance builds an instance over C_n carrying a proper
// q-coloring as input (n must be divisible by q) — the input shape
// GreedyMISFromColoring needs.
func ColoredInstance(t testing.TB, n, q int) *lang.Instance {
	t.Helper()
	x := make([][]byte, n)
	for v := range x {
		x[v] = lang.EncodeColor(v % q)
	}
	in, err := lang.NewInstance(graph.Cycle(n), x, ids.RandomPerm(n, 99))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// ShardCounts returns the shard counts Equivalence sweeps for an n-node
// graph: 1 (the degenerate single shard, exercising the orchestration
// alone), 2, 3, and n (every node its own shard, maximizing the cut).
func ShardCounts(n int) []int {
	counts := []int{1}
	for _, c := range []int{2, 3, n} {
		if c > 1 && c <= n {
			counts = append(counts, c)
		}
	}
	return counts
}

// Transport equips a sharded executor with a cut-exchange transport for
// one equivalence sweep and returns the cleanup to run when that
// executor is done. A nil Transport keeps the in-process channel links.
type Transport func(sh *local.Sharded) (cleanup func())

// TCPTransport is the loopback-TCP byte-stream transport: every cut pair
// becomes a real socket carrying the framed CutBlock codec, so the
// differential exercises the exact serialize → kernel → deserialize path
// a multi-machine deployment pays.
func TCPTransport(sh *local.Sharded) func() {
	sh.UseTCPLoopback()
	return func() { sh.Close() }
}

// Equivalence runs the full differential for one case: unsharded Batch
// versus Sharded at every ShardCounts entry with balanced cuts, plus
// `randomCuts` randomized partitions seeded from seed — asserting
// byte-identical Results lane for lane, across a full batch and a
// ragged tail on the same executors (back-to-back reuse included).
func Equivalence(t *testing.T, c Case, seed uint64, randomCuts int) {
	t.Helper()
	equivalence(t, c, seed, randomCuts, 0, nil)
}

// EquivalenceTransport is Equivalence over an installed transport. The
// shard sweep is capped (balanced counts up to 4, random cuts up to 6
// shards) so transports with per-link resources — one socket pair per
// directed cut — stay within sane file-descriptor budgets; the cut
// *placements* still vary adversarially.
func EquivalenceTransport(t *testing.T, c Case, seed uint64, randomCuts int, tr Transport) {
	t.Helper()
	equivalence(t, c, seed, randomCuts, 6, tr)
}

// equivalence is the shared differential core; maxShards > 0 caps the
// partition sweep for resource-bounded transports.
func equivalence(t *testing.T, c Case, seed uint64, randomCuts, maxShards int, tr Transport) {
	t.Helper()
	const width = 3
	g := c.In.G
	plan := local.MustPlan(g)
	bt := plan.NewBatch(width)
	topo, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}

	counts := ShardCounts(g.N())
	if maxShards > 0 {
		counts = nil
		for _, s := range []int{2, 3, 4} {
			if s <= g.N() && s <= maxShards {
				counts = append(counts, s)
			}
		}
	}
	parts := make(map[string]graph.Partition)
	for _, shards := range counts {
		p, err := topo.PartitionBySlots(shards)
		if err != nil {
			t.Fatal(err)
		}
		parts[fmt.Sprintf("balanced-%d", shards)] = p
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < randomCuts; i++ {
		bound := g.N() - 1
		if maxShards > 0 && bound > maxShards-1 {
			bound = maxShards - 1
		}
		shards := 2 + rng.Intn(bound)
		parts[fmt.Sprintf("random-%d", i)] = graph.RandomPartition(g.N(), shards, rng)
	}

	space := localrand.NewTapeSpace(seed)
	for name, part := range parts {
		sh, err := plan.NewShardedPartition(width, part)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr != nil {
			if cleanup := tr(sh); cleanup != nil {
				defer cleanup()
			}
		}
		// The draw cursor restarts per partition so the (partition, draw)
		// pairing is deterministic regardless of map iteration order — a
		// reported failure reproduces under the same seed.
		lo := 0
		for rep, k := range []int{width, width - 1} {
			var draws []localrand.Draw
			if c.Random {
				draws = make([]localrand.Draw, k)
				for i := range draws {
					draws[i] = space.Draw(uint64(lo + i))
				}
			}
			var want, got []*local.Result
			var wantErr, gotErr error
			if draws != nil {
				want, wantErr = bt.Run(c.In, c.Algo, draws, c.Opts)
				got, gotErr = sh.Run(c.In, c.Algo, draws, c.Opts)
			} else {
				ins := make([]*lang.Instance, k)
				for i := range ins {
					ins[i] = c.In
				}
				want, wantErr = bt.RunInstances(ins, c.Algo, nil, c.Opts)
				got, gotErr = sh.RunInstances(ins, c.Algo, nil, c.Opts)
			}
			if (wantErr == nil) != (gotErr == nil) ||
				(wantErr != nil && wantErr.Error() != gotErr.Error()) {
				t.Fatalf("%s rep %d: sharded error %v, unsharded %v", name, rep, gotErr, wantErr)
			}
			if wantErr != nil {
				lo += k
				continue
			}
			for b := 0; b < k; b++ {
				expectSame(t, fmt.Sprintf("%s(%s) %s rep %d lane %d", c.Algo.Name(), c.Name, name, rep, b), want[b], got[b])
			}
			lo += k
		}
	}
}

// expectSame asserts byte-identical outputs and identical Stats.
func expectSame(t *testing.T, label string, want, got *local.Result) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(want.Y) != len(got.Y) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got.Y), len(want.Y))
	}
	for v := range want.Y {
		if string(want.Y[v]) != string(got.Y[v]) {
			t.Fatalf("%s: node %d output %x, want %x", label, v, got.Y[v], want.Y[v])
		}
	}
}
