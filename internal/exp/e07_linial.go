package exp

import (
	"errors"

	"rlnc/internal/construct"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/linial"
	"rlnc/internal/local"
	"rlnc/internal/report"
)

func init() { report.Register(e7{}) }

// e7 reproduces the locality lower-bound context of §1.3 ([25], [27])
// with three computations: (a) the order-pattern adjacency graph has a
// self-loop at the monotone pattern for every radius, so no
// order-invariant algorithm properly colors all rings with any palette —
// the engine of Section 4; (b) Linial's identity neighborhood graph
// B(n, 1) is exactly 3-colorability-tested for small n, exhibiting the
// transition to non-3-colorability; (c) Cole–Vishkin matches the bound
// from above with reduction rounds growing like log* of the identity
// universe.
type e7 struct{}

func (e7) ID() string { return "E7" }
func (e7) Title() string {
	return "Ring coloring lower bounds, exactly; Cole–Vishkin log* upper bound"
}
func (e7) PaperRef() string {
	return "§1.3 ([25] Linial, [27] Naor) and §4 (order-invariant impossibility)"
}

func (e e7) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}

	// (a) Pattern graphs.
	ta := res.NewTable("E7a: order-pattern adjacency graph of t-round ring views",
		"t", "patterns (2t+1)!", "self-loops", "monotone self-loop")
	patternOK := true
	for _, t := range pick(cfg, []int{1, 2, 3}, []int{1, 2}) {
		pg := linial.BuildPatternGraph(t)
		ta.AddRow(t, len(pg.Patterns), pg.SelfLoopCount(), pg.HasSelfLoopAtMonotone())
		if !pg.HasSelfLoopAtMonotone() {
			patternOK = false
		}
	}
	ta.AddNote("a self-loop means: no order-invariant t-round algorithm properly colors all rings, with any palette")

	// (b) Exact 3-colorability of B(n, 1).
	tb := res.NewTable("E7b: exact 3-colorability of Linial's neighborhood graph B(n,1)",
		"n", "vertices", "edges", "3-colorable")
	budget := int64(40_000_000)
	maxN := 8
	if cfg.Quick {
		maxN = 6
		budget = 5_000_000
	}
	transition := -1
	sawColorable := false
	for n := 4; n <= maxN; n++ {
		g, err := linial.NeighborhoodGraph(n, 1)
		if err != nil {
			return nil, err
		}
		ok, _, err := linial.Colorable(g, 3, budget)
		if errors.Is(err, linial.ErrBudget) {
			tb.AddRow(n, g.N(), g.M(), "unknown (budget)")
			continue
		}
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, g.N(), g.M(), ok)
		if ok {
			sawColorable = true
		}
		if !ok && transition == -1 {
			transition = n
		}
	}
	if transition > 0 {
		tb.AddNote("one-round 3-coloring of oriented rings is impossible once identities range over [%d]", transition)
	}

	// (c) Cole–Vishkin upper bound.
	tc := res.NewTable("E7c: Cole–Vishkin rounds vs identity universe (ring n=128)",
		"id bits b", "reduction rounds", "total rounds", "proper 3-coloring")
	l := lang.ProperColoring(3)
	cvOK := true
	growth := []int{}
	for _, b := range pick(cfg, []int{4, 8, 16, 32, 62}, []int{8, 62}) {
		n := 128
		if cfg.Quick {
			n = 64
		}
		universe := int64(1) << uint(b)
		if universe < int64(n*2) {
			universe = int64(n * 2)
		}
		idAssign, err := ids.RandomFromUniverse(n, universe, cfg.Seed^uint64(b))
		if err != nil {
			return nil, err
		}
		in := &lang.Instance{G: cycleInstance(n, 1).G, X: lang.EmptyInputs(n), ID: idAssign}
		algo := construct.ColeVishkin{MaxIDBits: b + 1}
		r, err := local.RunMessage(in, algo, nil, local.RunOptions{})
		if err != nil {
			return nil, err
		}
		ok, err := l.Contains(&lang.Config{G: in.G, X: in.X, Y: r.Y})
		if err != nil {
			return nil, err
		}
		if !ok {
			cvOK = false
		}
		red := construct.ReductionRounds(b + 1)
		growth = append(growth, red)
		tc.AddRow(b, red, r.Stats.Rounds, ok)
	}
	tc.AddNote("reduction rounds grow like log* of the universe: doubling b adds at most one round")

	logStarOK := true
	for i := 1; i < len(growth); i++ {
		if growth[i] < growth[i-1] || growth[i] > growth[i-1]+2 {
			logStarOK = false
		}
	}

	res.AddCheck("monotone self-loop at every radius", patternOK,
		"order-invariant ring coloring impossible at any constant radius")
	res.AddCheck("B(n,1) exhibits small-n 3-colorability", sawColorable,
		"the lower-bound machine is non-vacuous: tiny universes are colorable")
	res.AddCheck("Cole–Vishkin always proper", cvOK, "3-coloring valid for every universe size")
	res.AddCheck("reduction rounds grow log*-slowly", logStarOK,
		"non-decreasing, at most +2 per doubling of id bits")
	return res, nil
}
