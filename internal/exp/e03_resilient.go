package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func init() { report.Register(e3{}) }

// e3 reproduces the Section 4 impossibility engine: on consecutive-
// identity cycles every order-invariant t-round algorithm mono-colors at
// least n−(2t−1) interior nodes, so its bad-ball count grows linearly in
// n and exceeds every fixed f. Constant-round randomized algorithms fare
// no better (linear expected violations); only the Θ(log* n)-round
// Cole–Vishkin algorithm reaches zero violations — which is the entire
// point of Corollary 1.
type e3 struct{}

func (e3) ID() string    { return "E3" }
func (e3) Title() string { return "f-resilience impossibility on consecutive-identity cycles" }
func (e3) PaperRef() string {
	return "§4 (order-invariant algorithms mono-color n−(2t−1) nodes; Corollary 1 application)"
}

func (e e3) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	sizes := pick(cfg, []int{64, 256, 1024, 4096}, []int{64, 256})
	nTrials := trials(cfg, 40, 8)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0xE3)

	table := res.NewTable("E3: violations (bad balls) on consecutive-identity C_n",
		"algorithm", "rounds", "n", "violations", "violations/n", "meets f=8?")

	// Order-invariant corpus: deterministic, measured exactly.
	linearOK := true
	corpus := construct.OrderInvariantCorpus(3, 2)
	if cfg.Quick {
		corpus = corpus[:2]
	}
	for _, algo := range corpus {
		var perN []float64
		for _, n := range sizes {
			in := cycleInstance(n, 1)
			y := local.RunView(in, algo, nil)
			bad := l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y})
			table.AddRow(algo.Name(), algo.Radius(), n, bad,
				fmt.Sprintf("%.3f", float64(bad)/float64(n)), bad <= 8)
			perN = append(perN, float64(bad)/float64(n))
		}
		// Linear growth: the per-n ratio must stay bounded away from 0.
		for _, r := range perN {
			if r < 0.5 {
				linearOK = false
			}
		}
	}

	// Randomized constant-round algorithms: expected violations, measured
	// in batched trial vectors.
	randLinear := true
	for _, T := range pick(cfg, []int{0, 4}, []int{0}) {
		for _, n := range sizes {
			in := cycleInstance(n, 1)
			plan := local.MustPlan(in.G)
			mean, _ := meanBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []float64) {
				draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(T)<<32 | uint64(t) })
				ys, err := s.construct(construct.RetryColoring{Q: 3, T: T}, in, draws)
				if err != nil {
					for i := range out {
						out[i] = float64(n)
					}
					return
				}
				for i, y := range ys {
					out[i] = float64(l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y}))
				}
			})
			table.AddRow(fmt.Sprintf("retry-3-coloring(T=%d)", T), T+1, n,
				fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.3f", mean/float64(n)), mean <= 8)
			if n >= 1024 && mean <= 8 {
				randLinear = false
			}
		}
	}

	// Cole–Vishkin: zero violations, but Θ(log* n) rounds — not O(1).
	cvOK := true
	for _, n := range sizes {
		in := cycleInstance(n, 1)
		algo := construct.ColeVishkin{MaxIDBits: 63}
		r, err := local.RunMessage(in, algo, nil, local.RunOptions{})
		if err != nil {
			return nil, err
		}
		bad := l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: r.Y})
		table.AddRow(algo.Name(), r.Stats.Rounds, n, bad, "0.000", bad <= 8)
		if bad != 0 {
			cvOK = false
		}
	}
	table.AddNote("f-resilient 3-coloring with f=8 is met by no constant-round algorithm once n ≥ 1024")

	res.AddCheck("order-invariant algorithms violate linearly", linearOK,
		"violations/n ≥ 0.5 for every corpus member at every n")
	res.AddCheck("constant-round randomized algorithms exceed f", randLinear,
		"expected violations > 8 at n ≥ 1024 for 0- and 4-retry coloring")
	res.AddCheck("Cole–Vishkin meets f with zero violations (non-constant rounds)", cvOK,
		"0 bad balls at every n")
	return res, nil
}
