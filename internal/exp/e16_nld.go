package exp

import (
	"rlnc/internal/certify"
	"rlnc/internal/decide"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/report"
)

func init() { report.Register(e16{}) }

// e16 explores the §5 frontier: the classes NLD/BPNLD of locally
// VERIFIABLE languages, which the paper names as the natural candidates
// for extending Theorem 1 beyond BPLD. Two proof-labeling schemes are
// exercised: leader certificates place amos in NLD — while E9 shows
// amos ∉ LD, so LD ⊊ NLD is exhibited computationally — and
// (rootID, depth) certificates verify spanning trees, whose pointer
// cycles are locally invisible without certificates. The §5 obstacle
// ("certificates may change radically when instances are glued") is
// visible in both schemes: their certificates encode global information
// (a leader identity, a global root and depth).
type e16 struct{}

func (e16) ID() string { return "E16" }
func (e16) Title() string {
	return "NLD frontier: certificates make amos and spanning trees verifiable"
}
func (e16) PaperRef() string {
	return "§5 open problems (NLD, BPNLD; certificates vs gluing)"
}

func (e e16) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	attempts := trials(cfg, 4000, 400)

	// (a) amos ∈ NLD.
	ta := res.NewTable("E16a: amos leader-certificate scheme (radius 1)",
		"graph", "selected", "in amos", "prover accepted", "soundness search fooled")
	amosOK := true
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-16", graph.Path(16)},
		{"cycle-12", graph.Cycle(12)},
		{"tree-2-3", graph.CompleteTree(2, 3)},
	}
	if cfg.Quick {
		graphs = graphs[:2]
	}
	for _, gr := range graphs {
		for _, sel := range [][]int{{}, {0}, {0, gr.g.N() - 1}} {
			di := mkSelected(gr.g, sel)
			inL, err := (lang.AMOS{}).Contains(di.Config())
			if err != nil {
				return nil, err
			}
			if inL {
				ok, err := certify.Completeness(di, certify.AMOSScheme{})
				if err != nil {
					return nil, err
				}
				ta.AddRow(gr.name, len(sel), inL, ok, "-")
				if !ok {
					amosOK = false
				}
			} else {
				fooling, err := certify.SoundnessSearch(di, certify.AMOSScheme{}, attempts, 10, cfg.Seed^0x16)
				if err != nil {
					return nil, err
				}
				ta.AddRow(gr.name, len(sel), inL, "-", fooling != nil)
				if fooling != nil {
					amosOK = false
				}
			}
		}
	}
	ta.AddNote("with E9 (amos ∉ LD), this exhibits LD ⊊ NLD — the frontier §5 points at")

	// (b) Spanning trees are certifiable; pointer cycles are not.
	tb := res.NewTable("E16b: spanning-tree certification",
		"graph", "instance", "in language", "prover accepted", "soundness search fooled")
	stOK := true
	for _, gr := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-10", graph.Cycle(10)},
		{"grid-4x4", graph.Grid(4, 4)},
	} {
		in := &lang.Instance{G: gr.g, X: lang.EmptyInputs(gr.g.N()), ID: ids.RandomPerm(gr.g.N(), cfg.Seed|1)}
		y, err := certify.BuildBFSTreeOutputs(in, 0)
		if err != nil {
			return nil, err
		}
		di := &lang.DecisionInstance{G: gr.g, X: in.X, Y: y, ID: in.ID}
		ok, err := certify.Completeness(di, certify.SpanningTreeScheme{})
		if err != nil {
			return nil, err
		}
		tb.AddRow(gr.name, "BFS tree", true, ok, "-")
		if !ok {
			stOK = false
		}
		// Corrupt: second root.
		y2 := append([][]byte{}, y...)
		y2[gr.g.N()-1] = certify.RootMark
		di2 := &lang.DecisionInstance{G: gr.g, X: in.X, Y: y2, ID: in.ID}
		inL, _ := (certify.SpanningTree{}).Contains(di2.Config())
		fooling, err := certify.SoundnessSearch(di2, certify.SpanningTreeScheme{}, attempts, 14, cfg.Seed^0x61)
		if err != nil {
			return nil, err
		}
		tb.AddRow(gr.name, "two roots", inL, "-", fooling != nil)
		if inL || fooling != nil {
			stOK = false
		}
	}
	tb.AddNote("certificates carry global data (leader id, root id + depth): exactly what the §5 gluing obstacle disturbs")

	// (c) Contrast: the deterministic fooling of E9 still applies to any
	// certificate-free decider.
	rep, err := decide.AMOSFooling(naiveCountDecider{t: 2}, 8)
	if err != nil {
		return nil, err
	}
	res.AddCheck("amos certifiable (completeness + soundness search)", amosOK,
		"leader certificates verified on every family, never fooled")
	res.AddCheck("spanning trees certifiable; corruptions rejected", stOK,
		"BFS trees certified; two-root instances never certified")
	res.AddCheck("certificate-free deciders remain fooled (LD ⊊ NLD)", rep.Fails,
		"the E9 fooling argument still defeats deterministic deciders without certificates")
	return res, nil
}

// mkSelected builds a selection decision instance with consecutive ids.
func mkSelected(g *graph.Graph, selected []int) *lang.DecisionInstance {
	y := make([][]byte, g.N())
	for v := range y {
		y[v] = lang.EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = lang.EncodeSelected(true)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(g.N()), Y: y, ID: ids.Consecutive(g.N())}
}

// naiveCountDecider duplicates E9's natural decider for the contrast row.
type naiveCountDecider struct{ t int }

func (d naiveCountDecider) Name() string { return "naive-count" }
func (d naiveCountDecider) Radius() int  { return d.t }
func (d naiveCountDecider) Verdict(v *local.View) bool {
	count := 0
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			count++
		}
	}
	return count <= 1
}
