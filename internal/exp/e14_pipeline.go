package exp

import (
	"fmt"
	"math"

	"rlnc/internal/construct"
	"rlnc/internal/glue"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/relax"
	"rlnc/internal/report"
)

func init() { report.Register(e14{}) }

// e14 runs the Theorem 1 adversarial pipeline end to end against real
// constant-round randomized constructors: the target language is the
// f-resilient 3-coloring L_f with f = 1 (in BPLD by Corollary 1); the
// hard instances are consecutive-identity cycles glued per the proof; and
// the success probability of every fixed constant-round Monte-Carlo
// constructor decays geometrically with the number of glued blocks ν′ —
// exactly the boosting behaviour that forces the contradiction with a
// claimed constant success probability r.
type e14 struct{}

func (e14) ID() string { return "E14" }
func (e14) Title() string {
	return "Theorem 1 end-to-end: glued instances kill constant-round constructors"
}
func (e14) PaperRef() string {
	return "Theorem 1 + Corollary 1 (no O(1)-round Monte-Carlo algorithm for L_f)"
}

func (e e14) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	lf := &relax.FResilient{L: l, F: 1}
	nTrials := trials(cfg, 300, 60)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0x14)
	blockLen := 48
	nus := pick(cfg, []int{1, 2, 4, 8, 16}, []int{1, 2, 4})

	table := res.NewTable("E14: Pr[C(glued) ∈ L_1] vs number of glued blocks ν'",
		"constructor", "ν'", "total nodes", "success prob", "per-block rate (fitted)")

	algos := []construct.Algorithm{
		construct.RandomColoring(3),
		construct.RetryColoring{Q: 3, T: 2},
		construct.RetryColoring{Q: 3, T: 4},
	}
	allDecay := true
	for ai, algo := range algos {
		var probs []float64
		for _, nu := range nus {
			// Build ν′ consecutive-identity blocks and glue them.
			var instance *lang.Instance
			if nu == 1 {
				instance = cycleInstance(blockLen, 1)
			} else {
				parts := make([]*lang.Instance, nu)
				start := int64(1)
				for i := range parts {
					parts[i] = cycleInstance(blockLen, start)
					start += int64(blockLen) + 3
				}
				anchors := make([]glue.Anchor, nu)
				for i, p := range parts {
					s := p.G.ScatteredSet(4, 1)
					anchors[i] = glue.Anchor{Node: s[0], Port: 0}
				}
				gl, err := glue.BuildGlued(parts, anchors)
				if err != nil {
					return nil, err
				}
				instance = gl.Instance
			}
			plan := local.MustPlan(instance.G)
			est := runBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []bool) {
				draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(ai)<<48 | uint64(nu)<<32 | uint64(t) })
				ys, err := s.construct(algo, instance, draws)
				if err != nil {
					return
				}
				for i, y := range ys {
					ok, err := lf.Contains(&lang.Config{G: instance.G, X: instance.X, Y: y})
					out[i] = err == nil && ok
				}
			})
			probs = append(probs, est.P())
			rate := "-"
			if len(probs) > 1 && probs[len(probs)-2] > 0 && est.P() > 0 {
				r := est.P() / probs[len(probs)-2]
				rate = fmt.Sprintf("%.3f per doubling", r)
			}
			table.AddRow(algo.Name(), nu, instance.G.N(), fmt.Sprintf("%.4f", est.P()), rate)
		}
		// Success must not plateau above zero: the last sweep value must
		// be (near) zero or strictly below the first.
		last := probs[len(probs)-1]
		first := probs[0]
		if !(last < math.Max(0.05, first) || last == 0) {
			allDecay = false
		}
		if last > 0.2 {
			allDecay = false
		}
	}
	table.AddNote("L_1 tolerates one bad ball; each glued block contributes Θ(blockLen) expected violations, so success collapses")

	res.AddCheck("success probability decays with ν' for every constructor", allDecay,
		"no constant-round Monte-Carlo constructor sustains a constant success probability r")
	res.AddCheck("consistent with Corollary 1", allDecay,
		"randomization does not help for the f-resilient relaxation")
	return res, nil
}
