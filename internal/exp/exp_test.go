package exp

import (
	"runtime"
	"strings"
	"testing"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and requires every programmatic check to pass — the repository-level
// assertion that the measured shapes match the paper's claims.
func TestAllExperimentsQuick(t *testing.T) {
	exps := All()
	if len(exps) != 17 {
		t.Fatalf("registered experiments = %d, want 17", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID(), func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(report.Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", e.ID(), err)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", e.ID())
			}
			for _, c := range res.Checks {
				if !c.OK {
					t.Errorf("%s check failed: %s — %s", e.ID(), c.Name, c.Detail)
				}
			}
			// Rendering must not panic and must mention the ID somewhere.
			var sb strings.Builder
			res.Render(&sb)
			if !strings.Contains(sb.String(), e.ID()) {
				t.Errorf("%s: rendered output does not mention the experiment id", e.ID())
			}
		})
	}
}

// TestShardedExperimentsMatchUnsharded runs the sharded-capable
// experiments (E2 and E10, the two message-construction trial loops)
// with Config.Shards set and requires the rendered tables to match the
// unsharded run byte for byte: sharding is an execution topology, never
// a result change. GOMAXPROCS is pinned to 1 so the Monte-Carlo chunk
// boundaries — and hence the floating-point accumulation order — agree.
func TestShardedExperimentsMatchUnsharded(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, id := range []string{"E2", "E10"} {
		e, ok := report.ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		render := func(shards int) string {
			res, err := e.Run(report.Config{Quick: true, Seed: 7, Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", id, shards, err)
			}
			var sb strings.Builder
			res.Render(&sb)
			return sb.String()
		}
		want := render(1)
		for _, shards := range []int{2, 3} {
			if got := render(shards); got != want {
				t.Errorf("%s: sharded (%d) output differs from unsharded:\n--- unsharded ---\n%s\n--- sharded ---\n%s",
					id, shards, want, got)
			}
		}
	}
}

// TestExperimentMetadata checks the registry wiring.
func TestExperimentMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID() == "" || e.Title() == "" || e.PaperRef() == "" {
			t.Errorf("experiment %q has empty metadata", e.ID())
		}
		if seen[e.ID()] {
			t.Errorf("duplicate id %s", e.ID())
		}
		seen[e.ID()] = true
		if _, ok := report.ByID(strings.ToLower(e.ID())); !ok {
			t.Errorf("lookup failed for %s", e.ID())
		}
	}
	for _, id := range []string{"E1", "E5", "E15"} {
		if _, ok := report.ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
}

// TestPlantedSaboteur pins the synthetic construction algorithm's
// behaviour: β=0 reproduces the planted coloring exactly; β=1 corrupts
// exactly the leader.
func TestPlantedSaboteur(t *testing.T) {
	in := plantedBlock(12, 1)
	draw := localrand.NewTapeSpace(1).Draw(0)
	clean := local.RunView(in, PlantedSaboteur{Beta: 0}, &draw)
	for v, y := range clean {
		want := byte(v % 2)
		if len(y) != 1 || y[0] != want {
			t.Fatalf("node %d: clean output %v, want color %d", v, y, want)
		}
	}
	corrupted := local.RunView(in, PlantedSaboteur{Beta: 1}, &draw)
	if corrupted[0][0] != corrupted[1][0] {
		t.Error("β=1: leader did not copy its successor's color")
	}
	for v := 2; v < 11; v++ {
		if corrupted[v][0] != byte(v%2) {
			t.Errorf("β=1: non-leader node %d changed color", v)
		}
	}
	// The planted block without corruption is a proper 2-coloring of the
	// even ring.
	l := lang.ProperColoring(3)
	ok, err := l.Contains(&lang.Config{G: in.G, X: in.X, Y: clean})
	if err != nil || !ok {
		t.Errorf("clean planted coloring not proper: ok=%v err=%v", ok, err)
	}
}
