package exp

import (
	"rlnc/internal/construct"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

// trialBatchWidth is the lane count the experiment trial loops hand to
// plan.NewBatch: wide enough that view assembly, tape seeding, and round
// scheduling amortize across a worker's chunk, narrow enough that
// quick-mode trial counts still fill whole batches.
const trialBatchWidth = 32

// trialBatch is one Monte-Carlo worker's batched-trial scratch: the batch
// itself plus reusable lane slices for draws (two independent sets, for
// experiments that condition a decider's randomness on a construction
// draw) and per-lane decision instances. It is the per-worker state of
// mc.RunBatched/MeanBatched, playing the role a bare *local.Engine plays
// for mc.RunWith. When the run is sharded (Config.Shards > 1), sh is the
// worker group's sharded executor and message-algorithm constructions
// route through it — byte-identical outputs, exercised across the cut.
type trialBatch struct {
	bt     *local.Batch
	sh     *local.Sharded
	draws  []localrand.Draw
	draws2 []localrand.Draw
	dis    []*lang.DecisionInstance
}

// newTrialBatch returns the per-worker state constructor for trial loops
// over the given plan; shards > 1 equips each worker group with a
// sharded executor (clamped to the graph's node count), built by the
// injected provider when one is set — that is how `rlnc run -transport`
// swaps the in-process channel links for loopback-TCP links or a
// shard-worker process pool. A provider that refuses (a worker pool
// serves one group at a time) degrades the group to a plain batch,
// which the sharding contract keeps byte-identical.
func newTrialBatch(plan *local.Plan, shards int, provider func(plan *local.Plan, width, shards int) (*local.Sharded, error)) func() *trialBatch {
	if provider == nil {
		provider = func(plan *local.Plan, width, shards int) (*local.Sharded, error) {
			return plan.NewSharded(width, shards)
		}
	}
	return func() *trialBatch {
		s := &trialBatch{
			draws:  make([]localrand.Draw, trialBatchWidth),
			draws2: make([]localrand.Draw, trialBatchWidth),
			dis:    make([]*lang.DecisionInstance, trialBatchWidth),
		}
		if n := plan.Graph().N(); shards > n {
			shards = n
		}
		if shards > 1 {
			sh, err := provider(plan, trialBatchWidth, shards)
			if err == nil {
				s.sh = sh
				s.bt = sh.Unsharded()
				return s
			}
		}
		s.bt = plan.NewBatch(trialBatchWidth)
		return s
	}
}

// Close releases the worker's sharded executor (transport links, worker
// pool leases); the mc harness closes trial states when their worker
// retires.
func (s *trialBatch) Close() error {
	if s.sh != nil {
		return s.sh.Close()
	}
	return nil
}

// SetFault arms the fault plan on the worker's executor (the sharded
// one when present — it propagates to the companion batch), making
// trialBatch a fault-capable state for mc.Executor's Fault option.
func (s *trialBatch) SetFault(f *local.FaultPlan) {
	if s.sh != nil {
		s.sh.SetFault(f)
		return
	}
	s.bt.SetFault(f)
}

// exec is the worker's construction handle: sharded when the trial
// state carries a sharded executor, batched otherwise. Outputs are
// byte-identical either way.
func (s *trialBatch) exec() construct.Exec {
	if s.sh != nil {
		return construct.Exec{Sh: s.sh}
	}
	return construct.Exec{Bt: s.bt}
}

// construct runs one construction lane vector on the worker's engine.
func (s *trialBatch) construct(algo construct.Algorithm, in *lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return s.exec().Run(algo, in, draws)
}

// lanes fills the primary draw lanes for trials [lo, hi): lane i carries
// space.Draw(tag(lo+i)), matching the per-trial draw addressing of the
// scalar loops so batched trials replay identical randomness.
func (s *trialBatch) lanes(space *localrand.TapeSpace, lo, hi int, tag func(trial int) uint64) []localrand.Draw {
	k := hi - lo
	for i := 0; i < k; i++ {
		s.draws[i] = space.Draw(tag(lo + i))
	}
	return s.draws[:k]
}

// lanes2 is lanes for the secondary draw set.
func (s *trialBatch) lanes2(space *localrand.TapeSpace, lo, hi int, tag func(trial int) uint64) []localrand.Draw {
	k := hi - lo
	for i := 0; i < k; i++ {
		s.draws2[i] = space.Draw(tag(lo + i))
	}
	return s.draws2[:k]
}

// decisions wraps per-lane construction outputs as decision instances
// over the shared instance's identity and input columns.
func (s *trialBatch) decisions(in *lang.Instance, ys [][][]byte) []*lang.DecisionInstance {
	for i, y := range ys {
		s.dis[i] = &lang.DecisionInstance{G: in.G, X: in.X, Y: y, ID: in.ID}
	}
	return s.dis[:len(ys)]
}

// executor assembles the mc.Executor of a config-driven trial loop over
// one plan: cfg.Shards > 1 distributes the trial chunks across shard
// groups of that many shards each (built through cfg.NewSharded when a
// transport was injected), and cfg.Fault arms the fault plan on every
// worker's executor via trialBatch.SetFault. Message constructions then
// run on sharded engines with byte-identical per-trial outputs.
func executor(trials int, plan *local.Plan, cfg report.Config) mc.Executor[*trialBatch] {
	x := mc.Executor[*trialBatch]{Trials: trials, Batch: trialBatchWidth, Fault: cfg.Fault, Progress: cfg.Progress}
	if cfg.Shards > 1 {
		x.Shards = cfg.Shards
		x.NewState = newTrialBatch(plan, cfg.Shards, cfg.NewSharded)
	} else {
		x.NewState = newTrialBatch(plan, 1, nil)
	}
	return x
}

// runBatched is the batched analogue of mc.RunWith over one plan.
func runBatched(trials int, plan *local.Plan, f func(s *trialBatch, lo, hi int, out []bool)) mc.Estimate {
	return mc.Executor[*trialBatch]{
		Trials: trials, Batch: trialBatchWidth, NewState: newTrialBatch(plan, 1, nil),
	}.Run(f)
}

// meanBatched is the batched analogue of mc.MeanWith over one plan.
func meanBatched(trials int, plan *local.Plan, f func(s *trialBatch, lo, hi int, out []float64)) (mean, stderr float64) {
	return mc.Executor[*trialBatch]{
		Trials: trials, Batch: trialBatchWidth, NewState: newTrialBatch(plan, 1, nil),
	}.Mean(f)
}

// runSharded is runBatched driven by the config's shard and fault axes;
// see executor.
func runSharded(trials int, plan *local.Plan, cfg report.Config, f func(s *trialBatch, lo, hi int, out []bool)) mc.Estimate {
	return executor(trials, plan, cfg).Run(f)
}

// meanSharded is meanBatched driven by the config's shard and fault
// axes; see executor.
func meanSharded(trials int, plan *local.Plan, cfg report.Config, f func(s *trialBatch, lo, hi int, out []float64)) (mean, stderr float64) {
	return executor(trials, plan, cfg).Mean(f)
}
