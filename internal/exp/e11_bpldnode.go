package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/relax"
	"rlnc/internal/report"
)

func init() { report.Register(e11{}) }

// e11 reproduces the §5 boundary observation: the ε-slack relaxation of
// (Δ+1)-coloring lies in BPLD#node (deciding it needs the node count n),
// it is randomly constructible in zero rounds, yet it is not
// deterministically constructible in O(1) rounds — so Theorem 1 cannot
// extend to BPLD#node.
type e11 struct{}

func (e11) ID() string    { return "E11" }
func (e11) Title() string { return "BPLD#node boundary: ε-slack coloring breaks the derandomization" }
func (e11) PaperRef() string {
	return "§5 (Theorem 1 does not extend to BPLD#node)"
}

func (e e11) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	eps := 0.7
	slackLang := &relax.EpsSlack{L: l, Eps: eps}
	nTrials := trials(cfg, 20000, 2000)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0x11)

	// (a) The n-aware decider has guarantee > 1/2 on both sides.
	ta := res.NewTable("E11a: n-aware ε-slack decider (ε=0.7) on C_n",
		"n", "f=⌊εn⌋", "instance", "in language", "success prob", "> 1/2")
	deciderOK := true
	sizes := pick(cfg, []int{36, 72}, []int{36})
	for _, n := range sizes {
		d := decide.NewSlackNodeAwareDecider(l, eps, n)
		cases := []struct {
			name  string
			pairs int
		}{
			{"proper", 0},
			{"light damage", n / 24},  // 2·(n/24) bad balls << εn
			{"monochrome-ish", n / 6}, // 2·(n/6) = n/3 bad balls < εn... keep in language
		}
		// Out-of-language instance: all one color → n bad balls > εn.
		for _, tc := range cases {
			di := coloredInstance(cycleInstance(n, 1).G, plantedRingColoring(n, tc.pairs))
			inL, err := slackLang.Contains(di.Config())
			if err != nil {
				return nil, err
			}
			plan := local.MustPlan(di.G)
			est := runBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []bool) {
				draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(n)<<32 | uint64(t) })
				for i := range draws {
					s.dis[i] = di
				}
				for i, acc := range (decide.Exec{Bt: s.bt}).Accepts(s.dis[:len(draws)], d, draws) {
					out[i] = acc == inL
				}
			})
			ta.AddRow(n, d.Budget(), tc.name, inL, fmt.Sprintf("%.4f", est.P()), est.P() > 0.5)
			if est.P() <= 0.5 {
				deciderOK = false
			}
		}
		mono := make([]int, n)
		diMono := coloredInstance(cycleInstance(n, 1).G, mono)
		inL, _ := slackLang.Contains(diMono.Config())
		planMono := local.MustPlan(diMono.G)
		est := runBatched(nTrials, planMono, func(s *trialBatch, lo, hi int, out []bool) {
			draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(n)<<33 | uint64(t) })
			for i := range draws {
				s.dis[i] = diMono
			}
			for i, acc := range (decide.Exec{Bt: s.bt}).Accepts(s.dis[:len(draws)], d, draws) {
				out[i] = acc == inL
			}
		})
		ta.AddRow(n, d.Budget(), "monochromatic", inL, fmt.Sprintf("%.4f", est.P()), est.P() > 0.5)
		if est.P() <= 0.5 {
			deciderOK = false
		}
	}
	ta.AddNote("the decider's acceptance probability 2^{-|F|/(εn)}-ish needs n — that dependence is what BPLD forbids")

	// (b) Zero-round randomized construction succeeds with probability → 1.
	tb := res.NewTable("E11b: zero-round random coloring constructs the ε-slack language",
		"n", "Pr[output ∈ ε-slack]", "mean violations / εn budget")
	constructionOK := true
	for _, n := range pick(cfg, []int{300, 1200, 4800}, []int{300, 1200}) {
		in := cycleInstance(n, 1)
		plan := local.MustPlan(in.G)
		est := runBatched(trials(cfg, 400, 60), plan, func(s *trialBatch, lo, hi int, out []bool) {
			draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(n)<<34 | uint64(t) })
			ys, err := s.construct(construct.RandomColoring(3), in, draws)
			if err != nil {
				return
			}
			for i, y := range ys {
				ok, err := slackLang.Contains(&lang.Config{G: in.G, X: in.X, Y: y})
				out[i] = err == nil && ok
			}
		})
		tb.AddRow(n, fmt.Sprintf("%.4f", est.P()),
			fmt.Sprintf("≈ %.2fn / %.2fn", 5.0/9, eps))
		if est.P() < 0.95 {
			constructionOK = false
		}
	}

	// (c) Deterministic order-invariant algorithms fail the language.
	tc := res.NewTable("E11c: deterministic order-invariant algorithms on consecutive-id C_n",
		"algorithm", "n", "violations", "budget ⌊εn⌋", "in language")
	detFails := true
	for _, algo := range construct.OrderInvariantCorpus(3, 1)[:2] {
		for _, n := range pick(cfg, []int{300, 1200}, []int{300}) {
			in := cycleInstance(n, 1)
			y := local.RunView(in, algo, nil)
			bad := l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y})
			inL := bad <= slackLang.Budget(n)
			tc.AddRow(algo.Name(), n, bad, slackLang.Budget(n), inL)
			if inL {
				detFails = false
			}
		}
	}

	res.AddCheck("ε-slack ∈ BPLD#node", deciderOK, "n-aware decider succeeds with probability > 1/2 on both sides")
	res.AddCheck("randomized zero-round construction succeeds", constructionOK,
		"success probability ≥ 0.95 at every n (5/9 < ε)")
	res.AddCheck("deterministic order-invariant construction fails", detFails,
		"violations ≈ n exceed the εn budget on consecutive-identity cycles")
	res.AddCheck("Theorem 1 cannot extend to BPLD#node", deciderOK && constructionOK && detFails,
		"the language separates randomized from deterministic O(1)-round construction")
	return res, nil
}
