package exp

import (
	"fmt"

	"rlnc/internal/glue"
	"rlnc/internal/report"
)

func init() { report.Register(e15{}) }

// e15 tabulates the boosting parameters of the proof of Theorem 1 over a
// grid: µ = ⌊1/(2p−1)⌋+1, ν from Eq. (3) against the exact minimal value,
// D = 2µ(t+t′), and ν′ — comparing the paper's printed closed form (found
// to be degenerate for every admissible parameter: its base
// (1/p)(1−β(1−p)/µ) is always ≥ 1 since β ≤ µ) against the corrected
// closed form and the exact search.
type e15 struct{}

func (e15) ID() string { return "E15" }
func (e15) Title() string {
	return "Boosting parameters: µ, ν (Eq. 3), D, ν′ — formula vs exact"
}
func (e15) PaperRef() string {
	return "§3 (Eq. 3, µ, D = 2µ(t+t′), ν′ definition)"
}

func (e e15) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	table := res.NewTable("E15: parameter grid (t = 1, t' = 1)",
		"r", "p", "β", "µ", "ν Eq.(3)", "ν exact", "D", "ν' printed", "ν' corrected", "ν' exact")

	grid := pick(cfg,
		[]struct{ r, p, beta float64 }{
			{0.5, 0.6, 0.1}, {0.5, 0.75, 0.25}, {0.75, 0.8, 0.5},
			{0.9, 0.9, 0.05}, {0.5, 0.51, 0.5}, {0.99, 0.99, 1.0},
		},
		[]struct{ r, p, beta float64 }{
			{0.5, 0.75, 0.25}, {0.9, 0.9, 0.05},
		})

	eq3OK := true
	nuPrimeOK := true
	printedDegenerate := true
	muOK := true
	for _, g := range grid {
		mu, err := glue.Mu(g.p)
		if err != nil {
			return nil, err
		}
		if float64(mu)*(2*g.p-1) <= 1 {
			muOK = false
		}
		nuF, err := glue.NuDisjoint(g.r, g.p, g.beta)
		if err != nil {
			return nil, err
		}
		nuS, err := glue.NuDisjointSearch(g.r, g.p, g.beta)
		if err != nil {
			return nil, err
		}
		if nuF < nuS || nuF > nuS+1 {
			eq3OK = false
		}
		d := glue.D(mu, 1, 1)
		printed := "degenerate"
		if v, ok := glue.NuPrimePaper(g.r, g.p, g.beta, mu); ok {
			printed = fmt.Sprint(v)
			printedDegenerate = false
		}
		corr, err := glue.NuPrimeCorrected(g.r, g.p, g.beta, mu)
		if err != nil {
			return nil, err
		}
		exact, err := glue.NuPrimeSearch(g.r, g.p, g.beta, mu)
		if err != nil {
			return nil, err
		}
		if corr < exact || corr > exact+1 {
			nuPrimeOK = false
		}
		table.AddRow(g.r, g.p, g.beta, mu, nuF, nuS, d, printed, corr, exact)
	}
	table.AddNote("printed ν′ = 1+⌈ln(rp)/ln((1/p)(1−β(1−p)/µ))⌉ has base ≥ 1 whenever β ≤ µ — i.e. always; " +
		"the 1/p factor belongs outside the log (reproduction finding, see EXPERIMENTS.md)")

	res.AddCheck("µ satisfies the strict inequality µ(2p−1) > 1", muOK, "all grid points")
	res.AddCheck("Eq. (3) ν within +1 of the exact minimum", eq3OK, "and never below it")
	res.AddCheck("printed ν′ closed form degenerate everywhere", printedDegenerate,
		"base (1/p)(1−β(1−p)/µ) ≥ 1 at every admissible grid point")
	res.AddCheck("corrected ν′ within +1 of the exact minimum", nuPrimeOK,
		"moving 1/p outside the log restores the bound")
	return res, nil
}
