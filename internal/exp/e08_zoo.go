package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func init() { report.Register(e8{}) }

// e8 exercises the §2.2.2 taxonomy: LCL languages (weak coloring, MIS,
// maximal matching) are constructible by randomized algorithms and their
// canonical deterministic deciders accept exactly the valid outputs —
// the LD side of LD ⊆ BPLD.
type e8 struct{}

func (e8) ID() string    { return "E8" }
func (e8) Title() string { return "Constructible-and-decidable LCLs: MIS, matching, weak coloring" }
func (e8) PaperRef() string {
	return "§2.2.2 (decision/construction taxonomy; weak coloring as a constructible LCL)"
}

func (e e8) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	seeds := trials(cfg, 20, 4)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0xE8)

	type task struct {
		name string
		algo construct.Algorithm
		l    lang.Language
		lcl  *lang.LCL
	}
	tasks := []task{
		{"mis", construct.LubyMISAlgorithm(), lang.MIS(), lang.MIS()},
		{"maximal-matching", construct.MaximalMatchingAlgorithm(), lang.MaximalMatching(), lang.MaximalMatching()},
		{"weak-2-coloring", construct.WeakColoringViaMIS(), lang.WeakColoring(2), lang.WeakColoring(2)},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-48", graph.Cycle(48)},
		{"tree-3-3", graph.CompleteTree(3, 3)},
		{"torus-5x5", graph.Torus(5, 5)},
	}
	if !cfg.Quick {
		if g, err := graph.RandomRegular(40, 4, cfg.Seed|1); err == nil {
			graphs = append(graphs, struct {
				name string
				g    *graph.Graph
			}{"4-regular-40", g})
		}
	}

	table := res.NewTable("E8: construction validity and decider agreement over random seeds",
		"task", "graph", "valid outputs", "decider agrees")
	allValid := true
	allAgree := true
	for _, tk := range tasks {
		dec := &decide.LCLDecider{L: tk.lcl}
		for _, gr := range graphs {
			valid, agree := 0, 0
			for s := 0; s < seeds; s++ {
				idAssign := ids.RandomPerm(gr.g.N(), cfg.Seed+uint64(s))
				in := &lang.Instance{G: gr.g, X: lang.EmptyInputs(gr.g.N()), ID: idAssign}
				draw := space.Draw(uint64(s))
				y, err := tk.algo.Run(in, &draw)
				if err != nil {
					return nil, fmt.Errorf("e8: %s on %s: %w", tk.name, gr.name, err)
				}
				cfg := &lang.Config{G: in.G, X: in.X, Y: y}
				ok, err := tk.l.Contains(cfg)
				if err != nil {
					return nil, err
				}
				if ok {
					valid++
				}
				di := &lang.DecisionInstance{G: in.G, X: in.X, Y: y, ID: in.ID}
				if decide.Accepts(di, dec, nil) == ok {
					agree++
				}
			}
			table.AddRow(tk.name, gr.name,
				fmt.Sprintf("%d/%d", valid, seeds), fmt.Sprintf("%d/%d", agree, seeds))
			if valid != seeds {
				allValid = false
			}
			if agree != seeds {
				allAgree = false
			}
		}
	}
	table.AddNote("weak 2-coloring via the MIS reduction replaces the Naor–Stockmeyer odd-degree construction (DESIGN.md)")

	res.AddCheck("every construction run is valid", allValid, "all seeds, all graphs, all tasks")
	res.AddCheck("canonical LCL decider decides exactly", allAgree,
		"decider acceptance equals language membership on every run")
	return res, nil
}
