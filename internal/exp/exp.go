// Package exp implements the experiment suite E1–E17: one experiment per
// quantitative statement of the paper, as indexed in DESIGN.md §5, plus
// the E17 fault-injection degradation study. Each experiment emits the
// paper-shaped table plus programmatic checks that the measured shape
// matches the claim; EXPERIMENTS.md records the outcomes.
package exp

import (
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/report"
)

// trials picks a trial count depending on quick mode.
func trials(cfg report.Config, full, quick int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

// pick selects a sweep depending on quick mode.
func pick[T any](cfg report.Config, full, quick []T) []T {
	if cfg.Quick {
		return quick
	}
	return full
}

// cycleInstance builds (C_n, empty inputs, consecutive ids from start).
func cycleInstance(n int, start int64) *lang.Instance {
	return &lang.Instance{
		G:  graph.Cycle(n),
		X:  lang.EmptyInputs(n),
		ID: ids.ConsecutiveFrom(n, start),
	}
}

// selectedInstance marks the given nodes on g with consecutive ids.
func selectedInstance(g *graph.Graph, selected ...int) *lang.DecisionInstance {
	n := g.N()
	y := make([][]byte, n)
	for v := range y {
		y[v] = lang.EncodeSelected(false)
	}
	for _, v := range selected {
		y[v] = lang.EncodeSelected(true)
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(n), Y: y, ID: ids.Consecutive(n)}
}

// coloredInstance attaches 1-byte colors to g with consecutive ids.
func coloredInstance(g *graph.Graph, colors []int) *lang.DecisionInstance {
	n := g.N()
	y := make([][]byte, n)
	for v := 0; v < n; v++ {
		y[v] = lang.EncodeColor(colors[v])
	}
	return &lang.DecisionInstance{G: g, X: lang.EmptyInputs(n), Y: y, ID: ids.Consecutive(n)}
}

// plantedRingColoring returns a 3-coloring of C_n (n divisible by 6) with
// exactly 2*pairs bad balls.
func plantedRingColoring(n, pairs int) []int {
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 3
	}
	for i := 0; i < pairs; i++ {
		colors[6*i+1] = colors[6*i]
	}
	return colors
}

// All registers nothing itself; experiments register in their init
// functions. The function forces linking of the package.
func All() []report.Experiment { return report.All() }
