package exp

import (
	"fmt"
	"math"

	"rlnc/internal/construct"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

func init() { report.Register(e2{}) }

// e2 reproduces the §1.1 claim that randomization solves ε-slack
// relaxations in constant time: the zero-round uniform 3-coloring leaves
// a 5/9 fraction of ring nodes conflicted independent of n, and t retry
// rounds shrink the fraction geometrically, so the rounds needed for any
// fixed ε do not grow with n.
type e2 struct{}

func (e2) ID() string    { return "E2" }
func (e2) Title() string { return "ε-slack coloring: constant-round randomized algorithms suffice" }
func (e2) PaperRef() string {
	return "§1.1 (randomization helps for ε-slack relaxations)"
}

// meanBadFraction estimates the expected fraction of bad balls left by
// the retry algorithm with T rounds on C_n. Trials run in vectors of
// trialBatchWidth through one batched engine per worker — or, when
// shards > 1, through one sharded executor per worker group, with
// byte-identical per-trial outputs.
func meanBadFraction(n, T, nTrials int, seed uint64, cfg report.Config) (float64, float64) {
	l := lang.ProperColoring(3)
	in := cycleInstance(n, 1)
	space := localrand.NewTapeSpace(seed)
	plan := local.MustPlan(in.G)
	return meanSharded(nTrials, plan, cfg, func(s *trialBatch, lo, hi int, out []float64) {
		draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(t) })
		ys, err := s.construct(construct.RetryColoring{Q: 3, T: T}, in, draws)
		if err != nil {
			// A construct error here is substrate failure (a dead worker, a
			// poisoned transport), not a measurement: fabricating "all bad"
			// rows would silently skew the statistic. Fail the chunk so the
			// scheduler retries it on a fresh executor.
			mc.Fail(err)
		}
		for i, y := range ys {
			bad := l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y})
			out[i] = float64(bad) / float64(n)
		}
	})
}

func (e e2) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	nTrials := trials(cfg, 60, 10)

	// (a) Zero rounds: bad fraction flat in n at 5/9.
	ta := res.NewTable("E2a: zero-round random 3-coloring of C_n — conflicted fraction vs n",
		"n", "mean bad fraction", "stderr", "analytic 5/9")
	flat := true
	for _, n := range pick(cfg, []int{600, 2400, 9600, 38400}, []int{300, 1200}) {
		mean, se := meanBadFraction(n, 0, nTrials, cfg.Seed^0xE2A, cfg)
		ta.AddRow(n, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", se), fmt.Sprintf("%.4f", 5.0/9))
		if math.Abs(mean-5.0/9) > 0.03 {
			flat = false
		}
	}

	// (b) Retry rounds: geometric decay at fixed n.
	tb := res.NewTable("E2b: retry rounds vs conflicted fraction (C_2400)",
		"retry rounds T", "mean bad fraction", "stderr")
	nB := 2400
	if cfg.Quick {
		nB = 600
	}
	var fractions []float64
	for _, T := range pick(cfg, []int{0, 1, 2, 3, 4, 6, 8}, []int{0, 2, 4}) {
		mean, se := meanBadFraction(nB, T, nTrials, cfg.Seed^0xE2B, cfg)
		tb.AddRow(T, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", se))
		fractions = append(fractions, mean)
	}
	decays := true
	for i := 1; i < len(fractions); i++ {
		if fractions[i] >= fractions[i-1] {
			decays = false
		}
	}

	// (c) Rounds to reach a target ε: independent of n.
	tc := res.NewTable("E2c: retry rounds needed to reach bad fraction ≤ ε — independent of n",
		"ε", "rounds at n=600", "rounds at n=4800")
	roundsFor := func(eps float64, n int) int {
		for T := 0; T <= 16; T++ {
			mean, _ := meanBadFraction(n, T, nTrials, cfg.Seed^0xE2C, cfg)
			if mean <= eps {
				return T
			}
		}
		return -1
	}
	sizeB := 4800
	if cfg.Quick {
		sizeB = 1200
	}
	independent := true
	for _, eps := range pick(cfg, []float64{0.5, 0.3, 0.15, 0.08}, []float64{0.3}) {
		small := roundsFor(eps, 600)
		big := roundsFor(eps, sizeB)
		tc.AddRow(fmt.Sprintf("%.2f", eps), small, big)
		if small < 0 || big < 0 || abs(small-big) > 1 {
			independent = false
		}
	}
	tc.AddNote("a gap of one round is sampling noise; the paper's claim is O(1) rounds for fixed ε")

	res.AddCheck("zero-round bad fraction ≈ 5/9, flat in n", flat, "within ±0.03 of 5/9 at every n")
	res.AddCheck("bad fraction decays with retry rounds", decays, "strictly decreasing over the sweep")
	res.AddCheck("rounds-to-ε independent of n", independent, "small-vs-large n round counts differ by ≤ 1")
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
