package exp

import (
	"fmt"

	"rlnc/internal/decide"
	"rlnc/internal/glue"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func init() { report.Register(e5{}) }

// e5 reproduces the disjoint-union boosting of Claim 3: a one-round LOCAL
// construction algorithm that fails independently with probability β per
// block, run on the union of ν blocks, is accepted by a decider with
// guarantee p with probability at most (1−βp)^ν; at ν from Eq. (3) the
// acceptance drops below r·p, forcing Pr[C(G) ∈ L] < r — the
// contradiction that kills hypothesis (⋆).
type e5 struct{}

func (e5) ID() string    { return "E5" }
func (e5) Title() string { return "Claim 3: error boosting on disjoint unions, ν from Eq. (3)" }
func (e5) PaperRef() string {
	return "Claim 3 and Eq. (3) (Pr[D accepts C(G)] ≤ (1−βp)^ν)"
}

func (e e5) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	nTrials := trials(cfg, 8000, 800)
	l := lang.ProperColoring(3)
	blockLen := 12

	params := pick(cfg,
		[]struct{ beta, p, r float64 }{{0.3, 0.75, 0.5}, {0.15, 0.9, 0.5}, {0.5, 0.6, 0.75}},
		[]struct{ beta, p, r float64 }{{0.3, 0.75, 0.5}})

	table := res.NewTable("E5: acceptance on the union of ν sabotaged blocks vs the Claim 3 bound",
		"β", "p", "ν", "empirical Pr[D accepts C(G)]", "bound (1−βp)^ν", "below r·p threshold")
	boundHolds := true
	formulaWorks := true
	for _, pr := range params {
		sab := PlantedSaboteur{Beta: pr.beta}
		d := &NoisyLCLDecider{L: l, RejectProb: pr.p}
		nuFormula, err := glue.NuDisjoint(pr.r, pr.p, pr.beta)
		if err != nil {
			return nil, err
		}
		nuSearch, err := glue.NuDisjointSearch(pr.r, pr.p, pr.beta)
		if err != nil {
			return nil, err
		}
		cSpace := localrand.NewTapeSpace(cfg.Seed ^ 0xE5C)
		dSpace := localrand.NewTapeSpace(cfg.Seed ^ 0xE5D)
		nus := []int{1, 2, 4, nuFormula}
		if cfg.Quick {
			nus = []int{1, nuFormula}
		}
		for _, nu := range nus {
			parts := make([]*lang.Instance, nu)
			start := int64(1)
			for i := range parts {
				parts[i] = plantedBlock(blockLen, start)
				start += int64(blockLen)
			}
			union, err := glue.BuildDisjointUnion(parts)
			if err != nil {
				return nil, err
			}
			plan := local.MustPlan(union.Instance.G)
			est := runBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []bool) {
				drawsC := s.lanes(cSpace, lo, hi, func(t int) uint64 { return uint64(nu)<<32 | uint64(t) })
				ys, err := s.bt.RunView(union.Instance, sab, drawsC)
				if err != nil {
					panic(err) // lane/plan mismatch: programmer error, not a trial outcome
				}
				drawsD := s.lanes2(dSpace, lo, hi, func(t int) uint64 { return uint64(nu)<<32 | uint64(t) })
				copy(out, decide.Exec{Bt: s.bt}.Accepts(s.decisions(union.Instance, ys), d, drawsD))
			})
			bound := glue.DisjointAcceptBound(pr.p, pr.beta, nu)
			lo, _ := est.Wilson(3.3)
			if lo > bound {
				boundHolds = false
			}
			crossed := est.P() < pr.r*pr.p // acceptance < r·p ⇒ Pr[C ∈ L] < r by Eq. (5)
			table.AddRow(pr.beta, pr.p, nu,
				fmt.Sprintf("%.4f", est.P()), fmt.Sprintf("%.4f", bound),
				fmt.Sprintf("%v (thr %.3f)", crossed, pr.r*pr.p))
			if nu == nuFormula && !crossed {
				formulaWorks = false
			}
		}
		table.AddNote("β=%g p=%g r=%g: Eq. (3) gives ν=%d; exact minimal ν=%d",
			pr.beta, pr.p, pr.r, nuFormula, nuSearch)
		if nuFormula < nuSearch {
			formulaWorks = false
		}
	}

	res.AddCheck("empirical acceptance ≤ (1−βp)^ν", boundHolds,
		"Wilson lower bound never exceeds the Claim 3 bound")
	res.AddCheck("Eq. (3) ν forces the contradiction", formulaWorks,
		"at ν from Eq. (3), acceptance < r·p, so Pr[C(G) ∈ L] < r")
	return res, nil
}
