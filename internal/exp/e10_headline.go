package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/relax"
	"rlnc/internal/report"
)

func init() { report.Register(e10{}) }

// e10 is the headline table of §1.2: randomization helps for ε-slack
// relaxations but not for f-resilient ones. For each algorithm and ring
// size, the expected violation count is compared against the ε-slack
// budget ⌊εn⌋ (grows with n — constant-round randomized algorithms meet
// it) and the f-resilient budget f (constant — nothing constant-round
// meets it; Cole–Vishkin does, at Θ(log* n) rounds).
type e10 struct{}

func (e10) ID() string    { return "E10" }
func (e10) Title() string { return "Headline: randomization helps ε-slack, not f-resilience" }
func (e10) PaperRef() string {
	return "§1.2 headline claim (ε-slack vs f-resilient relaxations of 3-coloring)"
}

func (e e10) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	eps := 0.62 // above the 5/9 zero-round plateau: the trivial algorithm qualifies
	f := 8
	slack := &relax.EpsSlack{L: l, Eps: eps}
	nTrials := trials(cfg, 30, 6)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0x10)
	sizes := pick(cfg, []int{256, 1024, 4096}, []int{256, 1024})

	table := res.NewTable(
		fmt.Sprintf("E10: violations vs budgets (ε=%.2f slack, f=%d resilient) on consecutive-id C_n", eps, f),
		"algorithm", "type", "rounds", "n", "mean violations", "slack budget ⌊εn⌋", "meets slack", "meets f")

	meanOf := func(runner construct.Algorithm, tag uint64) func(n int) float64 {
		return func(n int) float64 {
			in := cycleInstance(n, 1)
			plan := local.MustPlan(in.G)
			// cfg.Shards > 1 runs the message constructions across shard
			// groups; every trial's outputs are byte-identical to the
			// unsharded run (the table too, when the worker chunking
			// coincides — see report.Config.Shards).
			m, _ := meanSharded(nTrials, plan, cfg, func(s *trialBatch, lo, hi int, out []float64) {
				draws := s.lanes(space, lo, hi, func(t int) uint64 { return tag<<32 | uint64(t) })
				ys, err := s.construct(runner, in, draws)
				if err != nil {
					// Substrate failure, not data: retry on a fresh executor
					// instead of recording every node as violated.
					mc.Fail(err)
				}
				for i, y := range ys {
					out[i] = float64(l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y}))
				}
			})
			return m
		}
	}
	rows := []struct {
		name, kind, rounds string
		mean               func(n int) float64
	}{
		{"random-3-coloring", "randomized", "0", meanOf(construct.RandomColoring(3), 1)},
		{"retry-3-coloring(T=4)", "randomized", "5", meanOf(construct.RetryColoring{Q: 3, T: 4}, 2)},
		{"oi-rank-color", "det. order-inv", "1", func(n int) float64 {
			in := cycleInstance(n, 1)
			y := local.RunView(in, construct.RankColor{Q: 3, T: 1}, nil)
			return float64(l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y}))
		}},
		{"cole-vishkin", "det. log* n", "log*", func(n int) float64 {
			in := cycleInstance(n, 1)
			r, err := local.RunMessage(in, construct.ColeVishkin{MaxIDBits: 63}, nil, local.RunOptions{})
			if err != nil {
				return float64(n)
			}
			return float64(l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: r.Y}))
		}},
	}

	randomMeetsSlack := true
	constantRoundMeetsF := false
	cvMeetsF := true
	detMeetsSlack := false
	for _, row := range rows {
		for _, n := range sizes {
			mean := row.mean(n)
			budget := slack.Budget(n)
			meetsSlack := mean <= float64(budget)
			meetsF := mean <= float64(f)
			table.AddRow(row.name, row.kind, row.rounds, n,
				fmt.Sprintf("%.1f", mean), budget, meetsSlack, meetsF)
			switch row.name {
			case "random-3-coloring", "retry-3-coloring(T=4)":
				if !meetsSlack {
					randomMeetsSlack = false
				}
				if meetsF && n >= 1024 {
					constantRoundMeetsF = true
				}
			case "oi-rank-color":
				if meetsSlack {
					detMeetsSlack = true
				}
				if meetsF && n >= 1024 {
					constantRoundMeetsF = true
				}
			case "cole-vishkin":
				if !meetsF {
					cvMeetsF = false
				}
			}
		}
	}
	table.AddNote("budgets: ε-slack grows linearly with n; f-resilient stays constant — that asymmetry is the whole story")

	res.AddCheck("constant-round randomized meets ε-slack at every n", randomMeetsSlack,
		"mean violations within ⌊εn⌋ for the 0- and 5-round algorithms")
	res.AddCheck("no constant-round algorithm meets f-resilience", !constantRoundMeetsF,
		"violations exceed f=8 for n ≥ 1024 across the constant-round suite")
	res.AddCheck("order-invariant deterministic fails even ε-slack", !detMeetsSlack,
		"mono-coloring violates ~n ≥ εn")
	res.AddCheck("Cole–Vishkin meets f (at log* rounds)", cvMeetsF, "zero violations")
	return res, nil
}
