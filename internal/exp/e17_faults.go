package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

func init() { report.Register(e17{}) }

// e17 probes the fault-injection axis: the paper's model (§2.1) assumes
// reliable synchronous links, and this experiment measures how its
// headline quantities degrade when that assumption is weakened through a
// seeded local.FaultPlan — the E2 bad-fraction curve under message-drop
// rates p, the E3 violation counts under crash fractions f, and the E4
// resilient-decider acceptance on faulty constructions. The zero-rate
// rows reproduce the fault-free baselines bit for bit (the plan is a
// pure overlay on the engine), and every faulty cell is deterministic in
// the plan's seed.
type e17 struct{}

func (e17) ID() string { return "E17" }
func (e17) Title() string {
	return "Fault injection: degradation of E2/E3/E4 under drop and crash faults"
}
func (e17) PaperRef() string {
	return "robustness extension of §2.1 (the model's reliable-link assumption, stressed)"
}

func (e e17) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	base := cfg
	base.Fault = nil // the baselines are fault-free regardless of CLI flags
	withFault := func(f local.FaultPlan) report.Config {
		fcfg := base
		f.Seed = cfg.Seed ^ 0x17F
		fcfg.Fault = &f
		return fcfg
	}
	nTrials := trials(cfg, 60, 10)

	// (a) E2 degradation: mean bad fraction of the 4-retry coloring vs
	// message-drop rate. Dropped messages hide conflicts, so as p → 1 the
	// curve climbs back to the zero-round 5/9; mild drop rates actually
	// dip below the baseline (half-seen conflicts resample one endpoint
	// instead of two, damping the collision churn of simultaneous
	// resampling), so the degradation check reads the heavy-drop end.
	nA := 2400
	if cfg.Quick {
		nA = 600
	}
	ta := res.NewTable(fmt.Sprintf("E17a: retry-3-coloring(T=4) on C_%d — bad fraction vs drop rate", nA),
		"drop rate p", "mean bad fraction", "stderr")
	baseMean, baseSE := meanBadFraction(nA, 4, nTrials, cfg.Seed^0x17A, base)
	var zeroMean, zeroSE, maxDropMean, maxDropSE float64
	drops := pick(cfg, []float64{0, 0.05, 0.2, 0.5, 0.9}, []float64{0, 0.2, 0.9})
	for _, p := range drops {
		mean, se := meanBadFraction(nA, 4, nTrials, cfg.Seed^0x17A, withFault(local.FaultPlan{Drop: p}))
		ta.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", se))
		if p == 0 {
			zeroMean, zeroSE = mean, se
		}
		maxDropMean, maxDropSE = mean, se
	}
	ta.AddNote("p=0 is the committed E2 baseline, reproduced bit for bit through the armed-but-zero plan")
	ta.AddNote("the curve is U-shaped: light drops desynchronize resampling and help; heavy drops blind it and hurt")

	// Determinism: the worst cell, replayed, is bitwise identical.
	replayMean, replaySE := meanBadFraction(nA, 4, nTrials, cfg.Seed^0x17A,
		withFault(local.FaultPlan{Drop: drops[len(drops)-1]}))

	// (b) E3 degradation: mean violations vs crash fraction. Crashed
	// nodes freeze on their initial random color and never retry, so
	// violations grow roughly linearly in the crash fraction.
	nB := 1024
	if cfg.Quick {
		nB = 256
	}
	tb := res.NewTable(fmt.Sprintf("E17b: retry-3-coloring(T=4) on C_%d — violations vs crash fraction", nB),
		"crash fraction f", "mean violations", "violations/n")
	inB := cycleInstance(nB, 1)
	planB := local.MustPlan(inB.G)
	spaceB := localrand.NewTapeSpace(cfg.Seed ^ 0x17B)
	violationsAt := func(fcfg report.Config) float64 {
		mean, _ := meanSharded(nTrials, planB, fcfg, func(s *trialBatch, lo, hi int, out []float64) {
			draws := s.lanes(spaceB, lo, hi, func(t int) uint64 { return uint64(t) })
			ys, err := s.construct(construct.RetryColoring{Q: 3, T: 4}, inB, draws)
			if err != nil {
				// Substrate failure, not data: retry on a fresh executor
				// instead of recording every node as violated.
				mc.Fail(err)
			}
			for i, y := range ys {
				out[i] = float64(l.CountBadBalls(&lang.Config{G: inB.G, X: inB.X, Y: y}))
			}
		})
		return mean
	}
	baseViol := violationsAt(base)
	var maxCrashViol float64
	for _, f := range pick(cfg, []float64{0, 0.05, 0.1, 0.2}, []float64{0, 0.1}) {
		viol := violationsAt(withFault(local.FaultPlan{CrashP: f, CrashFrom: 1}))
		tb.AddRow(fmt.Sprintf("%.2f", f), fmt.Sprintf("%.1f", viol), fmt.Sprintf("%.3f", viol/float64(nB)))
		maxCrashViol = viol
	}

	// (c) E4 degradation: the f-resilient decider's acceptance of faulty
	// constructions. More residual conflicts mean more bad balls, and
	// acceptance p^|F| collapses geometrically.
	nC := 96
	fRes := 8
	d := decide.NewResilientDecider(l, fRes)
	inC := cycleInstance(nC, 1)
	planC := local.MustPlan(inC.G)
	spaceC := localrand.NewTapeSpace(cfg.Seed ^ 0x17C)
	spaceC2 := localrand.NewTapeSpace(cfg.Seed ^ 0x17D)
	accTrials := trials(cfg, 2000, 400)
	tc := res.NewTable(fmt.Sprintf("E17c: f-resilient decider (f=%d) acceptance of retry-3-coloring(T=4) on C_%d vs drop rate", fRes, nC),
		"drop rate p", "Pr[accept]")
	acceptanceAt := func(fcfg report.Config) float64 {
		est := runSharded(accTrials, planC, fcfg, func(s *trialBatch, lo, hi int, out []bool) {
			draws := s.lanes(spaceC, lo, hi, func(t int) uint64 { return uint64(t) })
			draws2 := s.lanes2(spaceC2, lo, hi, func(t int) uint64 { return uint64(t) })
			ys, err := s.construct(construct.RetryColoring{Q: 3, T: 4}, inC, draws)
			if err != nil {
				// Same contract as above: an all-reject chunk from a broken
				// substrate is not an acceptance measurement.
				mc.Fail(err)
			}
			dis := s.decisions(inC, ys)
			for i, acc := range (decide.Exec{Bt: s.bt}).Accepts(dis, d, draws2[:len(dis)]) {
				out[i] = acc
			}
		})
		return est.P()
	}
	var accZero, accMax float64
	for _, p := range drops {
		acc := acceptanceAt(withFault(local.FaultPlan{Drop: p}))
		tc.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.4f", acc))
		if p == 0 {
			accZero = acc
		}
		accMax = acc
	}
	tc.AddNote("construction rounds run under the plan; decision views are message-free and stay exact")

	res.AddCheck("zero-rate plan reproduces the fault-free baseline", zeroMean == baseMean && zeroSE == baseSE,
		"armed FaultPlan with all-zero rates is bit-identical to no plan")
	res.AddCheck("faulty runs are deterministic in the plan seed", replayMean == maxDropMean && replaySE == maxDropSE,
		"replaying the worst drop cell reproduces it exactly")
	res.AddCheck("drop faults degrade the E2 curve", maxDropMean > baseMean,
		"bad fraction at p=%.2f exceeds the fault-free %.4f", drops[len(drops)-1], baseMean)
	res.AddCheck("crash faults degrade the E3 counts", maxCrashViol > baseViol,
		"violations under the largest crash fraction exceed the fault-free %.1f", baseViol)
	res.AddCheck("the E4 decider rejects what faults break", accZero > accMax,
		"acceptance falls from %.4f (p=0) to %.4f under the largest drop rate", accZero, accMax)
	return res, nil
}
