package exp

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/orderinv"
	"rlnc/internal/report"
)

func init() { report.Register(e13{}) }

// e13 reproduces Claim 1 / Appendix A computationally: for each
// identity-sensitive test algorithm, the finite Ramsey extraction finds a
// set U over which outputs depend only on identity order; the simulation
// A' built from U is verifiably order-invariant and agrees with A on
// instances whose identities come from U. The inventory numbers ν and
// N = Σ nᵢ! of the proof of Claim 2 are reported alongside.
type e13 struct{}

func (e13) ID() string { return "E13" }
func (e13) Title() string {
	return "Claim 1 / Appendix A: Ramsey extraction and the order-invariant simulation"
}
func (e13) PaperRef() string {
	return "Claim 1 (from [3]) and Appendix A; ball census of Claim 2"
}

// Identity-sensitive test algorithms (radius 1 on the ring family).
type maxParity struct{}

func (maxParity) Name() string { return "max-id-parity" }
func (maxParity) Radius() int  { return 1 }
func (maxParity) Output(v *local.View) []byte {
	max := v.IDs[0]
	for _, id := range v.IDs {
		if id > max {
			max = id
		}
	}
	return []byte{byte(max % 2)}
}

type centerMod3 struct{}

func (centerMod3) Name() string { return "center-id-mod-3" }
func (centerMod3) Radius() int  { return 1 }
func (centerMod3) Output(v *local.View) []byte {
	return []byte{byte(v.IDs[0] % 3)}
}

type thresholdAlgo struct{}

func (thresholdAlgo) Name() string { return "id-threshold-100" }
func (thresholdAlgo) Radius() int  { return 1 }
func (thresholdAlgo) Output(v *local.View) []byte {
	if v.IDs[0] > 100 {
		return []byte{1}
	}
	return []byte{0}
}

func (e e13) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}

	// Inventory census (the finite numbers behind Claim 2).
	ti := res.NewTable("E13a: ring ball inventory (radius t)",
		"t", "ν (shapes)", "N = Σ nᵢ! (ordered balls)", "β = 1/N", "order-invariant algorithms with q=3")
	radii := pick(cfg, []int{1, 2}, []int{1})
	for _, t := range radii {
		inv, err := orderinv.RingInventory(t)
		if err != nil {
			return nil, err
		}
		count := fmt.Sprintf("3^%d", inv.OrderedBalls)
		ti.AddRow(t, inv.Nu, inv.OrderedBalls, fmt.Sprintf("%.2e", inv.Beta()), count)
	}

	// Extraction per algorithm.
	inv, err := orderinv.RingInventory(1)
	if err != nil {
		return nil, err
	}
	te := res.NewTable("E13b: Ramsey extraction (radius 1, |U| = 8, pool ≤ 120)",
		"algorithm", "|U|", "U prefix", "evaluations", "A' order-invariant", "A' = A on U-instances")
	algos := []local.ViewAlgorithm{maxParity{}, centerMod3{}, thresholdAlgo{}}
	allInvariant := true
	allAgree := true
	for _, a := range algos {
		ext, err := orderinv.Extract(a, inv, 8, 120)
		if err != nil {
			return nil, fmt.Errorf("e13: extraction for %s: %w", a.Name(), err)
		}
		sim := &orderinv.Simulation{Inner: a, U: ext.U}
		invErr := orderinv.CheckInvarianceRandom(sim, graph.Cycle(8), 4, cfg.Seed^0x13)
		if invErr != nil {
			allInvariant = false
		}
		// Agreement on an instance with identities drawn from U.
		agree := true
		g := graph.Cycle(8)
		idAssign := ids.FromSlice(ext.U[:8])
		in := &lang.Instance{G: g, X: lang.EmptyInputs(8), ID: idAssign}
		ya := local.RunView(in, a, nil)
		yb := local.RunView(in, sim, nil)
		for v := range ya {
			if string(ya[v]) != string(yb[v]) {
				agree = false
			}
		}
		if !agree {
			allAgree = false
		}
		prefix := fmt.Sprint(ext.U[:min(4, len(ext.U))])
		te.AddRow(a.Name(), len(ext.U), prefix+"…", ext.Evaluations, invErr == nil, agree)
	}
	te.AddNote("the finite pool substitutes the countably infinite Ramsey universe; A' only ever reads the smallest |ball| values of U")

	// Exhaustive Claim 2 premise at radius 1: every one of the q^N
	// order-invariant algorithms fails on some ring instance.
	tc := res.NewTable("E13c: exhaustive Claim 2 premise — all q^6 order-invariant radius-1 ring algorithms fail",
		"palette q", "algorithms q^N", "with counterexample", "counterexamples at C_3", "at C_4")
	claim2OK := true
	for _, q := range pick(cfg, []int{2, 3}, []int{3}) {
		rep2, err := orderinv.VerifyClaim2Radius1(q, 8)
		if err != nil {
			return nil, err
		}
		tc.AddRow(q, rep2.Algorithms, rep2.Failures, rep2.BySize[3], rep2.BySize[4])
		if rep2.Failures != rep2.Algorithms {
			claim2OK = false
		}
	}
	tc.AddNote("the Section 4 collision (equal interior patterns on consecutive identities) defeats everything by C_4")

	res.AddCheck("extraction succeeds for every test algorithm", true,
		"greedy consistency search found |U| = 8 within the pool")
	res.AddCheck("A' passes the order-invariance property test", allInvariant,
		"outputs unchanged under order-preserving identity remaps")
	res.AddCheck("A' agrees with A on U-instances", allAgree,
		"node-for-node equality when identities are drawn from U")
	res.AddCheck("Claim 2 premise exhaustive at radius 1", claim2OK,
		"every enumerated order-invariant algorithm has a failing ring instance")
	return res, nil
}
