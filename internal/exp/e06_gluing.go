package exp

import (
	"fmt"
	"math"

	"rlnc/internal/decide"
	"rlnc/internal/glue"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

func init() { report.Register(e6{}) }

// e6 reproduces the connectivity-preserving gluing of Theorem 1 and
// Claims 4–5: each block's anchor edge is subdivided twice and the
// inserted nodes are ring-connected; the glued graph stays within degree
// k = 3; a scattered set S of µ nodes pairwise ≥ 2(t+t′) apart exists
// because the blocks have diameter ≥ D = 2µ(t+t′); some anchor u has
// Pr[D rejects C(H) far from u] ≥ β(1−p)/µ (Claim 5); and because C is a
// radius-1 LOCAL algorithm, the acceptance of the glued instance is
// bounded by the product of per-block far-from acceptances — the
// independence step of the final proof — and empirically tracks it.
type e6 struct{}

func (e6) ID() string { return "E6" }
func (e6) Title() string {
	return "Theorem 1 gluing: degree preservation, Claim 5 anchors, far-from independence"
}
func (e6) PaperRef() string {
	return "§3 proof of Theorem 1 (gluing construction, Claims 4–5)"
}

func (e e6) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	nTrials := trials(cfg, 4000, 500)
	l := lang.ProperColoring(3)
	beta, p := 0.4, 0.75
	sab := PlantedSaboteur{Beta: beta}
	dec := &NoisyLCLDecider{L: l, RejectProb: p}
	tC, tD := sab.Radius(), l.Radius

	mu, err := glue.Mu(p)
	if err != nil {
		return nil, err
	}
	dBound := glue.D(mu, tC, tD)
	blockLen := 4 * dBound // diameter 2·D ≥ D; even, as planted blocks need
	nuPrime := pick(cfg, []int{2, 4, 8}, []int{2, 4})

	cSpace := localrand.NewTapeSpace(cfg.Seed ^ 0xE6C)
	dSpace := localrand.NewTapeSpace(cfg.Seed ^ 0xE6D)

	// Per-block far-from acceptance (the Claim 5 measurement): probability
	// over both C's and D's randomness that all nodes of the block at
	// distance > t+t' from u accept.
	// One plan per block: every anchor candidate's measurement shares the
	// block's cached balls — and, per anchor, its cached distance column —
	// instead of re-extracting them per invocation; trials run in batched
	// vectors.
	farAcceptProb := func(plan *local.Plan, in *lang.Instance, u int, tag uint64) mc.Estimate {
		return runBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []bool) {
			drawsC := s.lanes(cSpace, lo, hi, func(t int) uint64 { return tag<<24 | uint64(t) })
			ys, err := s.bt.RunView(in, sab, drawsC)
			if err != nil {
				panic(err) // lane/plan mismatch: programmer error, not a trial outcome
			}
			drawsD := s.lanes2(dSpace, lo, hi, func(t int) uint64 { return tag<<24 | uint64(t) })
			copy(out, decide.Exec{Bt: s.bt}.AcceptsFarFrom(s.decisions(in, ys), dec, drawsD, u, tC+tD))
		})
	}

	structureTable := res.NewTable("E6a: glued instance structure",
		"ν'", "nodes", "connected", "max degree", "anchor separation ≥ 2(t+t')", "planted coloring proper")
	acceptTable := res.NewTable("E6b: acceptance of the glued instance vs per-block far-from product",
		"ν'", "Pr[D accepts C(G_glued)]", "Π per-block far-accept", "Claim 5 floor β(1−p)/µ", "best far-reject")

	structureOK := true
	claim5OK := true
	productOK := true
	for _, nu := range nuPrime {
		parts := make([]*lang.Instance, nu)
		start := int64(1)
		for i := range parts {
			parts[i] = plantedBlock(blockLen, start)
			start += int64(blockLen) + 7
		}
		// Scattered candidates and Claim 5 anchor selection per block.
		anchors := make([]glue.Anchor, nu)
		blockFarAccept := make([]float64, nu)
		zColors := make([]int, nu)
		bestFarReject := 0.0
		sepOK := true
		for i, part := range parts {
			partPlan := local.MustPlan(part.G)
			cands := part.G.ScatteredSet(2*(tC+tD), mu)
			if len(cands) < mu {
				return nil, fmt.Errorf("e6: block %d yielded %d scattered nodes, need %d", i, len(cands), mu)
			}
			if ok, _, _ := part.G.PairwiseDistAtLeast(cands, 2*(tC+tD)); !ok {
				sepOK = false
			}
			best := glue.BestAnchorByFarRejection(cands, func(u int) float64 {
				return 1 - farAcceptProb(partPlan, part, u, uint64(nu*100+i)).P()
			})
			u := cands[best]
			anchors[i] = glue.Anchor{Node: u, Port: 0}
			acc := farAcceptProb(partPlan, part, u, uint64(nu*100+i))
			blockFarAccept[i] = acc.P()
			if rej := 1 - acc.P(); rej > bestFarReject {
				bestFarReject = rej
			}
			// z_i is u's port-0 neighbor; record its planted color for
			// seam sealing.
			z := part.G.Neighbor(u, 0)
			zColors[i] = z % 2
		}
		gl, err := glue.BuildGlued(parts, anchors)
		if err != nil {
			return nil, err
		}
		sealGluedInputs(gl.Instance.X, gl.V, gl.W, zColors)
		g := gl.Instance.G

		// Sanity: without corruption the planted coloring is proper.
		clean := local.RunView(gl.Instance, PlantedSaboteur{Beta: 0}, nil)
		properClean, err := l.Contains(&lang.Config{G: g, X: gl.Instance.X, Y: clean})
		if err != nil {
			return nil, err
		}
		structureTable.AddRow(nu, g.N(), g.Connected(), g.MaxDegree(), sepOK, properClean)
		if !g.Connected() || g.MaxDegree() > 3 || !sepOK || !properClean {
			structureOK = false
		}

		// Acceptance of the glued instance, in batched trial vectors.
		plan := local.MustPlan(gl.Instance.G)
		nu := nu
		est := runBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []bool) {
			drawsC := s.lanes(cSpace, lo, hi, func(t int) uint64 { return uint64(nu)<<40 | uint64(t) })
			ys, err := s.bt.RunView(gl.Instance, sab, drawsC)
			if err != nil {
				panic(err) // lane/plan mismatch: programmer error, not a trial outcome
			}
			drawsD := s.lanes2(dSpace, lo, hi, func(t int) uint64 { return uint64(nu)<<40 | uint64(t) })
			copy(out, decide.Exec{Bt: s.bt}.Accepts(s.decisions(gl.Instance, ys), dec, drawsD))
		})
		product := 1.0
		for _, a := range blockFarAccept {
			product *= a
		}
		floor := beta * (1 - p) / float64(mu)
		acceptTable.AddRow(nu,
			fmt.Sprintf("%.4f", est.P()), fmt.Sprintf("%.4f", product),
			fmt.Sprintf("%.4f", floor), fmt.Sprintf("%.4f", bestFarReject))
		// One-sided proof inequality with Monte-Carlo slack.
		slack := 3*math.Sqrt(product*(1-product)/float64(nTrials)) + 0.02
		if est.P() > product+slack {
			productOK = false
		}
		if bestFarReject < floor-0.02 {
			claim5OK = false
		}
	}
	structureTable.AddNote("µ=%d, D=2µ(t+t')=%d, block length %d, k=3 (paper requires k>2)", mu, dBound, blockLen)
	acceptTable.AddNote("C is a radius-1 LOCAL algorithm, so block behaviour far from the surgery is identical in H_i and the glued G")

	res.AddCheck("gluing preserves connectivity, degree ≤ 3, and seam-proper planting", structureOK,
		"all ν' settings")
	res.AddCheck("Claim 5 anchor: far-rejection ≥ β(1−p)/µ", claim5OK,
		"selected anchors reach the floor within MC tolerance")
	res.AddCheck("global acceptance ≤ product of far-from acceptances", productOK,
		"independence bound of the final proof holds empirically")
	return res, nil
}
