package exp

import (
	"fmt"
	"math"

	"rlnc/internal/decide"
	"rlnc/internal/lang"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func init() { report.Register(e4{}) }

// e4 reproduces the decider constructed in the proof of Corollary 1: with
// p ∈ (2^{−1/f}, 2^{−1/(f+1)}), accepting each bad ball independently
// with probability p gives Pr[all accept] = p^{|F(G)|}, which is > 1/2
// when |F| ≤ f and < 1/2 when |F| ≥ f+1 — hence L_f ∈ BPLD.
type e4 struct{}

func (e4) ID() string    { return "E4" }
func (e4) Title() string { return "Corollary 1 decider: L_f ∈ BPLD" }
func (e4) PaperRef() string {
	return "Corollary 1 proof (randomized decision of the f-resilient relaxation)"
}

func (e e4) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	nTrials := trials(cfg, 30000, 3000)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0xE4)
	n := 96

	table := res.NewTable("E4: f-resilient decider acceptance on C_96 with planted bad balls",
		"f", "p", "|F(G)|", "in L_f", "empirical Pr[accept]", "analytic p^|F|", "success > 1/2")

	worstGap := 0.0
	allAboveHalf := true
	for _, f := range pick(cfg, []int{1, 2, 4, 8}, []int{2}) {
		d := decide.NewResilientDecider(l, f)
		for _, pairs := range pick(cfg, []int{0, 1, 2, 3, 5}, []int{0, 1, 2}) {
			badCount := 2 * pairs
			di := coloredInstance(cycleInstance(n, 1).G, plantedRingColoring(n, pairs))
			if got := l.CountBadBalls(di.Config()); got != badCount {
				return nil, fmt.Errorf("e4: planted %d bad balls, measured %d", badCount, got)
			}
			est := decide.AcceptProbability(di, d, space, nTrials)
			want := math.Pow(d.P, float64(badCount))
			inLf := badCount <= f
			success := est.P()
			if !inLf {
				success = 1 - est.P()
			}
			if gap := math.Abs(est.P() - want); gap > worstGap {
				worstGap = gap
			}
			if success <= 0.5 {
				allAboveHalf = false
			}
			table.AddRow(f, fmt.Sprintf("%.4f", d.P), badCount, inLf,
				fmt.Sprintf("%.4f", est.P()), fmt.Sprintf("%.4f", want), success > 0.5)
		}
	}
	table.AddNote("p is the geometric mean of the interval (2^{−1/f}, 2^{−1/(f+1)}) from the proof")

	res.AddCheck("acceptance equals p^{|F|}", worstGap < 0.02,
		"worst |empirical − analytic| = %.4f", worstGap)
	res.AddCheck("guarantee > 1/2 on both sides", allAboveHalf,
		"success probability above 1/2 for every (f, |F|) pair")
	intervalOK := true
	for f := 1; f <= 16; f++ {
		p := decide.ResilientP(f)
		if !(math.Pow(p, float64(f)) > 0.5 && 1-math.Pow(p, float64(f+1)) > 0.5) {
			intervalOK = false
		}
	}
	res.AddCheck("analytic interval sound for f ≤ 16", intervalOK,
		"p^f > 1/2 and 1−p^{f+1} > 1/2")
	return res, nil
}
