package exp

import (
	"fmt"

	"rlnc/internal/construct"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/relax"
	"rlnc/internal/report"
)

func init() { report.Register(e12{}) }

// e12 probes the open problem of §5: intermediate relaxations allowing
// O(n^c) incorrect nodes, c < 1. Constant-round randomized algorithms
// produce Θ(n) expected violations, so for every c < 1 there is a
// crossover size n* beyond which they miss the n^c budget; the experiment
// measures n* for the constant-round suite. (Whether *some* O(1)-round
// randomized algorithm beats n^c is exactly the paper's open question —
// the table reports the behaviour of the natural candidates.)
type e12 struct{}

func (e12) ID() string    { return "E12" }
func (e12) Title() string { return "Open problem probe: O(n^c) intermediate relaxations" }
func (e12) PaperRef() string {
	return "§5 open problems (relaxations between BPLD and BPLD#node)"
}

func (e e12) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	l := lang.ProperColoring(3)
	nTrials := trials(cfg, 25, 6)
	space := localrand.NewTapeSpace(cfg.Seed ^ 0x12)
	// Quick mode still ends at n = 2048: the retry-4 algorithm leaves
	// ≈ 0.19n violations, and the n^0.75 budget needs a clear margin
	// below that for the crossover check to be noise-proof.
	sizes := pick(cfg, []int{64, 256, 1024, 4096, 16384}, []int{64, 256, 2048})

	table := res.NewTable("E12: mean violations vs n^c budgets on C_n",
		"algorithm", "n", "mean violations", "n^0.25", "n^0.5", "n^0.75", "meets c=0.75?")

	algos := []struct {
		name string
		t    int
	}{
		{"random-3-coloring", 0},
		{"retry-3-coloring(T=4)", 4},
	}
	crossoverSeen := true
	for _, a := range algos {
		lastMeets := true
		for _, n := range sizes {
			in := cycleInstance(n, 1)
			plan := local.MustPlan(in.G)
			mean, _ := meanBatched(nTrials, plan, func(s *trialBatch, lo, hi int, out []float64) {
				draws := s.lanes(space, lo, hi, func(t int) uint64 { return uint64(a.t)<<40 | uint64(n)<<8 | uint64(t) })
				ys, err := s.construct(construct.RetryColoring{Q: 3, T: a.t}, in, draws)
				if err != nil {
					for i := range out {
						out[i] = float64(n)
					}
					return
				}
				for i, y := range ys {
					out[i] = float64(l.CountBadBalls(&lang.Config{G: in.G, X: in.X, Y: y}))
				}
			})
			budgets := make([]int, 3)
			for i, c := range []float64{0.25, 0.5, 0.75} {
				budgets[i] = (&relax.PolyBudget{L: l, C: c}).Budget(n)
			}
			meets := mean <= float64(budgets[2])
			table.AddRow(a.name, n, fmt.Sprintf("%.1f", mean),
				budgets[0], budgets[1], budgets[2], meets)
			lastMeets = meets
		}
		// At the largest size, the linear-violation algorithm must have
		// crossed below every sublinear budget.
		if lastMeets {
			crossoverSeen = false
		}
	}
	table.AddNote("violations grow ∝ n while budgets grow ∝ n^c: every constant-round candidate eventually fails")

	res.AddCheck("constant-round algorithms cross every n^c budget", crossoverSeen,
		"at the largest n, mean violations exceed n^0.75 for both candidates")
	return res, nil
}
