package exp

import (
	"fmt"
	"math"

	"rlnc/internal/decide"
	"rlnc/internal/graph"
	"rlnc/internal/localrand"
	"rlnc/internal/report"
)

func init() { report.Register(e1{}) }

// e1 reproduces the §2.3.1 example: the zero-round randomized decider for
// amos with p = (√5−1)/2 accepts s-selected configurations with
// probability exactly p^s, giving guarantee min(p, 1−p²) = p ≈ 0.618.
type e1 struct{}

func (e1) ID() string    { return "E1" }
func (e1) Title() string { return "AMOS golden-ratio decider: Pr[all accept] = p^s" }
func (e1) PaperRef() string {
	return "§2.3.1 example (amos ∈ BPLD with guarantee (√5−1)/2)"
}

func (e e1) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	nTrials := trials(cfg, 40000, 4000)
	d := decide.NewAMOSDecider()
	space := localrand.NewTapeSpace(cfg.Seed ^ 0xE1)

	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-60", graph.Cycle(60)},
		{"path-33", graph.Path(33)},
		{"star-17", graph.Star(17)},
	}
	if cfg.Quick {
		families = families[:1]
	}
	table := res.NewTable(
		"E1: acceptance probability of the zero-round AMOS decider (p = 0.6180)",
		"graph", "selected s", "in amos", "empirical Pr[accept]", "analytic p^s", "95% CI")
	worstGap := 0.0
	guaranteeOK := true
	for _, fam := range families {
		for _, s := range pick(cfg, []int{0, 1, 2, 3, 4, 6}, []int{0, 1, 2, 4}) {
			if s >= fam.g.N()/4 {
				continue
			}
			sel := make([]int, s)
			for i := range sel {
				sel[i] = i * 4
			}
			di := selectedInstance(fam.g, sel...)
			est := decide.AcceptProbability(di, d, space, nTrials)
			want := math.Pow(decide.GoldenP, float64(s))
			lo, hi := est.Wilson(1.96)
			gap := math.Abs(est.P() - want)
			if gap > worstGap {
				worstGap = gap
			}
			inLang := s <= 1
			// Success means accept when in, reject when out.
			success := est.P()
			if !inLang {
				success = 1 - est.P()
			}
			if success <= 0.5 {
				guaranteeOK = false
			}
			table.AddRow(fam.name, s, inLang,
				fmt.Sprintf("%.4f", est.P()),
				fmt.Sprintf("%.4f", want),
				fmt.Sprintf("[%.4f, %.4f]", lo, hi))
		}
	}
	table.AddNote("p solves p² = 1−p: rejecting two selected nodes is as likely as accepting one")

	res.AddCheck("accept probability matches p^s", worstGap < 0.02,
		"worst |empirical − analytic| = %.4f", worstGap)
	res.AddCheck("decider guarantee > 1/2 on every instance", guaranteeOK,
		"success probability above 1/2 for both in- and out-instances")
	res.AddCheck("golden identity p² = 1−p", math.Abs(decide.GoldenP*decide.GoldenP-(1-decide.GoldenP)) < 1e-12,
		"p = %.6f", decide.GoldenP)
	return res, nil
}
