package exp

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// This file provides the controlled stand-ins for the construction
// algorithm C and decider D of Claims 3–5.
//
// PlantedSaboteur is a genuine one-round LOCAL Monte-Carlo algorithm:
// every node's input carries a planted color and a leader flag; ordinary
// nodes output their planted color, and a leader corrupts its output to
// its port-0 neighbor's planted color with probability exactly Beta,
// decided by the leader's own tape. With one leader per block, block
// failures are independent Bernoulli(Beta) events — the planted β of
// Claim 2 — and, being radius-1 local, the algorithm behaves identically
// on a block H_i and on any host graph containing H_i far from the
// surgery, which is precisely the locality the proof of Theorem 1 uses.

// Planted input encoding: [color, leaderFlag].
func plantInput(color int, leader bool) []byte {
	flag := byte(0)
	if leader {
		flag = 1
	}
	return []byte{byte(color), flag}
}

func plantedColorOf(x []byte) (int, bool) {
	if len(x) != 2 {
		return 0, false
	}
	return int(x[0]), true
}

func plantedLeader(x []byte) bool {
	return len(x) == 2 && x[1] == 1
}

// PlantedSaboteur is the construction algorithm C of the boosting
// experiments. Radius 1; Monte-Carlo.
type PlantedSaboteur struct {
	Beta float64
}

// Name implements local.ViewAlgorithm.
func (s PlantedSaboteur) Name() string { return fmt.Sprintf("planted-saboteur(β=%g)", s.Beta) }

// Radius implements local.ViewAlgorithm.
func (s PlantedSaboteur) Radius() int { return 1 }

// Output implements local.ViewAlgorithm.
func (s PlantedSaboteur) Output(v *local.View) []byte {
	color, ok := plantedColorOf(v.X[0])
	if !ok {
		return lang.EncodeColor(0)
	}
	if plantedLeader(v.X[0]) && s.Beta > 0 && v.Tape() != nil && v.Tape().Bernoulli(s.Beta) {
		// Corrupt: copy the planted color of the first neighbor.
		if v.Degree() > 0 {
			nb := int(v.Ball.G.Neighbors(0)[0])
			if nc, ok := plantedColorOf(v.X[nb]); ok {
				return lang.EncodeColor(nc)
			}
		}
	}
	return lang.EncodeColor(color)
}

// plantedBlock builds a cycle block with alternating planted colors and a
// leader at node 0. n must be even so the alternation is proper around
// the ring.
func plantedBlock(n int, startID int64) *lang.Instance {
	if n%2 != 0 {
		panic("exp: planted blocks need even length")
	}
	in := cycleInstance(n, startID)
	x := make([][]byte, n)
	for v := 0; v < n; v++ {
		x[v] = plantInput(v%2, v == 0)
	}
	in.X = x
	return in
}

// sealGluedInputs assigns planted inputs to the nodes inserted by the
// gluing surgery so that the uncorrupted planted coloring stays proper
// across every seam: each v_i gets color 2 (its neighbors u_i, w_i,
// w_{i+1} all carry colors in {0,1}) and each w_i the opposite of its
// block neighbor z_i's planted color. zColors[i] is the planted color of
// block i's anchor edge endpoint z_i.
func sealGluedInputs(x [][]byte, vNodes, wNodes []int, zColors []int) {
	for i := range vNodes {
		x[vNodes[i]] = plantInput(2, false)
		x[wNodes[i]] = plantInput(1-zColors[i], false)
	}
}

// NoisyLCLDecider is the randomized decider D of Claims 3–5 for an LCL
// language: nodes with good balls accept; a node centering a bad ball
// rejects with probability RejectProb. On the base language this decides
// with guarantee RejectProb: members are always accepted, and a
// non-member has at least one bad ball whose center rejects with
// probability ≥ RejectProb.
type NoisyLCLDecider struct {
	L          *lang.LCL
	RejectProb float64
}

// Name implements decide.Decider.
func (d *NoisyLCLDecider) Name() string {
	return fmt.Sprintf("noisy-lcl-decider(%s, p=%g)", d.L.Name(), d.RejectProb)
}

// Radius implements decide.Decider.
func (d *NoisyLCLDecider) Radius() int { return d.L.Radius }

// Verdict implements decide.Decider.
func (d *NoisyLCLDecider) Verdict(v *local.View) bool {
	bad := d.L.Bad(&lang.LabeledBall{Ball: v.Ball, X: v.X, Y: v.Y})
	if !bad {
		return true
	}
	return !v.Tape().Bernoulli(d.RejectProb)
}
