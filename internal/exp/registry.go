package exp

import (
	"fmt"

	"rlnc/internal/report"
)

// This file is the runnable-by-key surface of the experiment suite: the
// serve control plane (internal/serve) validates and executes submitted
// experiment jobs through it, so a job names an experiment exactly the
// way `rlnc run` does — by its registry ID — and runs through the same
// report.Config plumbing (quick mode, seed, shards, fault plan,
// progress hook) as the CLI.

// ByID looks up one experiment by its registry key (case-insensitive),
// forcing this package's init-time registrations along the way — unlike
// report.ByID, a caller needs no side-effect import to see the full
// suite.
func ByID(id string) (report.Experiment, bool) { return report.ByID(id) }

// Run executes the experiment registered under id with the given
// configuration and returns its result. Unknown IDs error before any
// work happens, which is the validation the serve layer's job intake
// relies on.
func Run(id string, cfg report.Config) (*report.Result, error) {
	e, ok := report.ByID(id)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	return e.Run(cfg)
}
