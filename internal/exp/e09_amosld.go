package exp

import (
	"fmt"

	"rlnc/internal/decide"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/report"
)

func init() { report.Register(e9{}) }

// e9 reproduces the §2.3.1 impossibility: amos cannot be deterministically
// decided in D/2 − 1 rounds on diameter-D graphs. The fooling engine pits
// deterministic deciders against three path configurations — left endpoint
// selected, right endpoint selected, both — and shows every decider either
// rejects a legal configuration or accepts the illegal double, because the
// double is locally indistinguishable from the singles. Combined with E1
// (amos ∈ BPLD), this exhibits LD ⊊ BPLD.
type e9 struct{}

func (e9) ID() string    { return "E9" }
func (e9) Title() string { return "amos ∉ LD: fooling every deterministic local decider" }
func (e9) PaperRef() string {
	return "§2.3.1 (amos undecidable in D/2−1 rounds deterministically; LD ⊊ BPLD)"
}

// Candidate deterministic deciders for amos; each is the natural attempt
// at some radius.
type countSelDecider struct{ t int }

func (d countSelDecider) Name() string { return fmt.Sprintf("count-selected(t=%d)", d.t) }
func (d countSelDecider) Radius() int  { return d.t }
func (d countSelDecider) Verdict(v *local.View) bool {
	count := 0
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			count++
		}
	}
	return count <= 1
}

type centerPairDecider struct{ t int }

func (d centerPairDecider) Name() string { return fmt.Sprintf("center-pair(t=%d)", d.t) }
func (d centerPairDecider) Radius() int  { return d.t }
func (d centerPairDecider) Verdict(v *local.View) bool {
	// Reject only if the center is selected and sees another selection.
	selC, err := lang.DecodeSelected(v.Y[0])
	if err != nil || !selC {
		return true
	}
	for i := 1; i < len(v.Y); i++ {
		if sel, err := lang.DecodeSelected(v.Y[i]); err == nil && sel {
			return false
		}
	}
	return true
}

type minIDGuardDecider struct{ t int }

func (d minIDGuardDecider) Name() string { return fmt.Sprintf("min-id-guard(t=%d)", d.t) }
func (d minIDGuardDecider) Radius() int  { return d.t }
func (d minIDGuardDecider) Verdict(v *local.View) bool {
	// An identity-asymmetric attempt: the minimum-identity node in the
	// view takes responsibility for counting selections.
	minI := 0
	for i := range v.IDs {
		if v.IDs[i] < v.IDs[minI] {
			minI = i
		}
	}
	if minI != 0 {
		return true
	}
	count := 0
	for _, y := range v.Y {
		if sel, err := lang.DecodeSelected(y); err == nil && sel {
			count++
		}
	}
	return count <= 1
}

func (e e9) Run(cfg report.Config) (*report.Result, error) {
	res := &report.Result{}
	table := res.NewTable("E9: fooling deterministic AMOS deciders on paths (both-endpoints instance)",
		"decider", "radius t", "path length", "accepts left", "accepts right", "accepts BOTH (illegal)", "defeated", "failure mode")
	radii := pick(cfg, []int{1, 2, 3, 4}, []int{1, 2})
	allDefeated := true
	allTransfer := true
	for _, t := range radii {
		for _, d := range []decide.Decider{
			countSelDecider{t: t},
			centerPairDecider{t: t},
			minIDGuardDecider{t: t},
		} {
			pathLen := 2*t + 4
			rep, err := decide.AMOSFooling(d, pathLen)
			if err != nil {
				return nil, err
			}
			table.AddRow(d.Name(), t, pathLen,
				rep.AcceptsLeft, rep.AcceptsRight, rep.AcceptsBoth, rep.Fails, rep.Reason)
			if !rep.Fails {
				allDefeated = false
			}
			if !rep.TransferConsistent {
				allTransfer = false
			}
		}
	}
	table.AddNote("any decider accepting both legal single-selection paths must accept the illegal double: the views coincide")

	res.AddCheck("every deterministic decider is defeated", allDefeated,
		"no radius-t decider decides amos on paths of length 2t+4")
	res.AddCheck("indistinguishability transfer verified", allTransfer,
		"verdicts on the double instance equal the single-instance verdicts node by node")
	res.AddCheck("separation LD ⊊ BPLD", allDefeated,
		"with E1 (amos ∈ BPLD at guarantee 0.618), amos witnesses the strict inclusion")
	return res, nil
}
