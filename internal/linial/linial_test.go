package linial

import (
	"errors"
	"testing"

	"rlnc/internal/graph"
)

func TestColorableKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"C5 with 3", graph.Cycle(5), 3, true},
		{"C5 with 2", graph.Cycle(5), 2, false},
		{"C6 with 2", graph.Cycle(6), 2, true},
		{"K4 with 3", graph.Complete(4), 3, false},
		{"K4 with 4", graph.Complete(4), 4, true},
		{"Petersen with 3", graph.Petersen(), 3, true},
		{"Petersen with 2", graph.Petersen(), 2, false},
		{"path with 2", graph.Path(7), 2, true},
		{"grid with 2", graph.Grid(3, 4), 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ok, coloring, err := Colorable(tc.g, tc.k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.want {
				t.Fatalf("Colorable = %v, want %v", ok, tc.want)
			}
			if ok {
				validateColoring(t, tc.g, coloring, tc.k)
			}
		})
	}
}

func validateColoring(t *testing.T, g *graph.Graph, colors []int, k int) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 || colors[v] >= k {
			t.Fatalf("node %d color %d outside [0,%d)", v, colors[v], k)
		}
		for _, w := range g.Neighbors(v) {
			if colors[v] == colors[w] {
				t.Fatalf("edge {%d,%d} monochromatic", v, w)
			}
		}
	}
}

func TestColorableBudget(t *testing.T) {
	// A tiny budget must abort, not lie.
	g := graph.Petersen()
	_, _, err := Colorable(g, 3, 2)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestChromaticNumber(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C5", graph.Cycle(5), 3},
		{"C6", graph.Cycle(6), 2},
		{"K5", graph.Complete(5), 5},
		{"Petersen", graph.Petersen(), 3},
		{"star", graph.Star(6), 2},
	}
	for _, tc := range cases {
		got, err := ChromaticNumber(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: χ = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestGreedyUpperBound(t *testing.T) {
	if ub := GreedyChromaticUpperBound(graph.Complete(5)); ub != 5 {
		t.Errorf("K5 greedy = %d, want 5", ub)
	}
	if ub := GreedyChromaticUpperBound(graph.Cycle(6)); ub < 2 || ub > 3 {
		t.Errorf("C6 greedy = %d", ub)
	}
}

func TestPatternGraphSelfLoopAtMonotone(t *testing.T) {
	for _, radius := range []int{1, 2, 3} {
		pg := BuildPatternGraph(radius)
		if len(pg.Patterns) != factorialInt(2*radius+1) {
			t.Fatalf("t=%d: %d patterns, want (2t+1)!", radius, len(pg.Patterns))
		}
		if !pg.HasSelfLoopAtMonotone() {
			t.Errorf("t=%d: monotone pattern has no self-loop — the Section 4 engine is broken", radius)
		}
		if pg.SelfLoopCount() < 1 {
			t.Errorf("t=%d: no self-loops at all", radius)
		}
	}
}

func factorialInt(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func TestPatternCompatibility(t *testing.T) {
	// Increasing followed by increasing: consecutive windows of a
	// monotone sequence. Must be compatible.
	inc := []int{0, 1, 2}
	if !compatible(inc, inc) {
		t.Error("monotone self-compatibility missing")
	}
	// (0,1,2) then (2,1,0): overlap of the first says x1<x2; of the
	// second says x1>x2. Incompatible.
	dec := []int{2, 1, 0}
	if compatible(inc, dec) {
		t.Error("contradictory overlap accepted")
	}
}

func TestNeighborhoodGraphStructure(t *testing.T) {
	g, err := NeighborhoodGraph(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != NeighborhoodGraphSize(5, 1) {
		t.Errorf("B(5,1): %d vertices, want %d", g.N(), NeighborhoodGraphSize(5, 1))
	}
	if g.N() != 5*4*3 {
		t.Errorf("B(5,1) should have 60 vertices, has %d", g.N())
	}
	// Every vertex has successors: for each tuple there are n-3 fresh ids
	// extending it and n-3 preceding it (possibly overlapping as
	// undirected edges).
	if g.M() == 0 {
		t.Fatal("B(5,1) has no edges")
	}
	if _, err := NeighborhoodGraph(3, 1); err == nil {
		t.Error("n=3 should be rejected for t=1")
	}
}

func TestNeighborhoodGraphColorabilityTransition(t *testing.T) {
	// The Linial lower-bound machine: find 3-colorability of B(n,1) for
	// small n. It must be 3-colorable for tiny n (few constraints). The
	// non-3-colorability threshold for larger n is what experiment E7
	// reports; here we pin the small cases and monotonicity of the
	// verdicts we can afford to compute.
	okSmall, _, err := Colorable(mustNG(t, 4, 1), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !okSmall {
		t.Error("B(4,1) should be 3-colorable")
	}
}

func mustNG(t *testing.T, n, radius int) *graph.Graph {
	t.Helper()
	g, err := NeighborhoodGraph(n, radius)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
