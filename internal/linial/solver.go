// Package linial makes the ring-coloring lower bounds discussed in §1.3
// and §4 of the paper computational:
//
//   - an exact k-colorability solver (DSATUR-ordered backtracking with a
//     search budget);
//   - the order-pattern adjacency graph of t-round order-invariant
//     algorithms on the ring, whose self-loop at the monotone pattern
//     proves that no order-invariant algorithm properly colors all rings
//     at any constant radius with any finite palette (the engine behind
//     the Section 4 argument);
//   - Linial's identity neighborhood graph B(n, t) for the oriented ring,
//     whose chromatic number lower-bounds the palette of any t-round
//     algorithm with identities from [n] ([25], [27]).
package linial

import (
	"errors"
	"fmt"

	"rlnc/internal/graph"
)

// ErrBudget reports an exhausted search budget: the instance is neither
// proved colorable nor uncolorable.
var ErrBudget = errors.New("linial: search budget exhausted")

// Colorable decides exact k-colorability by backtracking with DSATUR-style
// most-saturated-first variable ordering. budget caps the number of
// backtracking nodes (0 selects a large default); exceeding it returns
// ErrBudget rather than a wrong answer.
func Colorable(g *graph.Graph, k int, budget int64) (bool, []int, error) {
	n := g.N()
	if k < 0 {
		return false, nil, fmt.Errorf("linial: negative palette")
	}
	if n == 0 {
		return true, nil, nil
	}
	if budget == 0 {
		budget = 50_000_000
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// neighborColors[v] tracks how many neighbors of v use each color.
	neighborColors := make([][]int32, n)
	satDegree := make([]int, n)
	for v := 0; v < n; v++ {
		neighborColors[v] = make([]int32, k)
	}
	var nodes int64
	var solve func(assigned int) (bool, error)
	solve = func(assigned int) (bool, error) {
		if assigned == n {
			return true, nil
		}
		nodes++
		if nodes > budget {
			return false, ErrBudget
		}
		// Pick the uncolored vertex with maximum saturation, tie-break on
		// degree.
		best := -1
		for v := 0; v < n; v++ {
			if colors[v] != -1 {
				continue
			}
			if best == -1 || satDegree[v] > satDegree[best] ||
				(satDegree[v] == satDegree[best] && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		for c := 0; c < k; c++ {
			if neighborColors[best][c] > 0 {
				continue
			}
			colors[best] = c
			for _, w := range g.Neighbors(best) {
				if neighborColors[w][c] == 0 {
					satDegree[w]++
				}
				neighborColors[w][c]++
			}
			ok, err := solve(assigned + 1)
			if ok || err != nil {
				return ok, err
			}
			for _, w := range g.Neighbors(best) {
				neighborColors[w][c]--
				if neighborColors[w][c] == 0 {
					satDegree[w]--
				}
			}
			colors[best] = -1
		}
		return false, nil
	}
	ok, err := solve(0)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, colors, nil
}

// GreedyChromaticUpperBound colors greedily in degree order, returning the
// number of colors used — a cheap upper bound on the chromatic number.
func GreedyChromaticUpperBound(g *graph.Graph) int {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by decreasing degree (simple selection to stay allocation-lean).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Degree(order[j]) > g.Degree(order[i]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	max := 0
	for _, v := range order {
		used := make(map[int]bool)
		for _, w := range g.Neighbors(v) {
			if colors[w] >= 0 {
				used[colors[w]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > max {
			max = c + 1
		}
	}
	return max
}

// ChromaticNumber computes the exact chromatic number by binary-searching
// Colorable between clique-ish lower and greedy upper bounds. Intended
// for the small neighborhood graphs of this package.
func ChromaticNumber(g *graph.Graph, budget int64) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	upper := GreedyChromaticUpperBound(g)
	for k := 1; k <= upper; k++ {
		ok, _, err := Colorable(g, k, budget)
		if err != nil {
			return 0, err
		}
		if ok {
			return k, nil
		}
	}
	return upper, nil
}
