package linial

import (
	"fmt"

	"rlnc/internal/graph"
)

// PatternGraph is the adjacency structure of order patterns: vertices are
// the permutations of the 2t+1 window positions of a t-round view on the
// oriented ring, and two patterns are adjacent when consecutive windows of
// some identity sequence realize them. Self-loops are possible — and
// decisive: a t-round order-invariant algorithm is a coloring of this
// graph, so a self-loop at pattern P means every such algorithm produces
// adjacent equal outputs on sequences realizing P twice in a row. The
// monotone (consecutive-identity) pattern always has a self-loop, which is
// exactly the Section 4 argument.
type PatternGraph struct {
	T int
	// Patterns lists the rank patterns (permutation of 0..2t) indexing
	// the vertices.
	Patterns [][]int
	// Adj is the simple adjacency (no self-loops).
	Adj [][]int
	// SelfLoop flags vertices adjacent to themselves.
	SelfLoop []bool
}

// permutationsOf generates all permutations of 0..n-1 in lexicographic
// generation order.
func permutationsOf(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// compatible reports whether two patterns can appear on consecutive
// windows: the order they induce on the shared 2t positions must agree.
// (The fresh endpoints can then always be placed, so agreement on the
// overlap is both necessary and sufficient.)
func compatible(p, q []int) bool {
	w := len(p)
	// Shared positions: p[1..w-1] vs q[0..w-2]; ranks induce an order on
	// the shared elements, and both orders must coincide.
	for i := 1; i < w; i++ {
		for j := i + 1; j < w; j++ {
			if (p[i] < p[j]) != (q[i-1] < q[j-1]) {
				return false
			}
		}
	}
	return true
}

// BuildPatternGraph constructs the pattern graph for radius t (window
// width 2t+1).
func BuildPatternGraph(t int) *PatternGraph {
	w := 2*t + 1
	patterns := permutationsOf(w)
	pg := &PatternGraph{
		T:        t,
		Patterns: patterns,
		Adj:      make([][]int, len(patterns)),
		SelfLoop: make([]bool, len(patterns)),
	}
	for i, p := range patterns {
		for j, q := range patterns {
			if !compatible(p, q) {
				continue
			}
			if i == j {
				pg.SelfLoop[i] = true
				continue
			}
			pg.Adj[i] = append(pg.Adj[i], j)
		}
	}
	return pg
}

// MonotoneIndex returns the vertex index of the strictly increasing
// pattern (0, 1, ..., 2t), the pattern realized at every interior node of
// a consecutive-identity ring window.
func (pg *PatternGraph) MonotoneIndex() int {
	for i, p := range pg.Patterns {
		mono := true
		for j, r := range p {
			if r != j {
				mono = false
				break
			}
		}
		if mono {
			return i
		}
	}
	return -1
}

// HasSelfLoopAtMonotone reports the decisive structural fact: the
// increasing pattern is self-adjacent (two consecutive windows of
// 1, 2, ..., m are both increasing), hence no order-invariant algorithm
// of radius t properly colors all rings with any palette.
func (pg *PatternGraph) HasSelfLoopAtMonotone() bool {
	i := pg.MonotoneIndex()
	return i >= 0 && pg.SelfLoop[i]
}

// SelfLoopCount returns the number of self-adjacent patterns.
func (pg *PatternGraph) SelfLoopCount() int {
	count := 0
	for _, s := range pg.SelfLoop {
		if s {
			count++
		}
	}
	return count
}

// NeighborhoodGraph builds Linial's identity neighborhood graph B(n, t)
// for the oriented ring: vertices are (2t+1)-tuples of distinct
// identities from [n] (a node's ordered view of the identities around it)
// and edges join tuples that can be consecutive views — overlapping by a
// shift of one with all 2t+2 identities distinct. Any t-round algorithm
// that properly 3-colors every oriented ring with identities from [n]
// induces a proper 3-coloring of B(n, t), so non-3-colorability of
// B(n, t) is a lower bound certificate ([25]).
//
// The construction materializes n·(n-1)·...·(n-2t) vertices; it is meant
// for t = 1 and small n.
func NeighborhoodGraph(n, t int) (*graph.Graph, error) {
	w := 2*t + 1
	if n < w+1 {
		return nil, fmt.Errorf("linial: need n >= %d for radius %d", w+1, t)
	}
	// Enumerate all ordered w-tuples of distinct ids from 1..n.
	var tuples [][]int
	tuple := make([]int, w)
	used := make([]bool, n+1)
	var rec func(k int)
	rec = func(k int) {
		if k == w {
			tuples = append(tuples, append([]int(nil), tuple...))
			return
		}
		for id := 1; id <= n; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			tuple[k] = id
			rec(k + 1)
			used[id] = false
		}
	}
	rec(0)

	index := make(map[string]int, len(tuples))
	keyOf := func(tp []int) string {
		return fmt.Sprint(tp)
	}
	for i, tp := range tuples {
		index[keyOf(tp)] = i
	}
	b := graph.NewBuilder(len(tuples))
	seen := make(map[[2]int]bool)
	for i, tp := range tuples {
		// Successor views: shift left by one, append a fresh id.
		for id := 1; id <= n; id++ {
			fresh := true
			for _, x := range tp {
				if x == id {
					fresh = false
					break
				}
			}
			if !fresh {
				continue
			}
			next := append(append([]int(nil), tp[1:]...), id)
			j := index[keyOf(next)]
			if i == j {
				continue // cannot happen with distinct ids, kept defensive
			}
			a, bb := i, j
			if a > bb {
				a, bb = bb, a
			}
			if !seen[[2]int{a, bb}] {
				seen[[2]int{a, bb}] = true
				b.AddEdge(a, bb)
			}
		}
	}
	return b.Build()
}

// NeighborhoodGraphSize predicts the vertex count of B(n, t).
func NeighborhoodGraphSize(n, t int) int {
	w := 2*t + 1
	size := 1
	for i := 0; i < w; i++ {
		size *= n - i
	}
	return size
}
