package graph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderRejectsSelfLoop(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(1, 1).Build()
	if !errors.Is(err, ErrSelfLoop) {
		t.Errorf("err = %v, want ErrSelfLoop", err)
	}
}

func TestBuilderRejectsMultiEdge(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(0, 1).AddEdge(1, 0).Build()
	if !errors.Is(err, ErrMultiEdge) {
		t.Errorf("err = %v, want ErrMultiEdge", err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(0, 3).Build()
	if !errors.Is(err, ErrRange) {
		t.Errorf("err = %v, want ErrRange", err)
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(1, 1).AddEdge(0, 1).Build()
	if !errors.Is(err, ErrSelfLoop) {
		t.Errorf("sticky error lost: %v", err)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Errorf("n=%d m=%d, want 4, 3", g.N(), g.M())
	}
}

func TestCycleStructure(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("C6: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("deg(%d) = %d, want 2", v, g.Degree(v))
		}
		// Port orientation contract: port 0 = successor, port 1 = predecessor.
		if g.Neighbor(v, 0) != (v+1)%6 {
			t.Errorf("port 0 of %d = %d, want %d", v, g.Neighbor(v, 0), (v+1)%6)
		}
		if g.Neighbor(v, 1) != (v+5)%6 {
			t.Errorf("port 1 of %d = %d, want %d", v, g.Neighbor(v, 1), (v+5)%6)
		}
	}
	if !g.Connected() {
		t.Error("cycle not connected")
	}
}

func TestPathStructure(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("P5: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("path degrees wrong")
	}
	if g.Diameter() != 4 {
		t.Errorf("P5 diameter = %d, want 4", g.Diameter())
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 || g.MaxDegree() != 4 || g.Diameter() != 1 {
		t.Errorf("K5: m=%d Δ=%d diam=%d", g.M(), g.MaxDegree(), g.Diameter())
	}
}

func TestStarStructure(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 || g.M() != 5 || g.Diameter() != 2 {
		t.Errorf("star: deg0=%d m=%d diam=%d", g.Degree(0), g.M(), g.Diameter())
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Errorf("grid 3x4: n=%d m=%d, want 12, 17", g.N(), g.M())
	}
	if g.Diameter() != 2+3 {
		t.Errorf("grid 3x4 diameter = %d, want 5", g.Diameter())
	}
}

func TestTorusStructure(t *testing.T) {
	g := Torus(3, 3)
	if g.N() != 9 || g.M() != 18 {
		t.Errorf("torus 3x3: n=%d m=%d, want 9, 18", g.N(), g.M())
	}
	for v := 0; v < 9; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("torus deg(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestCompleteTree(t *testing.T) {
	g := CompleteTree(2, 3) // 1+2+4+8 = 15 nodes
	if g.N() != 15 || g.M() != 14 {
		t.Errorf("binary depth-3 tree: n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("tree disconnected")
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d, want 2", g.Degree(0))
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 || g.Diameter() != 4 {
		t.Errorf("Q4: n=%d m=%d diam=%d", g.N(), g.M(), g.Diameter())
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 12 || g.M() != 11 {
		t.Errorf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
	// Spine interior nodes have odd degree 2+2 = 4? node 1: neighbors 0,2 + 2 legs = 4.
	if g.Degree(1) != 4 {
		t.Errorf("spine degree = %d, want 4", g.Degree(1))
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 || g.MaxDegree() != 3 || g.Diameter() != 2 {
		t.Errorf("petersen: n=%d m=%d Δ=%d diam=%d", g.N(), g.M(), g.MaxDegree(), g.Diameter())
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("deg(%d) = %d, want 3", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("expected parity error for n*d odd")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Error("expected range error for d >= n")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, _ := RandomRegular(16, 3, 9)
	g2, _ := RandomRegular(16, 3, 9)
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ for same seed")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edges differ for same seed")
		}
	}
}

func TestConnectedGNP(t *testing.T) {
	g, err := ConnectedGNP(30, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("ConnectedGNP returned a disconnected graph")
	}
}

func TestLollipopAndDoubleStar(t *testing.T) {
	g := Lollipop(4, 3)
	if g.N() != 7 || g.M() != 6+3 {
		t.Errorf("lollipop: n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 1+3 {
		t.Errorf("lollipop diameter = %d, want 4", g.Diameter())
	}
	ds := DoubleStar(3, 2)
	if ds.N() != 7 || ds.M() != 6 || ds.Degree(0) != 4 || ds.Degree(1) != 3 {
		t.Errorf("double star: %v deg0=%d deg1=%d", ds, ds.Degree(0), ds.Degree(1))
	}
}

func TestDistAndDiameter(t *testing.T) {
	g := Cycle(10)
	if d := g.Dist(0, 5); d != 5 {
		t.Errorf("dist(0,5) = %d, want 5", d)
	}
	if d := g.Dist(0, 7); d != 3 {
		t.Errorf("dist(0,7) = %d, want 3", d)
	}
	if g.Diameter() != 5 {
		t.Errorf("C10 diameter = %d, want 5", g.Diameter())
	}
}

func TestComponents(t *testing.T) {
	u := DisjointUnion(Cycle(3), Path(4), Complete(3))
	comp, k := u.G.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[3] == comp[0] {
		t.Error("component labels wrong")
	}
}

func TestNodesWithin(t *testing.T) {
	g := Path(9) // 0-1-...-8
	nodes, dists := g.NodesWithin(4, 2)
	if len(nodes) != 5 {
		t.Fatalf("|B(4,2)| = %d, want 5", len(nodes))
	}
	if nodes[0] != 4 || dists[0] != 0 {
		t.Error("center must come first at distance 0")
	}
	for i, v := range nodes {
		if want := abs(v - 4); dists[i] != want {
			t.Errorf("dist[%d]=%d, want %d", v, dists[i], want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBallFrontierExclusion(t *testing.T) {
	// In C5, B(0,2) contains all 5 nodes; nodes 2 and 3 are both at
	// distance exactly 2, so the edge {2,3} must be EXCLUDED (paper
	// §2.1.1). The ball is the path 2-1-0-4-3.
	g := Cycle(5)
	b := g.BallAround(0, 2)
	if b.Size() != 5 {
		t.Fatalf("|B(0,2)| = %d, want 5", b.Size())
	}
	if b.G.M() != 4 {
		t.Errorf("ball edges = %d, want 4 (frontier edge excluded)", b.G.M())
	}
	i2, i3 := b.LocalIndex(2), b.LocalIndex(3)
	if b.G.HasEdge(i2, i3) {
		t.Error("frontier edge {2,3} present in ball")
	}
	if b.Center() != 0 {
		t.Errorf("center = %d, want 0", b.Center())
	}
}

func TestBallPreservesInteriorEdges(t *testing.T) {
	g := Cycle(8)
	b := g.BallAround(0, 2)
	// Nodes: 0,1,7,2,6. Edges 0-1, 0-7, 1-2, 7-6 all survive; 2 and 6 are
	// not adjacent.
	if b.Size() != 5 || b.G.M() != 4 {
		t.Errorf("ball = %d nodes %d edges, want 5, 4", b.Size(), b.G.M())
	}
}

func TestBallRadiusZero(t *testing.T) {
	g := Complete(4)
	b := g.BallAround(2, 0)
	if b.Size() != 1 || b.G.M() != 0 || b.Center() != 2 {
		t.Error("radius-0 ball must be a single node")
	}
}

func TestBallWholeGraph(t *testing.T) {
	g := Path(5)
	b := g.BallAround(2, 10)
	if b.Size() != 5 || b.G.M() != 4 {
		t.Error("large-radius ball must equal the whole path")
	}
}

func TestBallPortOrderPreserved(t *testing.T) {
	g := Cycle(7)
	b := g.BallAround(3, 1)
	// Center local index 0; its ports must be successor first.
	succ := b.Nodes[int(b.G.Neighbors(0)[0])]
	pred := b.Nodes[int(b.G.Neighbors(0)[1])]
	if succ != 4 || pred != 2 {
		t.Errorf("port order lost: succ=%d pred=%d", succ, pred)
	}
}

func TestCanonicalKeyMatchesIsomorphicBalls(t *testing.T) {
	// Balls around different nodes of a cycle are isomorphic with no labels.
	g := Cycle(9)
	b1 := g.BallAround(0, 2)
	b2 := g.BallAround(5, 2)
	eq, err := b1.IsomorphicTo(b2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("isomorphic balls have different canonical keys")
	}
}

func TestCanonicalKeyDistinguishesLabels(t *testing.T) {
	g := Cycle(9)
	b1 := g.BallAround(0, 1)
	b2 := g.BallAround(0, 1)
	l1 := func(local int) string { return "x" }
	l2 := func(local int) string {
		if local == 1 {
			return "y"
		}
		return "x"
	}
	eq, err := b1.IsomorphicTo(b2, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("differently labeled balls share a canonical key")
	}
}

func TestCanonicalKeyDistinguishesStructure(t *testing.T) {
	pathBall := Path(5).BallAround(2, 2) // path of 5
	starBall := Star(5).BallAround(0, 2) // star with 4 leaves
	eq, err := pathBall.IsomorphicTo(starBall, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("path and star balls share a canonical key")
	}
}

func TestCanonicalKeySizeGuard(t *testing.T) {
	b := Complete(13).BallAround(0, 1)
	if _, err := b.CanonicalKey(nil); err == nil {
		t.Error("expected size-guard error for 13-node ball")
	}
}

func TestSubdivideTwice(t *testing.T) {
	g := Cycle(5)
	res, err := g.SubdivideTwice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.G
	if h.N() != 7 || h.M() != 7 {
		t.Fatalf("subdivided C5: n=%d m=%d, want 7, 7", h.N(), h.M())
	}
	if h.HasEdge(0, 1) {
		t.Error("original edge survived subdivision")
	}
	if !h.HasEdge(0, res.VNode) || !h.HasEdge(res.VNode, res.WNode) || !h.HasEdge(res.WNode, 1) {
		t.Error("subdivision path missing")
	}
	// Endpoint degrees unchanged; new nodes have degree 2.
	if h.Degree(0) != 2 || h.Degree(1) != 2 {
		t.Error("endpoint degree changed")
	}
	if h.Degree(res.VNode) != 2 || h.Degree(res.WNode) != 2 {
		t.Error("inserted node degree != 2")
	}
	if !h.Connected() {
		t.Error("subdivision disconnected the graph")
	}
	if _, err := g.SubdivideTwice(0, 2); err == nil {
		t.Error("expected error subdividing a non-edge")
	}
}

func TestDisjointUnionOffsets(t *testing.T) {
	u := DisjointUnion(Cycle(3), Path(2))
	if u.G.N() != 5 || u.G.M() != 4 {
		t.Fatalf("union: n=%d m=%d", u.G.N(), u.G.M())
	}
	if u.Offsets[0] != 0 || u.Offsets[1] != 3 {
		t.Errorf("offsets = %v", u.Offsets)
	}
	if !u.G.HasEdge(3, 4) {
		t.Error("second part edge missing")
	}
	if u.G.HasEdge(2, 3) {
		t.Error("parts connected in disjoint union")
	}
}

func TestWithExtraEdges(t *testing.T) {
	g := Path(4)
	h, err := g.WithExtraEdges([][2]int{{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasEdge(0, 3) || h.M() != 4 {
		t.Error("extra edge missing")
	}
	if _, err := g.WithExtraEdges([][2]int{{0, 1}}); err == nil {
		t.Error("expected duplicate-edge error")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, nodes := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 || sub.M() != 2 {
		t.Errorf("induced: n=%d m=%d, want 4, 2", sub.N(), sub.M())
	}
	if nodes[3] != 4 {
		t.Errorf("node mapping wrong: %v", nodes)
	}
}

func TestScatteredSetSeparation(t *testing.T) {
	g := Cycle(60)
	sep := 10
	s := g.ScatteredSet(sep, 0)
	if len(s) < 60/(2*sep) {
		t.Errorf("scattered set too small: %d", len(s))
	}
	if ok, u, v := g.PairwiseDistAtLeast(s, sep); !ok {
		t.Errorf("nodes %d and %d too close", u, v)
	}
}

func TestScatteredSetWantLimit(t *testing.T) {
	g := Cycle(100)
	s := g.ScatteredSet(5, 3)
	if len(s) != 3 {
		t.Errorf("want limit ignored: got %d nodes", len(s))
	}
}

func TestDOTOutput(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p3", func(v int) string { return "n" })
	if !strings.Contains(dot, "0 -- 1") || !strings.Contains(dot, "1 -- 2") {
		t.Errorf("DOT missing edges:\n%s", dot)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("histogram = %v", h)
	}
}

// Property: cycles have diameter floor(n/2) and are 2-regular and connected.
func TestCycleInvariantsProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%60) + 3
		g := Cycle(n)
		return g.Connected() && g.MaxDegree() == 2 && g.M() == n && g.Diameter() == n/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every ball of radius t has all recorded distances <= t and the
// distance labels agree with BFS inside the host graph.
func TestBallDistanceProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawT uint8) bool {
		n := int(rawN%30) + 5
		tRad := int(rawT % 4)
		g, err := ConnectedGNP(n, 0.15, seed)
		if err != nil {
			return true // skip infeasible draws
		}
		host := g.BFSFrom(0)
		b := g.BallAround(0, tRad)
		for i, v := range b.Nodes {
			if b.Dist[i] > tRad || b.Dist[i] != host[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: no frontier-frontier edge ever appears in a ball.
func TestBallNoFrontierEdgesProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawT uint8) bool {
		n := int(rawN%25) + 5
		tRad := int(rawT%3) + 1
		g, err := ConnectedGNP(n, 0.2, seed)
		if err != nil {
			return true
		}
		b := g.BallAround(int(seed%uint64(n)), tRad)
		for _, e := range b.G.Edges() {
			if b.Dist[e[0]] == tRad && b.Dist[e[1]] == tRad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: subdividing any edge preserves endpoint degrees and adds
// exactly 2 nodes and 2 edges (net: one edge removed, three added).
func TestSubdivisionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := RandomRegular(12, 3, seed)
		if err != nil {
			return true
		}
		e := g.Edges()[int(seed%uint64(g.M()))]
		res, err := g.SubdivideTwice(e[0], e[1])
		if err != nil {
			return false
		}
		return res.G.N() == g.N()+2 &&
			res.G.M() == g.M()+2 &&
			res.G.Degree(e[0]) == g.Degree(e[0]) &&
			res.G.Degree(e[1]) == g.Degree(e[1]) &&
			res.G.Connected() == g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
