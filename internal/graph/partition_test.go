package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkPartitionInvariants asserts the structural contract every
// partition consumer (the sharded engine above all) relies on.
func checkPartitionInvariants(t *testing.T, topo *Topology, p Partition) {
	t.Helper()
	if err := topo.CheckPartition(p); err != nil {
		t.Fatal(err)
	}
	n := topo.NumNodes()
	seen := 0
	for i := 0; i < p.NumShards(); i++ {
		lo, hi := p.Shard(i)
		if hi <= lo {
			t.Fatalf("shard %d empty: [%d, %d)", i, lo, hi)
		}
		seen += hi - lo
		for v := lo; v < hi; v++ {
			if got := p.ShardOf(v); got != i {
				t.Fatalf("ShardOf(%d) = %d, want %d", v, got, i)
			}
		}
	}
	if seen != n {
		t.Fatalf("shards cover %d nodes, want %d", seen, n)
	}
}

func TestPartitionBySlots(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      *Graph
		shards int
	}{
		{"cycle-2", Cycle(10), 2},
		{"cycle-3", Cycle(10), 3},
		{"cycle-all", Cycle(10), 10},
		{"star-2", Star(9), 2}, // one hub owns half the slots
		{"star-4", Star(9), 4},
		{"grid-5", Grid(4, 5), 5},
		{"single", Path(1), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := tc.g.Topology()
			if err != nil {
				t.Fatal(err)
			}
			p, err := topo.PartitionBySlots(tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumShards() != tc.shards {
				t.Fatalf("NumShards = %d, want %d", p.NumShards(), tc.shards)
			}
			checkPartitionInvariants(t, topo, p)
		})
	}

	topo, err := Cycle(5).Topology()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.PartitionBySlots(0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := topo.PartitionBySlots(6); err == nil {
		t.Error("more shards than nodes accepted")
	}
}

func TestCheckPartitionRejectsMalformed(t *testing.T) {
	topo, err := Cycle(6).Topology()
	if err != nil {
		t.Fatal(err)
	}
	for name, bounds := range map[string][]int32{
		"too-few-bounds": {0},
		"bad-start":      {1, 6},
		"bad-end":        {0, 5},
		"empty-shard":    {0, 3, 3, 6},
		"decreasing":     {0, 4, 2, 6},
	} {
		if err := topo.CheckPartition(Partition{Bounds: bounds}); err == nil {
			t.Errorf("%s: malformed partition %v accepted", name, bounds)
		}
	}
}

// TestCutSlots pins the cut definition against a hand-checked cycle:
// with C_6 split [0..3) and [3..6), the cut carries exactly the four
// directed slots of the two boundary edges {2,3} and {5,0}.
func TestCutSlots(t *testing.T) {
	g := Cycle(6)
	topo, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}
	p := Partition{Bounds: []int32{0, 3, 6}}
	cuts := topo.CutSlots(p)
	countSlots := func(list []int32) int { return len(list) }
	if got := countSlots(cuts[0][1]) + countSlots(cuts[1][0]); got != 4 {
		t.Fatalf("cycle cut carries %d directed slots, want 4", got)
	}
	if cuts[0][0] != nil || cuts[1][1] != nil {
		t.Error("diagonal cut entries must be nil")
	}
	// Every cut slot of cuts[i][j] is owned by shard i and received in j.
	for i := range cuts {
		for j := range cuts[i] {
			prev := int32(-1)
			for _, s := range cuts[i][j] {
				if s <= prev {
					t.Fatalf("cuts[%d][%d] not ascending: %v", i, j, cuts[i][j])
				}
				prev = s
				if own := p.ShardOf(int(ownerOf(topo, int(s)))); own != i {
					t.Fatalf("slot %d in cuts[%d][%d] owned by shard %d", s, i, j, own)
				}
				if recv := p.ShardOf(int(topo.Nbrs[s])); recv != j {
					t.Fatalf("slot %d in cuts[%d][%d] received in shard %d", s, i, j, recv)
				}
			}
		}
	}
}

// ownerOf returns the node owning directed slot s.
func ownerOf(topo *Topology, s int) int32 {
	for v := 0; v < topo.NumNodes(); v++ {
		lo, hi := topo.Slots(v)
		if s >= lo && s < hi {
			return int32(v)
		}
	}
	return -1
}

// TestShardSlots pins the compacted slot remap: for every shard of
// several graph × partition fixtures, the window's own range matches the
// node bounds, the halo is exactly the union of the incoming cut lists
// (grouped by peer, ascending), HaloDeg matches the owning node's
// degree, and Rev remaps Topology.RevSlot faithfully — the delivery a
// compacted shard resolves through local coordinates is the same edge
// the global table names.
func TestShardSlots(t *testing.T) {
	fixtures := []struct {
		name   string
		g      *Graph
		shards int
	}{
		{"cycle-2", Cycle(12), 2},
		{"cycle-4", Cycle(12), 4},
		{"star-3", Star(9), 3},
		{"grid-4", Grid(4, 5), 4},
		{"all", Cycle(7), 7},
	}
	for _, tc := range fixtures {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := tc.g.Topology()
			if err != nil {
				t.Fatal(err)
			}
			p, err := topo.PartitionBySlots(tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			cuts := topo.CutSlots(p)
			totalLocal := 0
			for i := 0; i < p.NumShards(); i++ {
				w := topo.ShardSlots(p, cuts, i)
				lo, hi := p.Shard(i)
				if w.NodeLo != lo || w.NodeHi != hi {
					t.Fatalf("shard %d node window [%d,%d), want [%d,%d)", i, w.NodeLo, w.NodeHi, lo, hi)
				}
				if w.SlotLo != topo.Offsets[lo] || w.SlotHi != topo.Offsets[hi] {
					t.Fatalf("shard %d slot window [%d,%d)", i, w.SlotLo, w.SlotHi)
				}
				totalLocal += w.NumLocal()
				// Halo = incoming cut lists, grouped by peer in order.
				h := 0
				for j := 0; j < p.NumShards(); j++ {
					if int(w.HaloOff[j]) != h {
						t.Fatalf("shard %d halo offset of peer %d = %d, want %d", i, j, w.HaloOff[j], h)
					}
					for _, s := range cuts[j][i] {
						if w.Halo[h] != s {
							t.Fatalf("shard %d halo[%d] = %d, want cut slot %d of peer %d", i, h, w.Halo[h], s, j)
						}
						if own := ownerOf(topo, int(s)); w.HaloDeg[h] != topo.Offsets[own+1]-topo.Offsets[own] {
							t.Fatalf("shard %d halo[%d] degree %d, want owner degree", i, h, w.HaloDeg[h])
						}
						h++
					}
				}
				if h != len(w.Halo) {
					t.Fatalf("shard %d halo has %d slots, cut lists name %d", i, len(w.Halo), h)
				}
				// Rev remaps the global reverse table: resolve the local
				// index back to a global slot and compare.
				globalOf := func(local int32) int32 {
					if int(local) < w.NumOwn() {
						return w.SlotLo + local
					}
					return w.Halo[int(local)-w.NumOwn()]
				}
				for q := 0; q < w.NumOwn(); q++ {
					want := topo.RevSlot[int(w.SlotLo)+q]
					if got := globalOf(w.Rev[q]); got != want {
						t.Fatalf("shard %d Rev[%d] resolves to global %d, want %d", i, q, got, want)
					}
				}
			}
			// Compaction is real: summed local slot spaces stay well under
			// shards × global slots (each cut slot is duplicated once as a
			// halo entry, never more).
			if max := topo.NumSlots() * p.NumShards(); tc.shards > 1 && totalLocal >= max {
				t.Fatalf("no compaction: %d total local slots vs %d uncompacted", totalLocal, max)
			}
		})
	}
}

// Property: on random connected graphs with random contiguous
// partitions, every cross-shard directed slot appears in exactly one cut
// list and intra-shard slots in none — the exchange ships each cut edge
// once.
func TestCutSlotsCoverProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawShards uint8) bool {
		n := int(rawN%20) + 3
		g, err := ConnectedGNP(n, 0.3, seed)
		if err != nil {
			return true
		}
		topo, err := g.Topology()
		if err != nil {
			return false
		}
		shards := int(rawShards)%n + 1
		p := RandomPartition(topo.NumNodes(), shards, rand.New(rand.NewSource(int64(seed))))
		if err := topo.CheckPartition(p); err != nil {
			return false
		}
		cuts := topo.CutSlots(p)
		listed := make(map[int32]int)
		for i := range cuts {
			for _, list := range cuts[i] {
				for _, s := range list {
					listed[s]++
				}
			}
		}
		for v := 0; v < n; v++ {
			lo, hi := topo.Slots(v)
			for s := lo; s < hi; s++ {
				cross := p.ShardOf(v) != p.ShardOf(int(topo.Nbrs[s]))
				want := 0
				if cross {
					want = 1
				}
				if listed[int32(s)] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
